; Early exit with a one-shot continuation: find the first element
; satisfying a predicate, escaping the traversal the moment it appears.
; The continuation is invoked at most once on every path, so this file
; is clean under `schemer --lint`.

(define (find-first pred xs)
  (call/1cc
   (lambda (return)
     (for-each (lambda (x) (if (pred x) (return x) #f)) xs)
     #f)))

(display (find-first (lambda (n) (> n 10)) '(3 7 12 5 19)))
(newline)

; Escape-only capture: the continuation is stored and used as a plain
; exit procedure by a helper defined elsewhere.
(define (product xs)
  (call/1cc
   (lambda (abort)
     (let loop ((xs xs) (acc 1))
       (cond ((null? xs) acc)
             ((= (car xs) 0) (abort 0))
             (else (loop (cdr xs) (* acc (car xs)))))))))

(display (product '(2 3 4)))
(newline)
(display (product '(2 0 4)))
(newline)
