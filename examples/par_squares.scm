; Data-parallel map/reduce over flat data.  Without --par-chunk the
; par-* operators run on the serial fallback, so this file works on any
; backend; with `--par-chunk N --jobs M` the same source fans chunks out
; to worker shards.  All quoted arguments are flat (proper lists of
; immediates), so this file is clean under `schemer --lint`.

(define (square x) (* x x))

(display (par-map square '(1 2 3 4 5 6 7 8)))
(newline)

(display (par-reduce + 0 (par-map square '(1 2 3 4 5 6 7 8))))
(newline)

(par-for-each
 (lambda (pair-sum) (display pair-sum) (display " "))
 (par-map (lambda (n) (+ n n)) '(10 20 30)))
(newline)
