; A tree generator built from one-shot continuations: each suspension
; point captures the rest of the walk with call/1cc and hands control
; back to the consumer, which later resumes it -- every continuation is
; captured once and invoked once, the one-shot discipline the paper's
; shot records enforce for free.  Clean under `schemer --lint`: each
; receiver body either escapes only or invokes its continuation on a
; single path.

(define (make-tree-generator tree)
  (define resume #f)
  (define return #f)
  (define (walk t)
    (if (pair? t)
        (begin (walk (car t)) (walk (cdr t)))
        (call/1cc
         (lambda (k)
           (set! resume k)
           (return t)))))
  (define (start)
    (walk tree)
    (return 'done))
  (lambda ()
    (call/1cc
     (lambda (caller)
       (set! return caller)
       (if resume
           (let ((k resume))
             (set! resume #f)
             (k #f))
           (start))))))

(define gen (make-tree-generator '((1 . 2) . (3 . (4 . 5)))))

(let loop ((leaf (gen)))
  (if (eq? leaf 'done)
      (newline)
      (begin
        (display leaf)
        (display " ")
        (loop (gen)))))
