(* The CSP prime sieve over CML-style channels: a chain of filter threads
   grows as primes are discovered; every inter-stage handoff parks one
   thread's one-shot continuation and resumes another's — hundreds of
   context switches with zero stack copying.

   Run with: dune exec examples/sieve.exe *)

let () =
  print_endline "== concurrent prime sieve over channels ==\n";
  let stats = Stats.create () in
  let s =
    Scheme.create ~backend:(Scheme.Stack Control.default_config) ~stats ()
  in
  Scheme.load_corpus s;
  let primes =
    Scheme.eval_string s
      {|(let ((primes '()))
          (define (counter out)
            ;; feed 2,3,4,... into the pipeline
            (lambda ()
              (let loop ((i 2))
                (channel-send out i)
                (loop (+ i 1)))))
          (define (filter-stage p in out)
            ;; drop multiples of p, forward the rest
            (lambda ()
              (let loop ()
                (let ((n (channel-recv in)))
                  (if (not (= 0 (remainder n p)))
                      (channel-send out n))
                  (loop)))))
          (define (sink in count done)
            ;; each value arriving at the end of the chain is prime;
            ;; extend the chain with a new filter for it
            (lambda ()
              (let loop ((in in) (n count))
                (if (= n 0)
                    (channel-send done 'finished)
                    (let ((p (channel-recv in)))
                      (set! primes (cons p primes))
                      (let ((next (make-channel)))
                        (spawn (filter-stage p in next))
                        (loop next (- n 1))))))))
          (let ((first (make-channel)) (done (make-channel)))
            (run-threads
             (list (counter first)
                   (sink first 25 done)
                   (lambda () (channel-recv done)))
             200 %call/1cc))
          (reverse primes))|}
  in
  Printf.printf "first 25 primes: %s\n" primes;
  Printf.printf
    "\n%d one-shot parks/resumes, %d words of stack copied, %d segment \
     cache hits\n"
    stats.Stats.invokes_oneshot stats.Stats.words_copied
    stats.Stats.cache_hits
