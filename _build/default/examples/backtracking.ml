(* Nondeterministic search (amb) -- the application class that NEEDS
   multi-shot continuations: a choice point is re-entered once per
   alternative, which one-shot continuations cannot express (paper
   Section 2 calls this out explicitly).

   Run with: dune exec examples/backtracking.exe *)

let () =
  print_endline "== backtracking with multi-shot continuations (amb) ==\n";
  let stats = Stats.create () in
  let s =
    Scheme.create ~backend:(Scheme.Stack Control.default_config) ~stats ()
  in
  Scheme.load_corpus s;
  ignore (Scheme.eval s Programs.amb);

  (* Pythagorean triples. *)
  Printf.printf "first pythagorean triple under 25 => %s\n"
    (Scheme.eval_string s "(pythagorean-triple 25)");

  (* Logic puzzle: x*y = 24, x+y = 10, x < y. *)
  Printf.printf "x*y=24, x+y=10, x<y               => %s\n"
    (Scheme.eval_string s
       {|(begin
          (%amb-init)
          (call/cc
           (lambda (found)
             (let ((x (amb-range 1 9)))
               (let ((y (amb-range 1 9)))
                 (amb-require (= (* x y) 24))
                 (amb-require (= (+ x y) 10))
                 (amb-require (< x y))
                 (found (list x y)))))))|});

  (* N-queens by nondeterministic placement: place one queen per column,
     backtracking through amb on conflicts. *)
  Printf.printf "6-queens placement                => %s\n"
    (Scheme.eval_string s
       {|(begin
          (%amb-init)
          (define (safe? row dist placed)
            (if (null? placed)
                #t
                (and (not (= (car placed) row))
                     (not (= (car placed) (+ row dist)))
                     (not (= (car placed) (- row dist)))
                     (safe? row (+ dist 1) (cdr placed)))))
          (call/cc
           (lambda (found)
             (let place ((col 0) (placed '()))
               (if (= col 6)
                   (found (reverse placed))
                   (let ((row (amb-range 0 5)))
                     (amb-require (safe? row 1 placed))
                     (place (+ col 1) (cons row placed))))))))|});

  (* Enumerate ALL solutions by failing back into the search after
     recording each one -- re-entering choice points many times. *)
  Printf.printf "all 4-queens solutions            => %s\n"
    (Scheme.eval_string s
       {|(begin
          (%amb-init)
          (define solutions '())
          (call/cc
           (lambda (done)
             (set! %amb-fail (lambda () (done (reverse solutions))))
             (let place ((col 0) (placed '()))
               (if (= col 4)
                   (begin
                     (set! solutions (cons (reverse placed) solutions))
                     (%amb-fail))
                   (let ((row (amb-range 0 3)))
                     (amb-require (safe? row 1 placed))
                     (place (+ col 1) (cons row placed))))))))|});

  Printf.printf
    "\nthe search re-entered choice points through %d multi-shot \
     invocations (%d words copied)\n"
    stats.Stats.invokes_multi stats.Stats.words_copied
