(* Preemptive user-level threads and engines — the paper's motivating
   application (Figure 5).

   The scheduler is plain Scheme: the VM timer fires every N procedure
   calls and the handler captures the running thread with call/1cc, so a
   context switch swaps stack segments instead of copying them.

   Run with: dune exec examples/threads_demo.exe *)

let () =
  print_endline "== preemptive threads and engines ==\n";
  let stats = Stats.create () in
  let s =
    Scheme.create ~backend:(Scheme.Stack Control.default_config) ~stats ()
  in
  Scheme.load_corpus s;

  (* Three compute threads, preempted every 50 procedure calls; each logs
     progress ticks, showing the interleaving. *)
  print_endline "interleaved progress (switch every 50 calls):";
  ignore
    (Scheme.eval s
       {|(define trace '())
         (define (worker tag units)
           (lambda ()
             (let loop ((u units))
               (if (= u 0)
                   (set! trace (cons (cons tag 'done) trace))
                   (begin
                     (fib 8)                       ; a burst of work
                     (set! trace (cons tag trace))
                     (loop (- u 1)))))))
         (run-threads (list (worker 'a 6) (worker 'b 6) (worker 'c 6))
                      50 %call/1cc)|});
  Printf.printf "  trace: %s\n"
    (Scheme.eval_string s "(reverse trace)");

  (* The same program under call/cc capture gives the same answer but
     copies stack words on every switch. *)
  let one_shot_switches = stats.Stats.invokes_oneshot in
  let copied_one_shot = stats.Stats.words_copied in
  Printf.printf
    "  %d one-shot switches, %d words copied\n\n" one_shot_switches
    copied_one_shot;

  Stats.reset stats;
  ignore
    (Scheme.eval s
       {|(set! trace '())
         (run-threads (list (worker 'a 6) (worker 'b 6) (worker 'c 6))
                      50 %call/cc)|});
  Printf.printf
    "  same workload with call/cc: %d multi-shot switches, %d words copied\n\n"
    stats.Stats.invokes_multi stats.Stats.words_copied;

  (* Engines: timed preemption as a first-class value (Dybvig-Hieb). *)
  print_endline "engines (run fib 16 in 400-call slices):";
  ignore
    (Scheme.eval s
       {|(define slices 0)
         (define (drive e)
           (e 400
              (lambda (remaining value) value)
              (lambda (next) (set! slices (+ slices 1)) (drive next))))
         (define engine-result (drive (make-engine (lambda () (fib 16)))))|});
  Printf.printf "  result %s after %s expired slices\n"
    (Scheme.eval_string s "engine-result")
    (Scheme.eval_string s "slices");

  (* Engines compose: round-robin two engines explicitly. *)
  print_endline "\ntwo engines, manual round-robin (300-call slices):";
  Printf.printf "  %s\n"
    (Scheme.eval_string s
       {|(let loop ((e1 (make-engine (lambda () (cons 'fib13 (fib 13)))))
                    (e2 (make-engine (lambda () (cons 'tak (tak 10 6 3)))))
                    (finished '()))
          (if (null? e1)
              (reverse finished)
              (e1 300
                  (lambda (remaining v)
                    (if (null? e2)
                        (reverse (cons v finished))
                        (loop e2 '() (cons v finished))))
                  (lambda (next)
                    (if (null? e2)
                        (loop next '() finished)
                        (loop e2 next finished))))))|})
