(* Quickstart: embed the Scheme system, evaluate programs, use one-shot
   and multi-shot continuations, and read the control-stack counters.

   Run with: dune exec examples/quickstart.exe *)

let () =
  print_endline "== oneshot quickstart ==\n";

  (* A session on the paper's segmented-stack VM, prelude loaded. *)
  let stats = Stats.create () in
  let s =
    Scheme.create ~backend:(Scheme.Stack Control.default_config) ~stats ()
  in

  (* Plain evaluation. *)
  Printf.printf "(+ 1 2 3)              => %s\n"
    (Scheme.eval_string s "(+ 1 2 3)");

  (* Nonlocal exit with a one-shot continuation: the idiomatic use of
     call/1cc -- an escape that fires at most once costs no stack copy. *)
  Printf.printf "nonlocal exit          => %s\n"
    (Scheme.eval_string s
       {|(call/1cc
          (lambda (return)
            (for-each (lambda (x) (if (> x 3) (return x) #f))
                      '(1 2 3 4 5))
            'not-found))|});

  (* Multi-shot re-entry: impossible with call/1cc, fine with call/cc. *)
  Printf.printf "re-entrant counter     => %s\n"
    (Scheme.eval_string s
       {|(let ((k #f) (n 0))
          (call/cc (lambda (c) (set! k c)))
          (set! n (+ n 1))
          (if (< n 5) (k #f) n))|});

  (* One-shot continuations are consumed by their single use -- even an
     implicit one (returning through the capture point). *)
  (match
     Scheme.eval_string s
       {|(let ((k #f))
          (call/1cc (lambda (c) (set! k c)))   ; returns: the one use
          (k 'again))|}
   with
  | v -> Printf.printf "reusing a one-shot     => %s (unexpected!)\n" v
  | exception Rt.Shot_continuation ->
      print_endline "reusing a one-shot     => error: continuation already shot");

  (* dynamic-wind interacts with both kinds of continuation. *)
  Printf.printf "dynamic-wind trace     => %s\n"
    (Scheme.eval_string s
       {|(let ((trace '()))
          (define (log x) (set! trace (cons x trace)))
          (call/1cc
           (lambda (escape)
             (dynamic-wind
               (lambda () (log 'enter))
               (lambda () (escape 'out))
               (lambda () (log 'leave)))))
          (reverse trace))|});

  (* The control substrate is observable. *)
  Printf.printf "\ncontrol-stack counters after this session:\n";
  Printf.printf "  multi-shot captures  %d\n" stats.Stats.captures_multi;
  Printf.printf "  one-shot captures    %d\n" stats.Stats.captures_oneshot;
  Printf.printf "  words copied         %d\n" stats.Stats.words_copied;
  Printf.printf "  segments allocated   %d\n" stats.Stats.seg_allocs;
  Printf.printf "  cache hits           %d\n" stats.Stats.cache_hits;

  (* The same program runs on the heap-frame baseline VM and the CPS
     oracle -- useful for differential checks. *)
  let heap = Scheme.create ~backend:Scheme.Heap () in
  let oracle = Scheme.create ~backend:Scheme.Oracle () in
  let src = "(call/cc (lambda (k) (+ 1 (k 41))))" in
  Printf.printf "\nsame program everywhere: stack=%s heap=%s oracle=%s\n"
    (Scheme.eval_string s src)
    (Scheme.eval_string heap src)
    (Scheme.eval_string oracle src)
