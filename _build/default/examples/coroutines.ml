(* Coroutines and generators over one-shot continuations.

   Every transfer of control between a generator and its consumer uses
   call/1cc exactly once in each direction, so the whole pattern runs
   without copying a single stack word -- segments are swapped back and
   forth (and recycled through the segment cache).

   Run with: dune exec examples/coroutines.exe *)

let () =
  print_endline "== coroutines & generators over call/1cc ==\n";
  let stats = Stats.create () in
  let s =
    Scheme.create ~backend:(Scheme.Stack Control.default_config) ~stats ()
  in
  Scheme.load_corpus s;

  (* A generator producing squares lazily. *)
  Printf.printf "squares     => %s\n"
    (Scheme.eval_string s
       {|(let ((g (make-generator
                   (lambda (yield)
                     (let loop ((i 1))
                       (if (<= i 8)
                           (begin (yield (* i i)) (loop (+ i 1)))
                           'done))))))
          (generator->list g))|});

  (* An infinite generator, consumed partially. *)
  Printf.printf "fibs        => %s\n"
    (Scheme.eval_string s
       {|(let ((g (make-generator
                   (lambda (yield)
                     (let loop ((a 0) (b 1))
                       (yield a)
                       (loop b (+ a b)))))))
          (let loop ((n 10) (acc '()))
            (if (= n 0)
                (reverse acc)
                (loop (- n 1) (cons (cdr (g)) acc)))))|});

  (* samefringe: the classic coroutine problem -- compare the leaves of
     two differently shaped trees lazily, stopping at the first
     difference. *)
  ignore (Scheme.eval s Programs.samefringe);
  Printf.printf "samefringe  => %s and %s\n"
    (Scheme.eval_string s
       "(same-fringe? '((1 (2)) 3 (4 5)) '(1 2 (3 (4) 5)))")
    (Scheme.eval_string s
       "(same-fringe? '((1 (2)) 3 (4 5)) '(1 2 (3 (4) 6)))");

  (* A two-stage pipeline: producer coroutine feeding a filter coroutine. *)
  Printf.printf "pipeline    => %s\n"
    (Scheme.eval_string s
       {|(let* ((nums (make-generator
                       (lambda (yield)
                         (let loop ((i 1))
                           (if (<= i 20) (begin (yield i) (loop (+ i 1))) 'end)))))
               (evens (make-generator
                       (lambda (yield)
                         (let loop ()
                           (let ((x (nums)))
                             (if (eq? (car x) 'done)
                                 'end
                                 (begin
                                   (if (even? (cdr x)) (yield (* 10 (cdr x))) #f)
                                   (loop)))))))))
          (generator->list evens))|});

  Printf.printf
    "\nzero words of stack copied across %d one-shot switches \
     (words-copied = %d, cache hits = %d)\n"
    stats.Stats.invokes_oneshot stats.Stats.words_copied
    stats.Stats.cache_hits
