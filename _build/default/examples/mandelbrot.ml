(* Flonum showcase: render the Mandelbrot set in ASCII from Scheme,
   capturing the output with with-output-to-string — while the whole
   render runs inside an engine so it is preempted every 4,000 procedure
   calls (the slice count is reported at the end).

   Run with: dune exec examples/mandelbrot.exe *)

let () =
  print_endline "== mandelbrot over flonums, sliced by an engine ==\n";
  let s = Scheme.create () in
  Scheme.load_corpus s;
  ignore
    (Scheme.eval s
       {|(define (render width height max-iter)
           (let loop-y ((y 0))
             (if (< y height)
                 (begin
                   (let loop-x ((x 0))
                     (if (< x width)
                         (let* ((cr (- (/ (* 3.0 (exact->inexact x))
                                          (exact->inexact width))
                                       2.25))
                                (ci (- (/ (* 2.2 (exact->inexact y))
                                          (exact->inexact height))
                                      1.1))
                                (i (mandel-point cr ci max-iter)))
                           (display
                            (cond ((= i max-iter) "#")
                                  ((> i (quotient max-iter 2)) "+")
                                  ((> i (quotient max-iter 4)) ".")
                                  (else " ")))
                           (loop-x (+ x 1)))))
                   (newline)
                   (loop-y (+ y 1))))))

         (define slices 0)
         (define picture
           (with-output-to-string
            (lambda ()
              (let drive ((e (make-engine (lambda () (render 60 22 24)))))
                (e 4000
                   (lambda (remaining v) v)
                   (lambda (next)
                     (set! slices (+ slices 1))
                     (drive next)))))))|});
  ignore (Scheme.eval s "(display picture)");
  print_string (Scheme.output s);
  Printf.printf "\nrendered across %s engine slices of 4,000 calls each\n"
    (Scheme.eval_string s "slices")
