examples/backtracking.ml: Control Printf Programs Scheme Stats
