examples/mandelbrot.mli:
