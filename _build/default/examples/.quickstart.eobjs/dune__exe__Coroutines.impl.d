examples/coroutines.ml: Control Printf Programs Scheme Stats
