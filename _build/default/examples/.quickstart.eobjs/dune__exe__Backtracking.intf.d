examples/backtracking.mli:
