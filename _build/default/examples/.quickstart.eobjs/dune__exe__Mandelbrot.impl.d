examples/mandelbrot.ml: Printf Scheme
