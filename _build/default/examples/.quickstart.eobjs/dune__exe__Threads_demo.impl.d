examples/threads_demo.ml: Control Printf Scheme Stats
