examples/sieve.mli:
