examples/coroutines.mli:
