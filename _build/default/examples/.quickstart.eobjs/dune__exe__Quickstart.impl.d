examples/quickstart.ml: Control Printf Rt Scheme Stats
