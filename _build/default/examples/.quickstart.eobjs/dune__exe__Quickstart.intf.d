examples/quickstart.mli:
