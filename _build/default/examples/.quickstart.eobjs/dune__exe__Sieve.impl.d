examples/sieve.ml: Control Printf Scheme Stats
