(* define-syntax / syntax-rules tests. *)

let all = Tutil.check_all
let check = Tutil.check_eval
let case = Tutil.case

let suite =
  List.concat
    [
      all "simple substitution"
        {|(define-syntax double (syntax-rules () ((_ e) (* 2 e))))
          (double 21)|}
        "42";
      all "multiple rules dispatch on shape"
        {|(define-syntax my-or
            (syntax-rules ()
              ((_) #f)
              ((_ e) e)
              ((_ e r ...) (let ((t e)) (if t t (my-or r ...))))))
          (list (my-or) (my-or 7) (my-or #f #f 3) (my-or #f #f))|}
        "(#f 7 3 #f)";
      all "swap! two variables"
        {|(define-syntax swap!
            (syntax-rules () ((_ a b) (let ((tmp a)) (set! a b) (set! b tmp)))))
          (let ((x 1) (y 2)) (swap! x y) (list x y))|}
        "(2 1)";
      all "recursive macro"
        {|(define-syntax my-let*
            (syntax-rules ()
              ((_ () body ...) (begin body ...))
              ((_ ((x e) rest ...) body ...)
               (let ((x e)) (my-let* (rest ...) body ...)))))
          (my-let* ((a 1) (b (+ a 1)) (c (* b 2))) (list a b c))|}
        "(1 2 4)";
      all "literals must match"
        {|(define-syntax for
            (syntax-rules (in)
              ((_ x in lst body ...) (for-each (lambda (x) body ...) lst))))
          (let ((seen '()))
            (for v in '(a b c) (set! seen (cons v seen)))
            (reverse seen))|}
        "(a b c)";
      all "ellipsis over pairs"
        {|(define-syntax alist
            (syntax-rules () ((_ (k v) ...) (list (cons 'k v) ...))))
          (alist (a 1) (b 2) (c 3))|}
        "((a . 1) (b . 2) (c . 3))";
      all "ellipsis with empty repetition"
        {|(define-syntax count-args
            (syntax-rules () ((_ e ...) (length (list 'e ...)))))
          (list (count-args) (count-args x) (count-args x y z))|}
        "(0 1 3)";
      all "ellipsis before fixed tail"
        {|(define-syntax all-but-last
            (syntax-rules () ((_ e ... last) (list e ...))))
          (all-but-last 1 2 3 4)|}
        "(1 2 3)";
      all "nested ellipses"
        {|(define-syntax flatten2
            (syntax-rules () ((_ (a ...) ...) (append (list a ...) ...))))
          (flatten2 (1 2) () (3 4 5))|}
        "(1 2 3 4 5)";
      all "macro expanding to definitions"
        {|(define-syntax defconsts
            (syntax-rules () ((_ (name val) ...) (begin (define name val) ...))))
          (defconsts (seven 7) (eight 8))
          (+ seven eight)|}
        "15";
      all "wildcard pattern"
        {|(define-syntax second-of
            (syntax-rules () ((_ _ b) b)))
          (second-of (error 'no "never evaluated") 42)|}
        "42";
      all "dotted pattern"
        {|(define-syntax rest-of
            (syntax-rules () ((_ a . r) 'r)))
          (rest-of 1 2 3)|}
        "(2 3)";
      all "constant patterns"
        {|(define-syntax classify
            (syntax-rules ()
              ((_ 0) 'zero)
              ((_ 1) 'one)
              ((_ n) 'many)))
          (list (classify 0) (classify 1) (classify 5))|}
        "(zero one many)";
      all "macro used before other definitions"
        {|(define-syntax inc! (syntax-rules () ((_ v) (set! v (+ v 1)))))
          (define counter 0)
          (inc! counter) (inc! counter)
          counter|}
        "2";
      all "macros compose"
        {|(define-syntax unless2 (syntax-rules () ((_ t e) (if t #f e))))
          (define-syntax when2 (syntax-rules () ((_ t e) (unless2 (not t) e))))
          (when2 #t 'yes)|}
        "yes";
      all "macro inside eval"
        {|(eval '(begin
                  (define-syntax twice (syntax-rules () ((_ e) (+ e e))))
                  (twice 21)))|}
        "42";
      all "macros persist across eval in one session"
        {|(define-syntax quadruple (syntax-rules () ((_ e) (* 4 e))))
          (eval '(quadruple 10))|}
        "40";
    ]
  @ [
      check "core forms are not shadowed by macros"
        {|(define-syntax if2 (syntax-rules () ((_ a b c) (if a b c))))
          (if2 #t 'then 'else)|}
        "then";
      case "macro loops are detected" (fun () ->
          match
            Tutil.eval_stack
              {|(define-syntax loopy (syntax-rules () ((_ x) (loopy x))))
                (loopy 1)|}
          with
          | v -> Alcotest.failf "expected expansion error, got %s" v
          | exception Expander.Expand_error _ -> ()
          | exception Macro.Macro_error _ -> ());
      case "no matching rule reports an error" (fun () ->
          match
            Tutil.eval_stack
              {|(define-syntax one-arg (syntax-rules () ((_ x) x)))
                (one-arg 1 2 3)|}
          with
          | v -> Alcotest.failf "expected macro error, got %s" v
          | exception Macro.Macro_error _ -> ());
      case "mismatched ellipsis lengths rejected" (fun () ->
          match
            Tutil.eval_stack
              {|(define-syntax zip2
                  (syntax-rules () ((_ (a ...) (b ...)) (list (cons a b) ...))))
                (zip2 (1 2 3) (x y))|}
          with
          | v -> Alcotest.failf "expected macro error, got %s" v
          | exception Macro.Macro_error _ -> ());
      case "macros do not leak across sessions" (fun () ->
          let s1 = Scheme.create () in
          ignore
            (Scheme.eval s1
               "(define-syntax leaky (syntax-rules () ((_ e) (* 2 e))))");
          let s2 = Scheme.create () in
          match Scheme.eval_string s2 "(leaky 1)" with
          | v -> Alcotest.failf "macro leaked: %s" v
          | exception Rt.Scheme_error _ -> ());
    ]
