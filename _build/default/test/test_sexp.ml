(* Reader/writer unit tests and the read-write round-trip property. *)

let case = Tutil.case

let read_to_string src = Sexp.to_string (Sexp.read_one src)

let check_read name src expected =
  case name (fun () ->
      Alcotest.(check string) src expected (read_to_string src))

let check_read_error name src =
  case name (fun () ->
      match Sexp.read_all src with
      | _ -> Alcotest.failf "expected read error for %S" src
      | exception Sexp.Read_error _ -> ())

let unit_tests =
  [
    check_read "symbol" "foo" "foo";
    check_read "weird symbol" "call/cc" "call/cc";
    check_read "arith symbols" "1+" "1+";
    check_read "fixnum" "42" "42";
    check_read "negative fixnum" "-17" "-17";
    check_read "explicit positive" "+17" "17";
    check_read "boolean true" "#t" "#t";
    check_read "boolean false" "#f" "#f";
    check_read "character" "#\\a" "#\\a";
    check_read "newline char" "#\\newline" "#\\newline";
    check_read "space char" "#\\space" "#\\space";
    check_read "string" {|"hello"|} {|"hello"|};
    check_read "string escapes" {|"a\"b\\c\nd"|} {|"a\"b\\c\nd"|};
    check_read "empty list" "()" "()";
    check_read "proper list" "(1 2 3)" "(1 2 3)";
    check_read "brackets" "[1 2]" "(1 2)";
    check_read "nested" "((a) (b (c)))" "((a) (b (c)))";
    check_read "dotted pair" "(1 . 2)" "(1 . 2)";
    check_read "dotted list" "(1 2 . 3)" "(1 2 . 3)";
    check_read "dot then list collapses" "(1 . (2 3))" "(1 2 3)";
    check_read "vector" "#(1 2 3)" "#(1 2 3)";
    check_read "quote sugar" "'x" "(quote x)";
    check_read "quasiquote sugar" "`x" "(quasiquote x)";
    check_read "unquote sugar" ",x" "(unquote x)";
    check_read "unquote-splicing sugar" ",@x" "(unquote-splicing x)";
    check_read "nested quotes" "''x" "(quote (quote x))";
    check_read "line comment" "; hi\n42" "42";
    check_read "block comment" "#| hi |# 42" "42";
    check_read "nested block comment" "#| a #| b |# c |# 42" "42";
    check_read "datum comment" "#;(1 2) 42" "42";
    check_read "datum comment in list" "(1 #;2 3)" "(1 3)";
    case "read_all several" (fun () ->
        Alcotest.(check int) "count" 3 (List.length (Sexp.read_all "1 2 3")));
    case "read_all empty input" (fun () ->
        Alcotest.(check int) "count" 0 (List.length (Sexp.read_all " ; c\n")));
    case "positions tracked" (fun () ->
        let d = Sexp.read_one "\n  foo" in
        let p = Sexp.pos_of d in
        Alcotest.(check int) "line" 2 p.Sexp.line;
        Alcotest.(check int) "col" 2 p.Sexp.col);
    check_read_error "unterminated list" "(1 2";
    check_read_error "unterminated string" {|"abc|};
    check_read_error "unterminated block comment" "#| xx";
    check_read_error "stray close paren" ")";
    check_read_error "mismatched bracket" "(1 2]";
    check_read_error "bad char name" "#\\bogus";
    check_read_error "bad hash syntax" "#q";
    check_read_error "dotted with no head" "( . 2)";
    case "read_one on two datums" (fun () ->
        match Sexp.read_one "1 2" with
        | _ -> Alcotest.fail "expected read error"
        | exception Sexp.Read_error _ -> ());
    check_read_error "fixnum overflow" "99999999999999999999999999";
  ]

(* Round-trip property: write then read gives a structurally equal datum. *)
let gen_datum =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map (fun n -> Sexp.Int (n, { Sexp.line = 0; col = 0 })) small_signed_int;
        map
          (fun s -> Sexp.Sym ((if s = "" then "x" else s), { Sexp.line = 0; col = 0 }))
          (string_size ~gen:(char_range 'a' 'z') (int_range 1 8));
        map (fun b -> Sexp.Bool (b, { Sexp.line = 0; col = 0 })) bool;
        map (fun c -> Sexp.Char (c, { Sexp.line = 0; col = 0 })) (char_range 'a' 'z');
        map
          (fun s -> Sexp.Str (s, { Sexp.line = 0; col = 0 }))
          (string_size ~gen:(char_range ' ' '~') (int_range 0 10));
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          ( 2,
            map
              (fun l -> Sexp.List (l, { Sexp.line = 0; col = 0 }))
              (list_size (int_range 0 4) (go (depth - 1))) );
          ( 1,
            map
              (fun l -> Sexp.Vec (l, { Sexp.line = 0; col = 0 }))
              (list_size (int_range 0 3) (go (depth - 1))) );
          ( 1,
            map2
              (fun l last ->
                match l with
                | [] -> last
                | _ -> Sexp.Dotted (l, last, { Sexp.line = 0; col = 0 }))
              (list_size (int_range 1 3) (go (depth - 1)))
              atom );
        ]
  in
  go 4

let arb_datum = QCheck.make ~print:Sexp.to_string gen_datum

let roundtrip_prop =
  QCheck.Test.make ~name:"write/read round trip" ~count:500 arb_datum (fun d ->
      Sexp.equal d (Sexp.read_one (Sexp.to_string d)))

let prop_tests = [ QCheck_alcotest.to_alcotest roundtrip_prop ]
let suite = unit_tests @ prop_tests
