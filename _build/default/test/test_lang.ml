(* Language semantics, checked on every backend (stack VM with default and
   tiny segments, stack VM with call/cc overflow policy, heap VM, oracle).
   The tiny-segment configurations force the overflow/underflow machinery
   on ordinary programs. *)

let all = Tutil.check_all

let suite =
  List.concat
    [
      (* literals and basics *)
      all "fixnum" "42" "42";
      all "negative" "-7" "-7";
      all "boolean" "#t" "#t";
      all "character" "#\\a" "#\\a";
      all "string literal" {|"hi\n"|} {|"hi\n"|};
      all "empty list" "'()" "()";
      all "symbol" "'foo" "foo";
      all "vector literal" "'#(1 a)" "#(1 a)";
      all "void" "(void)" "#<void>";
      (* arithmetic *)
      all "add many" "(+ 1 2 3 4)" "10";
      all "add none" "(+)" "0";
      all "subtract" "(- 10 3 2)" "5";
      all "negate" "(- 5)" "-5";
      all "multiply" "(* 2 3 4)" "24";
      all "quotient" "(quotient 17 5)" "3";
      all "remainder negative" "(remainder -7 2)" "-1";
      all "modulo negative" "(modulo -7 2)" "1";
      all "modulo negative divisor" "(modulo 7 -2)" "-1";
      all "abs" "(abs -9)" "9";
      all "min max" "(list (min 3 1 2) (max 3 1 2))" "(1 3)";
      all "compare chain true" "(< 1 2 3)" "#t";
      all "compare chain false" "(< 1 3 2)" "#f";
      all "zero?" "(list (zero? 0) (zero? 1))" "(#t #f)";
      all "even odd" "(list (even? 4) (odd? 4))" "(#t #f)";
      (* predicates and equality *)
      all "eq? symbols" "(eq? 'a 'a)" "#t";
      all "eq? fresh pairs" "(eq? (cons 1 2) (cons 1 2))" "#f";
      all "eq? same pair" "(let ((p (cons 1 2))) (eq? p p))" "#t";
      all "eqv? numbers" "(eqv? 100000 100000)" "#t";
      all "equal? lists" "(equal? '(1 (2 3)) '(1 (2 3)))" "#t";
      all "equal? vectors" "(equal? #(1 2) #(1 2))" "#t";
      all "equal? strings" {|(equal? "ab" "ab")|} "#t";
      all "not" "(list (not #f) (not 0) (not '()))" "(#t #f #f)";
      all "truthiness of zero" "(if 0 'yes 'no)" "yes";
      all "truthiness of empty list" "(if '() 'yes 'no)" "yes";
      (* pairs and lists *)
      all "cons car cdr" "(car (cons 1 2))" "1";
      all "set-car!" "(let ((p (cons 1 2))) (set-car! p 9) p)" "(9 . 2)";
      all "set-cdr!" "(let ((p (cons 1 2))) (set-cdr! p '(3)) p)" "(1 3)";
      all "list" "(list 1 2 3)" "(1 2 3)";
      all "length" "(length '(a b c))" "3";
      all "append" "(append '(1) '(2 3) '() '(4))" "(1 2 3 4)";
      all "append improper last" "(append '(1) 2)" "(1 . 2)";
      all "reverse" "(reverse '(1 2 3))" "(3 2 1)";
      all "list-ref" "(list-ref '(a b c) 1)" "b";
      all "list-tail" "(list-tail '(a b c d) 2)" "(c d)";
      all "assq found" "(assq 'b '((a 1) (b 2)))" "(b 2)";
      all "assq missing" "(assq 'z '((a 1)))" "#f";
      all "assoc equal keys" "(assoc '(1) '(((1) . x)))" "((1) . x)";
      all "memq" "(memq 'c '(a b c d))" "(c d)";
      all "member" "(member '(1) '((1) (2)))" "((1) (2))";
      (* strings, chars, symbols *)
      all "string-length" {|(string-length "hello")|} "5";
      all "string-append" {|(string-append "foo" "bar")|} {|"foobar"|};
      all "string-ref" {|(string-ref "abc" 1)|} "#\\b";
      all "substring" {|(substring "hello" 1 3)|} {|"el"|};
      all "string->symbol" {|(string->symbol "hi")|} "hi";
      all "symbol->string" "(symbol->string 'hi)" {|"hi"|};
      all "string->number" {|(string->number "42")|} "42";
      all "string->number bad" {|(string->number "4x")|} "#f";
      all "number->string" "(number->string -3)" {|"-3"|};
      all "char->integer" "(char->integer #\\A)" "65";
      all "integer->char" "(integer->char 97)" "#\\a";
      all "string mutation" {|(let ((s (string-copy "abc"))) (string-set! s 0 #\z) s)|}
        {|"zbc"|};
      all "string->list" {|(string->list "ab")|} "(#\\a #\\b)";
      all "list->string" "(list->string '(#\\h #\\i))" {|"hi"|};
      (* vectors *)
      all "make-vector fill" "(make-vector 3 'x)" "#(x x x)";
      all "vector-ref" "(vector-ref #(a b c) 2)" "c";
      all "vector-set!" "(let ((v (make-vector 2 0))) (vector-set! v 1 'y) v)"
        "#(0 y)";
      all "vector-length" "(vector-length #(1 2 3))" "3";
      all "vector->list" "(vector->list #(1 2))" "(1 2)";
      all "list->vector" "(list->vector '(1 2))" "#(1 2)";
      (* procedures and scoping *)
      all "lambda identity" "((lambda (x) x) 'v)" "v";
      all "closure captures" "(((lambda (x) (lambda (y) (list x y))) 1) 2)"
        "(1 2)";
      all "shadowing" "(let ((x 1)) (let ((x 2)) x))" "2";
      all "outer shadowed var survives" "(let ((x 1)) (let ((x 2)) x) x)" "1";
      all "rest args" "((lambda (a . r) (list a r)) 1 2 3)" "(1 (2 3))";
      all "rest args empty" "((lambda (a . r) r) 1)" "()";
      all "all-rest lambda" "((lambda r r) 1 2)" "(1 2)";
      all "lexical not dynamic" "(let ((x 1)) (define (f) x) (let ((x 2)) (if #f x 0) (f)))" "1";
      all "counter closure"
        "(define (mk) (let ((n 0)) (lambda () (set! n (+ n 1)) n))) (define c (mk)) (c) (c) (list (c) ((mk)))"
        "(3 1)";
      all "set! returns and mutates"
        "(let ((x 1)) (set! x 42) x)" "42";
      all "higher order" "(define (twice f x) (f (f x))) (twice (lambda (n) (* n n)) 3)"
        "81";
      all "apply basic" "(apply + '(1 2 3))" "6";
      all "apply mixed" "(apply list 1 2 '(3 4))" "(1 2 3 4)";
      all "apply of closure" "(apply (lambda (a b) (- a b)) '(10 4))" "6";
      all "procedure?" "(list (procedure? car) (procedure? (lambda () 1)) (procedure? 3))"
        "(#t #t #f)";
      (* recursion & iteration (exercise stack growth) *)
      all "factorial" "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1))))) (fact 12)"
        "479001600";
      all "tail sum loops forever-safe"
        "(let loop ((i 0) (acc 0)) (if (= i 10000) acc (loop (+ i 1) (+ acc i))))"
        "49995000";
      all "non-tail sum over segment boundaries"
        "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum 2000)" "2001000";
      all "mutual recursion"
        "(define (e? n) (if (= n 0) #t (o? (- n 1)))) (define (o? n) (if (= n 0) #f (e? (- n 1)))) (e? 3001)"
        "#f";
      all "ackermann" "(define (ack m n) (cond ((= m 0) (+ n 1)) ((= n 0) (ack (- m 1) 1)) (else (ack (- m 1) (ack m (- n 1)))))) (ack 2 3)"
        "9";
      (* multiple values *)
      all "values single" "(values 7)" "7";
      all "call-with-values" "(call-with-values (lambda () (values 1 2)) +)" "3";
      all "call-with-values list" "(call-with-values (lambda () (values 1 2 3)) list)"
        "(1 2 3)";
      all "values zero" "(call-with-values (lambda () (values)) (lambda () 'none))"
        "none";
      all "values through define"
        "(define (div-mod a b) (values (quotient a b) (remainder a b))) (call-with-values (lambda () (div-mod 17 5)) list)"
        "(3 2)";
      (* output *)
      all "display returns void" "(display 1)" "#<void>";
      (* prelude library *)
      all "map one list" "(map (lambda (x) (* x x)) '(1 2 3))" "(1 4 9)";
      all "map two lists" "(map + '(1 2) '(10 20))" "(11 22)";
      all "for-each order"
        "(let ((acc '())) (for-each (lambda (x) (set! acc (cons x acc))) '(1 2 3)) acc)"
        "(3 2 1)";
      all "filter" "(filter odd? '(1 2 3 4 5))" "(1 3 5)";
      all "fold-left" "(fold-left - 0 '(1 2 3))" "-6";
      all "fold-right" "(fold-right cons '() '(1 2))" "(1 2)";
      all "iota" "(iota 4)" "(0 1 2 3)";
      all "vector-map" "(vector-map 1+ #(1 2))" "#(2 3)";
      all "last-pair" "(last-pair '(1 2 3))" "(3)";
    ]
