(* Shared helpers for the test suites. *)

let default_fuel = 100_000_000

(* Evaluate on a fresh stack-VM session (prelude loaded); render with
   [write]. *)
let eval_stack ?(config = Control.default_config) ?(corpus = false) src =
  let s = Scheme.create ~backend:(Scheme.Stack config) () in
  if corpus then Scheme.load_corpus s;
  Scheme.eval_string ~fuel:default_fuel s src

let eval_heap ?(corpus = false) src =
  let s = Scheme.create ~backend:Scheme.Heap () in
  if corpus then Scheme.load_corpus s;
  Scheme.eval_string ~fuel:default_fuel s src

let eval_oracle ?(corpus = false) src =
  let s = Scheme.create ~backend:Scheme.Oracle () in
  if corpus then Scheme.load_corpus s;
  Scheme.eval_string ~fuel:default_fuel s src

(* A config that forces the overflow/underflow machinery constantly. *)
let tiny_config =
  { Control.default_config with seg_words = 128; hysteresis_words = 24 }

let tiny_callcc_config =
  { tiny_config with Control.overflow_policy = Control.As_callcc }

let copy_capture_config =
  { Control.default_config with Control.capture = Control.Copy_on_capture }

let case name f = Alcotest.test_case name `Quick f

(* Check that evaluating [src] on the stack VM yields [expected] (written
   representation). *)
let check_eval ?config ?corpus name src expected =
  case name (fun () ->
      Alcotest.(check string) src expected (eval_stack ?config ?corpus src))

(* Same source, checked on stack VM (default + tiny configs), heap VM, and
   oracle. *)
let check_all ?corpus name src expected =
  [
    case (name ^ " [stack]") (fun () ->
        Alcotest.(check string) src expected (eval_stack ?corpus src));
    case (name ^ " [stack/tiny]") (fun () ->
        Alcotest.(check string) src expected
          (eval_stack ~config:tiny_config ?corpus src));
    case (name ^ " [stack/tiny-cc]") (fun () ->
        Alcotest.(check string) src expected
          (eval_stack ~config:tiny_callcc_config ?corpus src));
    case (name ^ " [stack/copy-capture]") (fun () ->
        Alcotest.(check string) src expected
          (eval_stack ~config:copy_capture_config ?corpus src));
    case (name ^ " [heap]") (fun () ->
        Alcotest.(check string) src expected (eval_heap ?corpus src));
    case (name ^ " [oracle]") (fun () ->
        Alcotest.(check string) src expected (eval_oracle ?corpus src));
  ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Expect a Scheme-level error whose message contains [substr]. *)
let check_error ?config name src substr =
  case name (fun () ->
      match eval_stack ?config src with
      | v -> Alcotest.failf "expected error, got %s" v
      | exception Rt.Scheme_error (msg, _) ->
          if not (contains ~sub:substr msg) then
            Alcotest.failf "error %S does not mention %S" msg substr)

(* Expect Shot_continuation. *)
let check_shot ?config name src =
  case name (fun () ->
      match eval_stack ?config src with
      | v -> Alcotest.failf "expected shot-continuation error, got %s" v
      | exception Rt.Shot_continuation -> ())
