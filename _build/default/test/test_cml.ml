(* CML-style channels and mailboxes over one-shot continuations. *)

let case = Tutil.case

let run ?(config = Control.default_config) src =
  let stats = Stats.create () in
  let s = Scheme.create ~backend:(Scheme.Stack config) ~stats () in
  Scheme.load_corpus s;
  (Scheme.eval_string ~fuel:Tutil.default_fuel s src, stats)

let check name src expected =
  case name (fun () ->
      Alcotest.(check string) src expected (fst (run src)))

let suite =
  [
    check "producer/consumer rendezvous"
      {|(let ((ch (make-channel)) (out '()))
          (run-threads
           (list
            (lambda ()
              (let loop ((i 0))
                (if (< i 5)
                    (begin (channel-send ch i) (loop (+ i 1)))
                    (channel-send ch 'done))))
            (lambda ()
              (let loop ()
                (let ((v (channel-recv ch)))
                  (set! out (cons v out))
                  (if (eq? v 'done) 'fin (loop))))))
           50 %call/1cc)
          (reverse out))|}
      "(0 1 2 3 4 done)";
    check "receiver arrives first"
      {|(let ((ch (make-channel)) (got #f))
          (run-threads
           (list
            (lambda () (set! got (channel-recv ch)))
            (lambda () (channel-send ch 'hello)))
           100 %call/1cc)
          got)|}
      "hello";
    check "many producers one consumer"
      {|(let ((ch (make-channel)) (sum 0))
          (run-threads
           (cons
            (lambda ()
              (let loop ((n 6))
                (if (> n 0) (begin (set! sum (+ sum (channel-recv ch)))
                                   (loop (- n 1))))))
            (map (lambda (i) (lambda () (channel-send ch i) (channel-send ch i)))
                 '(1 2 3)))
           20 %call/1cc)
          sum)|}
      "12";
    check "spawn from a running thread"
      {|(let ((out '()))
          (run-threads
           (list
            (lambda ()
              (spawn (lambda () (set! out (cons 'child out))))
              (set! out (cons 'parent out))))
           100 %call/1cc)
          (reverse out))|}
      "(parent child)";
    check "yield interleaves cooperatively"
      {|(let ((out '()))
          (define (worker tag)
            (lambda ()
              (set! out (cons tag out)) (yield)
              (set! out (cons tag out))))
          (run-threads (list (worker 'a) (worker 'b)) 1000000 %call/1cc)
          (reverse out))|}
      "(a b a b)";
    check "pipeline of channels"
      {|(let ((c1 (make-channel)) (c2 (make-channel)) (out '()))
          (run-threads
           (list
            (lambda () (for-each (lambda (i) (channel-send c1 i)) '(1 2 3))
                       (channel-send c1 'eof))
            (lambda ()
              (let loop ()
                (let ((v (channel-recv c1)))
                  (if (eq? v 'eof)
                      (channel-send c2 'eof)
                      (begin (channel-send c2 (* v 10)) (loop))))))
            (lambda ()
              (let loop ()
                (let ((v (channel-recv c2)))
                  (if (eq? v 'eof) 'fin
                      (begin (set! out (cons v out)) (loop)))))))
           30 %call/1cc)
          (reverse out))|}
      "(10 20 30)";
    check "cml-select picks the ready channel"
      {|(let ((a (make-channel)) (b (make-channel)) (got #f))
          (run-threads
           (list
            (lambda () (channel-send b 'from-b))
            (lambda ()
              (let ((r (cml-select (list a b))))
                (set! got (cdr r)))))
           100 %call/1cc)
          got)|}
      "from-b";
    check "mailbox buffers without blocking sender"
      {|(let ((m (make-mailbox)) (out '()))
          (run-threads
           (list
            (lambda ()
              (mailbox-post! m 1) (mailbox-post! m 2) (mailbox-post! m 3))
            (lambda ()
              (set! out (list (mailbox-take m) (mailbox-take m) (mailbox-take m)))))
           100 %call/1cc)
          out)|}
      "(1 2 3)";
    check "mailbox blocks empty receiver until post"
      {|(let ((m (make-mailbox)) (got #f))
          (run-threads
           (list
            (lambda () (set! got (mailbox-take m)))
            (lambda () (mailbox-post! m 'late)))
           100 %call/1cc)
          got)|}
      "late";
    case "channel switches copy no stack words" (fun () ->
        let v, st =
          run
            {|(let ((ch (make-channel)) (n 0))
                (run-threads
                 (list
                  (lambda () (let loop ((i 0))
                               (if (< i 50)
                                   (begin (channel-send ch i) (loop (+ i 1))))))
                  (lambda () (let loop ((i 0))
                               (if (< i 50)
                                   (begin (set! n (+ n (channel-recv ch)))
                                          (loop (+ i 1)))))))
                 1000000 %call/1cc)
                n)|}
        in
        Alcotest.(check string) "sum" "1225" v;
        Alcotest.(check int) "no copying" 0 st.Stats.words_copied;
        Alcotest.(check bool) "many parks" true (st.Stats.captures_oneshot > 50));
    case "channels work across tiny segments" (fun () ->
        let v, _ =
          run ~config:Tutil.tiny_config
            {|(let ((ch (make-channel)) (out 0))
                (run-threads
                 (list
                  (lambda () (channel-send ch (fib 10)))
                  (lambda () (set! out (channel-recv ch))))
                 10 %call/1cc)
                out)|}
        in
        Alcotest.(check string) "fib" "55" v);
  ]
