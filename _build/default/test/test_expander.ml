(* Expander unit tests: derived forms lower to the expected core forms,
   and malformed inputs are rejected. *)

let case = Tutil.case

let expand_to_string src =
  match Expander.expand_string src with
  | [ top ] -> Ast.top_to_string top
  | tops -> String.concat " " (List.map Ast.top_to_string tops)

let check name src expected =
  case name (fun () ->
      Alcotest.(check string) src expected (expand_to_string src))

let check_error name src =
  case name (fun () ->
      match Expander.expand_string src with
      | _ -> Alcotest.failf "expected expand error for %S" src
      | exception Expander.Expand_error _ -> ())

(* Behavioural checks: easier than matching the exact expansion text. *)
let beh name src expected = Tutil.check_eval name src expected

let suite =
  [
    check "variable" "x" "x";
    check "self-evaluating int" "42" "'42";
    check "quote" "'(1 2)" "'(1 2)";
    check "if two-armed gets void" "(if a b)" "(if a b '#<void>)";
    check "begin flattens singleton" "(begin x)" "x";
    check "lambda" "(lambda (x) x)" "(lambda (x) x)";
    check "lambda rest" "(lambda (x . r) r)" "(lambda (x . r) r)";
    check "lambda all-rest" "(lambda r r)" "(lambda ( . r) r)";
    check "define procedure shorthand" "(define (f x) x)"
      "(define f (lambda (x) x))";
    check "define curried body" "(define (f . a) a)"
      "(define f (lambda ( . a) a))";
    check "let becomes application" "(let ((x 1)) x)" "((lambda (x) x) '1)";
    check "and empty" "(and)" "'#t";
    check "or empty" "(or)" "'#f";
    check "and chains" "(and a b)" "(if a b '#f)";
    check "when" "(when t a)" "(if t a '#<void>)";
    check "unless" "(unless t a)" "(if t '#<void> a)";
    (* behavioural *)
    beh "let*" "(let* ((x 1) (y (+ x 1))) (list x y))" "(1 2)";
    beh "letrec mutual" "(letrec ((e? (lambda (n) (if (= n 0) #t (o? (- n 1))))) (o? (lambda (n) (if (= n 0) #f (e? (- n 1)))))) (list (e? 10) (o? 10)))"
      "(#t #f)";
    beh "letrec*" "(letrec* ((a 1) (b (lambda () a))) (b))" "1";
    beh "named let" "(let f ((n 5)) (if (= n 0) 1 (* n (f (- n 1)))))" "120";
    beh "internal define" "((lambda () (define x 2) (define (f) x) (f)))" "2";
    beh "internal define after begin splice"
      "((lambda () (begin (define x 3)) x))" "3";
    beh "cond basic" "(cond (#f 1) (#t 2) (else 3))" "2";
    beh "cond else" "(cond (#f 1) (else 3))" "3";
    beh "cond arrow" "(cond ((memv 2 '(1 2 3)) => car) (else 'no))" "2";
    beh "cond test-only clause" "(cond (#f) (42))" "42";
    beh "cond empty" "(cond)" "#<void>";
    beh "case basic" "(case (* 2 3) ((2 3 5 7) 'prime) ((1 4 6 8 9) 'composite))"
      "composite";
    beh "case else" "(case 99 ((1) 'one) (else 'other))" "other";
    beh "do loop" "(do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 5) s))" "10";
    beh "do with body" "(let ((v (make-vector 3 0))) (do ((i 0 (+ i 1))) ((= i 3) v) (vector-set! v i i)))"
      "#(0 1 2)";
    beh "do step defaults to var" "(do ((i 0 (+ i 1)) (x 'kept)) ((= i 2) x))"
      "kept";
    beh "and returns last" "(and 1 2 3)" "3";
    beh "and short-circuits" "(and #f (error 'boom \"no\"))" "#f";
    beh "or returns first true" "(or #f 2 (error 'boom \"no\"))" "2";
    beh "or evaluates once"
      "(let ((n 0)) (or (begin (set! n (+ n 1)) n) #f) n)" "1";
    beh "quasiquote plain" "`(1 2)" "(1 2)";
    beh "quasiquote unquote" "`(1 ,(+ 1 1))" "(1 2)";
    beh "quasiquote splice" "`(1 ,@(list 2 3) 4)" "(1 2 3 4)";
    beh "quasiquote nested" "`(1 `(2 ,(+ 1 2)))" "(1 (quasiquote (2 (unquote (+ 1 2)))))";
    beh "quasiquote double unquote" "`(1 `(2 ,,(+ 1 2)))"
      "(1 (quasiquote (2 (unquote 3))))";
    beh "quasiquote vector" "`#(1 ,(+ 1 1))" "#(1 2)";
    beh "quasiquote dotted" "`(1 . ,(+ 1 1))" "(1 . 2)";
    beh "quasiquote atom" "`x" "x";
    check_error "if with no arms" "(if)";
    check_error "lambda without body" "(lambda (x))";
    check_error "lambda bad formals" "(lambda (1) 1)";
    check_error "set! non-symbol" "(set! 1 2)";
    check_error "let malformed binding" "(let ((x)) x)";
    check_error "unquote outside quasiquote" ",x";
    check_error "define in expression position" "(+ 1 (define x 2))";
    check_error "cond else not last" "(cond (else 1) (#t 2))";
    check_error "quote two datums" "(quote a b)";
    check_error "empty application" "()";
    check_error "body with only defines" "((lambda () (define x 1)))";
  ]
