(* Heap-VM-specific behaviour: per-call frame allocation, copy-on-write
   sharing for multi-shot reinstatement, and guard-based one-shot parity. *)

let case = Tutil.case

let run src =
  let stats = Stats.create () in
  let vm = Heapvm.create ~stats () in
  ignore (Heapvm.eval ~fuel:Tutil.default_fuel vm Prelude.source);
  let v = Values.write_string (Heapvm.eval ~fuel:Tutil.default_fuel vm src) in
  (v, stats)

let suite =
  [
    case "every call allocates a frame" (fun () ->
        let _, st = run "(define (f n) (if (= n 0) 0 (f (- n 1)))) (f 100)" in
        Alcotest.(check bool) "frames allocated" true
          (st.Stats.heap_frames > 100);
        Alcotest.(check bool) "frame words accounted" true
          (st.Stats.heap_frame_words > st.Stats.heap_frames));
    case "capture is pointer sharing (no stack copying)" (fun () ->
        let _, st =
          run "(define (f) (%call/cc (lambda (k) (k 1)))) (f)"
        in
        Alcotest.(check int) "no stack words copied" 0 st.Stats.words_copied);
    case "re-entry with temp mutation is sound (COW)" (fun () ->
        (* Without copy-on-write the second re-entry would observe the
           mutated temporaries of the first. *)
        let v, st =
          run
            {|(let ((k #f) (n 0) (acc '()))
                (+ 1 (%call/cc (lambda (c) (set! k c) 0)))
                (set! n (+ n 1))
                (set! acc (cons n acc))
                (if (< n 4) (k n) acc))|}
        in
        Alcotest.(check string) "accumulated" "(4 3 2 1)" v;
        Alcotest.(check bool) "cow copies happened" true
          (st.Stats.cow_copies > 0));
    case "one-shot guard consumed exactly once" (fun () ->
        let v, _ =
          run
            {|(let ((k #f))
                (define (go) (%call/1cc (lambda (c) (set! k c))) 'ret)
                (go)
                (%continuation-shot? k))|}
        in
        Alcotest.(check string) "shot after return" "#t" v);
    case "guards propagate through tail calls" (fun () ->
        let v, _ =
          run
            {|(let ((k #f))
                (define (tail-middle)
                  (%call/1cc (lambda (c) (set! k c) (middle))))
                (define (middle) 'done)
                (tail-middle)
                (%continuation-shot? k))|}
        in
        (* middle's return passes through the guarded frame chain *)
        Alcotest.(check string) "consumed" "#t" v);
    case "invoking an abandoned extent's continuation still works" (fun () ->
        (* A continuation does not get consumed by being jumped over. *)
        let v, _ =
          run
            {|(let ((k1 #f) (out '()))
                (call/cc (lambda (esc)
                  (call/cc (lambda (c) (set! k1 c)))
                  (set! out (cons 'body out))
                  (esc 'gone)))
                (if (= (length out) 1) (k1 #f) (length out)))|}
        in
        Alcotest.(check string) "re-entered" "2" v);
    case "deep recursion does not overflow anything" (fun () ->
        let v, st =
          run "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum 20000)"
        in
        Alcotest.(check string) "value" "200010000" v;
        Alcotest.(check int) "no overflow machinery" 0 st.Stats.overflows);
  ]
