test/test_lang.ml: List Tutil
