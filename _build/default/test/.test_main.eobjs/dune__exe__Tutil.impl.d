test/tutil.ml: Alcotest Control Rt Scheme String
