test/test_heap.ml: Alcotest Heapvm Prelude Stats Tutil Values
