test/test_threads.ml: Alcotest Control Printf Rt Scheme Stats Tutil
