test/test_expander.ml: Alcotest Ast Expander List String Tutil
