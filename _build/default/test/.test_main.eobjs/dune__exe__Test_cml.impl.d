test/test_cml.ml: Alcotest Control Scheme Stats Tutil
