test/test_compiler.ml: Alcotest Array Ast Bytecode Compiler Control Expander Globals List Optimize Printf Rt Scheme String Tutil
