test/test_features.ml: Alcotest List Rt Tutil Values
