test/test_conts.ml: Alcotest Control List Printf Programs Rt Scheme Stats Tutil
