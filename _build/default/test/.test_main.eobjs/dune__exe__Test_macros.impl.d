test/test_macros.ml: Alcotest Expander List Macro Rt Scheme Tutil
