test/test_sexp.ml: Alcotest List QCheck QCheck_alcotest Sexp Tutil
