test/test_diff.ml: Control Gen Lazy List Printf QCheck QCheck_alcotest Random Rt Scheme Tutil
