test/test_control.ml: Alcotest Array Bytecode Control List Rt Stats Tutil
