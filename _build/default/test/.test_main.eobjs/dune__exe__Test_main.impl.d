test/test_main.ml: Alcotest Test_cml Test_compiler Test_control Test_conts Test_diff Test_expander Test_features Test_heap Test_lang Test_macros Test_sexp Test_threads
