(* Extended-feature tests: flonums, error handling, promises, sorting,
   assert, and the stack-walking backtrace. *)

let all = Tutil.check_all
let check = Tutil.check_eval
let case = Tutil.case

let flonum_suite =
  List.concat
    [
      all "float literal" "2.5" "2.5";
      all "negative float" "-0.25" "-0.25";
      all "exponent literal" "1e3" "1000.0";
      all "mixed addition promotes" "(+ 1 2.5)" "3.5";
      all "mixed multiply" "(* 2.0 3)" "6.0";
      all "division exact when even" "(/ 4 2)" "2";
      all "division inexact otherwise" "(/ 1 2)" "0.5";
      all "reciprocal" "(/ 4)" "0.25";
      all "unary minus float" "(- 1.5)" "-1.5";
      all "mixed comparison" "(< 1 1.5 2)" "#t";
      all "equality across exactness" "(= 2 2.0)" "#t";
      all "eqv distinguishes exactness" "(eqv? 2 2.0)" "#f";
      all "floor" "(floor 2.7)" "2.0";
      all "ceiling" "(ceiling 2.1)" "3.0";
      all "truncate negative" "(truncate -2.7)" "-2.0";
      all "round to even down" "(round 2.5)" "2.0";
      all "round to even up" "(round 3.5)" "4.0";
      all "sqrt exact" "(sqrt 16)" "4";
      all "sqrt inexact" "(sqrt 2.25)" "1.5";
      all "expt integer" "(expt 2 10)" "1024";
      all "expt zero" "(expt 5 0)" "1";
      all "exact->inexact" "(exact->inexact 3)" "3.0";
      all "inexact->exact" "(inexact->exact 3.0)" "3";
      all "exact? inexact?" "(list (exact? 1) (exact? 1.0) (inexact? 1.0))"
        "(#t #f #t)";
      all "number? covers flonums" "(number? 1.5)" "#t";
      all "integer? is exact only" "(integer? 1.5)" "#f";
      all "string->number float" {|(string->number "3.5")|} "3.5";
      all "number->string float" "(number->string 2.5)" {|"2.5"|};
      all "infinity prints" "(/ 1.0 0.0)" "+inf.0";
      all "negative infinity" "(/ -1.0 0.0)" "-inf.0";
      all "min promotes" "(min 1 0.5)" "0.5";
      all "abs float" "(abs -2.5)" "2.5";
      all "float truthiness" "(if 0.0 'yes 'no)" "yes";
      all "equal? on float lists" "(equal? '(1.5 2.5) (list 1.5 2.5))" "#t";
      all "trig roundtrip" "(< (abs (- (sin 0.0) 0.0)) 0.001)" "#t";
      all "log exp" "(< (abs (- (log (exp 1.0)) 1.0)) 0.0001)" "#t";
      all "atan two args" "(< (abs (atan 0.0 1.0)) 0.0001)" "#t";
    ]

let error_suite =
  [
    check "handler catches runtime type error"
      "(try (lambda () (car 5)) (lambda (msg) 'caught))" "caught";
    check "handler receives message"
      {|(call-with-error-handler
         (lambda (msg irritants) (list 'got irritants))
         (lambda () (error 'who "bad" 1 2)))|}
      "(got (1 2))";
    check "value passes through when no error"
      "(try (lambda () 42) (lambda (m) 'caught))" "42";
    check "nested handlers: inner wins"
      {|(try (lambda ()
              (try (lambda () (error 'x "inner"))
                   (lambda (m) 'inner-caught)))
            (lambda (m) 'outer-caught))|}
      "inner-caught";
    check "nested handlers: inner can re-raise to outer"
      {|(try (lambda ()
              (try (lambda () (error 'x "boom"))
                   (lambda (m) (error 'y "again"))))
            (lambda (m) (list 'outer m)))|}
      {|(outer "y: again")|};
    check "handler popped after normal exit"
      {|(begin
          (try (lambda () 'fine) (lambda (m) 'no))
          (null? %error-handlers))|}
      "#t";
    check "dynamic-wind exits run when handler escapes"
      {|(let ((o '()))
          (try (lambda ()
                 (dynamic-wind
                   (lambda () (set! o (cons 'in o)))
                   (lambda () (error 'x "boom"))
                   (lambda () (set! o (cons 'out o)))))
               (lambda (m) #f))
          (reverse o))|}
      "(in out)";
    check "unbound variable is catchable"
      "(try (lambda () this-is-unbound) (lambda (m) 'caught))" "caught";
    check "arity error is catchable"
      "(try (lambda () ((lambda (x) x) 1 2)) (lambda (m) 'caught))" "caught";
    check "vector bounds error is catchable"
      "(try (lambda () (vector-ref (vector 1) 5)) (lambda (m) 'caught))"
      "caught";
    check "division by zero is catchable"
      "(try (lambda () (quotient 1 0)) (lambda (m) 'caught))" "caught";
    check "tiny segments: handler escape crosses boundaries"
      ~config:Tutil.tiny_config
      {|(define (deep n) (if (= n 0) (error 'deep "bottom") (+ 1 (deep (- n 1)))))
        (try (lambda () (deep 500)) (lambda (m) 'caught))|}
      "caught";
    case "heap VM handles errors too" (fun () ->
        Alcotest.(check string)
          "caught" "caught"
          (Tutil.eval_heap "(try (lambda () (car 5)) (lambda (m) 'caught))"));
    check "assert passes" "(begin (assert (= 1 1)) 'ok)" "ok";
    check "assert failure is catchable"
      "(try (lambda () (assert (= 1 2))) (lambda (m) 'caught))" "caught";
    check "uncaught errors still propagate" "(length %error-handlers)" "0";
  ]

let promise_suite =
  List.concat
    [
      all "force of delay" "(force (delay (+ 1 2)))" "3";
      all "force memoizes"
        "(let ((n 0)) (define p (delay (begin (set! n (+ n 1)) n))) (force p) (force p) (list (force p) n))"
        "(1 1)";
      all "force of non-promise" "(force 7)" "7";
      all "promise?" "(list (promise? (delay 1)) (promise? 1))" "(#t #f)";
      all "delayed effects don't run until forced"
        "(let ((n 0)) (define p (delay (set! n 99))) (list n (begin (force p) n)))"
        "(0 99)";
      all "lazy infinite structure"
        {|(begin
            (define (ints-from n) (cons n (delay (ints-from (+ n 1)))))
            (define (take s n)
              (if (= n 0) '() (cons (car s) (take (force (cdr s)) (- n 1)))))
            (take (ints-from 5) 4))|}
        "(5 6 7 8)";
    ]

let sort_suite =
  List.concat
    [
      all "sort numbers" "(sort < '(3 1 4 1 5 9 2 6))" "(1 1 2 3 4 5 6 9)";
      all "sort empty" "(sort < '())" "()";
      all "sort singleton" "(sort < '(1))" "(1)";
      all "sort descending" "(sort > '(1 2 3))" "(3 2 1)";
      all "sort stable"
        {|(map cdr (sort (lambda (a b) (< (car a) (car b)))
                         '((2 . a) (1 . b) (2 . c) (1 . d))))|}
        "(b d a c)";
      all "sort longer list"
        "(sort < (reverse (iota 50)))"
        (Values.write_string
           (Values.list_to_value (List.init 50 (fun i -> Rt.Int i))));
    ]

let backtrace_suite =
  [
    check "backtrace names non-tail callers"
      {|(define (inner) (%backtrace))
        (define (middle) (let ((r (inner))) r))
        (define (outer) (let ((r (middle))) r))
        (let ((b (let ((r (outer))) r)))
          (list (car b) (cadr b)))|}
      "(middle outer)";
    check "tail calls leave no frames"
      {|(define (a) (%backtrace))
        (define (b) (a))
        (define (c) (b))
        ;; the only frames are the non-tail (c) call's and the toplevel's
        (length (c))|}
      "2";
    check ~config:Tutil.tiny_config "backtrace crosses segment boundaries"
      {|(define (deep n)
          (if (= n 0) (length (%backtrace)) (+ 1 (deep (- n 1)))))
        (> (deep 200) 30)|}
      "#t";
    case "heap VM backtrace matches" (fun () ->
        Alcotest.(check string)
          "names" "(middle outer)"
          (Tutil.eval_heap
             {|(define (inner) (%backtrace))
               (define (middle) (let ((r (inner))) r))
               (define (outer) (let ((r (middle))) r))
               (let ((b (let ((r (outer))) r)))
                 (list (car b) (cadr b)))|}));
  ]

let suite =
  flonum_suite @ error_suite @ promise_suite @ sort_suite @ backtrace_suite

(* Corpus benchmark programs compute their known values on every backend
   (small parameters). *)
let corpus_suite =
  let corpus_all name src expected = Tutil.check_all ~corpus:true name src expected in
  List.concat
    [
      corpus_all "corpus tak" "(tak 8 5 2)" "5";
      corpus_all "corpus cpstak" "(cpstak 8 5 2)" "5";
      corpus_all "corpus takl" "(takl 8 5 2)" "5";
      corpus_all "corpus fib" "(fib 12)" "144";
      corpus_all "corpus ack" "(ack 2 4)" "11";
      corpus_all "corpus queens" "(queens-count 5)" "10";
      corpus_all "corpus boyer" "(boyer-run 6)" "#t";
      corpus_all "corpus deep" "(deep 500)" "500";
      corpus_all "corpus div iterative/recursive agree"
        "(let ((l (create-n 20))) (equal? (reverse (iterative-div2 l)) (recursive-div2 l)))"
        "#t";
      corpus_all "corpus destruct" "(destruct-bench 4 6 2)" "4";
      corpus_all "corpus mandel" "(mandel-count 8 15)" "14";
      corpus_all "corpus ctak one-shot"
        "(set! ctak-capture %call/1cc) (ctak 10 6 3)" "4";
    ]

(* case-lambda, output capture, and the extended char/string library. *)
let library_suite =
  List.concat
    [
      all "case-lambda picks by arity"
        "((case-lambda ((a) (list 1 a)) ((a b) (list 2 a b))) 5)" "(1 5)";
      all "case-lambda second clause"
        "((case-lambda ((a) 1) ((a b) (+ a b))) 7 8)" "15";
      all "case-lambda rest clause"
        "((case-lambda ((a) 1) (r (length r))) 1 2 3 4)" "4";
      all "case-lambda dotted clause"
        "((case-lambda ((a b . r) (list a b r))) 1 2 3 4)" "(1 2 (3 4))";
      (* not on the oracle: it cannot intercept VM-level errors *)
      [
        check "case-lambda no clause errors"
          "(try (lambda () ((case-lambda ((a) 1)) 1 2)) (lambda (m) 'none))"
          "none";
      ];
      all "case-lambda closes over environment"
        "(let ((x 10)) ((case-lambda ((a) (+ x a))) 5))" "15";
      all "with-output-to-string captures"
        {|(with-output-to-string (lambda () (display "ab") (display 42)))|}
        {|"ab42"|};
      all "with-output-to-string nests"
        {|(with-output-to-string
           (lambda ()
             (display "a")
             (display (with-output-to-string (lambda () (display "x"))))
             (display "b")))|}
        {|"axb"|};
      all "output outside capture unaffected"
        {|(begin (display "keep") (with-output-to-string (lambda () (display "drop"))) 'ok)|}
        "ok";
      all "list? proper" "(list? '(1 2 3))" "#t";
      all "list? improper" "(list? '(1 . 2))" "#f";
      all "list? empty" "(list? '())" "#t";
      all "string<?" {|(string<? "abc" "abd")|} "#t";
      all "string>?" {|(string>? "b" "a")|} "#t";
      all "string case" {|(list (string-upcase "hi") (string-downcase "HI"))|}
        {|("HI" "hi")|};
      all "char predicates"
        {|(list (char-alphabetic? #\a) (char-numeric? #\7) (char-whitespace? #\space) (char-alphabetic? #\7))|}
        "(#t #t #t #f)";
      all "char case" "(list (char-upcase #\\a) (char-downcase #\\B))"
        "(#\\A #\\b)";
      all "make-string" "(make-string 3 #\\z)" {|"zzz"|};
      all "string constructor" "(string #\\a #\\b)" {|"ab"|};
      all "sort strings" {|(sort string<? '("pear" "apple" "fig"))|}
        {|("apple" "fig" "pear")|};
    ]

let hashtable_suite =
  List.concat
    [
      all "hashtable basic"
        {|(let ((h (make-hashtable)))
            (hashtable-set! h 'a 1)
            (hashtable-set! h 'b 2)
            (list (hashtable-ref h 'a #f) (hashtable-ref h 'z 'nope)
                  (hashtable-size h)))|}
        "(1 nope 2)";
      all "hashtable overwrite"
        {|(let ((h (make-hashtable)))
            (hashtable-set! h 'k 1)
            (hashtable-set! h 'k 2)
            (list (hashtable-ref h 'k #f) (hashtable-size h)))|}
        "(2 1)";
      all "hashtable delete"
        {|(let ((h (make-hashtable)))
            (hashtable-set! h 1 'one)
            (hashtable-delete! h 1)
            (list (hashtable-contains? h 1) (hashtable-size h)))|}
        "(#f 0)";
      all "hashtable fixnum and char keys"
        {|(let ((h (make-hashtable)))
            (hashtable-set! h 42 'num)
            (hashtable-set! h #\x 'char)
            (list (hashtable-ref h 42 #f) (hashtable-ref h #\x #f)))|}
        "(num char)";
      all "hashtable copy is independent"
        {|(let ((h (make-hashtable)))
            (hashtable-set! h 'a 1)
            (let ((h2 (hashtable-copy h)))
              (hashtable-set! h2 'a 99)
              (list (hashtable-ref h 'a #f) (hashtable-ref h2 'a #f))))|}
        "(1 99)";
      all "hashtable keys sortable"
        {|(let ((h (make-hashtable)))
            (for-each (lambda (k) (hashtable-set! h k (* k k))) '(3 1 2))
            (sort < (hashtable-keys h)))|}
        "(1 2 3)";
      all "hashtable?" "(list (hashtable? (make-hashtable)) (hashtable? 5))"
        "(#t #f)";
      [
        check "hashtable bad key is catchable"
          {|(try (lambda () (hashtable-set! (make-hashtable) (list 1) 'x))
                (lambda (m) 'bad-key))|}
          "bad-key";
      ];
    ]

let suite = suite @ corpus_suite @ library_suite @ hashtable_suite
