(* Thread systems and engines: the machinery behind Figure 5. *)

let case = Tutil.case

let run_stack ?(config = Control.default_config) src =
  let stats = Stats.create () in
  let s = Scheme.create ~backend:(Scheme.Stack config) ~stats () in
  Scheme.load_corpus s;
  let v = Scheme.eval_string ~fuel:Tutil.default_fuel s src in
  (v, stats, s)

let check_result name src expected =
  case name (fun () ->
      let v, _, _ = run_stack src in
      Alcotest.(check string) src expected v)

let fib_expected n =
  let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in
  fib n

let suite =
  [
    (* timer basics *)
    check_result "timer fires and handler runs"
      {|(let ((hits 0))
          (define (handler) (set! hits (+ hits 1)))
          (%set-timer! 3 handler)
          (fib 10)
          (%set-timer! 0 handler)
          (> hits 0))|}
      "#t";
    check_result "timer disabled does not fire"
      {|(let ((hits 0))
          (define (handler) (set! hits (+ hits 1)))
          (%set-timer! 0 handler)
          (fib 8)
          hits)|}
      "0";
    check_result "get-timer reads remaining ticks"
      {|(begin
          (%set-timer! 1000 (lambda () 'never))
          (fib 5)
          (let ((left (%get-timer)))
            (%set-timer! 0 (lambda () 'never))
            (and (> left 0) (< left 1000))))|}
      "#t";
    (* scheduler: correctness of results under preemption *)
    check_result "threads compute correct results"
      {|(let ((results (make-vector 3 #f)))
          (run-threads
           (list (lambda () (vector-set! results 0 (fib 10)))
                 (lambda () (vector-set! results 1 (tak 8 5 2)))
                 (lambda () (vector-set! results 2 (ack 2 3))))
           7 %call/1cc)
          results)|}
      (Printf.sprintf "#(%d 5 9)" (fib_expected 10));
    check_result "threads with call/cc capture"
      {|(let ((results (make-vector 2 #f)))
          (run-threads
           (list (lambda () (vector-set! results 0 (fib 9)))
                 (lambda () (vector-set! results 1 (fib 8))))
           3 %call/cc)
          results)|}
      (Printf.sprintf "#(%d %d)" (fib_expected 9) (fib_expected 8));
    check_result "threads interleave"
      {|(let ((trace '()))
          (define (spin tag n)
            (if (= n 0)
                (set! trace (cons tag trace))
                (begin (fib 5) (spin tag (- n 1)))))
          (run-threads
           (list (lambda () (spin 'a 4)) (lambda () (spin 'b 4)))
           5 %call/1cc)
          ;; both finished
          (list (if (memq 'a trace) #t #f) (if (memq 'b trace) #t #f)
                (length trace)))|}
      "(#t #t 2)";
    check_result "empty thread list" "(run-threads '() 4 %call/1cc)" "all-done";
    check_result "single thread no preemption needed"
      "(let ((r #f)) (run-threads (list (lambda () (set! r 'ran))) 1000000 %call/1cc) r)"
      "ran";
    check_result "run-fib-threads call/1cc" "(run-fib-threads 5 10 4 %call/1cc)"
      "all-done";
    check_result "run-fib-threads call/cc" "(run-fib-threads 5 10 4 %call/cc)"
      "all-done";
    check_result "run-fib-threads freq 1" "(run-fib-threads 3 8 1 %call/1cc)"
      "all-done";
    check_result "cps threads" "(run-cps-fib-threads 5 10 4)" "all-done";
    check_result "cps threads freq 1" "(run-cps-fib-threads 3 8 1)" "all-done";
    (* shape facts the paper relies on *)
    case "one-shot threads copy nothing" (fun () ->
        let _, st, _ = run_stack "(run-fib-threads 4 10 2 %call/1cc)" in
        Alcotest.(check int) "words copied" 0 st.Stats.words_copied;
        Alcotest.(check bool) "many one-shot switches" true
          (st.Stats.invokes_oneshot > 50));
    case "multi-shot threads copy per switch" (fun () ->
        let _, st, _ = run_stack "(run-fib-threads 4 10 2 %call/cc)" in
        Alcotest.(check bool) "copied" true (st.Stats.words_copied > 0);
        Alcotest.(check bool) "many multi switches" true
          (st.Stats.invokes_multi > 50));
    case "one-shot threads hit the segment cache" (fun () ->
        let _, st, _ = run_stack "(run-fib-threads 4 10 2 %call/1cc)" in
        Alcotest.(check bool) "cache hits" true (st.Stats.cache_hits > 10));
    case "cps threads capture no stack continuations" (fun () ->
        let _, st, _ = run_stack "(run-cps-fib-threads 4 10 2)" in
        (* one call/1cc for the exit continuation only *)
        Alcotest.(check bool) "at most one capture" true
          (st.Stats.captures_oneshot <= 1 && st.Stats.captures_multi = 0));
    (* engines *)
    check_result "engine completes"
      "(engine-run-to-completion 1000000 (make-engine (lambda () (fib 10))))"
      (string_of_int (fib_expected 10));
    check_result "engine completes across many slices"
      "(engine-run-to-completion 5 (make-engine (lambda () (fib 10))))"
      (string_of_int (fib_expected 10));
    check_result "engine single tick slices"
      "(engine-run-to-completion 1 (make-engine (lambda () (fib 6))))"
      (string_of_int (fib_expected 6));
    check_result "engine expire hands over a runnable engine"
      {|(let ((e ((make-engine (lambda () (fib 10))) 3
                  (lambda (r v) 'finished-too-fast)
                  (lambda (next) next))))
          (if (procedure? e)
              (engine-run-to-completion 50 e)
              e))|}
      (string_of_int (fib_expected 10));
    check_result "engine complete receives remaining ticks"
      {|((make-engine (lambda () 'quick)) 1000
         (lambda (remaining v) (list v (> remaining 0)))
         (lambda (next) 'expired))|}
      "(quick #t)";
    case "engine rejects non-positive ticks" (fun () ->
        match
          run_stack
            "((make-engine (lambda () 1)) 0 (lambda (r v) v) (lambda (e) e))"
        with
        | v, _, _ -> Alcotest.failf "expected error, got %s" v
        | exception Rt.Scheme_error (msg, _) ->
            Alcotest.(check bool) "mentions ticks" true
              (Tutil.contains ~sub:"ticks" msg));
    check_result "two engines round-robin manually"
      {|(let ((log '()))
          (define (note x) (set! log (cons x log)))
          (define (run2 e1 e2)
            (e1 4
                (lambda (r v) (note (cons 'done1 v))
                  (e2 1000000 (lambda (r v) (note (cons 'done2 v)) 'ok)
                      (lambda (n) 'no)))
                (lambda (n1)
                  (e2 4
                      (lambda (r v) (note (cons 'done2 v))
                        (n1 1000000 (lambda (r v) (note (cons 'done1 v)) 'ok)
                            (lambda (n) 'no)))
                      (lambda (n2) (run2 n1 n2))))))
          (run2 (make-engine (lambda () (fib 8)))
                (make-engine (lambda () (fib 7))))
          (list (length log)
                (if (assq 'done1 log) (cdr (assq 'done1 log)) #f)
                (if (assq 'done2 log) (cdr (assq 'done2 log)) #f)))|}
      (Printf.sprintf "(2 %d %d)" (fib_expected 8) (fib_expected 7));
    (* threads on tiny segments: preemption across overflow machinery *)
    case "threads survive tiny segments" (fun () ->
        let v, _, _ =
          run_stack ~config:Tutil.tiny_config
            "(run-fib-threads 3 9 4 %call/1cc)"
        in
        Alcotest.(check string) "done" "all-done" v);
    case "threads survive tiny segments with call/cc overflow" (fun () ->
        let v, _, _ =
          run_stack ~config:Tutil.tiny_callcc_config
            "(run-fib-threads 3 9 4 %call/cc)"
        in
        Alcotest.(check string) "done" "all-done" v);
  ]
