(** The thread systems of the paper's Figure 5, as user-level Scheme:
    a preemptive round-robin scheduler parameterized by the capture
    operator ([run-threads], [run-fib-threads]), and a CPS system in which
    every control point is a heap closure ([run-cps-fib-threads]). *)

val scheduler : string
