(** CML-flavoured concurrency over one-shot continuations (the paper's
    citation [21]): [spawn], [yield], synchronous [channel]s that park
    blocked threads' continuations, a simplified [cml-select], and
    asynchronous mailboxes.  Runs inside the preemptive scheduler of
    {!Threads}. *)

val source : string
