(* Benchmark and test programs (Scheme sources).  These are the workloads
   behind the paper's evaluation:

   - [ctak]: the call-intensive tak variant that captures and invokes a
     continuation at every call (Section 4, first experiment);
   - [fib]: the per-thread workload of Figure 5;
   - [deep]: the deep-recursion workload of the overflow experiment;
   - [tak], [ack], [queens], [boyer]: the closure-free corpus used for the
     per-frame-overhead comparison with the heap model (Section 5). *)

let tak =
  {scheme|
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
|scheme}

let fib =
  {scheme|
(define (fib n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
|scheme}

let ack =
  {scheme|
(define (ack m n)
  (cond ((= m 0) (+ n 1))
        ((= n 0) (ack (- m 1) 1))
        (else (ack (- m 1) (ack m (- n 1))))))
|scheme}

(* ctak parameterized over the capture operator: set the global
   [ctak-capture] to call/cc or call/1cc (or the raw %-operators) before
   calling [ctak].  Every continuation captured here is invoked exactly
   once, so one-shot continuations are legal. *)
let ctak =
  {scheme|
(define ctak-capture #f)

(define (ctak x y z)
  (ctak-capture (lambda (k) (ctak-aux k x y z))))

(define (ctak-aux k x y z)
  (if (not (< y x))
      (k z)
      (ctak-aux
       k
       (ctak-capture (lambda (k) (ctak-aux k (- x 1) y z)))
       (ctak-capture (lambda (k) (ctak-aux k (- y 1) z x)))
       (ctak-capture (lambda (k) (ctak-aux k (- z 1) x y))))))
|scheme}

(* Deep non-tail recursion: every call pushes a frame, so [n] calls cross
   roughly n*frame/segment segment boundaries; [deep-loop] repeats it so
   overflow/underflow handling dominates (the paper's 10^6-call test). *)
let deep =
  {scheme|
(define (deep n)
  (if (= n 0) 0 (+ 1 (deep (- n 1)))))

(define (deep-loop times n)
  (if (= times 0)
      'done
      (begin (deep n) (deep-loop (- times 1) n))))
|scheme}

let queens =
  {scheme|
(define (queens-ok? row dist placed)
  (if (null? placed)
      #t
      (and (not (= (car placed) (+ row dist)))
           (not (= (car placed) (- row dist)))
           (not (= (car placed) row))
           (queens-ok? row (+ dist 1) (cdr placed)))))

(define (queens-count n)
  (let try ((row 0) (placed '()) (col 0))
    (cond ((= col n) 1)
          ((= row n) 0)
          (else
           (+ (if (queens-ok? row 1 placed)
                  (try 0 (cons row placed) (+ col 1))
                  0)
              (try (+ row 1) placed col))))))
|scheme}

(* A miniature of the Boyer benchmark's core: a tautology checker over
   if-expressions, heavy on pairs and recursion, allocating no closures. *)
let boyer =
  {scheme|
(define (taut-assq x env)
  (cond ((null? env) #f)
        ((eq? (caar env) x) (car env))
        (else (taut-assq x (cdr env)))))

(define (tautology? x true-env false-env)
  (cond ((eq? x 'true) #t)
        ((eq? x 'false) #f)
        ((symbol? x)
         (cond ((taut-assq x true-env) #t)
               ((taut-assq x false-env) #f)
               (else 'unknown)))
        ((pair? x)
         (let ((test (cadr x)) (then (caddr x)) (else-b (cadddr x)))
           (let ((tv (tautology? test true-env false-env)))
             (cond ((eq? tv #t) (tautology? then true-env false-env))
                   ((eq? tv #f) (tautology? else-b true-env false-env))
                   (else
                    (and (eq? #t (tautology? then
                                             (cons (cons test #t) true-env)
                                             false-env))
                         (eq? #t (tautology? else-b
                                             true-env
                                             (cons (cons test #t) false-env)))))))))
        (else #f)))

;; Build a complete if-tree of depth d over variables p0..p(d-1); the
;; formula (if p p p) is a tautology iff both branches are.
(define (boyer-term depth var)
  (if (= depth 0)
      'true
      (list 'if
            (string->symbol (string-append "p" (number->string var)))
            (boyer-term (- depth 1) (+ var 1))
            (boyer-term (- depth 1) (+ var 1)))))

(define (boyer-run depth)
  (eq? #t (tautology? (boyer-term depth 0) '() '())))
|scheme}

(* Generators (one-shot coroutining): each value transfer uses call/1cc
   exactly once in each direction. *)
let generator =
  {scheme|
(define (make-generator producer)
  ;; producer: (lambda (yield) ...) ; returns the final value
  (let ((return-k #f) (resume-k #f))
    (define (yield v)
      (call/1cc
       (lambda (k)
         (set! resume-k k)
         (return-k (cons 'more v)))))
    (define (start)
      (let ((r (producer yield)))
        (return-k (cons 'done r))))
    (lambda ()
      (call/1cc
       (lambda (k)
         (set! return-k k)
         (if resume-k
             (resume-k #f)
             (start)))))))

(define (generator->list gen)
  (let loop ((acc '()))
    (let ((x (gen)))
      (if (eq? (car x) 'done)
          (reverse acc)
          (loop (cons (cdr x) acc))))))
|scheme}

(* samefringe via one-shot coroutines: the classic motivating example. *)
let samefringe =
  {scheme|
(define (fringe-gen tree)
  (make-generator
   (lambda (yield)
     (let walk ((t tree))
       (if (pair? t)
           (begin (walk (car t)) (walk (cdr t)))
           (if (null? t) #f (yield t))))
     'end)))

(define (same-fringe? t1 t2)
  (let ((g1 (fringe-gen t1)) (g2 (fringe-gen t2)))
    (let loop ()
      (let ((x1 (g1)) (x2 (g2)))
        (cond ((and (eq? (car x1) 'done) (eq? (car x2) 'done)) #t)
              ((or (eq? (car x1) 'done) (eq? (car x2) 'done)) #f)
              ((eqv? (cdr x1) (cdr x2)) (loop))
              (else #f))))))
|scheme}

(* Nondeterministic choice (amb) over multi-shot continuations: the kind
   of workload that one-shot continuations can NOT express (Section 2). *)
let amb =
  {scheme|
(define %amb-fail #f)

(define (%amb-init)
  (set! %amb-fail (lambda () (error 'amb "no more choices"))))

(define (amb-of-list choices)
  (call/cc
   (lambda (k)
     (let ((prev-fail %amb-fail))
       (let try ((cs choices))
         (if (null? cs)
             (begin (set! %amb-fail prev-fail) (prev-fail))
             (begin
               ;; deliver the next choice; control comes back here (with
               ;; an ignored value) when the failure continuation fires
               (call/cc
                (lambda (retry)
                  (set! %amb-fail (lambda () (retry #f)))
                  (k (car cs))))
               (try (cdr cs)))))))))
(define (amb-require ok) (if ok #t (%amb-fail)))

;; Pythagorean triple search: the standard amb demo.
(define (amb-range a b)
  (if (> a b) (%amb-fail) (amb-of-list (iota-range a b))))

(define (iota-range a b)
  (if (> a b) '() (cons a (iota-range (+ a 1) b))))

(define (pythagorean-triple limit)
  (%amb-init)
  (call/cc
   (lambda (found)
     (let ((a (amb-range 1 limit)))
       (let ((b (amb-range a limit)))
         (let ((c (amb-range b limit)))
           (amb-require (= (+ (* a a) (* b b)) (* c c)))
           (found (list a b c))))))))
|scheme}

(* cpstak: tak in continuation-passing style -- every control point is a
   heap closure (Gabriel suite; the "heap model in user code"). *)
let cpstak =
  {scheme|
(define (cpstak x y z)
  (define (tak x y z k)
    (if (not (< y x))
        (k z)
        (tak (- x 1) y z
             (lambda (v1)
               (tak (- y 1) z x
                    (lambda (v2)
                      (tak (- z 1) x y
                           (lambda (v3) (tak v1 v2 v3 k)))))))))
  (tak x y z (lambda (a) a)))
|scheme}

(* takl: tak over unary list-encoded numbers (Gabriel suite). *)
let takl =
  {scheme|
(define (listn n)
  (if (= n 0) '() (cons n (listn (- n 1)))))

(define (shorterp x y)
  (and (pair? y) (or (null? x) (shorterp (cdr x) (cdr y)))))

(define (mas x y z)
  (if (not (shorterp y x))
      z
      (mas (mas (cdr x) y z)
           (mas (cdr y) z x)
           (mas (cdr z) x y))))

(define (takl x y z) (length (mas (listn x) (listn y) (listn z))))
|scheme}

(* div: iterative vs recursive list halving (Gabriel suite). *)
let div =
  {scheme|
(define (create-n n)
  (do ((n n (- n 1)) (a '() (cons '() a)))
      ((= n 0) a)))

(define (iterative-div2 l)
  (do ((l l (cddr l)) (a '() (cons (car l) a)))
      ((null? l) a)))

(define (recursive-div2 l)
  (if (null? l) '() (cons (car l) (recursive-div2 (cddr l)))))

(define (div-bench n runs)
  (let ((l (create-n n)))
    (do ((i runs (- i 1)))
        ((= i 0) 'done)
      (iterative-div2 l)
      (recursive-div2 l))))
|scheme}

(* destruct-lite: destructive list surgery (Gabriel suite core). *)
let destruct =
  {scheme|
(define (destruct-make n m)
  (let outer ((i n) (acc '()))
    (if (= i 0)
        acc
        (let inner ((j m) (row '()))
          (if (= j 0)
              (outer (- i 1) (cons row acc))
              (inner (- j 1) (cons j row)))))))

(define (destruct-mutate! rows)
  (for-each
   (lambda (row)
     (let loop ((l row))
       (if (and (pair? l) (pair? (cdr l)))
           (begin
             (set-car! l (+ (car l) (cadr l)))
             (loop (cddr l))))))
   rows)
  rows)

(define (destruct-bench n m runs)
  (let ((rows (destruct-make n m)))
    (do ((i runs (- i 1)))
        ((= i 0) (length rows))
      (destruct-mutate! rows))))
|scheme}

(* Mandelbrot membership count over flonums. *)
let mandelbrot =
  {scheme|
(define (mandel-point cr ci max-iter)
  (let loop ((zr 0.0) (zi 0.0) (i 0))
    (cond ((= i max-iter) i)
          ((> (+ (* zr zr) (* zi zi)) 4.0) i)
          (else (loop (+ (- (* zr zr) (* zi zi)) cr)
                      (+ (* 2.0 zr zi) ci)
                      (+ i 1))))))

(define (mandel-count size max-iter)
  (let loop ((y 0) (total 0))
    (if (= y size)
        total
        (let inner ((x 0) (acc total))
          (if (= x size)
              (loop (+ y 1) acc)
              (inner (+ x 1)
                     (+ acc
                        (if (= (mandel-point
                                (- (/ (* 3.0 (exact->inexact x))
                                      (exact->inexact size))
                                   2.25)
                                (- (/ (* 3.0 (exact->inexact y))
                                      (exact->inexact size))
                                   1.5)
                                max-iter)
                               max-iter)
                            1
                            0))))))))
|scheme}

let all_defs =
  String.concat "\n"
    [
      tak; fib; ack; ctak; deep; queens; boyer; generator; cpstak; takl; div;
      destruct; mandelbrot;
    ]
