(** The Scheme-level runtime library loaded into every session:
    [call-with-values], [dynamic-wind] and the [call/cc]/[call/1cc]
    wrappers, the list/vector/string library, error handling
    ([call-with-error-handler], [try]), promises, sorting, output capture,
    and the Dybvig-Hieb engines over the VM timer. *)

val source : string
