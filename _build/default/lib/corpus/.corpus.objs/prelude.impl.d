lib/corpus/prelude.ml:
