lib/corpus/programs.mli:
