lib/corpus/prelude.mli:
