lib/corpus/threads.mli:
