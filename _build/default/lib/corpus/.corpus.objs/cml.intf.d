lib/corpus/cml.mli:
