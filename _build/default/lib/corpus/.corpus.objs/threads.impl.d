lib/corpus/threads.ml:
