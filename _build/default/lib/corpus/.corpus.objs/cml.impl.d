lib/corpus/cml.ml:
