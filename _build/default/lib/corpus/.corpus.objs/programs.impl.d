lib/corpus/programs.ml: String
