(** Benchmark and example programs (Scheme sources): the paper's workloads
    (ctak, fib, deep recursion), the Gabriel-suite pieces used by the
    frame-overhead comparison (tak, takl, cpstak, ack, queens, boyer, div,
    destruct), flonum mandelbrot, and the continuation showcases
    (generators, samefringe, amb). *)

val tak : string
val fib : string
val ack : string
val ctak : string
(** Set the global [ctak-capture] to a capture operator before calling
    [ctak]; every continuation it captures is invoked exactly once. *)

val deep : string
val queens : string
val boyer : string
val generator : string
val samefringe : string
val amb : string
val cpstak : string
val takl : string
val div : string
val destruct : string
val mandelbrot : string

val all_defs : string
(** Everything above except [samefringe] and [amb] (which have their own
    top-level state), concatenated for [Scheme.load_corpus]. *)
