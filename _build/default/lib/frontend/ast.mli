(** Core forms produced by the expander and consumed by the compiler and
    the oracle interpreter.  Variables are still by name here; resolution
    happens in the compiler's analysis pass. *)

type t =
  | Quote of Rt.value
  | Var of string
  | If of t * t * t
  | Set of string * t
  | Lambda of lambda
  | Begin of t list  (** non-empty *)
  | App of t * t list

and lambda = {
  params : string list;
  rest : string option;
  body : t;
  lname : string;  (** heuristic name for diagnostics *)
}

(** A top-level form: expression or definition. *)
type top = Expr of t | Define of string * t

val to_string : t -> string
val top_to_string : top -> string
