(** Expansion of Scheme source datums into core forms.

    Handles the core forms [quote], [if], [set!], [lambda], [begin],
    [define], and the derived forms [let] (incl. named [let]), [let*],
    [letrec], [letrec*], [cond] (incl. [=>] and [else]), [case], [and],
    [or], [when], [unless], [do], [quasiquote]/[unquote]/
    [unquote-splicing], and internal definitions at the head of bodies.

    The expander is not hygienic: derived forms expand into references to
    the standard procedures [cons], [append], [list], [list->vector], and
    [eqv?]; shadowing those names around a [quasiquote] or [case] form is
    unsupported (documented limitation, irrelevant to the reproduction). *)

exception Expand_error of string * Sexp.pos

val datum_to_value : Sexp.t -> Rt.value
(** Convert a quoted datum to its runtime value. *)

val value_to_datum : Rt.value -> Sexp.t
(** Inverse of {!datum_to_value}, for [(eval datum)].
    @raise Rt.Scheme_error on values without a syntax (procedures...). *)

val expand : Sexp.t -> Ast.t
(** Expand one expression.  @raise Expand_error on malformed forms. *)

val expand_top : Sexp.t -> Ast.top
(** Expand one top-level form; [define] becomes {!Ast.Define}. *)

val expand_tops : Sexp.t -> Ast.top list
(** Like {!expand_top}, but splicing top-level [begin] and expanding
    [define-record-type] and [define-syntax]/macro uses (against the
    ambient macro environment — see {!with_menv}). *)

val with_menv : Macro.menv -> (unit -> 'a) -> 'a
(** Run an expansion with the given macro environment ambient. *)

val expand_program : ?menv:Macro.menv -> Sexp.t list -> Ast.top list
(** Expand a whole program.  [menv] carries [define-syntax] macros; when
    omitted, a fresh environment is used (macros do not persist). *)

val expand_string : ?menv:Macro.menv -> string -> Ast.top list
(** Read and expand a whole program. *)
