lib/frontend/expander.ml: Array Ast Bytes Fun Hashtbl List Macro Printf Rt Sexp String Values
