lib/frontend/ast.ml: List Printf Rt String Values
