lib/frontend/ast.mli: Rt
