lib/frontend/macro.mli: Hashtbl Sexp
