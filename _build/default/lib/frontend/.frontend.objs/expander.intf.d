lib/frontend/expander.mli: Ast Macro Rt Sexp
