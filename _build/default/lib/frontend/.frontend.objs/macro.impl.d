lib/frontend/macro.ml: Hashtbl List Sexp
