exception Macro_error of string * Sexp.pos

let err pos msg = raise (Macro_error (msg, pos))
let p0 : Sexp.pos = { Sexp.line = 0; col = 0 }

type rule = { pat : Sexp.t; tmpl : Sexp.t }
type rules = { literals : string list; rules : rule list }
type menv = (string, rules) Hashtbl.t

let create_menv () : menv = Hashtbl.create 16

(* A pattern variable binds either one form or, under an ellipsis, a list
   of bindings (one level per ellipsis). *)
type binding = Single of Sexp.t | Multi of binding list

let is_ellipsis = function Sexp.Sym ("...", _) -> true | _ -> false

let parse_syntax_rules (d : Sexp.t) : rules =
  match d with
  | Sexp.List (Sexp.Sym ("syntax-rules", _) :: Sexp.List (lits, _) :: rl, pos)
    ->
      let literals =
        List.map
          (function
            | Sexp.Sym (s, _) -> s
            | _ -> err pos "syntax-rules: literals must be symbols")
          lits
      in
      let rules =
        List.map
          (function
            | Sexp.List ([ pat; tmpl ], _) -> { pat; tmpl }
            | _ -> err pos "syntax-rules: each rule is (pattern template)")
          rl
      in
      if rules = [] then err pos "syntax-rules: no rules";
      { literals; rules }
  | _ -> err (Sexp.pos_of d) "define-syntax: expected (syntax-rules ...)"

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

(* Pattern variables appearing in a pattern (for empty-ellipsis binding). *)
let rec pattern_vars literals (p : Sexp.t) acc =
  match p with
  | Sexp.Sym ("_", _) | Sexp.Sym ("...", _) -> acc
  | Sexp.Sym (s, _) -> if List.mem s literals then acc else s :: acc
  | Sexp.List (ps, _) | Sexp.Vec (ps, _) ->
      List.fold_left (fun acc p -> pattern_vars literals p acc) acc ps
  | Sexp.Dotted (ps, final, _) ->
      pattern_vars literals final
        (List.fold_left (fun acc p -> pattern_vars literals p acc) acc ps)
  | _ -> acc

exception No_match

let rec match_pat literals (p : Sexp.t) (f : Sexp.t) bindings =
  match p with
  | Sexp.Sym ("_", _) -> bindings
  | Sexp.Sym (s, _) when List.mem s literals -> (
      match f with
      | Sexp.Sym (s', _) when s = s' -> bindings
      | _ -> raise No_match)
  | Sexp.Sym (s, _) -> (s, Single f) :: bindings
  | Sexp.Int (n, _) -> (
      match f with Sexp.Int (m, _) when n = m -> bindings | _ -> raise No_match)
  | Sexp.Float (n, _) -> (
      match f with
      | Sexp.Float (m, _) when n = m -> bindings
      | _ -> raise No_match)
  | Sexp.Bool (b, _) -> (
      match f with
      | Sexp.Bool (b', _) when b = b' -> bindings
      | _ -> raise No_match)
  | Sexp.Char (c, _) -> (
      match f with
      | Sexp.Char (c', _) when c = c' -> bindings
      | _ -> raise No_match)
  | Sexp.Str (s, _) -> (
      match f with
      | Sexp.Str (s', _) when s = s' -> bindings
      | _ -> raise No_match)
  | Sexp.List (ps, _) -> (
      match f with
      | Sexp.List (fs, _) -> match_seq literals ps None fs bindings
      | _ -> raise No_match)
  | Sexp.Dotted (ps, ptail, _) -> (
      match f with
      | Sexp.List (fs, pos) ->
          match_seq literals ps (Some ptail) fs
            ~improper_tail:(Sexp.List ([], pos))
            bindings
      | Sexp.Dotted (fs, ftail, _) ->
          match_seq literals ps (Some ptail) fs ~improper_tail:ftail bindings
      | _ -> raise No_match)
  | Sexp.Vec (ps, _) -> (
      match f with
      | Sexp.Vec (fs, _) -> match_seq literals ps None fs bindings
      | _ -> raise No_match)

(* Match a sequence of patterns [ps] (with optional dotted-tail pattern)
   against forms [fs].  At most one ellipsis: ps = pre @ [pe; "..."] @ post. *)
and match_seq literals ps ptail ?improper_tail fs bindings =
  let rec split_at_ellipsis pre = function
    | pe :: e :: post when is_ellipsis e -> Some (List.rev pre, pe, post)
    | p :: rest -> split_at_ellipsis (p :: pre) rest
    | [] -> None
  in
  match split_at_ellipsis [] ps with
  | None ->
      (* fixed-length *)
      let rec go ps fs bindings =
        match (ps, fs) with
        | [], [] -> (
            match (ptail, improper_tail) with
            | None, _ -> bindings
            | Some pt, Some ft -> match_pat literals pt ft bindings
            | Some pt, None -> match_pat literals pt (Sexp.List ([], p0)) bindings)
        | p :: ps', f :: fs' -> go ps' fs' (match_pat literals p f bindings)
        | _ -> raise No_match
      in
      (match (ptail, fs) with
      | None, _ -> go ps fs bindings
      | Some _, _ ->
          (* dotted pattern: fixed prefix, tail gets the rest *)
          let np = List.length ps in
          if List.length fs < np then raise No_match
          else
            let rec take n l = if n = 0 then ([], l) else
              match l with x :: r -> let a, b = take (n-1) r in (x :: a, b)
              | [] -> raise No_match
            in
            let prefix, rest = take np fs in
            let bindings =
              List.fold_left2
                (fun b p f -> match_pat literals p f b)
                bindings ps prefix
            in
            let tail_form =
              match (rest, improper_tail) with
              | [], Some ft -> ft
              | [], None -> Sexp.List ([], p0)
              | _, Some (Sexp.List ([], _)) | _, None -> Sexp.List (rest, p0)
              | _, Some ft -> Sexp.Dotted (rest, ft, p0)
            in
            match ptail with
            | Some pt -> match_pat literals pt tail_form bindings
            | None -> raise No_match)
  | Some (pre, pe, post) ->
      let npre = List.length pre and npost = List.length post in
      if List.length fs < npre + npost then raise No_match;
      let rec take n l =
        if n = 0 then ([], l)
        else
          match l with
          | x :: r ->
              let a, b = take (n - 1) r in
              (x :: a, b)
          | [] -> raise No_match
      in
      let fpre, rest = take npre fs in
      let nmid = List.length rest - npost in
      let fmid, fpost = take nmid rest in
      let bindings =
        List.fold_left2 (fun b p f -> match_pat literals p f b) bindings pre
          fpre
      in
      (* each repetition binds pe's variables once; collect per variable *)
      let reps =
        List.map (fun f -> match_pat literals pe f []) fmid
      in
      let evars = List.sort_uniq compare (pattern_vars literals pe []) in
      let bindings =
        List.fold_left
          (fun b v ->
            let slices =
              List.map
                (fun rep ->
                  match List.assoc_opt v rep with
                  | Some x -> x
                  | None -> raise No_match)
                reps
            in
            (v, Multi slices) :: b)
          bindings evars
      in
      let bindings =
        List.fold_left2 (fun b p f -> match_pat literals p f b) bindings post
          fpost
      in
      (match (ptail, improper_tail) with
      | None, _ -> bindings
      | Some pt, Some ft -> match_pat literals pt ft bindings
      | Some pt, None -> match_pat literals pt (Sexp.List ([], p0)) bindings)

(* ------------------------------------------------------------------ *)
(* Template instantiation                                              *)
(* ------------------------------------------------------------------ *)

let rec template_vars (t : Sexp.t) acc =
  match t with
  | Sexp.Sym ("...", _) -> acc
  | Sexp.Sym (s, _) -> s :: acc
  | Sexp.List (ts, _) | Sexp.Vec (ts, _) ->
      List.fold_left (fun acc t -> template_vars t acc) acc ts
  | Sexp.Dotted (ts, final, _) ->
      template_vars final
        (List.fold_left (fun acc t -> template_vars t acc) acc ts)
  | _ -> acc

let rec instantiate bindings (t : Sexp.t) : Sexp.t =
  match t with
  | Sexp.Sym (s, pos) -> (
      match List.assoc_opt s bindings with
      | Some (Single f) -> f
      | Some (Multi _) ->
          err pos ("syntax-rules: pattern variable " ^ s
                   ^ " used without enough ellipses")
      | None -> t)
  | Sexp.List (ts, pos) -> Sexp.List (instantiate_seq bindings ts pos, pos)
  | Sexp.Vec (ts, pos) -> Sexp.Vec (instantiate_seq bindings ts pos, pos)
  | Sexp.Dotted (ts, final, pos) -> (
      let heads = instantiate_seq bindings ts pos in
      let tail = instantiate bindings final in
      match tail with
      | Sexp.List (more, _) -> Sexp.List (heads @ more, pos)
      | Sexp.Dotted (more, f, _) -> Sexp.Dotted (heads @ more, f, pos)
      | atom -> Sexp.Dotted (heads, atom, pos))
  | atom -> atom

and instantiate_seq bindings ts pos =
  match ts with
  | t :: e :: rest when is_ellipsis e ->
      (* expand t once per slice of its Multi-bound variables *)
      let vars =
        List.filter
          (fun v ->
            match List.assoc_opt v bindings with
            | Some (Multi _) -> true
            | _ -> false)
          (List.sort_uniq compare (template_vars t []))
      in
      if vars = [] then
        err pos "syntax-rules: ellipsis template has no pattern variable";
      let slices =
        match List.assoc_opt (List.hd vars) bindings with
        | Some (Multi l) -> List.length l
        | _ -> assert false
      in
      List.iter
        (fun v ->
          match List.assoc_opt v bindings with
          | Some (Multi l) when List.length l <> slices ->
              err pos "syntax-rules: mismatched ellipsis lengths"
          | _ -> ())
        vars;
      let expansions =
        List.init slices (fun i ->
            let bindings' =
              List.map
                (fun v ->
                  match List.assoc v bindings with
                  | Multi l -> (v, List.nth l i)
                  | b -> (v, b))
                vars
              @ bindings
            in
            instantiate bindings' t)
      in
      expansions @ instantiate_seq bindings rest pos
  | t :: rest -> instantiate bindings t :: instantiate_seq bindings rest pos
  | [] -> []

let expand_use (r : rules) (form : Sexp.t) : Sexp.t =
  let pos = Sexp.pos_of form in
  let args =
    match form with
    | Sexp.List (_ :: args, _) -> args
    | _ -> err pos "macro use must be a list form"
  in
  let rec try_rules = function
    | [] -> err pos "no syntax-rules pattern matches this use"
    | { pat; tmpl } :: rest -> (
        let pat_args, ptail =
          match pat with
          | Sexp.List (_ :: ps, _) -> (ps, None)
          | Sexp.Dotted (_ :: ps, t, _) -> (ps, Some t)
          | _ -> err (Sexp.pos_of pat) "syntax-rules: pattern must be a list"
        in
        match match_seq r.literals pat_args ptail args [] with
        | bindings -> instantiate bindings tmpl
        | exception No_match -> try_rules rest)
  in
  try_rules r.rules
