(* Core forms produced by the expander and consumed by the compiler and the
   oracle interpreter.  Variables are still by-name here; resolution happens
   in the compiler's analysis pass. *)

type t =
  | Quote of Rt.value
  | Var of string
  | If of t * t * t
  | Set of string * t
  | Lambda of lambda
  | Begin of t list                     (* non-empty *)
  | App of t * t list

and lambda = {
  params : string list;
  rest : string option;
  body : t;
  lname : string;                       (* heuristic name for diagnostics *)
}

(* A top-level form: expression or definition. *)
type top = Expr of t | Define of string * t

let rec to_string ast =
  match ast with
  | Quote v -> "'" ^ Values.write_string v
  | Var x -> x
  | If (a, b, c) ->
      Printf.sprintf "(if %s %s %s)" (to_string a) (to_string b) (to_string c)
  | Set (x, e) -> Printf.sprintf "(set! %s %s)" x (to_string e)
  | Lambda { params; rest; body; _ } ->
      let ps = String.concat " " params in
      let ps =
        match rest with None -> ps | Some r -> ps ^ " . " ^ r
      in
      Printf.sprintf "(lambda (%s) %s)" ps (to_string body)
  | Begin es ->
      Printf.sprintf "(begin %s)" (String.concat " " (List.map to_string es))
  | App (f, args) ->
      Printf.sprintf "(%s)"
        (String.concat " " (List.map to_string (f :: args)))

let top_to_string = function
  | Expr e -> to_string e
  | Define (x, e) -> Printf.sprintf "(define %s %s)" x (to_string e)
