(** [syntax-rules] pattern matching and template instantiation.

    Supports literals, the [_] wildcard, one ellipsis ([...]) per list
    level (with a fixed tail after it), nested ellipses, dotted patterns,
    and vector patterns.  Expansion is {e unhygienic}: template identifiers
    are resolved at the use site, like the rest of this expander
    (documented limitation). *)

type rules
(** A compiled [(syntax-rules (literal ...) (pattern template) ...)]. *)

exception Macro_error of string * Sexp.pos

val parse_syntax_rules : Sexp.t -> rules
(** Parse the [(syntax-rules ...)] form.  @raise Macro_error if malformed. *)

val expand_use : rules -> Sexp.t -> Sexp.t
(** Expand one macro use (the whole form, keyword included) with the first
    matching rule.  @raise Macro_error if no rule matches. *)

type menv = (string, rules) Hashtbl.t
(** Macro environment: keyword name -> rules. *)

val create_menv : unit -> menv
