(* Global variable table: one mutable cell per name, shared between the
   compiler (which embeds cells in code) and the VMs. *)

type t = (string, Rt.global) Hashtbl.t

let create () : t = Hashtbl.create 256

let cell (t : t) name : Rt.global =
  match Hashtbl.find_opt t name with
  | Some g -> g
  | None ->
      let g = { Rt.gname = name; gval = Rt.Undef; gdefined = false } in
      Hashtbl.add t name g;
      g

let define (t : t) name v =
  let g = cell t name in
  g.gval <- v;
  g.gdefined <- true

let lookup_opt (t : t) name =
  match Hashtbl.find_opt t name with
  | Some g when g.gdefined -> Some g.gval
  | _ -> None
