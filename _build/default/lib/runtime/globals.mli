(** Global variable table: one mutable cell per name, shared between the
    compiler (which embeds cells in code objects) and the machines. *)

type t = (string, Rt.global) Hashtbl.t

val create : unit -> t

val cell : t -> string -> Rt.global
(** Find or create the (possibly still undefined) cell for a name. *)

val define : t -> string -> Rt.value -> unit
val lookup_opt : t -> string -> Rt.value option
