(** Helpers over compiled code objects: construction and disassembly. *)

val make_code :
  name:string ->
  arity:Rt.arity ->
  frame_words:int ->
  Rt.instr array ->
  Rt.code

val arity_matches : Rt.arity -> int -> bool
(** Does a call with [n] arguments satisfy the arity? *)

val arity_to_string : Rt.arity -> string

val disassemble : Rt.code -> string
(** Multi-line listing of one code object (not recursing into nested
    closures). *)

val disassemble_deep : Rt.code -> string
(** Listing of a code object and every code object it closes over. *)
