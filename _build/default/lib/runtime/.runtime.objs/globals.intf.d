lib/runtime/globals.mli: Hashtbl Rt
