lib/runtime/bytecode.mli: Rt
