lib/runtime/rt.ml: Hashtbl Printf
