lib/runtime/values.mli: Format Rt
