lib/runtime/values.ml: Array Buffer Bytes Float Format Hashtbl List Obj Printf Rt String
