lib/runtime/bytecode.ml: Array Buffer List Printf Rt String Values
