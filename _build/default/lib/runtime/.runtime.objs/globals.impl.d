lib/runtime/globals.ml: Hashtbl Rt
