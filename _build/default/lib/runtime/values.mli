(** Operations on runtime values: constructors, conversions, equality
    predicates, and external representation. *)

val cons : Rt.value -> Rt.value -> Rt.value
val list_to_value : Rt.value list -> Rt.value
val list_of_value : Rt.value -> Rt.value list
(** @raise Rt.Scheme_error if the value is not a proper list. *)

val list_of_value_opt : Rt.value -> Rt.value list option
(** [None] if the value is not a proper list. *)

val is_truthy : Rt.value -> bool
(** Everything except [#f] is true. *)

val eq : Rt.value -> Rt.value -> bool
(** Scheme [eq?]: pointer identity on heap objects, value identity on
    immediates; symbols are interned so name equality coincides. *)

val eqv : Rt.value -> Rt.value -> bool
(** Scheme [eqv?]: [eq?] plus numeric/character value comparison. *)

val equal : Rt.value -> Rt.value -> bool
(** Scheme [equal?]: structural, recursing through pairs, vectors, strings. *)

val write_string : Rt.value -> string
(** [write]-style external representation (strings quoted). *)

val display_string : Rt.value -> string
(** [display]-style representation (strings and chars raw). *)

val pp : Format.formatter -> Rt.value -> unit

val type_name : Rt.value -> string

val err : string -> Rt.value list -> 'a
(** Raise {!Rt.Scheme_error}. *)

val type_error : string -> string -> Rt.value -> 'a
(** [type_error who expected got] *)
