(** The primitive procedure library shared by both virtual machines and the
    oracle interpreter.

    [install] populates a global table with every primitive.  Pure
    primitives close over [out], the output sink for [display]/[write]/
    [newline]; control primitives ([%call/cc], [%call/1cc], [%apply],
    [values], [%set-timer!], [%stat]) are [Rt.Special] markers handled by
    each machine's dispatch loop. *)

val install : out:Buffer.t -> Globals.t -> unit

val the_prims : out:Buffer.t -> (string * Rt.prim) list
(** All primitives, for machines that want their own table. *)

val check_int : string -> Rt.value -> int
val check_pair : string -> Rt.value -> Rt.pair
val check_procedure : string -> Rt.value -> Rt.value
