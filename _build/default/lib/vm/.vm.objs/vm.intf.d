lib/vm/vm.mli: Buffer Control Globals Macro Rt Stats
