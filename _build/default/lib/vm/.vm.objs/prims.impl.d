lib/vm/prims.ml: Array Buffer Bytes Char Expander Float Globals Hashtbl Int List Rt Sexp Values
