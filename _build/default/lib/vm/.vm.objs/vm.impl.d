lib/vm/vm.ml: Array Buffer Bytecode Bytes Compiler Control Globals List Macro Prims Printf Rt Stats Values
