lib/vm/prims.mli: Buffer Globals Rt
