(** S-expression reader and writer.

    Hand-rolled recursive-descent reader for Scheme datum syntax: symbols,
    fixnums, booleans, characters, strings, proper and improper lists, vector
    literals, quotation sugar, line comments, block comments, and datum
    comments.  Every datum carries the source position at which it began. *)

(** Source position (1-based line, 0-based column). *)
type pos = { line : int; col : int }

type t =
  | Sym of string * pos
  | Int of int * pos
  | Float of float * pos
  | Str of string * pos
  | Bool of bool * pos
  | Char of char * pos
  | List of t list * pos          (** proper list *)
  | Dotted of t list * t * pos    (** improper list; first component non-empty *)
  | Vec of t list * pos           (** [#(...)] vector literal *)

exception Read_error of string * pos
(** Raised on malformed input, with a message and the offending position. *)

val pos_of : t -> pos
(** Position at which the datum began. *)

val read_all : string -> t list
(** Read every datum in the string.  @raise Read_error on malformed input. *)

val read_one : string -> t
(** Read exactly one datum; trailing whitespace/comments are permitted.
    @raise Read_error if the string holds zero or more than one datum. *)

val to_string : t -> string
(** Render a datum in external representation.  [read_one (to_string d)]
    is structurally equal to [d] (modulo positions). *)

val equal : t -> t -> bool
(** Structural equality ignoring source positions. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print via {!to_string}. *)
