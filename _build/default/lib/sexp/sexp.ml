type pos = { line : int; col : int }

type t =
  | Sym of string * pos
  | Int of int * pos
  | Float of float * pos
  | Str of string * pos
  | Bool of bool * pos
  | Char of char * pos
  | List of t list * pos
  | Dotted of t list * t * pos
  | Vec of t list * pos

exception Read_error of string * pos

let pos_of = function
  | Sym (_, p) | Int (_, p) | Float (_, p) | Str (_, p) | Bool (_, p)
  | Char (_, p) | List (_, p) | Dotted (_, _, p) | Vec (_, p) ->
      p

(* ------------------------------------------------------------------ *)
(* Reader state                                                        *)
(* ------------------------------------------------------------------ *)

type state = {
  src : string;
  mutable idx : int;
  mutable line : int;
  mutable col : int;
}

let make_state src = { src; idx = 0; line = 1; col = 0 }
let here st = { line = st.line; col = st.col }
let error st msg = raise (Read_error (msg, here st))
let at_eof st = st.idx >= String.length st.src
let peek st = if at_eof st then '\000' else st.src.[st.idx]

let peek2 st =
  if st.idx + 1 >= String.length st.src then '\000' else st.src.[st.idx + 1]

let advance st =
  if not (at_eof st) then begin
    (if st.src.[st.idx] = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 0
     end
     else st.col <- st.col + 1);
    st.idx <- st.idx + 1
  end

let is_whitespace c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012'
let is_delimiter c =
  is_whitespace c || c = '(' || c = ')' || c = '[' || c = ']' || c = '"'
  || c = ';' || c = '\000'

let rec skip_block_comment st depth =
  if at_eof st then error st "unterminated block comment"
  else if peek st = '|' && peek2 st = '#' then begin
    advance st;
    advance st;
    if depth > 1 then skip_block_comment st (depth - 1)
  end
  else if peek st = '#' && peek2 st = '|' then begin
    advance st;
    advance st;
    skip_block_comment st (depth + 1)
  end
  else begin
    advance st;
    skip_block_comment st depth
  end

(* Skip whitespace and comments; returns [true] if a [#;] datum comment was
   seen, in which case the caller must read and discard the next datum. *)
let rec skip_atmosphere st =
  if at_eof st then `Eof
  else
    match peek st with
    | c when is_whitespace c ->
        advance st;
        skip_atmosphere st
    | ';' ->
        while (not (at_eof st)) && peek st <> '\n' do
          advance st
        done;
        skip_atmosphere st
    | '#' when peek2 st = '|' ->
        advance st;
        advance st;
        skip_block_comment st 1;
        skip_atmosphere st
    | '#' when peek2 st = ';' ->
        advance st;
        advance st;
        `Datum_comment
    | _ -> `Datum

let named_chars =
  [
    ("newline", '\n');
    ("space", ' ');
    ("tab", '\t');
    ("nul", '\000');
    ("return", '\r');
    ("linefeed", '\n');
    ("altmode", '\027');
    ("delete", '\127');
  ]

let read_string_literal st start =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    if at_eof st then raise (Read_error ("unterminated string literal", start))
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
          advance st;
          (if at_eof st then
             raise (Read_error ("unterminated string escape", start))
           else
             let c = peek st in
             advance st;
             match c with
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | 'r' -> Buffer.add_char buf '\r'
             | '\\' -> Buffer.add_char buf '\\'
             | '"' -> Buffer.add_char buf '"'
             | '0' -> Buffer.add_char buf '\000'
             | c -> error st (Printf.sprintf "unknown string escape \\%c" c));
          go ()
      | c ->
          advance st;
          Buffer.add_char buf c;
          go ()
  in
  go ();
  Str (Buffer.contents buf, start)

let read_token st start =
  let buf = Buffer.create 8 in
  while (not (at_eof st)) && not (is_delimiter (peek st)) do
    Buffer.add_char buf (peek st);
    advance st
  done;
  let s = Buffer.contents buf in
  let looks_numeric s =
    let c0 = s.[0] in
    (c0 >= '0' && c0 <= '9')
    || (String.length s > 1 && (c0 = '-' || c0 = '+' || c0 = '.')
       && s.[1] >= '0' && s.[1] <= '9')
  in
  if s = "" then error st "empty token"
  else if s = "+inf.0" then Float (Float.infinity, start)
  else if s = "-inf.0" then Float (Float.neg_infinity, start)
  else if s = "+nan.0" || s = "-nan.0" then Float (Float.nan, start)
  else
    match int_of_string_opt s with
    | Some n -> Int (n, start)
    | None ->
        let body =
          if s.[0] = '-' || s.[0] = '+' then
            String.sub s 1 (String.length s - 1)
          else s
        in
        if body <> "" && String.for_all (fun c -> c >= '0' && c <= '9') body
        then raise (Read_error ("fixnum out of range: " ^ s, start))
        else (
          match float_of_string_opt s with
          | Some f when looks_numeric s -> Float (f, start)
          | _ -> Sym (s, start))

let read_char_literal st start =
  (* Cursor sits after "#\\". *)
  if at_eof st then raise (Read_error ("unterminated character literal", start));
  let first = peek st in
  advance st;
  let buf = Buffer.create 8 in
  Buffer.add_char buf first;
  (* Multi-character names are alphabetic; a lone char may be any char. *)
  if (first >= 'a' && first <= 'z') || (first >= 'A' && first <= 'Z') then
    while (not (at_eof st)) && not (is_delimiter (peek st)) do
      Buffer.add_char buf (peek st);
      advance st
    done;
  let s = Buffer.contents buf in
  if String.length s = 1 then Char (s.[0], start)
  else
    match List.assoc_opt (String.lowercase_ascii s) named_chars with
    | Some c -> Char (c, start)
    | None -> raise (Read_error ("unknown character name #\\" ^ s, start))

let quote_wrapper name start datum =
  List ([ Sym (name, start); datum ], start)

let rec read_datum st =
  match skip_atmosphere st with
  | `Eof -> error st "unexpected end of input"
  | `Datum_comment ->
      ignore (read_datum st);
      read_datum st
  | `Datum -> (
      let start = here st in
      match peek st with
      | '(' | '[' ->
          let close = if peek st = '(' then ')' else ']' in
          advance st;
          read_list st start close []
      | ')' | ']' -> error st "unexpected closing parenthesis"
      | '\'' ->
          advance st;
          quote_wrapper "quote" start (read_datum st)
      | '`' ->
          advance st;
          quote_wrapper "quasiquote" start (read_datum st)
      | ',' ->
          advance st;
          if peek st = '@' then begin
            advance st;
            quote_wrapper "unquote-splicing" start (read_datum st)
          end
          else quote_wrapper "unquote" start (read_datum st)
      | '"' -> read_string_literal st start
      | '#' -> (
          match peek2 st with
          | 't' | 'f' ->
              advance st;
              let b = peek st = 't' in
              advance st;
              if not (at_eof st || is_delimiter (peek st)) then
                error st "bad boolean literal";
              Bool (b, start)
          | '\\' ->
              advance st;
              advance st;
              read_char_literal st start
          | '(' ->
              advance st;
              advance st;
              let elems = read_vector st start [] in
              Vec (elems, start)
          | c -> error st (Printf.sprintf "unsupported # syntax: #%c" c))
      | _ -> read_token st start)

and read_list st start close acc =
  match skip_atmosphere st with
  | `Eof -> raise (Read_error ("unterminated list", start))
  | `Datum_comment ->
      ignore (read_datum st);
      read_list st start close acc
  | `Datum ->
      if peek st = close then begin
        advance st;
        List (List.rev acc, start)
      end
      else if (peek st = ')' || peek st = ']') && peek st <> close then
        error st "mismatched bracket"
      else if peek st = '.' && is_delimiter (peek2 st) then begin
        advance st;
        let tail = read_datum st in
        (match skip_atmosphere st with
        | `Datum when peek st = close -> advance st
        | _ -> raise (Read_error ("malformed dotted list", start)));
        if acc = [] then raise (Read_error ("dotted list with no head", start));
        match tail with
        | List (elems, _) -> List (List.rev_append acc elems, start)
        | Dotted (elems, final, _) ->
            Dotted (List.rev_append acc elems, final, start)
        | _ -> Dotted (List.rev acc, tail, start)
      end
      else read_list st start close (read_datum st :: acc)

and read_vector st start acc =
  match skip_atmosphere st with
  | `Eof -> raise (Read_error ("unterminated vector literal", start))
  | `Datum_comment ->
      ignore (read_datum st);
      read_vector st start acc
  | `Datum ->
      if peek st = ')' then begin
        advance st;
        List.rev acc
      end
      else read_vector st start (read_datum st :: acc)

let read_all src =
  let st = make_state src in
  let rec go acc =
    match skip_atmosphere st with
    | `Eof -> List.rev acc
    | `Datum_comment ->
        ignore (read_datum st);
        go acc
    | `Datum -> go (read_datum st :: acc)
  in
  go []

let read_one src =
  match read_all src with
  | [ d ] -> d
  | [] -> raise (Read_error ("no datum in input", { line = 1; col = 0 }))
  | _ :: d :: _ ->
      raise (Read_error ("more than one datum in input", pos_of d))

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let char_name c =
  match c with
  | '\n' -> "#\\newline"
  | ' ' -> "#\\space"
  | '\t' -> "#\\tab"
  | '\000' -> "#\\nul"
  | '\r' -> "#\\return"
  | c -> Printf.sprintf "#\\%c" c

let float_external f =
  if f <> f then "+nan.0"
  else if f = Float.infinity then "+inf.0"
  else if f = Float.neg_infinity then "-inf.0"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf d =
  match d with
  | Sym (s, _) -> Buffer.add_string buf s
  | Int (n, _) -> Buffer.add_string buf (string_of_int n)
  | Float (f, _) -> Buffer.add_string buf (float_external f)
  | Str (s, _) -> Buffer.add_string buf (escape_string s)
  | Bool (b, _) -> Buffer.add_string buf (if b then "#t" else "#f")
  | Char (c, _) -> Buffer.add_string buf (char_name c)
  | List (elems, _) ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_char buf ' ';
          write buf e)
        elems;
      Buffer.add_char buf ')'
  | Dotted (elems, final, _) ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_char buf ' ';
          write buf e)
        elems;
      Buffer.add_string buf " . ";
      write buf final;
      Buffer.add_char buf ')'
  | Vec (elems, _) ->
      Buffer.add_string buf "#(";
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_char buf ' ';
          write buf e)
        elems;
      Buffer.add_char buf ')'

let to_string d =
  let buf = Buffer.create 64 in
  write buf d;
  Buffer.contents buf

let rec equal a b =
  match (a, b) with
  | Sym (x, _), Sym (y, _) -> String.equal x y
  | Int (x, _), Int (y, _) -> x = y
  | Float (x, _), Float (y, _) -> x = y
  | Str (x, _), Str (y, _) -> String.equal x y
  | Bool (x, _), Bool (y, _) -> x = y
  | Char (x, _), Char (y, _) -> x = y
  | List (xs, _), List (ys, _) -> equal_lists xs ys
  | Dotted (xs, x, _), Dotted (ys, y, _) -> equal_lists xs ys && equal x y
  | Vec (xs, _), Vec (ys, _) -> equal_lists xs ys
  | _ -> false

and equal_lists xs ys =
  List.length xs = List.length ys && List.for_all2 equal xs ys

let pp fmt d = Format.pp_print_string fmt (to_string d)
