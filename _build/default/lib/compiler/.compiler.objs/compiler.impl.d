lib/compiler/compiler.ml: Array Ast Bytecode Expander Globals Hashtbl List Optimize Option Rt
