lib/compiler/optimize.ml: Ast Int List Option Rt Values
