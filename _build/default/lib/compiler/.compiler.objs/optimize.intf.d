lib/compiler/optimize.mli: Ast
