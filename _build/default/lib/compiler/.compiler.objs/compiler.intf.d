lib/compiler/compiler.mli: Ast Globals Macro Rt
