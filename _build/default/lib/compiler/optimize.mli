(** Optional AST-level optimizer (off by default).

    Performs constant folding of the standard arithmetic/comparison/list
    primitives, branch pruning of constant [if] tests, flattening of
    nested [begin]s, and elimination of effect-free expressions in
    non-final [begin] positions.

    Folding assumes the standard bindings of the folded primitives are
    never assigned ([set!] on [+] etc.); enabling the optimizer on a
    program that redefines them changes its meaning, exactly as with
    "assume standard bindings" switches in production Scheme compilers. *)

val expr : Ast.t -> Ast.t
val top : Ast.top -> Ast.top
val program : Ast.top list -> Ast.top list
