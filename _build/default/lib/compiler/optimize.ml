open Rt

(* Folders for the standard primitives: given fully constant arguments,
   return the folded value, or None when the fold does not apply (wrong
   types, arity, division by zero, overflow risk...).  Only immutable
   results may be produced: folding must never share fresh mutable
   structure between program points. *)

let num2 f args =
  match args with
  | [ Int a; Int b ] -> f a b
  | _ -> None

let arith fi =
  fun args ->
    let rec go acc = function
      | [] -> Some (Int acc)
      | Int n :: rest -> go (fi acc n) rest
      | _ -> None
    in
    match args with Int n :: rest -> go n rest | _ -> None

let cmp op args =
  let rec go = function
    | Int a :: (Int b :: _ as rest) ->
        if op (compare a b) 0 then go rest else Some (Bool false)
    | [ Int _ ] -> Some (Bool true)
    | _ -> None
  in
  match args with _ :: _ :: _ -> go args | _ -> None

let folders : (string * (value list -> value option)) list =
  [
    ("+", arith ( + ));
    ("-", fun args -> (match args with [ Int n ] -> Some (Int (-n)) | _ -> arith ( - ) args));
    ("*", arith ( * ));
    ("quotient", num2 (fun a b -> if b = 0 then None else Some (Int (a / b))));
    ("remainder", num2 (fun a b -> if b = 0 then None else Some (Int (Int.rem a b))));
    ("=", cmp ( = ));
    ("<", cmp ( < ));
    (">", cmp ( > ));
    ("<=", cmp ( <= ));
    (">=", cmp ( >= ));
    ("abs", fun args -> (match args with [ Int n ] -> Some (Int (abs n)) | _ -> None));
    ("zero?", fun args -> (match args with [ Int n ] -> Some (Bool (n = 0)) | _ -> None));
    ("not", fun args ->
        match args with [ v ] -> Some (Bool (not (Values.is_truthy v))) | _ -> None);
    ("null?", fun args -> (match args with [ Nil ] -> Some (Bool true) | [ (Int _ | Bool _ | Sym _ | Char _) ] -> Some (Bool false) | _ -> None));
    ("eq?", fun args ->
        match args with
        | [ a; b ] -> (
            (* only immediates compare stably at fold time *)
            match (a, b) with
            | (Int _ | Bool _ | Sym _ | Char _ | Nil), _ ->
                Some (Bool (Values.eq a b))
            | _ -> None)
        | _ -> None);
    ("car", fun args -> (match args with [ Pair p ] -> Some p.car | _ -> None));
    ("cdr", fun args -> (match args with [ Pair p ] -> Some p.cdr | _ -> None));
    ("length", fun args ->
        match args with
        | [ l ] -> (
            match Values.list_of_value_opt l with
            | Some items -> Some (Int (List.length items))
            | None -> None)
        | _ -> None);
  ]

(* An expression whose evaluation has no effect and cannot fail: safe to
   drop in non-final begin position. *)
let rec effect_free (e : Ast.t) =
  match e with
  | Ast.Quote _ | Ast.Lambda _ -> true
  | Ast.Var _ -> false (* may be unbound: keep the error *)
  | Ast.If (a, b, c) -> effect_free a && effect_free b && effect_free c
  | Ast.Begin es -> List.for_all effect_free es
  | Ast.App _ | Ast.Set _ -> false

(* [bound] tracks lexically bound names: a shadowed primitive name must
   not be folded. *)
let rec opt bound (e : Ast.t) : Ast.t =
  match e with
  | Ast.Quote _ | Ast.Var _ -> e
  | Ast.Set (x, rhs) -> Ast.Set (x, opt bound rhs)
  | Ast.Lambda l ->
      let bound' =
        l.Ast.params
        @ (match l.Ast.rest with Some r -> [ r ] | None -> [])
        @ bound
      in
      Ast.Lambda { l with body = opt bound' l.body }
  | Ast.If (t, c, a) -> (
      let t = opt bound t in
      match t with
      | Ast.Quote v ->
          if Values.is_truthy v then opt bound c else opt bound a
      | t -> Ast.If (t, opt bound c, opt bound a))
  | Ast.Begin es ->
      let es = List.concat_map flatten es in
      let rec prune = function
        | [] -> []
        | [ last ] -> [ opt bound last ]
        | x :: rest ->
            let x = opt bound x in
            if effect_free x then prune rest else x :: prune rest
      in
      (match prune es with
      | [] -> Ast.Quote Void
      | [ one ] -> one
      | es -> Ast.Begin es)
  | Ast.App (f, args) -> (
      let f = opt bound f in
      let args = List.map (opt bound) args in
      match f with
      | Ast.Var name when not (List.mem name bound) -> (
          match List.assoc_opt name folders with
          | Some folder -> (
              let consts =
                List.map (function Ast.Quote v -> Some v | _ -> None) args
              in
              if List.for_all Option.is_some consts then
                match folder (List.map Option.get consts) with
                | Some v -> Ast.Quote v
                | None -> Ast.App (f, args)
              else Ast.App (f, args))
          | None -> Ast.App (f, args))
      | _ -> Ast.App (f, args))

and flatten (e : Ast.t) =
  match e with Ast.Begin es -> List.concat_map flatten es | e -> [ e ]

let expr e = opt [] e

let top = function
  | Ast.Expr e -> Ast.Expr (expr e)
  | Ast.Define (x, e) -> Ast.Define (x, expr e)

let program tops = List.map top tops
