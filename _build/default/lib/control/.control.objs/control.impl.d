lib/control/control.ml: Array List Printf Rt Stats Sys Values
