lib/control/stats.mli: Format
