lib/control/stats.ml: Format List
