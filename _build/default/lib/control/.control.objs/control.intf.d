lib/control/control.mli: Rt Stats
