(* Tests for the register-lowering (regalloc) stage of the peephole
   pass: operand-addressed primitive calls ([Prim_call1_op] ...
   [Prim_tail2_op]) and fused returns ([Return_op]).

   Three angles:
   - the disassembler renders every opcode of the instruction set,
     including every operand shape of the new forms (table-driven);
   - differential: the same program produces identical results with
     the lowering on and off, across the stack VM (default and tiny
     segments), the heap VM and the closure backend — including
     programs that [set!] a fused primitive mid-run, which exercises
     the operand-spill deopt paths;
   - spill discipline at the capture boundary: a capture-heavy workload
     must copy exactly the same words with the lowering on and off
     (operand values are spilled into the frame's argument slots before
     any slow path, so captured segment contents are unchanged), while
     dispatching strictly fewer instructions. *)

let case = Tutil.case
let fuel = Tutil.default_fuel

(* ------------------------------------------------------------------ *)
(* Disassembler coverage                                               *)
(* ------------------------------------------------------------------ *)

let dummy_slot = Globals.slot "x"

let dummy_site =
  {
    Rt.ps_disp = 3;
    ps_nargs = 2;
    ps_slot = dummy_slot;
    ps_guard = Rt.Void;
    ps_prim = { Rt.pname = "+"; parity = Rt.At_least 0; pfn = Rt.Pure (fun _ -> Rt.Void) };
    ps_fn = (fun _ -> Rt.Void);
    ps_ret = Rt.Void;
  }

let dummy_code =
  Bytecode.make_code ~name:"body" ~arity:(Rt.Exactly 0) ~frame_words:2
    [| Rt.Halt |]

(* One row per [Rt.instr] constructor; the operand forms additionally
   cover all three [Rt.operand] shapes across their rows.  Keep in sync
   with [_exhaustive] below, whose wildcard-free match turns a new
   constructor into a compile error here rather than a silent coverage
   gap. *)
let disasm_table =
  [
    (Rt.Const (Rt.Int 42), "const 42");
    (Rt.Local_ref 3, "local-ref 3");
    (Rt.Local_set 4, "local-set 4");
    (Rt.Box_init 1, "box-init 1");
    (Rt.Box_ref 2, "box-ref 2");
    (Rt.Box_set 3, "box-set 3");
    (Rt.Free_ref 0, "free-ref 0");
    (Rt.Free_box_ref 1, "free-box-ref 1");
    (Rt.Free_box_set 2, "free-box-set 2");
    (Rt.Global_ref dummy_slot, "global-ref x");
    (Rt.Global_set dummy_slot, "global-set x");
    (Rt.Global_define dummy_slot, "global-define x");
    ( Rt.Make_closure (dummy_code, [| Rt.Cap_local 1; Rt.Cap_free 2 |]),
      "make-closure body [l1 f2]" );
    (Rt.Branch 7, "branch 7");
    (Rt.Branch_false 9, "branch-false 9");
    ( Rt.Call { cs_disp = 3; cs_nargs = 2; cs_ret = Rt.Void },
      "call disp=3 nargs=2" );
    (Rt.Tail_call { disp = 3; nargs = 2 }, "tail-call disp=3 nargs=2");
    (Rt.Return, "return");
    (Rt.Enter, "enter");
    (Rt.Halt, "halt");
    (Rt.Const_push (Rt.Int 1, 5), "const-push 1 5");
    (Rt.Local_push (2, 5), "local-push 2 5");
    (Rt.Free_push (1, 6), "free-push 1 6");
    (Rt.Global_push (dummy_slot, 4), "global-push x 4");
    (Rt.Prim_call dummy_site, "prim-call + disp=3 nargs=2");
    (Rt.Prim_call1 dummy_site, "prim-call1 + disp=3");
    (Rt.Prim_call2 dummy_site, "prim-call2 + disp=3");
    (Rt.Prim_tail_call dummy_site, "prim-tail-call + disp=3 nargs=2");
    (Rt.Local_branch_false (2, 9), "local-branch-false 2 9");
    (Rt.Prim_branch1 (dummy_site, 9), "prim-branch1 + disp=3 9");
    (Rt.Prim_branch2 (dummy_site, 9), "prim-branch2 + disp=3 9");
    (Rt.Prim_call1_op (dummy_site, Rt.Op_acc), "prim-call1-op + acc disp=3");
    ( Rt.Prim_call2_op (dummy_site, Rt.Op_local 2, Rt.Op_const (Rt.Int 1)),
      "prim-call2-op + l2 1 disp=3" );
    ( Rt.Prim_branch1_op (dummy_site, Rt.Op_const (Rt.Int 0), 9),
      "prim-branch1-op + 0 disp=3 9" );
    ( Rt.Prim_branch2_op (dummy_site, Rt.Op_acc, Rt.Op_local 4, 9),
      "prim-branch2-op + acc l4 disp=3 9" );
    (Rt.Prim_tail1_op (dummy_site, Rt.Op_local 2), "prim-tail1-op + l2 disp=3");
    ( Rt.Prim_tail2_op (dummy_site, Rt.Op_const (Rt.Int 1), Rt.Op_acc),
      "prim-tail2-op + 1 acc disp=3" );
    (Rt.Return_op Rt.Op_acc, "return-op acc");
  ]

(* Wildcard-free: adding an opcode without a [disasm_table] row fails to
   compile (non-exhaustive match is an error in the dev profile). *)
let _exhaustive : Rt.instr -> unit = function
  | Rt.Const _ | Rt.Local_ref _ | Rt.Local_set _ | Rt.Box_init _
  | Rt.Box_ref _ | Rt.Box_set _ | Rt.Free_ref _ | Rt.Free_box_ref _
  | Rt.Free_box_set _ | Rt.Global_ref _ | Rt.Global_set _
  | Rt.Global_define _ | Rt.Make_closure _ | Rt.Branch _
  | Rt.Branch_false _ | Rt.Call _ | Rt.Tail_call _ | Rt.Return | Rt.Enter
  | Rt.Halt | Rt.Const_push _ | Rt.Local_push _ | Rt.Free_push _
  | Rt.Global_push _ | Rt.Prim_call _ | Rt.Prim_call1 _ | Rt.Prim_call2 _
  | Rt.Prim_tail_call _ | Rt.Local_branch_false _ | Rt.Prim_branch1 _
  | Rt.Prim_branch2 _ | Rt.Prim_call1_op _ | Rt.Prim_call2_op _
  | Rt.Prim_branch1_op _ | Rt.Prim_branch2_op _ | Rt.Prim_tail1_op _
  | Rt.Prim_tail2_op _ | Rt.Return_op _ ->
      ()

let disasm_cases =
  [
    case "disassembler renders every opcode" (fun () ->
        List.iter
          (fun (instr, expected) ->
            Alcotest.(check string)
              expected expected
              (Bytecode.instr_to_string instr))
          disasm_table);
    case "lowered streams disassemble with operand forms" (fun () ->
        let s = Scheme.create () in
        let text =
          String.concat "\n"
            (List.map Bytecode.disassemble_deep
               (Compiler.compile_string (Scheme.globals s)
                  "(define (h n) (+ n 1))\n\
                   (define (g n) (if (< n 2) 1 (g (- n 1))))\n\
                   (define (k) 42)"))
        in
        List.iter
          (fun sub ->
            Alcotest.(check bool) sub true (Tutil.contains ~sub text))
          [
            "prim-tail2-op";
            "prim-branch2-op";
            "prim-call2-op";
            "return-op";
            (* retained landing pads stay in place after their heads *)
            "prim-tail-call";
            "prim-branch2 ";
            "const-push";
          ]);
    case "--no-regalloc emits no operand forms" (fun () ->
        let s = Scheme.create () in
        let text =
          String.concat "\n"
            (List.map Bytecode.disassemble_deep
               (Compiler.compile_string ~regalloc:false (Scheme.globals s)
                  "(define (h n) (+ n 1)) (define (k) 42)"))
        in
        Alcotest.(check bool) "no -op opcodes" false
          (Tutil.contains ~sub:"-op " text || Tutil.contains ~sub:"return-op" text));
  ]

(* ------------------------------------------------------------------ *)
(* Differential: regalloc on/off across backends                       *)
(* ------------------------------------------------------------------ *)

let eval ?(backend = Scheme.Stack Control.default_config) ?(corpus = false)
    ~regalloc src =
  let s = Scheme.create ~backend ~regalloc () in
  if corpus then Scheme.load_corpus s;
  Scheme.eval_string ~fuel s src

let backends =
  [
    ("stack", Scheme.Stack Control.default_config);
    ("stack/tiny", Scheme.Stack Tutil.tiny_config);
    ("heap", Scheme.Heap);
    ("closure", Scheme.Closure Control.default_config);
  ]

let corpus_workloads =
  [
    ("tak", "(tak 10 5 2)");
    ("fib", "(fib 13)");
    ("queens", "(queens-count 6)");
    ("boyer", "(boyer-run 8)");
    ("deep", "(deep-loop 2 3000)");
    ("ctak/cc", "(set! ctak-capture %call/cc) (ctak 12 8 4)");
    ("ctak/1cc", "(set! ctak-capture %call/1cc) (ctak 12 8 4)");
    ( "threads",
      "(run-threads (list (lambda () (fib 9)) (lambda () (fib 10))) 16 \
       %call/1cc)" );
  ]

let differential_cases =
  List.concat_map
    (fun (name, src) ->
      List.map
        (fun (bname, backend) ->
          case
            (Printf.sprintf "%s: regalloc on/off agree [%s]" name bname)
            (fun () ->
              Alcotest.(check string)
                src
                (eval ~backend ~corpus:true ~regalloc:false src)
                (eval ~backend ~corpus:true ~regalloc:true src)))
        backends)
    corpus_workloads

(* ------------------------------------------------------------------ *)
(* Deopt paths of the operand forms                                    *)
(* ------------------------------------------------------------------ *)

(* [set!] of a fused primitive mid-run forces the operand forms through
   their guard-failure paths, which must spill the operand values into
   the frame's argument slots before the generic call.  Each program
   targets a different form: tail ([Prim_tail2_op], the prim in tail
   position), non-tail with an accumulator operand ([Prim_call2_op]
   fed by an inner call via [Op_acc]), and branch ([Prim_branch2_op],
   the prim feeding an [if]). *)
let deopt_programs =
  [
    ( "tail",
      {|(define (f x y) (+ x y))
        (define r1 (f 1 2))
        (set! + *)
        (define r2 (f 3 4))
        (set! + -)
        (define r3 (f 10 4))
        (list r1 r2 r3)|},
      "(3 12 6)" );
    ( "acc operand",
      {|(define (f x) (+ (* x x) 1))
        (define r1 (f 3))
        (set! + -)
        (define r2 (f 3))
        (list r1 r2)|},
      "(10 8)" );
    ( "branch",
      {|(define (f x) (if (< x 5) 'small 'big))
        (define r1 (f 1))
        (set! < >)
        (define r2 (f 1))
        (list r1 r2)|},
      "(small big)" );
  ]

let deopt_cases =
  List.concat_map
    (fun (name, src, expected) ->
      List.map
        (fun (bname, backend) ->
          case
            (Printf.sprintf "deopt spills operands: %s [%s]" name bname)
            (fun () ->
              Alcotest.(check string)
                expected expected
                (eval ~backend ~regalloc:true src)))
        backends)
    deopt_programs

(* ------------------------------------------------------------------ *)
(* Spill discipline at the capture boundary                            *)
(* ------------------------------------------------------------------ *)

(* ctak captures a continuation at every call, so every fused site's
   frame is captured mid-flight; if a handler reached the capture path
   without spilling, the copied words would differ between the two
   encodings.  [instrs] must drop; every capture-side counter must not
   move at all. *)
let capture_identity bname backend op =
  case
    (Printf.sprintf "capture counters identical under regalloc [%s %s]" bname
       op)
    (fun () ->
      let measure regalloc =
        let stats = Stats.create () in
        let s = Scheme.create ~backend ~stats ~regalloc () in
        Scheme.load_corpus s;
        Stats.reset stats;
        ignore
          (Scheme.eval ~fuel s
             (Printf.sprintf "(set! ctak-capture %s) (ctak 12 8 4)" op));
        stats
      in
      let off = measure false and on = measure true in
      let same name get =
        Alcotest.(check int) name (get off) (get on)
      in
      same "words-copied" (fun st -> st.Stats.words_copied);
      same "seg-alloc-words" (fun st -> st.Stats.seg_alloc_words);
      same "captures-multi" (fun st -> st.Stats.captures_multi);
      same "captures-oneshot" (fun st -> st.Stats.captures_oneshot);
      same "frames" (fun st -> st.Stats.frames);
      if on.Stats.instrs >= off.Stats.instrs then
        Alcotest.failf "instrs did not drop: %d -> %d" off.Stats.instrs
          on.Stats.instrs)

let capture_cases =
  List.concat_map
    (fun (bname, backend) ->
      [
        capture_identity bname backend "%call/cc";
        capture_identity bname backend "%call/1cc";
      ])
    [
      ("stack", Scheme.Stack Control.default_config);
      ("closure", Scheme.Closure Control.default_config);
    ]

let suite = disasm_cases @ differential_cases @ deopt_cases @ capture_cases
