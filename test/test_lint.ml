(* Lint pass: golden diagnostics (exact rule, severity, message, and
   source location pinned) for the four rule families, plus clean runs
   over every shipped corpus. *)

let case = Tutil.case

let render ds = String.concat "\n" (List.map Lint.to_string ds)

let golden label src expected =
  case label (fun () ->
      Alcotest.(check string) "diagnostics" expected (render (Lint.lint_string src)))

let clean label src =
  case label (fun () ->
      Alcotest.(check string) (label ^ " lints clean") "" (render (Lint.lint_string src)))

let golden_cases =
  [
    golden "definite multi-shot call/1cc is an error"
      "(call/1cc (lambda (k) (k 1) (k 2)))"
      "1:0: error: [multi-shot-1cc] continuation k captured by call/1cc is \
       invoked on more than one path; one-shot continuations may be invoked \
       at most once";
    golden "escape + invoke is a possible-multi-shot warning"
      "(define saved #f)\n(call/1cc (lambda (k) (set! saved k) (k 0)))"
      "2:0: warning: [multi-shot-1cc] continuation k captured by call/1cc \
       escapes and is also invoked here; invoking the stored continuation \
       again would raise a shot-continuation error";
    golden "apply counts as an invocation"
      "(call/1cc (lambda (k) (apply k '(1)) (k 2)))"
      "1:0: error: [multi-shot-1cc] continuation k captured by call/1cc is \
       invoked on more than one path; one-shot continuations may be invoked \
       at most once";
    golden "non-flat quoted par-map argument, located at the bad datum"
      "(par-map car '((1 . 2) (3 . 4)))"
      "1:15: error: [non-flat-par] quoted argument of par-map contains the \
       non-flat datum (1 . 2), which cannot cross the par shard boundary";
    golden "non-flat par-reduce seed"
      "(par-reduce + '(1 . 2) '(1 2 3))"
      "1:15: error: [non-flat-par] quoted par-reduce seed contains the \
       non-flat datum (1 . 2), which cannot cross the par shard boundary";
    golden "set! of a fused standard primitive"
      "(set! car (lambda (p) p))"
      "1:6: warning: [fused-prim-set] set! of car deoptimizes every \
       inline-cached call site compiled against its standard primitive \
       binding";
    golden "unused let binding"
      "(let ((x 1) (y 2)) y)"
      "1:7: warning: [unused-binding] binding x is never referenced";
    golden "unused named-let name"
      "(let loop ((i 0)) i)"
      "1:5: warning: [unused-binding] binding loop is never referenced";
  ]

let negative_cases =
  [
    clean "escape-only capture (engine idiom)"
      "(define saved #f)\n(call/1cc (lambda (k) (set! saved k)))";
    clean "one invocation per exclusive branch"
      "(call/1cc (lambda (k) (if (null? '()) (k 1) (k 2))))";
    clean "direct abort from a loop body cannot re-fire"
      "(call/1cc (lambda (abort) (let loop ((xs '(2 0 4)) (acc 1)) (cond \
       ((null? xs) acc) ((= (car xs) 0) (abort 0)) (else (loop (cdr xs) (* \
       acc (car xs))))))))";
    clean "invocation inside a nested lambda is not counted"
      "(define (with-escape f) (call/1cc (lambda (k) (f (lambda (v) (k v))))))";
    clean "flat par arguments" "(par-map (lambda (x) (* x x)) '(1 2 3))";
    clean "nested proper lists are flat"
      "(par-map car '((1 2) (3 4)))";
    clean "set! of a name the program defines itself"
      "(define (car x) x)\n(set! car (lambda (p) p))";
    clean "set! of a lexical binding"
      "(let ((count 0)) (set! count (+ count 1)) count)";
    clean "do-loop variables used by step and test"
      "(do ((i 0 (+ i 1)) (acc 1 (* acc i))) ((= i 5) acc))";
    clean "lambda parameters are exempt from unused-binding"
      "(define f (lambda (unused-param) 42)) (f 1)";
    clean "shadowed k is a different variable"
      "(call/1cc (lambda (k) (let ((k list)) (k 1) (k 2))))";
  ]

(* The shipped corpora must lint clean: the prelude's escape-only
   continuation idioms (engines, error handlers, par scheduler) and the
   winder wrappers' apply-invocations must none of them trip the
   multi-shot analysis. *)
let corpus_cases =
  List.map
    (fun (label, src) -> clean ("corpus lints clean: " ^ label) src)
    [
      ("prelude", Prelude.source);
      ("prelude-scheme-winders", Prelude.source_scheme_winders);
      ("parprelude", Parprelude.source);
      ("programs", Programs.all_defs);
      ("threads", Threads.scheduler);
      ("cml", Cml.source);
    ]

(* With a live global table, fused-prim-set consults actual bindings. *)
let globals_cases =
  [
    case "globals-aware: set! of a non-prim global is quiet" (fun () ->
        let g = Globals.create () in
        Prims.install g;
        Globals.define g "my-hook" (Rt.Int 0);
        Alcotest.(check int)
          "no diagnostics" 0
          (List.length (Lint.lint_string ~globals:g "(set! my-hook 1)")));
    case "globals-aware: set! of an installed pure prim warns" (fun () ->
        let g = Globals.create () in
        Prims.install g;
        match Lint.lint_string ~globals:g "(set! vector-ref car)" with
        | [ d ] ->
            Alcotest.(check string)
              "rule" "fused-prim-set"
              (match d.Diag.rule with Some r -> r | None -> "<none>")
        | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds));
  ]

let suite = golden_cases @ negative_cases @ corpus_cases @ globals_cases
