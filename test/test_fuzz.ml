(* Property fuzzer for the static verifier: random small programs are
   compiled under every optimizer-stage combination, the verifier must
   accept every resulting code object, and every bytecode backend must
   agree on the program's result when run with verification enabled.

   The seed is fixed: a failure reproduces exactly, and the corpus of
   generated programs is identical on every run.  The generator is a
   compact version of [Test_diff]'s: closed, terminating programs over
   arithmetic, let/lambda binding, conditionals, pairs, and one-shot
   escapes. *)

let case = Tutil.case
let seed = 0x5eed1e55
let program_count = 60

let counter = ref 0

let fresh prefix =
  incr counter;
  Printf.sprintf "%s%d" prefix !counter

let choose st xs = List.nth xs (Random.State.int st (List.length xs))

let rec gen_int st env depth =
  if depth = 0 then leaf st env
  else
    match Random.State.int st 10 with
    | 0 | 1 -> leaf st env
    | 2 | 3 ->
        Printf.sprintf "(%s %s %s)"
          (choose st [ "+"; "-"; "*" ])
          (gen_int st env (depth - 1))
          (gen_int st env (depth - 1))
    | 4 ->
        Printf.sprintf "(if %s %s %s)"
          (gen_bool st env (depth - 1))
          (gen_int st env (depth - 1))
          (gen_int st env (depth - 1))
    | 5 ->
        let x = fresh "v" in
        Printf.sprintf "(let ((%s %s)) %s)" x
          (gen_int st env (depth - 1))
          (gen_int st (x :: env) (depth - 1))
    | 6 ->
        let x = fresh "p" in
        Printf.sprintf "((lambda (%s) %s) %s)" x
          (gen_int st (x :: env) (depth - 1))
          (gen_int st env (depth - 1))
    | 7 ->
        let k = fresh "k" in
        Printf.sprintf "(call/1cc (lambda (%s) (%s %s)))" k k
          (gen_int st env (depth - 1))
    | 8 ->
        Printf.sprintf "(car (cons %s %s))"
          (gen_int st env (depth - 1))
          (gen_int st env (depth - 1))
    | _ ->
        Printf.sprintf "(cdr (cons %s %s))"
          (gen_int st env (depth - 1))
          (gen_int st env (depth - 1))

and leaf st env =
  match env with
  | [] -> string_of_int (Random.State.int st 21 - 10)
  | _ ->
      if Random.State.int st 3 = 0 then choose st env
      else string_of_int (Random.State.int st 21 - 10)

and gen_bool st env depth =
  if depth = 0 then choose st [ "#t"; "#f" ]
  else
    Printf.sprintf "(%s %s %s)"
      (choose st [ "<"; "="; ">" ])
      (gen_int st env (depth - 1))
      (gen_int st env (depth - 1))

let programs =
  lazy
    (let st = Random.State.make [| seed |] in
     List.init program_count (fun _ ->
         gen_int st [] (2 + Random.State.int st 4)))

let stage_combos =
  [
    ("full", true, true);
    ("no-regalloc", true, false);
    ("no-peephole", false, true);
  ]

(* Compile-and-verify, no session: exercises the verifier on the bare
   compiler output for every combo. *)
let verify_accepts_case =
  case "verifier accepts every generated program under every combo" (fun () ->
      let g = Globals.create () in
      Prims.install g;
      List.iter
        (fun src ->
          List.iter
            (fun (cl, peephole, regalloc) ->
              match
                Verify.verify_program
                  (Compiler.compile_string ~peephole ~regalloc g src)
              with
              | () -> ()
              | exception Verify.Error m ->
                  Alcotest.failf "verifier rejected [%s] %s: %s" cl src m)
            stage_combos)
        (Lazy.force programs))

(* Sessions with verification enabled: every backend × combo must agree
   on every generated program's value. *)
let sessions =
  lazy
    (List.concat_map
       (fun (bl, backend) ->
         List.map
           (fun (cl, peephole, regalloc) ->
             ( Printf.sprintf "%s/%s" bl cl,
               Scheme.create ~backend ~peephole ~regalloc ~verify:true () ))
           stage_combos)
       [
         ("stack", Scheme.Stack Control.default_config);
         ("stack-tiny", Scheme.Stack Tutil.tiny_config);
         ("closure", Scheme.Closure Control.default_config);
         ("heap", Scheme.Heap);
       ])

let run_on s src =
  match Scheme.eval_string ~fuel:3_000_000 s src with
  | v -> "value " ^ v
  | exception Rt.Scheme_error _ -> "<scheme error>"
  | exception Rt.Shot_continuation -> "<shot continuation>"

let backends_agree_case =
  case "all backends agree on generated programs under verification"
    (fun () ->
      List.iter
        (fun src ->
          match Lazy.force sessions with
          | [] -> assert false
          | (l0, s0) :: rest ->
              let expected = run_on s0 src in
              List.iter
                (fun (l, s) ->
                  let got = run_on s src in
                  if got <> expected then
                    Alcotest.failf "%s and %s disagree on %s: %s vs %s" l0 l
                      src expected got)
                rest)
        (Lazy.force programs))

let suite = [ verify_accepts_case; backends_agree_case ]
