(* Hygiene differential suite: the rename-based syntax-rules expansion
   across every backend (stack, closure, heap, oracle), with the
   hygiene switch both on and off.

   Each program is chosen so that hygienic and unhygienic expansion
   produce *different* values, pinning both behaviours: the default must
   neither capture use-site bindings nor let template bindings be
   captured, and [~hygiene:false] must reproduce the historical textual
   expansion exactly.  All four backends share one expander, so every
   case also checks the three VMs against the CPS oracle. *)

open Tutil

let backends =
  [
    ("stack", Scheme.Stack Control.default_config);
    ("closure", Scheme.Closure Control.default_config);
    ("heap", Scheme.Heap);
    ("oracle", Scheme.Oracle);
  ]

let eval_with backend hygiene src =
  let s = Scheme.create ~backend ~hygiene () in
  Scheme.eval_string ~fuel:default_fuel s src

(* One case per backend x hygiene switch, against the expected value for
   that switch. *)
let differential name src ~hygienic ~unhygienic =
  List.concat_map
    (fun (bname, backend) ->
      [
        case (Printf.sprintf "%s [%s]" name bname) (fun () ->
            Alcotest.(check string) src hygienic (eval_with backend true src));
        case (Printf.sprintf "%s [%s, no-hygiene]" name bname) (fun () ->
            Alcotest.(check string)
              src unhygienic
              (eval_with backend false src));
      ])
    backends

(* The paper-classic swap!: the template's [tmp] must not capture a
   use-site [tmp].  Unhygienic expansion rebinds the use-site variable,
   so the swap silently fails. *)
let swap_cases =
  differential "swap! does not capture a use-site tmp"
    "(define-syntax swap!\n\
    \  (syntax-rules ()\n\
    \    ((_ a b) (let ((tmp a)) (set! a b) (set! b tmp)))))\n\
     (define tmp 1)\n\
     (define other 2)\n\
     (swap! tmp other)\n\
     (list tmp other)"
    ~hygienic:"(2 1)" ~unhygienic:"(1 2)"

(* my-or's template [let] must not shadow the use site's [t]. *)
let my_or_cases =
  differential "my-or's template binding is invisible to the use site"
    "(define-syntax my-or\n\
    \  (syntax-rules ()\n\
    \    ((_ a b) (let ((t a)) (if t t b)))))\n\
     (let ((t 5)) (my-or #f t))"
    ~hygienic:"5" ~unhygienic:"#f"

(* A cond/else introduced by a template still reads as the auxiliary
   keyword even when the use site binds [else] as a variable. *)
let else_cases =
  differential "template-introduced else survives a use-site shadow"
    "(define-syntax pick\n\
    \  (syntax-rules ()\n\
    \    ((_ x) (cond ((= x 1) 'one) (else 'right)))))\n\
     (let ((else #f)) (pick 2))"
    ~hygienic:"right" ~unhygienic:"right"

(* Nested macro uses get distinct marks: two expansions of the same
   template must not capture each other's bindings. *)
let nesting_cases =
  differential "two expansions of one template do not collide"
    "(define-syntax dub\n\
    \  (syntax-rules ()\n\
    \    ((_ e) (let ((v e)) (+ v v)))))\n\
     (dub (dub 3))"
    ~hygienic:"12" ~unhygienic:"12"

(* let-syntax / letrec-syntax scope the binding to the body. *)
let let_syntax_cases =
  differential "let-syntax scopes the macro to its body"
    "(define (m x) (* x 10))\n\
     (+ (let-syntax ((m (syntax-rules () ((_ x) (+ x 1))))) (m 4))\n\
    \   (m 4))"
    ~hygienic:"45" ~unhygienic:"45"
  @ differential "letrec-syntax expands nested uses"
      "(letrec-syntax ((wrap (syntax-rules () ((_ x) (list x)))))\n\
      \  (wrap (wrap 7)))"
      ~hygienic:"((7))" ~unhygienic:"((7))"

(* Satellite (a): macro environments are per-session state, so two
   domains expanding *different* macros under the same keyword at the
   same time must not see each other (the expander once kept the
   current menv in a process global, which raced exactly here).  The
   Scheme-level [eval] re-enters the expander at runtime, so each
   domain re-expands its own macro hundreds of times while the other
   does the same. *)
let distinct_macros_across_domains =
  case "distinct macros in distinct domains do not interfere" (fun () ->
      let run tag =
        let s = Scheme.create () in
        Scheme.eval_string ~fuel:default_fuel s
          (Printf.sprintf
             "(define-syntax m (syntax-rules () ((_ x) (cons '%s x))))\n\
              (define (go n acc)\n\
             \  (if (= n 0) acc (go (- n 1) (eval '(m 1)))))\n\
              (go 200 #f)"
             tag)
      in
      let d1 = Domain.spawn (fun () -> run "left") in
      let d2 = Domain.spawn (fun () -> run "right") in
      let r1 = Domain.join d1 and r2 = Domain.join d2 in
      Alcotest.(check string) "left domain" "(left . 1)" r1;
      Alcotest.(check string) "right domain" "(right . 1)" r2)

(* Pool shards expand macros independently and deterministically: a
   macro-heavy program run on parallel domains must produce the same
   per-shard values and counters as the same program run sequentially. *)
let pool_macro_identity =
  case "pool shards: macros expand identically domains vs sequential"
    (fun () ->
      let src =
        "(define-syntax sq (syntax-rules () ((_ x) (* x x))))\n\
         (define-syntax sum2\n\
        \  (syntax-rules () ((_ a b) (+ (sq a) (sq b)))))\n\
         (sum2 (eval '(sq 3)) 4)"
      in
      let shards ~domains =
        List.map
          (fun (sh : Scheme.Pool.shard) ->
            ( sh.Scheme.Pool.shard,
              Values.write_string sh.Scheme.Pool.value,
              Stats.get sh.Scheme.Pool.stats "instrs" ))
          (Scheme.Pool.run ~domains ~jobs:3 src)
      in
      let par = shards ~domains:true and seq = shards ~domains:false in
      Alcotest.(check (list (triple int string int)))
        "per-shard values and instruction counts" seq par;
      List.iter
        (fun (_, v, _) -> Alcotest.(check string) "value" "97" v)
        par)

let suite =
  swap_cases @ my_or_cases @ else_cases @ nesting_cases @ let_syntax_cases
  @ [ distinct_macros_across_domains; pool_macro_identity ]
