(* Compiler unit tests: code-object shape, closure conversion, boxing
   decisions, direct-lambda inlining, and tail-call emission. *)

let case = Tutil.case

let compile_one src =
  let globals = Globals.create () in
  match Compiler.compile_string globals src with
  | [ code ] -> code
  | codes -> Alcotest.failf "expected one form, got %d" (List.length codes)

let instrs code = Array.to_list code.Rt.instrs

let count_instr pred code =
  let n = ref 0 in
  let rec walk (c : Rt.code) =
    Array.iter
      (fun i ->
        if pred i then incr n;
        match i with Rt.Make_closure (c', _) -> walk c' | _ -> ())
      c.Rt.instrs
  in
  walk code;
  !n

let has_instr pred code = count_instr pred code > 0

let suite =
  [
    case "toplevel code enters and returns" (fun () ->
        let code = compile_one "42" in
        (match instrs code with
        | Rt.Enter :: _ -> ()
        | _ -> Alcotest.fail "first instruction must be Enter");
        match List.rev (instrs code) with
        | Rt.Return :: _ -> ()
        | _ -> Alcotest.fail "last instruction must be Return");
    case "direct lambda application allocates no closure" (fun () ->
        let code = compile_one "(let ((x 1) (y 2)) (+ x y))" in
        Alcotest.(check int) "closures" 0
          (count_instr (function Rt.Make_closure _ -> true | _ -> false) code));
    case "escaping lambda allocates a closure" (fun () ->
        let code = compile_one "(lambda (x) x)" in
        Alcotest.(check int) "closures" 1
          (count_instr (function Rt.Make_closure _ -> true | _ -> false) code));
    case "tail position compiles to tail call" (fun () ->
        let code = compile_one "(define (f x) (f x))" in
        Alcotest.(check bool) "has tail call" true
          (has_instr (function Rt.Tail_call _ -> true | _ -> false) code);
        Alcotest.(check int) "no non-tail call" 0
          (count_instr (function Rt.Call _ -> true | _ -> false) code));
    case "non-tail call is not a tail call" (fun () ->
        let code = compile_one "(define (f x) (+ 1 (f x)))" in
        Alcotest.(check bool) "has call" true
          (has_instr (function Rt.Call _ -> true | _ -> false) code));
    case "unassigned variables are not boxed" (fun () ->
        let code = compile_one "(let ((x 1)) ((lambda () x)))" in
        Alcotest.(check int) "boxes" 0
          (count_instr (function Rt.Box_init _ -> true | _ -> false) code));
    case "assigned variables are boxed" (fun () ->
        let code = compile_one "(let ((x 1)) (set! x 2) x)" in
        Alcotest.(check bool) "boxed" true
          (has_instr (function Rt.Box_init _ -> true | _ -> false) code));
    case "assigned captured variable read through box" (fun () ->
        let code =
          compile_one "(let ((x 1)) (lambda () (set! x (+ x 1)) x))"
        in
        Alcotest.(check bool) "free box ref" true
          (has_instr (function Rt.Free_box_ref _ -> true | _ -> false) code));
    case "free variables resolved through closure" (fun () ->
        let code = compile_one "(lambda (x) (lambda () x))" in
        Alcotest.(check bool) "free ref" true
          (has_instr (function Rt.Free_ref _ -> true | _ -> false) code));
    case "frame_words covers arguments and temps" (fun () ->
        let code = compile_one "(+ 1 2 3 4 5 6 7 8)" in
        (* fn slot + 8 args + ret + slack *)
        Alcotest.(check bool) "frame wide enough"
          true
          (code.Rt.frame_words >= 11));
    case "variadic lambda arity" (fun () ->
        let code = compile_one "(lambda (a b . r) r)" in
        match instrs code with
        | [ Rt.Enter; Rt.Make_closure (c, _); Rt.Return ] ->
            Alcotest.(check string)
              "arity" "2+"
              (Bytecode.arity_to_string c.Rt.arity)
        | _ -> Alcotest.fail "unexpected toplevel shape");
    case "disassembler names globals" (fun () ->
        let code = compile_one "(car '(1))" in
        let text = Bytecode.disassemble code in
        Alcotest.(check bool) "mentions car" true
          (Tutil.contains ~sub:"car" text));
    case "disassemble_deep includes nested code" (fun () ->
        let code = compile_one "(lambda (x) (lambda (y) (+ x y)))" in
        let text = Bytecode.disassemble_deep code in
        (* The inner lambda reads its free [x]; after peephole fusion the
           read appears as free-push rather than free-ref. *)
        Alcotest.(check bool) "two lambdas" true
          (Tutil.contains ~sub:"free-ref" text
          || Tutil.contains ~sub:"free-push" text));
    case "branch targets in range" (fun () ->
        let code = compile_one "(if (if 1 2 3) (if 4 5 6) (if 7 8 9))" in
        Array.iter
          (function
            | Rt.Branch pc | Rt.Branch_false pc ->
                if pc < 0 || pc > Array.length code.Rt.instrs then
                  Alcotest.failf "branch target %d out of range" pc
            | _ -> ())
          code.Rt.instrs);
    case "compile error on unbound is deferred to runtime" (fun () ->
        (* Unbound globals are a runtime error, not a compile error. *)
        let _ = compile_one "(this-is-unbound)" in
        ());
    (* Deep let nesting reuses slots: frame stays small. *)
    case "sequential lets release slots" (fun () ->
        let seq =
          String.concat " "
            (List.init 30 (fun i ->
                 Printf.sprintf "(let ((x%d %d)) x%d)" i i i))
        in
        (* wrapped in a lambda body: top-level (begin ...) splices *)
        let code = compile_one (Printf.sprintf "((lambda () %s))" seq) in
        Alcotest.(check bool) "frame stays small" true
          (code.Rt.frame_words < 16));
  ]

(* Optimizer unit tests. *)
let opt_one src =
  match Expander.expand_string src with
  | [ Ast.Expr (e, _) ] -> Optimize.expr e
  | _ -> Alcotest.fail "expected one expression"

let opt_suite =
  [
    case "folds constant arithmetic" (fun () ->
        match opt_one "(+ 1 2 (* 3 4))" with
        | Ast.Quote (Rt.Int 15) -> ()
        | e -> Alcotest.failf "not folded: %s" (Ast.to_string e));
    case "folds comparisons and prunes branches" (fun () ->
        match opt_one "(if (< 1 2) 'yes (car 5))" with
        | Ast.Quote (Rt.Sym "yes") -> ()
        | e -> Alcotest.failf "not pruned: %s" (Ast.to_string e));
    case "does not fold through shadowing" (fun () ->
        match opt_one "((lambda (+) (+ 1 2)) 99)" with
        | Ast.App _ -> ()
        | e -> Alcotest.failf "unexpectedly folded: %s" (Ast.to_string e));
    case "does not fold division by zero" (fun () ->
        match opt_one "(quotient 1 0)" with
        | Ast.App _ -> ()
        | e -> Alcotest.failf "folded a crash: %s" (Ast.to_string e));
    case "drops effect-free begin positions" (fun () ->
        (* wrapped in if: top-level begin splices *)
        match opt_one "(if #t (begin 1 2 3) 99)" with
        | Ast.Quote (Rt.Int 3) -> ()
        | e -> Alcotest.failf "begin kept: %s" (Ast.to_string e));
    case "keeps effectful begin positions" (fun () ->
        match opt_one "(if #t (begin (display 1) 2) 99)" with
        | Ast.Begin [ _; _ ] -> ()
        | e -> Alcotest.failf "dropped an effect: %s" (Ast.to_string e));
    case "folds car of quoted structure" (fun () ->
        match opt_one "(car '(a b))" with
        | Ast.Quote (Rt.Sym "a") -> ()
        | e -> Alcotest.failf "not folded: %s" (Ast.to_string e));
    case "does not fold eq? of mutable structure" (fun () ->
        match opt_one {|(eq? "a" "a")|} with
        | Ast.App _ -> ()
        | e -> Alcotest.failf "unsound fold: %s" (Ast.to_string e));
    case "optimized program runs the same" (fun () ->
        Alcotest.(check string)
          "equal" "120"
          (let s =
             Scheme.create ~backend:(Scheme.Stack Control.default_config)
               ~optimize:true ()
           in
           Scheme.eval_string s
             "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1))))) (fact 5)"));
  ]

let suite = suite @ opt_suite
