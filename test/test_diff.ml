(* Differential testing: random core-Scheme programs must produce the same
   value on the CPS oracle, the heap VM, and the stack VM under several
   control configurations (tiny segments force the overflow/underflow and
   splitting machinery; the call/cc overflow policy and shared-flag
   promotion are exercised too).

   The generator produces closed, terminating programs: recursion only
   through upward continuation escapes, mutation only of number-valued
   variables.  Programs whose stack-VM run raises are compared on the
   error class only (the oracle's promotion over-approximation may let a
   shot-continuation error pass there; see oracle.mli).

   The generator is written in direct style over [Random.State] — building
   it from QCheck's eager combinators would construct the whole
   exponential branch tree before sampling. *)

let fresh_counter = ref 0

let fresh prefix =
  incr fresh_counter;
  Printf.sprintf "%s%d" prefix !fresh_counter

let choose st xs = List.nth xs (Random.State.int st (List.length xs))
let pick_var st env = choose st env

let rec gen_int st env depth =
  if depth = 0 then gen_int_leaf st env
  else
    match Random.State.int st 12 with
    | 0 | 1 -> gen_int_leaf st env
    | 2 | 3 ->
        let op = choose st [ "+"; "-"; "*" ] in
        let a = gen_int st env (depth - 1) in
        let b = gen_int st env (depth - 1) in
        Printf.sprintf "(%s %s %s)" op a b
    | 4 ->
        let t = gen_bool st env (depth - 1) in
        let a = gen_int st env (depth - 1) in
        let b = gen_int st env (depth - 1) in
        Printf.sprintf "(if %s %s %s)" t a b
    | 5 ->
        let x = fresh "v" in
        let init = gen_int st env (depth - 1) in
        let body = gen_int st (x :: env) (depth - 1) in
        Printf.sprintf "(let ((%s %s)) %s)" x init body
    | 6 ->
        let x = fresh "p" in
        let body = gen_int st (x :: env) (depth - 1) in
        let arg = gen_int st env (depth - 1) in
        Printf.sprintf "((lambda (%s) %s) %s)" x body arg
    | 7 -> (
        match env with
        | [] -> gen_int_leaf st env
        | _ ->
            let x = pick_var st env in
            let e = gen_int st env (depth - 1) in
            let body = gen_int st env (depth - 1) in
            Printf.sprintf "(begin (set! %s %s) %s)" x e body)
    | 8 ->
        let k = fresh "k" in
        Printf.sprintf "(call/cc (lambda (%s) %s))" k
          (gen_escape_body st k env (depth - 1))
    | 9 ->
        let k = fresh "j" in
        Printf.sprintf "(call/1cc (lambda (%s) %s))" k
          (gen_escape_body st k env (depth - 1))
    | 10 ->
        let a = gen_int st env (depth - 1) in
        let b = gen_int st env (depth - 1) in
        if Random.State.bool st then Printf.sprintf "(car (cons %s %s))" a b
        else Printf.sprintf "(cdr (cons %s %s))" b a
    | _ ->
        Printf.sprintf "(+ 1 (+ 1 (+ 1 (+ 1 %s))))"
          (gen_int st env (depth - 1))

and gen_int_leaf st env =
  match env with
  | [] -> string_of_int (Random.State.int st 41 - 20)
  | _ ->
      if Random.State.int st 3 = 0 then pick_var st env
      else string_of_int (Random.State.int st 41 - 20)

and gen_escape_body st k env depth =
  match Random.State.int st 4 with
  | 0 -> gen_int st env depth
  | 1 | 2 -> Printf.sprintf "(+ 1 (%s %s))" k (gen_int st env depth)
  | _ ->
      let t = gen_bool st env depth in
      let v = gen_int st env depth in
      let other = gen_int st env depth in
      Printf.sprintf "(if %s (%s %s) %s)" t k v other

and gen_bool st env depth =
  if depth = 0 then choose st [ "#t"; "#f" ]
  else
    match Random.State.int st 4 with
    | 0 -> choose st [ "#t"; "#f" ]
    | 1 | 2 ->
        let op = choose st [ "<"; "="; ">"; "<="; ">=" ] in
        let a = gen_int st env (depth - 1) in
        let b = gen_int st env (depth - 1) in
        Printf.sprintf "(%s %s %s)" op a b
    | _ -> Printf.sprintf "(not %s)" (gen_bool st env (depth - 1))

let gen_program st =
  let depth = 2 + Random.State.int st 5 in
  gen_int st [] depth

type outcome = Value of string | Error_scheme | Error_shot

let run_on session src =
  match Scheme.eval_string ~fuel:3_000_000 session src with
  | v -> Value v
  | exception Rt.Scheme_error _ -> Error_scheme
  | exception Rt.Shot_continuation -> Error_shot

let sessions =
  lazy
    (let mk backend = Scheme.create ~backend () in
     [
       ("oracle", mk Scheme.Oracle);
       ("heap", mk Scheme.Heap);
       ("stack", mk (Scheme.Stack Control.default_config));
       ("stack-tiny", mk (Scheme.Stack Tutil.tiny_config));
       ("stack-tiny-cc", mk (Scheme.Stack Tutil.tiny_callcc_config));
       (* template-compiled backend: same machine, closure-threaded
          dispatch; tiny segments force its slow paths through the shared
          overflow/underflow machinery *)
       ("closure", mk (Scheme.Closure Control.default_config));
       ("closure-tiny", mk (Scheme.Closure Tutil.tiny_config));
       ( "closure-noopt",
         Scheme.create
           ~backend:(Scheme.Closure Control.default_config)
           ~peephole:false () );
       ( "stack-flag",
         mk
           (Scheme.Stack
              {
                Control.default_config with
                Control.promotion = Control.Shared_flag;
              }) );
       ( "stack-seal",
         mk
           (Scheme.Stack
              {
                Tutil.tiny_config with
                Control.oneshot_seal = Control.Seal_displacement 48;
              }) );
       ( "stack-optimized",
         Scheme.create ~backend:(Scheme.Stack Control.default_config)
           ~optimize:true () );
       ( "stack-noopt",
         (* unfused bytecode: differential witness for the peephole pass *)
         Scheme.create ~backend:(Scheme.Stack Control.default_config)
           ~peephole:false () );
       ( "heap-noopt",
         Scheme.create ~backend:Scheme.Heap ~peephole:false () );
       ( "stack-copy-capture",
         mk
           (Scheme.Stack
              {
                Tutil.tiny_config with
                Control.capture = Control.Copy_on_capture;
              }) );
       (* The historical Scheme-level winder protocol must stay
          observationally equal to the native one on random programs
          (every call/cc / call/1cc in the generator goes through the
          public wind-aware operators). *)
       ( "stack-scmwind",
         Scheme.create
           ~backend:(Scheme.Stack Control.default_config)
           ~scheme_winders:true () );
       ("heap-scmwind", Scheme.create ~backend:Scheme.Heap ~scheme_winders:true ());
       ( "oracle-scmwind",
         Scheme.create ~backend:Scheme.Oracle ~scheme_winders:true () );
     ])

let outcome_to_string = function
  | Value v -> "value " ^ v
  | Error_scheme -> "<scheme error>"
  | Error_shot -> "<shot continuation>"

let diff_prop =
  QCheck.Test.make ~name:"all backends agree on random programs" ~count:300
    (QCheck.make ~print:(fun s -> s) gen_program)
    (fun src ->
      let results =
        List.map (fun (name, s) -> (name, run_on s src)) (Lazy.force sessions)
      in
      match List.assoc "stack" results with
      | Error_shot | Error_scheme ->
          (* Error classes are checked by targeted unit tests; the oracle
             deliberately over-promotes. *)
          true
      | Value expected ->
          List.for_all
            (fun (name, r) ->
              match r with
              | Value v when v = expected -> true
              | r ->
                  QCheck.Test.fail_reportf
                    "backend %s disagrees on %s:\n  stack: %s\n  %s: %s" name
                    src expected name (outcome_to_string r))
            results)

(* A second property: programs built around deep non-tail recursion give
   identical results across segment sizes (stressing overflow, underflow,
   hysteresis and splitting with varied geometry). *)
let depth_prop =
  QCheck.Test.make ~name:"deep recursion agrees across segment geometries"
    ~count:20
    QCheck.(make ~print:string_of_int (Gen.int_range 100 2000))
    (fun n ->
      let src =
        Printf.sprintf
          "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum %d)" n
      in
      let expected = string_of_int (n * (n + 1) / 2) in
      List.for_all
        (fun seg ->
          let config =
            { Control.default_config with Control.seg_words = seg }
          in
          Tutil.eval_stack ~config src = expected
          &&
          let config =
            { config with Control.overflow_policy = Control.As_callcc }
          in
          Tutil.eval_stack ~config src = expected)
        [ 128; 256; 1024 ])

(* Continuation-heavy torture: ctak on all stack configurations. *)
let ctak_prop =
  QCheck.Test.make ~name:"ctak agrees across configurations and operators"
    ~count:8
    QCheck.(
      make
        ~print:(fun (x, y, z) -> Printf.sprintf "(%d,%d,%d)" x y z)
        Gen.(triple (int_range 4 9) (int_range 2 6) (int_range 0 3)))
    (fun (x, y, z) ->
      let rec tak x y z =
        if not (y < x) then z
        else tak (tak (x - 1) y z) (tak (y - 1) z x) (tak (z - 1) x y)
      in
      let expected = string_of_int (tak x y z) in
      let run op config =
        Tutil.eval_stack ~config ~corpus:true
          (Printf.sprintf "(set! ctak-capture %s) (ctak %d %d %d)" op x y z)
      in
      List.for_all
        (fun op ->
          List.for_all
            (fun config -> run op config = expected)
            [
              Control.default_config;
              Tutil.tiny_config;
              Tutil.tiny_callcc_config;
              { Control.default_config with Control.copy_bound = 16 };
              Tutil.copy_capture_config;
            ])
        [ "%call/cc"; "%call/1cc"; "call/cc"; "call/1cc" ])

(* Thread systems are deterministic under a per-call timer: the vector of
   per-thread results must be identical across operators, configurations,
   and switch frequencies. *)
let thread_prop =
  QCheck.Test.make ~name:"thread results agree across operators and configs"
    ~count:10
    QCheck.(
      make
        ~print:(fun (n, freq) -> Printf.sprintf "threads=%d freq=%d" n freq)
        Gen.(pair (int_range 2 6) (int_range 1 64)))
    (fun (nthreads, freq) ->
      let src op =
        Printf.sprintf
          {|(let ((results (make-vector %d #f)))
              (run-threads
               (let loop ((i 0) (acc '()))
                 (if (= i %d)
                     acc
                     (loop (+ i 1)
                           (cons (lambda () (vector-set! results i (fib (+ 8 i))))
                                 acc))))
               %d %s)
              results)|}
          nthreads nthreads freq op
      in
      let expected = Tutil.eval_stack ~corpus:true (src "%call/1cc") in
      List.for_all
        (fun (op, config) ->
          Tutil.eval_stack ~corpus:true ~config (src op) = expected)
        [
          ("%call/cc", Control.default_config);
          ("%call/1cc", Tutil.tiny_config);
          ("%call/cc", Tutil.tiny_callcc_config);
          ("%call/1cc",
           { Control.default_config with
             Control.oneshot_seal = Control.Seal_displacement 128 });
        ])

(* ------------------------------------------------------------------ *)
(* Native vs Scheme winders: the native dynamic-wind protocol (winder
   chains on the machines, wind trampoline frames) must be
   observationally identical to the historical prelude implementation,
   across both VMs and the oracle.  Every program is one top-level form:
   cross-form continuation re-entry is a known, documented divergence
   between the oracle and the VMs, so these cases keep all control flow
   inside a single form. *)

let winders_sessions =
  lazy
    (let mk name backend scheme_winders =
       (name, Scheme.create ~backend ~scheme_winders ())
     in
     [
       mk "stack/native" (Scheme.Stack Control.default_config) false;
       mk "stack/scheme" (Scheme.Stack Control.default_config) true;
       mk "stack-tiny/native" (Scheme.Stack Tutil.tiny_config) false;
       mk "closure/native" (Scheme.Closure Control.default_config) false;
       mk "closure/scheme" (Scheme.Closure Control.default_config) true;
       mk "closure-tiny/native" (Scheme.Closure Tutil.tiny_config) false;
       mk "heap/native" Scheme.Heap false;
       mk "heap/scheme" Scheme.Heap true;
       mk "oracle/native" Scheme.Oracle false;
       mk "oracle/scheme" Scheme.Oracle true;
     ])

let winders_cases =
  [
    ( "one-shot escape unwinds nested winds in order",
      {|(let ((trace '()))
          (let ((v (call/1cc (lambda (k)
                     (dynamic-wind
                       (lambda () (set! trace (cons 'b1 trace)))
                       (lambda ()
                         (dynamic-wind
                           (lambda () (set! trace (cons 'b2 trace)))
                           (lambda () (k 'out))
                           (lambda () (set! trace (cons 'a2 trace)))))
                       (lambda () (set! trace (cons 'a1 trace))))))))
            (cons v (reverse trace))))|},
      `Value "(out b1 b2 a2 a1)" );
    ( "multi-shot re-entry rewinds the before guard each time",
      {|(let ((trace '()) (k2 #f) (n 0))
          (dynamic-wind
            (lambda () (set! trace (cons 'before trace)))
            (lambda ()
              (call/cc (lambda (k) (set! k2 k)))
              (set! n (+ n 1))
              (set! trace (cons n trace)))
            (lambda () (set! trace (cons 'after trace))))
          (if (< n 3) (k2 #f))
          (reverse trace))|},
      `Value "(before 1 after before 2 after before 3 after)" );
    ( "switching between sibling extents walks to the common tail",
      {|(let ((trace '()) (kin #f))
          (dynamic-wind
            (lambda () (set! trace (cons 'b1 trace)))
            (lambda ()
              (call/cc (lambda (k) (set! kin k)))
              'body)
            (lambda () (set! trace (cons 'a1 trace))))
          (dynamic-wind
            (lambda () (set! trace (cons 'b2 trace)))
            (lambda ()
              (if (eq? kin 'used)
                  'done
                  (let ((k kin)) (set! kin 'used) (k #f))))
            (lambda () (set! trace (cons 'a2 trace))))
          (reverse trace))|},
      `Value "(b1 a1 b2 a2 b1 a1 b2 a2)" );
    ( "capture inside a before guard is benign",
      {|(let ((seen '()))
          (dynamic-wind
            (lambda () (call/cc (lambda (k) (set! seen (cons 'b seen)))))
            (lambda () (set! seen (cons 'x seen)) 42)
            (lambda () (set! seen (cons 'a seen))))
          (reverse seen))|},
      `Value "(b x a)" );
    ( "second re-entry of a one-shot wound continuation is shot",
      {|(let ((k1 #f) (n 0))
          (dynamic-wind
            (lambda () #t)
            (lambda () (call/1cc (lambda (k) (set! k1 k))) (set! n (+ n 1)))
            (lambda () #t))
          (if (< n 3) (k1 #f))
          n)|},
      `Shot );
  ]

let is_oracle name =
  String.length name >= 6 && String.sub name 0 6 = "oracle"

let winders_suite =
  List.map
    (fun (name, src, expect) ->
      Tutil.case ("winders: " ^ name) (fun () ->
          List.iter
            (fun (sname, s) ->
              match (expect, run_on s src) with
              | `Value v, Value got -> Alcotest.(check string) sname v got
              | `Shot, Error_shot -> ()
              | `Shot, Value _ when is_oracle sname ->
                  (* The oracle over-approximates promotion (oracle.mli):
                     a one-shot record it re-invokes may have been
                     silently promoted, so the shot error need not
                     surface there. *)
                  ()
              | _, got ->
                  Alcotest.failf "%s: unexpected outcome %s on %s" sname
                    (outcome_to_string got) src)
            (Lazy.force winders_sessions)))
    winders_cases

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ diff_prop; depth_prop; ctak_prop; thread_prop ]
  @ winders_suite
