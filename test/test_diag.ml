(* Golden tests for the unified diagnostic surface (DESIGN.md §17):
   one failure per pipeline layer, rendered through the one printer
   [Diag.to_string] with the exact line:col the layer reports.

   Positions are 1-based lines and 0-based columns, as the reader
   produces them. *)

open Tutil

(* Render the diagnostic an exception converts to, the way drivers do:
   layer exceptions the frontend cannot see (compiler, verifier) are
   folded in first, then {!Diag.of_exn}. *)
let diag_of_exn ?pos = function
  | Compiler.Compile_error (msg, p) ->
      let pos = match p with Some _ -> p | None -> pos in
      Some (Diag.error ?pos Diag.Compiler msg)
  | Verify.Error msg -> Some (Diag.error ?pos Diag.Verify msg)
  | e -> Diag.of_exn ?pos e

let render ?pos e =
  match diag_of_exn ?pos e with
  | Some d -> Diag.to_string d
  | None -> Alcotest.fail "exception did not convert to a diagnostic"

let check_exn name expected f =
  case name (fun () ->
      match f () with
      | _ -> Alcotest.fail "expected an exception"
      | exception e -> Alcotest.(check string) "diagnostic" expected (render e))

let reader_case =
  check_exn "reader error carries the offending position"
    "2:3: error: [read] unterminated string literal" (fun () ->
      Sexp.read_all "(a)\n(b \"oops)")

let expander_case =
  check_exn "expander error points at the bad form"
    "2:2: error: [expand] if: expects two or three forms" (fun () ->
      Expander.expand_string "(define x 1)\n  (if)")

let macro_case =
  check_exn "macro mismatch points at the use site"
    "2:1: error: [macro] no syntax-rules pattern matches this use" (fun () ->
      Expander.expand_string
        "(define-syntax m (syntax-rules () ((_ a) a)))\n (m 1 2)")

(* The compiler works over the position-free core AST; [compile_top]
   stamps its failures with the enclosing top-level form's span.  User
   source cannot reach a compile failure (unbound names legally become
   global references), so the exception is constructed — what is under
   test is the driver-side conversion and the shared printer. *)
let compiler_case =
  check_exn "compiler error renders with its form-level span"
    "3:4: error: [compile] compiler: unallocated binding x" (fun () ->
      raise
        (Compiler.Compile_error
           ( "compiler: unallocated binding x",
             Some { Sexp.line = 3; col = 4 } )))

(* Verifier violations are properties of fused bytecode, not of a source
   span: the diagnostic drops the position prefix. *)
let verify_case =
  check_exn "verifier error renders without a position"
    "error: [verify] enter: frame_words 1 below minimum 2" (fun () ->
      raise (Verify.Error "enter: frame_words 1 below minimum 2"))

(* Runtime errors carry no position of their own; the driver supplies
   the span of the failing top-level form (per-datum evaluation). *)
let runtime_case =
  case "runtime error adopts the failing form's position" (fun () ->
      let s = Scheme.create () in
      let datums = Sexp.read_all "(define (f) (car 5))\n(+ 1\n (f))" in
      let rec go = function
        | [] -> Alcotest.fail "expected a runtime error"
        | d :: rest -> (
            match Scheme.eval_datum s d with
            | _ -> go rest
            | exception e ->
                Alcotest.(check string)
                  "diagnostic" "2:0: error: [runtime] car: expected pair, got fixnum 5"
                  (render ~pos:(Sexp.pos_of d) e))
      in
      go datums)

let shot_case =
  check_exn "shot continuation renders as a runtime diagnostic"
    "error: [runtime] one-shot continuation invoked twice" (fun () ->
      let s = Scheme.create () in
      Scheme.eval s
        "(define k2 #f)\n\
         (+ 1 (%call/1cc (lambda (k) (set! k2 k) (k 0))))\n\
         (k2 0)")

(* Lint findings are the same Diag.t, tagged with the rule slug. *)
let lint_case =
  case "lint diagnostic renders through the same printer" (fun () ->
      match Lint.lint_string "(let ((unused 1)) 2)" with
      | [ d ] ->
          Alcotest.(check string)
            "diagnostic"
            "1:7: warning: [unused-binding] binding unused is never referenced"
            (Diag.to_string d)
      | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds))

(* --expand's rendering of hygiene marks: the unprintable mark character
   prints as name#n (the counter is process-global, so only the prefix
   is pinned). *)
let mark_rendering_case =
  case "Ast.to_string renders hygiene marks as name#n" (fun () ->
      let tops =
        Expander.expand_string
          "(define-syntax swap!\n\
          \  (syntax-rules ()\n\
          \    ((_ a b) (let ((tmp a)) (set! a b) (set! b tmp)))))\n\
           (define x 1)\n\
           (define y 2)\n\
           (swap! x y)"
      in
      let printed = String.concat "\n" (List.map Ast.top_to_string tops) in
      if not (contains ~sub:"tmp#" printed) then
        Alcotest.failf "no marked identifier in %s" printed;
      if String.contains printed Macro.mark_char then
        Alcotest.failf "raw mark character leaked into %s" printed)

let top_pos_case =
  case "expanded tops carry their surface positions" (fun () ->
      match Expander.expand_string "(define a 1)\n  (+ a 1)" with
      | [ t1; t2 ] ->
          Alcotest.(check (pair int int))
            "define pos" (1, 0)
            (let p = Ast.top_pos t1 in
             (p.Sexp.line, p.Sexp.col));
          Alcotest.(check (pair int int))
            "expr pos" (2, 2)
            (let p = Ast.top_pos t2 in
             (p.Sexp.line, p.Sexp.col))
      | tops -> Alcotest.failf "expected 2 tops, got %d" (List.length tops))

let suite =
  [
    reader_case;
    expander_case;
    macro_case;
    compiler_case;
    verify_case;
    runtime_case;
    shot_case;
    lint_case;
    mark_rendering_case;
    top_pos_case;
  ]
