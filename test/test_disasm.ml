(* Coverage audit for the disassembler: every [Rt.instr] constructor
   must render distinctly through [Bytecode.instr_to_string], so verifier
   diagnostics and [disassemble_deep] listings can always print the
   offending instruction unambiguously. *)

let case = Tutil.case

let exemplars =
  (* one instruction per constructor, every constructor represented *)
  let g = Globals.create () in
  Prims.install g;
  let slot = Globals.slot "car" in
  let cell = Globals.get g slot in
  let prim = match cell.Rt.gval with Rt.Prim p -> p | _ -> assert false in
  let fn = match prim.Rt.pfn with Rt.Pure f -> f | _ -> assert false in
  let site =
    {
      Rt.ps_disp = 2;
      ps_nargs = 1;
      ps_slot = slot;
      ps_guard = cell.Rt.gval;
      ps_prim = prim;
      ps_fn = fn;
      ps_ret = Rt.Void;
    }
  in
  let child =
    Bytecode.make_code ~name:"child" ~arity:(Rt.Exactly 0) ~frame_words:3
      [| Rt.Enter; Rt.Const (Rt.Int 1); Rt.Return |]
  in
  [
    Rt.Const (Rt.Int 7);
    Rt.Local_ref 3;
    Rt.Local_set 3;
    Rt.Box_init 3;
    Rt.Box_ref 3;
    Rt.Box_set 3;
    Rt.Free_ref 1;
    Rt.Free_box_ref 1;
    Rt.Free_box_set 1;
    Rt.Global_ref slot;
    Rt.Global_set slot;
    Rt.Global_define slot;
    Rt.Make_closure (child, [| Rt.Cap_local 2; Rt.Cap_free 0 |]);
    Rt.Branch 4;
    Rt.Branch_false 4;
    Rt.Call { Rt.cs_disp = 2; cs_nargs = 1; cs_ret = Rt.Void };
    Rt.Tail_call { disp = 2; nargs = 1 };
    Rt.Return;
    Rt.Enter;
    Rt.Halt;
    Rt.Const_push (Rt.Int 7, 3);
    Rt.Local_push (2, 3);
    Rt.Free_push (1, 3);
    Rt.Global_push (slot, 3);
    Rt.Prim_call site;
    Rt.Prim_call1 site;
    Rt.Prim_call2 site;
    Rt.Prim_tail_call site;
    Rt.Local_branch_false (3, 4);
    Rt.Prim_branch1 (site, 4);
    Rt.Prim_branch2 (site, 4);
    Rt.Prim_call1_op (site, Rt.Op_local 3);
    Rt.Prim_call2_op (site, Rt.Op_local 3, Rt.Op_acc);
    Rt.Prim_branch1_op (site, Rt.Op_local 3, 4);
    Rt.Prim_branch2_op (site, Rt.Op_local 3, Rt.Op_acc, 4);
    Rt.Prim_tail1_op (site, Rt.Op_local 3);
    Rt.Prim_tail2_op (site, Rt.Op_local 3, Rt.Op_acc);
    Rt.Return_op (Rt.Op_const (Rt.Int 7));
  ]

(* Keep in sync with the [Rt.instr] declaration: a new constructor must
   be added to [exemplars] above (the count check fails otherwise, by
   construction of this list covering all current arms). *)
let constructor_count = 38

let suite =
  [
    case "one exemplar per instr constructor" (fun () ->
        Alcotest.(check int) "exemplar count" constructor_count
          (List.length exemplars));
    case "every constructor renders non-empty" (fun () ->
        List.iter
          (fun i ->
            if String.length (Bytecode.instr_to_string i) = 0 then
              Alcotest.fail "empty rendering")
          exemplars);
    case "every constructor renders distinctly" (fun () ->
        let rendered = List.map Bytecode.instr_to_string exemplars in
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun s ->
            if Hashtbl.mem tbl s then
              Alcotest.failf "duplicate rendering: %s" s;
            Hashtbl.add tbl s ())
          rendered);
    case "operand forms distinguish their operands" (fun () ->
        let renders =
          List.map Bytecode.operand_to_string
            [ Rt.Op_acc; Rt.Op_local 0; Rt.Op_local 1; Rt.Op_const (Rt.Int 0) ]
        in
        Alcotest.(check int) "distinct operand renders" 4
          (List.length (List.sort_uniq compare renders)));
    case "disassemble_deep lists nested closures" (fun () ->
        let g = Globals.create () in
        Prims.install g;
        let codes =
          Compiler.compile_string g "(define (f x) (lambda (y) (+ x y)))"
        in
        let listing =
          String.concat "\n" (List.map Bytecode.disassemble_deep codes)
        in
        if not (String.length listing > 0) then
          Alcotest.fail "empty deep listing")
  ]
