(* The unified execution core (lib/engine instantiated by the stack and
   heap frame policies) must keep sessions fully independent: each
   Scheme.t owns its machine, stats, globals, macro tables, output
   buffer and (stack backend) segment cache, so interleaving sessions —
   or running them on separate domains via Scheme.Pool — never lets one
   observe another.  These tests pin that property, plus the pieces the
   unification is allowed to share: the single fuel-exhaustion exception
   and the oracle's now-live counters. *)

let eval s src = Values.write_string (Scheme.eval s src)

(* Two sessions on different policies of the same engine, interleaved:
   same-named globals diverge, outputs accumulate separately. *)
let interleaved_backends () =
  let a = Scheme.create () in
  let b = Scheme.create ~backend:Scheme.Heap () in
  let c = Scheme.create ~backend:(Scheme.Closure Control.default_config) () in
  ignore
    (Scheme.eval a
       "(define (f n) (if (< n 2) n (+ (f (- n 1)) (f (- n 2)))))");
  ignore (Scheme.eval b "(define (f n) (* n 10))");
  ignore (Scheme.eval c "(define (f n) (+ n 100))");
  Alcotest.(check string) "stack f" "8" (eval a "(f 6)");
  Alcotest.(check string) "heap f" "60" (eval b "(f 6)");
  Alcotest.(check string) "closure f" "106" (eval c "(f 6)");
  ignore (Scheme.eval b "(define only-in-b 1)");
  (match Scheme.eval a "only-in-b" with
  | _ -> Alcotest.fail "session a sees session b's global"
  | exception Rt.Scheme_error _ -> ());
  ignore (Scheme.eval a "(display \"A\")");
  ignore (Scheme.eval b "(display \"B\")");
  ignore (Scheme.eval a "(display \"A\")");
  Alcotest.(check string) "a output" "AA" (Scheme.output a);
  Alcotest.(check string) "b output" "B" (Scheme.output b)

(* Counters are per-session: work in one session never ticks another,
   and each stack machine warms its own segment cache. *)
let independent_stats () =
  let a = Scheme.create () in
  let b = Scheme.create () in
  Stats.reset (Scheme.stats a);
  Stats.reset (Scheme.stats b);
  ignore
    (Scheme.eval a
       "(let loop ((i 0) (acc 0))\n\
       \  (if (= i 40) acc\n\
       \      (loop (+ i 1) (+ acc (%call/1cc (lambda (k) (k i)))))))");
  let sa = Scheme.stats a and sb = Scheme.stats b in
  Alcotest.(check bool) "a ran" true (sa.Stats.instrs > 0);
  Alcotest.(check int) "a captured" 40 sa.Stats.captures_oneshot;
  Alcotest.(check int) "b instrs untouched" 0 sb.Stats.instrs;
  Alcotest.(check int) "b cache untouched" 0 sb.Stats.cache_hits;
  (* %stat reads the evaluating session's own live counters. *)
  let a_multi = eval a "(begin (%call/cc (lambda (k) 1)) (%stat 'captures-multi))" in
  Alcotest.(check string) "a %stat" "1" a_multi;
  Alcotest.(check string) "b %stat" "0" (eval b "(%stat 'captures-multi)")

(* The oracle backend allocates a live Stats.t by default and shares it
   with the session (satellite of the engine unification: all three
   backends report through the same object they count into). *)
let oracle_live_stats () =
  let o = Scheme.create ~backend:Scheme.Oracle () in
  Stats.reset (Scheme.stats o);
  ignore (Scheme.eval o "(%call/cc (lambda (k) (k 1)))");
  let st = Scheme.stats o in
  Alcotest.(check bool) "oracle ticks instrs" true (st.Stats.instrs > 0);
  Alcotest.(check int) "oracle counts captures" 1 st.Stats.captures_multi;
  Alcotest.(check string) "oracle %stat live" "1"
    (eval o "(%stat 'captures-multi)")

(* Both policy instantiations raise the one engine-level fuel exception,
   so a caller can catch either VM's exhaustion through either alias. *)
let fuel_exception_unified () =
  let h = Scheme.create ~backend:Scheme.Heap () in
  (match Scheme.eval ~fuel:100 h "(let loop () (loop))" with
  | _ -> Alcotest.fail "expected fuel exhaustion"
  | exception Vm.Vm_fuel_exhausted -> ());
  let s = Scheme.create () in
  (match Scheme.eval ~fuel:100 s "(let loop () (loop))" with
  | _ -> Alcotest.fail "expected fuel exhaustion"
  | exception Heapvm.Vm_fuel_exhausted -> ());
  let c = Scheme.create ~backend:(Scheme.Closure Control.default_config) () in
  match Scheme.eval ~fuel:100 c "(let loop () (loop))" with
  | _ -> Alcotest.fail "expected fuel exhaustion"
  | exception Closurevm.Vm_fuel_exhausted -> ()

(* The three backends agree on capture-heavy programs when run through
   the unified engine (spot differential; test_diff.ml fuzzes this). *)
let backends_agree () =
  let progs =
    [
      "(%call/1cc (lambda (k) (+ 1 (k 41))))";
      "(+ (%call/cc (lambda (k) (k 2))) 40)";
      "(let ((out '()))\n\
      \  (dynamic-wind\n\
      \    (lambda () (set! out (cons 'in out)))\n\
      \    (lambda () (%call/1cc (lambda (k) (k 1))))\n\
      \    (lambda () (set! out (cons 'out out))))\n\
      \  out)";
    ]
  in
  List.iter
    (fun src ->
      let s = Scheme.create () in
      let c = Scheme.create ~backend:(Scheme.Closure Control.default_config) () in
      let h = Scheme.create ~backend:Scheme.Heap () in
      let o = Scheme.create ~backend:Scheme.Oracle () in
      let vs = eval s src in
      Alcotest.(check string) ("closure: " ^ src) vs (eval c src);
      Alcotest.(check string) ("heap: " ^ src) vs (eval h src);
      Alcotest.(check string) ("oracle: " ^ src) vs (eval o src))
    progs

let pool_src =
  "(let loop ((i 0) (acc 0))\n\
  \  (if (= i 60) acc\n\
  \      (loop (+ i 1) (+ acc (%call/1cc (lambda (k) (k i)))))))"

(* Pool shards are deterministic: every shard computes the same value
   with identical counters, whether spawned on domains or run
   sequentially on the calling domain. *)
let pool_domains_vs_sequential () =
  let par = Scheme.Pool.run ~domains:true ~jobs:3 pool_src in
  let seq = Scheme.Pool.run ~domains:false ~jobs:3 pool_src in
  Alcotest.(check int) "shards" 3 (List.length par);
  List.iter2
    (fun (p : Scheme.Pool.shard) (s : Scheme.Pool.shard) ->
      Alcotest.(check int) "index" s.Scheme.Pool.shard p.Scheme.Pool.shard;
      Alcotest.(check string) "value"
        (Values.write_string s.Scheme.Pool.value)
        (Values.write_string p.Scheme.Pool.value);
      Alcotest.(check string) "output" s.Scheme.Pool.output
        p.Scheme.Pool.output;
      List.iter2
        (fun (name, sv) (_, pv) -> Alcotest.(check int) name sv pv)
        (Stats.to_rows s.Scheme.Pool.stats)
        (Stats.to_rows p.Scheme.Pool.stats))
    par seq

(* Shard counters equal a lone session running the same source: sharding
   adds no hidden work and shares no hidden state. *)
let pool_matches_single_session () =
  let stats = Stats.create () in
  let t = Scheme.create ~stats () in
  Stats.reset stats;
  let v = Scheme.eval t pool_src in
  List.iter
    (fun (sh : Scheme.Pool.shard) ->
      Alcotest.(check string) "value" (Values.write_string v)
        (Values.write_string sh.Scheme.Pool.value);
      List.iter2
        (fun (name, single) (_, sharded) ->
          Alcotest.(check int) name single sharded)
        (Stats.to_rows stats)
        (Stats.to_rows sh.Scheme.Pool.stats))
    (Scheme.Pool.run ~domains:true ~jobs:2 pool_src)

let suite =
  [
    Alcotest.test_case "interleaved stack+heap sessions" `Quick
      interleaved_backends;
    Alcotest.test_case "per-session stats and caches" `Quick independent_stats;
    Alcotest.test_case "oracle keeps live stats" `Quick oracle_live_stats;
    Alcotest.test_case "one fuel exception across policies" `Quick
      fuel_exception_unified;
    Alcotest.test_case "backends agree via unified engine" `Quick
      backends_agree;
    Alcotest.test_case "pool: domains = sequential" `Quick
      pool_domains_vs_sequential;
    Alcotest.test_case "pool: shard = single session" `Quick
      pool_matches_single_session;
  ]
