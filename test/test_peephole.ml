(* Differential tests for the bytecode peephole pass: the same program
   must produce identical results with fusion on and off, on the stack VM
   (default and tiny-segment geometry) and the heap VM -- and the
   inline-cached primitive sites must deoptimize, not misbehave, when a
   fused primitive is redefined with [set!]. *)

let case = Tutil.case
let fuel = Tutil.default_fuel

let eval ?(backend = Scheme.Stack Control.default_config) ?(corpus = false)
    ~peephole src =
  let s = Scheme.create ~backend ~peephole () in
  if corpus then Scheme.load_corpus s;
  Scheme.eval_string ~fuel s src

(* Corpus workloads at test scale: arithmetic-heavy (maximum prim-call
   fusion), continuation-heavy (capture/invoke across fused frames), and
   overflow-heavy (fused code straddling segment boundaries). *)
let corpus_workloads =
  [
    ("tak", "(tak 10 5 2)");
    ("fib", "(fib 13)");
    ("ack", "(ack 2 4)");
    ("queens", "(queens-count 6)");
    ("boyer", "(boyer-run 8)");
    ("takl", "(takl 10 6 3)");
    ("div", "(div-bench 50 20)");
    ("deep", "(deep-loop 2 3000)");
    ("ctak/cc", "(set! ctak-capture %call/cc) (ctak 12 8 4)");
    ("ctak/1cc", "(set! ctak-capture %call/1cc) (ctak 12 8 4)");
    ( "threads",
      "(run-threads (list (lambda () (fib 9)) (lambda () (fib 10))) 16 \
       %call/1cc)" );
  ]

let differential_cases =
  List.concat_map
    (fun (name, src) ->
      [
        case (name ^ ": peephole on/off agree [stack]") (fun () ->
            Alcotest.(check string)
              src
              (eval ~corpus:true ~peephole:false src)
              (eval ~corpus:true ~peephole:true src));
        case (name ^ ": peephole on/off agree [stack/tiny]") (fun () ->
            let backend = Scheme.Stack Tutil.tiny_config in
            Alcotest.(check string)
              src
              (eval ~backend ~corpus:true ~peephole:false src)
              (eval ~backend ~corpus:true ~peephole:true src));
        case (name ^ ": peephole on/off agree [heap]") (fun () ->
            Alcotest.(check string)
              src
              (eval ~backend:Scheme.Heap ~corpus:true ~peephole:false src)
              (eval ~backend:Scheme.Heap ~corpus:true ~peephole:true src));
      ])
    corpus_workloads

(* Redefining a fused primitive must deoptimize the inline cache: the
   site takes the generic call path with the new binding. *)
let deopt_src =
  {|(define (f x y) (+ x y))
    (define r1 (f 1 2))
    (set! + *)
    (define r2 (f 3 4))
    (set! + -)
    (define r3 (f 10 4))
    (list r1 r2 r3)|}

let deopt_cases =
  [
    case "set! of fused primitive deoptimizes [stack]" (fun () ->
        Alcotest.(check string) "results" "(3 12 6)"
          (eval ~peephole:true deopt_src));
    case "set! of fused primitive deoptimizes [heap]" (fun () ->
        Alcotest.(check string) "results" "(3 12 6)"
          (eval ~backend:Scheme.Heap ~peephole:true deopt_src));
    case "deopt counter ticks on cache miss" (fun () ->
        let n =
          eval ~peephole:true
            {|(define (f x y) (+ x y))
              (f 1 2)
              (set! + *)
              (f 3 4)
              (%stat 'prim-deopts)|}
        in
        Alcotest.(check bool) "prim-deopts > 0" true (int_of_string n > 0));
    case "fast-path counter ticks on cache hit" (fun () ->
        let n =
          eval ~peephole:true
            "(define (f x y) (+ x y)) (f 1 2) (%stat 'prim-fast)"
        in
        Alcotest.(check bool) "prim-fast > 0" true (int_of_string n > 0));
    case "no fused sites when peephole is off" (fun () ->
        let n =
          eval ~peephole:false
            "(define (f x y) (+ x y)) (f 1 2) (%stat 'prim-fast)"
        in
        Alcotest.(check string) "prim-fast" "0" n);
    case "redefinition to a closure deoptimizes [stack]" (fun () ->
        (* The deopt path must handle a non-primitive binding too. *)
        Alcotest.(check string) "results" "(3 list)"
          (eval ~peephole:true
             {|(define (f x y) (+ x y))
               (define r1 (f 1 2))
               (set! + (lambda (a b) 'list))
               (list r1 (f 3 4))|}));
    case "deopt in tail position [stack]" (fun () ->
        Alcotest.(check string) "results" "12"
          (eval ~peephole:true
             {|(define (g x y) (+ x y))
               (g 1 2)
               (set! + *)
               (g 3 4)|}));
  ]

(* Accumulator liveness: push fusion must not fire when the value is
   still needed in the accumulator (e.g. a branch testing a [set!]'d
   value, or a [begin] whose last write flows into the test). *)
let liveness_cases =
  [
    case "branch reads acc after assignment" (fun () ->
        Alcotest.(check string) "value" "5"
          (eval ~peephole:true
             "(let ((x 0)) (if (begin (set! x 5) x) x 'no))"));
    case "let-bound constant feeding a branch" (fun () ->
        Alcotest.(check string) "value" "yes"
          (eval ~peephole:true "(let ((x #t)) (if x 'yes 'no))"));
    case "nested lets with shadowing agree" (fun () ->
        let src =
          "(let ((x 1)) (let ((y (+ x 1))) (let ((x (* y 2))) (- x y))))"
        in
        Alcotest.(check string)
          src
          (eval ~peephole:false src)
          (eval ~peephole:true src));
  ]

(* The pass must actually shrink the dispatched-instruction stream (the
   whole point of the PR): fib runs in >=20% fewer instructions. *)
let reduction_cases =
  [
    case "fused fib dispatches >=20% fewer instructions" (fun () ->
        let count peephole =
          int_of_string
            (eval ~corpus:true ~peephole "(fib 13) (%stat 'instrs)")
        in
        let off = count false and on = count true in
        if not (float_of_int on <= 0.8 *. float_of_int off) then
          Alcotest.failf "expected >=20%% drop, got %d -> %d" off on);
    case "disassembly shows fused opcodes" (fun () ->
        let s = Scheme.create () in
        let codes =
          Compiler.compile_string (Scheme.globals s)
            "(define (h n) (+ n 1))"
        in
        let text =
          String.concat "\n" (List.map Bytecode.disassemble_deep codes)
        in
        Alcotest.(check bool) "prim-call present" true
          (Tutil.contains ~sub:"prim-" text));
  ]

let suite =
  differential_cases @ deopt_cases @ liveness_cases @ reduction_cases
