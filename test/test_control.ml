(* Direct unit tests of the control substrate: stack records, walking,
   capture/reinstate mechanics, the segment cache, splitting, overflow
   policies — driven at the OCaml level with hand-built frames. *)

let case = Tutil.case

let dummy_code = Bytecode.make_code ~name:"t" ~arity:(Rt.Exactly 0) ~frame_words:4 [| Rt.Halt |]
let retaddr ~disp = Rt.Retaddr { rcode = dummy_code; rpc = 0; rdisp = disp }

let small_config =
  {
    Control.default_config with
    Control.seg_words = 256;
    copy_bound = 32;
    hysteresis_words = 16;
  }

(* Build a machine with [n] synthetic frames of [fsize] words each pushed
   above the bottom frame. *)
let machine_with_frames ?(config = small_config) ?stats n fsize =
  let m = Control.create ?stats config in
  Control.init_frame m (retaddr ~disp:0);
  for _ = 1 to n do
    let fp = m.Control.fp in
    m.Control.sr.Rt.seg.(fp + fsize) <- retaddr ~disp:fsize;
    m.Control.fp <- fp + fsize
  done;
  m

let suite =
  [
    case "fresh machine has one segment, one frame" (fun () ->
        let m = Control.create small_config in
        Control.init_frame m (retaddr ~disp:0);
        Alcotest.(check int) "fp" 0 m.Control.fp;
        Alcotest.(check int) "depth" 0 (Control.chain_depth m);
        Alcotest.(check int) "live words" 256 (Control.segment_words_live m));
    case "walk_frames recovers frame chain" (fun () ->
        let m = machine_with_frames 5 8 in
        let frames =
          Control.walk_frames m.Control.sr.Rt.seg ~base:0 ~top:m.Control.fp
        in
        Alcotest.(check (list int)) "frames" [ 40; 32; 24; 16; 8; 0 ] frames);
    case "room and seg_limit" (fun () ->
        let m = machine_with_frames 5 8 in
        Alcotest.(check bool) "has room" true (Control.room m 100);
        Alcotest.(check bool) "not unlimited" false (Control.room m 1000));
    case "capture_multi seals without copying" (fun () ->
        let stats = Stats.create () in
        let m = machine_with_frames ~stats 5 8 in
        let k = Control.capture_multi m in
        Alcotest.(check int) "sealed size" 40 k.Rt.size;
        Alcotest.(check int) "current = size" k.Rt.size k.Rt.current;
        Alcotest.(check bool) "multi" true (Control.is_multi k);
        Alcotest.(check int) "no copy" 0 stats.Stats.words_copied;
        (* the active record re-based at the old frame pointer *)
        Alcotest.(check int) "rebased" 40 m.Control.sr.Rt.base;
        Alcotest.(check int) "chain depth" 1 (Control.chain_depth m);
        (* displaced return slot *)
        Alcotest.(check bool) "underflow mark" true
          (m.Control.sr.Rt.seg.(m.Control.fp) = Rt.Underflow_mark));
    case "capture_oneshot encapsulates whole segment" (fun () ->
        let stats = Stats.create () in
        let m = machine_with_frames ~stats 5 8 in
        let old_seg = m.Control.sr.Rt.seg in
        let k = Control.capture_oneshot m in
        Alcotest.(check bool) "one-shot" false (Control.is_multi k);
        Alcotest.(check int) "whole segment" 256 k.Rt.size;
        Alcotest.(check int) "occupied" 40 k.Rt.current;
        Alcotest.(check bool) "fresh segment" true
          (m.Control.sr.Rt.seg != old_seg);
        Alcotest.(check int) "fp reset" 0 m.Control.fp);
    case "reinstate one-shot adopts the segment and marks shot" (fun () ->
        let stats = Stats.create () in
        let m = machine_with_frames ~stats 5 8 in
        let old_seg = m.Control.sr.Rt.seg in
        let k = Control.capture_oneshot m in
        let fresh_seg = m.Control.sr.Rt.seg in
        let r = Control.reinstate m k in
        Alcotest.(check int) "resume disp" 8 r.Rt.rdisp;
        Alcotest.(check bool) "adopted" true (m.Control.sr.Rt.seg == old_seg);
        Alcotest.(check int) "fp at caller frame" 32 m.Control.fp;
        Alcotest.(check int) "no copying" 0 stats.Stats.words_copied;
        Alcotest.(check bool) "shot" true (Control.is_shot k);
        (* the abandoned fresh segment went back to the cache *)
        Alcotest.(check bool) "recycled" true
          (Array.exists
             (List.exists (fun s -> s == fresh_seg))
             m.Control.cache);
        (* the shot record is fully detached: it pins neither its adopted
           segment nor the chain below it *)
        Alcotest.(check int) "segment dropped" 0 (Array.length k.Rt.seg);
        Alcotest.(check bool) "chain dropped" true (k.Rt.link = None));
    case "reinstating a shot record raises" (fun () ->
        let m = machine_with_frames 5 8 in
        let k = Control.capture_oneshot m in
        ignore (Control.reinstate m k);
        Alcotest.check_raises "shot" Rt.Shot_continuation (fun () ->
            ignore (Control.reinstate m k)));
    case "reinstate multi (copy path) copies the saved words" (fun () ->
        let stats = Stats.create () in
        let m = machine_with_frames ~stats 3 8 in
        let k = Control.capture_multi m in
        ignore (Control.reinstate ~unseal:false m k);
        Alcotest.(check int) "copied" 24 stats.Stats.words_copied;
        Alcotest.(check bool) "still invocable" true
          (not (Control.is_shot k));
        ignore (Control.reinstate ~unseal:false m k);
        Alcotest.(check int) "copied again" 48 stats.Stats.words_copied);
    case "reinstate multi splits beyond the copy bound" (fun () ->
        let stats = Stats.create () in
        let m = machine_with_frames ~stats 10 8 in
        (* 80 words sealed, copy bound 32 *)
        let k = Control.capture_multi m in
        ignore (Control.reinstate ~unseal:false m k);
        Alcotest.(check bool) "split happened" true (stats.Stats.splits > 0);
        Alcotest.(check bool) "bounded copy" true
          (stats.Stats.words_copied <= 32));
    case "split preserves total content" (fun () ->
        let stats = Stats.create () in
        let m = machine_with_frames ~stats 10 8 in
        let k = Control.capture_multi m in
        ignore (Control.reinstate ~unseal:false m k);
        (* the copied portion plus the content still sealed in the split
           remainder must cover the original 80 words *)
        let sealed = List.tl (Control.live_chain m.Control.sr) in
        let sealed_words =
          List.fold_left (fun a r -> a + r.Rt.current) 0 sealed
        in
        Alcotest.(check int) "copied + sealed" 80
          (stats.Stats.words_copied + sealed_words));
    case "promotion turns one-shot into multi" (fun () ->
        let config = { small_config with Control.promotion = Control.Eager } in
        let m = machine_with_frames ~config 3 8 in
        let k1 = Control.capture_oneshot m in
        Alcotest.(check bool) "one-shot" false (Control.is_multi k1);
        (* push a frame on the fresh segment, then capture multi above *)
        let fp = m.Control.fp in
        m.Control.sr.Rt.seg.(fp + 6) <- retaddr ~disp:6;
        m.Control.fp <- fp + 6;
        let k2 = Control.capture_multi m in
        Alcotest.(check bool) "k2 multi" true (Control.is_multi k2);
        Alcotest.(check bool) "k1 promoted" true (Control.is_multi k1);
        (* promoted: size clamped to occupied under eager promotion *)
        Alcotest.(check int) "forfeited free space" k1.Rt.current k1.Rt.size);
    case "shared-flag promotion promotes the whole group at once" (fun () ->
        let config = { small_config with Control.promotion = Control.Shared_flag } in
        let stats = Stats.create () in
        let m = machine_with_frames ~config ~stats 3 8 in
        let k1 = Control.capture_oneshot m in
        let fp = m.Control.fp in
        m.Control.sr.Rt.seg.(fp + 6) <- retaddr ~disp:6;
        m.Control.fp <- fp + 6;
        let k2 = Control.capture_oneshot m in
        (* k1 and k2 share the flag *)
        Alcotest.(check bool) "shared ref" true (k1.Rt.promoted == k2.Rt.promoted);
        let fp = m.Control.fp in
        m.Control.sr.Rt.seg.(fp + 6) <- retaddr ~disp:6;
        m.Control.fp <- fp + 6;
        ignore (Control.capture_multi m);
        Alcotest.(check bool) "k1 promoted" true (Control.is_multi k1);
        Alcotest.(check bool) "k2 promoted" true (Control.is_multi k2);
        (* one store promoted the group *)
        Alcotest.(check int) "single promotion event" 1 stats.Stats.promotions);
    case "seal displacement keeps the same segment" (fun () ->
        let config =
          { small_config with Control.oneshot_seal = Control.Seal_displacement 16 }
        in
        let m = machine_with_frames ~config 3 8 in
        let old_seg = m.Control.sr.Rt.seg in
        let k = Control.capture_oneshot m in
        Alcotest.(check bool) "same array" true (m.Control.sr.Rt.seg == old_seg);
        Alcotest.(check int) "sealed occupied+headroom" (24 + 16) k.Rt.size;
        Alcotest.(check int) "occupied" 24 k.Rt.current;
        Alcotest.(check bool) "one-shot" false (Control.is_multi k);
        (* live words bounded: seal displacement caps fragmentation *)
        Alcotest.(check int) "live" 256 (Control.segment_words_live m));
    case "ensure_room triggers one-shot overflow with hysteresis" (fun () ->
        let stats = Stats.create () in
        let m = machine_with_frames ~stats 20 8 in
        (* 160/256 used; demand far more than remains *)
        Control.ensure_room m ~live_top:(m.Control.fp + 4) ~need:200;
        Alcotest.(check int) "overflow" 1 stats.Stats.overflows;
        Alcotest.(check int) "oneshot capture" 1 stats.Stats.captures_oneshot;
        Alcotest.(check bool) "hysteresis copied some frames" true
          (stats.Stats.words_copied >= 16);
        Alcotest.(check bool) "room now" true (Control.room m 200);
        (* the record chain grew *)
        Alcotest.(check int) "depth" 1 (Control.chain_depth m));
    case "ensure_room under call/cc policy seals a multi record" (fun () ->
        let config =
          { small_config with Control.overflow_policy = Control.As_callcc }
        in
        let stats = Stats.create () in
        let m = machine_with_frames ~config ~stats 20 8 in
        Control.ensure_room m ~live_top:(m.Control.fp + 4) ~need:200;
        Alcotest.(check int) "multi capture" 1 stats.Stats.captures_multi;
        let chain = Control.live_chain m.Control.sr in
        (match chain with
        | _active :: sealed :: _ ->
            Alcotest.(check bool) "sealed is multi" true (Control.is_multi sealed)
        | _ -> Alcotest.fail "expected a sealed record");
        Alcotest.(check bool) "room now" true (Control.room m 200));
    case "underflow consumes the overflow record and returns" (fun () ->
        let stats = Stats.create () in
        let m = machine_with_frames ~stats 20 8 in
        Control.ensure_room m ~live_top:(m.Control.fp + 4) ~need:200;
        (* walk fp back to the new segment's bottom, then underflow *)
        m.Control.fp <- m.Control.sr.Rt.base;
        (match Control.underflow m with
        | Some r -> Alcotest.(check int) "resume disp" 8 r.Rt.rdisp
        | None -> Alcotest.fail "expected a resume point");
        Alcotest.(check int) "underflows" 1 stats.Stats.underflows);
    case "underflow off the bottom reports halt" (fun () ->
        let m = Control.create small_config in
        Control.init_frame m (retaddr ~disp:0);
        Alcotest.(check bool) "halt" true (Control.underflow m = None));
    case "segment cache caps retained segments" (fun () ->
        let config = { small_config with Control.cache_max = 2 } in
        let m = Control.create config in
        Control.init_frame m (retaddr ~disp:0);
        (* capture/reinstate repeatedly: each reinstate releases the fresh
           segment; the cache must not exceed its bound *)
        for _ = 1 to 5 do
          let fp = m.Control.fp in
          m.Control.sr.Rt.seg.(fp + 8) <- retaddr ~disp:8;
          m.Control.fp <- fp + 8;
          let k = Control.capture_oneshot m in
          ignore (Control.reinstate m k)
        done;
        Alcotest.(check bool) "bounded" true (m.Control.cache_len <= 2));
    case "cache disabled allocates every time" (fun () ->
        let config = { small_config with Control.cache_enabled = false } in
        let stats = Stats.create () in
        let m = Control.create ~stats config in
        Control.init_frame m (retaddr ~disp:0);
        let before = stats.Stats.seg_allocs in
        for _ = 1 to 4 do
          let fp = m.Control.fp in
          m.Control.sr.Rt.seg.(fp + 8) <- retaddr ~disp:8;
          m.Control.fp <- fp + 8;
          let k = Control.capture_oneshot m in
          ignore (Control.reinstate m k)
        done;
        Alcotest.(check int) "four fresh allocations" 4
          (stats.Stats.seg_allocs - before);
        Alcotest.(check int) "no hits" 0 stats.Stats.cache_hits);
    case "clear_cache empties the cache" (fun () ->
        let m = machine_with_frames 3 8 in
        let k = Control.capture_oneshot m in
        ignore (Control.reinstate m k);
        Alcotest.(check bool) "cached" true (m.Control.cache_len > 0);
        Control.clear_cache m;
        Alcotest.(check int) "empty" 0 m.Control.cache_len);
    case "multi-shot record invariants hold along a chain" (fun () ->
        let m = machine_with_frames 4 8 in
        let _k1 = Control.capture_multi m in
        let fp = m.Control.fp in
        m.Control.sr.Rt.seg.(fp + 6) <- retaddr ~disp:6;
        m.Control.fp <- fp + 6;
        let _k2 = Control.capture_multi m in
        List.iter
          (fun r ->
            if not (Control.is_shot r) then
              Alcotest.(check bool) "current <= size" true
                (r.Rt.current <= r.Rt.size || r == m.Control.sr))
          (Control.live_chain m.Control.sr));
    (* ---- oversized-segment recycling (seg_words = 256 here) ---- *)
    case "oversized requests round up to a segment multiple" (fun () ->
        let m = Control.create small_config in
        Alcotest.(check int) "small" 256 (Control.seg_request m 10);
        Alcotest.(check int) "exact" 256 (Control.seg_request m 256);
        Alcotest.(check int) "rounded" 512 (Control.seg_request m 300);
        Alcotest.(check int) "boundary" 512 (Control.seg_request m 512);
        Alcotest.(check int) "next" 768 (Control.seg_request m 513));
    case "oversized segments recycle through the cache" (fun () ->
        let stats = Stats.create () in
        let m = Control.create ~stats small_config in
        let seg = Control.alloc_segment m 300 in
        Alcotest.(check int) "rounded length" 512 (Array.length seg);
        Control.release_segment m seg;
        Alcotest.(check bool) "accepted" true (stats.Stats.cache_releases > 0);
        let allocs = stats.Stats.seg_allocs in
        let words = stats.Stats.seg_alloc_words in
        let hits = stats.Stats.cache_hits in
        let seg' = Control.alloc_segment m 257 in
        Alcotest.(check bool) "same array" true (seg' == seg);
        Alcotest.(check int) "cache hit" (hits + 1) stats.Stats.cache_hits;
        Alcotest.(check int) "no fresh alloc" allocs stats.Stats.seg_allocs;
        Alcotest.(check int) "no fresh words" words
          stats.Stats.seg_alloc_words);
    case "a larger size class serves an exact-class miss" (fun () ->
        let m = Control.create small_config in
        let big = Control.alloc_segment m 600 in
        let small = Control.alloc_segment m 10 in
        Control.release_segment m big;
        Control.release_segment m small;
        (* classes: [small] in class 0 (256 words), [big] in class 2 (768);
           a 500-word request (class 1, empty) must scan upward and take
           the 768-word array, leaving the 256-word one alone. *)
        let got = Control.alloc_segment m 500 in
        Alcotest.(check bool) "took the big one" true (got == big);
        let got' = Control.alloc_segment m 1 in
        Alcotest.(check bool) "small one still cached" true (got' == small));
    (* ---- size-classed cache behavior ---- *)
    case "class-exact reuse pops O(1) and is counted" (fun () ->
        let stats = Stats.create () in
        let m = Control.create ~stats small_config in
        let seg = Control.alloc_segment m 256 in
        Control.release_segment m seg;
        let hits = stats.Stats.cache_class_hits in
        let got = Control.alloc_segment m 256 in
        Alcotest.(check bool) "same array" true (got == seg);
        Alcotest.(check int) "class hit" (hits + 1) stats.Stats.cache_class_hits);
    case "exact-class miss is counted even when a larger class serves"
      (fun () ->
        let stats = Stats.create () in
        let m = Control.create ~stats small_config in
        let big = Control.alloc_segment m 600 in
        Control.release_segment m big;
        let misses = stats.Stats.cache_class_misses in
        let hits = stats.Stats.cache_hits in
        let got = Control.alloc_segment m 300 (* class 1: empty *) in
        Alcotest.(check bool) "served by class 2" true (got == big);
        Alcotest.(check int) "class miss" (misses + 1)
          stats.Stats.cache_class_misses;
        Alcotest.(check int) "still a cache hit" (hits + 1)
          stats.Stats.cache_hits);
    case "cache_max is enforced across classes" (fun () ->
        let config = { small_config with Control.cache_max = 2 } in
        let m = Control.create config in
        let a = Control.alloc_segment m 256 in
        let b = Control.alloc_segment m 512 in
        let c = Control.alloc_segment m 768 in
        (* the machine's own initial segment is already cached or not;
           normalize by clearing first *)
        Control.clear_cache m;
        Control.release_segment m a;
        Control.release_segment m b;
        Control.release_segment m c;
        Alcotest.(check int) "bounded" 2 m.Control.cache_len);
    case "cache_words_hw tracks the parked-words high-water" (fun () ->
        let stats = Stats.create () in
        let m = Control.create ~stats small_config in
        Control.clear_cache m;
        let hw0 = stats.Stats.cache_words_hw in
        let a = Control.alloc_segment m 256 in
        let b = Control.alloc_segment m 512 in
        Control.release_segment m a;
        Control.release_segment m b;
        Alcotest.(check bool) "high-water grew" true
          (stats.Stats.cache_words_hw >= hw0 + 256 + 512);
        let hw = stats.Stats.cache_words_hw in
        ignore (Control.alloc_segment m 256);
        Alcotest.(check int) "popping does not lower the mark" hw
          stats.Stats.cache_words_hw);
    case "the mixed top bucket is searched first-fit" (fun () ->
        (* both arrays land in the last class (>= 8 * seg_words) *)
        let m = Control.create small_config in
        let huge = Control.alloc_segment m (16 * 256) in
        let big = Control.alloc_segment m (9 * 256) in
        Control.release_segment m huge;
        Control.release_segment m big;
        (* bucket order: [big; huge]; a 12-segment request must skip the
           9-segment head and take the 16-segment array behind it *)
        let got = Control.alloc_segment m (12 * 256) in
        Alcotest.(check bool) "took the huge one" true (got == huge);
        let got' = Control.alloc_segment m (9 * 256) in
        Alcotest.(check bool) "big one still cached" true (got' == big));
    (* ---- unseal fast path ---- *)
    case "invoking the adjacent seal reopens it in place" (fun () ->
        let stats = Stats.create () in
        let m = machine_with_frames ~stats 3 8 in
        let seg = m.Control.sr.Rt.seg in
        let k = Control.capture_multi m in
        ignore (Control.reinstate m k);
        Alcotest.(check int) "unsealed" 1 stats.Stats.unseals;
        (* only the top frame moved (copied aside for re-invocation) *)
        Alcotest.(check int) "one frame copied" 8 stats.Stats.words_copied;
        Alcotest.(check bool) "same segment" true
          (m.Control.sr.Rt.seg == seg);
        (* resumed exactly where the sealed top frame lives *)
        Alcotest.(check int) "fp at top frame" 16 m.Control.fp;
        Alcotest.(check int) "base reopened" 16 m.Control.sr.Rt.base;
        (* the rest of the content stays sealed below, zero copy *)
        (match m.Control.sr.Rt.link with
        | Some krest ->
            Alcotest.(check bool) "rest still in segment" true
              (krest.Rt.seg == seg);
            Alcotest.(check int) "rest sealed" 16 krest.Rt.current
        | None -> Alcotest.fail "expected a sealed remainder"));
    case "re-invoking an unsealed record rebuilds the same state" (fun () ->
        let stats = Stats.create () in
        let m = machine_with_frames ~stats 3 8 in
        let k = Control.capture_multi m in
        let r1 = Control.reinstate m k in
        let fp1 = m.Control.fp in
        let saved = m.Control.sr.Rt.seg.(m.Control.fp + 1) in
        (* the resumed code damages the reopened top frame *)
        m.Control.sr.Rt.seg.(m.Control.fp + 1) <- Rt.Int 999;
        Alcotest.(check bool) "still invocable" true
          (not (Control.is_shot k) && Control.is_multi k);
        let r2 = Control.reinstate m k in
        Alcotest.(check bool) "same resume point" true (r1 == r2);
        Alcotest.(check int) "same frame position" fp1 m.Control.fp;
        Alcotest.(check bool) "frame content restored" true
          (m.Control.sr.Rt.seg.(m.Control.fp + 1) = saved);
        Alcotest.(check int) "only one unseal" 1 stats.Stats.unseals);
    case "underflow never takes the unseal path" (fun () ->
        let stats = Stats.create () in
        let m = machine_with_frames ~stats 3 8 in
        ignore (Control.capture_multi m);
        (* return through the seal: fp is already at the empty base *)
        (match Control.underflow m with
        | Some r -> Alcotest.(check int) "resume disp" 8 r.Rt.rdisp
        | None -> Alcotest.fail "expected a resume point");
        Alcotest.(check int) "no unseal" 0 stats.Stats.unseals;
        Alcotest.(check int) "bulk copy" 24 stats.Stats.words_copied);
    (* ---- backtrace across a shot record ---- *)
    case "backtrace marks a shot record instead of truncating" (fun () ->
        let config =
          { small_config with Control.oneshot_seal = Control.Seal_displacement 16 }
        in
        let m = machine_with_frames ~config 3 8 in
        let k1 = Control.capture_oneshot m in
        (* push two frames above the sealed slice, then seal them too *)
        for _ = 1 to 2 do
          let fp = m.Control.fp in
          m.Control.sr.Rt.seg.(fp + 8) <- retaddr ~disp:8;
          m.Control.fp <- fp + 8
        done;
        let k2 = Control.capture_oneshot m in
        (* shoot k1 (escaping below k2), then re-enter k2: its chain now
           crosses the consumed k1 *)
        ignore (Control.reinstate m k1);
        ignore (Control.reinstate m k2);
        let names = Control.backtrace m in
        Alcotest.(check (list string)) "sentinel frame" [ "t"; "<shot>" ]
          names);
    (* ---- debug identity table ---- *)
    case "debug identities are per-machine config, not process state" (fun () ->
        (* The toggle is a config field: a quiet machine never touches its
           identity table, regardless of what other machines trace (the
           old module-global ref leaked the toggle and the table across
           sessions). *)
        let m0 =
          Control.create { small_config with Control.debug = false }
        in
        Alcotest.(check int) "off: no id" 0 (Control.id_of m0 m0.Control.sr);
        Alcotest.(check bool) "off: no table" true (m0.Control.dbg_ids = []);
        let m1 = Control.create { small_config with Control.debug = true } in
        Alcotest.(check int) "first id" 1 (Control.id_of m1 m1.Control.sr);
        Alcotest.(check int) "stable id" 1 (Control.id_of m1 m1.Control.sr);
        Alcotest.(check int) "one entry" 1 (List.length m1.Control.dbg_ids);
        (* a second traced machine starts fresh and does not disturb the
           first machine's table *)
        let m2 = Control.create { small_config with Control.debug = true } in
        Alcotest.(check bool) "fresh table" true (m2.Control.dbg_ids = []);
        Alcotest.(check int) "ids restart" 1 (Control.id_of m2 m2.Control.sr);
        Alcotest.(check int) "m1 undisturbed" 1
          (List.length m1.Control.dbg_ids);
        (* and the traced machines never flipped the quiet one on *)
        Alcotest.(check int) "m0 still off" 0
          (Control.id_of m0 m0.Control.sr));
    case "oversized overflow segments are reused across runs" (fun () ->
        (* A frame larger than a whole segment forces an oversized
           overflow allocation; with rounding + first-fit the second run
           must be served entirely from the cache. *)
        let bindings =
          String.concat " "
            (List.init 150 (fun i -> Printf.sprintf "(x%d %d)" i i))
        in
        let args =
          String.concat " " (List.init 150 (fun i -> Printf.sprintf "x%d" i))
        in
        let define =
          Printf.sprintf "(define (bigframe) (let* (%s) (+ %s)))" bindings args
        in
        let config =
          { Control.default_config with seg_words = 128; hysteresis_words = 24 }
        in
        let stats = Stats.create () in
        let s = Scheme.create ~backend:(Scheme.Stack config) ~stats () in
        ignore (Scheme.eval ~fuel:Tutil.default_fuel s define);
        ignore (Scheme.eval ~fuel:Tutil.default_fuel s "(bigframe)");
        Stats.reset stats;
        ignore (Scheme.eval ~fuel:Tutil.default_fuel s "(bigframe)");
        Alcotest.(check int) "no fresh segments" 0 stats.Stats.seg_allocs;
        Alcotest.(check bool) "served from cache" true
          (stats.Stats.cache_hits > 0));
  ]
