let () =
  Alcotest.run "oneshot"
    [
      ("sexp", Test_sexp.suite);
      ("expander", Test_expander.suite);
      ("compiler", Test_compiler.suite);
      ("control", Test_control.suite);
      ("language", Test_lang.suite);
      ("continuations", Test_conts.suite);
      ("threads-engines", Test_threads.suite);
      ("heap-vm", Test_heap.suite);
      ("features", Test_features.suite);
      ("cml", Test_cml.suite);
      ("macros", Test_macros.suite);
      ("hygiene", Test_hygiene.suite);
      ("diag", Test_diag.suite);
      ("peephole", Test_peephole.suite);
      ("regalloc", Test_regalloc.suite);
      ("perf-counters", Test_perf_counters.suite);
      ("engine", Test_engine.suite);
      ("differential", Test_diff.suite);
      ("par", Test_par.suite);
      ("verify", Test_verify.suite);
      ("lint", Test_lint.suite);
      ("fuzz", Test_fuzz.suite);
      ("disasm", Test_disasm.suite);
    ]
