(* Static bytecode verifier: corpus-wide acceptance (every code object
   from the shipped corpora, under all four optimizer-stage combinations
   and through every bytecode backend's session) and targeted rejection
   of hand-built malformed / contract-violating instruction streams.

   The malformed streams are constructed as raw [Rt.code] records,
   bypassing [Bytecode.make_code]: the whole point is to present the
   verifier with streams the constructors would never produce. *)

let case = Tutil.case

(* ------------------------------------------------------------------ *)
(* Acceptance: the full corpus, all stage combos, all backends.        *)
(* ------------------------------------------------------------------ *)

let globals_with_prims () =
  let g = Globals.create () in
  Prims.install g;
  g

let corpus_sources =
  [
    ("prelude", Prelude.source);
    ("prelude-scheme-winders", Prelude.source_scheme_winders);
    ("parprelude", Parprelude.source);
    ("programs", Programs.all_defs);
    ("threads", Threads.scheduler);
    ("cml", Cml.source);
  ]

let stage_combos =
  [
    ("peephole+regalloc", true, true);
    ("peephole", true, false);
    ("unfused", false, true);
    ("baseline", false, false);
  ]

let accept_corpus_cases =
  List.map
    (fun (cl, peephole, regalloc) ->
      case ("corpus verifies: " ^ cl) (fun () ->
          let g = globals_with_prims () in
          List.iter
            (fun (sl, src) ->
              let codes =
                Compiler.compile_string ~peephole ~regalloc g src
              in
              match Verify.verify_program codes with
              | () -> ()
              | exception Verify.Error m ->
                  Alcotest.failf "%s/%s rejected: %s" sl cl m)
            corpus_sources))
    stage_combos

(* Sessions with [~verify:true] verify everything they compile --
   prelude, parprelude, corpus, and the program -- on each backend. *)
let accept_session_cases =
  List.concat_map
    (fun (bl, backend) ->
      List.map
        (fun (cl, peephole, regalloc) ->
          case (Printf.sprintf "session verifies [%s, %s]" bl cl) (fun () ->
              let s =
                Scheme.create ~backend ~corpus:true ~peephole ~regalloc
                  ~verify:true ()
              in
              let v =
                Scheme.eval ~fuel:Tutil.default_fuel s
                  "(begin (fib 10) (tak 12 6 3))"
              in
              Alcotest.(check string) "runs" "4" (Values.write_string v)))
        stage_combos)
    [
      ("stack", Scheme.Stack Control.default_config);
      ("closure", Scheme.Closure Control.default_config);
      ("heap", Scheme.Heap);
    ]

(* The runtime-internal return-entered trampolines are shared by every
   machine; they must verify under the every-pc-is-an-entry regime. *)
let shared_code_cases =
  [
    case "halt code verifies" (fun () -> Verify.verify Engine.halt_code);
    case "dynamic-wind resume code verifies" (fun () ->
        Verify.verify Prims.dw_resume_code);
    case "winder resume code verifies" (fun () ->
        Verify.verify Prims.wind_resume_code);
  ]

(* ------------------------------------------------------------------ *)
(* Rejection: hand-built malformed streams.                            *)
(* ------------------------------------------------------------------ *)

(* Raw code record, no validation; [backpatch] interns correct return
   addresses so tests target exactly one violation at a time. *)
let raw ?(name = "bad") ?(arity = Rt.Exactly 0) ?(backpatch = true) ~fw instrs
    =
  let c =
    {
      Rt.instrs;
      cname = name;
      arity;
      frame_words = fw;
      timer_ret = Rt.Void;
      templ = Rt.No_template;
      cline = 0;
      ccol = 0;
    }
  in
  if backpatch then Bytecode.backpatch c;
  c

let prim_site =
  let g = globals_with_prims () in
  fun ?(name = "car") ?(disp = 2) ?(nargs = 1) () ->
    let slot = Globals.slot name in
    let cell = Globals.get g slot in
    let prim =
      match cell.Rt.gval with Rt.Prim p -> p | _ -> assert false
    in
    let fn = match prim.Rt.pfn with Rt.Pure f -> f | _ -> assert false in
    {
      Rt.ps_disp = disp;
      ps_nargs = nargs;
      ps_slot = slot;
      ps_guard = cell.Rt.gval;
      ps_prim = prim;
      ps_fn = fn;
      ps_ret = Rt.Void;
    }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let rejects label ~needle code =
  case label (fun () ->
      match Verify.verify code with
      | () -> Alcotest.failf "verifier accepted %s" label
      | exception Verify.Error m ->
          if not (contains m needle) then
            Alcotest.failf "diagnostic %S does not mention %S" m needle)

let reject_cases =
  [
    (* 1. control can fall off the end *)
    rejects "rejects: no final transfer" ~needle:"does not transfer control"
      (raw ~fw:3 [| Rt.Enter; Rt.Const (Rt.Int 1) |]);
    (* 2. accumulator read while dead *)
    rejects "rejects: return with dead accumulator"
      ~needle:"accumulator is dead"
      (raw ~fw:3 [| Rt.Enter; Rt.Return |]);
    (* 3. read of a never-initialized frame slot *)
    rejects "rejects: uninitialized slot read" ~needle:"uninitialized"
      (raw ~fw:5 [| Rt.Enter; Rt.Local_ref 3; Rt.Return |]);
    (* 4. slot write outside the declared frame extent *)
    rejects "rejects: slot outside frame" ~needle:"outside frame"
      (raw ~fw:3
         [| Rt.Enter; Rt.Const (Rt.Int 1); Rt.Local_set 9; Rt.Return |]);
    (* 5. branch target out of range *)
    rejects "rejects: branch target out of range" ~needle:"out of range"
      (raw ~fw:3 [| Rt.Enter; Rt.Const (Rt.Bool false); Rt.Branch 99 |]);
    (* 6. branch target re-entering the Enter prologue *)
    rejects "rejects: branch into Enter prologue" ~needle:"Enter prologue"
      (raw ~fw:3 [| Rt.Enter; Rt.Const (Rt.Bool true); Rt.Branch 0 |]);
    (* 7. non-tail call site whose return address was never interned *)
    rejects "rejects: call without interned return address"
      ~needle:"not interned"
      (raw ~backpatch:false ~fw:8
         [|
           Rt.Enter;
           Rt.Const (Rt.Int 1);
           Rt.Local_set 3;
           Rt.Const (Rt.Int 2);
           Rt.Local_set 4;
           Rt.Call { Rt.cs_disp = 2; cs_nargs = 1; cs_ret = Rt.Void };
           Rt.Return;
         |]);
    (* 8. return address interned for the wrong resume pc (stale after a
       renumbering pass that forgot to re-backpatch) *)
    rejects "rejects: stale return address" ~needle:"resumes at pc"
      (let site = { Rt.cs_disp = 2; cs_nargs = 1; cs_ret = Rt.Void } in
       let c =
         raw ~fw:8
           [|
             Rt.Enter;
             Rt.Const (Rt.Int 1);
             Rt.Local_set 3;
             Rt.Const (Rt.Int 2);
             Rt.Local_set 4;
             Rt.Call site;
             Rt.Return;
           |]
       in
       site.Rt.cs_ret <-
         Rt.Retaddr { Rt.rcode = c; rpc = 3; rdisp = 2 };
       c);
    (* 9. branch-fused site whose landing pad is not the retained
       Branch_false *)
    rejects "rejects: unfaithful branch landing pad"
      ~needle:"not the retained"
      (let s = prim_site ~name:"null?" () in
       raw ~fw:6
         [|
           Rt.Enter;
           Rt.Const Rt.Nil;
           Rt.Local_set 3;
           Rt.Prim_branch1 (s, 6);
           Rt.Const (Rt.Int 1);
           Rt.Return;
           Rt.Const (Rt.Int 2);
           Rt.Return;
         |]);
    (* 10. operand form whose retained consumer is a different (if
       structurally equal) prim site record *)
    rejects "rejects: landing pad not sharing the prim site"
      ~needle:"does not share"
      (let s1 = prim_site () and s2 = prim_site () in
       raw ~fw:6
         [|
           Rt.Enter;
           Rt.Const Rt.Nil;
           Rt.Local_set 3;
           Rt.Prim_call1_op (s1, Rt.Op_local 3);
           Rt.Prim_call1 s2;
           Rt.Return;
         |]);
    (* 11. operand form whose retained push restages a different value *)
    rejects "rejects: landing pad restaging the wrong operand"
      ~needle:"does not restage"
      (let s = prim_site ~name:"+" ~nargs:2 () in
       raw ~fw:8
         [|
           Rt.Enter;
           Rt.Const_push (Rt.Int 1, 4);
           Rt.Prim_call2_op (s, Rt.Op_const (Rt.Int 1), Rt.Op_const (Rt.Int 2));
           Rt.Const_push (Rt.Int 99, 5);
           Rt.Prim_call2 s;
           Rt.Return;
         |]);
    (* 12. join-point inconsistency: a slot initialized on only one arm
       of a conditional is read after the join *)
    rejects "rejects: join-inconsistent slot initialization"
      ~needle:"uninitialized on some path"
      (raw ~fw:5
         [|
           Rt.Enter;
           Rt.Const (Rt.Bool true);
           Rt.Branch_false 5;
           Rt.Const (Rt.Int 1);
           Rt.Local_set 3;
           (* join: slot 3 is set only on the fall-through arm *)
           Rt.Local_ref 3;
           Rt.Return;
         |]);
    (* 13. Enter outside the prologue *)
    rejects "rejects: Enter in mid-stream" ~needle:"Enter outside"
      (raw ~fw:3 [| Rt.Enter; Rt.Const (Rt.Int 1); Rt.Enter; Rt.Return |]);
    (* 14. prim site nargs disagreeing with the fixed-arity instruction *)
    rejects "rejects: prim site nargs mismatch" ~needle:"nargs"
      (let s = prim_site ~nargs:2 () in
       raw ~fw:6
         [|
           Rt.Enter;
           Rt.Const Rt.Nil;
           Rt.Local_set 3;
           Rt.Prim_call1 s;
           Rt.Return;
         |]);
    (* 15. closure capture index outside the enclosing frame *)
    rejects "rejects: capture index outside frame" ~needle:"captured"
      (let child =
         raw ~name:"child" ~arity:(Rt.Exactly 0) ~fw:3
           [| Rt.Enter; Rt.Const (Rt.Int 1); Rt.Return |]
       in
       raw ~fw:3
         [| Rt.Enter; Rt.Make_closure (child, [| Rt.Cap_local 7 |]); Rt.Return |]);
    (* 16. child code object of a closure is verified too *)
    rejects "rejects: malformed nested closure body" ~needle:"child"
      (let child =
         raw ~name:"child" ~arity:(Rt.Exactly 0) ~fw:3
           [| Rt.Enter; Rt.Return |]
       in
       raw ~fw:4
         [| Rt.Enter; Rt.Make_closure (child, [||]); Rt.Return |]);
  ]

(* ------------------------------------------------------------------ *)
(* Tightened Bytecode.validate (construction-time checks).             *)
(* ------------------------------------------------------------------ *)

let validate_rejects label ~needle ~fw instrs =
  case label (fun () ->
      match Bytecode.validate ~name:"v" ~frame_words:fw instrs with
      | () -> Alcotest.failf "validate accepted %s" label
      | exception Invalid_argument m ->
          if not (contains m needle) then
            Alcotest.failf "message %S does not mention %S" m needle)

let validate_cases =
  [
    validate_rejects "validate: empty stream" ~needle:"empty" ~fw:3 [||];
    validate_rejects "validate: falls off the end"
      ~needle:"fall off the end" ~fw:3 [| Rt.Const (Rt.Int 1) |];
    validate_rejects "validate: branch target out of range"
      ~needle:"out of range" ~fw:3 [| Rt.Branch 7; Rt.Return |];
    validate_rejects "validate: operand index past frame-words"
      ~needle:"operand index 9 out of frame (frame-words=4)" ~fw:4
      [| Rt.Return_op (Rt.Op_local 9); Rt.Return |];
    validate_rejects "validate: branch into a fused landing pad"
      ~needle:"lands inside a fused landing pad" ~fw:8
      (let s = prim_site ~name:"+" ~nargs:2 () in
       [|
         Rt.Branch 2;
         Rt.Prim_call2_op (s, Rt.Op_const (Rt.Int 1), Rt.Op_const (Rt.Int 2));
         Rt.Const_push (Rt.Int 2, 5);
         Rt.Prim_call2 s;
         Rt.Return;
       |]);
    case "validate: accepts a branch to the pad consumer" (fun () ->
        let s = prim_site ~name:"+" ~nargs:2 () in
        Bytecode.validate ~name:"v" ~frame_words:8
          [|
            Rt.Branch 3;
            Rt.Prim_call2_op
              (s, Rt.Op_const (Rt.Int 1), Rt.Op_const (Rt.Int 2));
            Rt.Const_push (Rt.Int 2, 5);
            Rt.Prim_call2 s;
            Rt.Return;
          |]);
  ]

let suite =
  accept_corpus_cases @ accept_session_cases @ shared_code_cases
  @ reject_cases @ validate_cases
