(* Regenerates the pinned counter table of [Test_perf_counters]:

     dune exec test/gen_counters.exe

   and paste the output over the [pinned] list in test_perf_counters.ml.
   Keep the configs/workloads below in sync with that file.  Counter
   values are deterministic (instruction counts, frame counts, capture
   counts), so any diff against the pinned table is a real behaviour
   change that must be justified in review, not noise. *)

let counter_names =
  [
    "instrs";
    "calls";
    "frames";
    "prim-calls";
    "captures-multi";
    "captures-oneshot";
    "words-copied";
    "cache-class-hits";
    "tmpl-codes";
    "tmpl-steps";
    "tmpl-enters";
    "par-tasks";
    "par-steals";
    "par-switches";
  ]

let tiny_config =
  { Control.default_config with seg_words = 128; hysteresis_words = 24 }

let configs =
  [
    ("stack", Scheme.Stack Control.default_config, true, true);
    ("stack-noreg", Scheme.Stack Control.default_config, true, false);
    ("stack-nofuse", Scheme.Stack Control.default_config, false, true);
    ("stack-tiny", Scheme.Stack tiny_config, true, true);
    ("closure", Scheme.Closure Control.default_config, true, true);
    ("closure-noreg", Scheme.Closure Control.default_config, true, false);
    ("closure-nofuse", Scheme.Closure Control.default_config, false, true);
    ("closure-tiny", Scheme.Closure tiny_config, true, true);
    ("heap", Scheme.Heap, true, true);
    ("heap-noreg", Scheme.Heap, true, false);
  ]

let workloads =
  [
    ("fib", "(fib 13)");
    ("ctak-cc", "(set! ctak-capture %call/cc) (ctak 12 8 4)");
    ("ctak-1cc", "(set! ctak-capture %call/1cc) (ctak 12 8 4)");
    ( "threads",
      "(run-threads (list (lambda () (fib 9)) (lambda () (fib 10))) 16 \
       %call/1cc)" );
  ]

let () =
  List.iter
    (fun (cname, backend, peephole, regalloc) ->
      List.iter
        (fun (wname, src) ->
          let stats = Stats.create () in
          let s = Scheme.create ~backend ~stats ~peephole ~regalloc () in
          Scheme.load_corpus s;
          Stats.reset stats;
          ignore (Scheme.eval ~fuel:100_000_000 s src);
          let vals =
            List.map (fun n -> string_of_int (Stats.get stats n)) counter_names
          in
          Printf.printf "    ((\"%s\", \"%s\"), [ %s ]);\n" cname wname
            (String.concat "; " vals))
        workloads)
    configs
