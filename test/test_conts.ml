(* Continuation semantics: capture, escape, re-entry, one-shot consumption
   and promotion, dynamic-wind interaction — the heart of the paper. *)

let all = Tutil.check_all
let check = Tutil.check_eval
let case = Tutil.case

let backend_suite =
  List.concat
    [
      (* escapes *)
      all "call/cc escape" "(call/cc (lambda (k) (+ 1 (k 42))))" "42";
      all "call/cc unused" "(call/cc (lambda (k) 7))" "7";
      all "call/cc nonlocal exit from loop"
        "(call/cc (lambda (break) (let loop ((i 0)) (if (= i 100) (break i) (loop (+ i 1))))))"
        "100";
      all "call/cc in operand position" "(+ 1 (call/cc (lambda (k) (k 41))))"
        "42";
      all "call/1cc escape" "(call/1cc (lambda (k) (+ 1 (k 42))))" "42";
      all "call/1cc normal return" "(call/1cc (lambda (k) 'plain))" "plain";
      all "raw %call/cc" "(%call/cc (lambda (k) (k 'raw)))" "raw";
      all "raw %call/1cc" "(%call/1cc (lambda (k) (k 'raw1)))" "raw1";
      all "nested escapes"
        "(call/cc (lambda (k1) (call/cc (lambda (k2) (k1 (call/cc (lambda (k3) (k2 (k3 'deep)))))))))"
        "deep";
      (* re-entry (multi-shot only) *)
      all "re-enter three times"
        "(define saved #f) (define n 0) (define (go) (call/cc (lambda (k) (set! saved k))) (set! n (+ n 1)) (if (< n 3) (saved #f) n)) (go)"
        "3";
      all "generator by re-entry"
        "(let ((k2 #f) (out '())) (+ 1 (call/cc (lambda (k) (set! k2 k) 0))) (set! out (cons 'tick out)) (if (< (length out) 3) (k2 10) (length out)))"
        "3";
      (* continuations as arguments, stored in data *)
      all "continuation in a pair"
        "(let ((p (cons #f #f))) (set-car! p (call/cc (lambda (k) k))) (if (procedure? (car p)) ((car p) 'done) (car p)))"
        "done";
      (* multiple values through continuations *)
      all "continuation with multiple values"
        "(call-with-values (lambda () (call/cc (lambda (k) (k 1 2 3)))) list)"
        "(1 2 3)";
      all "one-shot with multiple values"
        "(call-with-values (lambda () (call/1cc (lambda (k) (k 4 5)))) +)" "9";
      (* dynamic-wind *)
      all "wind order simple"
        "(define o '()) (define (log x) (set! o (cons x o))) (dynamic-wind (lambda () (log 'in)) (lambda () (log 'mid) 'r) (lambda () (log 'out))) (reverse o)"
        "(in mid out)";
      all "wind on escape"
        "(define o '()) (define (log x) (set! o (cons x o))) (call/cc (lambda (k) (dynamic-wind (lambda () (log 'in)) (lambda () (k 'gone)) (lambda () (log 'out))))) (reverse o)"
        "(in out)";
      all "wind on one-shot escape"
        "(define o '()) (define (log x) (set! o (cons x o))) (call/1cc (lambda (k) (dynamic-wind (lambda () (log 'in)) (lambda () (k 'gone)) (lambda () (log 'out))))) (reverse o)"
        "(in out)";
      all "wind on reentry"
        {|(let ((o '()) (kk #f) (n 0))
            (define (log x) (set! o (cons x o)))
            (dynamic-wind
              (lambda () (log 'in))
              (lambda ()
                (call/cc (lambda (k) (set! kk k)))
                (set! n (+ n 1)))
              (lambda () (log 'out)))
            (if (< n 2) (kk #f) 'done)
            (reverse o))|}
        "(in out in out)";
      all "wind result is thunk value"
        "(dynamic-wind void (lambda () 5) void)" "5";
      all "wind passes multiple values"
        "(call-with-values (lambda () (dynamic-wind void (lambda () (values 1 2)) void)) +)"
        "3";
      all "nested winds unwind inner first"
        {|(define o '())
          (define (log x) (set! o (cons x o)))
          (call/cc (lambda (k)
            (dynamic-wind (lambda () (log 'in1))
              (lambda ()
                (dynamic-wind (lambda () (log 'in2))
                  (lambda () (k 'esc))
                  (lambda () (log 'out2))))
              (lambda () (log 'out1)))))
          (reverse o)|}
        "(in1 in2 out2 out1)";
      (* amb: multi-shot backtracking *)
      all "amb pythagorean triple"
        (Programs.amb ^ "(pythagorean-triple 15)")
        "(3 4 5)";
      (* generators: one-shot coroutines *)
      all "generator yields"
        (Programs.generator
       ^ "(generator->list (make-generator (lambda (y) (y 'a) (y 'b) 'end)))")
        "(a b)";
      all "generator empty"
        (Programs.generator
       ^ "(generator->list (make-generator (lambda (y) 'end)))")
        "()";
      all "samefringe equal"
        (Programs.generator ^ Programs.samefringe
       ^ "(same-fringe? '((1 2) (3 4)) '(1 (2 3 (4))))")
        "#t";
      all "samefringe different"
        (Programs.generator ^ Programs.samefringe
       ^ "(same-fringe? '(1 2 3) '(1 2 4))")
        "#f";
      all "samefringe different lengths"
        (Programs.generator ^ Programs.samefringe
       ^ "(same-fringe? '(1 2 3) '(1 2))")
        "#f";
    ]

(* One-shot consumption semantics (stack VM under several configs, plus
   heap VM, which keeps parity via frame guards). *)
let oneshot_cases =
  let double_explicit =
    "(define k #f) (call/1cc (lambda (c) (set! k c))) (k #f)"
  in
  let return_then_invoke =
    "(define k #f) (define (go) (call/1cc (lambda (c) (set! k c))) 'ret) (go) (k #f)"
  in
  let promoted_reinvoke =
    (* A one-shot record still live in the chain when a call/cc captures
       above it is promoted and becomes freely re-invocable. *)
    {|(let ((k1 #f) (n 0))
        (%call/1cc
         (lambda (c)
           (set! k1 c)
           (%call/cc (lambda (m) 'x))
           'first))
        (set! n (+ n 1))
        (if (< n 3) (k1 #f) n))|}
  in
  [
    Tutil.check_shot "use after implicit return is an error" double_explicit;
    Tutil.check_shot ~config:Tutil.tiny_config
      "use after implicit return is an error (tiny segments)" double_explicit;
    case "use after implicit return errors on heap VM" (fun () ->
        match Tutil.eval_heap double_explicit with
        | v -> Alcotest.failf "expected shot error, got %s" v
        | exception Rt.Shot_continuation -> ());
    case "use after implicit return errors on oracle" (fun () ->
        match Tutil.eval_oracle double_explicit with
        | v -> Alcotest.failf "expected shot error, got %s" v
        | exception Rt.Shot_continuation -> ());
    Tutil.check_shot "second use after explicit invoke is an error"
      {|(let ((k #f) (n 0))
          (call/1cc (lambda (c) (set! k c) (c 'first)))
          (set! n (+ n 1))
          (if (= n 1) (k 'again) n))|};
    Tutil.check_shot "normal return consumes the extent" return_then_invoke;
    case "normal return consumes on heap VM" (fun () ->
        match Tutil.eval_heap return_then_invoke with
        | v -> Alcotest.failf "expected shot error, got %s" v
        | exception Rt.Shot_continuation -> ());
    case "normal return consumes on oracle" (fun () ->
        match Tutil.eval_oracle return_then_invoke with
        | v -> Alcotest.failf "expected shot error, got %s" v
        | exception Rt.Shot_continuation -> ());
    (* Promotion: a one-shot captured inside a multi-shot extent becomes
       multi-shot and may be invoked repeatedly (paper Section 3.3). *)
    check "promotion allows repeated invocation" promoted_reinvoke "3";
    check ~config:Tutil.tiny_config
      "promotion allows repeated invocation (tiny segments)"
      promoted_reinvoke "3";
    check
      ~config:
        { Control.default_config with Control.promotion = Control.Shared_flag }
      "promotion allows repeated invocation (shared flag)" promoted_reinvoke
      "3";
    case "promotion on heap VM" (fun () ->
        Alcotest.(check string) "promoted" "3" (Tutil.eval_heap promoted_reinvoke));
    (* Introspection *)
    check "one-shot predicate"
      "(%call/1cc (lambda (k) (%continuation-one-shot? k)))" "#t";
    check "multi-shot predicate"
      "(%call/cc (lambda (k) (%continuation-one-shot? k)))" "#f";
    check "shot flag observable"
      {|(define k #f)
        (define (go) (%call/1cc (lambda (c) (set! k c))) 'x)
        (go)
        (%continuation-shot? k)|}
      "#t";
    check "unshot flag observable"
      "(%call/1cc (lambda (k) (%continuation-shot? k)))" "#f";
    check "promotion observable"
      {|(define k1 #f)
        (%call/1cc (lambda (c)
          (set! k1 c)
          (%call/cc (lambda (m) 'x))
          'done))
        (%continuation-promoted? k1)|}
      "#t";
    check "consumed one-shot is not reported promoted"
      {|(define k1 #f)
        (%call/1cc (lambda (c) (set! k1 c)))
        (%continuation-promoted? k1)|}
      "#f";
  ]

(* Paper-specific mechanics observable through counters. *)
let mechanics_cases =
  let run ?(config = Control.default_config) src =
    let stats = Stats.create () in
    let s = Scheme.create ~backend:(Scheme.Stack config) ~stats () in
    let v = Scheme.eval_string ~fuel:Tutil.default_fuel s src in
    (v, stats)
  in
  [
    case "call/cc capture copies nothing" (fun () ->
        let _, st = run "(%call/cc (lambda (k) 1))" in
        Alcotest.(check int) "words copied" 0 st.Stats.words_copied;
        Alcotest.(check int) "captures" 1 st.Stats.captures_multi);
    case "one-shot invoke copies nothing" (fun () ->
        let _, st =
          run "(define (f) (%call/1cc (lambda (k) (k 1)))) (f)"
        in
        Alcotest.(check int) "words copied" 0 st.Stats.words_copied;
        Alcotest.(check int) "oneshot invokes" 1 st.Stats.invokes_oneshot);
    case "multi-shot invoke copies" (fun () ->
        let _, st =
          run "(define (f) (+ 0 (%call/cc (lambda (k) (k 1))))) (f)"
        in
        Alcotest.(check bool) "copied something" true
          (st.Stats.words_copied > 0);
        Alcotest.(check int) "multi invokes" 1 st.Stats.invokes_multi);
    case "splitting caps single-invoke copy volume" (fun () ->
        (* Build a deep continuation, then invoke it: splitting must keep
           the copied portion at or below the copy bound. *)
        let config =
          { Control.default_config with Control.copy_bound = 64 }
        in
        let _, st =
          run ~config
            {|(define k #f)
              (define (deep n)
                (if (= n 0)
                    (%call/cc (lambda (c) (set! k c) 0))
                    (+ 1 (deep (- n 1)))))
              (deep 200)
              (if k (let ((k2 k)) (set! k #f) (k2 0)) 'done)|}
        in
        Alcotest.(check bool) "did split" true (st.Stats.splits > 0));
    case "overflow as implicit one-shot capture" (fun () ->
        let _, st =
          run ~config:Tutil.tiny_config
            "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum 500)"
        in
        Alcotest.(check bool) "overflowed" true (st.Stats.overflows > 0);
        Alcotest.(check bool) "underflowed" true (st.Stats.underflows > 0);
        Alcotest.(check bool) "oneshot captures" true
          (st.Stats.captures_oneshot > 0));
    case "overflow as implicit call/cc copies on unwind" (fun () ->
        let _, st =
          run ~config:Tutil.tiny_callcc_config
            "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum 500)"
        in
        Alcotest.(check bool) "copied plenty" true
          (st.Stats.words_copied > 1000));
    case "segment cache reused on deep recursion" (fun () ->
        let _, st =
          run ~config:Tutil.tiny_config
            "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum 500) (sum 500) (sum 500)"
        in
        Alcotest.(check bool) "cache hits" true (st.Stats.cache_hits > 0));
    case "promotion of chain under call/cc" (fun () ->
        let _, st =
          run
            {|(define (f)
                (%call/1cc (lambda (c1)
                  (%call/1cc (lambda (c2)
                    (%call/cc (lambda (m) 'x)))))))
              (f)|}
        in
        Alcotest.(check bool) "promoted at least one" true
          (st.Stats.promotions >= 1));
    case "seal displacement shares the segment" (fun () ->
        let config =
          {
            Control.default_config with
            Control.oneshot_seal = Control.Seal_displacement 64;
          }
        in
        let v, st =
          run ~config
            "(define (f) (%call/1cc (lambda (k) (k 'sealed)))) (f)"
        in
        Alcotest.(check string) "value" "sealed" v;
        (* With seal displacement, capture allocates no fresh segment. *)
        Alcotest.(check int) "captures" 1 st.Stats.captures_oneshot);
    case "fragmentation: whole-segment one-shots hold their segments"
      (fun () ->
        let stats = Stats.create () in
        let s = Scheme.create ~backend:(Scheme.Stack Control.default_config)
            ~stats () in
        (* The capture sits under a live [+] frame: a one-shot captured
           at a segment's base reuses the underflow link instead of
           sealing, so a tail-position capture chain would provision
           nothing after the first.  The arithmetic keeps each capture
           non-empty, forcing the whole-segment seal every time. *)
        let v =
          Scheme.eval_string ~fuel:Tutil.default_fuel s
            {|(define ks '())
              (define (hold n)
                (if (= n 0)
                    (length ks)
                    (+ 0 (%call/1cc (lambda (k)
                      (set! ks (cons k ks))
                      (hold (- n 1)))))))
              (hold 8)|}
        in
        Alcotest.(check string) "held" "8" v;
        Alcotest.(check int) "captures" 8 stats.Stats.captures_oneshot;
        (* Each nested unconsumed one-shot owns a whole segment. *)
        Alcotest.(check bool) "segments provisioned" true
          (stats.Stats.seg_allocs + stats.Stats.cache_hits >= 8));
  ]

let suite = backend_suite @ oneshot_cases @ mechanics_cases

(* Extreme-geometry edge cases: frames larger than a segment, huge apply
   spreads, and captures inside apply, under every overflow/capture
   policy on 64-word segments. *)
let edge_cases =
  let configs =
    [
      ("tiny-1cc", { Control.default_config with Control.seg_words = 64;
                     copy_bound = 16; hysteresis_words = 8 });
      ("tiny-cc",
       { Control.default_config with Control.seg_words = 64; copy_bound = 16;
         hysteresis_words = 8; overflow_policy = Control.As_callcc });
      ("tiny-copy",
       { Control.default_config with Control.seg_words = 64; copy_bound = 16;
         capture = Control.Copy_on_capture });
    ]
  in
  List.concat_map
    (fun (cname, config) ->
      [
        Tutil.check_eval ~config ~corpus:true
          (Printf.sprintf "giant frame exceeds segment [%s]" cname)
          "((lambda args (length args)) 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 \
           16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32 33 34 35 36 37 \
           38 39 40)"
          "40";
        Tutil.check_eval ~config ~corpus:true
          (Printf.sprintf "huge apply spread [%s]" cname)
          "(apply + (iota 400))" "79800";
        Tutil.check_eval ~config ~corpus:true
          (Printf.sprintf "capture inside apply [%s]" cname)
          "(apply (lambda (a b) (call/1cc (lambda (k) (k (+ a b))))) '(20 22))"
          "42";
        Tutil.check_eval ~config ~corpus:true
          (Printf.sprintf "timer fires across overflow boundaries [%s]" cname)
          {|(let ((hits 0))
              (define (h) (set! hits (+ hits 1)) (%set-timer! 7 h))
              (%set-timer! 7 h)
              (deep 300)
              (%set-timer! 0 h)
              (> hits 10))|}
          "#t";
      ])
    configs

let suite = suite @ edge_cases
