(* Differential suite for the data-parallel layer (DESIGN.md §15):
   par-map/par-reduce/par-for-each against their serial counterparts,
   the flat-value protocol's structured errors, control effects
   (call/1cc, error escapes) inside worker tasks, and the no-steal
   counter identities the e9 bench and CI pin. *)

open Tutil

(* A session with an attached pool.  [domains:false] runs the worker
   shards inline on the calling domain — same sessions, same task
   order — which keeps most of the suite single-domain and fast;
   dedicated cases below exercise the real domain pool. *)
let with_par ?(backend = Scheme.Stack Control.default_config) ?(jobs = 2)
    ?(chunk = 2) ?(steal = true) ?(domains = false) ?(corpus = false) f =
  let s = Scheme.create ~backend () in
  if corpus then Scheme.load_corpus s;
  Scheme.par_attach ~chunk ~steal ~domains ~corpus ~jobs s;
  Fun.protect ~finally:(fun () -> Scheme.par_shutdown s) (fun () -> f s)

let peval s src = Scheme.eval_string ~fuel:default_fuel s src

(* Evaluate [defs] one by one (so the pool logs them for the workers),
   then [expr]. *)
let run_par ?backend ?jobs ?chunk ?steal ?domains ?corpus defs expr =
  with_par ?backend ?jobs ?chunk ?steal ?domains ?corpus (fun s ->
      List.iter (fun d -> ignore (peval s d)) defs;
      peval s expr)

let defs_square = [ "(define (square x) (* x x))" ]

let check_par ?backend ?jobs ?chunk ?steal ?domains ?corpus name defs expr
    expected =
  case name (fun () ->
      Alcotest.(check string)
        expr expected
        (run_par ?backend ?jobs ?chunk ?steal ?domains ?corpus defs expr))

(* par result = serial result, computed on a plain session (the
   (%par-jobs) = 0 fallback path). *)
let check_diff ?backend ?jobs ?chunk name defs par_expr serial_expr =
  case name (fun () ->
      let serial =
        let s = Scheme.create ?backend () in
        List.iter (fun d -> ignore (peval s d)) defs;
        peval s serial_expr
      in
      let par = run_par ?backend ?jobs ?chunk defs par_expr in
      Alcotest.(check string) par_expr serial par)

let par_error ?backend ?jobs ?chunk ?domains name defs expr substr =
  case name (fun () ->
      match run_par ?backend ?jobs ?chunk ?domains defs expr with
      | v -> Alcotest.failf "expected error, got %s" v
      | exception Rt.Scheme_error (msg, _) ->
          if not (contains ~sub:substr msg) then
            Alcotest.failf "error %S does not mention %S" msg substr)

(* ------------------------------------------------------------------ *)
(* No-steal counter identity: same chunks, any distribution, same      *)
(* summed deterministic counters.                                      *)
(* ------------------------------------------------------------------ *)

let shard_sum s name =
  Array.fold_left
    (fun acc st ->
      match st with Some st -> acc + Stats.get st name | None -> acc)
    0
    (Scheme.par_shard_stats s)

let det_counters = [ "instrs"; "words-copied"; "seg-alloc-words"; "par-tasks" ]

let measure_sums ~jobs ~domains expr =
  with_par ~jobs ~chunk:2 ~steal:false ~domains ~corpus:true (fun s ->
      ignore (peval s expr);
      List.map (fun n -> (n, shard_sum s n)) det_counters)

let counter_identity_case =
  case "no-steal shard sums = 1-worker run [stack]" (fun () ->
      let expr = "(par-reduce + 0 (par-map fib (iota 12)))" in
      let one = measure_sums ~jobs:1 ~domains:false expr in
      let four = measure_sums ~jobs:4 ~domains:false expr in
      List.iter2
        (fun (n, a) (_, b) ->
          Alcotest.(check int) ("sum of " ^ n) a b)
        one four)

let domain_identity_case =
  case "no-steal domains = sequential shards [stack]" (fun () ->
      let expr = "(par-map fib (iota 10))" in
      let run ~domains =
        with_par ~jobs:2 ~chunk:2 ~steal:false ~domains ~corpus:true (fun s ->
            let v = peval s expr in
            let sums = List.map (fun n -> (n, shard_sum s n)) det_counters in
            (v, sums))
      in
      let v_dom, sums_dom = run ~domains:true in
      let v_seq, sums_seq = run ~domains:false in
      Alcotest.(check string) expr v_seq v_dom;
      List.iter2
        (fun (n, a) (_, b) -> Alcotest.(check int) ("shard sum " ^ n) b a)
        sums_dom sums_seq)

(* ------------------------------------------------------------------ *)
(* The suite                                                           *)
(* ------------------------------------------------------------------ *)

let backends =
  [
    ("stack", Scheme.Stack Control.default_config);
    ("closure", Scheme.Closure Control.default_config);
    ("heap", Scheme.Heap);
  ]

let per_backend =
  List.concat_map
    (fun (bname, backend) ->
      [
        check_par ~backend
          (Printf.sprintf "par-map squares [%s]" bname)
          defs_square "(par-map square (iota 10))"
          "(0 1 4 9 16 25 36 49 64 81)";
        check_diff ~backend
          (Printf.sprintf "par-map = map [%s]" bname)
          defs_square "(par-map square (iota 17))" "(map square (iota 17))";
        check_diff ~backend
          (Printf.sprintf "par-reduce = fold-left [%s]" bname)
          defs_square "(par-reduce + 0 (par-map square (iota 23)))"
          "(fold-left + 0 (map square (iota 23)))";
      ])
    backends

let suite =
  per_backend
  @ [
      (* fallback without a pool: par-* are the serial library *)
      check_eval "par-map serial fallback"
        "(begin (define (d x) (* 2 x)) (par-map d '(1 2 3)))" "(2 4 6)";
      check_eval "par-reduce serial fallback" "(par-reduce + 1 '(1 2 3))" "7";
      check_eval "par-for-each serial fallback"
        "(let ((n 0)) (par-for-each (lambda (x) (set! n (+ n x))) '(1 2 3)) n)"
        "6";
      (* chunking edges *)
      check_par ~chunk:1 "chunk 1" defs_square "(par-map square (iota 7))"
        "(0 1 4 9 16 25 36)";
      check_par ~chunk:5 "chunk 5" defs_square "(par-map square (iota 7))"
        "(0 1 4 9 16 25 36)";
      check_par "empty list" defs_square "(par-map square '())" "()";
      check_par "singleton" defs_square "(par-map square '(6))" "(36)";
      check_par ~jobs:3 ~chunk:2 "par-reduce partials" []
        "(par-reduce + 0 '(1 2 3 4 5 6 7 8 9 10))" "55";
      (* primitives ship by name; flat argument/result round trips *)
      check_par "prim task" [] "(par-map 1+ '(1 2 3))" "(2 3 4)";
      check_par "flat data round trip" defs_square
        "(par-map car '((a 1) (#\\x \"s\") ((1 2) 3) (#(1 2) 4)))"
        "(a #\\x (1 2) #(1 2))";
      (* par-for-each: worker display output is stitched back in chunk
         order *)
      case "par-for-each output stitching" (fun () ->
          with_par ~jobs:2 ~chunk:1 ~steal:false (fun s ->
              ignore (peval s "(par-for-each display '(1 2 3 4 5))");
              Alcotest.(check string) "output" "12345" (Scheme.output s)));
      (* control effects inside worker tasks *)
      check_par "call/1cc in task"
        [
          "(define (escape x) (%call/1cc (lambda (k) (k (* 10 x)) 'dead)))";
        ]
        "(par-map escape '(1 2 3))" "(10 20 30)";
      check_par ~corpus:true "ctak in task (one-shot heavy)"
        [ "(set! ctak-capture %call/1cc)"; "(define (ct x) (ctak 8 5 x))" ]
        "(par-map ct '(1 2))" "(5 5)";
      check_par "error handler inside task"
        [
          "(define (guarded x) (try (lambda () (if (= x 2) (error 'boom \
           \"two\") x)) (lambda (m) 'caught)))";
        ]
        "(par-map guarded '(1 2 3))" "(1 caught 3)";
      par_error "error escapes task" [ "(define (blow x) (error 'blow \"x\"))" ]
        "(par-map blow '(1 2 3))" "blow: x";
      par_error ~domains:true "error escapes task [domains]"
        [ "(define (blow x) (error 'blow \"x\"))" ] "(par-map blow '(1 2))"
        "blow: x";
      (* flat-value protocol: structured errors on both directions *)
      par_error "non-flat argument" defs_square
        "(par-map square (list 1 square 3))" "non-flat value";
      par_error "non-flat result" [ "(define (mk x) (lambda () x))" ]
        "(par-map mk '(1 2))" "non-flat value";
      par_error "anonymous procedure" [] "(par-map (lambda (x) x) '(1 2))"
        "globally named";
      par_error "unknown mode" [] "(%par-dispatch 'zipper car '(1 2))"
        "par: unknown mode zipper";
      par_error "improper list" defs_square "(par-map square (cons 1 2))"
        "proper list";
      (* one-shot switches actually happen and are counted *)
      case "par-switches counted under preemption" (fun () ->
          with_par ~jobs:1 ~chunk:4 ~steal:false ~corpus:true (fun s ->
              ignore (peval s "(par-map fib (list 14 14 14 14))");
              let switches = shard_sum s "par-switches" in
              if switches <= 0 then
                Alcotest.failf "expected fiber switches, got %d" switches;
              Alcotest.(check int) "tasks" 1 (shard_sum s "par-tasks")));
      (* real domain pool end to end, with stealing enabled *)
      check_par ~domains:true ~jobs:2 ~steal:true ~corpus:true
        "domain pool with stealing" []
        "(par-reduce + 0 (par-map fib (iota 14)))" "609";
      (* master definitions reach the workers through the log, including
         later redefinition *)
      case "definition log replay sees redefinition" (fun () ->
          with_par ~jobs:2 (fun s ->
              ignore (peval s "(define (g x) (* x 2))");
              Alcotest.(check string) "first" "(2 4)" (peval s "(par-map g '(1 2))");
              ignore (peval s "(define (g x) (* x 3))");
              Alcotest.(check string) "redefined" "(3 6)"
                (peval s "(par-map g '(1 2))")));
      counter_identity_case;
      domain_identity_case;
      (* no-steal round-robin pins tasks: with 2 jobs and 4 chunks each
         shard executes exactly 2 *)
      case "no-steal task assignment" (fun () ->
          with_par ~jobs:2 ~chunk:1 ~steal:false (fun s ->
              ignore (peval s "(define (i x) x)");
              ignore (peval s "(par-map i '(1 2 3 4))");
              let per_shard =
                Array.to_list (Scheme.par_shard_stats s)
                |> List.map (function
                     | Some st -> Stats.get st "par-tasks"
                     | None -> 0)
              in
              Alcotest.(check (list int)) "tasks per shard" [ 2; 2 ] per_shard));
    ]
