open Rt

type overflow_policy = As_call1cc | As_callcc
type oneshot_seal = Whole_segment | Seal_displacement of int
type promotion_strategy = Eager | Shared_flag
type capture_strategy = Seal | Copy_on_capture

type config = {
  seg_words : int;
  copy_bound : int;
  overflow_policy : overflow_policy;
  hysteresis_words : int;
  oneshot_seal : oneshot_seal;
  cache_enabled : bool;
  cache_max : int;
  promotion : promotion_strategy;
  capture : capture_strategy;
}

let default_config =
  {
    seg_words = 16 * 1024;
    copy_bound = 128;
    overflow_policy = As_call1cc;
    hysteresis_words = 64;
    oneshot_seal = Whole_segment;
    cache_enabled = true;
    cache_max = 1024;
    promotion = Eager;
    capture = Seal;
  }

type t = {
  cfg : config;
  stats : Stats.t;
  mutable sr : stack_record;
  mutable fp : int;
  mutable cache : value array list;
  mutable cache_len : int;
}

(* ------------------------------------------------------------------ *)
(* Segment allocation and the segment cache (paper Section 3.2)        *)
(* ------------------------------------------------------------------ *)

(* Oversized requests (multi-shot reinstatement of a big record, overflow
   with a huge frame) are rounded up to a multiple of [seg_words], so the
   arrays they allocate have recyclable sizes: [release_segment] accepts
   any array of at least [seg_words] and [alloc_segment] finds the first
   cached array big enough (first-fit, preserving cache order).  Without
   the rounding every oversized allocation was a one-off the cache could
   never serve again. *)
let seg_request m words =
  let sw = m.cfg.seg_words in
  if words <= sw then sw else (words + sw - 1) / sw * sw

let alloc_segment m words =
  let words = seg_request m words in
  let fresh () =
    m.stats.seg_allocs <- m.stats.seg_allocs + 1;
    m.stats.seg_alloc_words <- m.stats.seg_alloc_words + words;
    Array.make words Void
  in
  if not m.cfg.cache_enabled then fresh ()
  else
    (* First-fit scan: the head matches immediately in the common case
       (default-sized request, default-sized cached segments). *)
    let rec take skipped = function
      | seg :: rest when words <= Array.length seg ->
          m.cache <- List.rev_append skipped rest;
          m.cache_len <- m.cache_len - 1;
          m.stats.cache_hits <- m.stats.cache_hits + 1;
          seg
      | seg :: rest -> take (seg :: skipped) rest
      | [] -> fresh ()
    in
    take [] m.cache

let release_segment m seg =
  if
    m.cfg.cache_enabled
    && Array.length seg >= m.cfg.seg_words
    && m.cache_len < m.cfg.cache_max
  then begin
    m.cache <- seg :: m.cache;
    m.cache_len <- m.cache_len + 1;
    m.stats.cache_releases <- m.stats.cache_releases + 1
  end

let clear_cache m =
  m.cache <- [];
  m.cache_len <- 0

(* The active record wholly owns its array iff it covers it entirely;
   only then may the array be recycled when the stack is abandoned. *)
let wholly_owned sr = sr.base = 0 && sr.size = Array.length sr.seg

let fresh_record seg ~base ~size ~link =
  { seg; base; size; current = 0; link; ret = Void; promoted = ref false }

(* Debug record identities (CONTROL_DEBUG traces only).  The table is
   populated solely under [!debug] — identity lookups are O(n) in the
   number of live records traced, which is fine for a trace aid but must
   never be paid (or leak) on production paths — and is emptied by
   [create] so one machine's records do not pin another's segments. *)
let debug = ref (Sys.getenv_opt "CONTROL_DEBUG" <> None)
let rid = ref 0
let ids : (stack_record * int) list ref = ref []

let id_of (r : stack_record) =
  if not !debug then 0
  else
    match List.find_opt (fun (r', _) -> r' == r) !ids with
    | Some (_, i) -> i
    | None ->
        incr rid;
        ids := (r, !rid) :: !ids;
        !rid

let dbg fmt = Printf.eprintf fmt

let create ?stats cfg =
  assert (cfg.seg_words >= 64);
  assert (cfg.copy_bound >= 16);
  (match cfg.oneshot_seal with
  | Seal_displacement h -> assert (h >= 1)
  | Whole_segment -> ());
  let stats = match stats with Some s -> s | None -> Stats.create () in
  ids := [];
  rid := 0;
  let m =
    {
      cfg;
      stats;
      sr = fresh_record [||] ~base:0 ~size:0 ~link:None;
      fp = 0;
      cache = [];
      cache_len = 0;
    }
  in
  let seg = alloc_segment m cfg.seg_words in
  m.sr <- fresh_record seg ~base:0 ~size:(Array.length seg) ~link:None;
  m

let init_frame m ret0 =
  (* Recycle the previous run's segment when nothing else can reference
     it (it covers its whole array, so no sealed record shares it). *)
  if m.sr.base = 0 && m.sr.size = Array.length m.sr.seg && m.sr.size > 0 then
    release_segment m m.sr.seg;
  let seg = alloc_segment m m.cfg.seg_words in
  m.sr <- fresh_record seg ~base:0 ~size:(Array.length seg) ~link:None;
  m.fp <- 0;
  seg.(0) <- ret0

let seg_limit m = m.sr.base + m.sr.size
let room m n = m.fp + n <= seg_limit m
let frame_ret m = m.sr.seg.(m.fp)

(* ------------------------------------------------------------------ *)
(* Record classification                                               *)
(* ------------------------------------------------------------------ *)

let is_shot r = r.size = -1
let is_multi r = r.current = r.size || !(r.promoted)

let retaddr_of = function
  | Retaddr r -> r
  | v -> Values.err "control: corrupt frame: expected return address" [ v ]

(* ------------------------------------------------------------------ *)
(* Promotion (paper Section 3.3)                                       *)
(* ------------------------------------------------------------------ *)

let promote_chain m link =
  match m.cfg.promotion with
  | Shared_flag -> (
      (* All adjacent one-shot records share one boxed flag: one store. *)
      match link with
      | Some r when (not (is_shot r)) && not (is_multi r) ->
          r.promoted := true;
          m.stats.promotions <- m.stats.promotions + 1
      | _ -> ())
  | Eager ->
      (* Linear walk, stopping at the first multi-shot record: everything
         below it was promoted when that record was created. *)
      let rec go = function
        | Some r when (not (is_shot r)) && not (is_multi r) ->
            r.size <- r.current;
            m.stats.promotions <- m.stats.promotions + 1;
            go r.link
        | _ -> ()
      in
      go link

(* New one-shot records join the promotion-flag group of the one-shot
   record directly below them, so a single shared-flag store promotes the
   whole contiguous group. *)
let inherit_flag m link =
  match m.cfg.promotion with
  | Eager -> ref false
  | Shared_flag -> (
      match link with
      | Some r when (not (is_shot r)) && not (is_multi r) -> r.promoted
      | _ -> ref false)

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)
(* ------------------------------------------------------------------ *)

(* The classic baseline: copy the occupied portion to a fresh heap block
   at capture time.  The running stack is left untouched (no sealing, no
   underflow mark), so capture is O(occupied) but the running code is
   unaffected. *)
let capture_multi_copying m =
  let sr = m.sr in
  let occupied = m.fp - sr.base in
  if occupied = 0 && sr.seg.(m.fp) = Underflow_mark then begin
    let k =
      match sr.link with
      | Some k -> k
      | None -> Values.err "capture at stack bottom with no link" []
    in
    promote_chain m (Some k);
    m.stats.captures_multi <- m.stats.captures_multi + 1;
    k
  end
  else begin
    let copy = Array.make (max occupied 1) Underflow_mark in
    Array.blit sr.seg sr.base copy 0 occupied;
    m.stats.words_copied <- m.stats.words_copied + occupied;
    m.stats.seg_allocs <- m.stats.seg_allocs + 1;
    m.stats.seg_alloc_words <- m.stats.seg_alloc_words + max occupied 1;
    let k =
      {
        seg = copy;
        base = 0;
        size = occupied;
        current = occupied;
        link = sr.link;
        ret = sr.seg.(m.fp);
        promoted = ref true;
      }
    in
    ignore (retaddr_of k.ret);
    promote_chain m k.link;
    m.stats.captures_multi <- m.stats.captures_multi + 1;
    k
  end

let capture_multi_sealing m =
  let sr = m.sr in
  if sr.seg.(m.fp) = Underflow_mark then begin
    (* Tail-position capture on an empty segment: the link record itself is
       the continuation (paper Section 3.2). *)
    let k =
      match sr.link with
      | Some k -> k
      | None -> Values.err "capture at stack bottom with no link" []
    in
    if not (is_multi k) then begin
      (* Promote the whole chain starting at k itself. *)
      (match m.cfg.promotion with
      | Shared_flag ->
          k.promoted := true;
          m.stats.promotions <- m.stats.promotions + 1
      | Eager ->
          k.size <- k.current;
          m.stats.promotions <- m.stats.promotions + 1;
          promote_chain m k.link)
    end;
    m.stats.captures_multi <- m.stats.captures_multi + 1;
    k
  end
  else begin
    let occupied = m.fp - sr.base in
    let k =
      {
        seg = sr.seg;
        base = sr.base;
        size = occupied;
        current = occupied;
        link = sr.link;
        ret = sr.seg.(m.fp);
        promoted = ref true;
      }
    in
    ignore (retaddr_of k.ret);
    sr.seg.(m.fp) <- Underflow_mark;
    sr.base <- m.fp;
    sr.size <- sr.size - occupied;
    sr.link <- Some k;
    promote_chain m k.link;
    m.stats.captures_multi <- m.stats.captures_multi + 1;
    k
  end

let capture_multi m =
  match m.cfg.capture with
  | Seal -> capture_multi_sealing m
  | Copy_on_capture -> capture_multi_copying m

let capture_oneshot m =
  let sr = m.sr in
  if sr.seg.(m.fp) = Underflow_mark then begin
    let k =
      match sr.link with
      | Some k -> k
      | None -> Values.err "capture at stack bottom with no link" []
    in
    m.stats.captures_oneshot <- m.stats.captures_oneshot + 1;
    if !debug then dbg "cap1cc(empty) -> r%d\n" (id_of k);
    k
  end
  else begin
    let occupied = m.fp - sr.base in
    let ret = sr.seg.(m.fp) in
    ignore (retaddr_of ret);
    m.stats.captures_oneshot <- m.stats.captures_oneshot + 1;
    match m.cfg.oneshot_seal with
    | Seal_displacement headroom when sr.size - occupied - headroom >= 64 ->
        (* Section 3.4: seal at a fixed displacement above the occupied
           portion; continue on the remainder of the same segment. *)
        let sealed = occupied + headroom in
        let k =
          {
            seg = sr.seg;
            base = sr.base;
            size = sealed;
            current = occupied;
            link = sr.link;
            ret;
            promoted = inherit_flag m sr.link;
          }
        in
        sr.base <- sr.base + sealed;
        sr.size <- sr.size - sealed;
        sr.link <- Some k;
        m.fp <- sr.base;
        sr.seg.(m.fp) <- Underflow_mark;
        k
    | _ ->
        (* Encapsulate the entire segment; continue on a fresh one. *)
        let k =
          {
            seg = sr.seg;
            base = sr.base;
            size = sr.size;
            current = occupied;
            link = sr.link;
            ret;
            promoted = inherit_flag m sr.link;
          }
        in
        let seg = alloc_segment m m.cfg.seg_words in
        m.sr <-
          fresh_record seg ~base:0 ~size:(Array.length seg) ~link:(Some k);
        m.fp <- 0;
        seg.(0) <- Underflow_mark;
        if !debug then dbg "cap1cc -> r%d (seg=%d base=%d cur=%d)\n" (id_of k) (Array.length k.seg) k.base k.current;
        k
  end

(* ------------------------------------------------------------------ *)
(* Invocation                                                          *)
(* ------------------------------------------------------------------ *)

(* Split a saved segment so that the portion to be copied is at most the
   copy bound, walking frame boundaries top-down via the displacement
   words (paper Section 3.2; details in Hieb/Dybvig/Bruggeman PLDI'90). *)
let split_for_copy m k content =
  let bound = m.cfg.copy_bound in
  let top = content - (retaddr_of k.ret).rdisp in
  let s = ref top in
  let continue = ref (top > 0 && content - top <= bound) in
  while !continue do
    match k.seg.(k.base + !s) with
    | Retaddr r ->
        let p = !s - r.rdisp in
        if p > 0 && content - p <= bound then s := p else continue := false
    | _ -> continue := false
  done;
  let s = if content - !s <= bound then !s else top in
  if s <= 0 then content (* single oversized frame: copy everything *)
  else begin
    let krest =
      {
        seg = k.seg;
        base = k.base;
        size = s;
        current = s;
        link = k.link;
        ret = k.seg.(k.base + s);
        promoted = ref true;
      }
    in
    ignore (retaddr_of krest.ret);
    k.seg.(k.base + s) <- Underflow_mark;
    k.base <- k.base + s;
    k.size <- content - s;
    k.current <- content - s;
    k.link <- Some krest;
    m.stats.splits <- m.stats.splits + 1;
    content - s
  end

let reinstate_multi m k =
  let content = k.current in
  let content =
    if content > m.cfg.copy_bound then split_for_copy m k content else content
  in
  let sr = m.sr in
  if sr.size < content then begin
    if wholly_owned sr && sr.seg != k.seg then release_segment m sr.seg;
    let seg = alloc_segment m (content + 64) in
    m.sr <- fresh_record seg ~base:0 ~size:(Array.length seg) ~link:None
  end;
  let sr = m.sr in
  Array.blit k.seg k.base sr.seg sr.base content;
  m.stats.words_copied <- m.stats.words_copied + content;
  sr.link <- k.link;
  let r = retaddr_of k.ret in
  m.fp <- sr.base + content - r.rdisp;
  m.stats.invokes_multi <- m.stats.invokes_multi + 1;
  r

let reinstate_oneshot m k =
  let sr = m.sr in
  if wholly_owned sr && sr.seg != k.seg then release_segment m sr.seg;
  m.sr <- fresh_record k.seg ~base:k.base ~size:k.size ~link:k.link;
  let r = retaddr_of k.ret in
  m.fp <- k.base + k.current - r.rdisp;
  (* Mark shot: both size fields set to -1 (paper Figure 4). *)
  k.size <- -1;
  k.current <- -1;
  m.stats.invokes_oneshot <- m.stats.invokes_oneshot + 1;
  r

let reinstate m k =
  if !debug then
    dbg "reinstate r%d (size=%d current=%d shot=%b multi=%b)\n" (id_of k)
      k.size k.current (is_shot k) (is_multi k);
  if is_shot k then raise Shot_continuation
  else if is_multi k then reinstate_multi m k
  else reinstate_oneshot m k

let underflow m =
  match m.sr.link with
  | None -> None
  | Some k ->
      m.stats.underflows <- m.stats.underflows + 1;
      Some (reinstate m k)

(* ------------------------------------------------------------------ *)
(* Overflow as implicit continuation capture (paper Section 3.2)       *)
(* ------------------------------------------------------------------ *)

let overflow m ~live_top ~need =
  m.stats.overflows <- m.stats.overflows + 1;
  let sr = m.sr in
  let seg = sr.seg in
  let split, link' =
    match m.cfg.overflow_policy with
    | As_callcc ->
        (* Seal everything below the current frame as a multi-shot record;
           the entire new segment must refill before the next overflow, so
           no bouncing — but unwinding will copy it all back. *)
        if m.fp = sr.base then (m.fp, sr.link)
        else begin
          let occupied = m.fp - sr.base in
          let k =
            {
              seg;
              base = sr.base;
              size = occupied;
              current = occupied;
              link = sr.link;
              ret = seg.(m.fp);
              promoted = ref true;
            }
          in
          ignore (retaddr_of k.ret);
          seg.(m.fp) <- Underflow_mark;
          promote_chain m k.link;
          m.stats.captures_multi <- m.stats.captures_multi + 1;
          (m.fp, Some k)
        end
    | As_call1cc ->
        (* Seal as a one-shot record, copying up the top few frames
           (hysteresis) so an immediate return does not bounce. *)
        let s = ref m.fp in
        let continue = ref true in
        while !continue && !s > sr.base
              && live_top - !s < m.cfg.hysteresis_words do
          match seg.(!s) with
          | Retaddr r -> s := !s - r.rdisp
          | _ -> continue := false
        done;
        let s = !s in
        if s = sr.base then (s, sr.link)
        else begin
          let k =
            {
              seg;
              base = sr.base;
              size = sr.size;
              current = s - sr.base;
              link = sr.link;
              ret = seg.(s);
              promoted = inherit_flag m sr.link;
            }
          in
          ignore (retaddr_of k.ret);
          m.stats.captures_oneshot <- m.stats.captures_oneshot + 1;
          (s, Some k)
        end
  in
  let live = live_top - split in
  let abandoned_whole = split = sr.base in
  let old_seg = seg in
  let old_owned = wholly_owned sr in
  let newlen = max m.cfg.seg_words (need + live + 16) in
  let nseg = alloc_segment m newlen in
  Array.blit seg split nseg 0 live;
  m.stats.words_copied <- m.stats.words_copied + live;
  (* When a record was sealed at [split], the copied frame's return slot
     must become the underflow mark; when the split landed at the segment
     base, slot 0 is already the bottom frame's correct return slot
     (underflow mark or the halt return address). *)
  if split > sr.base then nseg.(0) <- Underflow_mark;
  m.sr <- fresh_record nseg ~base:0 ~size:(Array.length nseg) ~link:link';
  m.fp <- m.fp - split;
  if abandoned_whole && old_owned && old_seg != nseg then
    release_segment m old_seg

let ensure_room m ~live_top ~need =
  if not (room m need) then
    overflow m ~live_top:(min live_top (seg_limit m)) ~need

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let live_chain r =
  let rec go acc = function
    | None -> List.rev acc
    | Some r -> go (r :: acc) r.link
  in
  go [] (Some r)

let chain_depth m = List.length (live_chain m.sr) - 1

let segment_words_live m =
  List.fold_left (fun acc r -> acc + max r.size 0) 0 (live_chain m.sr)

(* Walk the whole logical stack from the current frame, reading procedure
   names out of the return addresses -- the paper's debugger/exception-
   handler stack walk, crossing segment boundaries through the record
   chain. *)
let backtrace ?(limit = 64) m =
  let names = ref [] in
  let count = ref 0 in
  let rec in_segment seg f link =
    if !count < limit then
      match seg.(f) with
      | Retaddr r ->
          incr count;
          names := r.rcode.cname :: !names;
          if f - r.rdisp >= 0 && r.rdisp > 0 then
            in_segment seg (f - r.rdisp) link
      | Underflow_mark -> (
          match link with
          | Some k when not (is_shot k) -> at_record k
          | _ -> ())
      | _ -> ()
  and at_record k =
    match k.ret with
    | Retaddr r when !count < limit ->
        incr count;
        names := r.rcode.cname :: !names;
        let f = k.base + k.current - r.rdisp in
        if f >= k.base then in_segment k.seg f k.link
    | _ -> ()
  in
  in_segment m.sr.seg m.fp m.sr.link;
  List.rev !names

let walk_frames seg ~base ~top =
  let rec go acc f =
    let acc = f :: acc in
    match seg.(base + f) with
    | Retaddr r when r.rdisp > 0 && f - r.rdisp >= 0 -> go acc (f - r.rdisp)
    | _ -> List.rev acc
  in
  if top < 0 then [] else go [] top
