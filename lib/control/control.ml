open Rt

type overflow_policy = As_call1cc | As_callcc
type oneshot_seal = Whole_segment | Seal_displacement of int
type promotion_strategy = Eager | Shared_flag
type capture_strategy = Seal | Copy_on_capture

type config = {
  seg_words : int;
  copy_bound : int;
  overflow_policy : overflow_policy;
  hysteresis_words : int;
  oneshot_seal : oneshot_seal;
  cache_enabled : bool;
  cache_max : int;
  promotion : promotion_strategy;
  capture : capture_strategy;
  debug : bool;
}

let default_config =
  {
    seg_words = 16 * 1024;
    copy_bound = 128;
    overflow_policy = As_call1cc;
    hysteresis_words = 64;
    oneshot_seal = Whole_segment;
    cache_enabled = true;
    cache_max = 1024;
    promotion = Shared_flag;
    capture = Seal;
    (* The environment only seeds the default; the live toggle is the
       per-machine config field, so one session's tracing can never leak
       into another's. *)
    debug = Sys.getenv_opt "CONTROL_DEBUG" <> None;
  }

(* Number of size classes in the segment cache.  Class [c] (for
   [c < cache_classes - 1]) holds arrays of [c+1 .. c+2) times
   [seg_words]; the last class is a mixed overflow bucket for everything
   larger, searched first-fit. *)
let cache_classes = 8

type t = {
  cfg : config;
  stats : Stats.t;
  mutable sr : stack_record;
  mutable fp : int;
  mutable cache : value array list array;
  mutable cache_len : int;
  mutable cache_words : int;
  mutable dbg_rid : int;
  mutable dbg_ids : (stack_record * int) list;
}

(* ------------------------------------------------------------------ *)
(* Segment allocation and the segment cache (paper Section 3.2)        *)
(* ------------------------------------------------------------------ *)

(* Oversized requests (multi-shot reinstatement of a big record, overflow
   with a huge frame) are rounded up to a multiple of [seg_words], so the
   arrays they allocate have recyclable sizes: [release_segment] accepts
   any array of at least [seg_words].  Without the rounding every
   oversized allocation was a one-off the cache could never serve
   again. *)
let seg_request m words =
  let sw = m.cfg.seg_words in
  if words <= sw then sw else (words + sw - 1) / sw * sw

(* The size class of an array of [len] words ([len >= seg_words]).  For a
   request already rounded by [seg_request], every array in its class (and
   in any higher class) is large enough, so the common path is an O(1) pop
   off the class head; only the mixed last bucket needs a length check. *)
let class_of m len =
  let c = (len / m.cfg.seg_words) - 1 in
  if c >= cache_classes then cache_classes - 1 else c

let pop_class m ~words i =
  if i < cache_classes - 1 then
    match m.cache.(i) with
    | seg :: rest ->
        m.cache.(i) <- rest;
        Some seg
    | [] -> None
  else
    (* Mixed top bucket: first-fit within the bucket only. *)
    let rec take skipped = function
      | seg :: rest when words <= Array.length seg ->
          m.cache.(i) <- List.rev_append skipped rest;
          Some seg
      | seg :: rest -> take (seg :: skipped) rest
      | [] -> None
    in
    take [] m.cache.(i)

let alloc_segment m words =
  let words = seg_request m words in
  let fresh () =
    m.stats.seg_allocs <- m.stats.seg_allocs + 1;
    m.stats.seg_alloc_words <- m.stats.seg_alloc_words + words;
    Array.make words Void
  in
  if not m.cfg.cache_enabled then fresh ()
  else begin
    let c = class_of m words in
    let seg =
      match pop_class m ~words c with
      | Some _ as s ->
          m.stats.cache_class_hits <- m.stats.cache_class_hits + 1;
          s
      | None ->
          (* Exact class empty: bounded upward scan — any array in a
             higher class is big enough by construction. *)
          m.stats.cache_class_misses <- m.stats.cache_class_misses + 1;
          let rec up i =
            if i >= cache_classes then None
            else
              match pop_class m ~words i with
              | Some _ as s -> s
              | None -> up (i + 1)
          in
          up (c + 1)
    in
    match seg with
    | Some seg ->
        m.cache_len <- m.cache_len - 1;
        m.cache_words <- m.cache_words - Array.length seg;
        m.stats.cache_hits <- m.stats.cache_hits + 1;
        seg
    | None -> fresh ()
  end

let release_segment m seg =
  let len = Array.length seg in
  if m.cfg.cache_enabled && len >= m.cfg.seg_words && m.cache_len < m.cfg.cache_max
  then begin
    let c = class_of m len in
    m.cache.(c) <- seg :: m.cache.(c);
    m.cache_len <- m.cache_len + 1;
    m.cache_words <- m.cache_words + len;
    if m.cache_words > m.stats.cache_words_hw then
      m.stats.cache_words_hw <- m.cache_words;
    m.stats.cache_releases <- m.stats.cache_releases + 1
  end

let clear_cache m =
  Array.fill m.cache 0 cache_classes [];
  m.cache_len <- 0;
  m.cache_words <- 0

(* The active record wholly owns its array iff it covers it entirely;
   only then may the array be recycled when the stack is abandoned. *)
let wholly_owned sr = sr.base = 0 && sr.size = Array.length sr.seg

let fresh_record seg ~base ~size ~link =
  { seg; base; size; current = 0; link; ret = Void; promoted = ref false }

(* Debug record identities (CONTROL_DEBUG traces only).  The table is
   populated solely under [cfg.debug] — identity lookups are O(n) in the
   number of live records traced, which is fine for a trace aid but must
   never be paid (or leak) on production paths.  It lives in the machine
   itself (it used to be module-global), so one machine's traced records
   are never pinned by another machine's lifetime, and a machine's table
   dies with the machine. *)
let id_of m (r : stack_record) =
  if not m.cfg.debug then 0
  else
    match List.find_opt (fun (r', _) -> r' == r) m.dbg_ids with
    | Some (_, i) -> i
    | None ->
        m.dbg_rid <- m.dbg_rid + 1;
        m.dbg_ids <- (r, m.dbg_rid) :: m.dbg_ids;
        m.dbg_rid

let dbg fmt = Printf.eprintf fmt

let create ?stats cfg =
  assert (cfg.seg_words >= 64);
  assert (cfg.copy_bound >= 16);
  (match cfg.oneshot_seal with
  | Seal_displacement h -> assert (h >= 1)
  | Whole_segment -> ());
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let m =
    {
      cfg;
      stats;
      sr = fresh_record [||] ~base:0 ~size:0 ~link:None;
      fp = 0;
      cache = Array.make cache_classes [];
      cache_len = 0;
      cache_words = 0;
      dbg_rid = 0;
      dbg_ids = [];
    }
  in
  let seg = alloc_segment m cfg.seg_words in
  m.sr <- fresh_record seg ~base:0 ~size:(Array.length seg) ~link:None;
  m

let init_frame m ret0 =
  (* Recycle the previous run's segment when nothing else can reference
     it (it covers its whole array, so no sealed record shares it). *)
  if m.sr.base = 0 && m.sr.size = Array.length m.sr.seg && m.sr.size > 0 then
    release_segment m m.sr.seg;
  let seg = alloc_segment m m.cfg.seg_words in
  m.sr <- fresh_record seg ~base:0 ~size:(Array.length seg) ~link:None;
  m.fp <- 0;
  seg.(0) <- ret0

let seg_limit m = m.sr.base + m.sr.size
let room m n = m.fp + n <= seg_limit m
let frame_ret m = m.sr.seg.(m.fp)

(* ------------------------------------------------------------------ *)
(* Record classification                                               *)
(* ------------------------------------------------------------------ *)

let is_shot r = r.size = -1
let is_multi r = r.current = r.size || !(r.promoted)

let retaddr_of = function
  | Retaddr r -> r
  | v -> Values.err "control: corrupt frame: expected return address" [ v ]

(* ------------------------------------------------------------------ *)
(* Promotion (paper Section 3.3)                                       *)
(* ------------------------------------------------------------------ *)

let promote_chain m link =
  match m.cfg.promotion with
  | Shared_flag -> (
      (* All adjacent one-shot records share one boxed flag: one store. *)
      match link with
      | Some r when (not (is_shot r)) && not (is_multi r) ->
          r.promoted := true;
          m.stats.promotions <- m.stats.promotions + 1
      | _ -> ())
  | Eager ->
      (* Linear walk, stopping at the first multi-shot record: everything
         below it was promoted when that record was created. *)
      let rec go = function
        | Some r when (not (is_shot r)) && not (is_multi r) ->
            r.size <- r.current;
            m.stats.promotions <- m.stats.promotions + 1;
            go r.link
        | _ -> ()
      in
      go link

(* New one-shot records join the promotion-flag group of the one-shot
   record directly below them, so a single shared-flag store promotes the
   whole contiguous group. *)
let inherit_flag m link =
  match m.cfg.promotion with
  | Eager -> ref false
  | Shared_flag -> (
      match link with
      | Some r when (not (is_shot r)) && not (is_multi r) -> r.promoted
      | _ -> ref false)

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)
(* ------------------------------------------------------------------ *)

(* The classic baseline: copy the occupied portion to a fresh heap block
   at capture time.  The running stack is left untouched (no sealing, no
   underflow mark), so capture is O(occupied) but the running code is
   unaffected. *)
let capture_multi_copying m =
  let sr = m.sr in
  let occupied = m.fp - sr.base in
  if occupied = 0 && sr.seg.(m.fp) = Underflow_mark then begin
    let k =
      match sr.link with
      | Some k -> k
      | None -> Values.err "capture at stack bottom with no link" []
    in
    promote_chain m (Some k);
    m.stats.captures_multi <- m.stats.captures_multi + 1;
    k
  end
  else begin
    let copy = Array.make (max occupied 1) Underflow_mark in
    Array.blit sr.seg sr.base copy 0 occupied;
    m.stats.words_copied <- m.stats.words_copied + occupied;
    m.stats.seg_allocs <- m.stats.seg_allocs + 1;
    m.stats.seg_alloc_words <- m.stats.seg_alloc_words + max occupied 1;
    let k =
      {
        seg = copy;
        base = 0;
        size = occupied;
        current = occupied;
        link = sr.link;
        ret = sr.seg.(m.fp);
        promoted = ref true;
      }
    in
    ignore (retaddr_of k.ret);
    promote_chain m k.link;
    m.stats.captures_multi <- m.stats.captures_multi + 1;
    k
  end

let capture_multi_sealing m =
  let sr = m.sr in
  if sr.seg.(m.fp) = Underflow_mark then begin
    (* Tail-position capture on an empty segment: the link record itself is
       the continuation (paper Section 3.2). *)
    let k =
      match sr.link with
      | Some k -> k
      | None -> Values.err "capture at stack bottom with no link" []
    in
    if not (is_multi k) then begin
      (* Promote the whole chain starting at k itself. *)
      (match m.cfg.promotion with
      | Shared_flag ->
          k.promoted := true;
          m.stats.promotions <- m.stats.promotions + 1
      | Eager ->
          k.size <- k.current;
          m.stats.promotions <- m.stats.promotions + 1;
          promote_chain m k.link)
    end;
    m.stats.captures_multi <- m.stats.captures_multi + 1;
    k
  end
  else begin
    let occupied = m.fp - sr.base in
    let k =
      {
        seg = sr.seg;
        base = sr.base;
        size = occupied;
        current = occupied;
        link = sr.link;
        ret = sr.seg.(m.fp);
        promoted = ref true;
      }
    in
    ignore (retaddr_of k.ret);
    sr.seg.(m.fp) <- Underflow_mark;
    sr.base <- m.fp;
    sr.size <- sr.size - occupied;
    sr.link <- Some k;
    promote_chain m k.link;
    m.stats.captures_multi <- m.stats.captures_multi + 1;
    k
  end

let capture_multi m =
  match m.cfg.capture with
  | Seal -> capture_multi_sealing m
  | Copy_on_capture -> capture_multi_copying m

let capture_oneshot m =
  let sr = m.sr in
  if sr.seg.(m.fp) = Underflow_mark then begin
    let k =
      match sr.link with
      | Some k -> k
      | None -> Values.err "capture at stack bottom with no link" []
    in
    m.stats.captures_oneshot <- m.stats.captures_oneshot + 1;
    if m.cfg.debug then dbg "cap1cc(empty) -> r%d\n" (id_of m k);
    k
  end
  else begin
    let occupied = m.fp - sr.base in
    let ret = sr.seg.(m.fp) in
    ignore (retaddr_of ret);
    m.stats.captures_oneshot <- m.stats.captures_oneshot + 1;
    match m.cfg.oneshot_seal with
    | Seal_displacement headroom when sr.size - occupied - headroom >= 64 ->
        (* Section 3.4: seal at a fixed displacement above the occupied
           portion; continue on the remainder of the same segment. *)
        let sealed = occupied + headroom in
        let k =
          {
            seg = sr.seg;
            base = sr.base;
            size = sealed;
            current = occupied;
            link = sr.link;
            ret;
            promoted = inherit_flag m sr.link;
          }
        in
        sr.base <- sr.base + sealed;
        sr.size <- sr.size - sealed;
        sr.link <- Some k;
        m.fp <- sr.base;
        sr.seg.(m.fp) <- Underflow_mark;
        k
    | _ ->
        (* Encapsulate the entire segment; continue on a fresh one.  The
           active record struct is referenced only through [m.sr] (the
           same privacy invariant the in-place unseal relies on when it
           mutates the active record's bounds), so instead of building a
           new sealed record and dropping this one, recycle the struct:
           its seg/base/size/link fields are already exactly the sealed
           record's, leaving one store each for the occupancy, return
           slot and promotion-flag group.  The capture-switch loop of
           experiment e2 runs this once per context switch. *)
        let k = sr in
        k.current <- occupied;
        k.ret <- ret;
        k.promoted <- inherit_flag m k.link;
        let seg = alloc_segment m m.cfg.seg_words in
        m.sr <-
          fresh_record seg ~base:0 ~size:(Array.length seg) ~link:(Some k);
        m.fp <- 0;
        seg.(0) <- Underflow_mark;
        if m.cfg.debug then dbg "cap1cc -> r%d (seg=%d base=%d cur=%d)\n" (id_of m k) (Array.length k.seg) k.base k.current;
        k
  end

(* ------------------------------------------------------------------ *)
(* Invocation                                                          *)
(* ------------------------------------------------------------------ *)

(* Split a saved segment so that the portion to be copied is at most the
   copy bound, walking frame boundaries top-down via the displacement
   words (paper Section 3.2; details in Hieb/Dybvig/Bruggeman PLDI'90). *)
let split_for_copy m k content =
  let bound = m.cfg.copy_bound in
  let top = content - (retaddr_of k.ret).rdisp in
  let s = ref top in
  let continue = ref (top > 0 && content - top <= bound) in
  while !continue do
    match k.seg.(k.base + !s) with
    | Retaddr r ->
        let p = !s - r.rdisp in
        if p > 0 && content - p <= bound then s := p else continue := false
    | _ -> continue := false
  done;
  let s = if content - !s <= bound then !s else top in
  if s <= 0 then content (* single oversized frame: copy everything *)
  else begin
    let krest =
      {
        seg = k.seg;
        base = k.base;
        size = s;
        current = s;
        link = k.link;
        ret = k.seg.(k.base + s);
        promoted = ref true;
      }
    in
    ignore (retaddr_of krest.ret);
    k.seg.(k.base + s) <- Underflow_mark;
    k.base <- k.base + s;
    k.size <- content - s;
    k.current <- content - s;
    k.link <- Some krest;
    m.stats.splits <- m.stats.splits + 1;
    content - s
  end

(* Unseal fast path (the capture-then-immediately-invoke loop pattern).
   When the multi-shot record being invoked is the region directly below
   the current *empty* base of the same segment — i.e. nothing has been
   pushed since it was sealed and its frames are still physically intact
   in place — reinstatement does not need to copy the content back above
   the seal.  Instead the seal is reopened in place: only the topmost
   saved frame (the frame the resumed code executes in, which is about to
   be mutated) is copied aside into the record so a later re-invocation
   can rebuild the identical state; everything below it stays sealed,
   zero-copy, as a fresh record that the reopened frame underflows into
   when it eventually returns.  Escape-heavy workloads (ctak) thus pay
   one frame of copying per invocation instead of the whole inter-capture
   region. *)
let unseal_in_place m k (r : retaddr) =
  let sr = m.sr in
  let seg = k.seg in
  let s = k.current - r.rdisp in
  let boundary = k.base + s in
  let krest =
    {
      seg;
      base = k.base;
      size = s;
      current = s;
      link = k.link;
      ret = seg.(boundary);
      promoted = ref true;
    }
  in
  ignore (retaddr_of krest.ret);
  (* Preserve the top frame — including its return slot, which doubles as
     [krest]'s displaced return — before the seal boundary moves. *)
  let top = Array.sub seg boundary r.rdisp in
  m.stats.words_copied <- m.stats.words_copied + r.rdisp;
  k.seg <- top;
  k.base <- 0;
  k.size <- r.rdisp;
  k.current <- r.rdisp;
  k.link <- Some krest;
  seg.(boundary) <- Underflow_mark;
  (* The active record grows downward over the reopened top frame. *)
  sr.size <- sr.size + (sr.base - boundary);
  sr.base <- boundary;
  sr.link <- Some krest;
  m.fp <- boundary;
  m.stats.unseals <- m.stats.unseals + 1;
  m.stats.invokes_multi <- m.stats.invokes_multi + 1;
  r

let reinstate_multi ?(unseal = true) m k =
  let sr = m.sr in
  let r = retaddr_of k.ret in
  if
    unseal && sr.seg == k.seg
    && (match sr.link with Some l -> l == k | None -> false)
    && k.base + k.size = sr.base
    && m.fp = sr.base
    && r.rdisp > 0
    && k.current > r.rdisp
  then unseal_in_place m k r
  else begin
    let content = k.current in
    let content =
      if content > m.cfg.copy_bound then split_for_copy m k content else content
    in
    let sr = m.sr in
    if sr.size < content then begin
      if wholly_owned sr && sr.seg != k.seg then release_segment m sr.seg;
      let seg = alloc_segment m (content + 64) in
      m.sr <- fresh_record seg ~base:0 ~size:(Array.length seg) ~link:None
    end;
    let sr = m.sr in
    Array.blit k.seg k.base sr.seg sr.base content;
    m.stats.words_copied <- m.stats.words_copied + content;
    sr.link <- k.link;
    let r = retaddr_of k.ret in
    m.fp <- sr.base + content - r.rdisp;
    m.stats.invokes_multi <- m.stats.invokes_multi + 1;
    r
  end

let reinstate_oneshot m k =
  let sr = m.sr in
  if wholly_owned sr && sr.seg != k.seg then release_segment m sr.seg;
  (* Adopt [k]'s segment by recycling the outgoing active record struct
     (private to [m.sr], like the capture path) rather than allocating a
     fresh one: together with the recycled sealed record at capture,
     a one-shot capture/invoke round trip allocates one record, not
     three.  [k] itself cannot be reused — its identity must survive,
     shot-marked, inside the continuation value. *)
  sr.seg <- k.seg;
  sr.base <- k.base;
  sr.size <- k.size;
  sr.current <- 0;
  sr.link <- k.link;
  sr.ret <- Void;
  sr.promoted <- ref false;
  let r = retaddr_of k.ret in
  m.fp <- k.base + k.current - r.rdisp;
  (* Mark shot: both size fields set to -1 (paper Figure 4), and detach
     the record from its adopted segment and its chain — a shot record
     can never be reinstated, so keeping the pointers alive would only
     pin the segment (and every record below it) for as long as the dead
     continuation value happens to be reachable. *)
  k.size <- -1;
  k.current <- -1;
  k.seg <- [||];
  k.link <- None;
  k.ret <- Void;
  m.stats.invokes_oneshot <- m.stats.invokes_oneshot + 1;
  r

let reinstate ?(unseal = true) m k =
  if m.cfg.debug then
    dbg "reinstate r%d (size=%d current=%d shot=%b multi=%b)\n" (id_of m k)
      k.size k.current (is_shot k) (is_multi k);
  if is_shot k then raise Shot_continuation
  else if is_multi k then reinstate_multi ~unseal m k
  else reinstate_oneshot m k

let underflow m =
  match m.sr.link with
  | None -> None
  | Some k ->
      m.stats.underflows <- m.stats.underflows + 1;
      (* Returning through a seal is a descent that will keep descending:
         take the bulk-copy path (bounded by [copy_bound]) rather than
         reopening one frame at a time. *)
      Some (reinstate ~unseal:false m k)

(* ------------------------------------------------------------------ *)
(* Overflow as implicit continuation capture (paper Section 3.2)       *)
(* ------------------------------------------------------------------ *)

let overflow m ~live_top ~need =
  m.stats.overflows <- m.stats.overflows + 1;
  let sr = m.sr in
  let seg = sr.seg in
  let split, link' =
    match m.cfg.overflow_policy with
    | As_callcc ->
        (* Seal everything below the current frame as a multi-shot record;
           the entire new segment must refill before the next overflow, so
           no bouncing — but unwinding will copy it all back. *)
        if m.fp = sr.base then (m.fp, sr.link)
        else begin
          let occupied = m.fp - sr.base in
          let k =
            {
              seg;
              base = sr.base;
              size = occupied;
              current = occupied;
              link = sr.link;
              ret = seg.(m.fp);
              promoted = ref true;
            }
          in
          ignore (retaddr_of k.ret);
          seg.(m.fp) <- Underflow_mark;
          promote_chain m k.link;
          m.stats.captures_multi <- m.stats.captures_multi + 1;
          (m.fp, Some k)
        end
    | As_call1cc ->
        (* Seal as a one-shot record, copying up the top few frames
           (hysteresis) so an immediate return does not bounce. *)
        let s = ref m.fp in
        let continue = ref true in
        while !continue && !s > sr.base
              && live_top - !s < m.cfg.hysteresis_words do
          match seg.(!s) with
          | Retaddr r -> s := !s - r.rdisp
          | _ -> continue := false
        done;
        let s = !s in
        if s = sr.base then (s, sr.link)
        else begin
          let k =
            {
              seg;
              base = sr.base;
              size = sr.size;
              current = s - sr.base;
              link = sr.link;
              ret = seg.(s);
              promoted = inherit_flag m sr.link;
            }
          in
          ignore (retaddr_of k.ret);
          m.stats.captures_oneshot <- m.stats.captures_oneshot + 1;
          (s, Some k)
        end
  in
  let live = live_top - split in
  let abandoned_whole = split = sr.base in
  let old_seg = seg in
  let old_owned = wholly_owned sr in
  let newlen = max m.cfg.seg_words (need + live + 16) in
  let nseg = alloc_segment m newlen in
  Array.blit seg split nseg 0 live;
  m.stats.words_copied <- m.stats.words_copied + live;
  (* When a record was sealed at [split], the copied frame's return slot
     must become the underflow mark; when the split landed at the segment
     base, slot 0 is already the bottom frame's correct return slot
     (underflow mark or the halt return address). *)
  if split > sr.base then nseg.(0) <- Underflow_mark;
  m.sr <- fresh_record nseg ~base:0 ~size:(Array.length nseg) ~link:link';
  m.fp <- m.fp - split;
  if abandoned_whole && old_owned && old_seg != nseg then
    release_segment m old_seg

let ensure_room m ~live_top ~need =
  if not (room m need) then
    overflow m ~live_top:(min live_top (seg_limit m)) ~need

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let live_chain r =
  let rec go acc = function
    | None -> List.rev acc
    | Some r -> go (r :: acc) r.link
  in
  go [] (Some r)

let chain_depth m = List.length (live_chain m.sr) - 1

let segment_words_live m =
  List.fold_left (fun acc r -> acc + max r.size 0) 0 (live_chain m.sr)

(* Walk the whole logical stack from the current frame, reading procedure
   names out of the return addresses -- the paper's debugger/exception-
   handler stack walk, crossing segment boundaries through the record
   chain. *)
let backtrace ?(limit = 64) m =
  let names = ref [] in
  let count = ref 0 in
  let rec in_segment seg f link =
    if !count < limit then
      match seg.(f) with
      | Retaddr r ->
          incr count;
          names := r.rcode.cname :: !names;
          if f - r.rdisp >= 0 && r.rdisp > 0 then
            in_segment seg (f - r.rdisp) link
      | Underflow_mark -> (
          match link with
          | Some k when is_shot k ->
              (* The chain continues into a continuation that has been
                 shot: its frames are gone (the segment was adopted and
                 the record detached), so mark the hole instead of
                 silently truncating the walk. *)
              incr count;
              names := "<shot>" :: !names
          | Some k -> at_record k
          | None -> ())
      | _ -> ()
  and at_record k =
    match k.ret with
    | Retaddr r when !count < limit ->
        incr count;
        names := r.rcode.cname :: !names;
        let f = k.base + k.current - r.rdisp in
        if f >= k.base then in_segment k.seg f k.link
    | _ -> ()
  in
  in_segment m.sr.seg m.fp m.sr.link;
  List.rev !names

let walk_frames seg ~base ~top =
  let rec go acc f =
    let acc = f :: acc in
    match seg.(base + f) with
    | Retaddr r when r.rdisp > 0 && f - r.rdisp >= 0 -> go acc (f - r.rdisp)
    | _ -> List.rev acc
  in
  if top < 0 then [] else go [] top
