type t = {
  mutable enabled : bool;
  mutable instrs : int;
  mutable calls : int;
  mutable frames : int;
  mutable prim_calls : int;
  mutable prim_fast : int;
  mutable prim_deopts : int;
  mutable captures_multi : int;
  mutable captures_oneshot : int;
  mutable invokes_multi : int;
  mutable invokes_oneshot : int;
  mutable unseals : int;
  mutable underflows : int;
  mutable overflows : int;
  mutable splits : int;
  mutable promotions : int;
  mutable words_copied : int;
  mutable seg_allocs : int;
  mutable seg_alloc_words : int;
  mutable cache_hits : int;
  mutable cache_releases : int;
  mutable cache_class_hits : int;
  mutable cache_class_misses : int;
  mutable cache_words_hw : int;
  mutable closures_made : int;
  mutable boxes_made : int;
  mutable heap_frames : int;
  mutable heap_frame_words : int;
  mutable cow_copies : int;
  mutable tmpl_codes : int;
  mutable tmpl_steps : int;
  mutable tmpl_enters : int;
  mutable par_tasks : int;
  mutable par_steals : int;
  mutable par_switches : int;
}

let create ?(enabled = true) () =
  {
    enabled;
    instrs = 0;
    calls = 0;
    frames = 0;
    prim_calls = 0;
    prim_fast = 0;
    prim_deopts = 0;
    captures_multi = 0;
    captures_oneshot = 0;
    invokes_multi = 0;
    invokes_oneshot = 0;
    unseals = 0;
    underflows = 0;
    overflows = 0;
    splits = 0;
    promotions = 0;
    words_copied = 0;
    seg_allocs = 0;
    seg_alloc_words = 0;
    cache_hits = 0;
    cache_releases = 0;
    cache_class_hits = 0;
    cache_class_misses = 0;
    cache_words_hw = 0;
    closures_made = 0;
    boxes_made = 0;
    heap_frames = 0;
    heap_frame_words = 0;
    cow_copies = 0;
    tmpl_codes = 0;
    tmpl_steps = 0;
    tmpl_enters = 0;
    par_tasks = 0;
    par_steals = 0;
    par_switches = 0;
  }

(* [reset] clears the counters but leaves [enabled] alone. *)
let reset t =
  t.instrs <- 0;
  t.calls <- 0;
  t.frames <- 0;
  t.prim_calls <- 0;
  t.prim_fast <- 0;
  t.prim_deopts <- 0;
  t.captures_multi <- 0;
  t.captures_oneshot <- 0;
  t.invokes_multi <- 0;
  t.invokes_oneshot <- 0;
  t.unseals <- 0;
  t.underflows <- 0;
  t.overflows <- 0;
  t.splits <- 0;
  t.promotions <- 0;
  t.words_copied <- 0;
  t.seg_allocs <- 0;
  t.seg_alloc_words <- 0;
  t.cache_hits <- 0;
  t.cache_releases <- 0;
  t.cache_class_hits <- 0;
  t.cache_class_misses <- 0;
  t.cache_words_hw <- 0;
  t.closures_made <- 0;
  t.boxes_made <- 0;
  t.heap_frames <- 0;
  t.heap_frame_words <- 0;
  t.cow_copies <- 0;
  t.tmpl_codes <- 0;
  t.tmpl_steps <- 0;
  t.tmpl_enters <- 0;
  t.par_tasks <- 0;
  t.par_steals <- 0;
  t.par_switches <- 0

let to_rows t =
  [
    ("instrs", t.instrs);
    ("calls", t.calls);
    ("frames", t.frames);
    ("prim-calls", t.prim_calls);
    ("prim-fast", t.prim_fast);
    ("prim-deopts", t.prim_deopts);
    ("captures-multi", t.captures_multi);
    ("captures-oneshot", t.captures_oneshot);
    ("invokes-multi", t.invokes_multi);
    ("invokes-oneshot", t.invokes_oneshot);
    ("unseals", t.unseals);
    ("underflows", t.underflows);
    ("overflows", t.overflows);
    ("splits", t.splits);
    ("promotions", t.promotions);
    ("words-copied", t.words_copied);
    ("seg-allocs", t.seg_allocs);
    ("seg-alloc-words", t.seg_alloc_words);
    ("cache-hits", t.cache_hits);
    ("cache-releases", t.cache_releases);
    ("cache-class-hits", t.cache_class_hits);
    ("cache-class-misses", t.cache_class_misses);
    ("cache-words-hw", t.cache_words_hw);
    ("closures-made", t.closures_made);
    ("boxes-made", t.boxes_made);
    ("heap-frames", t.heap_frames);
    ("heap-frame-words", t.heap_frame_words);
    ("cow-copies", t.cow_copies);
    ("tmpl-codes", t.tmpl_codes);
    ("tmpl-steps", t.tmpl_steps);
    ("tmpl-enters", t.tmpl_enters);
    ("par-tasks", t.par_tasks);
    ("par-steals", t.par_steals);
    ("par-switches", t.par_switches);
  ]

let names = List.map fst (to_rows (create ()))
let get t name = List.assoc name (to_rows t)

let copy t = { t with instrs = t.instrs }

(* Field-for-field restore of a [copy] snapshot: the data-parallel
   worker uses it to keep bookkeeping evaluation (source-log replay)
   out of a session's measured counters. *)
let blit ~src ~dst =
  dst.enabled <- src.enabled;
  dst.instrs <- src.instrs;
  dst.calls <- src.calls;
  dst.frames <- src.frames;
  dst.prim_calls <- src.prim_calls;
  dst.prim_fast <- src.prim_fast;
  dst.prim_deopts <- src.prim_deopts;
  dst.captures_multi <- src.captures_multi;
  dst.captures_oneshot <- src.captures_oneshot;
  dst.invokes_multi <- src.invokes_multi;
  dst.invokes_oneshot <- src.invokes_oneshot;
  dst.unseals <- src.unseals;
  dst.underflows <- src.underflows;
  dst.overflows <- src.overflows;
  dst.splits <- src.splits;
  dst.promotions <- src.promotions;
  dst.words_copied <- src.words_copied;
  dst.seg_allocs <- src.seg_allocs;
  dst.seg_alloc_words <- src.seg_alloc_words;
  dst.cache_hits <- src.cache_hits;
  dst.cache_releases <- src.cache_releases;
  dst.cache_class_hits <- src.cache_class_hits;
  dst.cache_class_misses <- src.cache_class_misses;
  dst.cache_words_hw <- src.cache_words_hw;
  dst.closures_made <- src.closures_made;
  dst.boxes_made <- src.boxes_made;
  dst.heap_frames <- src.heap_frames;
  dst.heap_frame_words <- src.heap_frame_words;
  dst.cow_copies <- src.cow_copies;
  dst.tmpl_codes <- src.tmpl_codes;
  dst.tmpl_steps <- src.tmpl_steps;
  dst.tmpl_enters <- src.tmpl_enters;
  dst.par_tasks <- src.par_tasks;
  dst.par_steals <- src.par_steals;
  dst.par_switches <- src.par_switches

let pp fmt t =
  List.iter
    (fun (name, v) ->
      if v <> 0 then Format.fprintf fmt "%-18s %d@." name v)
    (to_rows t)
