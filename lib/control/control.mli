(** The paper's segmented-stack representation of control.

    The logical control stack is a linked list of stack segments described by
    {!Rt.stack_record} values.  This module implements every control
    operation of Bruggeman/Waddell/Dybvig (PLDI'96):

    - [call/cc] capture: seal the occupied part of the current segment
      (no copying) and continue on the remainder;
    - [call/1cc] capture: encapsulate the entire current segment and continue
      on a fresh segment drawn from the segment cache (or, under the
      [`Seal_displacement] policy of paper §3.4, seal at a fixed headroom
      above the occupied portion and continue on the remainder);
    - multi-shot invocation: copy the saved segment back, splitting segments
      larger than the copy bound so invocation cost is bounded;
    - one-shot invocation: adopt the saved segment directly (zero copy),
      recycling the abandoned segment through the cache, and mark the record
      shot;
    - promotion of one-shot records captured by [call/cc], either eagerly
      (the paper's implementation) or via the shared boxed flag the paper
      sketches in §3.3;
    - stack overflow as an implicit continuation capture, under either the
      [`As_call1cc] policy (with a hysteresis copy-up of the top frames to
      prevent bouncing) or the [`As_callcc] policy;
    - underflow: returning through the bottom frame of a segment implicitly
      invokes the record linked below it. *)

type overflow_policy = As_call1cc | As_callcc

type oneshot_seal = Whole_segment | Seal_displacement of int
(** What a [call/1cc] capture encapsulates: the entire current segment (the
    paper's main design), or the occupied portion plus a fixed headroom of
    [n] words, continuing on the remainder (§3.4 fragmentation mitigation). *)

type promotion_strategy = Eager | Shared_flag

type capture_strategy = Seal | Copy_on_capture
(** How [call/cc] captures: [Seal] is the paper's zero-copy sealing;
    [Copy_on_capture] is the classic pre-segmented baseline (Hieb/Dybvig
    PLDI'90's strawman) that copies the occupied stack into the heap at
    capture time and copies it back at every invocation. *)

type config = {
  seg_words : int;  (** default stack-segment size in words *)
  copy_bound : int;  (** multi-shot invocation copy bound in words *)
  overflow_policy : overflow_policy;
  hysteresis_words : int;  (** words copied up on [As_call1cc] overflow *)
  oneshot_seal : oneshot_seal;
  cache_enabled : bool;
  cache_max : int;  (** max segments retained in the cache *)
  promotion : promotion_strategy;
  capture : capture_strategy;
  debug : bool;
      (** trace captures/reinstatements to stderr.  Per-machine — the
          [CONTROL_DEBUG] environment variable only seeds
          {!default_config}. *)
}

val default_config : config
(** 16K-word segments, 128-word copy bound, [As_call1cc] overflow with
    64 words of hysteresis, whole-segment sealing, cache of up to 1024
    segments (the cache is dropped wholesale by {!clear_cache}, standing in
    for the paper's discard-at-GC), shared-flag promotion (the paper's
    O(1) scheme of §3.3; [Eager] remains available as a config/CLI
    option). *)

val cache_classes : int
(** Number of size classes in the segment cache.  Class [c] (for
    [c < cache_classes - 1]) holds arrays of [c+1 .. c+2) times
    [seg_words]; the last class is a mixed bucket for everything larger,
    searched first-fit. *)

type t = {
  cfg : config;
  stats : Stats.t;
  mutable sr : Rt.stack_record;  (** the current (active) stack record *)
  mutable fp : int;  (** frame pointer: absolute index into [sr.seg] *)
  mutable cache : Rt.value array list array;
      (** per-size-class free lists, [cache_classes] of them *)
  mutable cache_len : int;  (** total cached segments across classes *)
  mutable cache_words : int;  (** total words parked across classes *)
  mutable dbg_rid : int;
  mutable dbg_ids : (Rt.stack_record * int) list;
      (** per-machine debug identity table; populated only under
          [cfg.debug] *)
}

val id_of : t -> Rt.stack_record -> int
(** Stable per-machine identity of a record for trace output; [0] when
    [cfg.debug] is off.  The table lives in the machine, so records traced
    by one machine are never pinned by another machine's lifetime. *)

val create : ?stats:Stats.t -> config -> t
(** A machine with one initial segment and a bottom frame whose return slot
    is [ret0] — pass the halt return address there via {!init_frame}. *)

val init_frame : t -> Rt.value -> unit
(** [init_frame m ret0] resets the machine to a single frame at the base of
    the initial segment with return slot [ret0]. *)

val seg_limit : t -> int
(** First index past the active record's slice. *)

val room : t -> int -> bool
(** [room m n]: does the active frame have [n] words available? *)

val frame_ret : t -> Rt.value
(** Return slot of the current frame. *)

val is_shot : Rt.stack_record -> bool
val is_multi : Rt.stack_record -> bool
(** Multi-shot test: [current = size] (paper §3.2) or the shared promotion
    flag is set. *)

val capture_multi : t -> Rt.stack_record
(** The [call/cc] capture operation.  The current frame's return slot is
    displaced by the underflow mark; one-shot records in the captured chain
    are promoted. *)

val capture_oneshot : t -> Rt.stack_record
(** The [call/1cc] capture operation.  After it returns, [fp] addresses a
    fresh bottom frame whose return slot is the underflow mark and whose
    other slots are unwritten: the caller must populate slots [fp+1 ..]
    before dispatching. *)

val reinstate : ?unseal:bool -> t -> Rt.stack_record -> Rt.retaddr
(** Invoke a continuation record: dispatches on one-shot/multi-shot,
    performs splitting/copying or segment adoption, updates [sr]/[fp], and
    returns the return address at which to resume.

    Multi-shot invocation takes the in-place {e unseal} fast path (when
    [unseal], the default) if the record is the intact region directly
    below the current empty base of the same segment: the seal is
    reopened in place and only the topmost saved frame is copied aside
    into the record (so re-invocation rebuilds the same state); the rest
    stays sealed, zero-copy, as a record the reopened frame underflows
    into.  Counted in [Stats.unseals].  One-shot invocation adopts the
    record's segment, marks the record shot, and detaches its segment and
    chain pointers so the dead record pins nothing.
    @raise Rt.Shot_continuation on a second one-shot invocation. *)

val underflow : t -> Rt.retaddr option
(** Return through a bottom frame: implicitly invoke [sr.link] (with the
    unseal fast path disabled — a descent that has started returning
    through seals keeps descending, so the bounded bulk copy wins).
    [None] means the machine ran off the bottom of the whole stack
    (halt). *)

val clear_cache : t -> unit
(** Drop every cached segment (the paper lets the storage manager discard
    cached stacks at collection time). *)

val seg_request : t -> int -> int
(** Number of words a request for [n] words actually allocates: at least
    [seg_words], and oversized requests rounded up to a multiple of
    [seg_words] so the resulting arrays remain recyclable through the
    cache. *)

val alloc_segment : t -> int -> Rt.value array
(** Draw a segment of at least [seg_request m n] words.  The request's
    exact size class is popped O(1) (counting [cache_class_hits]); when
    that class is empty ([cache_class_misses]) a bounded upward scan
    tries the larger classes; any cache pop counts a [cache_hits]; else a
    fresh array is allocated (counting [seg_allocs]/[seg_alloc_words]). *)

val release_segment : t -> Rt.value array -> unit
(** Offer an abandoned segment to the cache, pushed O(1) onto its size
    class.  Accepted (counting a [cache_releases], and updating the
    [cache_words_hw] high-water mark) when caching is enabled, the array
    is at least [seg_words] long and the cache is below [cache_max]. *)

val ensure_room : t -> live_top:int -> need:int -> unit
(** Guarantee [need] words of space above [fp], treating exhaustion as an
    implicit continuation capture per the overflow policy.  [live_top] is
    the first index past the live words of the current partial frame
    ([fp .. live_top) moves to the new segment). *)

val live_chain : Rt.stack_record -> Rt.stack_record list
(** The record chain starting at a record (for tests/debug). *)

val chain_depth : t -> int
(** Number of records below the active one. *)

val segment_words_live : t -> int
(** Total words of all segments reachable from the active record, including
    one-shot free space — the paper's §3.4 fragmentation measure. *)

val backtrace : ?limit:int -> t -> string list
(** Procedure names of the frames on the logical stack, innermost first,
    walking the displacement words and crossing segment boundaries through
    the record chain (the paper's stack walk for debuggers and exception
    handlers).  A shot record in the chain contributes a ["<shot>"]
    sentinel frame (its frames are gone) and ends the walk.  At most
    [limit] frames (default 64). *)

val walk_frames : Rt.value array -> base:int -> top:int -> int list
(** Frame base offsets (relative to [base], descending from [top]) obtained
    by walking the displacement words, i.e. the paper's stack walker. *)
