(** Instrumentation counters for the control substrate and the VMs.

    Counters are the reproduction's stand-in for the paper's hardware
    measurements: copy volume, allocation volume, and dispatch counts scale
    the same way the paper's instruction counts and memory numbers do. *)

type t = {
  mutable enabled : bool;
      (** Toggle for the hot-path counters ([instrs], [calls], [frames],
          [prim_calls], ...): the VM dispatch loops skip those increments
          when false, so production dispatch does not pay for
          observability.  Rare-event counters (overflows, captures,
          splits, ...) are always maintained.  Default: true; [reset]
          leaves it alone. *)
  mutable instrs : int;  (** VM instructions dispatched *)
  mutable calls : int;  (** closure calls (incl. tail calls) *)
  mutable frames : int;  (** non-tail frames pushed *)
  mutable prim_calls : int;
  mutable prim_fast : int;
      (** fused [Prim_call*] sites taking the inline-cache fast path *)
  mutable prim_deopts : int;
      (** fused [Prim_call*] sites whose guard failed (primitive
          redefined): the generic call path was taken *)
  mutable captures_multi : int;
  mutable captures_oneshot : int;
  mutable invokes_multi : int;
  mutable invokes_oneshot : int;
  mutable unseals : int;
      (** multi-shot invocations served by the in-place unseal fast path
          (adjacent sealed record reopened; only its top frame copied) *)
  mutable underflows : int;
  mutable overflows : int;
  mutable splits : int;
  mutable promotions : int;  (** one-shot records promoted (eager or flagged) *)
  mutable words_copied : int;  (** stack words copied (invoke + overflow) *)
  mutable seg_allocs : int;  (** fresh segments allocated *)
  mutable seg_alloc_words : int;
  mutable cache_hits : int;
      (** segment-cache pops that satisfied an allocation (any class) *)
  mutable cache_releases : int;
  mutable cache_class_hits : int;
      (** pops satisfied by the request's exact size class (O(1) path) *)
  mutable cache_class_misses : int;
      (** requests whose exact size class was empty (fresh allocation or
          higher-class scan) *)
  mutable cache_words_hw : int;
      (** high-water mark of words parked in the cache across all classes *)
  mutable closures_made : int;
  mutable boxes_made : int;
  mutable heap_frames : int;  (** heap VM: frames allocated *)
  mutable heap_frame_words : int;
  mutable cow_copies : int;  (** heap VM: copy-on-write frame copies *)
  mutable tmpl_codes : int;
      (** closure VM: code objects template-compiled in this session *)
  mutable tmpl_steps : int;
      (** closure VM: step closures emitted by template compilation *)
  mutable tmpl_enters : int;
      (** closure VM: template (re-)entries — one per landing, i.e. per
          slow-path control transfer back into compiled steps *)
  mutable par_tasks : int;
      (** data-parallel layer: chunked tasks executed by this session
          (gated under [enabled], like the other hot-path counters) *)
  mutable par_steals : int;
      (** data-parallel layer: tasks obtained by stealing from another
          shard's deque rather than popping the shard's own *)
  mutable par_switches : int;
      (** data-parallel layer: one-shot continuation task switches
          performed by the in-chunk fiber scheduler *)
}

val create : ?enabled:bool -> unit -> t
val reset : t -> unit
val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Restore every field of [dst] (including [enabled]) from [src].
    With {!copy} this gives snapshot/restore, which the data-parallel
    worker uses to keep its source-log replay out of the measured
    per-shard counters. *)

val get : t -> string -> int
(** Look a counter up by name; raises [Not_found] for unknown names. *)

val names : string list
val to_rows : t -> (string * int) list
val pp : Format.formatter -> t -> unit
