(** Instrumentation counters for the control substrate and the VMs.

    Counters are the reproduction's stand-in for the paper's hardware
    measurements: copy volume, allocation volume, and dispatch counts scale
    the same way the paper's instruction counts and memory numbers do. *)

type t = {
  mutable enabled : bool;
      (** Toggle for the hot-path counters ([instrs], [calls], [frames],
          [prim_calls], ...): the VM dispatch loops skip those increments
          when false, so production dispatch does not pay for
          observability.  Rare-event counters (overflows, captures,
          splits, ...) are always maintained.  Default: true; [reset]
          leaves it alone. *)
  mutable instrs : int;  (** VM instructions dispatched *)
  mutable calls : int;  (** closure calls (incl. tail calls) *)
  mutable frames : int;  (** non-tail frames pushed *)
  mutable prim_calls : int;
  mutable prim_fast : int;
      (** fused [Prim_call*] sites taking the inline-cache fast path *)
  mutable prim_deopts : int;
      (** fused [Prim_call*] sites whose guard failed (primitive
          redefined): the generic call path was taken *)
  mutable captures_multi : int;
  mutable captures_oneshot : int;
  mutable invokes_multi : int;
  mutable invokes_oneshot : int;
  mutable underflows : int;
  mutable overflows : int;
  mutable splits : int;
  mutable promotions : int;  (** one-shot records promoted (eager or flagged) *)
  mutable words_copied : int;  (** stack words copied (invoke + overflow) *)
  mutable seg_allocs : int;  (** fresh segments allocated *)
  mutable seg_alloc_words : int;
  mutable cache_hits : int;
  mutable cache_releases : int;
  mutable closures_made : int;
  mutable boxes_made : int;
  mutable heap_frames : int;  (** heap VM: frames allocated *)
  mutable heap_frame_words : int;
  mutable cow_copies : int;  (** heap VM: copy-on-write frame copies *)
}

val create : ?enabled:bool -> unit -> t
val reset : t -> unit
val copy : t -> t

val get : t -> string -> int
(** Look a counter up by name; raises [Not_found] for unknown names. *)

val names : string list
val to_rows : t -> (string * int) list
val pp : Format.formatter -> t -> unit
