(* The heap VM is the engine instantiated at the heap frame policy:
   [Heap_policy] supplies the linked-frame control representation,
   [Heap_core] is the shared dispatch loop of lib/engine/engine_core.ml
   compiled against it (see the codegen rule in ./dune). *)

type t = Heap_policy.t

exception Vm_fuel_exhausted = Engine.Vm_fuel_exhausted

let create = Heap_policy.create
let stats = Engine.stats
let globals = Engine.globals
let output = Engine.output
let run = Heap_core.run
let run_program = Heap_core.run_program
let eval = Heap_core.eval
let eval_datum = Heap_core.eval_datum
