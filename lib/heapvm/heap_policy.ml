open Rt
open Engine

(* The heap frame policy (the Appel/MacQueen-style baseline),
   instantiating the engine's dispatch loop ([Heap_core], generated from
   lib/engine/engine_core.ml).  Each frame is a separately allocated
   record linked to its parent; capture is O(1) pointer sharing and
   shared frames are copied on write.  The policy owns the frame
   allocator, the copy-on-write discipline, the one-shot guard lists,
   and every control transfer. *)

type state = { mutable frame : hframe }

type t = state Engine.vm

(* Landing constants: every call, tail call and return moves to a
   different slot array, so control transfers always relaunch; a [Call]
   counts the frame its generic path allocates even for a pure
   primitive. *)
let fast = false
let frames_on_pure_call = true

let slots (vm : t) = vm.pol.frame.hslots
let frame_base (_ : t) = 0

(* A heap frame is allocated at the full extent its code can touch, so
   the Enter/Return room tests never fail. *)
let limit (_ : t) = max_int
let set_fp (_ : t) (_ : int) = ()

let root_frame () =
  { hslots = [||]; hret = Void; hparent = None; hshared = false; hguards = [] }

let alloc_frame vm ~words ~ret ~parent ~guards =
  vm.stats.Stats.heap_frames <- vm.stats.Stats.heap_frames + 1;
  vm.stats.Stats.heap_frame_words <- vm.stats.Stats.heap_frame_words + words;
  {
    hslots = Array.make words Void;
    hret = ret;
    hparent = parent;
    hshared = false;
    hguards = guards;
  }

(* Copy-on-write: frames reachable from a multi-shot continuation are
   immutable; the running computation writes into a private copy. *)
let writable (vm : t) =
  let f = vm.pol.frame in
  if not f.hshared then f
  else begin
    vm.stats.Stats.cow_copies <- vm.stats.Stats.cow_copies + 1;
    let f' = { f with hslots = Array.copy f.hslots; hshared = false } in
    vm.pol.frame <- f';
    f'
  end

(* A slot write goes through the copy-on-write check and returns the
   (possibly fresh) array the landing must continue on. *)
let[@inline] set (vm : t) (_ : value array) fp i v =
  let f = writable vm in
  f.hslots.(fp + i) <- v;
  f.hslots

let pure_call_skips (vm : t) site = site.cs_ret == vm.pol.frame.hret

let consume_guards guards =
  List.iter
    (fun h ->
      if not h.hcont_promoted then
        if h.hcont_shot then raise Shot_continuation else h.hcont_shot <- true)
    guards

let do_return (vm : t) =
  let f = vm.pol.frame in
  consume_guards f.hguards;
  match f.hret with
  | Retaddr r -> (
      vm.code <- r.rcode;
      vm.pc <- r.rpc;
      match f.hparent with
      | Some p ->
          (* Shared-ness propagates downward as control returns, keeping
             captured ancestors copy-on-write. *)
          if f.hshared then p.hshared <- true;
          vm.pol.frame <- p
      | None -> ())
  | v -> Values.err "heapvm: corrupt frame: bad return slot" [ v ]

let promote_guards_from frame_opt extra =
  List.iter (fun h -> h.hcont_promoted <- true) extra;
  let rec walk = function
    | None -> ()
    | Some f ->
        List.iter (fun h -> h.hcont_promoted <- true) f.hguards;
        walk f.hparent
  in
  walk frame_opt

let rec happly (vm : t) f args ~ret ~parent ~guards =
  match f with
  | Closure c ->
      let n = Array.length args in
      let words = max c.code.frame_words (2 + n) in
      let fr = alloc_frame vm ~words ~ret ~parent ~guards in
      fr.hslots.(1) <- f;
      Array.blit args 0 fr.hslots 2 n;
      vm.pol.frame <- fr;
      vm.code <- c.code;
      vm.pc <- 0;
      vm.nargs <- n;
      if vm.stats.Stats.enabled then
        vm.stats.Stats.calls <- vm.stats.Stats.calls + 1
  | Prim { pfn = Pure fn; parity; pname } ->
      if not (Bytecode.arity_matches parity (Array.length args)) then
        Values.err (pname ^ ": wrong number of arguments") [];
      if vm.stats.Stats.enabled then
        vm.stats.Stats.prim_calls <- vm.stats.Stats.prim_calls + 1;
      vm.acc <- fn args;
      (* A tail call passes the caller's own return context; returning
         through it also consumes any one-shot guards. *)
      if ret == vm.pol.frame.hret then do_return vm
  | Prim { pfn = Special sp; parity; pname } ->
      if not (Bytecode.arity_matches parity (Array.length args)) then
        Values.err (pname ^ ": wrong number of arguments") [];
      if vm.stats.Stats.enabled then
        vm.stats.Stats.prim_calls <- vm.stats.Stats.prim_calls + 1;
      special vm sp args ~ret ~parent ~guards
  | Hcont k -> invoke_hcont vm k args
  | v -> Values.err "application of non-procedure" [ v ]

and invoke_hcont vm k args =
  let v =
    if Array.length args = 1 then args.(0) else Mvals (Array.to_list args)
  in
  (* Fast path: the machine already sits at the continuation's winder
     chain (physical equality; with the Scheme-level winders prelude
     both are always []).  Otherwise run the wind trampoline; the shot
     check then fires only after the winds, as in the Scheme wrapper. *)
  if k.hcont_winders == vm.winders then reinstate_hcont vm k v
  else
    wind_go vm (Hcont k) v k.hcont_winders
      ~ret:(Retaddr { rcode = vm.code; rpc = vm.pc; rdisp = 0 })
      ~parent:(Some vm.pol.frame) ~guards:[]

and reinstate_hcont vm k v =
  if k.hcont_one_shot && not k.hcont_promoted then begin
    if k.hcont_shot then raise Shot_continuation;
    k.hcont_shot <- true;
    vm.stats.Stats.invokes_oneshot <- vm.stats.Stats.invokes_oneshot + 1
  end
  else vm.stats.Stats.invokes_multi <- vm.stats.Stats.invokes_multi + 1;
  vm.acc <- v;
  (match k.hcont_frame with
  | Some f -> vm.pol.frame <- f
  | None -> vm.pol.frame <- root_frame ());
  match k.hcont_ret with
  | Retaddr r ->
      vm.code <- r.rcode;
      vm.pc <- r.rpc
  | v -> Values.err "heapvm: corrupt continuation" [ v ]

(* Call a 0-argument guard thunk so that its return resumes [ret]
   (pointing into one of the hidden resume code objects) against the
   driver frame [frame].  A pure primitive pushes no frame and returns
   by falling through, so it is stepped inline to the same state a
   closure's normal return would reach. *)
and call_guard vm g ~ret ~frame =
  match g with
  | Prim { pfn = Pure fn; parity; pname } ->
      if not (Bytecode.arity_matches parity 0) then
        Values.err (pname ^ ": wrong number of arguments") [];
      if vm.stats.Stats.enabled then
        vm.stats.Stats.prim_calls <- vm.stats.Stats.prim_calls + 1;
      vm.acc <- fn [||];
      vm.pol.frame <- frame;
      (match ret with
      | Retaddr r ->
          vm.code <- r.rcode;
          vm.pc <- r.rpc
      | v -> Values.err "heapvm: corrupt wind return" [ v ])
  | _ -> happly vm g [||] ~ret ~parent:(Some frame) ~guards:[]

(* One wind-trampoline step: move [vm.winders] one extent toward
   [target], running the appropriate guard, or reinstate [kv] with
   [payload] when the chains meet.  Each step allocates a fresh driver
   frame mirroring the stack VM's wind-frame layout
   ([_][%wind][k][payload][target][pending]); the guard returns through
   [Prims.wind_ret], whose single instruction tail-calls back into
   [Sp_wind] with the slots as arguments and the original
   [ret]/[parent]/[guards] context propagated through the frame.  The
   chain arithmetic is {!Engine.wind_plan}'s. *)
and wind_go vm kv payload target ~ret ~parent ~guards =
  match Engine.wind_plan vm.winders target with
  | Wind_done -> (
      match kv with
      | Hcont k -> reinstate_hcont vm k payload
      | v -> Values.err "heapvm: corrupt wind frame" [ v ])
  | plan ->
      let thunk, pending =
        match plan with
        | Unwind (w, rest) ->
            vm.winders <- rest;
            (w.w_after, Bool false)
        | Rewind (w, node) -> (w.w_before, WindersV node)
        | Wind_done -> assert false
      in
      let fr = alloc_frame vm ~words:6 ~ret ~parent ~guards in
      fr.hslots.(1) <- Prim Prims.wind_prim;
      fr.hslots.(2) <- kv;
      fr.hslots.(3) <- payload;
      fr.hslots.(4) <- WindersV target;
      fr.hslots.(5) <- pending;
      call_guard vm thunk ~ret:Prims.wind_ret ~frame:fr

and special vm sp args ~ret ~parent ~guards =
  match sp with
  | Sp_callcc ->
      let p = Prims.check_procedure "%call/cc" args.(0) in
      let k =
        Hcont
          {
            hcont_frame = parent;
            hcont_ret = ret;
            hcont_one_shot = false;
            hcont_shot = false;
            hcont_promoted = true;
            hcont_winders = vm.winders;
          }
      in
      (match parent with Some f -> f.hshared <- true | None -> ());
      promote_guards_from parent guards;
      vm.stats.Stats.captures_multi <- vm.stats.Stats.captures_multi + 1;
      happly vm p [| k |] ~ret ~parent ~guards
  | Sp_call1cc ->
      let p = Prims.check_procedure "%call/1cc" args.(0) in
      let hc =
        {
          hcont_frame = parent;
          hcont_ret = ret;
          hcont_one_shot = true;
          hcont_shot = false;
          hcont_promoted = false;
          hcont_winders = vm.winders;
        }
      in
      vm.stats.Stats.captures_oneshot <- vm.stats.Stats.captures_oneshot + 1;
      happly vm p [| Hcont hc |] ~ret ~parent ~guards:(hc :: guards)
  | Sp_apply ->
      let f = Prims.check_procedure "apply" args.(0) in
      let n = Array.length args in
      let fixed = Array.sub args 1 (n - 2) in
      let last = Values.list_of_value args.(n - 1) in
      let all = Array.append fixed (Array.of_list last) in
      happly vm f all ~ret ~parent ~guards
  | Sp_values ->
      vm.acc <-
        (if Array.length args = 1 then args.(0)
         else Mvals (Array.to_list args));
      return_to vm ~ret ~parent ~guards
  | Sp_set_timer ->
      let ticks = Prims.check_int "%set-timer!" args.(0) in
      vm.timer_handler <- args.(1);
      vm.timer <- (if ticks <= 0 then -1 else ticks);
      vm.acc <- Void;
      return_to vm ~ret ~parent ~guards
  | Sp_get_timer ->
      vm.acc <- Int (max vm.timer 0);
      return_to vm ~ret ~parent ~guards
  | Sp_backtrace ->
      let rec walk acc count (f : hframe option) =
        match f with
        | Some fr when count < 64 -> (
            match fr.hret with
            | Retaddr r -> walk (r.rcode.cname :: acc) (count + 1) fr.hparent
            | _ -> acc)
        | _ -> acc
      in
      (* Include the resume point first, then the parent chain. *)
      let first = match ret with Retaddr r -> [ r.rcode.cname ] | _ -> [] in
      vm.acc <-
        Values.list_to_value
          (List.map (fun n -> sym n) (first @ List.rev (walk [] 0 parent)));
      return_to vm ~ret ~parent ~guards
  | Sp_eval ->
      let code =
        Compiler.compile_eval ~hygiene:vm.hygiene ~menv:vm.menv vm.globals
          args.(0)
      in
      happly vm (Closure { code; frees = [||] }) [||] ~ret ~parent ~guards
  | Sp_stats ->
      let name =
        match args.(0) with
        | Sym s -> s
        | v -> Values.type_error "%stat" "symbol" v
      in
      (vm.acc <-
         (match Stats.get vm.stats name with
         | n -> Int n
         | exception Not_found ->
             Values.err ("%stat: unknown counter " ^ name) []));
      return_to vm ~ret ~parent ~guards
  | Sp_dynamic_wind -> (
      (* Entry carries 3 arguments; resumptions re-enter through
         [Prims.dw_resume_code] with 5 ([state] at index 3, [saved] at
         4).  Each step allocates a fresh driver frame mirroring the
         stack VM's layout; the frame's ret/parent/guards carry the
         original call context, which the resume code's tail-call
         propagates back here and state 3 finally returns through. *)
      let n = Array.length args in
      let state =
        if n = 3 then 0
        else if n = 5 then
          match args.(3) with
          | Int s -> s
          | v -> Values.err "heapvm: corrupt %dynamic-wind frame" [ v ]
        else Values.err "%dynamic-wind: expected 3 arguments" []
      in
      let before = args.(0) and thunk = args.(1) and after = args.(2) in
      let saved = if n = 3 then Void else args.(4) in
      match state with
      | 0 | 1 | 2 ->
          let fr = alloc_frame vm ~words:7 ~ret ~parent ~guards in
          fr.hslots.(1) <- Prim Prims.dw_prim;
          fr.hslots.(2) <- before;
          fr.hslots.(3) <- thunk;
          fr.hslots.(4) <- after;
          fr.hslots.(5) <- Int state;
          fr.hslots.(6) <- saved;
          let g, r =
            match state with
            | 0 -> (before, Prims.dw_ret_before)
            | 1 ->
                (* before returned: enter the extent, run the thunk *)
                vm.winders <-
                  { w_before = before; w_after = after } :: vm.winders;
                (thunk, Prims.dw_ret_thunk)
            | _ ->
                (* thunk returned ([saved] holds its value): leave the
                   extent before running the after thunk *)
                (match vm.winders with
                | _ :: rest -> vm.winders <- rest
                | [] -> ());
                (after, Prims.dw_ret_after)
          in
          call_guard vm g ~ret:r ~frame:fr
      | 3 ->
          vm.acc <- saved;
          return_to vm ~ret ~parent ~guards
      | _ -> Values.err "heapvm: corrupt %dynamic-wind frame" [ args.(3) ])
  | Sp_wind ->
      (* Guard return re-entering the wind trampoline. *)
      if Array.length args <> 4 then Values.err "%wind: internal primitive" [];
      (match args.(3) with
      | WindersV w ->
          (* A before thunk just returned: commit its extent. *)
          vm.winders <- w
      | _ -> ());
      let target =
        match args.(2) with
        | WindersV w -> w
        | v -> Values.err "heapvm: corrupt wind frame" [ v ]
      in
      wind_go vm args.(0) args.(1) target ~ret ~parent ~guards

(* Return a value through an explicit (ret, parent, guards) context, as a
   primitive in tail position does. *)
and return_to vm ~ret ~parent ~guards =
  consume_guards guards;
  match ret with
  | Retaddr r -> (
      vm.code <- r.rcode;
      vm.pc <- r.rpc;
      match parent with
      | Some p -> vm.pol.frame <- p
      | None -> ())
  | v -> Values.err "heapvm: corrupt return context" [ v ]

(* ------------------------------------------------------------------ *)
(* Engine transfer hooks                                               *)
(* ------------------------------------------------------------------ *)

(* Slow-path [Call] (every heap call: frames are linked, never
   contiguous).  The engine has synced and counted the frame; [cs_ret]
   is the statically interned return address of the site (rcode = the
   running code object, rpc = the fall-through pc); the heap VM ignores
   [rdisp]. *)
let call (vm : t) site f =
  let slots = vm.pol.frame.hslots in
  let args =
    Array.init site.cs_nargs (fun i -> slots.(site.cs_disp + 2 + i))
  in
  happly vm f args ~ret:site.cs_ret ~parent:(Some vm.pol.frame) ~guards:[]

let tail_call (vm : t) ~disp ~nargs f =
  let cur = vm.pol.frame in
  let slots = cur.hslots in
  let args = Array.init nargs (fun i -> slots.(disp + 2 + i)) in
  (* Abandoning a captured frame exposes its parent to the capturing
     continuation: keep the parent copy-on-write. *)
  (if cur.hshared then
     match cur.hparent with Some p -> p.hshared <- true | None -> ());
  happly vm f args ~ret:cur.hret ~parent:cur.hparent ~guards:cur.hguards

(* ------------------------------------------------------------------ *)
(* Procedure entry and the timer                                       *)
(* ------------------------------------------------------------------ *)

let fire_timer (vm : t) =
  let handler = vm.timer_handler in
  let code = vm.code in
  (* Same interning as the stack VM's [fire_timer]: the fire point is a
     constant of [code], so allocate the return address once.  rdisp is 0
     here (heap frames carry no displacement), which the guard also
     checks in case a code object is shared across backends. *)
  let ra =
    match code.timer_ret with
    | Retaddr r as ra when r.rpc = vm.pc && r.rdisp = 0 -> ra
    | _ ->
        let ra = Retaddr { rcode = code; rpc = vm.pc; rdisp = 0 } in
        code.timer_ret <- ra;
        ra
  in
  happly vm handler [||] ~ret:ra ~parent:(Some vm.pol.frame) ~guards:[]

let enter (vm : t) =
  let c = vm.code in
  let n = vm.nargs in
  (match c.arity with
  | Exactly k ->
      if n <> k then
        Values.err
          (Printf.sprintf "%s: expected %d arguments, got %d" c.cname k n)
          []
  | At_least k ->
      if n < k then
        Values.err
          (Printf.sprintf "%s: expected at least %d arguments, got %d" c.cname
             k n)
          []);
  (match c.arity with
  | At_least k ->
      let slots = vm.pol.frame.hslots in
      let rest = ref Nil in
      for i = n - 1 downto k do
        rest := Values.cons slots.(2 + i) !rest
      done;
      slots.(2 + k) <- !rest
  | Exactly _ -> ());
  if vm.timer > 0 then begin
    vm.timer <- vm.timer - 1;
    if vm.timer = 0 then begin
      vm.timer <- -1;
      fire_timer vm
    end
  end

(* ------------------------------------------------------------------ *)
(* Inline-cache deoptimization                                         *)
(* ------------------------------------------------------------------ *)

(* Inline-cache miss: fall back to the generic non-tail call. *)
let prim_deopt_call (vm : t) site =
  let stats = vm.stats in
  if stats.Stats.enabled then
    stats.Stats.prim_deopts <- stats.Stats.prim_deopts + 1;
  let g = Globals.get vm.globals site.ps_slot in
  if not g.gdefined then
    Values.err ("unbound variable: " ^ Globals.slot_name site.ps_slot) [];
  let slots = vm.pol.frame.hslots in
  let base = site.ps_disp + 2 in
  let args = Array.init site.ps_nargs (fun i -> slots.(base + i)) in
  if stats.Stats.enabled then stats.Stats.frames <- stats.Stats.frames + 1;
  happly vm g.gval args ~ret:site.ps_ret ~parent:(Some vm.pol.frame)
    ~guards:[]

let prim_deopt_tail_call (vm : t) site =
  let stats = vm.stats in
  if stats.Stats.enabled then
    stats.Stats.prim_deopts <- stats.Stats.prim_deopts + 1;
  let g = Globals.get vm.globals site.ps_slot in
  if not g.gdefined then
    Values.err ("unbound variable: " ^ Globals.slot_name site.ps_slot) [];
  let cur = vm.pol.frame in
  let slots = cur.hslots in
  let base = site.ps_disp + 2 in
  let args = Array.init site.ps_nargs (fun i -> slots.(base + i)) in
  (if cur.hshared then
     match cur.hparent with Some p -> p.hshared <- true | None -> ());
  happly vm g.gval args ~ret:cur.hret ~parent:cur.hparent ~guards:cur.hguards

(* ------------------------------------------------------------------ *)
(* Error-handler injection, machine setup                              *)
(* ------------------------------------------------------------------ *)

let inject_error_handler (vm : t) handler msg irritants =
  happly vm handler
    [| Str (Bytes.of_string msg); Values.list_to_value irritants |]
    ~ret:(Retaddr { rcode = vm.code; rpc = vm.pc; rdisp = 0 })
    ~parent:(Some vm.pol.frame) ~guards:[]

let init_run (vm : t) code =
  let root = root_frame () in
  let fr =
    alloc_frame vm ~words:(max code.frame_words 2)
      ~ret:(Retaddr { rcode = Engine.halt_code; rpc = 0; rdisp = 0 })
      ~parent:(Some root) ~guards:[]
  in
  fr.hslots.(1) <- Closure { code; frees = [||] };
  vm.pol.frame <- fr

let create ?stats () : t =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  Engine.create ~stats { frame = root_frame () }
