(** The heap-model baseline VM (paper §5).

    Interprets the same bytecode as {!Vm}, but represents control as
    heap-allocated linked frames in the style of Appel/MacQueen's SML/NJ:
    every call allocates a frame; continuation capture is O(1) pointer
    sharing; invocation is O(1) pointer swinging.  Frames reachable from a
    multi-shot continuation are marked shared and copied on write, so
    reinstatement is sound even though frames are mutable.

    One-shot semantics are kept in parity with the stack VM: a [%call/1cc]
    extent is consumed either by explicit invocation or by the normal
    return through its capture frame (a frame "guard"), and [%call/cc]
    promotes the one-shot extents it captures.

    The interesting measurements (experiment E4) are
    [Stats.heap_frames]/[Stats.heap_frame_words] — the per-call allocation
    this model pays that the segmented stack does not — and
    [Stats.cow_copies]. *)

type t = {
  globals : Globals.t;
  menv : Macro.menv;
  out : Buffer.t;
  stats : Stats.t;
  mutable acc : Rt.value;
  mutable code : Rt.code;
  mutable pc : int;
  mutable nargs : int;
  mutable frame : Rt.hframe;
  mutable timer : int;
  mutable timer_handler : Rt.value;
  mutable halted : bool;
  mutable winders : Rt.winder list;
      (** native dynamic-wind chain, innermost extent first *)
}

exception Vm_fuel_exhausted

val create : ?stats:Stats.t -> unit -> t
val run : ?fuel:int -> t -> Rt.code -> Rt.value
val run_program : ?fuel:int -> t -> Rt.code list -> Rt.value
val eval :
  ?fuel:int -> ?optimize:bool -> ?peephole:bool -> t -> string -> Rt.value
val output : t -> string
