(** The heap-model baseline VM (paper §5): the shared execution engine
    ({!Engine}, instantiated as [Heap_core]) running over heap-allocated
    linked frames as its frame policy ({!Heap_policy}).

    Interprets the same bytecode as {!Vm} — both are the one dispatch
    loop of lib/engine/engine_core.ml — but represents control in the
    style of Appel/MacQueen's SML/NJ: every call allocates a frame;
    continuation capture is O(1) pointer sharing; invocation is O(1)
    pointer swinging.  Frames reachable from a multi-shot continuation
    are marked shared and copied on write, so reinstatement is sound
    even though frames are mutable.

    One-shot semantics are kept in parity with the stack VM: a [%call/1cc]
    extent is consumed either by explicit invocation or by the normal
    return through its capture frame (a frame "guard"), and [%call/cc]
    promotes the one-shot extents it captures.

    The interesting measurements (experiment E4) are
    [Stats.heap_frames]/[Stats.heap_frame_words] — the per-call allocation
    this model pays that the segmented stack does not — and
    [Stats.cow_copies]. *)

type t = Heap_policy.state Engine.vm

exception Vm_fuel_exhausted

val create : ?stats:Stats.t -> unit -> t
val stats : t -> Stats.t
val globals : t -> Globals.t
val run : ?fuel:int -> t -> Rt.code -> Rt.value
val run_program : ?fuel:int -> t -> Rt.code list -> Rt.value

val eval :
  ?fuel:int ->
  ?optimize:bool ->
  ?peephole:bool ->
  ?regalloc:bool ->
  ?verify:bool ->
  t ->
  string ->
  Rt.value

val eval_datum :
  ?fuel:int ->
  ?optimize:bool ->
  ?peephole:bool ->
  ?regalloc:bool ->
  ?verify:bool ->
  t ->
  Sexp.t ->
  Rt.value
(** Like {!eval} for one already-read top-level datum, so a driver can
    attribute failures to the datum's source position. *)

val output : t -> string
