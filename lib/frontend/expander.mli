(** Expansion of Scheme source datums into core forms.

    Handles the core forms [quote], [if], [set!], [lambda], [begin],
    [define], and the derived forms [let] (incl. named [let]), [let*],
    [letrec], [letrec*], [cond] (incl. [=>] and [else]), [case], [and],
    [or], [when], [unless], [do], [quasiquote]/[unquote]/
    [unquote-splicing], [let-syntax]/[letrec-syntax], and internal
    definitions at the head of bodies.

    [syntax-rules] macros expand hygienically by default: each use gets
    a fresh mark on its template-introduced identifiers (see {!Macro}),
    so macro-introduced binders neither capture use-site identifiers
    nor are captured by use-site binders; keywords, literals, global
    references, quoted data and top-level define names resolve by
    source name (marks stripped).  [~hygiene:false] reproduces the
    historical textual expansion.

    The expander's own derived forms remain textual: they expand into
    references to the standard procedures [cons], [append], [list],
    [list->vector], and [eqv?]; shadowing those names around a
    [quasiquote] or [case] form is unsupported (documented limitation,
    irrelevant to the reproduction).

    There is no ambient state: the macro environment and the hygiene
    switch are either passed per call or carried by the session that
    owns them, so expansions on different domains are independent. *)

exception Expand_error of string * Sexp.pos

val datum_to_value : Sexp.t -> Rt.value
(** Convert a quoted datum to its runtime value (hygiene marks
    stripped: quoted data is source text, not bindings). *)

val value_to_datum : Rt.value -> Sexp.t
(** Inverse of {!datum_to_value}, for [(eval datum)].
    @raise Rt.Scheme_error on values without a syntax (procedures...). *)

val expand : ?hygiene:bool -> ?menv:Macro.menv -> Sexp.t -> Ast.t
(** Expand one expression.  @raise Expand_error on malformed forms. *)

val expand_top : ?hygiene:bool -> ?menv:Macro.menv -> Sexp.t -> Ast.top
(** Expand one top-level form; [define] becomes {!Ast.Define}. *)

val expand_tops : ?hygiene:bool -> ?menv:Macro.menv -> Sexp.t -> Ast.top list
(** Like {!expand_top}, but splicing top-level [begin] and expanding
    [define-record-type] and [define-syntax]/macro uses against
    [menv] (macros defined by the form are added to it). *)

val expand_program :
  ?hygiene:bool -> ?menv:Macro.menv -> Sexp.t list -> Ast.top list
(** Expand a whole program.  [menv] carries [define-syntax] macros; when
    omitted, a fresh environment is used (macros do not persist). *)

val expand_string : ?hygiene:bool -> ?menv:Macro.menv -> string -> Ast.top list
(** Read and expand a whole program. *)
