exception Expand_error of string * Sexp.pos

let err pos msg = raise (Expand_error (msg, pos))

(* One expansion's state, threaded explicitly through every function:
   the macro environment (shared with the session so [define-syntax]
   persists), the hygiene switch, and the macro-recursion depth.  No
   process-global ambient state — concurrent sessions on different
   domains expand independently ([Scheme.Pool], par workers). *)
type ctx = {
  menv : Macro.menv;
  hygiene : bool;
  depth : int ref; (* shared across [let-syntax] extensions of this ctx *)
}

let make_ctx ?(hygiene = true) ?menv () =
  {
    menv = (match menv with Some m -> m | None -> Macro.create_menv ());
    hygiene;
    depth = ref 0;
  }

(* Identifiers resolve against the definition environment by source
   name: strip hygiene marks wherever a name meets a keyword or the
   global/quoted-data world.  Lexical binders keep their marks, so a
   marked binder binds exactly the identically marked references its
   own expansion introduced. *)
let strip = Macro.strip_marks

let rec datum_to_value (d : Sexp.t) : Rt.value =
  match d with
  | Sexp.Sym (s, _) -> Rt.sym (strip s)
  | Sexp.Int (n, _) -> Rt.Int n
  | Sexp.Float (f, _) -> Rt.Flo f
  | Sexp.Str (s, _) -> Rt.Str (Bytes.of_string s)
  | Sexp.Bool (b, _) -> Rt.Bool b
  | Sexp.Char (c, _) -> Rt.Char c
  | Sexp.List (elems, _) -> Values.list_to_value (List.map datum_to_value elems)
  | Sexp.Dotted (elems, final, _) ->
      List.fold_right
        (fun e acc -> Values.cons (datum_to_value e) acc)
        elems (datum_to_value final)
  | Sexp.Vec (elems, _) ->
      Rt.Vec (Array.of_list (List.map datum_to_value elems))

let sym_name = function Sexp.Sym (s, _) -> Some s | _ -> None

(* Inverse of [datum_to_value], for (eval datum): runtime values that
   have a datum representation convert back to syntax. *)
let rec value_to_datum (v : Rt.value) : Sexp.t =
  let p : Sexp.pos = { Sexp.line = 0; col = 0 } in
  match v with
  | Rt.Sym s -> Sexp.Sym (s, p)
  | Rt.Int n -> Sexp.Int (n, p)
  | Rt.Flo f -> Sexp.Float (f, p)
  | Rt.Str b -> Sexp.Str (Bytes.to_string b, p)
  | Rt.Bool b -> Sexp.Bool (b, p)
  | Rt.Char c -> Sexp.Char (c, p)
  | Rt.Nil -> Sexp.List ([], p)
  | Rt.Pair _ ->
      let rec go acc v =
        match v with
        | Rt.Nil -> Sexp.List (List.rev acc, p)
        | Rt.Pair pr -> go (value_to_datum pr.Rt.car :: acc) pr.Rt.cdr
        | final -> Sexp.Dotted (List.rev acc, value_to_datum final, p)
      in
      go [] v
  | Rt.Vec a ->
      Sexp.Vec (Array.to_list (Array.map value_to_datum a), p)
  | other ->
      raise
        (Rt.Scheme_error
           ("eval: value has no syntax: " ^ Values.write_string other, []))

let fresh =
  let counter = Atomic.make 0 in
  fun prefix ->
    Printf.sprintf "%s%%e%d" prefix (Atomic.fetch_and_add counter 1)

(* Positionless datum constructors used when synthesizing expansions. *)
let p0 : Sexp.pos = { line = 0; col = 0 }
let dsym s = Sexp.Sym (s, p0)
let dlist l = Sexp.List (l, p0)

let begin_of pos = function
  | [] -> err pos "empty body"
  | [ e ] -> e
  | es -> Ast.Begin es

(* ------------------------------------------------------------------ *)
(* Quasiquote                                                          *)
(* ------------------------------------------------------------------ *)

(* Standard nested-quasiquote expansion into calls of cons/append/
   list->vector.  [depth] counts enclosing quasiquotes. *)
let rec qq_expand (d : Sexp.t) depth : Sexp.t =
  match d with
  | Sexp.List ([ Sexp.Sym (u, _); x ], _) when strip u = "unquote" ->
      if depth = 1 then x
      else
        dlist
          [ dsym "list"; dlist [ dsym "quote"; dsym "unquote" ];
            qq_expand x (depth - 1) ]
  | Sexp.List (Sexp.Sym (u, pos) :: _, _) when strip u = "unquote" ->
      err pos "unquote: expects exactly one form"
  | Sexp.List ([ Sexp.Sym (q, _); x ], _) when strip q = "quasiquote" ->
      dlist
        [ dsym "list"; dlist [ dsym "quote"; dsym "quasiquote" ];
          qq_expand x (depth + 1) ]
  | Sexp.List ([], _) -> dlist [ dsym "quote"; d ]
  | Sexp.List (elems, pos) -> qq_expand_list elems pos depth
  | Sexp.Dotted (elems, final, pos) -> qq_expand_dotted elems final pos depth
  | Sexp.Vec (elems, pos) ->
      dlist
        [ dsym "list->vector"; qq_expand_list elems pos depth ]
  | atom -> dlist [ dsym "quote"; atom ]

and qq_expand_list elems pos depth =
  qq_expand_dotted elems (Sexp.List ([], pos)) pos depth

and qq_expand_dotted elems final _pos depth =
  match elems with
  | [ Sexp.Sym (u, _); _ ]
    when strip u = "unquote" && final = Sexp.List ([], _pos) ->
      (* (a . ,e) reads as (a unquote e): unquote in tail position. *)
      qq_expand (dlist elems) depth
  | [] -> qq_expand final depth
  | first :: rest -> (
      let rest_exp = qq_expand_dotted rest final _pos depth in
      match first with
      | Sexp.List ([ Sexp.Sym (us, _); x ], _)
        when strip us = "unquote-splicing" ->
          if depth = 1 then dlist [ dsym "append"; x; rest_exp ]
          else
            dlist
              [ dsym "cons";
                dlist
                  [ dsym "list";
                    dlist [ dsym "quote"; dsym "unquote-splicing" ];
                    qq_expand x (depth - 1) ];
                rest_exp ]
      | _ -> dlist [ dsym "cons"; qq_expand first depth; rest_exp ])

(* ------------------------------------------------------------------ *)
(* Core expansion                                                      *)
(* ------------------------------------------------------------------ *)

let parse_params pos (formals : Sexp.t) : string list * string option =
  match formals with
  | Sexp.Sym (r, _) -> ([], Some r)
  | Sexp.List (ps, _) ->
      let names =
        List.map
          (fun p ->
            match sym_name p with
            | Some s -> s
            | None -> err pos "lambda: parameter is not a symbol")
          ps
      in
      (names, None)
  | Sexp.Dotted (ps, final, _) ->
      let names =
        List.map
          (fun p ->
            match sym_name p with
            | Some s -> s
            | None -> err pos "lambda: parameter is not a symbol")
          ps
      in
      let r =
        match sym_name final with
        | Some s -> s
        | None -> err pos "lambda: rest parameter is not a symbol"
      in
      (names, Some r)
  | _ -> err pos "lambda: malformed formals"

(* Rewrite a (define ...) body form into (name, rhs-datum).  Names keep
   their marks: internal definitions are lexical binders. *)
let parse_define pos (forms : Sexp.t list) : string * Sexp.t =
  match forms with
  | [ Sexp.Sym (x, _); rhs ] -> (x, rhs)
  | [ Sexp.Sym (x, _) ] -> (x, dlist [ dsym "begin" ])
  | Sexp.List (Sexp.Sym (f, _) :: formals, fpos) :: body ->
      (f, Sexp.List (dsym "lambda" :: Sexp.List (formals, fpos) :: body, pos))
  | Sexp.Dotted (Sexp.Sym (f, _) :: formals, rest, fpos) :: body ->
      ( f,
        Sexp.List
          (dsym "lambda" :: Sexp.Dotted (formals, rest, fpos) :: body, pos) )
  | _ -> err pos "define: malformed"

(* Extend [ctx] with the (name (syntax-rules ...)) bindings of a
   [let-syntax]/[letrec-syntax] form.  The environment is copied, so
   the bindings scope over the form's body only; both keywords get the
   letrec semantics (a rule body is resolved at use time, against the
   extended copy), which is sound for let-syntax and merely more
   permissive than R5RS requires. *)
let bind_syntax ctx pos binds =
  let menv = Hashtbl.copy ctx.menv in
  List.iter
    (function
      | Sexp.List ([ Sexp.Sym (name, _); rules_form ], _) ->
          Hashtbl.replace menv (strip name) (Macro.parse_syntax_rules rules_form)
      | _ -> err pos "let-syntax: each binding is (name (syntax-rules ...))")
    binds;
  { ctx with menv }

let rec expand ctx (d : Sexp.t) : Ast.t =
  match d with
  | Sexp.Sym (s, _) -> Ast.Var s
  | Sexp.Int _ | Sexp.Float _ | Sexp.Str _ | Sexp.Bool _ | Sexp.Char _
  | Sexp.Vec _ ->
      Ast.Quote (datum_to_value d)
  | Sexp.Dotted (_, _, pos) -> err pos "unexpected dotted list in expression"
  | Sexp.List ([], pos) -> err pos "empty application"
  | Sexp.List (op :: args, pos) -> (
      match sym_name op with
      | Some s -> expand_form ctx (strip s) op args pos
      | None -> Ast.App (expand ctx op, List.map (expand ctx) args))

(* [kw] is the head symbol's source name (marks stripped): keywords and
   the macro table live in the definition environment. *)
and expand_form ctx kw op args pos =
  match (kw, args) with
  | "quote", [ d ] -> Ast.Quote (datum_to_value d)
  | "quote", _ -> err pos "quote: expects exactly one datum"
  | "quasiquote", [ d ] -> expand ctx (qq_expand d 1)
  | "quasiquote", _ -> err pos "quasiquote: expects exactly one datum"
  | ("unquote" | "unquote-splicing"), _ -> err pos (kw ^ ": outside quasiquote")
  | "if", [ t; c ] -> Ast.If (expand ctx t, expand ctx c, Ast.Quote Rt.Void)
  | "if", [ t; c; a ] -> Ast.If (expand ctx t, expand ctx c, expand ctx a)
  | "if", _ -> err pos "if: expects two or three forms"
  | "set!", [ Sexp.Sym (x, _); e ] -> Ast.Set (x, expand ctx e)
  | "set!", _ -> err pos "set!: malformed"
  | "lambda", formals :: body when body <> [] ->
      let params, rest = parse_params pos formals in
      Ast.Lambda
        { params; rest; body = expand_body ctx pos body; lname = "lambda" }
  | "lambda", _ -> err pos "lambda: malformed"
  | "begin", [] -> Ast.Quote Rt.Void
  | "begin", body -> begin_of pos (List.map (expand ctx) body)
  | "define", _ -> err pos "define: only allowed at top level or body head"
  | "let", Sexp.Sym (loop, _) :: bindings :: body ->
      expand_named_let ctx pos loop bindings body
  | "let", bindings :: body when body <> [] ->
      let names, inits = parse_bindings pos bindings in
      let lam =
        Ast.Lambda
          { params = names; rest = None; body = expand_body ctx pos body;
            lname = "let" }
      in
      Ast.App (lam, List.map (expand ctx) inits)
  | "let", _ -> err pos "let: malformed"
  | "let*", bindings :: body when body <> [] -> (
      match parse_binding_forms pos bindings with
      | [] -> expand ctx (Sexp.List (dsym "let" :: bindings :: body, pos))
      | [ _ ] -> expand ctx (Sexp.List (dsym "let" :: bindings :: body, pos))
      | first :: rest ->
          expand ctx
            (dlist
               [ dsym "let"; dlist [ first ];
                 Sexp.List
                   (dsym "let*" :: dlist rest :: body, pos) ]))
  | "let*", _ -> err pos "let*: malformed"
  | ("letrec" | "letrec*"), bindings :: body when body <> [] ->
      let names, inits = parse_bindings pos bindings in
      expand_letrec ctx pos names inits body
  | ("letrec" | "letrec*"), _ -> err pos (kw ^ ": malformed")
  | "cond", clauses -> expand_cond ctx pos clauses
  | "case", key :: clauses -> expand_case ctx pos key clauses
  | "case", _ -> err pos "case: malformed"
  | "and", [] -> Ast.Quote (Rt.Bool true)
  | "and", [ e ] -> expand ctx e
  | "and", e :: rest ->
      Ast.If
        (expand ctx e, expand_form ctx "and" op rest pos,
         Ast.Quote (Rt.Bool false))
  | "or", [] -> Ast.Quote (Rt.Bool false)
  | "or", [ e ] -> expand ctx e
  | "or", e :: rest ->
      let t = fresh "or" in
      Ast.App
        ( Ast.Lambda
            { params = [ t ]; rest = None;
              body =
                Ast.If (Ast.Var t, Ast.Var t, expand_form ctx "or" op rest pos);
              lname = "or" },
          [ expand ctx e ] )
  | "when", test :: body when body <> [] ->
      Ast.If
        (expand ctx test, begin_of pos (List.map (expand ctx) body),
         Ast.Quote Rt.Void)
  | "unless", test :: body when body <> [] ->
      Ast.If
        (expand ctx test, Ast.Quote Rt.Void,
         begin_of pos (List.map (expand ctx) body))
  | "do", bindings :: test_exprs :: body ->
      expand_do ctx pos bindings test_exprs body
  | "do", _ -> err pos "do: malformed"
  | "delay", [ e ] ->
      expand ctx
        (dlist [ dsym "%make-promise"; dlist [ dsym "lambda"; dlist []; e ] ])
  | "delay", _ -> err pos "delay: expects exactly one form"
  | "assert", [ e ] ->
      Ast.If
        ( expand ctx e,
          Ast.Quote Rt.Void,
          Ast.App
            ( Ast.Var "error",
              [
                Ast.Quote (Rt.sym "assert");
                Ast.Quote (Rt.Str (Bytes.of_string "assertion failed"));
                Ast.Quote (datum_to_value e);
              ] ) )
  | "assert", _ -> err pos "assert: expects exactly one form"
  | "case-lambda", clauses when clauses <> [] ->
      expand_case_lambda ctx pos clauses
  | ("let-syntax" | "letrec-syntax"), Sexp.List (binds, bpos) :: body
    when body <> [] ->
      expand_body (bind_syntax ctx bpos binds) pos body
  | ("let-syntax" | "letrec-syntax"), _ -> err pos (kw ^ ": malformed")
  | "define-syntax", _ ->
      err pos "define-syntax: only supported at top level"
  | _ -> (
      match Hashtbl.find_opt ctx.menv kw with
      | Some rules ->
          incr ctx.depth;
          if !(ctx.depth) > 500 then
            err pos ("macro expansion too deep (looping?): " ^ kw);
          Fun.protect
            ~finally:(fun () -> decr ctx.depth)
            (fun () ->
              expand ctx
                (Macro.expand_use ~hygiene:ctx.hygiene rules
                   (Sexp.List (op :: args, pos))))
      | None -> Ast.App (expand ctx op, List.map (expand ctx) args))

(* Bodies: a (possibly empty) prefix of internal definitions followed by
   expressions, treated as letrec* (R5RS 5.2.2). *)
and expand_body ctx pos body =
  let rec split defs forms =
    match forms with
    | Sexp.List (Sexp.Sym (d, _) :: dforms, dpos) :: rest
      when strip d = "define" ->
        split (parse_define dpos dforms :: defs) rest
    | Sexp.List (Sexp.Sym (b, _) :: inner, _) :: rest
      when strip b = "begin"
           && List.exists
                (function
                  | Sexp.List (Sexp.Sym (d, _) :: _, _) -> strip d = "define"
                  | _ -> false)
                inner ->
        (* (begin (define ...) ...) at body head splices. *)
        split defs (inner @ rest)
    | _ -> (List.rev defs, forms)
  in
  let defs, exprs = split [] body in
  if exprs = [] then err pos "body has no expression";
  match defs with
  | [] -> begin_of pos (List.map (expand ctx) exprs)
  | _ ->
      let names = List.map fst defs in
      let inits = List.map snd defs in
      expand_letrec ctx pos names inits exprs

and expand_letrec ctx pos names inits body =
  (* ((lambda (x ...) (set! x init) ... body) #undefined ...) *)
  let sets =
    List.map2 (fun n i -> Ast.Set (n, expand ctx i)) names inits
  in
  let body_ast = expand_body ctx pos body in
  let full =
    match sets with [] -> body_ast | _ -> Ast.Begin (sets @ [ body_ast ])
  in
  Ast.App
    ( Ast.Lambda { params = names; rest = None; body = full; lname = "letrec" },
      List.map (fun _ -> Ast.Quote Rt.Undef) names )

and parse_binding_forms pos bindings =
  match bindings with
  | Sexp.List (bs, _) -> bs
  | _ -> err pos "malformed binding list"

and parse_bindings pos bindings =
  let forms = parse_binding_forms pos bindings in
  let parse = function
    | Sexp.List ([ Sexp.Sym (x, _); init ], _) -> (x, init)
    | _ -> err pos "malformed binding"
  in
  let pairs = List.map parse forms in
  (List.map fst pairs, List.map snd pairs)

and expand_named_let ctx pos loop bindings body =
  let names, inits = parse_bindings pos bindings in
  (* (letrec ((loop (lambda (names) body))) (loop inits)) *)
  let lam =
    Sexp.List
      ( dsym "lambda"
        :: dlist (List.map dsym names)
        :: body,
        pos )
  in
  let letrec_form =
    dlist
      [ dsym "letrec";
        dlist [ dlist [ dsym loop; lam ] ];
        dlist (dsym loop :: inits) ]
  in
  expand ctx letrec_form

and expand_cond ctx pos clauses =
  match clauses with
  | [] -> Ast.Quote Rt.Void
  | Sexp.List (Sexp.Sym (e, _) :: body, cpos) :: rest when strip e = "else" ->
      if rest <> [] then err cpos "cond: else clause must be last";
      begin_of cpos (List.map (expand ctx) body)
  | Sexp.List ([ test ], _) :: rest ->
      (* (cond (e) ...): value of e if true *)
      let t = fresh "t" in
      Ast.App
        ( Ast.Lambda
            { params = [ t ]; rest = None;
              body = Ast.If (Ast.Var t, Ast.Var t, expand_cond ctx pos rest);
              lname = "cond" },
          [ expand ctx test ] )
  | Sexp.List ([ test; Sexp.Sym (arrow, _); receiver ], _) :: rest
    when strip arrow = "=>" ->
      let t = fresh "t" in
      Ast.App
        ( Ast.Lambda
            { params = [ t ]; rest = None;
              body =
                Ast.If
                  ( Ast.Var t,
                    Ast.App (expand ctx receiver, [ Ast.Var t ]),
                    expand_cond ctx pos rest );
              lname = "cond" },
          [ expand ctx test ] )
  | Sexp.List (test :: body, cpos) :: rest ->
      Ast.If
        (expand ctx test, begin_of cpos (List.map (expand ctx) body),
         expand_cond ctx pos rest)
  | _ -> err pos "cond: malformed clause"

and expand_case ctx pos key clauses =
  let k = fresh "key" in
  let rec clause_chain clauses =
    match clauses with
    | [] -> Ast.Quote Rt.Void
    | Sexp.List (Sexp.Sym (e, _) :: body, cpos) :: rest when strip e = "else"
      ->
        if rest <> [] then err cpos "case: else clause must be last";
        begin_of cpos (List.map (expand ctx) body)
    | Sexp.List (Sexp.List (datums, _) :: body, cpos) :: rest ->
        let tests =
          List.map
            (fun d ->
              Ast.App
                ( Ast.Var "eqv?",
                  [ Ast.Var k; Ast.Quote (datum_to_value d) ] ))
            datums
        in
        let test =
          match tests with
          | [] -> Ast.Quote (Rt.Bool false)
          | [ t ] -> t
          | ts ->
              List.fold_right
                (fun t acc -> Ast.If (t, Ast.Quote (Rt.Bool true), acc))
                ts
                (Ast.Quote (Rt.Bool false))
        in
        Ast.If
          (test, begin_of cpos (List.map (expand ctx) body), clause_chain rest)
    | _ -> err pos "case: malformed clause"
  in
  Ast.App
    ( Ast.Lambda
        { params = [ k ]; rest = None; body = clause_chain clauses;
          lname = "case" },
      [ expand ctx key ] )

(* (case-lambda (formals body...) ...) dispatches on argument count:
   expands to a rest-lambda applying the first matching clause. *)
and expand_case_lambda ctx pos clauses =
  let args = fresh "args" in
  let n = fresh "n" in
  let clause_test formals =
    (* only reached for fixed or dotted formals; bare-symbol formals match
       unconditionally and are handled before this *)
    match formals with
    | Sexp.List (ps, _) ->
        dlist [ dsym "="; dsym n; Sexp.Int (List.length ps, p0) ]
    | Sexp.Dotted (ps, _, _) ->
        dlist [ dsym ">="; dsym n; Sexp.Int (List.length ps, p0) ]
    | _ -> err pos "case-lambda: malformed formals"
  in
  let rec chain = function
    | [] ->
        dlist
          [ dsym "error"; dlist [ dsym "quote"; dsym "case-lambda" ];
            Sexp.Str ("no matching clause", p0) ]
    | Sexp.List (formals :: body, cpos) :: rest ->
        let apply_clause =
          dlist
            [ dsym "apply";
              Sexp.List (dsym "lambda" :: formals :: body, cpos);
              dsym args ]
        in
        (match formals with
        | Sexp.Sym _ -> apply_clause
        | _ -> dlist [ dsym "if"; clause_test formals; apply_clause; chain rest ])
    | _ -> err pos "case-lambda: malformed clause"
  in
  expand ctx
    (dlist
       [ dsym "lambda"; dsym args;
         dlist
           [ dsym "let";
             dlist [ dlist [ dsym n; dlist [ dsym "length"; dsym args ] ] ];
             chain clauses ] ])

and expand_do ctx pos bindings test_exprs body =
  let forms = parse_binding_forms pos bindings in
  let specs =
    List.map
      (function
        | Sexp.List ([ Sexp.Sym (x, _); init ], _) -> (x, init, dsym x)
        | Sexp.List ([ Sexp.Sym (x, _); init; step ], _) -> (x, init, step)
        | _ -> err pos "do: malformed binding")
      forms
  in
  let test, exprs =
    match test_exprs with
    | Sexp.List (test :: exprs, _) -> (test, exprs)
    | _ -> err pos "do: malformed test clause"
  in
  let loop = fresh "do" in
  let names = List.map (fun (x, _, _) -> dsym x) specs in
  let inits = List.map (fun (_, i, _) -> i) specs in
  let steps = List.map (fun (_, _, s) -> s) specs in
  let result =
    match exprs with
    | [] -> dlist [ dsym "begin" ]
    | [ e ] -> e
    | es -> dlist (dsym "begin" :: es)
  in
  let again = dlist (dsym loop :: steps) in
  let loop_body =
    dlist
      [ dsym "if"; test; result;
        dlist (dsym "begin" :: (body @ [ again ])) ]
  in
  let lam = dlist [ dsym "lambda"; dlist names; loop_body ] in
  expand ctx
    (dlist
       [ dsym "letrec";
         dlist [ dlist [ dsym loop; lam ] ];
         dlist (dsym loop :: inits) ])

(* Top-level define names are global: strip marks, so a macro-defined
   global is nameable by its source name (globals are the definition
   environment either way). *)
let expand_top_in ctx (d : Sexp.t) : Ast.top =
  match d with
  | Sexp.List (Sexp.Sym (df, _) :: forms, pos) when strip df = "define" ->
      let name, rhs = parse_define pos forms in
      let name = strip name in
      let rhs_ast = expand ctx rhs in
      let rhs_ast =
        (* Name top-level lambdas after the variable for diagnostics. *)
        match rhs_ast with
        | Ast.Lambda l -> Ast.Lambda { l with lname = name }
        | other -> other
      in
      Ast.Define (name, rhs_ast, pos)
  | other -> Ast.Expr (expand ctx other, Sexp.pos_of other)

(* (define-record-type name (ctor field ...) pred (field accessor [setter])
   ...): expands to tagged-vector definitions.  The tag is a fresh pair, so
   each expansion defines a distinct type.  Top-level only. *)
let expand_record_type pos (forms : Sexp.t list) : Sexp.t list =
  match forms with
  | Sexp.Sym (tname, _)
    :: Sexp.List (Sexp.Sym (ctor, _) :: ctor_fields, _)
    :: Sexp.Sym (pred, _)
    :: field_specs ->
      let field_name = function
        | Sexp.List (Sexp.Sym (f, _) :: _, _) -> f
        | _ -> err pos "define-record-type: malformed field spec"
      in
      let fields = List.map field_name field_specs in
      let index_of f =
        match List.find_index (String.equal f) fields with
        | Some i -> i + 1
        | None -> err pos ("define-record-type: unknown field " ^ f)
      in
      let tag = "%record-tag-" ^ tname in
      let nslots = List.length fields + 1 in
      let def_tag =
        dlist
          [ dsym "define"; dsym tag;
            dlist [ dsym "list"; dlist [ dsym "quote"; dsym tname ] ] ]
      in
      let ctor_args =
        List.map
          (fun a ->
            match sym_name a with
            | Some s -> s
            | None -> err pos "define-record-type: constructor args")
          ctor_fields
      in
      let def_ctor =
        (* allocate all slots, then fill the constructed ones *)
        let v = "%r" in
        dlist
          [ dsym "define";
            dlist (dsym ctor :: List.map dsym ctor_args);
            dlist
              ([ dsym "let";
                 dlist
                   [ dlist
                       [ dsym v;
                         dlist
                           [ dsym "make-vector"; Sexp.Int (nslots, p0);
                             Sexp.Bool (false, p0) ] ] ] ]
              @ [ dlist
                    [ dsym "vector-set!"; dsym v; Sexp.Int (0, p0); dsym tag ]
                ]
              @ List.map
                  (fun a ->
                    dlist
                      [ dsym "vector-set!"; dsym v;
                        Sexp.Int (index_of a, p0); dsym a ])
                  ctor_args
              @ [ dsym v ]) ]
      in
      let def_pred =
        dlist
          [ dsym "define"; dlist [ dsym pred; dsym "%v" ];
            dlist
              [ dsym "and";
                dlist [ dsym "vector?"; dsym "%v" ];
                dlist
                  [ dsym "="; dlist [ dsym "vector-length"; dsym "%v" ];
                    Sexp.Int (nslots, p0) ];
                dlist
                  [ dsym "eq?";
                    dlist [ dsym "vector-ref"; dsym "%v"; Sexp.Int (0, p0) ];
                    dsym tag ] ] ]
      in
      let field_defs =
        List.concat_map
          (fun spec ->
            match spec with
            | Sexp.List (Sexp.Sym (f, _) :: rest, _) ->
                let idx = Sexp.Int (index_of f, p0) in
                let guard body =
                  dlist
                    [ dsym "if"; dlist [ dsym pred; dsym "%v" ]; body;
                      dlist
                        [ dsym "error"; dlist [ dsym "quote"; dsym tname ];
                          Sexp.Str ("not a " ^ tname, p0); dsym "%v" ] ]
                in
                let acc =
                  match rest with
                  | Sexp.Sym (getter, _) :: _ ->
                      [ dlist
                          [ dsym "define";
                            dlist [ dsym getter; dsym "%v" ];
                            guard
                              (dlist [ dsym "vector-ref"; dsym "%v"; idx ]) ]
                      ]
                  | _ -> err pos "define-record-type: field needs accessor"
                in
                let set =
                  match rest with
                  | [ _; Sexp.Sym (setter, _) ] ->
                      [ dlist
                          [ dsym "define";
                            dlist [ dsym setter; dsym "%v"; dsym "%x" ];
                            guard
                              (dlist
                                 [ dsym "vector-set!"; dsym "%v"; idx;
                                   dsym "%x" ]) ]
                      ]
                  | [ _ ] -> []
                  | _ -> err pos "define-record-type: malformed field spec"
                in
                acc @ set
            | _ -> err pos "define-record-type: malformed field spec")
          field_specs
      in
      def_tag :: def_ctor :: def_pred :: field_defs
  | _ -> err pos "define-record-type: malformed"

(* Top-level (begin ...) splices (R5RS 5.1), so definitions inside it are
   top-level definitions. *)
let rec expand_tops_in ctx (d : Sexp.t) : Ast.top list =
  match d with
  | Sexp.List (Sexp.Sym (b, _) :: forms, _)
    when strip b = "begin" && forms <> [] ->
      List.concat_map (expand_tops_in ctx) forms
  | Sexp.List (Sexp.Sym (drt, _) :: forms, pos)
    when strip drt = "define-record-type" ->
      List.concat_map (expand_tops_in ctx) (expand_record_type pos forms)
  | Sexp.List ([ Sexp.Sym (ds, _); Sexp.Sym (name, _); rules_form ], _)
    when strip ds = "define-syntax" ->
      Hashtbl.replace ctx.menv (strip name)
        (Macro.parse_syntax_rules rules_form);
      []
  | Sexp.List (Sexp.Sym (ds, _) :: _, pos) when strip ds = "define-syntax" ->
      err pos "define-syntax: expected (define-syntax name (syntax-rules ...))"
  | Sexp.List (Sexp.Sym (kw0, _) :: _, pos) as form
    when (let kw = strip kw0 in
          Hashtbl.mem ctx.menv kw
          && not
               (List.mem kw
                  [ "quote"; "lambda"; "if"; "set!"; "begin"; "define"; "let";
                    "let*"; "letrec"; "letrec*"; "cond"; "case"; "and"; "or";
                    "when"; "unless"; "do"; "delay"; "assert"; "case-lambda";
                    "quasiquote"; "let-syntax"; "letrec-syntax" ])) ->
      (* top-level macro use may expand into definitions *)
      let kw = strip kw0 in
      incr ctx.depth;
      if !(ctx.depth) > 500 then
        err pos ("macro expansion too deep (looping?): " ^ kw);
      Fun.protect
        ~finally:(fun () -> decr ctx.depth)
        (fun () ->
          expand_tops_in ctx
            (Macro.expand_use ~hygiene:ctx.hygiene
               (Hashtbl.find ctx.menv kw) form))
  | _ -> [ expand_top_in ctx d ]

let expand_program ?hygiene ?menv datums =
  let ctx = make_ctx ?hygiene ?menv () in
  List.concat_map (expand_tops_in ctx) datums

let expand_string ?hygiene ?menv src =
  expand_program ?hygiene ?menv (Sexp.read_all src)

let expand_tops ?hygiene ?menv d = expand_tops_in (make_ctx ?hygiene ?menv ()) d
let expand_top ?hygiene ?menv d = expand_top_in (make_ctx ?hygiene ?menv ()) d
let expand ?hygiene ?menv d = expand (make_ctx ?hygiene ?menv ()) d
