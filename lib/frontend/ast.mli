(** Core forms produced by the expander and consumed by the compiler and
    the oracle interpreter.  Variables are still by name here; resolution
    happens in the compiler's analysis pass. *)

type t =
  | Quote of Rt.value
  | Var of string
  | If of t * t * t
  | Set of string * t
  | Lambda of lambda
  | Begin of t list  (** non-empty *)
  | App of t * t list

and lambda = {
  params : string list;
  rest : string option;
  body : t;
  lname : string;  (** heuristic name for diagnostics *)
}

(** A top-level form: expression or definition, carrying the source
    position of the surface form it expanded from — the span
    diagnostics fall back to when a failure has no finer position. *)
type top = Expr of t * Sexp.pos | Define of string * t * Sexp.pos

val top_pos : top -> Sexp.pos

val to_string : t -> string
(** Render the core form.  Hygiene-marked identifiers print as [name#n]
    (the mark character is unprintable). *)

val top_to_string : top -> string
