(** [syntax-rules] pattern matching and template instantiation.

    Supports literals, the [_] wildcard, one ellipsis ([...]) per list
    level (with a fixed tail after it), nested ellipses, dotted patterns,
    and vector patterns.

    Expansion is hygienic by rename: each use gets a fresh mark, appended
    to every template-introduced identifier, so macro-introduced binders
    neither capture use-site identifiers nor are captured by them.
    Identifiers are resolved against the definition environment by
    stripping marks wherever a name meets a keyword table, a
    syntax-rules literal, the global table, or quoted data
    ({!strip_marks}).  [~hygiene:false] reproduces the historical
    textual expansion. *)

type rules
(** A compiled [(syntax-rules (literal ...) (pattern template) ...)]. *)

exception Macro_error of string * Sexp.pos

val parse_syntax_rules : Sexp.t -> rules
(** Parse the [(syntax-rules ...)] form.  @raise Macro_error if malformed. *)

val expand_use : ?hygiene:bool -> rules -> Sexp.t -> Sexp.t
(** Expand one macro use (the whole form, keyword included) with the first
    matching rule.  Template-contributed forms are stamped with the use
    site's position; with [hygiene] (the default) template-introduced
    identifiers additionally get a fresh mark.
    @raise Macro_error if no rule matches. *)

val strip_marks : string -> string
(** The source name of a possibly marked identifier: the prefix before
    the first hygiene mark.  Identity on reader-produced names. *)

val mark_char : char
(** The (unprintable) character that introduces a hygiene mark in an
    identifier; printers render it legibly (see {!Ast.to_string}). *)

type menv = (string, rules) Hashtbl.t
(** Macro environment: keyword name -> rules. *)

val create_menv : unit -> menv
