(* One diagnostic type from reader to runtime (DESIGN.md §17).

   Every layer of the pipeline reports failures in its own currency —
   the reader raises [Sexp.Read_error], the expander [Expand_error], the
   macro matcher [Macro_error], the compiler [Compile_error], the
   verifier [Verify.Error], the machines [Rt.Scheme_error] — but the
   user sees exactly one surface: a [Diag.t] rendered by [to_string] as

     line:col: severity: [tag] message

   where [tag] is the lint rule slug when one exists and the layer name
   otherwise.  Layers that cannot know a source position (a runtime
   error deep in a call chain, a verifier violation over fused bytecode)
   drop the [line:col:] prefix unless the driver supplies the position
   of the top-level form being processed ([of_exn ?pos]).

   The converters live where the dependency order allows: this module
   sees the reader, the expander/macro layer and the runtime; the
   compiler and verifier sit above [frontend] in the library graph, so
   the driver (bin/schemer.ml) folds their exceptions in before falling
   back to {!of_exn}. *)

type severity = Error | Warning

type layer =
  | Reader
  | Expander
  | Macro
  | Compiler
  | Verify
  | Lint
  | Runtime

type t = {
  severity : severity;
  layer : layer;
  rule : string option; (* stable slug, e.g. "multi-shot-1cc" (lint) *)
  pos : Sexp.pos option;
  message : string;
}

let layer_name = function
  | Reader -> "read"
  | Expander -> "expand"
  | Macro -> "macro"
  | Compiler -> "compile"
  | Verify -> "verify"
  | Lint -> "lint"
  | Runtime -> "runtime"

let severity_name = function Error -> "error" | Warning -> "warning"

let make ?(severity = Error) ?rule ?pos layer message =
  { severity; layer; rule; pos; message }

let error ?rule ?pos layer message = make ~severity:Error ?rule ?pos layer message

let warning ?rule ?pos layer message =
  make ~severity:Warning ?rule ?pos layer message

let to_string d =
  let tag = match d.rule with Some r -> r | None -> layer_name d.layer in
  let body =
    Printf.sprintf "%s: [%s] %s" (severity_name d.severity) tag d.message
  in
  match d.pos with
  | Some p -> Printf.sprintf "%d:%d: %s" p.Sexp.line p.Sexp.col body
  | None -> body

let of_exn ?pos exn =
  match exn with
  | Sexp.Read_error (msg, p) -> Some (error ~pos:p Reader msg)
  | Expander.Expand_error (msg, p) -> Some (error ~pos:p Expander msg)
  | Macro.Macro_error (msg, p) -> Some (error ~pos:p Macro msg)
  | Rt.Scheme_error (msg, irritants) ->
      let message =
        match irritants with
        | [] -> msg
        | vs -> msg ^ " " ^ String.concat " " (List.map Values.write_string vs)
      in
      Some (error ?pos Runtime message)
  | Rt.Shot_continuation ->
      Some (error ?pos Runtime "one-shot continuation invoked twice")
  | _ -> None
