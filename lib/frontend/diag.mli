(** One source-located diagnostic type from reader to runtime
    (DESIGN.md §17).

    Every pipeline layer raises its own exception; user-facing tools
    convert them all into this one record and print them through the
    one renderer {!to_string}, so a reader error, a macro mismatch, a
    compiler failure and a runtime error all read the same way:

    {v line:col: severity: [tag] message v}

    [tag] is the diagnostic's rule slug when it has one (lint rules) and
    the layer's short name otherwise ([read], [expand], [macro],
    [compile], [verify], [lint], [runtime]).  Diagnostics without a
    source position drop the [line:col:] prefix. *)

type severity = Error | Warning

type layer =
  | Reader
  | Expander
  | Macro
  | Compiler
  | Verify
  | Lint
  | Runtime

type t = {
  severity : severity;
  layer : layer;
  rule : string option;  (** stable rule slug, e.g. ["multi-shot-1cc"] *)
  pos : Sexp.pos option;
  message : string;
}

val make : ?severity:severity -> ?rule:string -> ?pos:Sexp.pos -> layer -> string -> t
val error : ?rule:string -> ?pos:Sexp.pos -> layer -> string -> t
val warning : ?rule:string -> ?pos:Sexp.pos -> layer -> string -> t

val layer_name : layer -> string
(** Short lower-case tag used in rendered diagnostics. *)

val severity_name : severity -> string

val to_string : t -> string
(** The one renderer: ["line:col: severity: [tag] message"], without
    the position prefix when [pos] is [None]. *)

val of_exn : ?pos:Sexp.pos -> exn -> t option
(** Convert the frontend/runtime exceptions this library can see
    ({!Sexp.Read_error}, {!Expander.Expand_error}, {!Macro.Macro_error},
    [Rt.Scheme_error], [Rt.Shot_continuation]) into a diagnostic.
    [pos] supplies a fallback span — typically the top-level form being
    processed — for exceptions that carry none of their own.  Returns
    [None] for exceptions of other layers (the driver folds the
    compiler's and verifier's in before calling this). *)
