(* Core forms produced by the expander and consumed by the compiler and the
   oracle interpreter.  Variables are still by-name here; resolution happens
   in the compiler's analysis pass. *)

type t =
  | Quote of Rt.value
  | Var of string
  | If of t * t * t
  | Set of string * t
  | Lambda of lambda
  | Begin of t list                     (* non-empty *)
  | App of t * t list

and lambda = {
  params : string list;
  rest : string option;
  body : t;
  lname : string;                       (* heuristic name for diagnostics *)
}

(* A top-level form: expression or definition, with the source position
   of the surface form it expanded from (the span diagnostics report
   when a failure carries no finer position of its own). *)
type top = Expr of t * Sexp.pos | Define of string * t * Sexp.pos

let top_pos = function Expr (_, p) | Define (_, _, p) -> p

(* Hygiene marks are unprintable (Macro.mark_char followed by a
   counter); render a marked identifier as name#n so --expand output
   stays readable.  Reader-produced names pass through untouched. *)
let pretty_name s =
  match String.index_opt s Macro.mark_char with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ "#" ^ String.sub s (i + 1) (String.length s - i - 1)

let rec to_string ast =
  match ast with
  | Quote v -> "'" ^ Values.write_string v
  | Var x -> pretty_name x
  | If (a, b, c) ->
      Printf.sprintf "(if %s %s %s)" (to_string a) (to_string b) (to_string c)
  | Set (x, e) -> Printf.sprintf "(set! %s %s)" (pretty_name x) (to_string e)
  | Lambda { params; rest; body; _ } ->
      let ps = String.concat " " (List.map pretty_name params) in
      let ps =
        match rest with None -> ps | Some r -> ps ^ " . " ^ pretty_name r
      in
      Printf.sprintf "(lambda (%s) %s)" ps (to_string body)
  | Begin es ->
      Printf.sprintf "(begin %s)" (String.concat " " (List.map to_string es))
  | App (f, args) ->
      Printf.sprintf "(%s)"
        (String.concat " " (List.map to_string (f :: args)))

let top_to_string = function
  | Expr (e, _) -> to_string e
  | Define (x, e, _) ->
      Printf.sprintf "(define %s %s)" (pretty_name x) (to_string e)
