exception Macro_error of string * Sexp.pos

let err pos msg = raise (Macro_error (msg, pos))
let p0 : Sexp.pos = { Sexp.line = 0; col = 0 }

(* ------------------------------------------------------------------ *)
(* Hygiene marks                                                       *)
(* ------------------------------------------------------------------ *)

(* Rename-based hygiene: every expansion of a macro use gets a fresh
   mark, appended to the name of every template-introduced identifier
   (a template symbol that is not a pattern variable).  The mark
   character cannot appear in a symbol the reader produces, so marked
   names can neither capture nor be captured by use-site identifiers of
   the same source name: a marked binder binds exactly the identically
   marked references the same expansion introduced.  Wherever an
   identifier is instead resolved against the definition environment —
   keyword dispatch, syntax-rules literals, global references, quoted
   data, top-level define names — [strip_marks] recovers the source
   name.  (Macro definition sites are top level, so their "definition
   environment" for free identifiers is the global one; that is what
   makes strip-at-resolution equivalent to the renaming semantics.) *)
let mark_char = '\x01'

let strip_marks s =
  match String.index_opt s mark_char with
  | None -> s
  | Some i -> String.sub s 0 i

let mark_counter = Atomic.make 0

let fresh_mark () =
  Printf.sprintf "%c%d" mark_char (Atomic.fetch_and_add mark_counter 1)

type rule = { pat : Sexp.t; tmpl : Sexp.t }
type rules = { literals : string list; rules : rule list }
type menv = (string, rules) Hashtbl.t

let create_menv () : menv = Hashtbl.create 16

(* A pattern variable binds either one form or, under an ellipsis, a list
   of bindings (one level per ellipsis). *)
type binding = Single of Sexp.t | Multi of binding list

let is_ellipsis = function
  | Sexp.Sym (s, _) -> strip_marks s = "..."
  | _ -> false

let parse_syntax_rules (d : Sexp.t) : rules =
  match d with
  | Sexp.List (Sexp.Sym (sr, _) :: Sexp.List (lits, _) :: rl, pos)
    when strip_marks sr = "syntax-rules" ->
      let literals =
        List.map
          (function
            | Sexp.Sym (s, _) -> s
            | _ -> err pos "syntax-rules: literals must be symbols")
          lits
      in
      let rules =
        List.map
          (function
            | Sexp.List ([ pat; tmpl ], _) -> { pat; tmpl }
            | _ -> err pos "syntax-rules: each rule is (pattern template)")
          rl
      in
      if rules = [] then err pos "syntax-rules: no rules";
      { literals; rules }
  | _ -> err (Sexp.pos_of d) "define-syntax: expected (syntax-rules ...)"

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

(* Pattern variables appearing in a pattern (for empty-ellipsis binding). *)
let rec pattern_vars literals (p : Sexp.t) acc =
  match p with
  | Sexp.Sym (s, _) when strip_marks s = "_" || strip_marks s = "..." -> acc
  | Sexp.Sym (s, _) -> if List.mem s literals then acc else s :: acc
  | Sexp.List (ps, _) | Sexp.Vec (ps, _) ->
      List.fold_left (fun acc p -> pattern_vars literals p acc) acc ps
  | Sexp.Dotted (ps, final, _) ->
      pattern_vars literals final
        (List.fold_left (fun acc p -> pattern_vars literals p acc) acc ps)
  | _ -> acc

exception No_match

let rec match_pat literals (p : Sexp.t) (f : Sexp.t) bindings =
  match p with
  | Sexp.Sym (s, _) when strip_marks s = "_" -> bindings
  | Sexp.Sym (s, _) when List.mem s literals -> (
      (* Literals match by source name: the definition environment of
         both the macro and the use site is the global one, so a marked
         [else] introduced by another expansion still means [else]. *)
      match f with
      | Sexp.Sym (s', _) when strip_marks s = strip_marks s' -> bindings
      | _ -> raise No_match)
  | Sexp.Sym (s, _) -> (s, Single f) :: bindings
  | Sexp.Int (n, _) -> (
      match f with Sexp.Int (m, _) when n = m -> bindings | _ -> raise No_match)
  | Sexp.Float (n, _) -> (
      match f with
      | Sexp.Float (m, _) when n = m -> bindings
      | _ -> raise No_match)
  | Sexp.Bool (b, _) -> (
      match f with
      | Sexp.Bool (b', _) when b = b' -> bindings
      | _ -> raise No_match)
  | Sexp.Char (c, _) -> (
      match f with
      | Sexp.Char (c', _) when c = c' -> bindings
      | _ -> raise No_match)
  | Sexp.Str (s, _) -> (
      match f with
      | Sexp.Str (s', _) when s = s' -> bindings
      | _ -> raise No_match)
  | Sexp.List (ps, _) -> (
      match f with
      | Sexp.List (fs, _) -> match_seq literals ps None fs bindings
      | _ -> raise No_match)
  | Sexp.Dotted (ps, ptail, _) -> (
      match f with
      | Sexp.List (fs, pos) ->
          match_seq literals ps (Some ptail) fs
            ~improper_tail:(Sexp.List ([], pos))
            bindings
      | Sexp.Dotted (fs, ftail, _) ->
          match_seq literals ps (Some ptail) fs ~improper_tail:ftail bindings
      | _ -> raise No_match)
  | Sexp.Vec (ps, _) -> (
      match f with
      | Sexp.Vec (fs, _) -> match_seq literals ps None fs bindings
      | _ -> raise No_match)

(* Match a sequence of patterns [ps] (with optional dotted-tail pattern)
   against forms [fs].  At most one ellipsis: ps = pre @ [pe; "..."] @ post. *)
and match_seq literals ps ptail ?improper_tail fs bindings =
  let rec split_at_ellipsis pre = function
    | pe :: e :: post when is_ellipsis e -> Some (List.rev pre, pe, post)
    | p :: rest -> split_at_ellipsis (p :: pre) rest
    | [] -> None
  in
  match split_at_ellipsis [] ps with
  | None ->
      (* fixed-length *)
      let rec go ps fs bindings =
        match (ps, fs) with
        | [], [] -> (
            match (ptail, improper_tail) with
            | None, _ -> bindings
            | Some pt, Some ft -> match_pat literals pt ft bindings
            | Some pt, None -> match_pat literals pt (Sexp.List ([], p0)) bindings)
        | p :: ps', f :: fs' -> go ps' fs' (match_pat literals p f bindings)
        | _ -> raise No_match
      in
      (match (ptail, fs) with
      | None, _ -> go ps fs bindings
      | Some _, _ ->
          (* dotted pattern: fixed prefix, tail gets the rest *)
          let np = List.length ps in
          if List.length fs < np then raise No_match
          else
            let rec take n l = if n = 0 then ([], l) else
              match l with x :: r -> let a, b = take (n-1) r in (x :: a, b)
              | [] -> raise No_match
            in
            let prefix, rest = take np fs in
            let bindings =
              List.fold_left2
                (fun b p f -> match_pat literals p f b)
                bindings ps prefix
            in
            let tail_form =
              match (rest, improper_tail) with
              | [], Some ft -> ft
              | [], None -> Sexp.List ([], p0)
              | _, Some (Sexp.List ([], _)) | _, None -> Sexp.List (rest, p0)
              | _, Some ft -> Sexp.Dotted (rest, ft, p0)
            in
            match ptail with
            | Some pt -> match_pat literals pt tail_form bindings
            | None -> raise No_match)
  | Some (pre, pe, post) ->
      let npre = List.length pre and npost = List.length post in
      if List.length fs < npre + npost then raise No_match;
      let rec take n l =
        if n = 0 then ([], l)
        else
          match l with
          | x :: r ->
              let a, b = take (n - 1) r in
              (x :: a, b)
          | [] -> raise No_match
      in
      let fpre, rest = take npre fs in
      let nmid = List.length rest - npost in
      let fmid, fpost = take nmid rest in
      let bindings =
        List.fold_left2 (fun b p f -> match_pat literals p f b) bindings pre
          fpre
      in
      (* each repetition binds pe's variables once; collect per variable *)
      let reps =
        List.map (fun f -> match_pat literals pe f []) fmid
      in
      let evars = List.sort_uniq compare (pattern_vars literals pe []) in
      let bindings =
        List.fold_left
          (fun b v ->
            let slices =
              List.map
                (fun rep ->
                  match List.assoc_opt v rep with
                  | Some x -> x
                  | None -> raise No_match)
                reps
            in
            (v, Multi slices) :: b)
          bindings evars
      in
      let bindings =
        List.fold_left2 (fun b p f -> match_pat literals p f b) bindings post
          fpost
      in
      (match (ptail, improper_tail) with
      | None, _ -> bindings
      | Some pt, Some ft -> match_pat literals pt ft bindings
      | Some pt, None -> match_pat literals pt (Sexp.List ([], p0)) bindings)

(* ------------------------------------------------------------------ *)
(* Template instantiation                                              *)
(* ------------------------------------------------------------------ *)

let rec template_vars (t : Sexp.t) acc =
  match t with
  | Sexp.Sym (s, _) when strip_marks s = "..." -> acc
  | Sexp.Sym (s, _) -> s :: acc
  | Sexp.List (ts, _) | Sexp.Vec (ts, _) ->
      List.fold_left (fun acc t -> template_vars t acc) acc ts
  | Sexp.Dotted (ts, final, _) ->
      template_vars final
        (List.fold_left (fun acc t -> template_vars t acc) acc ts)
  | _ -> acc

(* Instantiate a template: pattern variables substitute the matched
   use-site forms (keeping their own positions); everything the template
   itself contributes is stamped with the use-site position [upos] (so
   downstream errors point at the macro use, not 0:0 or the definition)
   and, when [mark] is non-empty, template-introduced identifiers get
   the expansion's mark appended. *)
let rec instantiate upos mark bindings (t : Sexp.t) : Sexp.t =
  match t with
  | Sexp.Sym (s, _) -> (
      match List.assoc_opt s bindings with
      | Some (Single f) -> f
      | Some (Multi _) ->
          err upos ("syntax-rules: pattern variable " ^ s
                   ^ " used without enough ellipses")
      | None ->
          if mark = "" || strip_marks s = "..." then Sexp.Sym (s, upos)
          else Sexp.Sym (s ^ mark, upos))
  | Sexp.List (ts, _) -> Sexp.List (instantiate_seq upos mark bindings ts, upos)
  | Sexp.Vec (ts, _) -> Sexp.Vec (instantiate_seq upos mark bindings ts, upos)
  | Sexp.Dotted (ts, final, _) -> (
      let heads = instantiate_seq upos mark bindings ts in
      let tail = instantiate upos mark bindings final in
      match tail with
      | Sexp.List (more, _) -> Sexp.List (heads @ more, upos)
      | Sexp.Dotted (more, f, _) -> Sexp.Dotted (heads @ more, f, upos)
      | atom -> Sexp.Dotted (heads, atom, upos))
  | Sexp.Int (n, _) -> Sexp.Int (n, upos)
  | Sexp.Float (f, _) -> Sexp.Float (f, upos)
  | Sexp.Str (s, _) -> Sexp.Str (s, upos)
  | Sexp.Bool (b, _) -> Sexp.Bool (b, upos)
  | Sexp.Char (c, _) -> Sexp.Char (c, upos)

and instantiate_seq upos mark bindings ts =
  match ts with
  | t :: e :: rest when is_ellipsis e ->
      (* expand t once per slice of its Multi-bound variables *)
      let vars =
        List.filter
          (fun v ->
            match List.assoc_opt v bindings with
            | Some (Multi _) -> true
            | _ -> false)
          (List.sort_uniq compare (template_vars t []))
      in
      if vars = [] then
        err upos "syntax-rules: ellipsis template has no pattern variable";
      let slices =
        match List.assoc_opt (List.hd vars) bindings with
        | Some (Multi l) -> List.length l
        | _ -> assert false
      in
      List.iter
        (fun v ->
          match List.assoc_opt v bindings with
          | Some (Multi l) when List.length l <> slices ->
              err upos "syntax-rules: mismatched ellipsis lengths"
          | _ -> ())
        vars;
      let expansions =
        List.init slices (fun i ->
            let bindings' =
              List.map
                (fun v ->
                  match List.assoc v bindings with
                  | Multi l -> (v, List.nth l i)
                  | b -> (v, b))
                vars
              @ bindings
            in
            instantiate upos mark bindings' t)
      in
      expansions @ instantiate_seq upos mark bindings rest
  | t :: rest ->
      instantiate upos mark bindings t :: instantiate_seq upos mark bindings rest
  | [] -> []

let expand_use ?(hygiene = true) (r : rules) (form : Sexp.t) : Sexp.t =
  let pos = Sexp.pos_of form in
  let args =
    match form with
    | Sexp.List (_ :: args, _) -> args
    | _ -> err pos "macro use must be a list form"
  in
  let mark = if hygiene then fresh_mark () else "" in
  let rec try_rules = function
    | [] -> err pos "no syntax-rules pattern matches this use"
    | { pat; tmpl } :: rest -> (
        let pat_args, ptail =
          match pat with
          | Sexp.List (_ :: ps, _) -> (ps, None)
          | Sexp.Dotted (_ :: ps, t, _) -> (ps, Some t)
          | _ -> err (Sexp.pos_of pat) "syntax-rules: pattern must be a list"
        in
        match match_seq r.literals pat_args ptail args [] with
        | bindings -> instantiate pos mark bindings tmpl
        | exception No_match -> try_rules rest)
  in
  try_rules r.rules
