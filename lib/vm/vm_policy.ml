open Rt
open Engine

(* The segmented-stack frame policy (the paper's control representation),
   instantiating the engine's dispatch loop ([Vm_core], generated from
   lib/engine/engine_core.ml).  The policy owns everything that knows
   control lives on {!Control}'s segmented stack: frame push/pop,
   capture/reinstatement, the wind trampoline's stack frames, overflow
   re-checks, and the slow paths of call/return/enter. *)

type t = Control.t Engine.vm

(* Landing constants: frames are contiguous slices of the active
   segment, so same-segment call/tail-call/return may stay inside a
   landing, and a [Call] to a pure primitive pushes nothing. *)
let fast = true
let frames_on_pure_call = false

let slots (vm : t) = vm.pol.Control.sr.seg
let frame_base (vm : t) = vm.pol.Control.fp
let limit (vm : t) = Control.seg_limit vm.pol
let[@inline] set_fp (vm : t) nfp = vm.pol.Control.fp <- nfp

(* Stack slots are plainly mutable (sealing, not sharing, protects
   captured frames), so a slot write never replaces the array. *)
let[@inline] set (_ : t) (slots : value array) fp i v =
  slots.(fp + i) <- v;
  slots

let pure_call_skips (_ : t) (_ : call_site) = false

(* ------------------------------------------------------------------ *)
(* Returns and underflow                                               *)
(* ------------------------------------------------------------------ *)

(* A frame re-entered after a return or continuation invocation may sit
   near the top of a smaller segment than the one its [Enter] validated:
   re-establish the frame-extent guarantee before its code resumes. *)
let ensure_resumed_frame_room (vm : t) =
  let m = vm.pol in
  let fw = vm.code.frame_words in
  if not (Control.room m fw) then
    Control.ensure_room m ~live_top:(m.Control.fp + fw) ~need:fw

let do_return (vm : t) =
  let m = vm.pol in
  match m.Control.sr.seg.(m.Control.fp) with
  | Retaddr r ->
      m.Control.fp <- m.Control.fp - r.rdisp;
      vm.code <- r.rcode;
      vm.pc <- r.rpc;
      ensure_resumed_frame_room vm
  | Underflow_mark -> (
      (* Paper Section 3.2: returning through the bottom frame of a
         segment implicitly invokes the record linked below — consuming
         it if it is one-shot. *)
      match Control.underflow m with
      | Some r ->
          vm.code <- r.rcode;
          vm.pc <- r.rpc;
          ensure_resumed_frame_room vm
      | None -> vm.halted <- true)
  | v -> Values.err "vm: corrupt frame: bad return slot" [ v ]

(* ------------------------------------------------------------------ *)
(* Application                                                         *)
(* ------------------------------------------------------------------ *)

(* Apply [f] whose frame starts at [nfp] (return slot already correct and
   arguments at [nfp+2 ..]).  Used for both non-tail calls (fresh return
   address) and tail calls (inherited return slot). *)
let rec apply (vm : t) f nfp nargs =
  let m = vm.pol in
  let stats = vm.stats in
  match f with
  | Closure c ->
      m.Control.fp <- nfp;
      vm.code <- c.code;
      vm.pc <- 0;
      vm.nargs <- nargs;
      if stats.Stats.enabled then stats.Stats.calls <- stats.Stats.calls + 1
  | Prim { pfn = Pure fn; parity; pname } ->
      if not (Bytecode.arity_matches parity nargs) then
        Values.err (pname ^ ": wrong number of arguments") [];
      let seg = m.Control.sr.seg in
      let args = prim_args vm seg (nfp + 2) nargs in
      if stats.Stats.enabled then
        stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
      vm.acc <- fn args;
      (* Frame pointer is untouched for pure primitives: if this was a
         tail call ([nfp] = fp) the caller's Return follows; if it was a
         non-tail call, execution simply continues in the caller. *)
      if nfp = m.Control.fp then do_return vm
  | Prim { pfn = Special sp; parity; pname } ->
      if not (Bytecode.arity_matches parity nargs) then
        Values.err (pname ^ ": wrong number of arguments") [];
      m.Control.fp <- nfp;
      if stats.Stats.enabled then
        stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
      special vm sp nargs
  | Cont c -> invoke_continuation vm c nfp nargs
  | v -> Values.err "application of non-procedure" [ v ]

and invoke_continuation vm c nfp nargs =
  let m = vm.pol in
  let seg = m.Control.sr.seg in
  let v =
    if nargs = 1 then seg.(nfp + 2)
    else if nargs = 0 then empty_mvals
    else if nargs = 2 then Mvals [ seg.(nfp + 2); seg.(nfp + 3) ]
    else Mvals (collect_list seg (nfp + 2) (nargs - 1) [])
  in
  (* Fast path: the machine already sits at the continuation's winder
     chain (physical equality) — reinstate directly.  Under the
     [--scheme-winders] prelude both chains stay [[]], so this is
     exactly the historical behavior. *)
  if c.k_winders == vm.winders then reinstate_cont vm c v
  else start_wind vm c v

and reinstate_cont vm c v =
  let m = vm.pol in
  let r = Control.reinstate m c.sr in
  vm.code <- r.rcode;
  vm.pc <- r.rpc;
  ensure_resumed_frame_room vm;
  vm.acc <- v

(* The winder chains differ: push a wind-trampoline frame above the
   current frame and step it.  The frame records the continuation, its
   payload, the target chain and a pending-commit slot (see the layout
   comment in [Prims]); every guard thunk returns through [wind_ret],
   whose single instruction tail-calls back into [Sp_wind].  Capturing
   inside a guard therefore snapshots ordinary frames and the protocol
   survives re-entry. *)
and start_wind vm c v =
  let m = vm.pol in
  let fw = vm.code.frame_words in
  Control.ensure_room m ~live_top:(m.Control.fp + fw) ~need:(fw + 12);
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  let dfp = fp + fw in
  seg.(dfp) <- Retaddr { rcode = vm.code; rpc = vm.pc; rdisp = fw };
  seg.(dfp + 1) <- Prim Prims.wind_prim;
  seg.(dfp + 2) <- Cont c;
  seg.(dfp + 3) <- v;
  seg.(dfp + 4) <- WindersV c.k_winders;
  seg.(dfp + 5) <- Bool false;
  m.Control.fp <- dfp;
  wind_step vm

(* One trampoline step.  fp is at a wind frame; room for the guard call
   area (fp+6, fp+7) is guaranteed by [start_wind]'s [ensure_room] on
   entry and by [wind_resume_code.frame_words] on every re-entry.  The
   chain arithmetic is {!Engine.wind_plan}'s. *)
and wind_step vm =
  let m = vm.pol in
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  (match seg.(fp + 5) with
  | WindersV w ->
      (* A before thunk just returned: commit its extent. *)
      vm.winders <- w;
      seg.(fp + 5) <- Bool false
  | _ -> ());
  let target =
    match seg.(fp + 4) with
    | WindersV w -> w
    | v -> Values.err "vm: corrupt wind frame" [ v ]
  in
  match Engine.wind_plan vm.winders target with
  | Wind_done -> (
      (* Done: reinstate.  A shot one-shot record raises here, after the
         winds have run — the same point the Scheme wrapper checks. *)
      match seg.(fp + 2) with
      | Cont c -> reinstate_cont vm c seg.(fp + 3)
      | v -> Values.err "vm: corrupt wind frame" [ v ])
  | plan ->
      let thunk =
        match plan with
        | Unwind (w, rest) ->
            vm.winders <- rest;
            w.w_after
        | Rewind (w, node) ->
            seg.(fp + 5) <- WindersV node;
            w.w_before
        | Wind_done -> assert false
      in
      seg.(fp + 6) <- Prims.wind_ret;
      seg.(fp + 7) <- thunk;
      (* Preset the resumption point for frame-less (pure) guards, as in
         the [Sp_dynamic_wind] arms. *)
      vm.code <- Prims.wind_resume_code;
      vm.pc <- 0;
      apply vm thunk (fp + 6) 0

(* Specials execute with fp at their own frame: [ret][prim][args...]. *)
and special vm sp nargs =
  let m = vm.pol in
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  match sp with
  | Sp_callcc ->
      let p = Prims.check_procedure "%call/cc" seg.(fp + 2) in
      let sr = Control.capture_multi m in
      let k = Cont { sr; one_shot = false; k_winders = vm.winders } in
      tail_apply_2 vm p k
  | Sp_call1cc ->
      let p = Prims.check_procedure "%call/1cc" seg.(fp + 2) in
      let sr = Control.capture_oneshot m in
      let one_shot = not (Control.is_multi sr) in
      let k = Cont { sr; one_shot; k_winders = vm.winders } in
      tail_apply_2 vm p k
  | Sp_apply ->
      let f = Prims.check_procedure "apply" seg.(fp + 2) in
      let fixed = nargs - 2 in
      let lst = seg.(fp + 2 + nargs - 1) in
      (* Spread the last-argument list in place: count it (validating
         properness), make room while keeping the whole current frame
         live, shift the fixed args down one slot, then walk the list a
         second time writing elements directly into the frame.  No
         intermediate arrays or list copies. *)
      let rec spread_len v n =
        match v with
        | Nil -> n
        | Pair p -> spread_len p.cdr (n + 1)
        | _ -> Values.err "apply: expected a proper list" [ lst ]
      in
      let rest = spread_len lst 0 in
      let n = fixed + rest in
      Control.ensure_room m ~live_top:(fp + 2 + nargs) ~need:(n + 8);
      let fp = m.Control.fp in
      let seg = m.Control.sr.seg in
      seg.(fp + 1) <- f;
      for i = 0 to fixed - 1 do
        seg.(fp + 2 + i) <- seg.(fp + 3 + i)
      done;
      let rec spread_fill v i =
        match v with
        | Pair p ->
            seg.(i) <- p.car;
            spread_fill p.cdr (i + 1)
        | _ -> ()
      in
      spread_fill lst (fp + 2 + fixed);
      apply vm f fp n
  | Sp_values ->
      (if nargs = 1 then vm.acc <- seg.(fp + 2)
       else if nargs = 0 then vm.acc <- empty_mvals
       else if nargs = 2 then vm.acc <- Mvals [ seg.(fp + 2); seg.(fp + 3) ]
       else vm.acc <- Mvals (collect_list seg (fp + 2) (nargs - 1) []));
      do_return vm
  | Sp_set_timer ->
      let ticks = Prims.check_int "%set-timer!" seg.(fp + 2) in
      vm.timer_handler <- seg.(fp + 3);
      vm.timer <- (if ticks <= 0 then -1 else ticks);
      vm.acc <- Void;
      do_return vm
  | Sp_get_timer ->
      vm.acc <- Int (max vm.timer 0);
      do_return vm
  | Sp_stats ->
      let name =
        match seg.(fp + 2) with
        | Sym s -> s
        | v -> Values.type_error "%stat" "symbol" v
      in
      (vm.acc <-
         (match Stats.get vm.stats name with
         | n -> Int n
         | exception Not_found ->
             Values.err ("%stat: unknown counter " ^ name) []));
      do_return vm
  | Sp_backtrace ->
      vm.acc <-
        Values.list_to_value
          (List.map (fun n -> sym n) (Control.backtrace m));
      do_return vm
  | Sp_eval ->
      let datum = seg.(fp + 2) in
      let code =
        Compiler.compile_eval ~hygiene:vm.hygiene ~menv:vm.menv vm.globals
          datum
      in
      let clos = Closure { code; frees = [||] } in
      seg.(fp + 1) <- clos;
      apply vm clos fp 0
  | Sp_dynamic_wind when nargs = 3 ->
      (* Entry: extend the frame in place with state/saved slots
         ([ret][prim][before][thunk][after][state][saved]) and call the
         before thunk through [dw_ret_before].  Resumptions re-enter
         this special via [Prims.dw_resume_code] with nargs = 5. *)
      Control.ensure_room m ~live_top:(fp + 5) ~need:12;
      let fp = m.Control.fp in
      let seg = m.Control.sr.seg in
      seg.(fp + 5) <- Int 0;
      seg.(fp + 6) <- Void;
      let before = seg.(fp + 2) in
      seg.(fp + 7) <- Prims.dw_ret_before;
      seg.(fp + 8) <- before;
      (* Preset the resumption point: a pure-primitive guard pushes no
         frame and falls through to the relaunch, which must land
         exactly where a normal return through the ret slot would. *)
      vm.code <- Prims.dw_resume_code;
      vm.pc <- 0;
      apply vm before (fp + 7) 0
  | Sp_dynamic_wind -> (
      if nargs <> 5 then
        Values.err "%dynamic-wind: expected 3 arguments" [];
      match seg.(fp + 5) with
      | Int 1 ->
          (* before returned: enter the extent, run the thunk *)
          vm.winders <-
            { w_before = seg.(fp + 2); w_after = seg.(fp + 4) } :: vm.winders;
          let thunk = seg.(fp + 3) in
          seg.(fp + 7) <- Prims.dw_ret_thunk;
          seg.(fp + 8) <- thunk;
          vm.code <- Prims.dw_resume_code;
          vm.pc <- 2;
          apply vm thunk (fp + 7) 0
      | Int 2 ->
          (* thunk returned (value stashed at fp+6): leave the extent
             *before* running the after thunk, as the prelude does *)
          (match vm.winders with
          | _ :: rest -> vm.winders <- rest
          | [] -> ());
          let after = seg.(fp + 4) in
          seg.(fp + 7) <- Prims.dw_ret_after;
          seg.(fp + 8) <- after;
          vm.code <- Prims.dw_resume_code;
          vm.pc <- 5;
          apply vm after (fp + 7) 0
      | Int 3 ->
          vm.acc <- seg.(fp + 6);
          do_return vm
      | v -> Values.err "vm: corrupt %dynamic-wind frame" [ v ])
  | Sp_wind -> wind_step vm

(* Tail-call [p] with the single argument [k] from the current frame
   (used by the capture operations after sealing). *)
and tail_apply_2 vm p k =
  let m = vm.pol in
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  seg.(fp + 1) <- p;
  seg.(fp + 2) <- k;
  apply vm p fp 1

(* ------------------------------------------------------------------ *)
(* Engine transfer hooks                                               *)
(* ------------------------------------------------------------------ *)

(* Slow-path [Call]: the engine has synced and counted the frame; write
   the interned return address and dispatch. *)
let call (vm : t) site f =
  let m = vm.pol in
  let nfp = m.Control.fp + site.cs_disp in
  m.Control.sr.seg.(nfp) <- site.cs_ret;
  apply vm f nfp site.cs_nargs

(* Slow-path [Tail_call]: frame reused in place, return slot
   inherited. *)
let tail_call (vm : t) ~disp ~nargs f =
  let m = vm.pol in
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  seg.(fp + 1) <- f;
  blit_args seg (fp + disp + 2) (fp + 2) nargs;
  apply vm f fp nargs

(* ------------------------------------------------------------------ *)
(* Procedure entry: arity, overflow, rest collection, timer            *)
(* ------------------------------------------------------------------ *)

let fire_timer (vm : t) =
  let m = vm.pol in
  let code = vm.code in
  let fw = code.frame_words in
  Control.ensure_room m ~live_top:(m.Control.fp + fw) ~need:(fw + 4);
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  let handler = vm.timer_handler in
  (* The fire always happens at procedure entry, so the resumption point
     (pc, displacement) is a constant of [code]: intern the return
     address on the code object instead of allocating one per
     preemption.  The guard keeps this sound should a future caller fire
     from elsewhere. *)
  let ra =
    match code.timer_ret with
    | Retaddr r as ra when r.rpc = vm.pc && r.rdisp = fw -> ra
    | _ ->
        let ra = Retaddr { rcode = code; rpc = vm.pc; rdisp = fw } in
        code.timer_ret <- ra;
        ra
  in
  seg.(fp + fw) <- ra;
  seg.(fp + fw + 1) <- handler;
  apply vm handler (fp + fw) 0

let enter (vm : t) =
  let m = vm.pol in
  let c = vm.code in
  let n = vm.nargs in
  (match c.arity with
  | Exactly k ->
      if n <> k then
        Values.err
          (Printf.sprintf "%s: expected %d arguments, got %d" c.cname k n)
          []
  | At_least k ->
      if n < k then
        Values.err
          (Printf.sprintf "%s: expected at least %d arguments, got %d" c.cname
             k n)
          []);
  Control.ensure_room m ~live_top:(m.Control.fp + 2 + n) ~need:c.frame_words;
  (match c.arity with
  | At_least k ->
      let fp = m.Control.fp in
      let seg = m.Control.sr.seg in
      let rest = ref Nil in
      for i = n - 1 downto k do
        rest := Values.cons seg.(fp + 2 + i) !rest
      done;
      seg.(fp + 2 + k) <- !rest
  | Exactly _ -> ());
  if vm.timer > 0 then begin
    vm.timer <- vm.timer - 1;
    if vm.timer = 0 then begin
      vm.timer <- -1;
      fire_timer vm
    end
  end

(* ------------------------------------------------------------------ *)
(* Inline-cache deoptimization                                         *)
(* ------------------------------------------------------------------ *)

(* The inline-cache guard failed: the global a fused site was compiled
   against has been assigned ([set!] of [+] and the like).  Reconstruct
   the generic call the peephole replaced and take the slow path with
   whatever value the cell holds now. *)
let prim_deopt_call (vm : t) site =
  let m = vm.pol in
  let stats = vm.stats in
  let g = Globals.get vm.globals site.ps_slot in
  if not g.gdefined then
    Values.err ("unbound variable: " ^ Globals.slot_name site.ps_slot) [];
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  let nfp = fp + site.ps_disp in
  seg.(nfp + 1) <- g.gval;
  seg.(nfp) <- site.ps_ret;
  if stats.Stats.enabled then begin
    stats.Stats.prim_deopts <- stats.Stats.prim_deopts + 1;
    stats.Stats.frames <- stats.Stats.frames + 1
  end;
  apply vm g.gval nfp site.ps_nargs

let prim_deopt_tail_call (vm : t) site =
  let m = vm.pol in
  let stats = vm.stats in
  if stats.Stats.enabled then
    stats.Stats.prim_deopts <- stats.Stats.prim_deopts + 1;
  let g = Globals.get vm.globals site.ps_slot in
  if not g.gdefined then
    Values.err ("unbound variable: " ^ Globals.slot_name site.ps_slot) [];
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  let f = g.gval in
  seg.(fp + 1) <- f;
  blit_args seg (fp + site.ps_disp + 2) (fp + 2) site.ps_nargs;
  apply vm f fp site.ps_nargs

(* ------------------------------------------------------------------ *)
(* Error-handler injection, machine setup                              *)
(* ------------------------------------------------------------------ *)

let inject_error_handler (vm : t) handler msg irritants =
  let m = vm.pol in
  let fw = vm.code.frame_words in
  Control.ensure_room m ~live_top:(m.Control.fp + fw) ~need:(fw + 6);
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  seg.(fp + fw) <- Retaddr { rcode = vm.code; rpc = vm.pc; rdisp = fw };
  seg.(fp + fw + 1) <- handler;
  seg.(fp + fw + 2) <- Str (Bytes.of_string msg);
  seg.(fp + fw + 3) <- Values.list_to_value irritants;
  apply vm handler (fp + fw) 2

let init_run (vm : t) code =
  let m = vm.pol in
  Control.init_frame m
    (Retaddr { rcode = Engine.halt_code; rpc = 0; rdisp = 0 });
  m.Control.sr.seg.(m.Control.fp + 1) <- Closure { code; frees = [||] }

let create ?(config = Control.default_config) ?stats () : t =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  Engine.create ~stats (Control.create ~stats config)
