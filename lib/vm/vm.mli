(** The stack virtual machine: a direct-style bytecode interpreter whose
    control stack is the paper's segmented stack ({!Control}).

    Continuation capture ([%call/cc], [%call/1cc]) seals or encapsulates
    stack segments without copying; multi-shot invocation copies (with
    splitting); one-shot invocation swaps segments; overflow at procedure
    entry is an implicit capture under the configured policy; returning
    through a segment's bottom frame underflows into the record below.

    The VM also provides the timer interrupt used to build engines and
    preemptive thread schedulers: [(%set-timer! n handler)] arranges for
    [handler] to be called, as if inserted at the interrupt point, after
    [n] further procedure entries. *)

type t = {
  m : Control.t;
  globals : Globals.t;
  menv : Macro.menv;  (** session [define-syntax] macros *)
  out : Buffer.t;  (** sink for [display]/[write]/[newline] *)
  mutable acc : Rt.value;
  mutable code : Rt.code;
  mutable pc : int;
  mutable nargs : int;
  mutable timer : int;
  mutable timer_handler : Rt.value;
  mutable halted : bool;
  mutable fuel : int;  (** negative = unlimited *)
  mutable winders : Rt.winder list;
      (** native dynamic-wind chain, innermost extent first; shares
          structure with the [k_winders] snapshots of captured
          continuations (rewind/unwind compares physically) *)
  scratch : Rt.value array array;
      (** reusable argument buffers for pure-primitive calls:
          [scratch.(k)] has length [k]; no [Array.init] on the prim-call
          fast path *)
}

exception Vm_fuel_exhausted

val create : ?config:Control.config -> ?stats:Stats.t -> unit -> t
(** A machine with primitives installed in a fresh global table. *)

val stats : t -> Stats.t

val run : ?fuel:int -> t -> Rt.code -> Rt.value
(** Execute a zero-argument code object to completion and return the value
    it halts with.  @raise Rt.Scheme_error on Scheme-level errors,
    @raise Rt.Shot_continuation when a one-shot continuation is reused,
    @raise Vm_fuel_exhausted when [fuel] instructions are exceeded. *)

val run_program : ?fuel:int -> t -> Rt.code list -> Rt.value
(** Run a compiled program form by form; the last form's value. *)

val eval :
  ?fuel:int -> ?optimize:bool -> ?peephole:bool -> t -> string -> Rt.value
(** Read, expand, compile, and run source text.  [peephole] (default
    [true]) controls the bytecode fusion pass; [optimize] (default
    [false]) the AST-level constant folder. *)

val output : t -> string
(** Text emitted by [display]/[write]/[newline] so far. *)
