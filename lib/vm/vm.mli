(** The stack virtual machine: the shared execution engine ({!Engine},
    instantiated as [Vm_core]) running over the paper's segmented stack
    ({!Control}) as its frame policy ({!Vm_policy}).

    Continuation capture ([%call/cc], [%call/1cc]) seals or encapsulates
    stack segments without copying; multi-shot invocation copies (with
    splitting); one-shot invocation swaps segments; overflow at procedure
    entry is an implicit capture under the configured policy; returning
    through a segment's bottom frame underflows into the record below.

    The VM also provides the timer interrupt used to build engines and
    preemptive thread schedulers: [(%set-timer! n handler)] arranges for
    [handler] to be called, as if inserted at the interrupt point, after
    [n] further procedure entries. *)

type t = Control.t Engine.vm

exception Vm_fuel_exhausted

val create : ?config:Control.config -> ?stats:Stats.t -> unit -> t
(** A machine with primitives installed in a fresh global table.  The
    [stats] object (freshly allocated when not supplied) is shared with
    the underlying segmented-stack machine. *)

val control : t -> Control.t
(** The machine's segmented-stack state (its frame-policy state). *)

val stats : t -> Stats.t
val globals : t -> Globals.t

val run : ?fuel:int -> t -> Rt.code -> Rt.value
(** Execute a zero-argument code object to completion and return the value
    it halts with.  @raise Rt.Scheme_error on Scheme-level errors,
    @raise Rt.Shot_continuation when a one-shot continuation is reused,
    @raise Vm_fuel_exhausted when [fuel] instructions are exceeded. *)

val run_program : ?fuel:int -> t -> Rt.code list -> Rt.value
(** Run a compiled program form by form; the last form's value. *)

val eval :
  ?fuel:int ->
  ?optimize:bool ->
  ?peephole:bool ->
  ?regalloc:bool ->
  ?verify:bool ->
  t ->
  string ->
  Rt.value
(** Read, expand, compile, and run source text.  [peephole] (default
    [true]) controls the bytecode fusion pass; [regalloc] (default
    [true]) its register-lowering stage; [optimize] (default [false])
    the AST-level constant folder. *)

val eval_datum :
  ?fuel:int ->
  ?optimize:bool ->
  ?peephole:bool ->
  ?regalloc:bool ->
  ?verify:bool ->
  t ->
  Sexp.t ->
  Rt.value
(** Like {!eval} for one already-read top-level datum, so a driver can
    attribute failures to the datum's source position. *)

val output : t -> string
(** Text emitted by [display]/[write]/[newline] so far. *)
