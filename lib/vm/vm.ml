open Rt

type t = {
  m : Control.t;
  globals : Globals.t;
  menv : Macro.menv;
  out : Buffer.t;
  mutable acc : value;
  mutable code : code;
  mutable pc : int;
  mutable nargs : int;
  mutable timer : int;
  mutable timer_handler : value;
  mutable halted : bool;
  mutable fuel : int;
  mutable winders : winder list;
      (* native dynamic-wind chain, innermost first; shares structure
         with the [k_winders] snapshots of captured continuations, so
         rewind/unwind targets compare by physical equality *)
  scratch : value array array;
      (* scratch.(k), k <= max_scratch, is a reusable length-k argument
         buffer for pure-primitive application: no per-call Array.init.
         Safe because no pure primitive retains its argument array and
         pure primitives never re-enter the VM. *)
}

exception Vm_fuel_exhausted

let max_scratch = 8

let halt_code =
  Bytecode.make_code ~name:"%halt" ~arity:(Exactly 0) ~frame_words:2 [| Halt |]

let create ?(config = Control.default_config) ?stats () =
  let out = Buffer.create 256 in
  let globals = Globals.create () in
  Prims.install ~out globals;
  let vm =
    {
      m = Control.create ?stats config;
      globals;
      menv = Macro.create_menv ();
      out;
      acc = Void;
      code = halt_code;
      pc = 0;
      nargs = 0;
      timer = -1;
      timer_handler = Void;
      halted = false;
      fuel = -1;
      winders = [];
      scratch = Array.init (max_scratch + 1) (fun k -> Array.make k Void);
    }
  in
  (* The timer accessors are per-machine state with no control effect, so
     rebind them as [Pure] primitives closing over this vm: pure prims
     are applied in-line (no frame, no special dispatch) and are eligible
     for primitive-call fusion.  The scheduler re-arms the timer once per
     context switch, which made the generic special-call round trip
     measurable hot-path overhead in experiment e2.  The [Special]
     handlers remain as the fallback semantics of record. *)
  let pure name parity fn =
    Globals.define globals name (Prim { pname = name; parity; pfn = Pure fn })
  in
  pure "%set-timer!" (Exactly 2) (fun args ->
      let ticks = Prims.check_int "%set-timer!" args.(0) in
      vm.timer_handler <- args.(1);
      vm.timer <- (if ticks <= 0 then -1 else ticks);
      Void);
  pure "%get-timer" (Exactly 0) (fun _ -> Int (max vm.timer 0));
  vm

let stats vm = vm.m.Control.stats
let output vm = Buffer.contents vm.out

(* ------------------------------------------------------------------ *)
(* Returns and underflow                                               *)
(* ------------------------------------------------------------------ *)

(* A frame re-entered after a return or continuation invocation may sit
   near the top of a smaller segment than the one its [Enter] validated:
   re-establish the frame-extent guarantee before its code resumes. *)
let ensure_resumed_frame_room vm =
  let m = vm.m in
  let fw = vm.code.frame_words in
  if not (Control.room m fw) then
    Control.ensure_room m ~live_top:(m.Control.fp + fw) ~need:fw

let do_return vm =
  let m = vm.m in
  match m.Control.sr.seg.(m.Control.fp) with
  | Retaddr r ->
      m.Control.fp <- m.Control.fp - r.rdisp;
      vm.code <- r.rcode;
      vm.pc <- r.rpc;
      ensure_resumed_frame_room vm
  | Underflow_mark -> (
      (* Paper Section 3.2: returning through the bottom frame of a
         segment implicitly invokes the record linked below — consuming
         it if it is one-shot. *)
      match Control.underflow m with
      | Some r ->
          vm.code <- r.rcode;
          vm.pc <- r.rpc;
          ensure_resumed_frame_room vm
      | None -> vm.halted <- true)
  | v -> Values.err "vm: corrupt frame: bad return slot" [ v ]

(* ------------------------------------------------------------------ *)
(* Application                                                         *)
(* ------------------------------------------------------------------ *)

(* Collect [nargs] argument values starting at [seg.(base)] into a
   reusable scratch buffer (falling back to a fresh array for rare
   high-arity calls).  Every pure primitive either destructures or
   copies its argument array, so reuse across calls is safe. *)
let prim_args vm seg base nargs =
  if nargs <= max_scratch then begin
    let args = vm.scratch.(nargs) in
    for i = 0 to nargs - 1 do
      Array.unsafe_set args i seg.(base + i)
    done;
    args
  end
  else Array.init nargs (fun i -> seg.(base + i))

(* Move [n] argument slots within one segment ([dst] strictly below
   [src], so an ascending copy is safe).  Small counts dominate; avoid
   the [caml_array_blit] call for them. *)
let[@inline] blit_args seg src dst n =
  if n = 1 then seg.(dst) <- seg.(src)
  else if n = 2 then begin
    seg.(dst) <- seg.(src);
    seg.(dst + 1) <- seg.(src + 1)
  end
  else if n > 0 then Array.blit seg src seg dst n

(* Build [seg.(base) :: ... :: seg.(base + i) :: acc] without an
   intermediate array (multiple-values construction). *)
let rec collect_list seg base i acc =
  if i < 0 then acc else collect_list seg base (i - 1) (seg.(base + i) :: acc)

let empty_mvals = Mvals []

(* Apply [f] whose frame starts at [nfp] (return slot already correct and
   arguments at [nfp+2 ..]).  Used for both non-tail calls (fresh return
   address) and tail calls (inherited return slot). *)
let rec apply vm f nfp nargs =
  let m = vm.m in
  let stats = m.Control.stats in
  match f with
  | Closure c ->
      m.Control.fp <- nfp;
      vm.code <- c.code;
      vm.pc <- 0;
      vm.nargs <- nargs;
      if stats.Stats.enabled then stats.Stats.calls <- stats.Stats.calls + 1
  | Prim { pfn = Pure fn; parity; pname } ->
      if not (Bytecode.arity_matches parity nargs) then
        Values.err (pname ^ ": wrong number of arguments") [];
      let seg = m.Control.sr.seg in
      let args = prim_args vm seg (nfp + 2) nargs in
      if stats.Stats.enabled then
        stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
      vm.acc <- fn args;
      (* Frame pointer is untouched for pure primitives: if this was a
         tail call ([nfp] = fp) the caller's Return follows; if it was a
         non-tail call, execution simply continues in the caller. *)
      if nfp = m.Control.fp then do_return vm
  | Prim { pfn = Special sp; parity; pname } ->
      if not (Bytecode.arity_matches parity nargs) then
        Values.err (pname ^ ": wrong number of arguments") [];
      m.Control.fp <- nfp;
      if stats.Stats.enabled then
        stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
      special vm sp nargs
  | Cont c -> invoke_continuation vm c nfp nargs
  | v -> Values.err "application of non-procedure" [ v ]

and invoke_continuation vm c nfp nargs =
  let m = vm.m in
  let seg = m.Control.sr.seg in
  let v =
    if nargs = 1 then seg.(nfp + 2)
    else if nargs = 0 then empty_mvals
    else if nargs = 2 then Mvals [ seg.(nfp + 2); seg.(nfp + 3) ]
    else Mvals (collect_list seg (nfp + 2) (nargs - 1) [])
  in
  (* Fast path: the machine already sits at the continuation's winder
     chain (physical equality) — reinstate directly.  Under the
     [--scheme-winders] prelude both chains stay [[]], so this is
     exactly the historical behavior. *)
  if c.k_winders == vm.winders then reinstate_cont vm c v
  else start_wind vm c v

and reinstate_cont vm c v =
  let m = vm.m in
  let r = Control.reinstate m c.sr in
  vm.code <- r.rcode;
  vm.pc <- r.rpc;
  ensure_resumed_frame_room vm;
  vm.acc <- v

(* The winder chains differ: push a wind-trampoline frame above the
   current frame and step it.  The frame records the continuation, its
   payload, the target chain and a pending-commit slot (see the layout
   comment in [Prims]); every guard thunk returns through [wind_ret],
   whose single instruction tail-calls back into [Sp_wind].  Capturing
   inside a guard therefore snapshots ordinary frames and the protocol
   survives re-entry. *)
and start_wind vm c v =
  let m = vm.m in
  let fw = vm.code.frame_words in
  Control.ensure_room m ~live_top:(m.Control.fp + fw) ~need:(fw + 12);
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  let dfp = fp + fw in
  seg.(dfp) <- Retaddr { rcode = vm.code; rpc = vm.pc; rdisp = fw };
  seg.(dfp + 1) <- Prim Prims.wind_prim;
  seg.(dfp + 2) <- Cont c;
  seg.(dfp + 3) <- v;
  seg.(dfp + 4) <- WindersV c.k_winders;
  seg.(dfp + 5) <- Bool false;
  m.Control.fp <- dfp;
  wind_step vm

(* One trampoline step.  fp is at a wind frame; room for the guard call
   area (fp+6, fp+7) is guaranteed by [start_wind]'s [ensure_room] on
   entry and by [wind_resume_code.frame_words] on every re-entry.
   Ordering matches the prelude's [%do-winds] exactly: an unwind pops
   the machine chain *before* running the after thunk (innermost
   first); a rewind runs the before thunk first and commits the chain
   only when it returns (outermost first), via the pending slot. *)
and wind_step vm =
  let m = vm.m in
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  (match seg.(fp + 5) with
  | WindersV w ->
      (* A before thunk just returned: commit its extent. *)
      vm.winders <- w;
      seg.(fp + 5) <- Bool false
  | _ -> ());
  let target =
    match seg.(fp + 4) with
    | WindersV w -> w
    | v -> Values.err "vm: corrupt wind frame" [ v ]
  in
  let cur = vm.winders in
  if cur == target then
    (* Done: reinstate.  A shot one-shot record raises here, after the
       winds have run — the same point the Scheme wrapper checks. *)
    match seg.(fp + 2) with
    | Cont c -> reinstate_cont vm c seg.(fp + 3)
    | v -> Values.err "vm: corrupt wind frame" [ v ]
  else begin
    (* The chains share structure: align lengths, then walk both to the
       physically common tail. *)
    let rec drop n l = if n <= 0 then l else drop (n - 1) (List.tl l) in
    let lc = List.length cur and lt = List.length target in
    let rec common a b = if a == b then a else common (List.tl a) (List.tl b) in
    let base =
      common
        (if lc > lt then drop (lc - lt) cur else cur)
        (if lt > lc then drop (lt - lc) target else target)
    in
    let thunk =
      if cur != base then
        match cur with
        | w :: rest ->
            vm.winders <- rest;
            w.w_after
        | [] -> assert false
      else begin
        (* Rewind: the next extent to enter is the node of [target]
           whose tail is the current chain. *)
        let rec find l =
          match l with
          | w :: rest when rest == cur -> (w, l)
          | _ :: rest -> find rest
          | [] -> assert false
        in
        let w, node = find target in
        seg.(fp + 5) <- WindersV node;
        w.w_before
      end
    in
    seg.(fp + 6) <- Prims.wind_ret;
    seg.(fp + 7) <- thunk;
    (* Preset the resumption point for frame-less (pure) guards, as in
       the [Sp_dynamic_wind] arms. *)
    vm.code <- Prims.wind_resume_code;
    vm.pc <- 0;
    apply vm thunk (fp + 6) 0
  end

(* Specials execute with fp at their own frame: [ret][prim][args...]. *)
and special vm sp nargs =
  let m = vm.m in
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  match sp with
  | Sp_callcc ->
      let p = Prims.check_procedure "%call/cc" seg.(fp + 2) in
      let sr = Control.capture_multi m in
      let k = Cont { sr; one_shot = false; k_winders = vm.winders } in
      tail_apply_2 vm p k
  | Sp_call1cc ->
      let p = Prims.check_procedure "%call/1cc" seg.(fp + 2) in
      let sr = Control.capture_oneshot m in
      let one_shot = not (Control.is_multi sr) in
      let k = Cont { sr; one_shot; k_winders = vm.winders } in
      tail_apply_2 vm p k
  | Sp_apply ->
      let f = Prims.check_procedure "apply" seg.(fp + 2) in
      let fixed = nargs - 2 in
      let lst = seg.(fp + 2 + nargs - 1) in
      (* Spread the last-argument list in place: count it (validating
         properness), make room while keeping the whole current frame
         live, shift the fixed args down one slot, then walk the list a
         second time writing elements directly into the frame.  No
         intermediate arrays or list copies. *)
      let rec spread_len v n =
        match v with
        | Nil -> n
        | Pair p -> spread_len p.cdr (n + 1)
        | _ -> Values.err "apply: expected a proper list" [ lst ]
      in
      let rest = spread_len lst 0 in
      let n = fixed + rest in
      Control.ensure_room m ~live_top:(fp + 2 + nargs) ~need:(n + 8);
      let fp = m.Control.fp in
      let seg = m.Control.sr.seg in
      seg.(fp + 1) <- f;
      for i = 0 to fixed - 1 do
        seg.(fp + 2 + i) <- seg.(fp + 3 + i)
      done;
      let rec spread_fill v i =
        match v with
        | Pair p ->
            seg.(i) <- p.car;
            spread_fill p.cdr (i + 1)
        | _ -> ()
      in
      spread_fill lst (fp + 2 + fixed);
      apply vm f fp n
  | Sp_values ->
      (if nargs = 1 then vm.acc <- seg.(fp + 2)
       else if nargs = 0 then vm.acc <- empty_mvals
       else if nargs = 2 then vm.acc <- Mvals [ seg.(fp + 2); seg.(fp + 3) ]
       else vm.acc <- Mvals (collect_list seg (fp + 2) (nargs - 1) []));
      do_return vm
  | Sp_set_timer ->
      let ticks = Prims.check_int "%set-timer!" seg.(fp + 2) in
      vm.timer_handler <- seg.(fp + 3);
      vm.timer <- (if ticks <= 0 then -1 else ticks);
      vm.acc <- Void;
      do_return vm
  | Sp_get_timer ->
      vm.acc <- Int (max vm.timer 0);
      do_return vm
  | Sp_stats ->
      let name =
        match seg.(fp + 2) with
        | Sym s -> s
        | v -> Values.type_error "%stat" "symbol" v
      in
      (vm.acc <-
         (match Stats.get m.Control.stats name with
         | n -> Int n
         | exception Not_found ->
             Values.err ("%stat: unknown counter " ^ name) []));
      do_return vm
  | Sp_backtrace ->
      vm.acc <-
        Values.list_to_value
          (List.map (fun n -> sym n) (Control.backtrace m));
      do_return vm
  | Sp_eval ->
      let datum = seg.(fp + 2) in
      let code = Compiler.compile_eval ~menv:vm.menv vm.globals datum in
      let clos = Closure { code; frees = [||] } in
      seg.(fp + 1) <- clos;
      apply vm clos fp 0
  | Sp_dynamic_wind when nargs = 3 ->
      (* Entry: extend the frame in place with state/saved slots
         ([ret][prim][before][thunk][after][state][saved]) and call the
         before thunk through [dw_ret_before].  Resumptions re-enter
         this special via [Prims.dw_resume_code] with nargs = 5. *)
      Control.ensure_room m ~live_top:(fp + 5) ~need:12;
      let fp = m.Control.fp in
      let seg = m.Control.sr.seg in
      seg.(fp + 5) <- Int 0;
      seg.(fp + 6) <- Void;
      let before = seg.(fp + 2) in
      seg.(fp + 7) <- Prims.dw_ret_before;
      seg.(fp + 8) <- before;
      (* Preset the resumption point: a pure-primitive guard pushes no
         frame and falls through to [relaunch], which must land exactly
         where a normal return through the ret slot would. *)
      vm.code <- Prims.dw_resume_code;
      vm.pc <- 0;
      apply vm before (fp + 7) 0
  | Sp_dynamic_wind -> (
      if nargs <> 5 then
        Values.err "%dynamic-wind: expected 3 arguments" [];
      match seg.(fp + 5) with
      | Int 1 ->
          (* before returned: enter the extent, run the thunk *)
          vm.winders <-
            { w_before = seg.(fp + 2); w_after = seg.(fp + 4) } :: vm.winders;
          let thunk = seg.(fp + 3) in
          seg.(fp + 7) <- Prims.dw_ret_thunk;
          seg.(fp + 8) <- thunk;
          vm.code <- Prims.dw_resume_code;
          vm.pc <- 2;
          apply vm thunk (fp + 7) 0
      | Int 2 ->
          (* thunk returned (value stashed at fp+6): leave the extent
             *before* running the after thunk, as the prelude does *)
          (match vm.winders with
          | _ :: rest -> vm.winders <- rest
          | [] -> ());
          let after = seg.(fp + 4) in
          seg.(fp + 7) <- Prims.dw_ret_after;
          seg.(fp + 8) <- after;
          vm.code <- Prims.dw_resume_code;
          vm.pc <- 5;
          apply vm after (fp + 7) 0
      | Int 3 ->
          vm.acc <- seg.(fp + 6);
          do_return vm
      | v -> Values.err "vm: corrupt %dynamic-wind frame" [ v ])
  | Sp_wind -> wind_step vm

(* Tail-call [p] with the single argument [k] from the current frame
   (used by the capture operations after sealing). *)
and tail_apply_2 vm p k =
  let m = vm.m in
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  seg.(fp + 1) <- p;
  seg.(fp + 2) <- k;
  apply vm p fp 1

(* ------------------------------------------------------------------ *)
(* Procedure entry: arity, overflow, rest collection, timer            *)
(* ------------------------------------------------------------------ *)

let fire_timer vm =
  let m = vm.m in
  let code = vm.code in
  let fw = code.frame_words in
  Control.ensure_room m ~live_top:(m.Control.fp + fw) ~need:(fw + 4);
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  let handler = vm.timer_handler in
  (* The fire always happens at procedure entry, so the resumption point
     (pc, displacement) is a constant of [code]: intern the return
     address on the code object instead of allocating one per
     preemption.  The guard keeps this sound should a future caller fire
     from elsewhere. *)
  let ra =
    match code.timer_ret with
    | Retaddr r as ra when r.rpc = vm.pc && r.rdisp = fw -> ra
    | _ ->
        let ra = Retaddr { rcode = code; rpc = vm.pc; rdisp = fw } in
        code.timer_ret <- ra;
        ra
  in
  seg.(fp + fw) <- ra;
  seg.(fp + fw + 1) <- handler;
  apply vm handler (fp + fw) 0

let enter vm =
  let m = vm.m in
  let c = vm.code in
  let n = vm.nargs in
  (match c.arity with
  | Exactly k ->
      if n <> k then
        Values.err
          (Printf.sprintf "%s: expected %d arguments, got %d" c.cname k n)
          []
  | At_least k ->
      if n < k then
        Values.err
          (Printf.sprintf "%s: expected at least %d arguments, got %d" c.cname
             k n)
          []);
  Control.ensure_room m ~live_top:(m.Control.fp + 2 + n) ~need:c.frame_words;
  (match c.arity with
  | At_least k ->
      let fp = m.Control.fp in
      let seg = m.Control.sr.seg in
      let rest = ref Nil in
      for i = n - 1 downto k do
        rest := Values.cons seg.(fp + 2 + i) !rest
      done;
      seg.(fp + 2 + k) <- !rest
  | Exactly _ -> ());
  if vm.timer > 0 then begin
    vm.timer <- vm.timer - 1;
    if vm.timer = 0 then begin
      vm.timer <- -1;
      fire_timer vm
    end
  end

(* ------------------------------------------------------------------ *)
(* Inline-cache deoptimization                                         *)
(* ------------------------------------------------------------------ *)

(* The inline-cache guard failed: the global a fused site was compiled
   against has been assigned ([set!] of [+] and the like).  Reconstruct
   the generic call the peephole replaced and take the slow path with
   whatever value the cell holds now. *)
let prim_deopt_call vm site =
  let m = vm.m in
  let stats = m.Control.stats in
  let g = site.ps_global in
  if not g.gdefined then Values.err ("unbound variable: " ^ g.gname) [];
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  let nfp = fp + site.ps_disp in
  seg.(nfp + 1) <- g.gval;
  seg.(nfp) <- site.ps_ret;
  if stats.Stats.enabled then begin
    stats.Stats.prim_deopts <- stats.Stats.prim_deopts + 1;
    stats.Stats.frames <- stats.Stats.frames + 1
  end;
  apply vm g.gval nfp site.ps_nargs

let prim_deopt_tail_call vm site =
  let m = vm.m in
  let stats = m.Control.stats in
  if stats.Stats.enabled then
    stats.Stats.prim_deopts <- stats.Stats.prim_deopts + 1;
  let g = site.ps_global in
  if not g.gdefined then Values.err ("unbound variable: " ^ g.gname) [];
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  let f = g.gval in
  seg.(fp + 1) <- f;
  blit_args seg (fp + site.ps_disp + 2) (fp + 2) site.ps_nargs;
  apply vm f fp site.ps_nargs

(* ------------------------------------------------------------------ *)
(* Error-handler injection                                             *)
(* ------------------------------------------------------------------ *)

(* Runtime errors unwind to Scheme when a handler is installed: the VM
   pops the head of the %error-handlers list and calls it with the
   message and irritants at the point of the error (handlers normally
   escape through a continuation; if one returns, its value becomes the
   value of the faulting operation). *)
let pop_error_handler vm =
  match Globals.lookup_opt vm.globals "%error-handlers" with
  | Some (Pair p) ->
      let h = p.car in
      Globals.define vm.globals "%error-handlers" p.cdr;
      Some h
  | _ -> None

let inject_error_handler vm handler msg irritants =
  let m = vm.m in
  let fw = vm.code.frame_words in
  Control.ensure_room m ~live_top:(m.Control.fp + fw) ~need:(fw + 6);
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  seg.(fp + fw) <- Retaddr { rcode = vm.code; rpc = vm.pc; rdisp = fw };
  seg.(fp + fw + 1) <- handler;
  seg.(fp + fw + 2) <- Str (Bytes.of_string msg);
  seg.(fp + fw + 3) <- Values.list_to_value irritants;
  apply vm handler (fp + fw) 2

(* ------------------------------------------------------------------ *)
(* The dispatch loop                                                   *)
(* ------------------------------------------------------------------ *)

(* The loop executes one *landing* at a time: a run of instructions
   between control transfers, all within one code object, one frame and
   one stack segment.  For the duration of a landing the hot state lives
   in parameters (so the native compiler keeps it in registers):

     [instrs]  the current code object's instruction array
     [seg]     the active segment array ([m.sr.seg]); a GC root, so the
               runtime relocates it like any other local if a minor
               collection moves the block
     [fp]      cached copy of [m.Control.fp] (never written mid-landing)
     [limit]   cached [Control.seg_limit m] for the Enter fast path
     [acc]     the accumulator
     [pc]      index of the instruction about to execute
     [steps]   instructions executed in this landing but not yet added
               to [stats.instrs] / subtracted from [vm.fuel]
     [budget]  instructions this landing may still execute before the
               fuel check must run ([max_int] when fuel is unlimited)

   [sync] writes the batched state back ([vm.pc], [vm.acc], instruction
   counter, fuel); it MUST run before any operation that can observe
   [vm.pc] or raise — control transfers, primitive application (prims
   raise Scheme_error), and every error branch.  After [sync] the [pc]
   argument is the address *after* the current instruction, matching the
   historical "pc already incremented" semantics that error-handler
   injection and the deopt return addresses rely on.

   Instruction fetch uses [Array.unsafe_get]: [Bytecode.make_code]
   validates that code cannot fall off the end and that branch targets
   are in range, and [relaunch] bounds-checks every landing's entry pc,
   so [pc] is always in range here. *)

let[@inline] sync vm steps pc acc =
  vm.pc <- pc;
  vm.acc <- acc;
  let stats = vm.m.Control.stats in
  if stats.Stats.enabled then
    stats.Stats.instrs <- stats.Stats.instrs + steps;
  if vm.fuel >= 0 then vm.fuel <- vm.fuel - steps

let rec exec vm instrs seg fp limit budget acc steps pc =
  if steps >= budget then begin
    sync vm steps pc acc;
    raise Vm_fuel_exhausted
  end;
  match Array.unsafe_get instrs pc with
  | Const v -> exec vm instrs seg fp limit budget v (steps + 1) (pc + 1)
  | Local_ref i ->
      exec vm instrs seg fp limit budget seg.(fp + i) (steps + 1) (pc + 1)
  | Local_set i ->
      seg.(fp + i) <- acc;
      exec vm instrs seg fp limit budget acc (steps + 1) (pc + 1)
  | Box_init i ->
      seg.(fp + i) <- Box (ref seg.(fp + i));
      let stats = vm.m.Control.stats in
      if stats.Stats.enabled then
        stats.Stats.boxes_made <- stats.Stats.boxes_made + 1;
      exec vm instrs seg fp limit budget acc (steps + 1) (pc + 1)
  | Box_ref i -> (
      match seg.(fp + i) with
      | Box r -> exec vm instrs seg fp limit budget !r (steps + 1) (pc + 1)
      | v ->
          sync vm (steps + 1) (pc + 1) acc;
          Values.err "vm: box-ref of non-box" [ v ])
  | Box_set i -> (
      match seg.(fp + i) with
      | Box r ->
          r := acc;
          exec vm instrs seg fp limit budget acc (steps + 1) (pc + 1)
      | v ->
          sync vm (steps + 1) (pc + 1) acc;
          Values.err "vm: box-set of non-box" [ v ])
  | Free_ref i -> (
      match seg.(fp + 1) with
      | Closure c ->
          exec vm instrs seg fp limit budget c.frees.(i) (steps + 1) (pc + 1)
      | v ->
          sync vm (steps + 1) (pc + 1) acc;
          Values.err "vm: free-ref outside closure" [ v ])
  | Free_box_ref i -> (
      match seg.(fp + 1) with
      | Closure c -> (
          match c.frees.(i) with
          | Box r -> exec vm instrs seg fp limit budget !r (steps + 1) (pc + 1)
          | v ->
              sync vm (steps + 1) (pc + 1) acc;
              Values.err "vm: free-box-ref of non-box" [ v ])
      | v ->
          sync vm (steps + 1) (pc + 1) acc;
          Values.err "vm: free-box-ref outside closure" [ v ])
  | Free_box_set i -> (
      match seg.(fp + 1) with
      | Closure c -> (
          match c.frees.(i) with
          | Box r ->
              r := acc;
              exec vm instrs seg fp limit budget acc (steps + 1) (pc + 1)
          | v ->
              sync vm (steps + 1) (pc + 1) acc;
              Values.err "vm: free-box-set of non-box" [ v ])
      | v ->
          sync vm (steps + 1) (pc + 1) acc;
          Values.err "vm: free-box-set outside closure" [ v ])
  | Global_ref g ->
      if g.gdefined then
        exec vm instrs seg fp limit budget g.gval (steps + 1) (pc + 1)
      else begin
        sync vm (steps + 1) (pc + 1) acc;
        Values.err ("unbound variable: " ^ g.gname) []
      end
  | Global_set g ->
      if g.gdefined then begin
        g.gval <- acc;
        exec vm instrs seg fp limit budget acc (steps + 1) (pc + 1)
      end
      else begin
        sync vm (steps + 1) (pc + 1) acc;
        Values.err ("set! of unbound variable: " ^ g.gname) []
      end
  | Global_define g ->
      g.gval <- acc;
      g.gdefined <- true;
      exec vm instrs seg fp limit budget acc (steps + 1) (pc + 1)
  | Make_closure (code, caps) ->
      let ncaps = Array.length caps in
      let frees = if ncaps = 0 then [||] else Array.make ncaps Void in
      for i = 0 to ncaps - 1 do
        frees.(i) <-
          (match Array.unsafe_get caps i with
          | Cap_local j -> seg.(fp + j)
          | Cap_free j -> (
              match seg.(fp + 1) with
              | Closure c -> c.frees.(j)
              | v ->
                  sync vm (steps + 1) (pc + 1) acc;
                  Values.err "vm: capture outside closure" [ v ]))
      done;
      let stats = vm.m.Control.stats in
      if stats.Stats.enabled then
        stats.Stats.closures_made <- stats.Stats.closures_made + 1;
      exec vm instrs seg fp limit budget
        (Closure { code; frees })
        (steps + 1) (pc + 1)
  | Branch t -> exec vm instrs seg fp limit budget acc (steps + 1) t
  | Branch_false t ->
      exec vm instrs seg fp limit budget acc (steps + 1)
        (match acc with Bool false -> t | _ -> pc + 1)
  | Call site -> (
      let nfp = fp + site.cs_disp in
      match seg.(nfp + 1) with
      | Closure c ->
          (* Same-segment call: the callee's frame lives on the segment
             we already hold, so transfer control without leaving the
             loop.  The return address is the per-site constant interned
             by [Bytecode.backpatch]: no allocation on the call path.
             [vm.pc] stays stale here — every observation point (error
             branches, slow-path transfers) syncs its own pc first. *)
          seg.(nfp) <- site.cs_ret;
          vm.code <- c.code;
          vm.nargs <- site.cs_nargs;
          vm.m.Control.fp <- nfp;
          let stats = vm.m.Control.stats in
          if stats.Stats.enabled then begin
            stats.Stats.instrs <- stats.Stats.instrs + steps + 1;
            stats.Stats.frames <- stats.Stats.frames + 1;
            stats.Stats.calls <- stats.Stats.calls + 1
          end;
          if vm.fuel >= 0 then vm.fuel <- vm.fuel - (steps + 1);
          exec vm c.code.instrs seg nfp limit (budget - (steps + 1)) acc 0 0
      | Prim { pfn = Pure fn; parity; pname } ->
          (* Pure primitives return straight to the fall-through pc: no
             return address is written and fp never moves, so the call
             stays inside the landing (with the batched counters flushed
             first, because [fn] may raise). *)
          sync vm (steps + 1) (pc + 1) acc;
          if not (Bytecode.arity_matches parity site.cs_nargs) then
            Values.err (pname ^ ": wrong number of arguments") [];
          let stats = vm.m.Control.stats in
          if stats.Stats.enabled then
            stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          let v = fn (prim_args vm seg (nfp + 2) site.cs_nargs) in
          exec vm instrs seg fp limit (budget - (steps + 1)) v 0 (pc + 1)
      | f ->
          seg.(nfp) <- site.cs_ret;
          sync vm (steps + 1) (pc + 1) acc;
          let stats = vm.m.Control.stats in
          if stats.Stats.enabled then
            stats.Stats.frames <- stats.Stats.frames + 1;
          apply vm f nfp site.cs_nargs;
          relaunch vm)
  | Tail_call { disp; nargs } -> (
      let src = fp + disp in
      let f = seg.(src + 1) in
      match f with
      | Closure c ->
          (* Same-segment tail call: frame is reused in place. *)
          seg.(fp + 1) <- f;
          blit_args seg (src + 2) (fp + 2) nargs;
          vm.code <- c.code;
          vm.nargs <- nargs;
          let stats = vm.m.Control.stats in
          if stats.Stats.enabled then begin
            stats.Stats.instrs <- stats.Stats.instrs + steps + 1;
            stats.Stats.calls <- stats.Stats.calls + 1
          end;
          if vm.fuel >= 0 then vm.fuel <- vm.fuel - (steps + 1);
          exec vm c.code.instrs seg fp limit (budget - (steps + 1)) acc 0 0
      | _ ->
          seg.(fp + 1) <- f;
          blit_args seg (src + 2) (fp + 2) nargs;
          sync vm (steps + 1) (pc + 1) acc;
          apply vm f fp nargs;
          relaunch vm)
  | Return -> (
      match seg.(fp) with
      | Retaddr r when fp - r.rdisp + r.rcode.frame_words <= limit ->
          (* Same-segment return with the caller's frame extent already
             covered: skip the write-back/reload round trip.  The room
             test is exactly [ensure_resumed_frame_room]'s. *)
          let nfp = fp - r.rdisp in
          vm.code <- r.rcode;
          vm.m.Control.fp <- nfp;
          let stats = vm.m.Control.stats in
          if stats.Stats.enabled then
            stats.Stats.instrs <- stats.Stats.instrs + steps + 1;
          if vm.fuel >= 0 then vm.fuel <- vm.fuel - (steps + 1);
          exec vm r.rcode.instrs seg nfp limit (budget - (steps + 1)) acc 0
            r.rpc
      | _ ->
          sync vm (steps + 1) (pc + 1) acc;
          do_return vm;
          relaunch vm)
  | Enter -> (
      let c = vm.code in
      match c.arity with
      | Exactly k when k = vm.nargs && fp + c.frame_words <= limit ->
          (* Fast path: arity matches and the frame extent fits the
             active segment — nothing to set up.  An armed timer only
             needs its per-call decrement here; the expensive handler
             dispatch happens on the call that exhausts the slice, so
             code running under preemption (the thread benchmarks) stays
             on the fast path between switches. *)
          let t = vm.timer in
          if t > 0 then
            if t = 1 then begin
              vm.timer <- -1;
              sync vm (steps + 1) (pc + 1) acc;
              fire_timer vm;
              relaunch vm
            end
            else begin
              vm.timer <- t - 1;
              exec vm instrs seg fp limit budget acc (steps + 1) (pc + 1)
            end
          else exec vm instrs seg fp limit budget acc (steps + 1) (pc + 1)
      | _ ->
          sync vm (steps + 1) (pc + 1) acc;
          enter vm;
          relaunch vm)
  | Halt ->
      sync vm (steps + 1) (pc + 1) acc;
      vm.halted <- true
  (* ---- fused superinstructions (emitted by Optimize.peephole) ---- *)
  | Const_push (v, i) ->
      seg.(fp + i) <- v;
      exec vm instrs seg fp limit budget acc (steps + 1) (pc + 1)
  | Local_push (i, j) ->
      seg.(fp + j) <- seg.(fp + i);
      exec vm instrs seg fp limit budget acc (steps + 1) (pc + 1)
  | Free_push (i, j) -> (
      match seg.(fp + 1) with
      | Closure c ->
          seg.(fp + j) <- c.frees.(i);
          exec vm instrs seg fp limit budget acc (steps + 1) (pc + 1)
      | v ->
          sync vm (steps + 1) (pc + 1) acc;
          Values.err "vm: free-push outside closure" [ v ])
  | Global_push (g, i) ->
      if g.gdefined then begin
        seg.(fp + i) <- g.gval;
        exec vm instrs seg fp limit budget acc (steps + 1) (pc + 1)
      end
      else begin
        sync vm (steps + 1) (pc + 1) acc;
        Values.err ("unbound variable: " ^ g.gname) []
      end
  | Prim_call site ->
      sync vm (steps + 1) (pc + 1) acc;
      if site.ps_global.gval == site.ps_guard then begin
        let stats = vm.m.Control.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let v =
          site.ps_fn (prim_args vm seg (fp + site.ps_disp + 2) site.ps_nargs)
        in
        exec vm instrs seg fp limit (budget - (steps + 1)) v 0 (pc + 1)
      end
      else begin
        prim_deopt_call vm site;
        relaunch vm
      end
  | Prim_call1 site ->
      sync vm (steps + 1) (pc + 1) acc;
      if site.ps_global.gval == site.ps_guard then begin
        let stats = vm.m.Control.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(1) in
        args.(0) <- seg.(fp + site.ps_disp + 2);
        let v = site.ps_fn args in
        exec vm instrs seg fp limit (budget - (steps + 1)) v 0 (pc + 1)
      end
      else begin
        prim_deopt_call vm site;
        relaunch vm
      end
  | Prim_call2 site ->
      sync vm (steps + 1) (pc + 1) acc;
      if site.ps_global.gval == site.ps_guard then begin
        let stats = vm.m.Control.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(2) in
        let base = fp + site.ps_disp + 2 in
        args.(0) <- seg.(base);
        args.(1) <- seg.(base + 1);
        let v = site.ps_fn args in
        exec vm instrs seg fp limit (budget - (steps + 1)) v 0 (pc + 1)
      end
      else begin
        prim_deopt_call vm site;
        relaunch vm
      end
  | Local_branch_false (i, t) ->
      (* Fused Local_ref + Branch_false: one dispatch.  The skipped
         branch sits at [pc + 1]; fall through lands past it. *)
      let v = seg.(fp + i) in
      exec vm instrs seg fp limit budget v (steps + 1)
        (match v with Bool false -> t | _ -> pc + 2)
  | Prim_branch1 (site, t) ->
      sync vm (steps + 1) (pc + 1) acc;
      if site.ps_global.gval == site.ps_guard then begin
        let stats = vm.m.Control.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(1) in
        args.(0) <- seg.(fp + site.ps_disp + 2);
        let v = site.ps_fn args in
        exec vm instrs seg fp limit (budget - (steps + 1)) v 0
          (match v with Bool false -> t | _ -> pc + 2)
      end
      else begin
        (* The interned [ps_ret] resumes at the retained [Branch_false]
           at [pc + 1], which re-tests the call's returned value. *)
        prim_deopt_call vm site;
        relaunch vm
      end
  | Prim_branch2 (site, t) ->
      sync vm (steps + 1) (pc + 1) acc;
      if site.ps_global.gval == site.ps_guard then begin
        let stats = vm.m.Control.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(2) in
        let base = fp + site.ps_disp + 2 in
        args.(0) <- seg.(base);
        args.(1) <- seg.(base + 1);
        let v = site.ps_fn args in
        exec vm instrs seg fp limit (budget - (steps + 1)) v 0
          (match v with Bool false -> t | _ -> pc + 2)
      end
      else begin
        prim_deopt_call vm site;
        relaunch vm
      end
  | Prim_tail_call site ->
      sync vm (steps + 1) (pc + 1) acc;
      if site.ps_global.gval == site.ps_guard then begin
        let stats = vm.m.Control.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let v =
          site.ps_fn (prim_args vm seg (fp + site.ps_disp + 2) site.ps_nargs)
        in
        match seg.(fp) with
        | Retaddr r when fp - r.rdisp + r.rcode.frame_words <= limit ->
            (* Batched counters were already flushed by [sync] above. *)
            let nfp = fp - r.rdisp in
            vm.code <- r.rcode;
            vm.m.Control.fp <- nfp;
            exec vm r.rcode.instrs seg nfp limit (budget - (steps + 1)) v 0
              r.rpc
        | _ ->
            vm.acc <- v;
            do_return vm;
            relaunch vm
      end
      else begin
        prim_deopt_tail_call vm site;
        relaunch vm
      end

(* Re-establish the cached landing state from [vm] after a control
   transfer and continue executing (or stop, when the transfer halted the
   machine).  The entry-pc bounds check here is what licences the
   [unsafe_get] fetch inside the landing. *)
and relaunch vm =
  if not vm.halted then begin
    let instrs = vm.code.instrs in
    let pc = vm.pc in
    if pc < 0 || pc >= Array.length instrs then
      Values.err "vm: corrupt return address (pc out of range)" [];
    let m = vm.m in
    let sr = m.Control.sr in
    exec vm instrs sr.seg m.Control.fp
      (sr.base + sr.size)
      (if vm.fuel < 0 then max_int else vm.fuel)
      vm.acc 0 pc
  end

(* One hoisted exception frame per handled error, instead of the old
   per-instruction [try ... with] in [step_catching].  The handler branch
   of [match ... with exception] is outside the protected region, so the
   recursive call is a tail call: handling N errors takes O(1) stack. *)
let rec run_loop vm =
  match relaunch vm with
  | () -> ()
  | exception (Scheme_error (msg, irritants) as exn) -> (
      match pop_error_handler vm with
      | Some h ->
          inject_error_handler vm h msg irritants;
          run_loop vm
      | None -> raise exn)

let run ?(fuel = -1) vm code =
  let m = vm.m in
  Control.init_frame m (Retaddr { rcode = halt_code; rpc = 0; rdisp = 0 });
  m.Control.sr.seg.(m.Control.fp + 1) <- Closure { code; frees = [||] };
  vm.code <- code;
  vm.pc <- 0;
  vm.nargs <- 0;
  vm.acc <- Void;
  vm.halted <- false;
  vm.fuel <- fuel;
  vm.winders <- [];
  run_loop vm;
  vm.acc

let run_program ?fuel vm codes =
  List.fold_left (fun _ code -> run ?fuel vm code) Void codes

let eval ?fuel ?optimize ?peephole vm src =
  run_program ?fuel vm
    (Compiler.compile_string ?optimize ?peephole ~menv:vm.menv vm.globals src)
