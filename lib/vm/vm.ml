(* The stack VM is the engine instantiated at the segmented-stack frame
   policy: [Vm_policy] supplies the control representation, [Vm_core] is
   the shared dispatch loop of lib/engine/engine_core.ml compiled against
   it (see the codegen rule in ./dune). *)

type t = Vm_policy.t

exception Vm_fuel_exhausted = Engine.Vm_fuel_exhausted

let create = Vm_policy.create
let control (vm : t) = vm.Engine.pol
let stats = Engine.stats
let globals = Engine.globals
let output = Engine.output
let run = Vm_core.run
let run_program = Vm_core.run_program
let eval = Vm_core.eval
let eval_datum = Vm_core.eval_datum
