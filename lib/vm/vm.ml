open Rt

type t = {
  m : Control.t;
  globals : Globals.t;
  menv : Macro.menv;
  out : Buffer.t;
  mutable acc : value;
  mutable code : code;
  mutable pc : int;
  mutable nargs : int;
  mutable timer : int;
  mutable timer_handler : value;
  mutable halted : bool;
  mutable fuel : int;
  scratch : value array array;
      (* scratch.(k), k <= max_scratch, is a reusable length-k argument
         buffer for pure-primitive application: no per-call Array.init.
         Safe because no pure primitive retains its argument array and
         pure primitives never re-enter the VM. *)
}

exception Vm_fuel_exhausted

let max_scratch = 8

let halt_code =
  Bytecode.make_code ~name:"%halt" ~arity:(Exactly 0) ~frame_words:2 [| Halt |]

let create ?(config = Control.default_config) ?stats () =
  let out = Buffer.create 256 in
  let globals = Globals.create () in
  Prims.install ~out globals;
  {
    m = Control.create ?stats config;
    globals;
    menv = Macro.create_menv ();
    out;
    acc = Void;
    code = halt_code;
    pc = 0;
    nargs = 0;
    timer = -1;
    timer_handler = Void;
    halted = false;
    fuel = -1;
    scratch = Array.init (max_scratch + 1) (fun k -> Array.make k Void);
  }

let stats vm = vm.m.Control.stats
let output vm = Buffer.contents vm.out

(* ------------------------------------------------------------------ *)
(* Returns and underflow                                               *)
(* ------------------------------------------------------------------ *)

(* A frame re-entered after a return or continuation invocation may sit
   near the top of a smaller segment than the one its [Enter] validated:
   re-establish the frame-extent guarantee before its code resumes. *)
let ensure_resumed_frame_room vm =
  let m = vm.m in
  let fw = vm.code.frame_words in
  if not (Control.room m fw) then
    Control.ensure_room m ~live_top:(m.Control.fp + fw) ~need:fw

let do_return vm =
  let m = vm.m in
  match m.Control.sr.seg.(m.Control.fp) with
  | Retaddr r ->
      m.Control.fp <- m.Control.fp - r.rdisp;
      vm.code <- r.rcode;
      vm.pc <- r.rpc;
      ensure_resumed_frame_room vm
  | Underflow_mark -> (
      (* Paper Section 3.2: returning through the bottom frame of a
         segment implicitly invokes the record linked below — consuming
         it if it is one-shot. *)
      match Control.underflow m with
      | Some r ->
          vm.code <- r.rcode;
          vm.pc <- r.rpc;
          ensure_resumed_frame_room vm
      | None -> vm.halted <- true)
  | v -> Values.err "vm: corrupt frame: bad return slot" [ v ]

(* ------------------------------------------------------------------ *)
(* Application                                                         *)
(* ------------------------------------------------------------------ *)

(* Collect [nargs] argument values starting at [seg.(base)] into a
   reusable scratch buffer (falling back to a fresh array for rare
   high-arity calls).  Every pure primitive either destructures or
   copies its argument array, so reuse across calls is safe. *)
let prim_args vm seg base nargs =
  if nargs <= max_scratch then begin
    let args = vm.scratch.(nargs) in
    Array.blit seg base args 0 nargs;
    args
  end
  else Array.init nargs (fun i -> seg.(base + i))

(* Apply [f] whose frame starts at [nfp] (return slot already correct and
   arguments at [nfp+2 ..]).  Used for both non-tail calls (fresh return
   address) and tail calls (inherited return slot). *)
let rec apply vm f nfp nargs =
  let m = vm.m in
  let stats = m.Control.stats in
  match f with
  | Closure c ->
      m.Control.fp <- nfp;
      vm.code <- c.code;
      vm.pc <- 0;
      vm.nargs <- nargs;
      if stats.Stats.enabled then stats.Stats.calls <- stats.Stats.calls + 1
  | Prim { pfn = Pure fn; parity; pname } ->
      if not (Bytecode.arity_matches parity nargs) then
        Values.err (pname ^ ": wrong number of arguments") [];
      let seg = m.Control.sr.seg in
      let args = prim_args vm seg (nfp + 2) nargs in
      if stats.Stats.enabled then
        stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
      vm.acc <- fn args;
      (* Frame pointer is untouched for pure primitives: if this was a
         tail call ([nfp] = fp) the caller's Return follows; if it was a
         non-tail call, execution simply continues in the caller. *)
      if nfp = m.Control.fp then do_return vm
  | Prim { pfn = Special sp; parity; pname } ->
      if not (Bytecode.arity_matches parity nargs) then
        Values.err (pname ^ ": wrong number of arguments") [];
      m.Control.fp <- nfp;
      if stats.Stats.enabled then
        stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
      special vm sp nargs
  | Cont c -> invoke_continuation vm c nfp nargs
  | v -> Values.err "application of non-procedure" [ v ]

and invoke_continuation vm c nfp nargs =
  let m = vm.m in
  let seg = m.Control.sr.seg in
  let v =
    if nargs = 1 then seg.(nfp + 2)
    else Mvals (Array.to_list (Array.init nargs (fun i -> seg.(nfp + 2 + i))))
  in
  let r = Control.reinstate m c.sr in
  vm.code <- r.rcode;
  vm.pc <- r.rpc;
  ensure_resumed_frame_room vm;
  vm.acc <- v

(* Specials execute with fp at their own frame: [ret][prim][args...]. *)
and special vm sp nargs =
  let m = vm.m in
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  match sp with
  | Sp_callcc ->
      let p = Prims.check_procedure "%call/cc" seg.(fp + 2) in
      let sr = Control.capture_multi m in
      let k = Cont { sr; one_shot = false } in
      tail_apply_2 vm p k
  | Sp_call1cc ->
      let p = Prims.check_procedure "%call/1cc" seg.(fp + 2) in
      let sr = Control.capture_oneshot m in
      let one_shot = not (Control.is_multi sr) in
      let k = Cont { sr; one_shot } in
      tail_apply_2 vm p k
  | Sp_apply ->
      let f = Prims.check_procedure "apply" seg.(fp + 2) in
      let fixed = Array.init (nargs - 2) (fun i -> seg.(fp + 3 + i)) in
      let last = Values.list_of_value seg.(fp + 2 + nargs - 1) in
      let all = Array.append fixed (Array.of_list last) in
      let n = Array.length all in
      Control.ensure_room m ~live_top:(fp + 1) ~need:(n + 8);
      let fp = m.Control.fp in
      let seg = m.Control.sr.seg in
      seg.(fp + 1) <- f;
      Array.blit all 0 seg (fp + 2) n;
      apply vm f fp n
  | Sp_values ->
      (if nargs = 1 then vm.acc <- seg.(fp + 2)
       else
         vm.acc <-
           Mvals (Array.to_list (Array.init nargs (fun i -> seg.(fp + 2 + i)))));
      do_return vm
  | Sp_set_timer ->
      let ticks = Prims.check_int "%set-timer!" seg.(fp + 2) in
      vm.timer_handler <- seg.(fp + 3);
      vm.timer <- (if ticks <= 0 then -1 else ticks);
      vm.acc <- Void;
      do_return vm
  | Sp_get_timer ->
      vm.acc <- Int (max vm.timer 0);
      do_return vm
  | Sp_stats ->
      let name =
        match seg.(fp + 2) with
        | Sym s -> s
        | v -> Values.type_error "%stat" "symbol" v
      in
      (vm.acc <-
         (match Stats.get m.Control.stats name with
         | n -> Int n
         | exception Not_found ->
             Values.err ("%stat: unknown counter " ^ name) []));
      do_return vm
  | Sp_backtrace ->
      vm.acc <-
        Values.list_to_value
          (List.map (fun n -> sym n) (Control.backtrace m));
      do_return vm
  | Sp_eval ->
      let datum = seg.(fp + 2) in
      let code = Compiler.compile_eval ~menv:vm.menv vm.globals datum in
      let clos = Closure { code; frees = [||] } in
      seg.(fp + 1) <- clos;
      apply vm clos fp 0

(* Tail-call [p] with the single argument [k] from the current frame
   (used by the capture operations after sealing). *)
and tail_apply_2 vm p k =
  let m = vm.m in
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  seg.(fp + 1) <- p;
  seg.(fp + 2) <- k;
  apply vm p fp 1

(* ------------------------------------------------------------------ *)
(* Procedure entry: arity, overflow, rest collection, timer            *)
(* ------------------------------------------------------------------ *)

let fire_timer vm =
  let m = vm.m in
  let fw = vm.code.frame_words in
  Control.ensure_room m ~live_top:(m.Control.fp + fw) ~need:(fw + 4);
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  let handler = vm.timer_handler in
  seg.(fp + fw) <- Retaddr { rcode = vm.code; rpc = vm.pc; rdisp = fw };
  seg.(fp + fw + 1) <- handler;
  apply vm handler (fp + fw) 0

let enter vm =
  let m = vm.m in
  let c = vm.code in
  let n = vm.nargs in
  (match c.arity with
  | Exactly k ->
      if n <> k then
        Values.err
          (Printf.sprintf "%s: expected %d arguments, got %d" c.cname k n)
          []
  | At_least k ->
      if n < k then
        Values.err
          (Printf.sprintf "%s: expected at least %d arguments, got %d" c.cname
             k n)
          []);
  Control.ensure_room m ~live_top:(m.Control.fp + 2 + n) ~need:c.frame_words;
  (match c.arity with
  | At_least k ->
      let fp = m.Control.fp in
      let seg = m.Control.sr.seg in
      let rest = ref Nil in
      for i = n - 1 downto k do
        rest := Values.cons seg.(fp + 2 + i) !rest
      done;
      seg.(fp + 2 + k) <- !rest
  | Exactly _ -> ());
  if vm.timer > 0 then begin
    vm.timer <- vm.timer - 1;
    if vm.timer = 0 then begin
      vm.timer <- -1;
      fire_timer vm
    end
  end

(* ------------------------------------------------------------------ *)
(* The dispatch loop                                                   *)
(* ------------------------------------------------------------------ *)

let rec step vm =
  let m = vm.m in
  let instr = vm.code.instrs.(vm.pc) in
  vm.pc <- vm.pc + 1;
  let stats = m.Control.stats in
  if stats.Stats.enabled then stats.Stats.instrs <- stats.Stats.instrs + 1;
  match instr with
  | Const v -> vm.acc <- v
  | Local_ref i -> vm.acc <- m.Control.sr.seg.(m.Control.fp + i)
  | Local_set i -> m.Control.sr.seg.(m.Control.fp + i) <- vm.acc
  | Box_init i ->
      let seg = m.Control.sr.seg in
      let fp = m.Control.fp in
      seg.(fp + i) <- Box (ref seg.(fp + i));
      if stats.Stats.enabled then
        stats.Stats.boxes_made <- stats.Stats.boxes_made + 1
  | Box_ref i -> (
      match m.Control.sr.seg.(m.Control.fp + i) with
      | Box r -> vm.acc <- !r
      | v -> Values.err "vm: box-ref of non-box" [ v ])
  | Box_set i -> (
      match m.Control.sr.seg.(m.Control.fp + i) with
      | Box r -> r := vm.acc
      | v -> Values.err "vm: box-set of non-box" [ v ])
  | Free_ref i -> (
      match m.Control.sr.seg.(m.Control.fp + 1) with
      | Closure c -> vm.acc <- c.frees.(i)
      | v -> Values.err "vm: free-ref outside closure" [ v ])
  | Free_box_ref i -> (
      match m.Control.sr.seg.(m.Control.fp + 1) with
      | Closure c -> (
          match c.frees.(i) with
          | Box r -> vm.acc <- !r
          | v -> Values.err "vm: free-box-ref of non-box" [ v ])
      | v -> Values.err "vm: free-box-ref outside closure" [ v ])
  | Free_box_set i -> (
      match m.Control.sr.seg.(m.Control.fp + 1) with
      | Closure c -> (
          match c.frees.(i) with
          | Box r -> r := vm.acc
          | v -> Values.err "vm: free-box-set of non-box" [ v ])
      | v -> Values.err "vm: free-box-set outside closure" [ v ])
  | Global_ref g ->
      if not g.gdefined then
        Values.err ("unbound variable: " ^ g.gname) [];
      vm.acc <- g.gval
  | Global_set g ->
      if not g.gdefined then
        Values.err ("set! of unbound variable: " ^ g.gname) [];
      g.gval <- vm.acc
  | Global_define g ->
      g.gval <- vm.acc;
      g.gdefined <- true
  | Make_closure (code, caps) ->
      let seg = m.Control.sr.seg in
      let fp = m.Control.fp in
      let frees =
        Array.map
          (function
            | Cap_local i -> seg.(fp + i)
            | Cap_free i -> (
                match seg.(fp + 1) with
                | Closure c -> c.frees.(i)
                | v -> Values.err "vm: capture outside closure" [ v ]))
          caps
      in
      if stats.Stats.enabled then
        stats.Stats.closures_made <- stats.Stats.closures_made + 1;
      vm.acc <- Closure { code; frees }
  | Branch pc -> vm.pc <- pc
  | Branch_false pc -> if not (Values.is_truthy vm.acc) then vm.pc <- pc
  | Call { disp; nargs } -> (
      let fp = m.Control.fp in
      let seg = m.Control.sr.seg in
      let nfp = fp + disp in
      match seg.(nfp + 1) with
      | Prim { pfn = Pure fn; parity; pname } ->
          (* Pure primitives return straight to the fall-through pc:
             no return address is written and fp never moves, so the
             whole call is [arity check; apply; continue]. *)
          if not (Bytecode.arity_matches parity nargs) then
            Values.err (pname ^ ": wrong number of arguments") [];
          if stats.Stats.enabled then
            stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          vm.acc <- fn (prim_args vm seg (nfp + 2) nargs)
      | f ->
          seg.(nfp) <- Retaddr { rcode = vm.code; rpc = vm.pc; rdisp = disp };
          if stats.Stats.enabled then
            stats.Stats.frames <- stats.Stats.frames + 1;
          apply vm f nfp nargs)
  | Tail_call { disp; nargs } ->
      let fp = m.Control.fp in
      let seg = m.Control.sr.seg in
      let src = fp + disp in
      let f = seg.(src + 1) in
      seg.(fp + 1) <- f;
      Array.blit seg (src + 2) seg (fp + 2) nargs;
      apply vm f fp nargs
  | Return -> do_return vm
  | Enter -> enter vm
  | Halt -> vm.halted <- true
  (* ---- fused superinstructions (emitted by Optimize.peephole) ---- *)
  | Const_push (v, i) -> m.Control.sr.seg.(m.Control.fp + i) <- v
  | Local_push (i, j) ->
      let seg = m.Control.sr.seg in
      let fp = m.Control.fp in
      seg.(fp + j) <- seg.(fp + i)
  | Free_push (i, j) -> (
      let seg = m.Control.sr.seg in
      let fp = m.Control.fp in
      match seg.(fp + 1) with
      | Closure c -> seg.(fp + j) <- c.frees.(i)
      | v -> Values.err "vm: free-push outside closure" [ v ])
  | Global_push (g, i) ->
      if not g.gdefined then Values.err ("unbound variable: " ^ g.gname) [];
      m.Control.sr.seg.(m.Control.fp + i) <- g.gval
  | Prim_call site ->
      let seg = m.Control.sr.seg in
      let fp = m.Control.fp in
      if site.ps_global.gval == site.ps_guard then begin
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        vm.acc <-
          site.ps_fn (prim_args vm seg (fp + site.ps_disp + 2) site.ps_nargs)
      end
      else prim_deopt_call vm site
  | Prim_call1 site ->
      let seg = m.Control.sr.seg in
      let fp = m.Control.fp in
      if site.ps_global.gval == site.ps_guard then begin
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(1) in
        args.(0) <- seg.(fp + site.ps_disp + 2);
        vm.acc <- site.ps_fn args
      end
      else prim_deopt_call vm site
  | Prim_call2 site ->
      let seg = m.Control.sr.seg in
      let fp = m.Control.fp in
      if site.ps_global.gval == site.ps_guard then begin
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(2) in
        let base = fp + site.ps_disp + 2 in
        args.(0) <- seg.(base);
        args.(1) <- seg.(base + 1);
        vm.acc <- site.ps_fn args
      end
      else prim_deopt_call vm site
  | Prim_tail_call site ->
      let seg = m.Control.sr.seg in
      let fp = m.Control.fp in
      if site.ps_global.gval == site.ps_guard then begin
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        vm.acc <-
          site.ps_fn (prim_args vm seg (fp + site.ps_disp + 2) site.ps_nargs);
        do_return vm
      end
      else prim_deopt_tail_call vm site

(* The inline-cache guard failed: the global a fused site was compiled
   against has been assigned ([set!] of [+] and the like).  Reconstruct
   the generic call the peephole replaced and take the slow path with
   whatever value the cell holds now. *)
and prim_deopt_call vm site =
  let m = vm.m in
  let stats = m.Control.stats in
  stats.Stats.prim_deopts <- stats.Stats.prim_deopts + 1;
  let g = site.ps_global in
  if not g.gdefined then Values.err ("unbound variable: " ^ g.gname) [];
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  let nfp = fp + site.ps_disp in
  seg.(nfp + 1) <- g.gval;
  seg.(nfp) <-
    Retaddr { rcode = vm.code; rpc = vm.pc; rdisp = site.ps_disp };
  if stats.Stats.enabled then stats.Stats.frames <- stats.Stats.frames + 1;
  apply vm g.gval nfp site.ps_nargs

and prim_deopt_tail_call vm site =
  let m = vm.m in
  let stats = m.Control.stats in
  stats.Stats.prim_deopts <- stats.Stats.prim_deopts + 1;
  let g = site.ps_global in
  if not g.gdefined then Values.err ("unbound variable: " ^ g.gname) [];
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  let f = g.gval in
  seg.(fp + 1) <- f;
  Array.blit seg (fp + site.ps_disp + 2) seg (fp + 2) site.ps_nargs;
  apply vm f fp site.ps_nargs

(* Runtime errors unwind to Scheme when a handler is installed: the VM
   pops the head of the %error-handlers list and calls it with the
   message and irritants at the point of the error (handlers normally
   escape through a continuation; if one returns, its value becomes the
   value of the faulting operation). *)
let pop_error_handler vm =
  match Globals.lookup_opt vm.globals "%error-handlers" with
  | Some (Pair p) ->
      let h = p.car in
      Globals.define vm.globals "%error-handlers" p.cdr;
      Some h
  | _ -> None

let inject_error_handler vm handler msg irritants =
  let m = vm.m in
  let fw = vm.code.frame_words in
  Control.ensure_room m ~live_top:(m.Control.fp + fw) ~need:(fw + 6);
  let fp = m.Control.fp in
  let seg = m.Control.sr.seg in
  seg.(fp + fw) <- Retaddr { rcode = vm.code; rpc = vm.pc; rdisp = fw };
  seg.(fp + fw + 1) <- handler;
  seg.(fp + fw + 2) <- Str (Bytes.of_string msg);
  seg.(fp + fw + 3) <- Values.list_to_value irritants;
  apply vm handler (fp + fw) 2

let step_catching vm =
  try step vm
  with Scheme_error (msg, irritants) as exn -> (
    match pop_error_handler vm with
    | Some h -> inject_error_handler vm h msg irritants
    | None -> raise exn)

let run ?(fuel = -1) vm code =
  let m = vm.m in
  Control.init_frame m (Retaddr { rcode = halt_code; rpc = 0; rdisp = 0 });
  m.Control.sr.seg.(m.Control.fp + 1) <- Closure { code; frees = [||] };
  vm.code <- code;
  vm.pc <- 0;
  vm.nargs <- 0;
  vm.acc <- Void;
  vm.halted <- false;
  vm.fuel <- fuel;
  if fuel < 0 then
    while not vm.halted do
      step_catching vm
    done
  else begin
    let n = ref fuel in
    while not vm.halted do
      if !n <= 0 then raise Vm_fuel_exhausted;
      decr n;
      step_catching vm
    done
  end;
  vm.acc

let run_program ?fuel vm codes =
  List.fold_left (fun _ code -> run ?fuel vm code) Void codes

let eval ?fuel ?optimize ?peephole vm src =
  run_program ?fuel vm
    (Compiler.compile_string ?optimize ?peephole ~menv:vm.menv vm.globals src)
