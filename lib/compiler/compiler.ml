exception Compile_error of string * Sexp.pos option

(* Internal failures carry no position; [compile_top] attaches the
   enclosing top-level form's span before the error escapes. *)
let fail msg = raise (Compile_error (msg, None))

(* ------------------------------------------------------------------ *)
(* Analysis: unique bindings, capture/assignment flags, free lists     *)
(* ------------------------------------------------------------------ *)

type binding = {
  bid : int;
  bname : string;
  mutable assigned : bool;
  mutable captured : bool;
}

type aexp =
  | AQuote of Rt.value
  | ALocal of binding
  | AGlobal of string
  | AIf of aexp * aexp * aexp
  | ALocalSet of binding * aexp
  | AGlobalSet of string * aexp
  | ALambda of alambda
  | ABegin of aexp list
  | ALet of (binding * aexp) list * aexp
  | AApp of aexp * aexp list

and alambda = {
  aparams : binding list;
  arest : binding option;
  mutable abody : aexp;
  aname : string;
  mutable afree : binding list; (* reverse capture order during analysis *)
}

let bid_counter = ref 0

let new_binding name =
  incr bid_counter;
  { bid = !bid_counter; bname = name; assigned = false; captured = false }

(* A lambda context tracks which bindings live in its own frame ([owned])
   and accumulates its free-variable list. *)
type lctx = {
  lam : alambda option; (* [None] at top level *)
  owned : (int, unit) Hashtbl.t;
  parent : lctx option;
}

let new_lctx lam parent = { lam; owned = Hashtbl.create 8; parent }
let own ctx b = Hashtbl.replace ctx.owned b.bid ()

(* Resolve a reference to [b] from [ctx]: mark it captured and add it to
   the free list of every lambda between the use and the owner. *)
let rec note_use ctx b =
  if not (Hashtbl.mem ctx.owned b.bid) then begin
    b.captured <- true;
    (match ctx.lam with
    | Some lam ->
        if not (List.exists (fun f -> f.bid = b.bid) lam.afree) then
          lam.afree <- b :: lam.afree
    | None -> fail ("unbound lexical variable: " ^ b.bname));
    match ctx.parent with
    | Some p -> note_use p b
    | None -> fail ("unbound lexical variable: " ^ b.bname)
  end

let rec analyze env ctx (e : Ast.t) : aexp =
  match e with
  | Ast.Quote v -> AQuote v
  | Ast.Var x -> (
      match List.assoc_opt x env with
      | Some b ->
          note_use ctx b;
          ALocal b
      | None -> AGlobal x)
  | Ast.If (t, c, a) -> AIf (analyze env ctx t, analyze env ctx c, analyze env ctx a)
  | Ast.Set (x, rhs) -> (
      let rhs = analyze env ctx rhs in
      match List.assoc_opt x env with
      | Some b ->
          b.assigned <- true;
          note_use ctx b;
          ALocalSet (b, rhs)
      | None -> AGlobalSet (x, rhs))
  | Ast.Begin es -> ABegin (List.map (analyze env ctx) es)
  | Ast.App (Ast.Lambda l, args)
    when l.rest = None && List.length l.params = List.length args ->
      (* Direct application: inline into the enclosing frame. *)
      let inits = List.map (analyze env ctx) args in
      let bindings = List.map new_binding l.params in
      List.iter (own ctx) bindings;
      let env' = List.combine l.params bindings @ env in
      let body = analyze env' ctx l.body in
      ALet (List.combine bindings inits, body)
  | Ast.App (f, args) ->
      AApp (analyze env ctx f, List.map (analyze env ctx) args)
  | Ast.Lambda l -> analyze_lambda env ctx l

and analyze_lambda env ctx (l : Ast.lambda) =
  let params = List.map new_binding l.params in
  let rest = Option.map new_binding l.rest in
  let alam =
    { aparams = params; arest = rest; abody = AQuote Rt.Void; aname = l.lname;
      afree = [] }
  in
  let ctx' = new_lctx (Some alam) (Some ctx) in
  List.iter (own ctx') params;
  Option.iter (own ctx') rest;
  let env' =
    List.combine l.params params
    @ (match (l.rest, rest) with
      | Some r, Some rb -> [ (r, rb) ]
      | _ -> [])
    @ env
  in
  alam.abody <- analyze env' ctx' l.body;
  alam.afree <- List.rev alam.afree;
  ALambda alam

(* ------------------------------------------------------------------ *)
(* Code generation                                                     *)
(* ------------------------------------------------------------------ *)

type loc = Lslot of int | Lfree of int

(* Assignment conversion boxes EVERY assigned variable, not just captured
   ones: frame slots are restored wholesale when a multi-shot continuation
   is reinstated, so a [set!] into an unboxed slot would be undone by a
   later invocation.  (Chez makes the same choice for the same reason.) *)
let boxed b = b.assigned

type emitter = {
  mutable arr : Rt.instr array;
  mutable len : int;
  fmap : (int, loc) Hashtbl.t; (* binding id -> location in this frame *)
  mutable next_slot : int;
  mutable max_ext : int;
}

let new_emitter first_slot =
  {
    arr = Array.make 32 Rt.Return;
    len = 0;
    fmap = Hashtbl.create 16;
    next_slot = first_slot;
    max_ext = first_slot;
  }

let emit e i =
  if e.len = Array.length e.arr then begin
    let bigger = Array.make (2 * e.len) Rt.Return in
    Array.blit e.arr 0 bigger 0 e.len;
    e.arr <- bigger
  end;
  e.arr.(e.len) <- i;
  e.len <- e.len + 1;
  e.len - 1

let here e = e.len
let patch e at i = e.arr.(at) <- i

let reserve e n =
  let slot = e.next_slot in
  e.next_slot <- e.next_slot + n;
  if e.next_slot > e.max_ext then e.max_ext <- e.next_slot;
  slot

let loc_of e b =
  match Hashtbl.find_opt e.fmap b.bid with
  | Some l -> l
  | None -> fail ("compiler: unallocated binding " ^ b.bname)

let gen_ref e b =
  match (loc_of e b, boxed b) with
  | Lslot i, false -> emit e (Rt.Local_ref i) |> ignore
  | Lslot i, true -> emit e (Rt.Box_ref i) |> ignore
  | Lfree i, false -> emit e (Rt.Free_ref i) |> ignore
  | Lfree i, true -> emit e (Rt.Free_box_ref i) |> ignore

let gen_set e b =
  match (loc_of e b, boxed b) with
  | Lslot i, false -> emit e (Rt.Local_set i) |> ignore
  | Lslot i, true -> emit e (Rt.Box_set i) |> ignore
  | Lfree i, true -> emit e (Rt.Free_box_set i) |> ignore
  | Lfree _, false -> fail "compiler: assignment to unboxed free variable"

let rec gen e tail exp =
  match exp with
  | AQuote v -> ignore (emit e (Rt.Const v))
  | ALocal b -> gen_ref e b
  | AGlobal x ->
      (* A lexically unbound name refers to its definition environment —
         the global table — under its source name: strip hygiene marks. *)
      ignore (emit e (Rt.Global_ref (Globals.slot (Macro.strip_marks x))))
  | ALocalSet (b, rhs) ->
      gen e false rhs;
      gen_set e b
  | AGlobalSet (x, rhs) ->
      gen e false rhs;
      ignore (emit e (Rt.Global_set (Globals.slot (Macro.strip_marks x))))
  | AIf (t, c, a) ->
      gen e false t;
      let jf = emit e (Rt.Branch_false 0) in
      gen e tail c;
      let jend = emit e (Rt.Branch 0) in
      patch e jf (Rt.Branch_false (here e));
      gen e tail a;
      patch e jend (Rt.Branch (here e))
  | ABegin es ->
      let rec go = function
        | [] -> ()
        | [ last ] -> gen e tail last
        | x :: rest ->
            gen e false x;
            go rest
      in
      go es
  | ALet (bindings, body) ->
      let saved = e.next_slot in
      let slots =
        List.map
          (fun (_, init) ->
            gen e false init;
            let slot = reserve e 1 in
            ignore (emit e (Rt.Local_set slot));
            slot)
          bindings
      in
      List.iter2
        (fun (b, _) slot ->
          Hashtbl.replace e.fmap b.bid (Lslot slot);
          if boxed b then ignore (emit e (Rt.Box_init slot)))
        bindings slots;
      gen e tail body;
      e.next_slot <- saved
  | ALambda l ->
      let code, caps = gen_lambda l in
      let caps =
        Array.of_list
          (List.map
             (fun b ->
               match loc_of e b with
               | Lslot i -> Rt.Cap_local i
               | Lfree i -> Rt.Cap_free i)
             caps)
      in
      ignore (emit e (Rt.Make_closure (code, caps)))
  | AApp (f, args) ->
      let nargs = List.length args in
      let d = reserve e (2 + nargs) in
      gen e false f;
      ignore (emit e (Rt.Local_set (d + 1)));
      List.iteri
        (fun i a ->
          gen e false a;
          ignore (emit e (Rt.Local_set (d + 2 + i))))
        args;
      e.next_slot <- d;
      ignore
        (emit e
           (if tail then Rt.Tail_call { disp = d; nargs }
            else
              (* [cs_ret] is interned by [Bytecode.backpatch] once the
                 enclosing code object exists. *)
              Rt.Call { cs_disp = d; cs_nargs = nargs; cs_ret = Rt.Void }))

(* Compile one lambda to a code object plus the ordered list of bindings
   its closure must capture from the enclosing frame. *)
and gen_lambda (l : alambda) : Rt.code * binding list =
  let nparams = List.length l.aparams in
  let first_local = 2 + nparams + (match l.arest with Some _ -> 1 | None -> 0) in
  let e = new_emitter first_local in
  List.iteri
    (fun i b -> Hashtbl.replace e.fmap b.bid (Lslot (2 + i)))
    l.aparams;
  (match l.arest with
  | Some b -> Hashtbl.replace e.fmap b.bid (Lslot (2 + nparams))
  | None -> ());
  List.iteri (fun i b -> Hashtbl.replace e.fmap b.bid (Lfree i)) l.afree;
  ignore (emit e Rt.Enter);
  (* Box parameters that are assigned and captured. *)
  List.iteri
    (fun i b -> if boxed b then ignore (emit e (Rt.Box_init (2 + i))))
    l.aparams;
  (match l.arest with
  | Some b when boxed b -> ignore (emit e (Rt.Box_init (2 + nparams)))
  | _ -> ());
  gen e true l.abody;
  ignore (emit e Rt.Return);
  let arity =
    match l.arest with
    | None -> Rt.Exactly nparams
    | Some _ -> Rt.At_least nparams
  in
  let code =
    Bytecode.make_code ~name:l.aname ~arity ~frame_words:e.max_ext
      (Array.sub e.arr 0 e.len)
  in
  (code, l.afree)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(* Compiled code is session-independent: global accesses are emitted
   against process-wide slot numbers, so the [Globals.t] argument of the
   compile entry points is only consulted by the peephole fuser (which
   snapshots the session's current bindings into inline caches). *)
let compile_expr (_ : Globals.t) name ast =
  let ctx = new_lctx None None in
  let a = analyze [] ctx ast in
  let e = new_emitter 2 in
  ignore (emit e Rt.Enter);
  gen e true a;
  ignore (emit e Rt.Return);
  Bytecode.make_code ~name ~arity:(Rt.Exactly 0) ~frame_words:e.max_ext
    (Array.sub e.arr 0 e.len)

let compile_top globals (top : Ast.top) =
  try
    match top with
    | Ast.Expr (ast, _) -> compile_expr globals "top" ast
    | Ast.Define (x, ast, _) ->
        let ctx = new_lctx None None in
        let a = analyze [] ctx ast in
        let e = new_emitter 2 in
        ignore (emit e Rt.Enter);
        gen e false a;
        ignore (emit e (Rt.Global_define (Globals.slot x)));
        ignore (emit e (Rt.Const Rt.Void));
        ignore (emit e Rt.Return);
        Bytecode.make_code ~name:("define-" ^ x) ~arity:(Rt.Exactly 0)
          ~frame_words:e.max_ext
          (Array.sub e.arr 0 e.len)
  with Compile_error (msg, None) ->
    raise (Compile_error (msg, Some (Ast.top_pos top)))

let compile_program globals tops = List.map (compile_top globals) tops

(* (eval datum): compile the datum's top-level forms, then synthesize a
   driver code object that calls each compiled form in sequence. *)
let compile_eval ?hygiene ?menv globals (datum : Rt.value) : Rt.code =
  let tops =
    Expander.expand_tops ?hygiene ?menv (Expander.value_to_datum datum)
  in
  match compile_program globals tops with
  | [ one ] -> one
  | codes ->
      let d = 2 in
      let instrs = ref [ Rt.Enter ] in
      let n = List.length codes in
      List.iteri
        (fun i code ->
          let clos = Rt.Closure { code; frees = [||] } in
          instrs :=
            (if i = n - 1 then
               [ Rt.Tail_call { disp = d; nargs = 0 };
                 Rt.Local_set (d + 1); Rt.Const clos ]
             else
               [ Rt.Call { cs_disp = d; cs_nargs = 0; cs_ret = Rt.Void };
                 Rt.Local_set (d + 1); Rt.Const clos ])
            @ !instrs)
        codes;
      instrs := Rt.Return :: !instrs;
      Bytecode.make_code ~name:"eval" ~arity:(Rt.Exactly 0) ~frame_words:(d + 3)
        (Array.of_list (List.rev !instrs))

(* The shared back half of the pipeline: optimize, compile, fuse,
   verify.  [compile_string] and [compile_datum] differ only in how the
   expanded tops are obtained. *)
let compile_tops ?(optimize = false) ?(peephole = true) ?(regalloc = true)
    ?(verify = false) globals tops =
  let tops = if optimize then Optimize.program tops else tops in
  let codes = compile_program globals tops in
  let codes = if peephole then Optimize.peephole_program ~regalloc globals codes else codes in
  if verify then Verify.verify_program codes;
  codes

let compile_string ?optimize ?peephole ?regalloc ?verify ?hygiene ?menv
    globals src =
  compile_tops ?optimize ?peephole ?regalloc ?verify globals
    (Expander.expand_string ?hygiene ?menv src)

let compile_datum ?optimize ?peephole ?regalloc ?verify ?hygiene ?menv
    globals datum =
  compile_tops ?optimize ?peephole ?regalloc ?verify globals
    (Expander.expand_tops ?hygiene ?menv datum)
