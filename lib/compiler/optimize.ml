open Rt

(* Folders for the standard primitives: given fully constant arguments,
   return the folded value, or None when the fold does not apply (wrong
   types, arity, division by zero, overflow risk...).  Only immutable
   results may be produced: folding must never share fresh mutable
   structure between program points. *)

let num2 f args =
  match args with
  | [ Int a; Int b ] -> f a b
  | _ -> None

let arith fi =
  fun args ->
    let rec go acc = function
      | [] -> Some (Int acc)
      | Int n :: rest -> go (fi acc n) rest
      | _ -> None
    in
    match args with Int n :: rest -> go n rest | _ -> None

let cmp op args =
  let rec go = function
    | Int a :: (Int b :: _ as rest) ->
        if op (compare a b) 0 then go rest else Some (Bool false)
    | [ Int _ ] -> Some (Bool true)
    | _ -> None
  in
  match args with _ :: _ :: _ -> go args | _ -> None

let folders : (string * (value list -> value option)) list =
  [
    ("+", arith ( + ));
    ("-", fun args -> (match args with [ Int n ] -> Some (Int (-n)) | _ -> arith ( - ) args));
    ("*", arith ( * ));
    ("quotient", num2 (fun a b -> if b = 0 then None else Some (Int (a / b))));
    ("remainder", num2 (fun a b -> if b = 0 then None else Some (Int (Int.rem a b))));
    ("=", cmp ( = ));
    ("<", cmp ( < ));
    (">", cmp ( > ));
    ("<=", cmp ( <= ));
    (">=", cmp ( >= ));
    ("abs", fun args -> (match args with [ Int n ] -> Some (Int (abs n)) | _ -> None));
    ("zero?", fun args -> (match args with [ Int n ] -> Some (Bool (n = 0)) | _ -> None));
    ("not", fun args ->
        match args with [ v ] -> Some (Bool (not (Values.is_truthy v))) | _ -> None);
    ("null?", fun args -> (match args with [ Nil ] -> Some (Bool true) | [ (Int _ | Bool _ | Sym _ | Char _) ] -> Some (Bool false) | _ -> None));
    ("eq?", fun args ->
        match args with
        | [ a; b ] -> (
            (* only immediates compare stably at fold time *)
            match (a, b) with
            | (Int _ | Bool _ | Sym _ | Char _ | Nil), _ ->
                Some (Bool (Values.eq a b))
            | _ -> None)
        | _ -> None);
    ("car", fun args -> (match args with [ Pair p ] -> Some p.car | _ -> None));
    ("cdr", fun args -> (match args with [ Pair p ] -> Some p.cdr | _ -> None));
    ("length", fun args ->
        match args with
        | [ l ] -> (
            match Values.list_of_value_opt l with
            | Some items -> Some (Int (List.length items))
            | None -> None)
        | _ -> None);
  ]

(* An expression whose evaluation has no effect and cannot fail: safe to
   drop in non-final begin position. *)
let rec effect_free (e : Ast.t) =
  match e with
  | Ast.Quote _ | Ast.Lambda _ -> true
  | Ast.Var _ -> false (* may be unbound: keep the error *)
  | Ast.If (a, b, c) -> effect_free a && effect_free b && effect_free c
  | Ast.Begin es -> List.for_all effect_free es
  | Ast.App _ | Ast.Set _ -> false

(* [bound] tracks lexically bound names: a shadowed primitive name must
   not be folded. *)
let rec opt bound (e : Ast.t) : Ast.t =
  match e with
  | Ast.Quote _ | Ast.Var _ -> e
  | Ast.Set (x, rhs) -> Ast.Set (x, opt bound rhs)
  | Ast.Lambda l ->
      let bound' =
        l.Ast.params
        @ (match l.Ast.rest with Some r -> [ r ] | None -> [])
        @ bound
      in
      Ast.Lambda { l with body = opt bound' l.body }
  | Ast.If (t, c, a) -> (
      let t = opt bound t in
      match t with
      | Ast.Quote v ->
          if Values.is_truthy v then opt bound c else opt bound a
      | t -> Ast.If (t, opt bound c, opt bound a))
  | Ast.Begin es ->
      let es = List.concat_map flatten es in
      let rec prune = function
        | [] -> []
        | [ last ] -> [ opt bound last ]
        | x :: rest ->
            let x = opt bound x in
            if effect_free x then prune rest else x :: prune rest
      in
      (match prune es with
      | [] -> Ast.Quote Void
      | [ one ] -> one
      | es -> Ast.Begin es)
  | Ast.App (f, args) -> (
      let f = opt bound f in
      let args = List.map (opt bound) args in
      match f with
      | Ast.Var name when not (List.mem name bound) -> (
          (* A lexically unbound name is a global reference under its
             source name, marks stripped — including macro-introduced
             references to folded primitives. *)
          match List.assoc_opt (Macro.strip_marks name) folders with
          | Some folder -> (
              let consts =
                List.map (function Ast.Quote v -> Some v | _ -> None) args
              in
              if List.for_all Option.is_some consts then
                match folder (List.map Option.get consts) with
                | Some v -> Ast.Quote v
                | None -> Ast.App (f, args)
              else Ast.App (f, args))
          | None -> Ast.App (f, args))
      | _ -> Ast.App (f, args))

and flatten (e : Ast.t) =
  match e with Ast.Begin es -> List.concat_map flatten es | e -> [ e ]

let expr e = opt [] e

let top = function
  | Ast.Expr (e, p) -> Ast.Expr (expr e, p)
  | Ast.Define (x, e, p) -> Ast.Define (x, expr e, p)

let program tops = List.map top tops

(* ------------------------------------------------------------------ *)
(* Bytecode peephole: superinstruction fusion                          *)
(* ------------------------------------------------------------------ *)

(* Post-compile pass over [instrs] arrays.  Two stages:

   1. Push fusion: a value-producing instruction immediately followed by
      [Local_set d] collapses into one [*_push] superinstruction that
      writes the frame slot directly.  The fused form does not set [acc],
      so fusion only fires where [acc] is provably dead: the fall-through
      instruction must itself be an [acc] producer (or a call, which
      ignores [acc]), and no branch may target the consumed [Local_set].

   2. Primitive-call fusion: the sequence

        Global_push (g, d+1); <simple pushes into d+2..>; (Tail_)Call {disp=d}

      where [g] is currently bound to a pure primitive of matching arity
      collapses into a [Prim_call]/[Prim_tail_call] superinstruction
      carrying an inline cache (the bound [Prim] value as a physical
      witness).  The VM guard re-checks the binding on every execution
      and deoptimizes to the generic call path when it changed, so
      [set!] of [+] etc. keeps its standard semantics.  Restricting the
      intervening instructions to effect-free pushes keeps the delayed
      callee load unobservable: nothing between the original load site
      and the call can rebind the global.

   Both stages shrink the instruction array, so branch targets are
   remapped through an old-pc -> new-pc table. *)

(* Is [acc] irrelevant to [i] (it overwrites or ignores it)? *)
let acc_dead_at = function
  | Rt.Const _ | Rt.Local_ref _ | Rt.Box_ref _ | Rt.Free_ref _
  | Rt.Free_box_ref _ | Rt.Global_ref _ | Rt.Make_closure _ | Rt.Call _
  | Rt.Tail_call _ | Rt.Box_init _ | Rt.Const_push _ | Rt.Local_push _
  | Rt.Free_push _ | Rt.Global_push _ | Rt.Prim_call _ | Rt.Prim_call1 _
  | Rt.Prim_call2 _ | Rt.Prim_tail_call _ ->
      true
  | _ -> false

let branch_targets instrs =
  let n = Array.length instrs in
  let target = Array.make (n + 1) false in
  Array.iter
    (function
      | Rt.Branch t | Rt.Branch_false t ->
          if t >= 0 && t <= n then target.(t) <- true
      | _ -> ())
    instrs;
  target

let remap_branches map instrs =
  Array.map
    (function
      | Rt.Branch t -> Rt.Branch map.(t)
      | Rt.Branch_false t -> Rt.Branch_false map.(t)
      | i -> i)
    instrs

(* Stage 1: push-pair fusion. *)
let fuse_pushes instrs =
  let n = Array.length instrs in
  let target = branch_targets instrs in
  let out = ref [] in
  let outlen = ref 0 in
  let map = Array.make (n + 1) 0 in
  let emit i =
    out := i :: !out;
    incr outlen
  in
  let pc = ref 0 in
  while !pc < n do
    map.(!pc) <- !outlen;
    let fused =
      if !pc + 2 < n && (not target.(!pc + 1)) && acc_dead_at instrs.(!pc + 2)
      then
        match (instrs.(!pc), instrs.(!pc + 1)) with
        | Rt.Const v, Rt.Local_set d -> Some (Rt.Const_push (v, d))
        | Rt.Local_ref s, Rt.Local_set d when s <> d ->
            Some (Rt.Local_push (s, d))
        | Rt.Free_ref s, Rt.Local_set d -> Some (Rt.Free_push (s, d))
        | Rt.Global_ref g, Rt.Local_set d -> Some (Rt.Global_push (g, d))
        | _ -> None
      else None
    in
    match fused with
    | Some f ->
        map.(!pc + 1) <- !outlen;
        emit f;
        pc := !pc + 2
    | None ->
        emit instrs.(!pc);
        incr pc
  done;
  map.(n) <- !outlen;
  remap_branches map (Array.of_list (List.rev !out))

(* A push that may sit between the fused callee load and the call: writes
   one frame slot, touches neither [acc] nor any global binding, and any
   error it can raise is one the unfused sequence raises identically. *)
let arg_push_ok ~callee_slot = function
  | Rt.Const_push (_, d) | Rt.Free_push (_, d) | Rt.Global_push (_, d) ->
      d <> callee_slot
  | Rt.Local_push (s, d) -> s <> callee_slot && d <> callee_slot
  | _ -> false

let pure_target globals s nargs =
  let g = Globals.get globals s in
  if not g.Rt.gdefined then None
  else
    match g.Rt.gval with
    | Rt.Prim ({ pfn = Pure fn; parity; _ } as p) as pv
      when Bytecode.arity_matches parity nargs ->
        Some (pv, p, fn)
    | _ -> None

(* Stage 2: primitive-call fusion.  [globals] is the session whose
   current bindings the inline caches witness: compiled code carries
   slot numbers, so the fuser resolves each candidate slot here, once,
   and bakes the bound [Prim] value into the site as the guard. *)
let fuse_prim_calls globals instrs =
  let n = Array.length instrs in
  let target = branch_targets instrs in
  (* For each pc holding a fusable Global_push, the pc of its call. *)
  let drop = Array.make n false in
  let replace : Rt.instr option array = Array.make n None in
  for pc = 0 to n - 1 do
    match instrs.(pc) with
    | Rt.Global_push (s, dst) when not drop.(pc) ->
        let rec scan j =
          if j >= n || target.(j) then ()
          else if arg_push_ok ~callee_slot:dst instrs.(j) then scan (j + 1)
          else
            match instrs.(j) with
            | ( Rt.Call { cs_disp = disp; cs_nargs = nargs; _ }
              | Rt.Tail_call { disp; nargs } )
              when disp + 1 = dst && replace.(j) = None -> (
                match pure_target globals s nargs with
                | Some (pv, p, fn) ->
                    let site =
                      {
                        Rt.ps_disp = disp;
                        ps_nargs = nargs;
                        ps_slot = s;
                        ps_guard = pv;
                        ps_prim = p;
                        ps_fn = fn;
                        ps_ret = Rt.Void (* interned by Bytecode.backpatch *);
                      }
                    in
                    let call =
                      match instrs.(j) with
                      | Rt.Tail_call _ -> Rt.Prim_tail_call site
                      | _ when nargs = 1 -> Rt.Prim_call1 site
                      | _ when nargs = 2 -> Rt.Prim_call2 site
                      | _ -> Rt.Prim_call site
                    in
                    drop.(pc) <- true;
                    replace.(j) <- Some call
                | None -> ())
            | _ -> ()
        in
        scan (pc + 1)
    | _ -> ()
  done;
  let out = ref [] in
  let outlen = ref 0 in
  let map = Array.make (n + 1) 0 in
  for pc = 0 to n - 1 do
    map.(pc) <- !outlen;
    if not drop.(pc) then begin
      (match replace.(pc) with
      | Some i -> out := i :: !out
      | None -> out := instrs.(pc) :: !out);
      incr outlen
    end
  done;
  map.(n) <- !outlen;
  remap_branches map (Array.of_list (List.rev !out))

(* Stage 3: branch fusion.  A [Branch_false] consuming the value of the
   instruction right before it fuses INTO that producer — but the
   [Branch_false] itself stays in the array, jumped over by the fused
   form.  Keeping it makes the rewrite purely local: no pc renumbering,
   branches into either instruction of the pair keep their exact
   unfused semantics, and a deopted [Prim_branch*] (or an error handler
   that returns a replacement value) resumes at the retained branch,
   which then tests the returned value just as the unfused sequence
   would.  Runs after the renumbering stages so the fused forms never
   need remapping. *)
let fuse_branches instrs =
  let n = Array.length instrs in
  Array.mapi
    (fun pc i ->
      if pc + 1 < n then
        match (i, instrs.(pc + 1)) with
        | Rt.Local_ref s, Rt.Branch_false t -> Rt.Local_branch_false (s, t)
        | Rt.Prim_call1 site, Rt.Branch_false t -> Rt.Prim_branch1 (site, t)
        | Rt.Prim_call2 site, Rt.Branch_false t -> Rt.Prim_branch2 (site, t)
        | _ -> i
      else i)
    instrs

(* Stage 4: register lowering ("regalloc").  The argument-staging
   instructions of an already-fused primitive call — [Const_push] /
   [Local_push] into the site's argument slots, or the [Local_set] that
   stores a just-computed accumulator value into the first one — fold
   into the consumer as [Rt.operand]s, so the staged values are read
   straight from the accumulator, a source slot, or the instruction
   stream and never touch stack memory on the fast path.

   Like branch fusion this stage is purely local: only the *head* of the
   staged sequence is replaced, every following original (the remaining
   pushes and the consuming [Prim_call*]/[Prim_branch*]/[Prim_tail_call]/
   [Return]) is retained in place as the deopt landing pad, and no pc is
   renumbered — the retained consumer keeps the pc its interned [ps_ret]
   was backpatched against, branches into the interior keep their exact
   unfused semantics, and the fused handler's slow paths spill the
   operand values into the argument slots before re-entering the frame
   policy.

   Soundness of skipping the staged writes: the matched destination
   slots are exactly the consumer's argument slots ([ps_disp + 2 ..]),
   which the compiler's slot allocator retires after the call (a live
   variable always sits below any later-reserved call area), so the only
   reader of those slots is the consumer itself — which now carries the
   values as operands — or the retained landing pad, which re-stages
   them itself.  A [Local_push] source read out of order must not alias
   a slot staged earlier in the same sequence; [no_alias] rejects that
   (the analogue of the [s <> d] guard in stage 1). *)
let fuse_operands instrs =
  let n = Array.length instrs in
  let out = Array.copy instrs in
  let staged pc =
    if pc >= n then None
    else
      match instrs.(pc) with
      | Rt.Const_push (v, d) -> Some (d, Rt.Op_const v)
      | Rt.Local_push (s, d) -> Some (d, Rt.Op_local s)
      | Rt.Local_set d -> Some (d, Rt.Op_acc)
      | _ -> None
  in
  let no_alias ~staged_slot = function
    | Rt.Op_local s -> s <> staged_slot
    | _ -> true
  in
  for pc = 0 to n - 1 do
    match staged pc with
    | None ->
        (* Producer + [Return] epilogue: one dispatch per leaf return. *)
        if pc + 1 < n then (
          match (instrs.(pc), instrs.(pc + 1)) with
          | Rt.Const v, Rt.Return -> out.(pc) <- Rt.Return_op (Rt.Op_const v)
          | Rt.Local_ref s, Rt.Return ->
              out.(pc) <- Rt.Return_op (Rt.Op_local s)
          | _ -> ())
    | Some (d0, op0) -> (
        let two =
          if pc + 2 >= n then None
          else
            match staged (pc + 1) with
            | Some (d1, op1) when d1 = d0 + 1 && no_alias ~staged_slot:d0 op1
              -> (
                match instrs.(pc + 2) with
                | Rt.Prim_call2 site when site.Rt.ps_disp + 2 = d0 ->
                    Some (Rt.Prim_call2_op (site, op0, op1))
                | Rt.Prim_branch2 (site, t) when site.Rt.ps_disp + 2 = d0 ->
                    Some (Rt.Prim_branch2_op (site, op0, op1, t))
                | Rt.Prim_tail_call site
                  when site.Rt.ps_nargs = 2 && site.Rt.ps_disp + 2 = d0 ->
                    Some (Rt.Prim_tail2_op (site, op0, op1))
                | _ -> None)
            | _ -> None
        in
        match two with
        | Some f -> out.(pc) <- f
        | None ->
            if pc + 1 < n then (
              match instrs.(pc + 1) with
              | Rt.Prim_call1 site when site.Rt.ps_disp + 2 = d0 ->
                  out.(pc) <- Rt.Prim_call1_op (site, op0)
              | Rt.Prim_branch1 (site, t) when site.Rt.ps_disp + 2 = d0 ->
                  out.(pc) <- Rt.Prim_branch1_op (site, op0, t)
              | Rt.Prim_tail_call site
                when site.Rt.ps_nargs = 1 && site.Rt.ps_disp + 2 = d0 ->
                  out.(pc) <- Rt.Prim_tail1_op (site, op0)
              | _ -> ()))
  done;
  out

(* Fuse one code object and, recursively, every code object it closes
   over.  Frame layout, arity, and [frame_words] are unchanged: fusion
   only merges dispatches.

   Fusion renumbers pcs, so the static return addresses interned by
   [Bytecode.backpatch] at [make_code] time are stale: surviving [Call]
   sites are re-created fresh (never shared with the pre-fusion array,
   whose backpatched [cs_ret] still describes the old numbering) and the
   fused code object is re-backpatched as the final step.  The register
   lowering ([fuse_operands], [--no-regalloc] escape hatch) runs after
   the renumbering stages and after branch fusion, so the operand forms
   never need remapping and can consume branch-fused consumers. *)
let rec peephole ?(regalloc = true) globals (c : Rt.code) : Rt.code =
  let instrs =
    fuse_branches (fuse_prim_calls globals (fuse_pushes c.Rt.instrs))
  in
  let instrs = if regalloc then fuse_operands instrs else instrs in
  let instrs =
    Array.map
      (function
        | Rt.Make_closure (cc, caps) ->
            Rt.Make_closure (peephole ~regalloc globals cc, caps)
        | Rt.Call { cs_disp; cs_nargs; _ } ->
            Rt.Call { cs_disp; cs_nargs; cs_ret = Rt.Void }
        | i -> i)
      instrs
  in
  (* Fusion bypasses [make_code], so re-run the structural validation
     here: the rewritten stream must still satisfy the unsafe-fetch
     invariants (and the landing-pad/operand-range checks validate added
     for the fused forms). *)
  Bytecode.validate ~name:c.Rt.cname ~frame_words:c.Rt.frame_words instrs;
  let c' = { c with Rt.instrs } in
  Bytecode.backpatch c';
  c'

let peephole_program ?regalloc globals codes =
  List.map (peephole ?regalloc globals) codes
