(** Optional AST-level optimizer (off by default).

    Performs constant folding of the standard arithmetic/comparison/list
    primitives, branch pruning of constant [if] tests, flattening of
    nested [begin]s, and elimination of effect-free expressions in
    non-final [begin] positions.

    Folding assumes the standard bindings of the folded primitives are
    never assigned ([set!] on [+] etc.); enabling the optimizer on a
    program that redefines them changes its meaning, exactly as with
    "assume standard bindings" switches in production Scheme compilers. *)

val expr : Ast.t -> Ast.t
val top : Ast.top -> Ast.top
val program : Ast.top list -> Ast.top list

(** {1 Bytecode peephole pass}

    Unlike the AST folder above, the peephole stage is sound by
    construction and is applied by default ([Compiler.compile_string
    ~peephole:true]).  It performs two fusions over compiled [instrs]
    arrays:

    - push fusion: a value-producing instruction immediately followed by
      [Local_set] becomes a single [*_push] superinstruction that writes
      the frame slot directly, provided the accumulator is provably dead
      at the fusion site (the fall-through instruction overwrites or
      ignores it and the [Local_set] is not a branch target);
    - primitive-call fusion: a [Global_push] of a cell currently bound to
      a pure primitive, followed only by effect-free argument pushes and
      then the matching [Call]/[Tail_call], becomes a [Prim_call*] site
      carrying an inline cache.  The VM re-validates the cache
      ([gval == ps_guard]) on every execution, so [set!] of a fused
      primitive deoptimizes the site to the generic call path and the
      program's meaning is preserved. *)

val peephole : Rt.code -> Rt.code
(** Fuse one code object (recursing into [Make_closure] bodies). *)

val peephole_program : Rt.code list -> Rt.code list
