(** Optional AST-level optimizer (off by default).

    Performs constant folding of the standard arithmetic/comparison/list
    primitives, branch pruning of constant [if] tests, flattening of
    nested [begin]s, and elimination of effect-free expressions in
    non-final [begin] positions.

    Folding assumes the standard bindings of the folded primitives are
    never assigned ([set!] on [+] etc.); enabling the optimizer on a
    program that redefines them changes its meaning, exactly as with
    "assume standard bindings" switches in production Scheme compilers. *)

val expr : Ast.t -> Ast.t
val top : Ast.top -> Ast.top
val program : Ast.top list -> Ast.top list

(** {1 Bytecode peephole pass}

    Unlike the AST folder above, the peephole stage is sound by
    construction and is applied by default ([Compiler.compile_string
    ~peephole:true]).  It performs two fusions over compiled [instrs]
    arrays:

    - push fusion: a value-producing instruction immediately followed by
      [Local_set] becomes a single [*_push] superinstruction that writes
      the frame slot directly, provided the accumulator is provably dead
      at the fusion site (the fall-through instruction overwrites or
      ignores it and the [Local_set] is not a branch target);
    - primitive-call fusion: a [Global_push] of a cell currently bound to
      a pure primitive, followed only by effect-free argument pushes and
      then the matching [Call]/[Tail_call], becomes a [Prim_call*] site
      carrying an inline cache.  The VM re-validates the cache
      ([gval == ps_guard]) on every execution, so [set!] of a fused
      primitive deoptimizes the site to the generic call path and the
      program's meaning is preserved.

    Two further non-renumbering stages follow: branch fusion (the
    producer of a [Branch_false] test absorbs the branch, the original
    branch staying in place as the deopt landing pad) and register
    lowering ([regalloc], on by default, [~regalloc:false] /
    [--no-regalloc] to disable): the argument-staging pushes of a fused
    primitive call — and the [Local_set] storing a just-computed
    accumulator value into the first argument slot — fold into the
    consumer as [Rt.operand]s ([Prim_call1_op] ... [Prim_tail2_op]), and
    producer+[Return] epilogues fold into [Return_op].  Only the head of
    each staged sequence is replaced; the retained originals form the
    deopt landing pad and the fused handlers spill operand values into
    the argument slots before any slow path re-enters the frame policy,
    so captured segment contents are byte-identical to the unfused
    execution. *)

val peephole : ?regalloc:bool -> Globals.t -> Rt.code -> Rt.code
(** Fuse one code object (recursing into [Make_closure] bodies).  The
    [Globals.t] is the session whose current bindings the inline caches
    are built against — compiled code carries slot numbers, so the fuser
    resolves each candidate slot here. *)

val peephole_program : ?regalloc:bool -> Globals.t -> Rt.code list -> Rt.code list
