(** Compilation of core forms to bytecode.

    The pipeline is: scope analysis (unique bindings, capture and assignment
    flags, free-variable lists), assignment conversion (variables that are
    both assigned and captured live in heap boxes), flat-closure conversion,
    and code generation for the accumulator machine interpreted by the VMs.

    Direct applications of lambda expressions ([let] after expansion) are
    inlined into the enclosing frame: they allocate no closure, which is
    what gives the stack model its near-zero per-frame overhead (paper §5).

    Frame layout (offsets from the frame pointer): slot 0 holds the return
    address, slot 1 the closure being invoked, slots 2.. the arguments,
    then locals and evaluation temporaries.  Each code object records
    [frame_words], the maximum extent the body can touch, so a single check
    at [Enter] covers every in-frame write. *)

exception Compile_error of string * Sexp.pos option
(** A compilation failure, with the source position of the top-level
    form being compiled when one is known (the compiler works over the
    position-free core AST, so the span is form-granular). *)

val compile_top : Globals.t -> Ast.top -> Rt.code
(** Compile one top-level form into a zero-argument code object that
    evaluates it (and performs the global definition, for [Define]). *)

val compile_program : Globals.t -> Ast.top list -> Rt.code list

val compile_string :
  ?optimize:bool ->
  ?peephole:bool ->
  ?regalloc:bool ->
  ?verify:bool ->
  ?hygiene:bool ->
  ?menv:Macro.menv ->
  Globals.t ->
  string ->
  Rt.code list
(** Read, expand, (optionally) optimize, and compile a whole program.

    [optimize] (default [false]) runs the AST-level constant folder,
    which assumes standard bindings and can change the meaning of
    programs that [set!] folded primitives.  [peephole] (default [true])
    runs the always-sound bytecode fusion pass ({!Optimize.peephole});
    pass [~peephole:false] to see (or execute) the unfused bytecode.
    [regalloc] (default [true]) controls the register-lowering stage of
    that pass (operand-addressed [Prim_*_op]/[Return_op] forms); pass
    [~regalloc:false] to keep the push-based encoding while retaining
    the other fusions.  Ignored when [peephole] is [false].
    [verify] (default [false]) runs the {!Verify} static bytecode
    verifier over every compiled code object (after fusion), raising
    [Verify.Error] on any violated invariant.
    [hygiene] (default [true]) is the expander's hygiene switch
    (see {!Expander}). *)

val compile_datum :
  ?optimize:bool ->
  ?peephole:bool ->
  ?regalloc:bool ->
  ?verify:bool ->
  ?hygiene:bool ->
  ?menv:Macro.menv ->
  Globals.t ->
  Sexp.t ->
  Rt.code list
(** Like {!compile_string}, but for one already-read top-level datum —
    the per-form entry point drivers use so a failure (or a runtime
    error in the resulting code) can be reported against the datum's
    own source position.  A [begin] datum may still yield several code
    objects. *)

val compile_eval :
  ?hygiene:bool -> ?menv:Macro.menv -> Globals.t -> Rt.value -> Rt.code
(** Compile a runtime datum for [(eval datum)]: a single zero-argument
    code object that runs the (possibly spliced) top-level forms in
    sequence and returns the last value. *)
