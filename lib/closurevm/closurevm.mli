(** The closure-compiled stack VM: the segmented-stack frame policy
    ({!Vm_policy}) driven by template-compiled threaded code instead of
    the engine's fetch/decode dispatch loop.

    Each code object is translated once into an array of pre-allocated
    OCaml closures (one step per pc); straight-line code runs as a chain
    of direct closure calls with no instruction fetch or dispatch.
    Every control-transfer slow path — capture/reinstatement, winders,
    overflow, deopt, timer, error injection — re-enters the same
    {!Vm_policy} functions the stack VM uses, so one-shot continuation
    semantics and the semantic performance counters are shared by
    construction with {!Vm}.

    The machine type is literally the stack VM's: a [Closurevm.t] is a
    [Vm.t], and the two execution strategies could drive the same
    machine interchangeably. *)

type t = Control.t Engine.vm

exception Vm_fuel_exhausted

val create : ?config:Control.config -> ?stats:Stats.t -> unit -> t
(** A machine with primitives installed in a fresh global table; the
    segmented-stack configuration is the same as {!Vm.create}'s. *)

val control : t -> Control.t
(** The machine's segmented-stack state (its frame-policy state). *)

val stats : t -> Stats.t
val globals : t -> Globals.t

val run : ?fuel:int -> t -> Rt.code -> Rt.value
(** Execute a zero-argument code object to completion (template-compiling
    it on entry if needed) and return the value it halts with.
    @raise Rt.Scheme_error on Scheme-level errors,
    @raise Rt.Shot_continuation when a one-shot continuation is reused,
    @raise Vm_fuel_exhausted when [fuel] instructions are exceeded (the
    check runs at branches and control transfers, so the raise may land
    up to a basic block late; the instruction counter stays exact). *)

val run_program : ?fuel:int -> t -> Rt.code list -> Rt.value
(** Run a compiled program form by form; the last form's value. *)

val eval :
  ?fuel:int ->
  ?optimize:bool ->
  ?peephole:bool ->
  ?regalloc:bool ->
  ?verify:bool ->
  t ->
  string ->
  Rt.value
(** Read, expand, compile, template-compile (the full closure DAG of
    every form, eagerly), and run source text.  [peephole] (default
    [true]) controls the bytecode fusion pass; [regalloc] (default
    [true]) its register-lowering stage; [optimize] (default [false])
    the AST-level constant folder. *)

val eval_datum :
  ?fuel:int ->
  ?optimize:bool ->
  ?peephole:bool ->
  ?regalloc:bool ->
  ?verify:bool ->
  t ->
  Sexp.t ->
  Rt.value
(** Like {!eval} for one already-read top-level datum, so a driver can
    attribute failures to the datum's source position. *)

val output : t -> string
(** Text emitted by [display]/[write]/[newline] so far. *)

val precompile : Rt.code list -> unit
(** Template-compile the whole [Make_closure] DAG of each code object
    (uncounted), for code shared across sessions: the prelude image
    compiles its templates once, eagerly, before any other domain can
    see the code objects. *)
