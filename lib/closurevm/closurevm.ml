(* The closure-compiled stack VM: template compilation to threaded code.
   =====================================================================

   Third frame-policy backend.  The machine is *the same machine* as the
   stack VM — [t] is [Vm_policy.t], i.e. {!Engine}'s vm record over the
   paper's segmented stack — but instead of instantiating the engine's
   fetch/decode dispatch loop, each code object is translated once, at
   compile time, into an array of pre-allocated OCaml closures ("steps"),
   one per pc.  A step performs its instruction's work and then calls the
   next step *directly* (the continuation closure is captured at template
   build time for straight-line code), so executing a basic block costs a
   chain of known-arity OCaml calls with zero instruction fetches and
   zero dispatch branches: classic threaded code / template compilation,
   in pure OCaml — no codegen, no [Obj], no unsafe casts.  Every indirect
   call site in the template is distinct, which also un-aliases the
   branch-target history that a single dispatch `match` merges.

   What is deliberately NOT reimplemented: every control-transfer slow
   path — non-fast calls and returns, continuation capture/reinstatement
   ([%call/cc], [%call/1cc]), the native dynamic-wind trampoline, arity
   mismatch and overflow at [Enter], timer fire, inline-cache
   deoptimization, error-handler injection — goes through {!Vm_policy},
   the *same functions the stack VM's dispatch loop calls*.  Stack
   segments, sealing, the size-classed segment cache, hysteresis,
   promotion, and every [Stats] counter they maintain are therefore
   shared by construction: the semantic counters (calls, captures,
   words-copied, seg-alloc-words, cache hits) of a closure-backend run
   are byte-identical to the stack backend's, which the counter
   regression suite pins.

   Templates are cached on the code object ([Rt.code.templ], an
   extensible-variant slot so the runtime does not depend on this
   library), so a code object is compiled at most once; [eval] compiles
   the whole [Make_closure] closure DAG of a program eagerly before
   running it.  The shared code objects ([Engine.halt_code] and the
   dynamic-wind resume codes in {!Prims}) are compiled at module
   initialization, before any {!Scheme.Pool} domain can spawn, so
   domains only ever read those templates.

   Fuel and instruction accounting keep the engine's batched landing
   discipline: [steps] counts instructions executed since the last
   flush, [budget] is the remaining fuel at the landing's entry, and
   [sync] writes back pc/acc/instrs/fuel before anything that can
   observe the machine or raise.  The one relaxation: the engine checks
   [steps >= budget] before *every* instruction, while a template checks
   at the instructions that can close a cycle or leave the block
   (branches, calls, returns, enters).  Total [instrs] on normal
   termination is identical to the stack backend's; on exhaustion the
   closure backend may overrun the budget by the tail of a basic block
   before raising (the fuel-exactness pins are stack-backend-only for
   this reason). *)

open Rt
open Engine

type t = Vm_policy.t

exception Vm_fuel_exhausted = Engine.Vm_fuel_exhausted

(* One compiled step: [step vm slots fp limit budget acc steps] executes
   the instruction at its pc with the landing state in parameters,
   exactly the engine loop's register set minus [instrs]/[pc], which are
   baked into the closure.  [limit] is the current segment's frame
   limit; the template-to-template fast transfers never change segment,
   so it is invariant along a chain and [relaunch] recomputes it on
   every slow-path re-entry. *)
type step = t -> value array -> int -> int -> int -> value -> int -> unit

type Rt.tmpl += Template of step array

(* Identical to the engine's [sync]: flush the batched pc/acc/instruction
   count/fuel before any observation point. *)
let[@inline] sync (vm : t) steps pc acc =
  vm.pc <- pc;
  vm.acc <- acc;
  let stats = vm.stats in
  if stats.Stats.enabled then
    stats.Stats.instrs <- stats.Stats.instrs + steps;
  if vm.fuel >= 0 then vm.fuel <- vm.fuel - steps

(* Resolve a global slot against the running session's cell table (same
   helper as the engine template's [gcell]: one bounds test, unsafe load
   on the hit path; the miss path grows the table).  Resolution happens
   at step *execution*, never at template build: a template is cached on
   the code object and may be shared across sessions (the prelude
   image), each of which has its own cells. *)
let[@inline] gcell (vm : t) slot =
  let cells = vm.globals.Globals.cells in
  if slot < Array.length cells then Array.unsafe_get cells slot
  else Globals.get vm.globals slot

(* The guarded-primitive fast path's two counters. *)
let[@inline] prim_fast_stats (vm : t) =
  let stats = vm.stats in
  if stats.Stats.enabled then begin
    stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
    stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
  end

(* The fuel check, engine semantics: sync with the *current* pc (the
   instruction about to execute) so a resumed machine re-runs it. *)
let fuel_stop (vm : t) steps pc acc =
  sync vm steps pc acc;
  raise Vm_fuel_exhausted

let dummy_step : step = fun _ _ _ _ _ _ _ -> assert false

(* Template-time description of a fused push's source, so one emitter
   covers the [Const_push]/[Local_push] combinations; the match in
   [load] is on an immutable captured value and predicts perfectly. *)
type src = S_local of int | S_const of value

let[@inline] load slots fp = function
  | S_local i -> slots.(fp + i)
  | S_const v -> v

(* Operand loader for the register-addressed forms ([Prim_call1_op]
   etc.): same idea as [load], plus [Op_acc] for the value the lowered
   [Local_set] head would have stored. *)
let[@inline] load_op slots fp acc = function
  | Op_acc -> acc
  | Op_local i -> slots.(fp + i)
  | Op_const v -> v

(* Monomorphic inline cache for [Call]/[Tail_call] steps: when a site
   keeps calling the same code object, the cached tuple carries the
   callee's post-[Enter] entry step and frame extent, so the transfer
   fuses the call with the callee's prologue — the arity check is paid
   once at cache fill, and the counter flush defers into the callee's
   first sync point, exactly like the engine's in-landing transfer.
   The cache is one ref holding an immutable tuple: a racing domain
   (the shared wind-resume templates cross domains) reads either the
   old tuple or the new one, never a torn mix; stale just means a
   recompute through the generic path.  The sentinel code compares
   physically equal to no real callee. *)
let cache_sentinel =
  {
    instrs = [||];
    cname = "<call-cache>";
    arity = At_least 0;
    frame_words = max_int;
    timer_ret = Void;
    templ = No_template;
    cline = 0;
    ccol = 0;
  }

(* ------------------------------------------------------------------ *)
(* Template compilation                                                *)
(* ------------------------------------------------------------------ *)

(* Build the step array for [code] in reverse pc order, so the
   fall-through continuation of a straight-line instruction is captured
   as a direct closure reference.  Branch targets are resolved through
   the array at run time (they may point backwards); every pc gets a
   step regardless of fusion, because any synced pc can become a landing
   entry (deopt returns, error-handler resumes, timer fires). *)
let rec template stats code =
  match code.templ with Template arr -> arr | _ -> compile stats code

and compile stats (code : code) : step array =
  let instrs = code.instrs in
  let n = Array.length instrs in
  let arr = Array.make n dummy_step in
  for pc = n - 1 downto 0 do
    arr.(pc) <- emit arr instrs code pc
  done;
  code.templ <- Template arr;
  if stats.Stats.enabled then begin
    stats.Stats.tmpl_codes <- stats.Stats.tmpl_codes + 1;
    stats.Stats.tmpl_steps <- stats.Stats.tmpl_steps + n
  end;
  arr

and emit arr instrs (code : code) pc : step =
  match Array.unsafe_get instrs pc with
  | Const v -> (
      match Array.unsafe_get instrs (pc + 1) with
      | Return ->
          (* Epilogue fusion: load the result and return in one step (the
             common [(lambda ... c)] tail).  The fuel check covers both
             instructions, stopping at the load's pc. *)
          fun vm slots fp limit budget acc steps ->
            if steps >= budget then fuel_stop vm steps pc acc
            else do_return_fast vm slots fp limit budget v (steps + 2) (pc + 2)
      | _ ->
          let k = arr.(pc + 1) in
          fun vm slots fp limit budget _acc steps ->
            k vm slots fp limit budget v (steps + 1))
  | Local_ref i -> (
      match Array.unsafe_get instrs (pc + 1) with
      | Return ->
          fun vm slots fp limit budget acc steps ->
            if steps >= budget then fuel_stop vm steps pc acc
            else
              do_return_fast vm slots fp limit budget
                slots.(fp + i)
                (steps + 2) (pc + 2)
      | _ ->
          let k = arr.(pc + 1) in
          fun vm slots fp limit budget _acc steps ->
            k vm slots fp limit budget slots.(fp + i) (steps + 1))
  | Local_set i ->
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        slots.(fp + i) <- acc;
        k vm slots fp limit budget acc (steps + 1)
  | Box_init i ->
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        slots.(fp + i) <- Box (ref slots.(fp + i));
        let stats = vm.stats in
        if stats.Stats.enabled then
          stats.Stats.boxes_made <- stats.Stats.boxes_made + 1;
        k vm slots fp limit budget acc (steps + 1)
  | Box_ref i -> (
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        match slots.(fp + i) with
        | Box r -> k vm slots fp limit budget !r (steps + 1)
        | v ->
            sync vm (steps + 1) (pc + 1) acc;
            Values.err "vm: box-ref of non-box" [ v ])
  | Box_set i -> (
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        match slots.(fp + i) with
        | Box r ->
            r := acc;
            k vm slots fp limit budget acc (steps + 1)
        | v ->
            sync vm (steps + 1) (pc + 1) acc;
            Values.err "vm: box-set of non-box" [ v ])
  | Free_ref i -> (
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        match slots.(fp + 1) with
        | Closure c -> k vm slots fp limit budget c.frees.(i) (steps + 1)
        | v ->
            sync vm (steps + 1) (pc + 1) acc;
            Values.err "vm: free-ref outside closure" [ v ])
  | Free_box_ref i -> (
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        match slots.(fp + 1) with
        | Closure c -> (
            match c.frees.(i) with
            | Box r -> k vm slots fp limit budget !r (steps + 1)
            | v ->
                sync vm (steps + 1) (pc + 1) acc;
                Values.err "vm: free-box-ref of non-box" [ v ])
        | v ->
            sync vm (steps + 1) (pc + 1) acc;
            Values.err "vm: free-box-ref outside closure" [ v ])
  | Free_box_set i -> (
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        match slots.(fp + 1) with
        | Closure c -> (
            match c.frees.(i) with
            | Box r ->
                r := acc;
                k vm slots fp limit budget acc (steps + 1)
            | v ->
                sync vm (steps + 1) (pc + 1) acc;
                Values.err "vm: free-box-set of non-box" [ v ])
        | v ->
            sync vm (steps + 1) (pc + 1) acc;
            Values.err "vm: free-box-set outside closure" [ v ])
  | Global_ref s ->
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        let g = gcell vm s in
        if g.gdefined then k vm slots fp limit budget g.gval (steps + 1)
        else begin
          sync vm (steps + 1) (pc + 1) acc;
          Values.err ("unbound variable: " ^ Globals.slot_name s) []
        end
  | Global_set s ->
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        let g = gcell vm s in
        if g.gdefined then begin
          g.gval <- acc;
          k vm slots fp limit budget acc (steps + 1)
        end
        else begin
          sync vm (steps + 1) (pc + 1) acc;
          Values.err ("set! of unbound variable: " ^ Globals.slot_name s) []
        end
  | Global_define s ->
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        let g = gcell vm s in
        g.gval <- acc;
        g.gdefined <- true;
        k vm slots fp limit budget acc (steps + 1)
  | Make_closure (c, caps) ->
      let k = arr.(pc + 1) in
      let ncaps = Array.length caps in
      fun vm slots fp limit budget acc steps ->
        let frees = if ncaps = 0 then [||] else Array.make ncaps Void in
        for i = 0 to ncaps - 1 do
          frees.(i) <-
            (match Array.unsafe_get caps i with
            | Cap_local j -> slots.(fp + j)
            | Cap_free j -> (
                match slots.(fp + 1) with
                | Closure cl -> cl.frees.(j)
                | v ->
                    sync vm (steps + 1) (pc + 1) acc;
                    Values.err "vm: capture outside closure" [ v ]))
        done;
        let stats = vm.stats in
        if stats.Stats.enabled then
          stats.Stats.closures_made <- stats.Stats.closures_made + 1;
        k vm slots fp limit budget (Closure { code = c; frees }) (steps + 1)
  | Branch t ->
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else (Array.unsafe_get arr t) vm slots fp limit budget acc (steps + 1)
  | Branch_false t -> (
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else
          match acc with
          | Bool false ->
              (Array.unsafe_get arr t) vm slots fp limit budget acc (steps + 1)
          | _ -> k vm slots fp limit budget acc (steps + 1))
  | Call site -> (
      let k = arr.(pc + 1) in
      let disp = site.cs_disp and cs_nargs = site.cs_nargs in
      let cache = ref (cache_sentinel, dummy_step, max_int) in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else
          let nfp = fp + disp in
          match slots.(nfp + 1) with
          | Closure c ->
              let ccode, centry, cfw = !cache in
              if c.code == ccode then begin
                (* Monomorphic hit: the call and the callee's [Enter]
                   fuse into one transfer (arity was checked at cache
                   fill), and the batch carries into the callee — no
                   flush, exactly the engine's in-landing transfer. *)
                slots.(nfp) <- site.cs_ret;
                vm.code <- ccode;
                vm.nargs <- cs_nargs;
                vm.pol.Control.fp <- nfp;
                let stats = vm.stats in
                if stats.Stats.enabled then begin
                  stats.Stats.frames <- stats.Stats.frames + 1;
                  stats.Stats.calls <- stats.Stats.calls + 1
                end;
                if nfp + cfw <= limit then begin
                  let t = vm.timer in
                  if t > 0 then
                    if t = 1 then begin
                      vm.timer <- -1;
                      sync vm (steps + 2) 1 acc;
                      Vm_policy.fire_timer vm;
                      relaunch vm
                    end
                    else begin
                      vm.timer <- t - 1;
                      centry vm slots nfp limit budget acc (steps + 2)
                    end
                  else centry vm slots nfp limit budget acc (steps + 2)
                end
                else begin
                  (* Overflow: the callee prologue's slow path, with the
                     machine in exactly the state the engine would have
                     at its [Enter]. *)
                  sync vm (steps + 2) 1 acc;
                  Vm_policy.enter vm;
                  relaunch vm
                end
              end
              else begin
                (* Same-segment call, generic: write the interned return
                   address, flush, and jump into the callee's template.
                   [vm.pc] stays stale, exactly as in the engine loop. *)
                slots.(nfp) <- site.cs_ret;
                vm.code <- c.code;
                vm.nargs <- cs_nargs;
                vm.pol.Control.fp <- nfp;
                let stats = vm.stats in
                if stats.Stats.enabled then begin
                  stats.Stats.instrs <- stats.Stats.instrs + steps + 1;
                  stats.Stats.frames <- stats.Stats.frames + 1;
                  stats.Stats.calls <- stats.Stats.calls + 1
                end;
                if vm.fuel >= 0 then vm.fuel <- vm.fuel - (steps + 1);
                let carr =
                  match c.code.templ with
                  | Template a -> a
                  | _ -> compile vm.stats c.code
                in
                (match c.code.arity with
                | Exactly a when a = cs_nargs && Array.length carr > 1 -> (
                    match c.code.instrs.(0) with
                    | Enter ->
                        cache := (c.code, carr.(1), c.code.frame_words)
                    | _ -> ())
                | _ -> ());
                carr.(0) vm slots nfp limit (budget - (steps + 1)) acc 0
              end
          | Prim { pfn = Pure fn; parity; pname } ->
              sync vm (steps + 1) (pc + 1) acc;
              if not (Bytecode.arity_matches parity cs_nargs) then
                Values.err (pname ^ ": wrong number of arguments") [];
              let stats = vm.stats in
              if stats.Stats.enabled then
                stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
              let v = fn (prim_args vm slots (nfp + 2) cs_nargs) in
              k vm slots fp limit (budget - (steps + 1)) v 0
          | f ->
              sync vm (steps + 1) (pc + 1) acc;
              let stats = vm.stats in
              if stats.Stats.enabled then
                stats.Stats.frames <- stats.Stats.frames + 1;
              Vm_policy.call vm site f;
              relaunch vm)
  | Tail_call { disp; nargs } -> (
      let cache = ref (cache_sentinel, dummy_step, max_int) in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else
          let src = fp + disp in
          let f = slots.(src + 1) in
          match f with
          | Closure c ->
              let ccode, centry, cfw = !cache in
              if c.code == ccode then begin
                slots.(fp + 1) <- f;
                blit_args slots (src + 2) (fp + 2) nargs;
                vm.code <- ccode;
                vm.nargs <- nargs;
                let stats = vm.stats in
                if stats.Stats.enabled then
                  stats.Stats.calls <- stats.Stats.calls + 1;
                if fp + cfw <= limit then begin
                  let t = vm.timer in
                  if t > 0 then
                    if t = 1 then begin
                      vm.timer <- -1;
                      sync vm (steps + 2) 1 acc;
                      Vm_policy.fire_timer vm;
                      relaunch vm
                    end
                    else begin
                      vm.timer <- t - 1;
                      centry vm slots fp limit budget acc (steps + 2)
                    end
                  else centry vm slots fp limit budget acc (steps + 2)
                end
                else begin
                  sync vm (steps + 2) 1 acc;
                  Vm_policy.enter vm;
                  relaunch vm
                end
              end
              else begin
                slots.(fp + 1) <- f;
                blit_args slots (src + 2) (fp + 2) nargs;
                vm.code <- c.code;
                vm.nargs <- nargs;
                let stats = vm.stats in
                if stats.Stats.enabled then begin
                  stats.Stats.instrs <- stats.Stats.instrs + steps + 1;
                  stats.Stats.calls <- stats.Stats.calls + 1
                end;
                if vm.fuel >= 0 then vm.fuel <- vm.fuel - (steps + 1);
                let carr =
                  match c.code.templ with
                  | Template a -> a
                  | _ -> compile vm.stats c.code
                in
                (match c.code.arity with
                | Exactly a when a = nargs && Array.length carr > 1 -> (
                    match c.code.instrs.(0) with
                    | Enter ->
                        cache := (c.code, carr.(1), c.code.frame_words)
                    | _ -> ())
                | _ -> ());
                carr.(0) vm slots fp limit (budget - (steps + 1)) acc 0
              end
          | _ ->
              sync vm (steps + 1) (pc + 1) acc;
              Vm_policy.tail_call vm ~disp ~nargs f;
              relaunch vm)
  | Return -> (
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else
          match slots.(fp) with
          | Retaddr r when fp - r.rdisp + r.rcode.frame_words <= limit ->
              (* Same-segment return: the batch carries into the caller's
                 continuation, no flush — the engine's in-landing
                 transfer. *)
              let nfp = fp - r.rdisp in
              vm.code <- r.rcode;
              vm.pol.Control.fp <- nfp;
              let rarr =
                match r.rcode.templ with
                | Template a -> a
                | _ -> compile vm.stats r.rcode
              in
              let stats = vm.stats in
              if stats.Stats.enabled then
                stats.Stats.instrs <- stats.Stats.instrs + steps + 1;
              if vm.fuel >= 0 then vm.fuel <- vm.fuel - (steps + 1);
              rarr.(r.rpc) vm slots nfp limit (budget - (steps + 1)) acc 0
          | _ ->
              sync vm (steps + 1) (pc + 1) acc;
              Vm_policy.do_return vm;
              relaunch vm)
  | Enter -> (
      (* [Enter] belongs to a known code object, so its arity and frame
         extent are template-time constants: the Exactly-arity fast path
         compiles to two compares with no arity match at run time. *)
      match code.arity with
      | Exactly karity ->
          let fw = code.frame_words in
          let k = arr.(pc + 1) in
          fun vm slots fp limit budget acc steps ->
            if steps >= budget then fuel_stop vm steps pc acc
            else if vm.nargs = karity && fp + fw <= limit then begin
              let t = vm.timer in
              if t > 0 then
                if t = 1 then begin
                  vm.timer <- -1;
                  sync vm (steps + 1) (pc + 1) acc;
                  Vm_policy.fire_timer vm;
                  relaunch vm
                end
                else begin
                  vm.timer <- t - 1;
                  k vm slots fp limit budget acc (steps + 1)
                end
              else k vm slots fp limit budget acc (steps + 1)
            end
            else begin
              sync vm (steps + 1) (pc + 1) acc;
              Vm_policy.enter vm;
              relaunch vm
            end
      | At_least _ ->
          fun vm _slots _fp _limit budget acc steps ->
            if steps >= budget then fuel_stop vm steps pc acc
            else begin
              sync vm (steps + 1) (pc + 1) acc;
              Vm_policy.enter vm;
              relaunch vm
            end)
  | Halt ->
      fun vm _slots _fp _limit _budget acc steps ->
        sync vm (steps + 1) (pc + 1) acc;
        vm.halted <- true
  (* ---- fused superinstructions (emitted by Optimize.peephole) ----
     The push forms additionally fuse here (see [emit_push]): adjacent
     pushes pair up, and a push run that feeds an inline-cached
     primitive folds into the primitive's step.  [steps] advances by
     the number of fused instructions, so accounting is unchanged, and
     every skipped instruction's own step still exists at its pc —
     fusion only skips dispatch to it on the straight-line path. *)
  | Const_push (v, i) -> emit_push arr instrs pc (S_const v) i
  | Local_push (s, i) -> emit_push arr instrs pc (S_local s) i
  | Free_push (i, j) -> (
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        match slots.(fp + 1) with
        | Closure c ->
            slots.(fp + j) <- c.frees.(i);
            k vm slots fp limit budget acc (steps + 1)
        | v ->
            sync vm (steps + 1) (pc + 1) acc;
            Values.err "vm: free-push outside closure" [ v ])
  | Global_push (s, i) -> (
      (* Call setup usually pushes the callee global then its arguments:
         fuse the first argument push in.  The unbound-global error syncs
         only the first instruction, exactly as unfused execution
         would. *)
      match Array.unsafe_get instrs (pc + 1) with
      | Const_push (v2, i2) ->
          let k = arr.(pc + 2) in
          fun vm slots fp limit budget acc steps ->
            let g = gcell vm s in
            if g.gdefined then begin
              slots.(fp + i) <- g.gval;
              slots.(fp + i2) <- v2;
              k vm slots fp limit budget acc (steps + 2)
            end
            else begin
              sync vm (steps + 1) (pc + 1) acc;
              Values.err ("unbound variable: " ^ Globals.slot_name s) []
            end
      | Local_push (s2, i2) ->
          let k = arr.(pc + 2) in
          fun vm slots fp limit budget acc steps ->
            let g = gcell vm s in
            if g.gdefined then begin
              slots.(fp + i) <- g.gval;
              slots.(fp + i2) <- slots.(fp + s2);
              k vm slots fp limit budget acc (steps + 2)
            end
            else begin
              sync vm (steps + 1) (pc + 1) acc;
              Values.err ("unbound variable: " ^ Globals.slot_name s) []
            end
      | _ ->
          let k = arr.(pc + 1) in
          fun vm slots fp limit budget acc steps ->
            let g = gcell vm s in
            if g.gdefined then begin
              slots.(fp + i) <- g.gval;
              k vm slots fp limit budget acc (steps + 1)
            end
            else begin
              sync vm (steps + 1) (pc + 1) acc;
              Values.err ("unbound variable: " ^ Globals.slot_name s) []
            end)
  | Prim_call site ->
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else begin
          sync vm (steps + 1) (pc + 1) acc;
          if (gcell vm site.ps_slot).gval == site.ps_guard then begin
            let stats = vm.stats in
            if stats.Stats.enabled then begin
              stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
              stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
            end;
            let v =
              site.ps_fn
                (prim_args vm slots (fp + site.ps_disp + 2) site.ps_nargs)
            in
            k vm slots fp limit (budget - (steps + 1)) v 0
          end
          else begin
            Vm_policy.prim_deopt_call vm site;
            relaunch vm
          end
        end
  (* The fixed-arity prim steps absorb a trailing [Local_set] of the
     result; the sync point stays at [pc + 1], so error-handler resumes
     re-execute the set on the handler's value, as unfused code would. *)
  | Prim_call1 site -> (
      let argd = site.ps_disp + 2 in
      match Array.unsafe_get instrs (pc + 1) with
      | Local_set j ->
          let k = arr.(pc + 2) in
          fun vm slots fp limit budget acc steps ->
            if steps >= budget then fuel_stop vm steps pc acc
            else begin
              sync vm (steps + 1) (pc + 1) acc;
              if (gcell vm site.ps_slot).gval == site.ps_guard then begin
                prim_fast_stats vm;
                let args = vm.scratch.(1) in
                args.(0) <- slots.(fp + argd);
                let v = site.ps_fn args in
                slots.(fp + j) <- v;
                k vm slots fp limit (budget - (steps + 1)) v 1
              end
              else begin
                Vm_policy.prim_deopt_call vm site;
                relaunch vm
              end
            end
      | _ ->
          let k = arr.(pc + 1) in
          fun vm slots fp limit budget acc steps ->
            if steps >= budget then fuel_stop vm steps pc acc
            else begin
              sync vm (steps + 1) (pc + 1) acc;
              if (gcell vm site.ps_slot).gval == site.ps_guard then begin
                prim_fast_stats vm;
                let args = vm.scratch.(1) in
                args.(0) <- slots.(fp + argd);
                let v = site.ps_fn args in
                k vm slots fp limit (budget - (steps + 1)) v 0
              end
              else begin
                Vm_policy.prim_deopt_call vm site;
                relaunch vm
              end
            end)
  | Prim_call2 site -> (
      let argd = site.ps_disp + 2 in
      match Array.unsafe_get instrs (pc + 1) with
      | Local_set j ->
          let k = arr.(pc + 2) in
          fun vm slots fp limit budget acc steps ->
            if steps >= budget then fuel_stop vm steps pc acc
            else begin
              sync vm (steps + 1) (pc + 1) acc;
              if (gcell vm site.ps_slot).gval == site.ps_guard then begin
                prim_fast_stats vm;
                let args = vm.scratch.(2) in
                let base = fp + argd in
                args.(0) <- slots.(base);
                args.(1) <- slots.(base + 1);
                let v = site.ps_fn args in
                slots.(fp + j) <- v;
                k vm slots fp limit (budget - (steps + 1)) v 1
              end
              else begin
                Vm_policy.prim_deopt_call vm site;
                relaunch vm
              end
            end
      | _ ->
          let k = arr.(pc + 1) in
          fun vm slots fp limit budget acc steps ->
            if steps >= budget then fuel_stop vm steps pc acc
            else begin
              sync vm (steps + 1) (pc + 1) acc;
              if (gcell vm site.ps_slot).gval == site.ps_guard then begin
                prim_fast_stats vm;
                let args = vm.scratch.(2) in
                let base = fp + argd in
                args.(0) <- slots.(base);
                args.(1) <- slots.(base + 1);
                let v = site.ps_fn args in
                k vm slots fp limit (budget - (steps + 1)) v 0
              end
              else begin
                Vm_policy.prim_deopt_call vm site;
                relaunch vm
              end
            end)
  | Local_branch_false (i, t) -> (
      (* The retained [Branch_false] sits at [pc + 1]; fall through lands
         past it, exactly as in the engine loop. *)
      let k = arr.(pc + 2) in
      fun vm slots fp limit budget _acc steps ->
        if steps >= budget then fuel_stop vm steps pc _acc
        else
          let v = slots.(fp + i) in
          match v with
          | Bool false ->
              (Array.unsafe_get arr t) vm slots fp limit budget v (steps + 1)
          | _ -> k vm slots fp limit budget v (steps + 1))
  | Prim_branch1 (site, t) ->
      let k = arr.(pc + 2) in
      let argd = site.ps_disp + 2 in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else begin
          sync vm (steps + 1) (pc + 1) acc;
          if (gcell vm site.ps_slot).gval == site.ps_guard then begin
            let stats = vm.stats in
            if stats.Stats.enabled then begin
              stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
              stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
            end;
            let args = vm.scratch.(1) in
            args.(0) <- slots.(fp + argd);
            let v = site.ps_fn args in
            match v with
            | Bool false ->
                (Array.unsafe_get arr t) vm slots fp limit (budget - (steps + 1)) v 0
            | _ -> k vm slots fp limit (budget - (steps + 1)) v 0
          end
          else begin
            (* The interned [ps_ret] resumes at the retained
               [Branch_false] at [pc + 1]. *)
            Vm_policy.prim_deopt_call vm site;
            relaunch vm
          end
        end
  | Prim_branch2 (site, t) ->
      let k = arr.(pc + 2) in
      let argd = site.ps_disp + 2 in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else begin
          sync vm (steps + 1) (pc + 1) acc;
          if (gcell vm site.ps_slot).gval == site.ps_guard then begin
            let stats = vm.stats in
            if stats.Stats.enabled then begin
              stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
              stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
            end;
            let args = vm.scratch.(2) in
            let base = fp + argd in
            args.(0) <- slots.(base);
            args.(1) <- slots.(base + 1);
            let v = site.ps_fn args in
            match v with
            | Bool false ->
                (Array.unsafe_get arr t) vm slots fp limit (budget - (steps + 1)) v 0
            | _ -> k vm slots fp limit (budget - (steps + 1)) v 0
          end
          else begin
            Vm_policy.prim_deopt_call vm site;
            relaunch vm
          end
        end
  | Prim_tail_call site -> (
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else begin
          sync vm (steps + 1) (pc + 1) acc;
          if (gcell vm site.ps_slot).gval == site.ps_guard then begin
            let stats = vm.stats in
            if stats.Stats.enabled then begin
              stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
              stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
            end;
            let v =
              site.ps_fn
                (prim_args vm slots (fp + site.ps_disp + 2) site.ps_nargs)
            in
            match slots.(fp) with
            | Retaddr r when fp - r.rdisp + r.rcode.frame_words <= limit ->
                (* Counters already flushed by [sync] above. *)
                let nfp = fp - r.rdisp in
                vm.code <- r.rcode;
                vm.pol.Control.fp <- nfp;
                let rarr =
                  match r.rcode.templ with
                  | Template a -> a
                  | _ -> compile vm.stats r.rcode
                in
                rarr.(r.rpc) vm slots nfp limit (budget - (steps + 1)) v 0
            | _ ->
                vm.acc <- v;
                Vm_policy.do_return vm;
                relaunch vm
          end
          else begin
            Vm_policy.prim_deopt_tail_call vm site;
            relaunch vm
          end
        end)
  (* ---- register-addressed forms (Optimize.fuse_operands) ----
     Bytecode-level analogues of this backend's push→prim forwarding:
     the head of the staged sequence carries the operands, the retained
     originals after it form the deopt landing pad (each still gets its
     own step above — any synced pc can become a landing entry).  One
     instruction is counted per fused form, mirroring the engine loop's
     handlers exactly, so [instrs] parity across backends is preserved
     by construction.  Guard failure spills the operand values into the
     frame's argument slots before re-entering {!Vm_policy}. *)
  | Prim_call1_op (site, a) -> (
      let argd = site.ps_disp + 2 in
      match Array.unsafe_get instrs (pc + 2) with
      | Local_set j ->
          let k = arr.(pc + 3) in
          fun vm slots fp limit budget acc steps ->
            if steps >= budget then fuel_stop vm steps pc acc
            else begin
              sync vm (steps + 1) (pc + 2) acc;
              if (gcell vm site.ps_slot).gval == site.ps_guard then begin
                prim_fast_stats vm;
                let args = vm.scratch.(1) in
                args.(0) <- load_op slots fp acc a;
                let v = site.ps_fn args in
                slots.(fp + j) <- v;
                k vm slots fp limit (budget - (steps + 1)) v 1
              end
              else op_deopt1 vm slots fp acc a argd site
            end
      | _ ->
          let k = arr.(pc + 2) in
          fun vm slots fp limit budget acc steps ->
            if steps >= budget then fuel_stop vm steps pc acc
            else begin
              sync vm (steps + 1) (pc + 2) acc;
              if (gcell vm site.ps_slot).gval == site.ps_guard then begin
                prim_fast_stats vm;
                let args = vm.scratch.(1) in
                args.(0) <- load_op slots fp acc a;
                let v = site.ps_fn args in
                k vm slots fp limit (budget - (steps + 1)) v 0
              end
              else op_deopt1 vm slots fp acc a argd site
            end)
  | Prim_call2_op (site, a, b) -> (
      let argd = site.ps_disp + 2 in
      match Array.unsafe_get instrs (pc + 3) with
      | Local_set j ->
          let k = arr.(pc + 4) in
          fun vm slots fp limit budget acc steps ->
            if steps >= budget then fuel_stop vm steps pc acc
            else begin
              sync vm (steps + 1) (pc + 3) acc;
              if (gcell vm site.ps_slot).gval == site.ps_guard then begin
                prim_fast_stats vm;
                let args = vm.scratch.(2) in
                args.(0) <- load_op slots fp acc a;
                args.(1) <- load_op slots fp acc b;
                let v = site.ps_fn args in
                slots.(fp + j) <- v;
                k vm slots fp limit (budget - (steps + 1)) v 1
              end
              else op_deopt2 vm slots fp acc a b argd site
            end
      | _ ->
          let k = arr.(pc + 3) in
          fun vm slots fp limit budget acc steps ->
            if steps >= budget then fuel_stop vm steps pc acc
            else begin
              sync vm (steps + 1) (pc + 3) acc;
              if (gcell vm site.ps_slot).gval == site.ps_guard then begin
                prim_fast_stats vm;
                let args = vm.scratch.(2) in
                args.(0) <- load_op slots fp acc a;
                args.(1) <- load_op slots fp acc b;
                let v = site.ps_fn args in
                k vm slots fp limit (budget - (steps + 1)) v 0
              end
              else op_deopt2 vm slots fp acc a b argd site
            end)
  | Prim_branch1_op (site, a, t) ->
      let argd = site.ps_disp + 2 in
      let k = arr.(pc + 3) in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else begin
          sync vm (steps + 1) (pc + 2) acc;
          if (gcell vm site.ps_slot).gval == site.ps_guard then begin
            prim_fast_stats vm;
            let args = vm.scratch.(1) in
            args.(0) <- load_op slots fp acc a;
            match site.ps_fn args with
            | Bool false ->
                (Array.unsafe_get arr t) vm slots fp limit
                  (budget - (steps + 1))
                  (Bool false) 0
            | v -> k vm slots fp limit (budget - (steps + 1)) v 0
          end
          else
            (* [ps_ret] resumes at the retained [Branch_false] at
               [pc + 2]. *)
            op_deopt1 vm slots fp acc a argd site
        end
  | Prim_branch2_op (site, a, b, t) ->
      let argd = site.ps_disp + 2 in
      let k = arr.(pc + 4) in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else begin
          sync vm (steps + 1) (pc + 3) acc;
          if (gcell vm site.ps_slot).gval == site.ps_guard then begin
            prim_fast_stats vm;
            let args = vm.scratch.(2) in
            args.(0) <- load_op slots fp acc a;
            args.(1) <- load_op slots fp acc b;
            match site.ps_fn args with
            | Bool false ->
                (Array.unsafe_get arr t) vm slots fp limit
                  (budget - (steps + 1))
                  (Bool false) 0
            | v -> k vm slots fp limit (budget - (steps + 1)) v 0
          end
          else op_deopt2 vm slots fp acc a b argd site
        end
  | Prim_tail1_op (site, a) ->
      let argd = site.ps_disp + 2 in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else begin
          sync vm (steps + 1) (pc + 2) acc;
          if (gcell vm site.ps_slot).gval == site.ps_guard then begin
            prim_fast_stats vm;
            let args = vm.scratch.(1) in
            args.(0) <- load_op slots fp acc a;
            let v = site.ps_fn args in
            do_return_fast vm slots fp limit (budget - (steps + 1)) v 0 (pc + 2)
          end
          else begin
            slots.(fp + argd) <- load_op slots fp acc a;
            Vm_policy.prim_deopt_tail_call vm site;
            relaunch vm
          end
        end
  | Prim_tail2_op (site, a, b) ->
      let argd = site.ps_disp + 2 in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else begin
          sync vm (steps + 1) (pc + 3) acc;
          if (gcell vm site.ps_slot).gval == site.ps_guard then begin
            prim_fast_stats vm;
            let args = vm.scratch.(2) in
            args.(0) <- load_op slots fp acc a;
            args.(1) <- load_op slots fp acc b;
            let v = site.ps_fn args in
            do_return_fast vm slots fp limit (budget - (steps + 1)) v 0 (pc + 3)
          end
          else begin
            slots.(fp + argd) <- load_op slots fp acc a;
            slots.(fp + argd + 1) <- load_op slots fp acc b;
            Vm_policy.prim_deopt_tail_call vm site;
            relaunch vm
          end
        end
  | Return_op a ->
      (* Fused producer + [Return], one counted instruction; the retained
         [Return] sits at [pc + 1]. *)
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else
          do_return_fast vm slots fp limit budget
            (load_op slots fp acc a)
            (steps + 1) (pc + 2)

(* A [Const_push]/[Local_push] step.  Beyond plain pair fusion, a push
   run that exactly stages the arguments of a following inline-cached
   primitive fuses into the primitive's step, which reads the sources
   directly instead of going through the frame slots.  The deopt and
   guard-failure paths materialize the staged slots first, so
   {!Vm_policy} sees exactly the frame the unfused sequence would have
   built.  The [s2 <> d1] guards keep the fusion off when the second
   push reads the first one's destination — there the unfused sequence
   observes the staged write, so the run must stay staged. *)
and emit_push arr instrs pc src1 d1 : step =
  match Array.unsafe_get instrs (pc + 1) with
  | Const_push (v2, d2) -> emit_push2 arr instrs pc src1 d1 (S_const v2) d2
  | Local_push (s2, d2) when s2 <> d1 ->
      emit_push2 arr instrs pc src1 d1 (S_local s2) d2
  | Prim_call1 site when site.ps_disp + 2 = d1 ->
      emit_prim1 arr instrs pc src1 d1 site
  | Prim_branch1 (site, t) when site.ps_disp + 2 = d1 ->
      emit_prim_branch1 arr pc src1 d1 site t
  | Prim_tail_call site when site.ps_nargs = 1 && site.ps_disp + 2 = d1 ->
      emit_prim_tail1 pc src1 d1 site
  | _ ->
      let k = arr.(pc + 1) in
      fun vm slots fp limit budget acc steps ->
        slots.(fp + d1) <- load slots fp src1;
        k vm slots fp limit budget acc (steps + 1)

and emit_push2 arr instrs pc src1 d1 src2 d2 : step =
  match Array.unsafe_get instrs (pc + 2) with
  | Prim_call2 site when site.ps_disp + 2 = d1 && site.ps_disp + 3 = d2 ->
      emit_prim2 arr instrs pc src1 d1 src2 d2 site
  | Prim_branch2 (site, t)
    when site.ps_disp + 2 = d1 && site.ps_disp + 3 = d2 ->
      emit_prim_branch2 arr pc src1 d1 src2 d2 site t
  | Prim_tail_call site
    when site.ps_nargs = 2 && site.ps_disp + 2 = d1 && site.ps_disp + 3 = d2
    ->
      emit_prim_tail2 pc src1 d1 src2 d2 site
  | _ ->
      let k = arr.(pc + 2) in
      fun vm slots fp limit budget acc steps ->
        slots.(fp + d1) <- load slots fp src1;
        slots.(fp + d2) <- load slots fp src2;
        k vm slots fp limit budget acc (steps + 2)

(* Push + [Prim_call1], optionally absorbing a trailing [Local_set] of
   the result ([steps] restarts at 1 past the sync so the set is
   counted in the next flush). *)
and emit_prim1 arr instrs pc src1 d1 site : step =
  let ppc = pc + 1 in
  match Array.unsafe_get instrs (ppc + 1) with
  | Local_set j ->
      let k = arr.(ppc + 2) in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else if (gcell vm site.ps_slot).gval == site.ps_guard then begin
          sync vm (steps + 2) (ppc + 1) acc;
          prim_fast_stats vm;
          let args = vm.scratch.(1) in
          args.(0) <- load slots fp src1;
          let v = site.ps_fn args in
          slots.(fp + j) <- v;
          k vm slots fp limit (budget - (steps + 2)) v 1
        end
        else prim_deopt1 vm slots fp src1 d1 site (steps + 2) (ppc + 1) acc
  | _ ->
      let k = arr.(ppc + 1) in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else if (gcell vm site.ps_slot).gval == site.ps_guard then begin
          sync vm (steps + 2) (ppc + 1) acc;
          prim_fast_stats vm;
          let args = vm.scratch.(1) in
          args.(0) <- load slots fp src1;
          let v = site.ps_fn args in
          k vm slots fp limit (budget - (steps + 2)) v 0
        end
        else prim_deopt1 vm slots fp src1 d1 site (steps + 2) (ppc + 1) acc

and emit_prim2 arr instrs pc src1 d1 src2 d2 site : step =
  let ppc = pc + 2 in
  match Array.unsafe_get instrs (ppc + 1) with
  | Local_set j ->
      let k = arr.(ppc + 2) in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else if (gcell vm site.ps_slot).gval == site.ps_guard then begin
          sync vm (steps + 3) (ppc + 1) acc;
          prim_fast_stats vm;
          let args = vm.scratch.(2) in
          args.(0) <- load slots fp src1;
          args.(1) <- load slots fp src2;
          let v = site.ps_fn args in
          slots.(fp + j) <- v;
          k vm slots fp limit (budget - (steps + 3)) v 1
        end
        else prim_deopt2 vm slots fp src1 d1 src2 d2 site (steps + 3) (ppc + 1) acc
  | _ ->
      let k = arr.(ppc + 1) in
      fun vm slots fp limit budget acc steps ->
        if steps >= budget then fuel_stop vm steps pc acc
        else if (gcell vm site.ps_slot).gval == site.ps_guard then begin
          sync vm (steps + 3) (ppc + 1) acc;
          prim_fast_stats vm;
          let args = vm.scratch.(2) in
          args.(0) <- load slots fp src1;
          args.(1) <- load slots fp src2;
          let v = site.ps_fn args in
          k vm slots fp limit (budget - (steps + 3)) v 0
        end
        else prim_deopt2 vm slots fp src1 d1 src2 d2 site (steps + 3) (ppc + 1) acc

and emit_prim_branch1 arr pc src1 d1 site t : step =
  let ppc = pc + 1 in
  let k = arr.(ppc + 2) in
  fun vm slots fp limit budget acc steps ->
    if steps >= budget then fuel_stop vm steps pc acc
    else if (gcell vm site.ps_slot).gval == site.ps_guard then begin
      sync vm (steps + 2) (ppc + 1) acc;
      prim_fast_stats vm;
      let args = vm.scratch.(1) in
      args.(0) <- load slots fp src1;
      match site.ps_fn args with
      | Bool false ->
          (Array.unsafe_get arr t) vm slots fp limit
            (budget - (steps + 2))
            (Bool false) 0
      | v -> k vm slots fp limit (budget - (steps + 2)) v 0
    end
    else prim_deopt1 vm slots fp src1 d1 site (steps + 2) (ppc + 1) acc

and emit_prim_branch2 arr pc src1 d1 src2 d2 site t : step =
  let ppc = pc + 2 in
  let k = arr.(ppc + 2) in
  fun vm slots fp limit budget acc steps ->
    if steps >= budget then fuel_stop vm steps pc acc
    else if (gcell vm site.ps_slot).gval == site.ps_guard then begin
      sync vm (steps + 3) (ppc + 1) acc;
      prim_fast_stats vm;
      let args = vm.scratch.(2) in
      args.(0) <- load slots fp src1;
      args.(1) <- load slots fp src2;
      match site.ps_fn args with
      | Bool false ->
          (Array.unsafe_get arr t) vm slots fp limit
            (budget - (steps + 3))
            (Bool false) 0
      | v -> k vm slots fp limit (budget - (steps + 3)) v 0
    end
    else prim_deopt2 vm slots fp src1 d1 src2 d2 site (steps + 3) (ppc + 1) acc

and emit_prim_tail1 pc src1 d1 site : step =
  let ppc = pc + 1 in
  fun vm slots fp limit budget acc steps ->
    if steps >= budget then fuel_stop vm steps pc acc
    else if (gcell vm site.ps_slot).gval == site.ps_guard then begin
      sync vm (steps + 2) (ppc + 1) acc;
      prim_fast_stats vm;
      let args = vm.scratch.(1) in
      args.(0) <- load slots fp src1;
      let v = site.ps_fn args in
      do_return_fast vm slots fp limit (budget - (steps + 2)) v 0 (ppc + 1)
    end
    else begin
      slots.(fp + d1) <- load slots fp src1;
      sync vm (steps + 2) (ppc + 1) acc;
      Vm_policy.prim_deopt_tail_call vm site;
      relaunch vm
    end

and emit_prim_tail2 pc src1 d1 src2 d2 site : step =
  let ppc = pc + 2 in
  fun vm slots fp limit budget acc steps ->
    if steps >= budget then fuel_stop vm steps pc acc
    else if (gcell vm site.ps_slot).gval == site.ps_guard then begin
      sync vm (steps + 3) (ppc + 1) acc;
      prim_fast_stats vm;
      let args = vm.scratch.(2) in
      args.(0) <- load slots fp src1;
      args.(1) <- load slots fp src2;
      let v = site.ps_fn args in
      do_return_fast vm slots fp limit (budget - (steps + 3)) v 0 (ppc + 1)
    end
    else begin
      slots.(fp + d1) <- load slots fp src1;
      slots.(fp + d2) <- load slots fp src2;
      sync vm (steps + 3) (ppc + 1) acc;
      Vm_policy.prim_deopt_tail_call vm site;
      relaunch vm
    end

(* Guard failure of a push-fused primitive: stage the argument slots
   the unfused pushes would have written, then deoptimize exactly as
   the standalone prim step does. *)
and prim_deopt1 (vm : t) slots fp src1 d1 site steps resume_pc acc =
  slots.(fp + d1) <- load slots fp src1;
  sync vm steps resume_pc acc;
  Vm_policy.prim_deopt_call vm site;
  relaunch vm

and prim_deopt2 (vm : t) slots fp src1 d1 src2 d2 site steps resume_pc acc =
  slots.(fp + d1) <- load slots fp src1;
  slots.(fp + d2) <- load slots fp src2;
  sync vm steps resume_pc acc;
  Vm_policy.prim_deopt_call vm site;
  relaunch vm

(* Guard failure of a register-addressed call/branch form: the step has
   already synced at the retained consumer's pc, so only the operand
   spill into the frame's argument slots remains before re-entering the
   frame policy. *)
and op_deopt1 (vm : t) slots fp acc a argd site =
  slots.(fp + argd) <- load_op slots fp acc a;
  Vm_policy.prim_deopt_call vm site;
  relaunch vm

and op_deopt2 (vm : t) slots fp acc a b argd site =
  slots.(fp + argd) <- load_op slots fp acc a;
  slots.(fp + argd + 1) <- load_op slots fp acc b;
  Vm_policy.prim_deopt_call vm site;
  relaunch vm

(* The shared tail of a fused return step: [steps] is the total count
   including every fused instruction (the batch carries into the caller
   on the fast path, unflushed), [next_pc] the pc past the [Return]
   (the sync point the slow path must land on). *)
and do_return_fast (vm : t) slots fp limit budget acc steps next_pc =
  match slots.(fp) with
  | Retaddr r when fp - r.rdisp + r.rcode.frame_words <= limit ->
      let nfp = fp - r.rdisp in
      vm.code <- r.rcode;
      vm.pol.Control.fp <- nfp;
      let rarr =
        match r.rcode.templ with
        | Template a -> a
        | _ -> compile vm.stats r.rcode
      in
      rarr.(r.rpc) vm slots nfp limit budget acc steps
  | _ ->
      sync vm steps next_pc acc;
      Vm_policy.do_return vm;
      relaunch vm

(* Re-establish the landing state from [vm] after a slow-path control
   transfer and continue in compiled steps (or stop, when the transfer
   halted the machine).  The entry-pc bounds check mirrors the engine's
   [relaunch]; [tmpl_enters] counts these re-entries — the closure
   backend's analogue of the engine's landings-per-transfer. *)
and relaunch (vm : t) =
  if not vm.halted then begin
    let code = vm.code in
    let arr =
      match code.templ with Template a -> a | _ -> compile vm.stats code
    in
    let pc = vm.pc in
    if pc < 0 || pc >= Array.length arr then
      Values.err "vm: corrupt return address (pc out of range)" [];
    let stats = vm.stats in
    if stats.Stats.enabled then
      stats.Stats.tmpl_enters <- stats.Stats.tmpl_enters + 1;
    (Array.unsafe_get arr pc) vm (Vm_policy.slots vm) (Vm_policy.frame_base vm)
      (Control.seg_limit vm.pol)
      (if vm.fuel < 0 then max_int else vm.fuel)
      vm.acc 0
  end

(* ------------------------------------------------------------------ *)
(* Driver: identical protocol to the engine loop                       *)
(* ------------------------------------------------------------------ *)

let rec run_loop (vm : t) =
  match relaunch vm with
  | () -> ()
  | exception (Scheme_error (msg, irritants) as exn) -> (
      match Engine.pop_error_handler vm with
      | Some h ->
          Vm_policy.inject_error_handler vm h msg irritants;
          run_loop vm
      | None -> raise exn)

let run ?(fuel = -1) (vm : t) code =
  Vm_policy.init_run vm code;
  vm.code <- code;
  vm.pc <- 0;
  vm.nargs <- 0;
  vm.acc <- Void;
  vm.halted <- false;
  vm.fuel <- fuel;
  vm.winders <- [];
  (* Route the process-shared timer/output prims at this machine for the
     extent of the run (restored on exit, so nested runs unwind). *)
  Machine_hooks.with_hooks vm.hooks (fun () -> run_loop vm);
  vm.acc

let run_program ?fuel (vm : t) codes =
  List.fold_left (fun _ code -> run ?fuel vm code) Void codes

(* Compile first, then run: the whole [Make_closure] DAG of every
   top-level form is template-compiled before execution starts, so the
   measured run performs no compilation (runtime-generated code — [eval]
   the Scheme special — still compiles on demand in [relaunch]). *)
let run_compiled ?fuel (vm : t) codes =
  List.iter
    (fun c ->
      List.iter
        (fun c' -> ignore (template vm.stats c'))
        (Bytecode.collect_codes [] c))
    codes;
  run_program ?fuel vm codes

let eval ?fuel ?optimize ?peephole ?regalloc ?verify (vm : t) src =
  run_compiled ?fuel vm
    (Compiler.compile_string ?optimize ?peephole ?regalloc ?verify
       ~hygiene:vm.hygiene ~menv:vm.menv vm.globals src)

(* Per-form entry point: one already-read top-level datum, so drivers
   can attribute failures to the datum's source position. *)
let eval_datum ?fuel ?optimize ?peephole ?regalloc ?verify (vm : t) d =
  run_compiled ?fuel vm
    (Compiler.compile_datum ?optimize ?peephole ?regalloc ?verify
       ~hygiene:vm.hygiene ~menv:vm.menv vm.globals d)

let create = Vm_policy.create
let control (vm : t) = vm.Engine.pol
let stats = Engine.stats
let globals = Engine.globals
let output = Engine.output

(* The code objects shared across machines (the halt code and the
   dynamic-wind resume codes) are template-compiled here, at module
   initialization: Scheme.Pool runs sessions on multiple domains, and
   precompiling before any domain can spawn means their [templ] slots
   are only ever read concurrently, never written.  Per-program code is
   session-private, so no other cross-domain template write exists. *)
let () =
  let stats = Stats.create ~enabled:false () in
  List.iter
    (fun c -> ignore (template stats c))
    [ Engine.halt_code; Prims.wind_resume_code; Prims.dw_resume_code ]

(* Eager template compilation for code shared across sessions (the
   prelude image): the caller is responsible for sequencing this before
   the codes become visible to other domains (the image cache does it
   under its build lock). *)
let precompile codes =
  let stats = Stats.create ~enabled:false () in
  List.iter
    (fun c ->
      List.iter
        (fun c' -> ignore (template stats c'))
        (Bytecode.collect_codes [] c))
    codes
