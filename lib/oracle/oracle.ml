open Rt

type oneshot_state = { shot : bool ref; promoted : bool ref }

type t = {
  globals : Globals.t;
  menv : Macro.menv;
  mutable hygiene : bool; (* the expander's hygiene switch for this session *)
  out : Buffer.t;
  stats : Stats.t;
  hooks : Machine_hooks.t;
      (* routes the process-shared output prims at [out] for the extent
         of every [eval_tops]; the timer hooks stay dormant (the oracle
         has no preemption: set is a no-op, get reads 0) *)
  mutable fuel : int; (* negative = unlimited *)
  mutable oneshots : oneshot_state list; (* outstanding one-shot captures *)
  mutable winders : winder list; (* native dynamic-wind extents, innermost
                                    first; shares structure across captures *)
}

exception Fuel_exhausted

(* forward reference: Sp_eval needs the top-level evaluator *)
let eval_top_fwd :
    (t -> Ast.top -> (value -> value) -> value) ref =
  ref (fun _ _ _ -> assert false)

let create ?stats () =
  let out = Buffer.create 256 in
  let globals = Globals.create () in
  Prims.install globals;
  let hooks = Machine_hooks.default () in
  hooks.Machine_hooks.out <- (fun () -> out);
  {
    globals;
    menv = Macro.create_menv ();
    hygiene = true;
    out;
    stats = (match stats with Some s -> s | None -> Stats.create ());
    hooks;
    fuel = -1;
    oneshots = [];
    winders = [];
  }

let globals t = t.globals
let stats t = t.stats
let output t = Buffer.contents t.out
let set_hygiene t b = t.hygiene <- b

(* One interpreter step: the oracle's unit of work is an AST node or an
   application, so [instrs] counts steps rather than bytecode
   dispatches — comparable across runs of the oracle itself, not with
   the VMs' instruction counts. *)
let tick t =
  let stats = t.stats in
  if stats.Stats.enabled then stats.Stats.instrs <- stats.Stats.instrs + 1;
  if t.fuel >= 0 then begin
    if t.fuel = 0 then raise Fuel_exhausted;
    t.fuel <- t.fuel - 1
  end

(* Environments map names to mutable cells. *)
type env = (string * value ref) list

let one_value args =
  match (args : value array) with
  | [| v |] -> v
  | _ -> Mvals (Array.to_list args)

let rec apply t f (args : value array) (k : value -> value) : value =
  tick t;
  let stats = t.stats in
  match f with
  | Ofun o ->
      if stats.Stats.enabled then stats.Stats.calls <- stats.Stats.calls + 1;
      o.ofn args k
  | Prim { pfn = Pure fn; parity; pname } ->
      if not (Bytecode.arity_matches parity (Array.length args)) then
        Values.err (pname ^ ": wrong number of arguments") [];
      if stats.Stats.enabled then
        stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
      k (fn args)
  | Prim { pfn = Special sp; parity; pname } ->
      if not (Bytecode.arity_matches parity (Array.length args)) then
        Values.err (pname ^ ": wrong number of arguments") [];
      if stats.Stats.enabled then
        stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
      special t sp args k
  | v -> Values.err "application of non-procedure" [ v ]

(* Run the afters/befores needed to move the machine's winder chain from
   its current state to [target], then continue with [fin].  The chain
   arithmetic is {!Engine.wind_plan}'s — the same planner the two VM
   trampolines drive — replayed here over CPS recursion.  Ordering
   matches the Scheme protocol exactly: unwind pops the chain *before*
   running the after (innermost first); rewind runs the before *before*
   committing the chain node (outermost first). *)
and do_winds t target fin =
  match Engine.wind_plan t.winders target with
  | Engine.Wind_done -> fin ()
  | Engine.Unwind (w, rest) ->
      t.winders <- rest;
      apply t w.w_after [||] (fun _ -> do_winds t target fin)
  | Engine.Rewind (w, node) ->
      apply t w.w_before [||] (fun _ ->
          t.winders <- node;
          do_winds t target fin)

and special t sp args k =
  match sp with
  | Sp_callcc ->
      (* Over-approximate promotion: see interface comment. *)
      List.iter (fun o -> o.promoted := true) t.oneshots;
      t.stats.Stats.captures_multi <- t.stats.Stats.captures_multi + 1;
      let saved = t.winders in
      let kv =
        Ofun
          {
            oname = "continuation";
            ofn =
              (fun vals _ ->
                do_winds t saved (fun () -> k (one_value vals)));
          }
      in
      apply t args.(0) [| kv |] k
  | Sp_call1cc ->
      let st = { shot = ref false; promoted = ref false } in
      t.oneshots <- st :: t.oneshots;
      t.stats.Stats.captures_oneshot <- t.stats.Stats.captures_oneshot + 1;
      let consume () =
        if not !(st.promoted) then begin
          if !(st.shot) then raise Shot_continuation;
          st.shot := true
        end
      in
      let saved = t.winders in
      let kv =
        Ofun
          {
            oname = "one-shot-continuation";
            ofn =
              (fun vals _ ->
                (* Winds run first; the shot check fires when the raw
                   continuation is finally applied, as in the prelude's
                   wrapper. *)
                do_winds t saved (fun () ->
                    consume ();
                    k (one_value vals)));
          }
      in
      apply t args.(0) [| kv |] (fun v ->
          (* Normal return from the receiver consumes the extent too. *)
          consume ();
          k v)
  | Sp_dynamic_wind ->
      let before = args.(0) and thunk = args.(1) and after = args.(2) in
      apply t before [||] (fun _ ->
          t.winders <- { w_before = before; w_after = after } :: t.winders;
          apply t thunk [||] (fun result ->
              (match t.winders with
              | _ :: rest -> t.winders <- rest
              | [] -> ());
              apply t after [||] (fun _ -> k result)))
  | Sp_wind ->
      (* Internal trampoline driver of the stack/heap VMs; the oracle's
         winds are direct OCaml recursion, so it can never be applied. *)
      Values.err "%wind: internal primitive" []
  | Sp_apply ->
      let f = args.(0) in
      let n = Array.length args in
      let fixed = Array.sub args 1 (n - 2) in
      let last = Values.list_of_value args.(n - 1) in
      apply t f (Array.append fixed (Array.of_list last)) k
  | Sp_values -> k (one_value args)
  | Sp_set_timer -> k Void (* no timer in the oracle *)
  | Sp_get_timer -> k (Int 0)
  | Sp_backtrace -> k Nil (* the oracle's control is OCaml closures *)
  | Sp_eval ->
      let tops =
        Expander.expand_tops ~hygiene:t.hygiene ~menv:t.menv
          (Expander.value_to_datum args.(0))
      in
      let rec go last = function
        | [] -> k last
        | top :: rest -> !eval_top_fwd t top (fun v -> go v rest)
      in
      go Void tops
  | Sp_stats -> (
      let name =
        match args.(0) with
        | Sym s -> s
        | v -> Values.type_error "%stat" "symbol" v
      in
      match Stats.get t.stats name with
      | n -> k (Int n)
      | exception Not_found -> Values.err ("%stat: unknown counter " ^ name) [])

let rec eval_exp t (env : env) (e : Ast.t) (k : value -> value) : value =
  tick t;
  match e with
  | Ast.Quote v -> k v
  | Ast.Var x -> (
      match List.assoc_opt x env with
      | Some cell -> k !cell
      | None -> (
          (* Lexically unbound: a global reference under the source
             name (hygiene marks stripped). *)
          match Globals.find_opt t.globals (Macro.strip_marks x) with
          | Some g -> k g.gval
          | None ->
              Values.err ("unbound variable: " ^ Macro.strip_marks x) []))
  | Ast.If (tst, c, a) ->
      eval_exp t env tst (fun v ->
          if Values.is_truthy v then eval_exp t env c k else eval_exp t env a k)
  | Ast.Set (x, rhs) ->
      eval_exp t env rhs (fun v ->
          match List.assoc_opt x env with
          | Some cell ->
              cell := v;
              k Void
          | None ->
              let g = Globals.cell t.globals (Macro.strip_marks x) in
              if g.gdefined then begin
                g.gval <- v;
                k Void
              end
              else
                Values.err
                  ("set! of unbound variable: " ^ Macro.strip_marks x) [])
  | Ast.Begin es ->
      let rec go = function
        | [] -> k Void
        | [ last ] -> eval_exp t env last k
        | x :: rest -> eval_exp t env x (fun _ -> go rest)
      in
      go es
  | Ast.Lambda l -> k (make_closure t env l)
  | Ast.App (f, argexps) ->
      eval_exp t env f (fun fv ->
          let n = List.length argexps in
          let vals = Array.make n Void in
          let rec go i = function
            | [] -> apply t fv vals k
            | a :: rest ->
                eval_exp t env a (fun v ->
                    vals.(i) <- v;
                    go (i + 1) rest)
          in
          go 0 argexps)

and make_closure t env (l : Ast.lambda) =
  let nparams = List.length l.params in
  Ofun
    {
      oname = l.lname;
      ofn =
        (fun args k ->
          let n = Array.length args in
          (match l.rest with
          | None ->
              if n <> nparams then
                Values.err
                  (Printf.sprintf "%s: expected %d arguments, got %d" l.lname
                     nparams n)
                  []
          | Some _ ->
              if n < nparams then
                Values.err
                  (Printf.sprintf "%s: expected at least %d arguments, got %d"
                     l.lname nparams n)
                  []);
          let param_cells =
            List.mapi (fun i p -> (p, ref args.(i))) l.params
          in
          let rest_cells =
            match l.rest with
            | None -> []
            | Some r ->
                let tail =
                  Array.to_list (Array.sub args nparams (n - nparams))
                in
                [ (r, ref (Values.list_to_value tail)) ]
          in
          eval_exp t (param_cells @ rest_cells @ env) l.body k);
    }

let eval_top t (top : Ast.top) (k : value -> value) =
  match top with
  | Ast.Expr (e, _) -> eval_exp t [] e k
  | Ast.Define (x, e, _) ->
      eval_exp t [] e (fun v ->
          Globals.define t.globals x v;
          k Void)

let () = eval_top_fwd := eval_top

let eval_tops ?(fuel = -1) t tops =
  t.fuel <- fuel;
  let rec go last = function
    | [] -> last
    | top :: rest -> eval_top t top (fun v -> go v rest)
  in
  Machine_hooks.with_hooks t.hooks (fun () -> go Void tops)

let eval ?fuel t src =
  eval_tops ?fuel t
    (Expander.expand_string ~hygiene:t.hygiene ~menv:t.menv src)

let eval_datum ?fuel t d =
  eval_tops ?fuel t (Expander.expand_tops ~hygiene:t.hygiene ~menv:t.menv d)
