(** Reference interpreter used as a differential-testing oracle.

    A tree-walking interpreter over the expanded core AST, written in
    continuation-passing style with OCaml closures as continuations, so
    multi-shot [%call/cc] is supported natively and independently of the
    segmented-stack machinery under test.

    Semantics intentionally diverge from the VMs in exactly one place:
    [%call/cc] promotes {e every} outstanding one-shot continuation, not
    just those in the captured chain (OCaml closures cannot be walked).
    This over-approximation never changes the value of a program that runs
    without a shot-continuation error on the stack VM, which is the
    property differential tests check.  [%set-timer!] is a no-op.

    The oracle keeps a live {!Stats.t}: [instrs] counts interpreter steps
    (AST nodes and applications — not comparable with the VMs' bytecode
    dispatch counts), [calls]/[prim_calls] count applications, and the
    capture counters mirror the VMs'; [%stat] reads them like the other
    backends. *)

type t

exception Fuel_exhausted

val create : ?stats:Stats.t -> unit -> t
val globals : t -> Globals.t
val stats : t -> Stats.t

val set_hygiene : t -> bool -> unit
(** Switch the expander's hygiene for this session's subsequent
    evaluations (default on); [false] reproduces the historical textual
    macro expansion. *)

val eval : ?fuel:int -> t -> string -> Rt.value
(** Run a program; the last form's value.  [fuel] bounds interpreter steps.
    @raise Rt.Scheme_error / @raise Rt.Shot_continuation as the VMs do. *)

val eval_datum : ?fuel:int -> t -> Sexp.t -> Rt.value
(** Like {!eval} for one already-read top-level datum, so a driver can
    attribute failures to the datum's source position. *)

val eval_tops : ?fuel:int -> t -> Ast.top list -> Rt.value
val output : t -> string
