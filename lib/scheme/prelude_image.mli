(** Compile-once shared prelude image.

    The prelude sources are expanded, compiled, validated, verified and
    executed exactly once per configuration key — (scheme_winders,
    optimize, peephole, regalloc) — on a throwaway stack machine; the
    resulting global-slot delta is copied into each session's global
    table at create time.  Compiled code is session-independent
    (slot-indexed globals, process-shared primitives), so the codes,
    the closure values in the delta, and the closure backend's
    eagerly-compiled templates are shared read-only by every session
    and every {!Scheme.Pool} / par-pool shard. *)

type t

val get :
  scheme_winders:bool -> optimize:bool -> peephole:bool -> regalloc:bool -> t
(** The image for one configuration, building and caching it on first
    request (mutex-guarded: safe from any domain). *)

val install : t -> Globals.t -> unit
(** Copy the image's global-slot delta into [g] — the whole per-session
    cost of loading the prelude. *)

val codes : t -> Rt.code list
(** The compiled prelude program (fused, validated, verified). *)

val delta_size : t -> int
(** Number of global slots the prelude defines (diagnostics/tests). *)

val builds : unit -> int
(** How many distinct images this process has built — the compile-once
    pin: it must not grow with session count. *)
