(* Compile-once shared prelude.

   Every session used to re-read, re-expand and re-compile the prelude
   sources (and then execute the result on its own machine) at create
   time — thousands of dispatched instructions per session before the
   first user form, multiplied by every {!Scheme.Pool} shard and
   par-pool worker.  Slot-indexed globals made compiled code
   session-independent (an [Rt.code] mentions global *slots*, never a
   session's cells), and the primitive table is process-shared (so the
   [ps_guard] physical-identity checks in fused prim sites hold in
   every session): nothing in a compiled prelude is per-session any
   more.

   This module therefore builds the prelude once per configuration
   key — (scheme_winders, optimize, peephole, regalloc), the four
   switches that change the compiled stream — on a throwaway
   stack-backend machine with disabled stats, verifies the result
   ({!Bytecode.validate} at construction, {!Verify} over the fused
   stream), executes it once, and snapshots the *global-slot delta*:
   the (slot, value) pairs the prelude execution defined.  A session
   "loads" the prelude by copying that delta into its own global
   table — no reading, no expansion, no compilation, no execution, so
   the per-session startup instruction count collapses to zero (the
   pin in test_perf_counters).

   Sharing discipline: the delta's values are closures over shared code
   objects, primitives, and immutable literals; prelude top-level
   definitions close over nothing mutable (top-level state lives in
   global cells, which are per-session by construction).  The closure
   backend's templates are compiled eagerly here, under the image lock,
   so the shared code objects' [templ] slots are written exactly once
   before any other domain can read them.

   The oracle bypasses the image: it interprets ASTs directly and
   represents procedures as [Ofun]s, so it keeps the per-session
   expansion path. *)

type t = {
  codes : Rt.code list; (* the compiled prelude, fused and verified *)
  delta : (int * Rt.value) array; (* slots the prelude execution defined *)
}

type key = { k_winders : bool; k_opt : bool; k_peep : bool; k_reg : bool }

let lock = Mutex.create ()
let cache : (key, t) Hashtbl.t = Hashtbl.create 8
let built = ref 0

let build { k_winders; k_opt; k_peep; k_reg } =
  let stats = Stats.create ~enabled:false () in
  let vm = Vm.create ~stats () in
  let g = Vm.globals vm in
  let before =
    Array.map
      (fun (c : Rt.global) -> (c.Rt.gval, c.Rt.gdefined))
      g.Globals.cells
  in
  let before_len = Array.length before in
  let menv = Macro.create_menv () in
  let compile src =
    Compiler.compile_string ~optimize:k_opt ~peephole:k_peep ~regalloc:k_reg
      ~verify:true ~menv g src
  in
  let codes =
    compile
      (if k_winders then Prelude.source_scheme_winders else Prelude.source)
    @ compile Parprelude.source
  in
  ignore (Vm.run_program vm codes);
  let delta = ref [] in
  Array.iteri
    (fun i (c : Rt.global) ->
      let fresh =
        i >= before_len
        ||
        let v0, d0 = before.(i) in
        (not d0) || v0 != c.Rt.gval
      in
      if c.Rt.gdefined && fresh then delta := (i, c.Rt.gval) :: !delta)
    g.Globals.cells;
  Closurevm.precompile codes;
  incr built;
  { codes; delta = Array.of_list (List.rev !delta) }

let get ~scheme_winders ~optimize ~peephole ~regalloc =
  let key =
    {
      k_winders = scheme_winders;
      k_opt = optimize;
      k_peep = peephole;
      k_reg = regalloc;
    }
  in
  Mutex.lock lock;
  let img =
    match Hashtbl.find_opt cache key with
    | Some img -> img
    | None ->
        let img = build key in
        Hashtbl.add cache key img;
        img
  in
  Mutex.unlock lock;
  img

let install t g =
  Array.iter
    (fun (slot, v) ->
      let c = Globals.get g slot in
      c.Rt.gval <- v;
      c.Rt.gdefined <- true)
    t.delta

let codes t = t.codes
let delta_size t = Array.length t.delta

let builds () =
  Mutex.lock lock;
  let n = !built in
  Mutex.unlock lock;
  n
