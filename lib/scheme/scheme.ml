type backend =
  | Stack of Control.config
  | Heap
  | Oracle

type machine =
  | M_stack of Vm.t
  | M_heap of Heapvm.t
  | M_oracle of Oracle.t

type t = {
  which : backend;
  machine : machine;
  stats : Stats.t;
  optimize : bool;
  peephole : bool;
}

let eval_machine ?fuel t src =
  match t.machine with
  | M_stack vm ->
      Vm.eval ?fuel ~optimize:t.optimize ~peephole:t.peephole vm src
  | M_heap vm ->
      Heapvm.eval ?fuel ~optimize:t.optimize ~peephole:t.peephole vm src
  | M_oracle o -> Oracle.eval ?fuel o src

let create ?(backend = Stack Control.default_config) ?stats ?(prelude = true)
    ?(scheme_winders = false) ?(corpus = false) ?(optimize = false)
    ?(peephole = true) () =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let machine =
    match backend with
    | Stack config -> M_stack (Vm.create ~config ~stats ())
    | Heap -> M_heap (Heapvm.create ~stats ())
    | Oracle -> M_oracle (Oracle.create ())
  in
  let t = { which = backend; machine; stats; optimize; peephole } in
  if prelude then
    ignore
      (eval_machine t
         (if scheme_winders then Prelude.source_scheme_winders
          else Prelude.source));
  if corpus then begin
    ignore (eval_machine t Programs.all_defs);
    ignore (eval_machine t Threads.scheduler);
    ignore (eval_machine t Cml.source)
  end;
  t

let backend t = t.which
let eval ?fuel t src = eval_machine ?fuel t src
let eval_string ?fuel t src = Values.write_string (eval ?fuel t src)

let load_corpus t =
  ignore (eval_machine t Programs.all_defs);
  ignore (eval_machine t Threads.scheduler);
  ignore (eval_machine t Cml.source)

let output t =
  match t.machine with
  | M_stack vm -> Vm.output vm
  | M_heap vm -> Heapvm.output vm
  | M_oracle o -> Oracle.output o

let stats t = t.stats

let control t =
  match t.machine with M_stack vm -> Some vm.Vm.m | _ -> None

let globals t =
  match t.machine with
  | M_stack vm -> vm.Vm.globals
  | M_heap vm -> vm.Heapvm.globals
  | M_oracle o -> Oracle.globals o
