type backend =
  | Stack of Control.config
  | Closure of Control.config
  | Heap
  | Oracle

type machine =
  | M_stack of Vm.t
  | M_closure of Closurevm.t
  | M_heap of Heapvm.t
  | M_oracle of Oracle.t

(* A task shipped to a worker shard, and what comes back.  Everything in
   a task is either immutable OCaml data or a {!Flatvalue.t} (heap-
   detached by construction), so tasks cross domains freely. *)
type partask = {
  pt_id : int; (* chunk index; results/outputs reassemble in this order *)
  pt_mode : string; (* "map" | "for-each" | "reduce" *)
  pt_fname : string; (* global name of the task procedure *)
  pt_args : Flatvalue.t array; (* the chunk's items *)
  pt_init : Flatvalue.t option; (* reduce seed *)
}

type paroutcome = {
  po_result : (Flatvalue.t, string) result;
      (* Ok: the chunk driver's payload (result vector / reduce partial),
         serialized in the worker; Error: a rendered error message *)
  po_output : string; (* display/write output the chunk produced *)
}

type t = {
  which : backend;
  machine : machine;
  stats : Stats.t;
  optimize : bool;
  peephole : bool;
  regalloc : bool;
  verify : bool;
  hygiene : bool;
  mutable par : parpool option;
}

(* The data-parallel pool attached to a master session (par_attach).
   Workers are fully independent sessions — one per pool slot, created
   on the worker's own domain — fed through per-slot task deques.  The
   mutex guards every mutable field below; the condition variable is
   both the workers' "work arrived" signal and the master's "dispatch
   drained" signal. *)
and parpool = {
  p_jobs : int;
  p_chunk : int;
  p_steal : bool;
  p_domains : bool; (* false: tasks run inline on the calling domain *)
  p_fuel : int option;
  p_corpus : bool; (* workers preload the benchmark corpus *)
  p_backend : backend;
  p_hygiene : bool;
  p_optimize : bool;
  p_peephole : bool;
  p_regalloc : bool;
  p_verify : bool;
  p_lock : Mutex.t;
  p_cond : Condition.t;
  mutable p_log : string list; (* master-evaluated definition forms, newest
                                  first; workers replay before each task *)
  mutable p_loglen : int;
  p_deques : partask list ref array; (* slot i's tasks, front = next own pop;
                                        steals take the back *)
  mutable p_outcomes : paroutcome option array; (* current dispatch, by id *)
  mutable p_remaining : int; (* tasks not yet completed; 0 = idle *)
  mutable p_shutdown : bool;
  mutable p_handles : unit Domain.t list;
  p_seq_workers : parworker option array; (* lazily created, p_domains=false *)
  p_shard_stats : Stats.t option array;
      (* each worker publishes its session's counter block here at
         creation; the master may read it only while the pool is idle
         (the dispatch-drained handshake under [p_lock] orders the
         worker's counter writes before the master's reads) *)
}

and parworker = { w_session : t; mutable w_replayed : int }

let eval_machine ?fuel t src =
  match t.machine with
  | M_stack vm ->
      Vm.eval ?fuel ~optimize:t.optimize ~peephole:t.peephole
        ~regalloc:t.regalloc ~verify:t.verify vm src
  | M_closure vm ->
      Closurevm.eval ?fuel ~optimize:t.optimize ~peephole:t.peephole
        ~regalloc:t.regalloc ~verify:t.verify vm src
  | M_heap vm ->
      Heapvm.eval ?fuel ~optimize:t.optimize ~peephole:t.peephole
        ~regalloc:t.regalloc ~verify:t.verify vm src
  | M_oracle o -> Oracle.eval ?fuel o src

let machine_globals = function
  | M_stack vm -> Vm.globals vm
  | M_closure vm -> Closurevm.globals vm
  | M_heap vm -> Heapvm.globals vm
  | M_oracle o -> Oracle.globals o

let create ?(backend = Stack Control.default_config) ?stats ?(prelude = true)
    ?(scheme_winders = false) ?(corpus = false) ?(optimize = false)
    ?(peephole = true) ?(regalloc = true) ?(verify = false)
    ?(hygiene = true) () =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let machine =
    match backend with
    | Stack config -> M_stack (Vm.create ~config ~stats ())
    | Closure config -> M_closure (Closurevm.create ~config ~stats ())
    | Heap -> M_heap (Heapvm.create ~stats ())
    | Oracle -> M_oracle (Oracle.create ~stats ())
  in
  (match machine with
  | M_stack vm -> vm.Engine.hygiene <- hygiene
  | M_closure vm -> vm.Engine.hygiene <- hygiene
  | M_heap vm -> vm.Engine.hygiene <- hygiene
  | M_oracle o -> Oracle.set_hygiene o hygiene);
  let t =
    { which = backend; machine; stats; optimize; peephole; regalloc; verify;
      hygiene; par = None }
  in
  (if prelude then
     match machine with
     | M_oracle _ ->
         (* The oracle interprets ASTs and represents procedures as
            [Ofun]s, so it cannot consume the bytecode image. *)
         ignore
           (eval_machine t
              (if scheme_winders then Prelude.source_scheme_winders
               else Prelude.source));
         ignore (eval_machine t Parprelude.source)
     | M_stack _ | M_closure _ | M_heap _ ->
         (* Compile-once shared prelude: copy the image's global-slot
            delta instead of re-expanding/re-compiling/re-executing the
            sources — the session dispatches zero instructions before
            its first user form (pinned in test_perf_counters). *)
         Prelude_image.install
           (Prelude_image.get ~scheme_winders ~optimize ~peephole ~regalloc)
           (machine_globals machine));
  if corpus then begin
    ignore (eval_machine t Programs.all_defs);
    ignore (eval_machine t Threads.scheduler);
    ignore (eval_machine t Cml.source)
  end;
  t

let backend t = t.which

(* Worker shards rebuild the master's global environment by replaying
   its evaluation history.  Only binding forms matter for that — pure
   expressions would just redo the master's computation on every shard —
   so the log keeps a top-level form iff it (or a top-level [begin]
   wrapping it) is a definition or assignment.  Definitions produced by
   user macro calls are not recognized; DESIGN.md §15 records the
   restriction. *)
let rec par_binding_form (d : Sexp.t) =
  match d with
  | Sexp.List (Sexp.Sym (head, _) :: rest, _) -> (
      match head with
      | "define" | "define-syntax" | "set!" -> true
      | "begin" -> List.exists par_binding_form rest
      | _ -> false)
  | _ -> false

let par_log_worthy src =
  match Sexp.read_all src with
  | ds -> List.exists par_binding_form ds
  | exception _ -> true (* conservative: replay what we cannot classify *)

let eval ?fuel t src =
  let v = eval_machine ?fuel t src in
  (match t.par with
  | Some pool when par_log_worthy src ->
      Mutex.lock pool.p_lock;
      pool.p_log <- src :: pool.p_log;
      pool.p_loglen <- pool.p_loglen + 1;
      Mutex.unlock pool.p_lock
  | _ -> ());
  v

let eval_string ?fuel t src = Values.write_string (eval ?fuel t src)

(* Per-form evaluation: one already-read top-level datum, so the caller
   can attribute a failure to the datum's own source position.  The par
   replay log stores the datum re-rendered as text (positions are
   irrelevant to replay). *)
let eval_datum ?fuel t d =
  let v =
    match t.machine with
    | M_stack vm ->
        Vm.eval_datum ?fuel ~optimize:t.optimize ~peephole:t.peephole
          ~regalloc:t.regalloc ~verify:t.verify vm d
    | M_closure vm ->
        Closurevm.eval_datum ?fuel ~optimize:t.optimize ~peephole:t.peephole
          ~regalloc:t.regalloc ~verify:t.verify vm d
    | M_heap vm ->
        Heapvm.eval_datum ?fuel ~optimize:t.optimize ~peephole:t.peephole
          ~regalloc:t.regalloc ~verify:t.verify vm d
    | M_oracle o -> Oracle.eval_datum ?fuel o d
  in
  (match t.par with
  | Some pool when par_binding_form d ->
      Mutex.lock pool.p_lock;
      pool.p_log <- Sexp.to_string d :: pool.p_log;
      pool.p_loglen <- pool.p_loglen + 1;
      Mutex.unlock pool.p_lock
  | _ -> ());
  v

let load_corpus t =
  ignore (eval_machine t Programs.all_defs);
  ignore (eval_machine t Threads.scheduler);
  ignore (eval_machine t Cml.source)

let output t =
  match t.machine with
  | M_stack vm -> Vm.output vm
  | M_closure vm -> Closurevm.output vm
  | M_heap vm -> Heapvm.output vm
  | M_oracle o -> Oracle.output o

let stats t = t.stats

let control t =
  match t.machine with
  | M_stack vm -> Some (Vm.control vm)
  | M_closure vm -> Some (Closurevm.control vm)
  | _ -> None

let globals t = machine_globals t.machine

(* ------------------------------------------------------------------ *)
(* Data-parallel pool (par-map / par-reduce / par-for-each)            *)
(* ------------------------------------------------------------------ *)

(* A worker shard is a fresh, fully independent session on the pool's
   backend (the oracle master gets stack workers: task execution is an
   engine feature).  Counters reset after the prelude/corpus load, as in
   {!Pool.run_shard}, so a shard's stats describe its tasks alone. *)
let par_worker_session pool i =
  let stats = Stats.create () in
  let backend =
    match pool.p_backend with Oracle -> Stack Control.default_config | b -> b
  in
  let s =
    create ~backend ~stats ~optimize:pool.p_optimize ~peephole:pool.p_peephole
      ~regalloc:pool.p_regalloc ~verify:pool.p_verify
      ~hygiene:pool.p_hygiene ()
  in
  if pool.p_corpus then load_corpus s;
  Stats.reset stats;
  Mutex.lock pool.p_lock;
  pool.p_shard_stats.(i) <- Some stats;
  Mutex.unlock pool.p_lock;
  { w_session = s; w_replayed = 0 }

(* Bring a worker's globals up to date with the master's definition log.
   Replay is bookkeeping, not task work: its counters are cancelled with
   a snapshot/restore so per-shard stats stay comparable across
   distributions.  A replay error is swallowed — the form succeeded on
   the master, and a worker that cannot rebuild one binding should still
   run tasks that never touch it. *)
let par_replay pool w =
  Mutex.lock pool.p_lock;
  let log = pool.p_log and len = pool.p_loglen in
  Mutex.unlock pool.p_lock;
  if len > w.w_replayed then begin
    let snap = Stats.copy (stats w.w_session) in
    let fresh = List.filteri (fun i _ -> i < len - w.w_replayed) log in
    List.iter
      (fun src ->
        try ignore (eval ?fuel:pool.p_fuel w.w_session src) with _ -> ())
      (List.rev fresh);
    w.w_replayed <- len;
    Stats.blit ~src:snap ~dst:(stats w.w_session)
  end

(* Run one chunk on a worker session.  The per-chunk discipline exists
   for counter determinism: the segment cache is dropped before every
   chunk, so a chunk's deterministic counters (instrs, words-copied,
   seg-alloc-words) do not depend on which chunks happened to warm this
   worker earlier — that is what makes no-steal shard counters sum
   exactly to a 1-worker run's, the identity bench e9 asserts. *)
let par_exec_task pool w (task : partask) =
  par_replay pool w;
  let s = w.w_session in
  let st = stats s in
  if st.Stats.enabled then st.Stats.par_tasks <- st.Stats.par_tasks + 1;
  (match control s with Some c -> Control.clear_cache c | None -> ());
  Globals.define (globals s) "%par-args"
    (Rt.Vec (Array.map Flatvalue.deserialize task.pt_args));
  (match task.pt_init with
  | Some fv -> Globals.define (globals s) "%par-init" (Flatvalue.deserialize fv)
  | None -> ());
  let out_before = String.length (output s) in
  let sanitize () =
    (* After an abnormal exit the chunk's preemption timer may still be
       armed; disarm it so it cannot fire into a dead scheduler during
       the next chunk.  (The in-band error path already disarms.) *)
    try ignore (eval s "(%set-timer! 0 #f)") with _ -> ()
  in
  let result =
    match
      eval ?fuel:pool.p_fuel s
        (Printf.sprintf "(%%par-run-chunk (quote %s) %s)" task.pt_mode
           task.pt_fname)
    with
    | Rt.Vec [| Rt.Sym tag; payload |] when String.equal tag "%par-ok" -> (
        try Ok (Flatvalue.serialize payload) with
        | Flatvalue.Not_flat v ->
            Error
              ("par: non-flat value crossing shard boundary: "
              ^ Flatvalue.describe v)
        | Flatvalue.Too_large ->
            Error "par: value too large to cross shard boundary")
    | Rt.Vec [| Rt.Sym tag; msg |] when String.equal tag "%par-error" ->
        Error (Values.display_string msg)
    | v -> Error ("par: malformed chunk result: " ^ Values.write_string v)
    | exception Rt.Scheme_error (msg, _) ->
        sanitize ();
        Error msg
    | exception Rt.Shot_continuation ->
        sanitize ();
        Error "par: one-shot continuation reinvoked in worker task"
    | exception Engine.Vm_fuel_exhausted ->
        sanitize ();
        Error "par: fuel exhausted in worker task"
    | exception e ->
        sanitize ();
        Error ("par: worker failure: " ^ Printexc.to_string e)
  in
  let out_after = output s in
  {
    po_result = result;
    po_output =
      String.sub out_after out_before (String.length out_after - out_before);
  }

type par_next = P_shutdown | P_task of partask * bool | P_wait

(* Called with the pool lock held.  Own deque pops the front; stealing
   scans the other slots round-robin from the right neighbour and takes
   the *back* of the first non-empty deque (the classic work-stealing
   end split: owners and thieves contend on opposite ends). *)
let par_take pool i =
  if pool.p_shutdown then P_shutdown
  else
    let dq = pool.p_deques.(i) in
    match !dq with
    | task :: rest ->
        dq := rest;
        P_task (task, false)
    | [] ->
        if pool.p_steal && pool.p_remaining > 0 then begin
          let found = ref P_wait in
          let k = ref 0 in
          while
            (match !found with P_wait -> true | _ -> false)
            && !k < pool.p_jobs - 1
          do
            let j = (i + 1 + !k) mod pool.p_jobs in
            (match !(pool.p_deques.(j)) with
            | [] -> ()
            | l ->
                let rev = List.rev l in
                pool.p_deques.(j) := List.rev (List.tl rev);
                found := P_task (List.hd rev, true));
            incr k
          done;
          !found
        end
        else P_wait

let par_worker_loop pool i =
  let w = par_worker_session pool i in
  let rec loop () =
    Mutex.lock pool.p_lock;
    let rec get () =
      match par_take pool i with
      | P_shutdown -> None
      | P_task (t, stolen) -> Some (t, stolen)
      | P_wait ->
          Condition.wait pool.p_cond pool.p_lock;
          get ()
    in
    let next = get () in
    Mutex.unlock pool.p_lock;
    match next with
    | None -> ()
    | Some (task, stolen) ->
        let st = stats w.w_session in
        if stolen && st.Stats.enabled then
          st.Stats.par_steals <- st.Stats.par_steals + 1;
        let outcome = par_exec_task pool w task in
        Mutex.lock pool.p_lock;
        pool.p_outcomes.(task.pt_id) <- Some outcome;
        pool.p_remaining <- pool.p_remaining - 1;
        if pool.p_remaining = 0 then Condition.broadcast pool.p_cond;
        Mutex.unlock pool.p_lock;
        loop ()
  in
  loop ()

(* Master side: resolve the task procedure to a global name.  Closures
   cannot cross domains (they close over one session's heap), so tasks
   name their procedure through the global table and each shard looks
   the name up in its own replayed environment — the deliberate
   restriction DESIGN.md §15 records as the stepping stone to migratable
   continuations.  Primitives ship by their own name. *)
let par_proc_name t v =
  match v with
  | Rt.Prim p -> p.Rt.pname
  | Rt.Closure _ | Rt.Ofun _ -> (
      let found =
        Globals.fold
          (fun name (cell : Rt.global) acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if cell.Rt.gdefined && cell.Rt.gval == v then Some name
                else None)
          (globals t) None
      in
      match found with
      | Some name -> name
      | None ->
          raise
            (Rt.Scheme_error
               ( "par: task procedure must be globally named to cross shards",
                 [ v ] )))
  | v -> raise (Rt.Scheme_error ("par: not a procedure", [ v ]))

let par_serialize v =
  try Flatvalue.serialize v with
  | Flatvalue.Not_flat nf ->
      raise
        (Rt.Scheme_error
           ( "par: non-flat value crossing shard boundary: "
             ^ Flatvalue.describe nf,
             [] ))
  | Flatvalue.Too_large ->
      raise (Rt.Scheme_error ("par: value too large to cross shard boundary", []))

(* Split the serialized items into chunk tasks of [p_chunk] items.  The
   chunk size never depends on [jobs]: chunk contents (and so each
   chunk's deterministic counter footprint) are distribution-invariant,
   which is what makes shard counters sum identically at any pool
   width. *)
let par_make_tasks pool mode fname init flat_items =
  let chunk = pool.p_chunk in
  let rec go id acc cur n = function
    | [] ->
        let acc =
          if cur = [] then acc
          else
            {
              pt_id = id;
              pt_mode = mode;
              pt_fname = fname;
              pt_args = Array.of_list (List.rev cur);
              pt_init = init;
            }
            :: acc
        in
        List.rev acc
    | x :: rest ->
        if n = chunk then
          go (id + 1)
            ({
               pt_id = id;
               pt_mode = mode;
               pt_fname = fname;
               pt_args = Array.of_list (List.rev cur);
               pt_init = init;
             }
            :: acc)
            [ x ] 1 rest
        else go id acc (x :: cur) (n + 1) rest
  in
  go 0 [] [] 0 flat_items

(* The master's dispatch: a *pure* primitive, so it runs inline in the
   dispatch loop with no frame and may block — the master VM is never
   re-entered while it waits.  Tasks are dealt round-robin (task i to
   slot i mod jobs); with stealing off that assignment is final, which
   is the deterministic mode counter pinning relies on. *)
let par_dispatch t pool emit args =
  let mode =
    match args.(0) with
    | Rt.Sym m -> m
    | v -> raise (Rt.Scheme_error ("par: mode must be a symbol", [ v ]))
  in
  let f, init, xs =
    match (mode, args) with
    | ("map" | "for-each"), [| _; f; xs |] -> (f, None, xs)
    | "reduce", [| _; op; init; xs |] -> (op, Some init, xs)
    | ("map" | "for-each" | "reduce"), _ ->
        raise
          (Rt.Scheme_error ("par: wrong number of arguments for " ^ mode, []))
    | _ -> raise (Rt.Scheme_error ("par: unknown mode " ^ mode, []))
  in
  let fname = par_proc_name t f in
  let items =
    match Values.list_of_value_opt xs with
    | Some l -> l
    | None -> raise (Rt.Scheme_error ("par: expected a proper list", [ xs ]))
  in
  if items = [] then Rt.Nil
  else begin
    let init_flat = Option.map par_serialize init in
    let flat = List.map par_serialize items in
    let tasks = par_make_tasks pool mode fname init_flat flat in
    let ntasks = List.length tasks in
    let outcomes = Array.make ntasks None in
    let per_slot = Array.make pool.p_jobs [] in
    List.iter
      (fun task ->
        let slot = task.pt_id mod pool.p_jobs in
        per_slot.(slot) <- task :: per_slot.(slot))
      (List.rev tasks);
    if pool.p_domains then begin
      Mutex.lock pool.p_lock;
      Array.iteri (fun i dq -> dq := per_slot.(i)) pool.p_deques;
      pool.p_outcomes <- outcomes;
      pool.p_remaining <- ntasks;
      Condition.broadcast pool.p_cond;
      while pool.p_remaining > 0 do
        Condition.wait pool.p_cond pool.p_lock
      done;
      Mutex.unlock pool.p_lock
    end
    else
      (* Sequential mode: the same slots, sessions and per-slot task
         order, executed inline on the calling domain — the reference
         the e9/CI zero-tolerance counter identity compares against. *)
      for i = 0 to pool.p_jobs - 1 do
        let w =
          match pool.p_seq_workers.(i) with
          | Some w -> w
          | None ->
              let w = par_worker_session pool i in
              pool.p_seq_workers.(i) <- Some w;
              w
        in
        List.iter
          (fun task -> outcomes.(task.pt_id) <- Some (par_exec_task pool w task))
          per_slot.(i)
      done;
    (* Reassemble in chunk order: outputs append in order; the first
       failed chunk (lowest id) raises; map concatenates the chunk
       result vectors; reduce returns the list of partials for the
       Scheme-side fold. *)
    let payloads =
      Array.map
        (function
          | Some o -> o
          | None -> { po_result = Error "par: lost chunk"; po_output = "" })
        outcomes
    in
    let collected =
      Array.to_list payloads
      |> List.map (fun o ->
             match o.po_result with
             | Ok flat ->
                 emit o.po_output;
                 Flatvalue.deserialize flat
             | Error msg -> raise (Rt.Scheme_error (msg, [])))
    in
    match mode with
    | "map" ->
        Values.list_to_value
          (List.concat_map
             (fun payload ->
               match payload with
               | Rt.Vec a -> Array.to_list a
               | v -> [ v ])
             collected)
    | "reduce" -> Values.list_to_value collected
    | _ -> Rt.Void
  end

let par_define_pure t name parity fn =
  Globals.define (globals t) name
    (Rt.Prim { Rt.pname = name; parity; pfn = Pure fn })

let par_attach ?(chunk = 2) ?(steal = true) ?(domains = true) ?fuel
    ?(corpus = false) ~jobs t =
  if t.par <> None then invalid_arg "Scheme.par_attach: pool already attached";
  let jobs = max 1 jobs in
  let chunk = max 1 chunk in
  let pool =
    {
      p_jobs = jobs;
      p_chunk = chunk;
      p_steal = steal;
      p_domains = domains;
      p_fuel = fuel;
      p_corpus = corpus;
      p_backend = t.which;
      p_hygiene = t.hygiene;
      p_optimize = t.optimize;
      p_peephole = t.peephole;
      p_regalloc = t.regalloc;
      p_verify = t.verify;
      p_lock = Mutex.create ();
      p_cond = Condition.create ();
      p_log = [];
      p_loglen = 0;
      p_deques = Array.init jobs (fun _ -> ref []);
      p_outcomes = Array.make 0 None;
      p_remaining = 0;
      p_shutdown = false;
      p_handles = [];
      p_seq_workers = Array.make jobs None;
      p_shard_stats = Array.make jobs None;
    }
  in
  t.par <- Some pool;
  if domains then
    pool.p_handles <-
      List.init jobs (fun i -> Domain.spawn (fun () -> par_worker_loop pool i));
  (* Rebind the session's par primitives over the pool — the same
     overwrite mechanism Engine.create uses for the timer accessors.
     [emit] is the master's own raw-output primitive, captured once so
     worker output can be appended to the master buffer without
     re-entering the VM. *)
  let emit =
    match Globals.lookup_opt (globals t) "%par-emit" with
    | Some (Rt.Prim { Rt.pfn = Pure f; _ }) ->
        fun s -> if s <> "" then ignore (f [| Rt.Str (Bytes.of_string s) |])
    | _ -> fun _ -> ()
  in
  par_define_pure t "%par-jobs" (Exactly 0) (fun _ -> Rt.Int jobs);
  par_define_pure t "%par-chunk" (Exactly 0) (fun _ -> Rt.Int chunk);
  par_define_pure t "%par-dispatch" (At_least 3) (fun args ->
      par_dispatch t pool emit args)

let par_shutdown t =
  match t.par with
  | None -> ()
  | Some pool ->
      t.par <- None;
      (* Restore the inert defaults so later evals take the serial
         fallback instead of dispatching into a dead pool. *)
      par_define_pure t "%par-jobs" (Exactly 0) (fun _ -> Rt.Int 0);
      par_define_pure t "%par-chunk" (Exactly 0) (fun _ -> Rt.Int 1);
      par_define_pure t "%par-dispatch" (At_least 3) (fun _ ->
          Values.err "par: no pool attached to this session" []);
      Mutex.lock pool.p_lock;
      pool.p_shutdown <- true;
      Condition.broadcast pool.p_cond;
      Mutex.unlock pool.p_lock;
      List.iter Domain.join pool.p_handles

(* Per-shard counter blocks in slot order: the bench (e9) and tests read
   these for the no-steal identity checks.  Only meaningful while the
   pool is idle — the dispatch handshake under [p_lock] orders every
   worker counter write before the master's return from dispatch.  A
   slot that has not executed yet (domain worker still starting up, or
   lazy sequential worker) reads as [None]. *)
let par_shard_stats t =
  match t.par with
  | None -> [||]
  | Some pool ->
      Mutex.lock pool.p_lock;
      let a = Array.copy pool.p_shard_stats in
      Mutex.unlock pool.p_lock;
      a

(* ------------------------------------------------------------------ *)
(* Session pools                                                       *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type shard = {
    shard : int;
    value : Rt.value;
    output : string;
    stats : Stats.t;
  }

  (* One shard = one fully independent session: its own Stats.t, global
     table, macro environment, output buffer and (for the stack backend)
     segmented-stack machine with its own segment cache.  Nothing is
     shared between shards except the interned symbol table, which
     {!Rt.intern} guards with a mutex — that independence is what makes
     the domain spawn below safe, and what the engine test-suite's
     interleaving tests pin down.  Counters are reset after the
     prelude/corpus load so each shard reports the measured program
     alone, making per-shard counters comparable with a single
     sequential session running the same source. *)
  let run_shard ~backend ~fuel ~corpus ~optimize ~peephole ~regalloc ~verify
      ~hygiene i src =
    let stats = Stats.create () in
    let t =
      create ~backend ~stats ~optimize ~peephole ~regalloc ~verify ~hygiene ()
    in
    if corpus then load_corpus t;
    Stats.reset stats;
    let value = eval ?fuel t src in
    { shard = i; value; output = output t; stats }

  let run ?(backend = Stack Control.default_config) ?fuel ?(corpus = false)
      ?(optimize = false) ?(peephole = true) ?(regalloc = true)
      ?(verify = false) ?(hygiene = true) ?domains ~jobs
      src =
    let jobs = max 1 jobs in
    let parallel = match domains with Some b -> b | None -> jobs > 1 in
    let go i =
      run_shard ~backend ~fuel ~corpus ~optimize ~peephole ~regalloc ~verify
        ~hygiene i src
    in
    let idx = List.init jobs Fun.id in
    if parallel then
      (* Spawn all shards, then join in order: aggregate throughput
         scales with the machine's cores while the result list stays
         deterministic. *)
      List.map Domain.join (List.map (fun i -> Domain.spawn (fun () -> go i)) idx)
    else List.map go idx
end
