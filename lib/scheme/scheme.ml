type backend =
  | Stack of Control.config
  | Closure of Control.config
  | Heap
  | Oracle

type machine =
  | M_stack of Vm.t
  | M_closure of Closurevm.t
  | M_heap of Heapvm.t
  | M_oracle of Oracle.t

type t = {
  which : backend;
  machine : machine;
  stats : Stats.t;
  optimize : bool;
  peephole : bool;
  regalloc : bool;
}

let eval_machine ?fuel t src =
  match t.machine with
  | M_stack vm ->
      Vm.eval ?fuel ~optimize:t.optimize ~peephole:t.peephole
        ~regalloc:t.regalloc vm src
  | M_closure vm ->
      Closurevm.eval ?fuel ~optimize:t.optimize ~peephole:t.peephole
        ~regalloc:t.regalloc vm src
  | M_heap vm ->
      Heapvm.eval ?fuel ~optimize:t.optimize ~peephole:t.peephole
        ~regalloc:t.regalloc vm src
  | M_oracle o -> Oracle.eval ?fuel o src

let create ?(backend = Stack Control.default_config) ?stats ?(prelude = true)
    ?(scheme_winders = false) ?(corpus = false) ?(optimize = false)
    ?(peephole = true) ?(regalloc = true) () =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let machine =
    match backend with
    | Stack config -> M_stack (Vm.create ~config ~stats ())
    | Closure config -> M_closure (Closurevm.create ~config ~stats ())
    | Heap -> M_heap (Heapvm.create ~stats ())
    | Oracle -> M_oracle (Oracle.create ~stats ())
  in
  let t = { which = backend; machine; stats; optimize; peephole; regalloc } in
  if prelude then
    ignore
      (eval_machine t
         (if scheme_winders then Prelude.source_scheme_winders
          else Prelude.source));
  if corpus then begin
    ignore (eval_machine t Programs.all_defs);
    ignore (eval_machine t Threads.scheduler);
    ignore (eval_machine t Cml.source)
  end;
  t

let backend t = t.which
let eval ?fuel t src = eval_machine ?fuel t src
let eval_string ?fuel t src = Values.write_string (eval ?fuel t src)

let load_corpus t =
  ignore (eval_machine t Programs.all_defs);
  ignore (eval_machine t Threads.scheduler);
  ignore (eval_machine t Cml.source)

let output t =
  match t.machine with
  | M_stack vm -> Vm.output vm
  | M_closure vm -> Closurevm.output vm
  | M_heap vm -> Heapvm.output vm
  | M_oracle o -> Oracle.output o

let stats t = t.stats

let control t =
  match t.machine with
  | M_stack vm -> Some (Vm.control vm)
  | M_closure vm -> Some (Closurevm.control vm)
  | _ -> None

let globals t =
  match t.machine with
  | M_stack vm -> Vm.globals vm
  | M_closure vm -> Closurevm.globals vm
  | M_heap vm -> Heapvm.globals vm
  | M_oracle o -> Oracle.globals o

(* ------------------------------------------------------------------ *)
(* Session pools                                                       *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type shard = {
    shard : int;
    value : Rt.value;
    output : string;
    stats : Stats.t;
  }

  (* One shard = one fully independent session: its own Stats.t, global
     table, macro environment, output buffer and (for the stack backend)
     segmented-stack machine with its own segment cache.  Nothing is
     shared between shards except the interned symbol table, which
     {!Rt.intern} guards with a mutex — that independence is what makes
     the domain spawn below safe, and what the engine test-suite's
     interleaving tests pin down.  Counters are reset after the
     prelude/corpus load so each shard reports the measured program
     alone, making per-shard counters comparable with a single
     sequential session running the same source. *)
  let run_shard ~backend ~fuel ~corpus ~optimize ~peephole ~regalloc i src =
    let stats = Stats.create () in
    let t = create ~backend ~stats ~optimize ~peephole ~regalloc () in
    if corpus then load_corpus t;
    Stats.reset stats;
    let value = eval ?fuel t src in
    { shard = i; value; output = output t; stats }

  let run ?(backend = Stack Control.default_config) ?fuel ?(corpus = false)
      ?(optimize = false) ?(peephole = true) ?(regalloc = true) ?domains ~jobs
      src =
    let jobs = max 1 jobs in
    let parallel = match domains with Some b -> b | None -> jobs > 1 in
    let go i =
      run_shard ~backend ~fuel ~corpus ~optimize ~peephole ~regalloc i src
    in
    let idx = List.init jobs Fun.id in
    if parallel then
      (* Spawn all shards, then join in order: aggregate throughput
         scales with the machine's cores while the result list stays
         deterministic. *)
      List.map Domain.join (List.map (fun i -> Domain.spawn (fun () -> go i)) idx)
    else List.map go idx
end
