(** One-call front end: a Scheme session over a chosen execution backend,
    with the standard prelude (dynamic-wind, call/cc wrappers, list
    library, engines) preloaded.

    {[
      let s = Scheme.create () in
      let v = Scheme.eval s "(call/1cc (lambda (k) (k 42)))" in
      assert (Values.write_string v = "42")
    ]} *)

type backend =
  | Stack of Control.config  (** the paper's segmented-stack VM *)
  | Closure of Control.config
      (** the same segmented-stack machine driven by template-compiled
          threaded code ({!Closurevm}): identical control semantics and
          semantic counters, faster straight-line dispatch *)
  | Heap  (** heap-frame baseline VM *)
  | Oracle  (** CPS reference interpreter *)

type t

val create :
  ?backend:backend -> ?stats:Stats.t -> ?prelude:bool ->
  ?scheme_winders:bool -> ?corpus:bool -> ?optimize:bool ->
  ?peephole:bool -> ?regalloc:bool -> ?verify:bool -> ?hygiene:bool ->
  unit -> t
(** Defaults: [Stack Control.default_config], prelude loaded with the
    native winder protocol ([?scheme_winders:true] loads the historical
    Scheme-level [%winders] implementation instead, for differential
    testing), benchmark corpus definitions not loaded, AST optimizer off
    (see {!Optimize}), bytecode peephole fusion on ([?peephole:false]
    executes the unfused bytecode, e.g. for differential testing), and
    its register-lowering stage on ([?regalloc:false] keeps the
    push-based encoding while retaining the other fusions).
    [?verify:true] runs the {!Verify} static bytecode verifier over
    every code object the session compiles — prelude and corpus
    included — raising [Verify.Error] on any violated invariant.
    [?hygiene:false] turns off the expander's hygienic [syntax-rules]
    renaming (see {!Expander}), reproducing the historical textual
    expansion; worker shards of an attached par pool inherit the
    switch. *)

val backend : t -> backend
val eval : ?fuel:int -> t -> string -> Rt.value
(** Evaluate a program; the last form's value.  Exceptions as in {!Vm}. *)

val eval_string : ?fuel:int -> t -> string -> string
(** Like {!eval} but renders the result with [write]. *)

val eval_datum : ?fuel:int -> t -> Sexp.t -> Rt.value
(** Evaluate one already-read top-level datum.  Drivers that read a
    program themselves and feed it form by form can attribute any
    failure — including runtime errors — to the failing datum's source
    position (see {!Diag}). *)

val load_corpus : t -> unit
(** Load the benchmark program definitions (tak, ctak, fib, ack, deep,
    queens, boyer, generators) and the thread systems. *)

val output : t -> string
(** Accumulated [display]/[write] output. *)

val stats : t -> Stats.t
(** Live counters of the underlying machine.  Every backend — including
    the oracle — shares this object with its machine, so reading it here
    and reading it through the machine give the same counters.  Note the
    footgun avoided: a {!Stats.t} passed to {!create} is adopted, not
    copied, so passing one object to two sessions makes their counters
    indistinguishable — give each session its own (as {!Pool} does). *)

val globals : t -> Globals.t

val control : t -> Control.t option
(** The segmented-stack machine underneath, when the backend is [Stack]
    or [Closure] (both frame policies run on the same control
    substrate). *)

val par_attach :
  ?chunk:int -> ?steal:bool -> ?domains:bool -> ?fuel:int -> ?corpus:bool ->
  jobs:int -> t -> unit
(** Attach a data-parallel worker pool to this session: afterwards the
    prelude's [par-map] / [par-reduce] / [par-for-each] dispatch chunked
    tasks of [chunk] items (default 2, clamped to >= 1) to [jobs] worker
    shards — fresh sessions on the session's backend (an [Oracle] master
    gets [Stack] workers), one OCaml domain each by default.  Each shard
    runs a work-stealing deque (its own tasks popped from the front,
    steals taken from the back of a neighbour); [~steal:false] pins the
    deterministic round-robin assignment (task [i] to shard [i mod
    jobs]) that the counter-identity checks rely on.  [~domains:false]
    runs the same shards inline on the calling domain — the sequential
    reference for those checks.  [chunk] never depends on [jobs], so a
    chunk's deterministic counters are distribution-invariant and
    no-steal shard counters sum exactly to a 1-shard run's.

    Task procedures must be globally named (closures cannot cross
    domains); task arguments and results must be flat values
    ({!Flatvalue}); worker shards see global definitions made by earlier
    top-level [define]/[set!] forms evaluated through {!eval} on this
    session.  [corpus] preloads the benchmark corpus on each shard.
    Raises [Invalid_argument] if a pool is already attached. *)

val par_shutdown : t -> unit
(** Stop and join the pool's worker domains and restore the serial
    fallback ([(%par-jobs)] reads 0 again).  No-op without a pool. *)

val par_shard_stats : t -> Stats.t option array
(** The pool workers' per-shard counter blocks in slot order ([None]
    for a shard that has not started yet); meaningful only while no
    dispatch is in flight.  Empty when no pool is attached. *)

(** Run [N] fully independent sessions over the same program, optionally
    one per OCaml domain.  Shards share no mutable state (each has its
    own machine, stats, globals, macros and output; the interned symbol
    table is the one deliberate process-global, mutex-guarded in
    {!Rt}), so per-shard results and counters are deterministic and
    identical to a single sequential session running the same source —
    the property benchmark e6.parallel and the CI smoke test assert. *)
module Pool : sig
  type shard = {
    shard : int;  (** shard index, [0 .. jobs-1] *)
    value : Rt.value;  (** the program's value on this shard *)
    output : string;  (** its [display]/[write] output *)
    stats : Stats.t;  (** its counters, reset after prelude/corpus load *)
  }

  val run :
    ?backend:backend -> ?fuel:int -> ?corpus:bool -> ?optimize:bool ->
    ?peephole:bool -> ?regalloc:bool -> ?verify:bool -> ?hygiene:bool ->
    ?domains:bool -> jobs:int -> string -> shard list
  (** Evaluate [src] on [jobs] fresh sessions and return the shards in
      index order.  [domains] forces the execution mode: [true] spawns
      one domain per shard, [false] runs them sequentially on the
      calling domain; the default parallelizes iff [jobs > 1].
      [corpus] preloads the benchmark definitions on each shard before
      the counters are reset. *)
end
