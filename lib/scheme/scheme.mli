(** One-call front end: a Scheme session over a chosen execution backend,
    with the standard prelude (dynamic-wind, call/cc wrappers, list
    library, engines) preloaded.

    {[
      let s = Scheme.create () in
      let v = Scheme.eval s "(call/1cc (lambda (k) (k 42)))" in
      assert (Values.write_string v = "42")
    ]} *)

type backend =
  | Stack of Control.config  (** the paper's segmented-stack VM *)
  | Heap  (** heap-frame baseline VM *)
  | Oracle  (** CPS reference interpreter *)

type t

val create :
  ?backend:backend -> ?stats:Stats.t -> ?prelude:bool ->
  ?scheme_winders:bool -> ?corpus:bool -> ?optimize:bool ->
  ?peephole:bool -> unit -> t
(** Defaults: [Stack Control.default_config], prelude loaded with the
    native winder protocol ([?scheme_winders:true] loads the historical
    Scheme-level [%winders] implementation instead, for differential
    testing), benchmark corpus definitions not loaded, AST optimizer off
    (see {!Optimize}), bytecode peephole fusion on ([?peephole:false]
    executes the unfused bytecode, e.g. for differential testing). *)

val backend : t -> backend
val eval : ?fuel:int -> t -> string -> Rt.value
(** Evaluate a program; the last form's value.  Exceptions as in {!Vm}. *)

val eval_string : ?fuel:int -> t -> string -> string
(** Like {!eval} but renders the result with [write]. *)

val load_corpus : t -> unit
(** Load the benchmark program definitions (tak, ctak, fib, ack, deep,
    queens, boyer, generators) and the thread systems. *)

val output : t -> string
(** Accumulated [display]/[write] output. *)

val stats : t -> Stats.t
(** Live counters of the underlying machine (all-zero for the oracle
    unless one was passed at creation). *)

val globals : t -> Globals.t

val control : t -> Control.t option
(** The segmented-stack machine underneath, when the backend is [Stack]. *)
