(** The primitive procedure library shared by both virtual machines and the
    oracle interpreter.

    [install] populates a global table with every primitive.  Every
    primitive value is a process-shared module-level constant (so the
    inline-cache guards of shared compiled code hold across sessions);
    the ones that need the running machine — output, the preemption
    timer — reach it through {!Machine_hooks}.  Control primitives
    ([%call/cc], [%call/1cc], [apply], [values], [%stat]) are
    [Rt.Special] markers handled by each machine's dispatch loop. *)

val install : Globals.t -> unit

val the_prims : (string * Rt.prim) list
(** All primitives, for machines that want their own table. *)

val check_int : string -> Rt.value -> int
val check_pair : string -> Rt.value -> Rt.pair
val check_procedure : string -> Rt.value -> Rt.value

(** {1 Native dynamic-wind machinery}

    Hidden code objects and interned return addresses shared by the two
    VM dispatch loops.  See the comments in the implementation for the
    frame layouts and the state machine. *)

val dw_prim : Rt.prim
(** The [%dynamic-wind] special, also registered in the global table. *)

val dw_resume_code : Rt.code
val wind_resume_code : Rt.code
(** The hidden code objects the interned return addresses below point
    into.  The VMs also preset [code]/[pc] to the resumption point
    before calling a guard thunk, so a guard that is a pure primitive
    (which pushes no frame and returns by falling through) continues
    the protocol exactly as a closure returning normally would. *)

val dw_ret_before : Rt.value
val dw_ret_thunk : Rt.value
val dw_ret_after : Rt.value
(** Interned return addresses pushed when [%dynamic-wind] calls its
    before / thunk / after procedures; each resumes [dw_resume_code]. *)

val wind_prim : Rt.prim
(** The internal wind-trampoline special; never bound to a global. *)

val wind_ret : Rt.value
(** Interned return address for guard thunks run by the trampoline. *)
