open Rt

let check_int who v =
  match v with Int n -> n | _ -> Values.type_error who "fixnum" v

(* Generic numbers: fixnums promote to flonums on contact. *)
type num = I of int | F of float

let to_num who v =
  match v with
  | Int n -> I n
  | Flo f -> F f
  | _ -> Values.type_error who "number" v

let num_value = function I n -> Int n | F f -> Flo f
let num_float = function I n -> float_of_int n | F f -> f

let num_binop fi ff a b =
  match (a, b) with
  | I x, I y -> I (fi x y)
  | a, b -> F (ff (num_float a) (num_float b))

let num_cmp a b =
  match (a, b) with
  | I x, I y -> compare x y
  | a, b -> compare (num_float a) (num_float b)

let check_pair who v =
  match v with Pair p -> p | _ -> Values.type_error who "pair" v

let check_str who v =
  match v with Str s -> s | _ -> Values.type_error who "string" v

let check_sym who v =
  match v with Sym s -> s | _ -> Values.type_error who "symbol" v

let check_char who v =
  match v with Char c -> c | _ -> Values.type_error who "character" v

let check_vec who v =
  match v with Vec a -> a | _ -> Values.type_error who "vector" v

let check_tbl who v =
  match v with Tbl t -> t | _ -> Values.type_error who "hashtable" v

(* Hashtable keys must hash and compare consistently with eqv?: restrict
   them to immediates (structural = physical for interned symbols). *)
let check_hkey who v =
  match v with
  | Int _ | Sym _ | Char _ | Bool _ | Nil | Flo _ -> v
  | _ ->
      Values.err
        (who ^ ": hashtable keys must be eqv-comparable immediates")
        [ v ]

let check_procedure who v =
  match v with
  | Closure _ | Prim _ | Cont _ | Hcont _ | Ofun _ -> v
  | _ -> Values.type_error who "procedure" v

let arity_error who = Values.err (who ^ ": wrong number of arguments") []

(* Argument-count helpers ------------------------------------------------ *)

let a1 who f args =
  match args with [| x |] -> f x | _ -> arity_error who
  [@@inline]

let a2 who f args =
  match args with [| x; y |] -> f x y | _ -> arity_error who
  [@@inline]

let a3 who f args =
  match args with [| x; y; z |] -> f x y z | _ -> arity_error who
  [@@inline]

(* Numeric fold over the arguments, promoting to flonum on contact. *)
let num_fold who init fi ff args =
  match Array.length args with
  | 0 -> Int init
  | _ ->
      let acc = ref (to_num who args.(0)) in
      for i = 1 to Array.length args - 1 do
        acc := num_binop fi ff !acc (to_num who args.(i))
      done;
      num_value !acc

let num_compare who op args =
  if Array.length args < 2 then arity_error who;
  let ok = ref true in
  for i = 0 to Array.length args - 2 do
    if
      not
        (op (num_cmp (to_num who args.(i)) (to_num who args.(i + 1))) 0)
    then ok := false
  done;
  Bool !ok

let bool_of b = Bool b

(* List helpers ----------------------------------------------------------- *)

let rec list_length who n v =
  match v with
  | Nil -> n
  | Pair p -> list_length who (n + 1) p.cdr
  | _ -> Values.type_error who "proper list" v

let rec list_tail who v n =
  if n = 0 then v
  else
    match v with
    | Pair p -> list_tail who p.cdr (n - 1)
    | _ -> Values.err (who ^ ": index out of range") [ v ]

let append2 who a b =
  match Values.list_of_value_opt a with
  | Some items -> List.fold_right Values.cons items b
  | None -> Values.type_error who "proper list" a

let rec assoc_gen eqf key v =
  match v with
  | Nil -> Bool false
  | Pair { car = Pair entry as hit; cdr } ->
      if eqf key entry.car then hit else assoc_gen eqf key cdr
  | Pair { cdr; _ } -> assoc_gen eqf key cdr
  | _ -> Bool false

let rec member_gen eqf key v =
  match v with
  | Nil -> Bool false
  | Pair p -> if eqf key p.car then Pair p else member_gen eqf key p.cdr
  | _ -> Bool false

(* ------------------------------------------------------------------ *)
(* The table                                                           *)
(* ------------------------------------------------------------------ *)

let pure name arity f = (name, { pname = name; parity = arity; pfn = Pure f })

let special name arity s =
  (name, { pname = name; parity = arity; pfn = Special s })

(* ------------------------------------------------------------------ *)
(* Native dynamic-wind machinery                                       *)
(* ------------------------------------------------------------------ *)

(* Hidden code objects driving the native winder protocol.  Neither is
   ever produced by the compiler: their interned return addresses are
   pushed by the VM dispatch loops when a [%dynamic-wind] extent or a
   wind trampoline calls one of the guard thunks, so that "the thunk
   returned" resumes these few instructions, which immediately tail-call
   back into the special with a state argument.  This keeps the whole
   protocol re-entrant through capture: a continuation captured inside
   a [before]/[after] thunk snapshots ordinary frames whose return
   addresses point here, and reinstating it re-runs the tail-call with
   the state slots it finds in the restored frame.

   [%dynamic-wind] frame layout (fp-relative):
     0 ret | 1 prim | 2 before | 3 thunk | 4 after | 5 state | 6 saved
   with the guard/thunk call area at 7 ([ret][callee]).  The entry call
   carries 3 arguments; resumptions tail-call with 5, which is how the
   special's handler distinguishes the states.  States: 1 = before
   returned, 2 = thunk returned ([saved] holds its value), 3 = after
   returned. *)
let dw_resume_code =
  {
    instrs =
      [|
        (* pc 0: before returned *)
        Const_push (Int 1, 5);
        Tail_call { disp = 0; nargs = 5 };
        (* pc 2: thunk returned; stash its value *)
        Local_set 6;
        Const_push (Int 2, 5);
        Tail_call { disp = 0; nargs = 5 };
        (* pc 5: after returned *)
        Const_push (Int 3, 5);
        Tail_call { disp = 0; nargs = 5 };
      |];
    cname = "%dynamic-wind";
    arity = At_least 0;
    frame_words = 11;
    timer_ret = Void;
    templ = No_template;
    cline = 0;
    ccol = 0;
  }

let dw_ret_before = Retaddr { rcode = dw_resume_code; rpc = 0; rdisp = 7 }
let dw_ret_thunk = Retaddr { rcode = dw_resume_code; rpc = 2; rdisp = 7 }
let dw_ret_after = Retaddr { rcode = dw_resume_code; rpc = 5; rdisp = 7 }

(* Wind-trampoline frame layout (fp-relative):
     0 ret | 1 %wind | 2 k | 3 payload | 4 target winders | 5 pending
   with the guard call area at 6.  [pending] is [Bool false] or
   [WindersV w]: a rewind stores the chain to commit *after* the before
   thunk returns (the prelude's ordering), an unwind commits eagerly
   before running the after thunk.  Every guard return tail-calls back
   into [Sp_wind] for the next step; when the machine's chain reaches
   the target the trampoline finally reinstates [k] with [payload]. *)
let wind_resume_code =
  {
    instrs = [| Tail_call { disp = 0; nargs = 4 } |];
    cname = "%wind";
    arity = At_least 0;
    frame_words = 10;
    timer_ret = Void;
    templ = No_template;
    cline = 0;
    ccol = 0;
  }

let wind_ret = Retaddr { rcode = wind_resume_code; rpc = 0; rdisp = 6 }

(* [%wind] is deliberately absent from the global table: it is reachable
   only through frames the machines build themselves. *)
let wind_prim = { pname = "%wind"; parity = At_least 4; pfn = Special Sp_wind }

let dw_prim =
  { pname = "%dynamic-wind"; parity = At_least 3; pfn = Special Sp_dynamic_wind }

(* Every prim below is a module-level, process-shared value: the
   inline-cache guards compiled into shared code (the prelude image)
   compare [ps_guard == gval] with physical equality, so the value bound
   to [+] must be the same record in every session.  The few prims that
   touch per-machine state — the output buffer and the preemption
   timer — reach the *running* machine through {!Machine_hooks}, the
   per-domain hook record each backend's [run] installs. *)
let hooks_out () = (Machine_hooks.current ()).Machine_hooks.out ()

let the_prims : (string * prim) list =
  let display_v v =
    Buffer.add_string (hooks_out ()) (Values.display_string v);
    Void
  in
  let write_v v =
    Buffer.add_string (hooks_out ()) (Values.write_string v);
    Void
  in
  [
    (* -- arithmetic ------------------------------------------------- *)
    pure "+" (At_least 0) (fun args -> num_fold "+" 0 ( + ) ( +. ) args);
    pure "*" (At_least 0) (fun args -> num_fold "*" 1 ( * ) ( *. ) args);
    pure "-" (At_least 1) (fun args ->
        match Array.length args with
        | 1 -> (
            match to_num "-" args.(0) with
            | I n -> Int (-n)
            | F f -> Flo (-.f))
        | _ -> num_fold "-" 0 ( - ) ( -. ) args);
    pure "/" (At_least 1) (fun args ->
        (* exact when it divides evenly, inexact otherwise (no rationals) *)
        let div a b =
          match (a, b) with
          | I x, I y when y <> 0 && x mod y = 0 -> I (x / y)
          | _, b when num_float b = 0. && (match b with I _ -> true | _ -> false)
            ->
              Values.err "/: division by zero" []
          | a, b -> F (num_float a /. num_float b)
        in
        match Array.length args with
        | 1 -> num_value (div (I 1) (to_num "/" args.(0)))
        | _ ->
            let acc = ref (to_num "/" args.(0)) in
            for i = 1 to Array.length args - 1 do
              acc := div !acc (to_num "/" args.(i))
            done;
            num_value !acc);
    pure "quotient" (Exactly 2)
      (a2 "quotient" (fun a b ->
           let b = check_int "quotient" b in
           if b = 0 then Values.err "quotient: division by zero" [];
           Int (check_int "quotient" a / b)));
    pure "remainder" (Exactly 2)
      (a2 "remainder" (fun a b ->
           let b = check_int "remainder" b in
           if b = 0 then Values.err "remainder: division by zero" [];
           Int (Int.rem (check_int "remainder" a) b)));
    pure "modulo" (Exactly 2)
      (a2 "modulo" (fun a b ->
           let b = check_int "modulo" b in
           if b = 0 then Values.err "modulo: division by zero" [];
           let r = Int.rem (check_int "modulo" a) b in
           Int (if (r < 0) <> (b < 0) && r <> 0 then r + b else r)));
    pure "abs" (Exactly 1)
      (a1 "abs" (fun a ->
           match to_num "abs" a with
           | I n -> Int (abs n)
           | F f -> Flo (Float.abs f)));
    pure "min" (At_least 1) (fun args -> num_fold "min" 0 min Float.min args);
    pure "max" (At_least 1) (fun args -> num_fold "max" 0 max Float.max args);
    pure "=" (At_least 2) (num_compare "=" ( = ));
    pure "<" (At_least 2) (num_compare "<" ( < ));
    pure ">" (At_least 2) (num_compare ">" ( > ));
    pure "<=" (At_least 2) (num_compare "<=" ( <= ));
    pure ">=" (At_least 2) (num_compare ">=" ( >= ));
    (* -- flonum-specific ---------------------------------------------- *)
    pure "exact->inexact" (Exactly 1)
      (a1 "exact->inexact" (fun a -> Flo (num_float (to_num "exact->inexact" a))));
    pure "inexact->exact" (Exactly 1)
      (a1 "inexact->exact" (fun a ->
           match to_num "inexact->exact" a with
           | I n -> Int n
           | F f ->
               if Float.is_integer f then Int (int_of_float f)
               else Values.err "inexact->exact: not an integer" [ a ]));
    pure "exact?" (Exactly 1)
      (a1 "exact?" (fun a ->
           match a with
           | Int _ -> Bool true
           | Flo _ -> Bool false
           | v -> Values.type_error "exact?" "number" v));
    pure "inexact?" (Exactly 1)
      (a1 "inexact?" (fun a ->
           match a with
           | Flo _ -> Bool true
           | Int _ -> Bool false
           | v -> Values.type_error "inexact?" "number" v));
    pure "real?" (Exactly 1)
      (a1 "real?" (fun a ->
           bool_of (match a with Int _ | Flo _ -> true | _ -> false)));
    pure "floor" (Exactly 1)
      (a1 "floor" (fun a ->
           match to_num "floor" a with
           | I n -> Int n
           | F f -> Flo (Float.floor f)));
    pure "ceiling" (Exactly 1)
      (a1 "ceiling" (fun a ->
           match to_num "ceiling" a with
           | I n -> Int n
           | F f -> Flo (Float.ceil f)));
    pure "truncate" (Exactly 1)
      (a1 "truncate" (fun a ->
           match to_num "truncate" a with
           | I n -> Int n
           | F f -> Flo (Float.trunc f)));
    pure "round" (Exactly 1)
      (a1 "round" (fun a ->
           match to_num "round" a with
           | I n -> Int n
           | F f ->
               (* round-to-even *)
               let r = Float.round f in
               Flo
                 (if Float.abs (f -. Float.trunc f) = 0.5 then
                    if Float.rem r 2. = 0. then r
                    else r -. Float.copy_sign 1. f
                  else r)));
    pure "sqrt" (Exactly 1)
      (a1 "sqrt" (fun a ->
           match to_num "sqrt" a with
           | I n when n >= 0 ->
               let r = int_of_float (Float.sqrt (float_of_int n)) in
               if r * r = n then Int r
               else Flo (Float.sqrt (float_of_int n))
           | n -> Flo (Float.sqrt (num_float n))));
    pure "expt" (Exactly 2)
      (a2 "expt" (fun a b ->
           match (to_num "expt" a, to_num "expt" b) with
           | I x, I y when y >= 0 ->
               let rec go acc b e =
                 if e = 0 then acc
                 else go (if e land 1 = 1 then acc * b else acc) (b * b)
                   (e lsr 1)
               in
               Int (go 1 x y)
           | a, b -> Flo (Float.pow (num_float a) (num_float b))));
    pure "exp" (Exactly 1)
      (a1 "exp" (fun a -> Flo (Float.exp (num_float (to_num "exp" a)))));
    pure "log" (Exactly 1)
      (a1 "log" (fun a -> Flo (Float.log (num_float (to_num "log" a)))));
    pure "sin" (Exactly 1)
      (a1 "sin" (fun a -> Flo (Float.sin (num_float (to_num "sin" a)))));
    pure "cos" (Exactly 1)
      (a1 "cos" (fun a -> Flo (Float.cos (num_float (to_num "cos" a)))));
    pure "atan" (At_least 1) (fun args ->
        match args with
        | [| a |] -> Flo (Float.atan (num_float (to_num "atan" a)))
        | [| a; b |] ->
            Flo
              (Float.atan2
                 (num_float (to_num "atan" a))
                 (num_float (to_num "atan" b)))
        | _ -> arity_error "atan");
    pure "zero?" (Exactly 1)
      (a1 "zero?" (fun a -> bool_of (num_cmp (to_num "zero?" a) (I 0) = 0)));
    pure "positive?" (Exactly 1)
      (a1 "positive?" (fun a ->
           bool_of (num_cmp (to_num "positive?" a) (I 0) > 0)));
    pure "negative?" (Exactly 1)
      (a1 "negative?" (fun a ->
           bool_of (num_cmp (to_num "negative?" a) (I 0) < 0)));
    pure "even?" (Exactly 1)
      (a1 "even?" (fun a -> bool_of (check_int "even?" a land 1 = 0)));
    pure "odd?" (Exactly 1)
      (a1 "odd?" (fun a -> bool_of (check_int "odd?" a land 1 = 1)));
    pure "1+" (Exactly 1) (a1 "1+" (fun a -> Int (check_int "1+" a + 1)));
    pure "1-" (Exactly 1) (a1 "1-" (fun a -> Int (check_int "1-" a - 1)));
    (* -- predicates -------------------------------------------------- *)
    pure "eq?" (Exactly 2) (a2 "eq?" (fun a b -> bool_of (Values.eq a b)));
    pure "eqv?" (Exactly 2) (a2 "eqv?" (fun a b -> bool_of (Values.eqv a b)));
    pure "equal?" (Exactly 2)
      (a2 "equal?" (fun a b -> bool_of (Values.equal a b)));
    pure "not" (Exactly 1) (a1 "not" (fun a -> bool_of (not (Values.is_truthy a))));
    pure "null?" (Exactly 1) (a1 "null?" (fun a -> bool_of (a = Nil)));
    pure "list?" (Exactly 1)
      (a1 "list?" (fun a ->
           bool_of
             (match Values.list_of_value_opt a with
             | Some _ -> true
             | None -> false)));
    pure "pair?" (Exactly 1)
      (a1 "pair?" (fun a -> bool_of (match a with Pair _ -> true | _ -> false)));
    pure "symbol?" (Exactly 1)
      (a1 "symbol?" (fun a -> bool_of (match a with Sym _ -> true | _ -> false)));
    pure "number?" (Exactly 1)
      (a1 "number?" (fun a ->
           bool_of (match a with Int _ | Flo _ -> true | _ -> false)));
    pure "integer?" (Exactly 1)
      (a1 "integer?" (fun a -> bool_of (match a with Int _ -> true | _ -> false)));
    pure "string?" (Exactly 1)
      (a1 "string?" (fun a -> bool_of (match a with Str _ -> true | _ -> false)));
    pure "char?" (Exactly 1)
      (a1 "char?" (fun a -> bool_of (match a with Char _ -> true | _ -> false)));
    pure "boolean?" (Exactly 1)
      (a1 "boolean?" (fun a ->
           bool_of (match a with Bool _ -> true | _ -> false)));
    pure "vector?" (Exactly 1)
      (a1 "vector?" (fun a -> bool_of (match a with Vec _ -> true | _ -> false)));
    pure "procedure?" (Exactly 1)
      (a1 "procedure?" (fun a ->
           bool_of
             (match a with Closure _ | Prim _ | Cont _ | Hcont _ | Ofun _ -> true | _ -> false)));
    pure "eof-object?" (Exactly 1)
      (a1 "eof-object?" (fun a -> bool_of (a = Eof)));
    (* -- pairs and lists --------------------------------------------- *)
    pure "cons" (Exactly 2) (a2 "cons" Values.cons);
    pure "car" (Exactly 1) (a1 "car" (fun v -> (check_pair "car" v).car));
    pure "cdr" (Exactly 1) (a1 "cdr" (fun v -> (check_pair "cdr" v).cdr));
    pure "caar" (Exactly 1)
      (a1 "caar" (fun v -> (check_pair "caar" (check_pair "caar" v).car).car));
    pure "cadr" (Exactly 1)
      (a1 "cadr" (fun v -> (check_pair "cadr" (check_pair "cadr" v).cdr).car));
    pure "cdar" (Exactly 1)
      (a1 "cdar" (fun v -> (check_pair "cdar" (check_pair "cdar" v).car).cdr));
    pure "cddr" (Exactly 1)
      (a1 "cddr" (fun v -> (check_pair "cddr" (check_pair "cddr" v).cdr).cdr));
    pure "caddr" (Exactly 1)
      (a1 "caddr" (fun v ->
           (check_pair "caddr"
              (check_pair "caddr" (check_pair "caddr" v).cdr).cdr)
             .car));
    pure "set-car!" (Exactly 2)
      (a2 "set-car!" (fun p v ->
           (check_pair "set-car!" p).car <- v;
           Void));
    pure "set-cdr!" (Exactly 2)
      (a2 "set-cdr!" (fun p v ->
           (check_pair "set-cdr!" p).cdr <- v;
           Void));
    pure "list" (At_least 0) (fun args ->
        Values.list_to_value (Array.to_list args));
    pure "length" (Exactly 1)
      (a1 "length" (fun v -> Int (list_length "length" 0 v)));
    pure "append" (At_least 0) (fun args ->
        match Array.length args with
        | 0 -> Nil
        | n ->
            let acc = ref args.(n - 1) in
            for i = n - 2 downto 0 do
              acc := append2 "append" args.(i) !acc
            done;
            !acc);
    pure "reverse" (Exactly 1)
      (a1 "reverse" (fun v ->
           Values.list_to_value (List.rev (Values.list_of_value v))));
    pure "list-tail" (Exactly 2)
      (a2 "list-tail" (fun v n -> list_tail "list-tail" v (check_int "list-tail" n)));
    pure "list-ref" (Exactly 2)
      (a2 "list-ref" (fun v n ->
           match list_tail "list-ref" v (check_int "list-ref" n) with
           | Pair p -> p.car
           | _ -> Values.err "list-ref: index out of range" [ v; n ]));
    pure "assq" (Exactly 2) (a2 "assq" (assoc_gen Values.eq));
    pure "assv" (Exactly 2) (a2 "assv" (assoc_gen Values.eqv));
    pure "assoc" (Exactly 2) (a2 "assoc" (assoc_gen Values.equal));
    pure "memq" (Exactly 2) (a2 "memq" (member_gen Values.eq));
    pure "memv" (Exactly 2) (a2 "memv" (member_gen Values.eqv));
    pure "member" (Exactly 2) (a2 "member" (member_gen Values.equal));
    (* -- symbols, strings, chars ------------------------------------- *)
    pure "symbol->string" (Exactly 1)
      (a1 "symbol->string" (fun v ->
           Str (Bytes.of_string (check_sym "symbol->string" v))));
    pure "string->symbol" (Exactly 1)
      (a1 "string->symbol" (fun v ->
           sym (Bytes.to_string (check_str "string->symbol" v))));
    pure "gensym" (At_least 0) (fun args ->
        let prefix =
          if Array.length args > 0 then check_sym "gensym" args.(0) else "g"
        in
        gensym prefix);
    pure "string-length" (Exactly 1)
      (a1 "string-length" (fun v ->
           Int (Bytes.length (check_str "string-length" v))));
    pure "string-append" (At_least 0) (fun args ->
        let buf = Buffer.create 16 in
        Array.iter
          (fun v -> Buffer.add_bytes buf (check_str "string-append" v))
          args;
        Str (Buffer.to_bytes buf));
    pure "string-ref" (Exactly 2)
      (a2 "string-ref" (fun s i ->
           let s = check_str "string-ref" s and i = check_int "string-ref" i in
           if i < 0 || i >= Bytes.length s then
             Values.err "string-ref: index out of range" [ Int i ];
           Char (Bytes.get s i)));
    pure "string-set!" (Exactly 3)
      (a3 "string-set!" (fun s i c ->
           let s = check_str "string-set!" s
           and i = check_int "string-set!" i
           and c = check_char "string-set!" c in
           if i < 0 || i >= Bytes.length s then
             Values.err "string-set!: index out of range" [ Int i ];
           Bytes.set s i c;
           Void));
    pure "substring" (Exactly 3)
      (a3 "substring" (fun s a b ->
           let s = check_str "substring" s
           and a = check_int "substring" a
           and b = check_int "substring" b in
           if a < 0 || b > Bytes.length s || a > b then
             Values.err "substring: bad range" [ Int a; Int b ];
           Str (Bytes.sub s a (b - a))));
    pure "string=?" (Exactly 2)
      (a2 "string=?" (fun a b ->
           bool_of (Bytes.equal (check_str "string=?" a) (check_str "string=?" b))));
    pure "string<?" (Exactly 2)
      (a2 "string<?" (fun a b ->
           bool_of (Bytes.compare (check_str "string<?" a) (check_str "string<?" b) < 0)));
    pure "string>?" (Exactly 2)
      (a2 "string>?" (fun a b ->
           bool_of (Bytes.compare (check_str "string>?" a) (check_str "string>?" b) > 0)));
    pure "string-upcase" (Exactly 1)
      (a1 "string-upcase" (fun v ->
           Str (Bytes.uppercase_ascii (check_str "string-upcase" v))));
    pure "string-downcase" (Exactly 1)
      (a1 "string-downcase" (fun v ->
           Str (Bytes.lowercase_ascii (check_str "string-downcase" v))));
    pure "make-string" (At_least 1) (fun args ->
        let n = check_int "make-string" args.(0) in
        if n < 0 then Values.err "make-string: negative size" [ args.(0) ];
        let fill =
          if Array.length args > 1 then check_char "make-string" args.(1)
          else ' '
        in
        Str (Bytes.make n fill));
    pure "string" (At_least 0) (fun args ->
        let b = Bytes.create (Array.length args) in
        Array.iteri (fun i c -> Bytes.set b i (check_char "string" c)) args;
        Str b);
    pure "string->list" (Exactly 1)
      (a1 "string->list" (fun v ->
           Values.list_to_value
             (List.map (fun c -> Char c)
                (List.of_seq (Bytes.to_seq (check_str "string->list" v))))));
    pure "list->string" (Exactly 1)
      (a1 "list->string" (fun v ->
           let chars = Values.list_of_value v in
           let b = Bytes.create (List.length chars) in
           List.iteri (fun i c -> Bytes.set b i (check_char "list->string" c)) chars;
           Str b));
    pure "number->string" (Exactly 1)
      (a1 "number->string" (fun v ->
           match v with
           | Int _ | Flo _ -> Str (Bytes.of_string (Values.display_string v))
           | v -> Values.type_error "number->string" "number" v));
    pure "string->number" (Exactly 1)
      (a1 "string->number" (fun v ->
           let s = Bytes.to_string (check_str "string->number" v) in
           match int_of_string_opt s with
           | Some n -> Int n
           | None -> (
               match float_of_string_opt s with
               | Some f -> Flo f
               | None -> Bool false)));
    pure "char->integer" (Exactly 1)
      (a1 "char->integer" (fun v -> Int (Char.code (check_char "char->integer" v))));
    pure "integer->char" (Exactly 1)
      (a1 "integer->char" (fun v ->
           let n = check_int "integer->char" v in
           if n < 0 || n > 255 then
             Values.err "integer->char: out of range" [ v ];
           Char (Char.chr n)));
    pure "char-upcase" (Exactly 1)
      (a1 "char-upcase" (fun v -> Char (Char.uppercase_ascii (check_char "char-upcase" v))));
    pure "char-downcase" (Exactly 1)
      (a1 "char-downcase" (fun v -> Char (Char.lowercase_ascii (check_char "char-downcase" v))));
    pure "char-alphabetic?" (Exactly 1)
      (a1 "char-alphabetic?" (fun v ->
           let c = check_char "char-alphabetic?" v in
           bool_of ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))));
    pure "char-numeric?" (Exactly 1)
      (a1 "char-numeric?" (fun v ->
           let c = check_char "char-numeric?" v in
           bool_of (c >= '0' && c <= '9')));
    pure "char-whitespace?" (Exactly 1)
      (a1 "char-whitespace?" (fun v ->
           let c = check_char "char-whitespace?" v in
           bool_of (c = ' ' || c = '\t' || c = '\n' || c = '\r')));
    pure "char=?" (Exactly 2)
      (a2 "char=?" (fun a b ->
           bool_of (check_char "char=?" a = check_char "char=?" b)));
    pure "char<?" (Exactly 2)
      (a2 "char<?" (fun a b ->
           bool_of (check_char "char<?" a < check_char "char<?" b)));
    (* -- vectors ------------------------------------------------------ *)
    pure "make-vector" (At_least 1) (fun args ->
        let n = check_int "make-vector" args.(0) in
        if n < 0 then Values.err "make-vector: negative size" [ args.(0) ];
        let fill = if Array.length args > 1 then args.(1) else Int 0 in
        Vec (Array.make n fill));
    pure "vector" (At_least 0) (fun args -> Vec (Array.copy args));
    pure "vector-length" (Exactly 1)
      (a1 "vector-length" (fun v -> Int (Array.length (check_vec "vector-length" v))));
    pure "vector-ref" (Exactly 2)
      (a2 "vector-ref" (fun v i ->
           let a = check_vec "vector-ref" v and i = check_int "vector-ref" i in
           if i < 0 || i >= Array.length a then
             Values.err "vector-ref: index out of range" [ Int i ];
           a.(i)));
    pure "vector-set!" (Exactly 3)
      (a3 "vector-set!" (fun v i x ->
           let a = check_vec "vector-set!" v and i = check_int "vector-set!" i in
           if i < 0 || i >= Array.length a then
             Values.err "vector-set!: index out of range" [ Int i ];
           a.(i) <- x;
           Void));
    pure "vector->list" (Exactly 1)
      (a1 "vector->list" (fun v ->
           Values.list_to_value (Array.to_list (check_vec "vector->list" v))));
    pure "list->vector" (Exactly 1)
      (a1 "list->vector" (fun v ->
           Vec (Array.of_list (Values.list_of_value v))));
    pure "vector-fill!" (Exactly 2)
      (a2 "vector-fill!" (fun v x ->
           Array.fill (check_vec "vector-fill!" v) 0
             (Array.length (check_vec "vector-fill!" v))
             x;
           Void));
    (* -- hashtables (eqv-comparable immediate keys) -------------------- *)
    pure "make-hashtable" (Exactly 0) (fun _ -> Tbl (Hashtbl.create 16));
    pure "hashtable?" (Exactly 1)
      (a1 "hashtable?" (fun v ->
           bool_of (match v with Tbl _ -> true | _ -> false)));
    pure "hashtable-set!" (Exactly 3)
      (a3 "hashtable-set!" (fun t k v ->
           let t = check_tbl "hashtable-set!" t in
           Hashtbl.replace t (check_hkey "hashtable-set!" k) v;
           Void));
    pure "hashtable-ref" (Exactly 3)
      (a3 "hashtable-ref" (fun t k default ->
           let t = check_tbl "hashtable-ref" t in
           match Hashtbl.find_opt t (check_hkey "hashtable-ref" k) with
           | Some v -> v
           | None -> default));
    pure "hashtable-contains?" (Exactly 2)
      (a2 "hashtable-contains?" (fun t k ->
           let t = check_tbl "hashtable-contains?" t in
           bool_of (Hashtbl.mem t (check_hkey "hashtable-contains?" k))));
    pure "hashtable-delete!" (Exactly 2)
      (a2 "hashtable-delete!" (fun t k ->
           let t = check_tbl "hashtable-delete!" t in
           Hashtbl.remove t (check_hkey "hashtable-delete!" k);
           Void));
    pure "hashtable-size" (Exactly 1)
      (a1 "hashtable-size" (fun t ->
           Int (Hashtbl.length (check_tbl "hashtable-size" t))));
    pure "hashtable-keys" (Exactly 1)
      (a1 "hashtable-keys" (fun t ->
           Values.list_to_value
             (Hashtbl.fold (fun k _ acc -> k :: acc)
                (check_tbl "hashtable-keys" t) [])));
    pure "hashtable-values" (Exactly 1)
      (a1 "hashtable-values" (fun t ->
           Values.list_to_value
             (Hashtbl.fold (fun _ v acc -> v :: acc)
                (check_tbl "hashtable-values" t) [])));
    pure "hashtable->alist" (Exactly 1)
      (a1 "hashtable->alist" (fun t ->
           Values.list_to_value
             (Hashtbl.fold
                (fun k v acc -> Values.cons k v :: acc)
                (check_tbl "hashtable->alist" t) [])));
    pure "hashtable-copy" (Exactly 1)
      (a1 "hashtable-copy" (fun t ->
           Tbl (Hashtbl.copy (check_tbl "hashtable-copy" t))));
    (* -- output -------------------------------------------------------- *)
    pure "%output-mark" (Exactly 0) (fun _ -> Int (Buffer.length (hooks_out ())));
    pure "%output-take" (Exactly 1)
      (a1 "%output-take" (fun v ->
           let out = hooks_out () in
           let mark = check_int "%output-take" v in
           let len = Buffer.length out in
           if mark < 0 || mark > len then
             Values.err "%output-take: stale mark" [ v ];
           let s = Buffer.sub out mark (len - mark) in
           Buffer.truncate out mark;
           Str (Bytes.of_string s)));
    pure "display" (Exactly 1) (a1 "display" display_v);
    pure "write" (Exactly 1) (a1 "write" write_v);
    pure "newline" (Exactly 0) (fun _ ->
        Buffer.add_char (hooks_out ()) '\n';
        Void);
    (* -- misc ----------------------------------------------------------- *)
    pure "void" (Exactly 0) (fun _ -> Void);
    pure "%raw-error" (At_least 1) (fun args ->
        (* (error who msg irritant ...) or (error msg irritant ...) *)
        match args with
        | [| m |] -> raise (Scheme_error (Values.display_string m, []))
        | _ -> (
            match args.(0) with
            | Sym who ->
                raise
                  (Scheme_error
                     ( who ^ ": " ^ Values.display_string args.(1),
                       Array.to_list (Array.sub args 2 (Array.length args - 2))
                     ))
            | m ->
                raise
                  (Scheme_error
                     ( Values.display_string m,
                       Array.to_list (Array.sub args 1 (Array.length args - 1))
                     ))));
    (let raw =
       { pname = "error"; parity = At_least 1;
         pfn =
           Pure
             (fun args ->
               match args with
               | [| m |] -> raise (Scheme_error (Values.display_string m, []))
               | _ -> (
                   match args.(0) with
                   | Sym who ->
                       raise
                         (Scheme_error
                            ( who ^ ": " ^ Values.display_string args.(1),
                              Array.to_list
                                (Array.sub args 2 (Array.length args - 2)) ))
                   | m ->
                       raise
                         (Scheme_error
                            ( Values.display_string m,
                              Array.to_list
                                (Array.sub args 1 (Array.length args - 1)) ))));
       }
     in
     ("error", raw));
    pure "%values->list" (Exactly 1)
      (a1 "%values->list" (fun v ->
           match v with
           | Mvals vs -> Values.list_to_value vs
           | v -> Values.cons v Nil));
    pure "%continuation?" (Exactly 1)
      (a1 "%continuation?" (fun v ->
           bool_of (match v with Cont _ | Hcont _ -> true | _ -> false)));
    pure "%continuation-one-shot?" (Exactly 1)
      (a1 "%continuation-one-shot?" (fun v ->
           match v with
           | Cont c -> bool_of c.one_shot
           | Hcont c -> bool_of c.hcont_one_shot
           | v -> Values.type_error "%continuation-one-shot?" "continuation" v));
    pure "%continuation-shot?" (Exactly 1)
      (a1 "%continuation-shot?" (fun v ->
           match v with
           | Cont c -> bool_of (c.sr.size = -1)
           | Hcont c -> bool_of c.hcont_shot
           | v -> Values.type_error "%continuation-shot?" "continuation" v));
    pure "%continuation-promoted?" (Exactly 1)
      (a1 "%continuation-promoted?" (fun v ->
           match v with
           | Cont c ->
               bool_of
                 (c.sr.size <> -1
                 && (c.sr.size = c.sr.current || !(c.sr.promoted)))
           | Hcont c -> bool_of (c.hcont_promoted || not c.hcont_one_shot)
           | v -> Values.type_error "%continuation-promoted?" "continuation" v));
    (* -- data-parallel defaults ----------------------------------------- *)
    (* The prelude's par-map/par-reduce/par-for-each gate on
       [(%par-jobs)]: 0 means "no pool attached" and selects the serial
       fallback (map/fold-left/for-each).  Attaching a pool
       (Scheme.par_attach) rebinds all three in the session's globals —
       the same overwrite mechanism [Engine.create] uses for the timer
       accessors — so plain sessions, worker shards, and the oracle all
       see these inert defaults and never recurse into the pool. *)
    pure "%par-jobs" (Exactly 0) (fun _ -> Int 0);
    pure "%par-chunk" (Exactly 0) (fun _ -> Int 1);
    pure "%par-dispatch" (At_least 3) (fun _ ->
        Values.err "par: no pool attached to this session" []);
    (* Count a voluntary fiber switch on the running machine's counter
       block (a no-op outside any run, matching the old inert default). *)
    pure "%par-switch!" (Exactly 0) (fun _ ->
        (Machine_hooks.current ()).Machine_hooks.par_switch ();
        Void);
    (* Raw append to this session's output buffer: the pool stitches
       worker shard output back into the master's stream through this
       (a pure prim the master can apply without re-entering its VM). *)
    pure "%par-emit" (Exactly 1)
      (a1 "%par-emit" (fun v ->
           Buffer.add_bytes (hooks_out ()) (check_str "%par-emit" v);
           Void));
    (* -- control specials (handled by the machine loops) ---------------- *)
    special "%call/cc" (Exactly 1) Sp_callcc;
    special "%call/1cc" (Exactly 1) Sp_call1cc;
    ("%dynamic-wind", dw_prim);
    special "apply" (At_least 2) Sp_apply;
    special "values" (At_least 0) Sp_values;
    (* The preemption-timer accessors reach the running machine through
       the hooks, so they stay pure (applied inline, no frame) and the
       prim values stay process-shared.  Outside any run the defaults
       make set a no-op and get read 0 — the oracle's semantics. *)
    pure "%set-timer!" (Exactly 2)
      (a2 "%set-timer!" (fun ticks handler ->
           (Machine_hooks.current ()).Machine_hooks.set_timer
             (check_int "%set-timer!" ticks)
             handler;
           Void));
    pure "%get-timer" (Exactly 0) (fun _ ->
        Int ((Machine_hooks.current ()).Machine_hooks.get_timer ()));
    special "%stat" (Exactly 1) Sp_stats;
    special "%backtrace" (Exactly 0) Sp_backtrace;
    special "eval" (Exactly 1) Sp_eval;
    pure "read-from-string" (Exactly 1)
      (a1 "read-from-string" (fun v ->
           let src = Bytes.to_string (check_str "read-from-string" v) in
           match Sexp.read_all src with
           | [] -> Eof
           | d :: _ -> Expander.datum_to_value d
           | exception Sexp.Read_error (msg, _) ->
               Values.err ("read-from-string: " ^ msg) []));
  ]

(* One boxed [Prim] value per primitive, shared by every session: the
   fused-site guards compare the boxed value physically ([gval ==
   ps_guard]), so sessions consuming shared compiled code (the prelude
   image) must see the very same box the image's compile captured. *)
let the_prim_values : (string * value) list =
  List.map (fun (name, p) -> (name, Prim p)) the_prims

let install globals =
  List.iter
    (fun (name, v) -> Globals.define globals name v)
    the_prim_values
