(* The one dispatch loop (template).
   ==================================

   This file is NOT a module of the engine library.  It is the textual
   template of the execution core — fuel/landing discipline, every
   instruction handler, every fused superinstruction, the prim-call fast
   paths — written against an abstract frame policy [Policy].  A dune
   rule in each backend library concatenates

       module Policy = <that backend's policy>

   with this file to produce the backend's core module ([Vm_core] over
   [Vm_policy], [Heap_core] over [Heap_policy]).  The result is
   include-style instantiation: the loop is compiled once per backend
   with the policy statically known, so the policy's constants fold and
   its operations inline — a functor would instead put a closure
   indirection on every hot-path policy call (this tree does not build
   with flambda, which could be trusted to specialize one).

   A new opcode is added HERE, once; both VMs pick it up on the next
   build.  The policy supplies only what genuinely depends on the
   control representation:

     fast                 whether same-frame-array call/tail/return
                          transfers may stay inside a landing (the
                          segmented stack's contiguous frames; heap
                          frames are linked, every transfer relaunches)
     frames_on_pure_call  whether a [Call] to a pure primitive counts a
                          frame (the heap VM counts the frame it would
                          have allocated; the stack VM pushes nothing)
     slots/frame_base/limit
                          the landing's cached view of the active frame
     set                  a slot write; returns the array to continue
                          the landing on (copy-on-write may replace it)
     set_fp/call/tail_call/do_return/enter/fire_timer/
     prim_deopt_call/prim_deopt_tail_call/pure_call_skips/
     inject_error_handler/init_run
                          the control transfers themselves

   The loop executes one *landing* at a time: a run of instructions
   between control transfers, all within one code object, one frame and
   one slot array.  For the duration of a landing the hot state lives in
   parameters (so the native compiler keeps it in registers):

     [instrs]  the current code object's instruction array
     [slots]   the active slot array (stack: the segment, indexed from
               [fp]; heap: the current frame's slots, [fp] = 0); a GC
               root, relocated like any local if a collection moves it
     [fp]      the frame base within [slots] (never written mid-landing)
     [limit]   first index past the usable extent of [slots] (stack: the
               segment limit, for the Enter/Return fast paths; heap:
               [max_int])
     [acc]     the accumulator
     [pc]      index of the instruction about to execute
     [steps]   instructions executed in this landing but not yet added
               to [stats.instrs] / subtracted from [vm.fuel]
     [budget]  instructions this landing may still execute before the
               fuel check must run ([max_int] when fuel is unlimited)

   [sync] writes the batched state back ([vm.pc], [vm.acc], instruction
   counter, fuel); it MUST run before any operation that can observe
   [vm.pc] or raise — control transfers, primitive application (prims
   raise Scheme_error), and every error branch.  After [sync] the [pc]
   argument is the address *after* the current instruction, matching the
   historical "pc already incremented" semantics that error-handler
   injection and the deopt return addresses rely on.

   Instruction fetch uses [Array.unsafe_get]: [Bytecode.make_code]
   validates that code cannot fall off the end and that branch targets
   are in range, and [relaunch] bounds-checks every landing's entry pc,
   so [pc] is always in range here. *)

open Rt
open Engine

(* Resolve a register-addressed operand (Optimize.fuse_operands): the
   accumulator, a frame slot, or an immediate.  Cannot raise. *)
let[@inline] load_op slots fp acc op =
  match op with
  | Op_acc -> acc
  | Op_local i -> slots.(fp + i)
  | Op_const v -> v

(* Resolve a global slot against this session's cell table.  Compiled
   code carries process-wide slot numbers (so code objects — notably the
   shared prelude image — are session-independent); the indirection is
   one bounds test and an unsafe load on the hit path.  Defined locally
   (not in [Engine]) so the native compiler inlines it: this tree does
   not build with flambda, which would be needed to trust a cross-module
   [@inline]. *)
let[@inline] gcell (vm : Policy.t) slot =
  let cells = vm.globals.Globals.cells in
  if slot < Array.length cells then Array.unsafe_get cells slot
  else Globals.get vm.globals slot

let[@inline] sync (vm : Policy.t) steps pc acc =
  vm.pc <- pc;
  vm.acc <- acc;
  let stats = vm.stats in
  if stats.Stats.enabled then
    stats.Stats.instrs <- stats.Stats.instrs + steps;
  if vm.fuel >= 0 then vm.fuel <- vm.fuel - steps

let rec exec (vm : Policy.t) instrs slots fp limit budget acc steps pc =
  if steps >= budget then begin
    sync vm steps pc acc;
    raise Vm_fuel_exhausted
  end;
  match Array.unsafe_get instrs pc with
  | Const v -> exec vm instrs slots fp limit budget v (steps + 1) (pc + 1)
  | Local_ref i ->
      exec vm instrs slots fp limit budget slots.(fp + i) (steps + 1) (pc + 1)
  | Local_set i ->
      let slots = Policy.set vm slots fp i acc in
      exec vm instrs slots fp limit budget acc (steps + 1) (pc + 1)
  | Box_init i ->
      let slots = Policy.set vm slots fp i (Box (ref slots.(fp + i))) in
      let stats = vm.stats in
      if stats.Stats.enabled then
        stats.Stats.boxes_made <- stats.Stats.boxes_made + 1;
      exec vm instrs slots fp limit budget acc (steps + 1) (pc + 1)
  | Box_ref i -> (
      match slots.(fp + i) with
      | Box r -> exec vm instrs slots fp limit budget !r (steps + 1) (pc + 1)
      | v ->
          sync vm (steps + 1) (pc + 1) acc;
          Values.err "vm: box-ref of non-box" [ v ])
  | Box_set i -> (
      match slots.(fp + i) with
      | Box r ->
          r := acc;
          exec vm instrs slots fp limit budget acc (steps + 1) (pc + 1)
      | v ->
          sync vm (steps + 1) (pc + 1) acc;
          Values.err "vm: box-set of non-box" [ v ])
  | Free_ref i -> (
      match slots.(fp + 1) with
      | Closure c ->
          exec vm instrs slots fp limit budget c.frees.(i) (steps + 1) (pc + 1)
      | v ->
          sync vm (steps + 1) (pc + 1) acc;
          Values.err "vm: free-ref outside closure" [ v ])
  | Free_box_ref i -> (
      match slots.(fp + 1) with
      | Closure c -> (
          match c.frees.(i) with
          | Box r ->
              exec vm instrs slots fp limit budget !r (steps + 1) (pc + 1)
          | v ->
              sync vm (steps + 1) (pc + 1) acc;
              Values.err "vm: free-box-ref of non-box" [ v ])
      | v ->
          sync vm (steps + 1) (pc + 1) acc;
          Values.err "vm: free-box-ref outside closure" [ v ])
  | Free_box_set i -> (
      match slots.(fp + 1) with
      | Closure c -> (
          match c.frees.(i) with
          | Box r ->
              r := acc;
              exec vm instrs slots fp limit budget acc (steps + 1) (pc + 1)
          | v ->
              sync vm (steps + 1) (pc + 1) acc;
              Values.err "vm: free-box-set of non-box" [ v ])
      | v ->
          sync vm (steps + 1) (pc + 1) acc;
          Values.err "vm: free-box-set outside closure" [ v ])
  | Global_ref s ->
      let g = gcell vm s in
      if g.gdefined then
        exec vm instrs slots fp limit budget g.gval (steps + 1) (pc + 1)
      else begin
        sync vm (steps + 1) (pc + 1) acc;
        Values.err ("unbound variable: " ^ Globals.slot_name s) []
      end
  | Global_set s ->
      let g = gcell vm s in
      if g.gdefined then begin
        g.gval <- acc;
        exec vm instrs slots fp limit budget acc (steps + 1) (pc + 1)
      end
      else begin
        sync vm (steps + 1) (pc + 1) acc;
        Values.err ("set! of unbound variable: " ^ Globals.slot_name s) []
      end
  | Global_define s ->
      let g = gcell vm s in
      g.gval <- acc;
      g.gdefined <- true;
      exec vm instrs slots fp limit budget acc (steps + 1) (pc + 1)
  | Make_closure (code, caps) ->
      let ncaps = Array.length caps in
      let frees = if ncaps = 0 then [||] else Array.make ncaps Void in
      for i = 0 to ncaps - 1 do
        frees.(i) <-
          (match Array.unsafe_get caps i with
          | Cap_local j -> slots.(fp + j)
          | Cap_free j -> (
              match slots.(fp + 1) with
              | Closure c -> c.frees.(j)
              | v ->
                  sync vm (steps + 1) (pc + 1) acc;
                  Values.err "vm: capture outside closure" [ v ]))
      done;
      let stats = vm.stats in
      if stats.Stats.enabled then
        stats.Stats.closures_made <- stats.Stats.closures_made + 1;
      exec vm instrs slots fp limit budget
        (Closure { code; frees })
        (steps + 1) (pc + 1)
  | Branch t -> exec vm instrs slots fp limit budget acc (steps + 1) t
  | Branch_false t ->
      exec vm instrs slots fp limit budget acc (steps + 1)
        (match acc with Bool false -> t | _ -> pc + 1)
  | Call site -> (
      let nfp = fp + site.cs_disp in
      match slots.(nfp + 1) with
      | Closure c when Policy.fast ->
          (* Same-slot-array call: the callee's frame lives on the
             segment we already hold, so transfer control without
             leaving the loop.  The return address is the per-site
             constant interned by [Bytecode.backpatch]: no allocation on
             the call path.  [vm.pc] stays stale here — every
             observation point (error branches, slow-path transfers)
             syncs its own pc first. *)
          slots.(nfp) <- site.cs_ret;
          vm.code <- c.code;
          vm.nargs <- site.cs_nargs;
          Policy.set_fp vm nfp;
          let stats = vm.stats in
          if stats.Stats.enabled then begin
            stats.Stats.instrs <- stats.Stats.instrs + steps + 1;
            stats.Stats.frames <- stats.Stats.frames + 1;
            stats.Stats.calls <- stats.Stats.calls + 1
          end;
          if vm.fuel >= 0 then vm.fuel <- vm.fuel - (steps + 1);
          exec vm c.code.instrs slots nfp limit (budget - (steps + 1)) acc 0 0
      | Prim { pfn = Pure fn; parity; pname } ->
          (* Pure primitives push no frame on the stack policy and
             return straight to the fall-through pc, so the call stays
             inside the landing (with the batched counters flushed
             first, because [fn] may raise).  The heap policy counts the
             frame its generic path would have allocated, and honors the
             return-context consumption a tail-positioned primitive
             performs ([pure_call_skips]). *)
          sync vm (steps + 1) (pc + 1) acc;
          let stats = vm.stats in
          if Policy.frames_on_pure_call && stats.Stats.enabled then
            stats.Stats.frames <- stats.Stats.frames + 1;
          if not (Bytecode.arity_matches parity site.cs_nargs) then
            Values.err (pname ^ ": wrong number of arguments") [];
          if stats.Stats.enabled then
            stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          let v = fn (prim_args vm slots (nfp + 2) site.cs_nargs) in
          if Policy.pure_call_skips vm site then begin
            vm.acc <- v;
            Policy.do_return vm;
            relaunch vm
          end
          else exec vm instrs slots fp limit (budget - (steps + 1)) v 0 (pc + 1)
      | f ->
          sync vm (steps + 1) (pc + 1) acc;
          let stats = vm.stats in
          if stats.Stats.enabled then
            stats.Stats.frames <- stats.Stats.frames + 1;
          Policy.call vm site f;
          relaunch vm)
  | Tail_call { disp; nargs } -> (
      let src = fp + disp in
      let f = slots.(src + 1) in
      match f with
      | Closure c when Policy.fast ->
          (* Same-slot-array tail call: frame is reused in place. *)
          slots.(fp + 1) <- f;
          blit_args slots (src + 2) (fp + 2) nargs;
          vm.code <- c.code;
          vm.nargs <- nargs;
          let stats = vm.stats in
          if stats.Stats.enabled then begin
            stats.Stats.instrs <- stats.Stats.instrs + steps + 1;
            stats.Stats.calls <- stats.Stats.calls + 1
          end;
          if vm.fuel >= 0 then vm.fuel <- vm.fuel - (steps + 1);
          exec vm c.code.instrs slots fp limit (budget - (steps + 1)) acc 0 0
      | _ ->
          sync vm (steps + 1) (pc + 1) acc;
          Policy.tail_call vm ~disp ~nargs f;
          relaunch vm)
  | Return -> (
      (* [slots.(fp)] is a return slot only under the stack policy; the
         heap policy's root frame has no slots at all, so the read is
         guarded by the (static) policy constant. *)
      match (if Policy.fast then slots.(fp) else Void) with
      | Retaddr r when fp - r.rdisp + r.rcode.frame_words <= limit ->
          (* Same-segment return with the caller's frame extent already
             covered: skip the write-back/reload round trip.  The room
             test is exactly the resumed-frame-room re-check. *)
          let nfp = fp - r.rdisp in
          vm.code <- r.rcode;
          Policy.set_fp vm nfp;
          let stats = vm.stats in
          if stats.Stats.enabled then
            stats.Stats.instrs <- stats.Stats.instrs + steps + 1;
          if vm.fuel >= 0 then vm.fuel <- vm.fuel - (steps + 1);
          exec vm r.rcode.instrs slots nfp limit (budget - (steps + 1)) acc 0
            r.rpc
      | _ ->
          sync vm (steps + 1) (pc + 1) acc;
          Policy.do_return vm;
          relaunch vm)
  | Enter -> (
      let c = vm.code in
      match c.arity with
      | Exactly k when k = vm.nargs && fp + c.frame_words <= limit ->
          (* Fast path: arity matches and the frame extent fits the
             active slot array — nothing to set up (always true of a
             heap frame, allocated at full size).  An armed timer only
             needs its per-call decrement here; the expensive handler
             dispatch happens on the call that exhausts the slice, so
             code running under preemption (the thread benchmarks) stays
             on the fast path between switches. *)
          let t = vm.timer in
          if t > 0 then
            if t = 1 then begin
              vm.timer <- -1;
              sync vm (steps + 1) (pc + 1) acc;
              Policy.fire_timer vm;
              relaunch vm
            end
            else begin
              vm.timer <- t - 1;
              exec vm instrs slots fp limit budget acc (steps + 1) (pc + 1)
            end
          else exec vm instrs slots fp limit budget acc (steps + 1) (pc + 1)
      | _ ->
          sync vm (steps + 1) (pc + 1) acc;
          Policy.enter vm;
          relaunch vm)
  | Halt ->
      sync vm (steps + 1) (pc + 1) acc;
      vm.halted <- true
  (* ---- fused superinstructions (emitted by Optimize.peephole) ---- *)
  | Const_push (v, i) ->
      let slots = Policy.set vm slots fp i v in
      exec vm instrs slots fp limit budget acc (steps + 1) (pc + 1)
  | Local_push (i, j) ->
      let slots = Policy.set vm slots fp j slots.(fp + i) in
      exec vm instrs slots fp limit budget acc (steps + 1) (pc + 1)
  | Free_push (i, j) -> (
      match slots.(fp + 1) with
      | Closure c ->
          let slots = Policy.set vm slots fp j c.frees.(i) in
          exec vm instrs slots fp limit budget acc (steps + 1) (pc + 1)
      | v ->
          sync vm (steps + 1) (pc + 1) acc;
          Values.err "vm: free-push outside closure" [ v ])
  | Global_push (s, i) ->
      let g = gcell vm s in
      if g.gdefined then begin
        let slots = Policy.set vm slots fp i g.gval in
        exec vm instrs slots fp limit budget acc (steps + 1) (pc + 1)
      end
      else begin
        sync vm (steps + 1) (pc + 1) acc;
        Values.err ("unbound variable: " ^ Globals.slot_name s) []
      end
  | Prim_call site ->
      sync vm (steps + 1) (pc + 1) acc;
      if (gcell vm site.ps_slot).gval == site.ps_guard then begin
        let stats = vm.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let v =
          site.ps_fn (prim_args vm slots (fp + site.ps_disp + 2) site.ps_nargs)
        in
        exec vm instrs slots fp limit (budget - (steps + 1)) v 0 (pc + 1)
      end
      else begin
        Policy.prim_deopt_call vm site;
        relaunch vm
      end
  | Prim_call1 site ->
      sync vm (steps + 1) (pc + 1) acc;
      if (gcell vm site.ps_slot).gval == site.ps_guard then begin
        let stats = vm.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(1) in
        args.(0) <- slots.(fp + site.ps_disp + 2);
        let v = site.ps_fn args in
        exec vm instrs slots fp limit (budget - (steps + 1)) v 0 (pc + 1)
      end
      else begin
        Policy.prim_deopt_call vm site;
        relaunch vm
      end
  | Prim_call2 site ->
      sync vm (steps + 1) (pc + 1) acc;
      if (gcell vm site.ps_slot).gval == site.ps_guard then begin
        let stats = vm.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(2) in
        let base = fp + site.ps_disp + 2 in
        args.(0) <- slots.(base);
        args.(1) <- slots.(base + 1);
        let v = site.ps_fn args in
        exec vm instrs slots fp limit (budget - (steps + 1)) v 0 (pc + 1)
      end
      else begin
        Policy.prim_deopt_call vm site;
        relaunch vm
      end
  | Local_branch_false (i, t) ->
      (* Fused Local_ref + Branch_false: one dispatch.  The skipped
         branch sits at [pc + 1]; fall through lands past it. *)
      let v = slots.(fp + i) in
      exec vm instrs slots fp limit budget v (steps + 1)
        (match v with Bool false -> t | _ -> pc + 2)
  | Prim_branch1 (site, t) ->
      sync vm (steps + 1) (pc + 1) acc;
      if (gcell vm site.ps_slot).gval == site.ps_guard then begin
        let stats = vm.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(1) in
        args.(0) <- slots.(fp + site.ps_disp + 2);
        let v = site.ps_fn args in
        exec vm instrs slots fp limit (budget - (steps + 1)) v 0
          (match v with Bool false -> t | _ -> pc + 2)
      end
      else begin
        (* The interned [ps_ret] resumes at the retained [Branch_false]
           at [pc + 1], which re-tests the call's returned value. *)
        Policy.prim_deopt_call vm site;
        relaunch vm
      end
  | Prim_branch2 (site, t) ->
      sync vm (steps + 1) (pc + 1) acc;
      if (gcell vm site.ps_slot).gval == site.ps_guard then begin
        let stats = vm.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(2) in
        let base = fp + site.ps_disp + 2 in
        args.(0) <- slots.(base);
        args.(1) <- slots.(base + 1);
        let v = site.ps_fn args in
        exec vm instrs slots fp limit (budget - (steps + 1)) v 0
          (match v with Bool false -> t | _ -> pc + 2)
      end
      else begin
        Policy.prim_deopt_call vm site;
        relaunch vm
      end
  | Prim_tail_call site ->
      sync vm (steps + 1) (pc + 1) acc;
      if (gcell vm site.ps_slot).gval == site.ps_guard then begin
        let stats = vm.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let v =
          site.ps_fn (prim_args vm slots (fp + site.ps_disp + 2) site.ps_nargs)
        in
        match (if Policy.fast then slots.(fp) else Void) with
        | Retaddr r when fp - r.rdisp + r.rcode.frame_words <= limit ->
            (* Batched counters were already flushed by [sync] above. *)
            let nfp = fp - r.rdisp in
            vm.code <- r.rcode;
            Policy.set_fp vm nfp;
            exec vm r.rcode.instrs slots nfp limit (budget - (steps + 1)) v 0
              r.rpc
        | _ ->
            vm.acc <- v;
            Policy.do_return vm;
            relaunch vm
      end
      else begin
        Policy.prim_deopt_tail_call vm site;
        relaunch vm
      end
  (* ---- register-addressed forms (Optimize.fuse_operands) ----
     One dispatch covers the argument staging and the consumer.  The
     staged sequence's originals are retained right after the fused head
     as the deopt landing pad, so the skip widths below are fixed by
     shape (operand count, plus the retained [Branch_false] of the
     branch forms), and the sync pc is the same address the retained
     consumer would sync — an error handler or a deopted call resumes
     exactly as in the unfused stream.  Every slow path that re-enters
     the frame policy first spills the operand values into the frame's
     argument slots, so the frame the policy (or a capture under it)
     observes is byte-identical to the unfused execution's. *)
  | Prim_call1_op (site, a) ->
      sync vm (steps + 1) (pc + 2) acc;
      if (gcell vm site.ps_slot).gval == site.ps_guard then begin
        let stats = vm.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(1) in
        args.(0) <- load_op slots fp acc a;
        let v = site.ps_fn args in
        exec vm instrs slots fp limit (budget - (steps + 1)) v 0 (pc + 2)
      end
      else begin
        ignore
          (Policy.set vm slots fp (site.ps_disp + 2) (load_op slots fp acc a));
        Policy.prim_deopt_call vm site;
        relaunch vm
      end
  | Prim_call2_op (site, a, b) ->
      sync vm (steps + 1) (pc + 3) acc;
      if (gcell vm site.ps_slot).gval == site.ps_guard then begin
        let stats = vm.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(2) in
        args.(0) <- load_op slots fp acc a;
        args.(1) <- load_op slots fp acc b;
        let v = site.ps_fn args in
        exec vm instrs slots fp limit (budget - (steps + 1)) v 0 (pc + 3)
      end
      else begin
        let v1 = load_op slots fp acc a in
        let v2 = load_op slots fp acc b in
        let slots = Policy.set vm slots fp (site.ps_disp + 2) v1 in
        ignore (Policy.set vm slots fp (site.ps_disp + 3) v2);
        Policy.prim_deopt_call vm site;
        relaunch vm
      end
  | Prim_branch1_op (site, a, t) ->
      sync vm (steps + 1) (pc + 2) acc;
      if (gcell vm site.ps_slot).gval == site.ps_guard then begin
        let stats = vm.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(1) in
        args.(0) <- load_op slots fp acc a;
        let v = site.ps_fn args in
        exec vm instrs slots fp limit (budget - (steps + 1)) v 0
          (match v with Bool false -> t | _ -> pc + 3)
      end
      else begin
        (* [ps_ret] resumes at the retained [Branch_false] at [pc + 2],
           which re-tests the deopted call's returned value. *)
        ignore
          (Policy.set vm slots fp (site.ps_disp + 2) (load_op slots fp acc a));
        Policy.prim_deopt_call vm site;
        relaunch vm
      end
  | Prim_branch2_op (site, a, b, t) ->
      sync vm (steps + 1) (pc + 3) acc;
      if (gcell vm site.ps_slot).gval == site.ps_guard then begin
        let stats = vm.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(2) in
        args.(0) <- load_op slots fp acc a;
        args.(1) <- load_op slots fp acc b;
        let v = site.ps_fn args in
        exec vm instrs slots fp limit (budget - (steps + 1)) v 0
          (match v with Bool false -> t | _ -> pc + 4)
      end
      else begin
        let v1 = load_op slots fp acc a in
        let v2 = load_op slots fp acc b in
        let slots = Policy.set vm slots fp (site.ps_disp + 2) v1 in
        ignore (Policy.set vm slots fp (site.ps_disp + 3) v2);
        Policy.prim_deopt_call vm site;
        relaunch vm
      end
  | Prim_tail1_op (site, a) -> (
      sync vm (steps + 1) (pc + 2) acc;
      if (gcell vm site.ps_slot).gval == site.ps_guard then begin
        let stats = vm.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(1) in
        args.(0) <- load_op slots fp acc a;
        let v = site.ps_fn args in
        match (if Policy.fast then slots.(fp) else Void) with
        | Retaddr r when fp - r.rdisp + r.rcode.frame_words <= limit ->
            let nfp = fp - r.rdisp in
            vm.code <- r.rcode;
            Policy.set_fp vm nfp;
            exec vm r.rcode.instrs slots nfp limit (budget - (steps + 1)) v 0
              r.rpc
        | _ ->
            vm.acc <- v;
            Policy.do_return vm;
            relaunch vm
      end
      else begin
        ignore
          (Policy.set vm slots fp (site.ps_disp + 2) (load_op slots fp acc a));
        Policy.prim_deopt_tail_call vm site;
        relaunch vm
      end)
  | Prim_tail2_op (site, a, b) -> (
      sync vm (steps + 1) (pc + 3) acc;
      if (gcell vm site.ps_slot).gval == site.ps_guard then begin
        let stats = vm.stats in
        if stats.Stats.enabled then begin
          stats.Stats.prim_calls <- stats.Stats.prim_calls + 1;
          stats.Stats.prim_fast <- stats.Stats.prim_fast + 1
        end;
        let args = vm.scratch.(2) in
        args.(0) <- load_op slots fp acc a;
        args.(1) <- load_op slots fp acc b;
        let v = site.ps_fn args in
        match (if Policy.fast then slots.(fp) else Void) with
        | Retaddr r when fp - r.rdisp + r.rcode.frame_words <= limit ->
            let nfp = fp - r.rdisp in
            vm.code <- r.rcode;
            Policy.set_fp vm nfp;
            exec vm r.rcode.instrs slots nfp limit (budget - (steps + 1)) v 0
              r.rpc
        | _ ->
            vm.acc <- v;
            Policy.do_return vm;
            relaunch vm
      end
      else begin
        let v1 = load_op slots fp acc a in
        let v2 = load_op slots fp acc b in
        let slots = Policy.set vm slots fp (site.ps_disp + 2) v1 in
        ignore (Policy.set vm slots fp (site.ps_disp + 3) v2);
        Policy.prim_deopt_tail_call vm site;
        relaunch vm
      end)
  | Return_op a -> (
      (* Fused producer + [Return]: the returned value comes from the
         operand, never from [acc].  Same fast/slow split as [Return];
         the retained [Return] sits at [pc + 1]. *)
      let v = load_op slots fp acc a in
      match (if Policy.fast then slots.(fp) else Void) with
      | Retaddr r when fp - r.rdisp + r.rcode.frame_words <= limit ->
          let nfp = fp - r.rdisp in
          vm.code <- r.rcode;
          Policy.set_fp vm nfp;
          let stats = vm.stats in
          if stats.Stats.enabled then
            stats.Stats.instrs <- stats.Stats.instrs + steps + 1;
          if vm.fuel >= 0 then vm.fuel <- vm.fuel - (steps + 1);
          exec vm r.rcode.instrs slots nfp limit (budget - (steps + 1)) v 0
            r.rpc
      | _ ->
          sync vm (steps + 1) (pc + 2) v;
          Policy.do_return vm;
          relaunch vm)

(* Re-establish the cached landing state from [vm] after a control
   transfer and continue executing (or stop, when the transfer halted the
   machine).  The entry-pc bounds check here is what licences the
   [unsafe_get] fetch inside the landing. *)
and relaunch (vm : Policy.t) =
  if not vm.halted then begin
    let instrs = vm.code.instrs in
    let pc = vm.pc in
    if pc < 0 || pc >= Array.length instrs then
      Values.err "vm: corrupt return address (pc out of range)" [];
    exec vm instrs (Policy.slots vm) (Policy.frame_base vm) (Policy.limit vm)
      (if vm.fuel < 0 then max_int else vm.fuel)
      vm.acc 0 pc
  end

(* One hoisted exception frame per handled error, instead of a
   per-instruction [try ... with].  The handler branch of
   [match ... with exception] is outside the protected region, so the
   recursive call is a tail call: handling N errors takes O(1) stack. *)
let rec run_loop (vm : Policy.t) =
  match relaunch vm with
  | () -> ()
  | exception (Scheme_error (msg, irritants) as exn) -> (
      match Engine.pop_error_handler vm with
      | Some h ->
          Policy.inject_error_handler vm h msg irritants;
          run_loop vm
      | None -> raise exn)

let run ?(fuel = -1) (vm : Policy.t) code =
  Policy.init_run vm code;
  vm.code <- code;
  vm.pc <- 0;
  vm.nargs <- 0;
  vm.acc <- Void;
  vm.halted <- false;
  vm.fuel <- fuel;
  vm.winders <- [];
  (* Route the process-shared timer/output prims at this machine for the
     extent of the run (restored on exit, so nested runs unwind). *)
  Machine_hooks.with_hooks vm.hooks (fun () -> run_loop vm);
  vm.acc

let run_program ?fuel (vm : Policy.t) codes =
  List.fold_left (fun _ code -> run ?fuel vm code) Void codes

let eval ?fuel ?optimize ?peephole ?regalloc ?verify (vm : Policy.t) src =
  run_program ?fuel vm
    (Compiler.compile_string ?optimize ?peephole ?regalloc ?verify
       ~hygiene:vm.hygiene ~menv:vm.menv vm.globals src)

(* Per-form entry point: one already-read top-level datum, so drivers
   can attribute failures to the datum's source position. *)
let eval_datum ?fuel ?optimize ?peephole ?regalloc ?verify (vm : Policy.t) d =
  run_program ?fuel vm
    (Compiler.compile_datum ?optimize ?peephole ?regalloc ?verify
       ~hygiene:vm.hygiene ~menv:vm.menv vm.globals d)
