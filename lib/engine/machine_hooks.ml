(* Per-domain machine hooks.

   Every primitive value is a process-shared module-level constant (so
   the inline-cache guards [ps_guard == gval] hold across sessions that
   share compiled code, e.g. the prelude image), but a handful of
   primitives need the *running machine*: the preemption-timer trio
   ([%set-timer!]/[%get-timer]/[%par-switch!]) and the six primitives
   that write or read the session's output buffer.  Those read the
   current machine through this domain-local record, installed by each
   backend's [run] (and the oracle's [eval]) for the dynamic extent of
   the run and restored on exit, so nested runs — eval inside eval, a
   prelude load inside session setup — unwind correctly.  Domain-local
   storage keeps pool shards on separate domains fully independent. *)

type t = {
  mutable set_timer : int -> Rt.value -> unit;
  mutable get_timer : unit -> int;
  mutable par_switch : unit -> unit;
  mutable out : unit -> Buffer.t;
}

(* The dormant defaults match the oracle's historical timer semantics
   (no preemption: set is a no-op, get reads 0) and give output prims a
   per-instance scratch buffer nobody observes. *)
let default () =
  let buf = Buffer.create 16 in
  {
    set_timer = (fun _ _ -> ());
    get_timer = (fun () -> 0);
    par_switch = (fun () -> ());
    out = (fun () -> buf);
  }

let key : t Domain.DLS.key = Domain.DLS.new_key default

let current () = Domain.DLS.get key

(* Install [h] for the extent of [f], restoring the previous hooks even
   on exceptions (machine errors propagate through here). *)
let with_hooks h f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key h;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
