open Rt

(* The execution engine shared by the stack VM ({!Vm}) and the heap VM
   ({!Heapvm}).  Everything a bytecode interpreter needs that does not
   depend on the control representation lives here:

   - the machine record ['p vm], polymorphic in the frame-policy state
     ['p] (the segmented-stack machine {!Control.t}, or the heap VM's
     current-frame cell);
   - machine construction ({!create}): primitive installation, the
     per-machine timer accessors, the pure-prim scratch buffers;
   - the small helpers of the dispatch loop (argument collection,
     argument blits, multiple-values construction);
   - the winder-chain planner {!wind_plan}, the one chain-walk both
     trampolines (and the oracle's CPS mirror) execute.

   The dispatch loop itself lives in [engine_core.ml] — a template
   concatenated by a dune rule under [module Policy = ...] into each
   backend library, so every instruction handler is written once but
   compiled per policy with the policy's operations statically known
   (include-style instantiation; a functor would put an indirection on
   every hot-path policy call). *)

type 'p vm = {
  globals : Globals.t;
  menv : Macro.menv;
  mutable hygiene : bool; (* the expander's hygiene switch for this session *)
  out : Buffer.t;
  stats : Stats.t;
  mutable acc : value;
  mutable code : code;
  mutable pc : int;
  mutable nargs : int;
  mutable timer : int;
  mutable timer_handler : value;
  mutable halted : bool;
  mutable fuel : int; (* negative = unlimited *)
  mutable winders : winder list;
      (* native dynamic-wind chain, innermost first; shares structure
         with the winder snapshots of captured continuations, so
         rewind/unwind targets compare by physical equality *)
  scratch : value array array;
      (* scratch.(k), k <= max_scratch, is a reusable length-k argument
         buffer for pure-primitive application: no per-call Array.init.
         Safe because no pure primitive retains its argument array and
         pure primitives never re-enter the VM. *)
  hooks : Machine_hooks.t;
      (* this machine's timer/output hooks; installed domain-locally by
         [run] for the extent of every run, so the process-shared prims
         reach this vm's state *)
  pol : 'p; (* frame-policy state: the control representation *)
}

exception Vm_fuel_exhausted

let max_scratch = 8

let halt_code =
  Bytecode.make_code ~name:"%halt" ~arity:(Exactly 0) ~frame_words:2 [| Halt |]

let create ?stats pol =
  let out = Buffer.create 256 in
  let globals = Globals.create () in
  Prims.install globals;
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let vm =
    {
      globals;
      menv = Macro.create_menv ();
      hygiene = true;
      out;
      stats;
      acc = Void;
      code = halt_code;
      pc = 0;
      nargs = 0;
      timer = -1;
      timer_handler = Void;
      halted = false;
      fuel = -1;
      winders = [];
      scratch = Array.init (max_scratch + 1) (fun k -> Array.make k Void);
      hooks = Machine_hooks.default ();
      pol;
    }
  in
  (* Point this machine's hook record at its own state.  The timer
     accessors, the fiber-switch counter and the output sink are
     per-machine state behind process-shared [Pure] prims (applied
     in-line, no frame, eligible for primitive-call fusion — the
     scheduler re-arms the timer once per context switch, which made a
     special-call round trip measurable hot-path overhead in e2); the
     prims reach the running vm through {!Machine_hooks.current}. *)
  vm.hooks.Machine_hooks.set_timer <-
    (fun ticks handler ->
      vm.timer_handler <- handler;
      vm.timer <- (if ticks <= 0 then -1 else ticks));
  vm.hooks.Machine_hooks.get_timer <- (fun () -> max vm.timer 0);
  vm.hooks.Machine_hooks.par_switch <-
    (fun () ->
      if stats.enabled then stats.par_switches <- stats.par_switches + 1);
  vm.hooks.Machine_hooks.out <- (fun () -> vm.out);
  vm

let stats vm = vm.stats
let globals vm = vm.globals
let output vm = Buffer.contents vm.out

(* ------------------------------------------------------------------ *)
(* Dispatch-loop helpers                                               *)
(* ------------------------------------------------------------------ *)

(* Collect [nargs] argument values starting at [slots.(base)] into a
   reusable scratch buffer (falling back to a fresh array for rare
   high-arity calls). *)
let prim_args vm slots base nargs =
  if nargs <= max_scratch then begin
    let args = vm.scratch.(nargs) in
    for i = 0 to nargs - 1 do
      Array.unsafe_set args i slots.(base + i)
    done;
    args
  end
  else Array.init nargs (fun i -> slots.(base + i))

(* Move [n] argument slots within one slot array ([dst] strictly below
   [src], so an ascending copy is safe).  Small counts dominate; avoid
   the [caml_array_blit] call for them. *)
let[@inline] blit_args slots src dst n =
  if n = 1 then slots.(dst) <- slots.(src)
  else if n = 2 then begin
    slots.(dst) <- slots.(src);
    slots.(dst + 1) <- slots.(src + 1)
  end
  else if n > 0 then Array.blit slots src slots dst n

(* Build [slots.(base) :: ... :: slots.(base + i) :: acc] without an
   intermediate array (multiple-values construction). *)
let rec collect_list slots base i acc =
  if i < 0 then acc
  else collect_list slots base (i - 1) (slots.(base + i) :: acc)

let empty_mvals = Mvals []

(* ------------------------------------------------------------------ *)
(* Error-handler injection                                             *)
(* ------------------------------------------------------------------ *)

(* Runtime errors unwind to Scheme when a handler is installed: the VM
   pops the head of the %error-handlers list and calls it with the
   message and irritants at the point of the error (handlers normally
   escape through a continuation; if one returns, its value becomes the
   value of the faulting operation). *)
let pop_error_handler vm =
  match Globals.lookup_opt vm.globals "%error-handlers" with
  | Some (Pair p) ->
      let h = p.car in
      Globals.define vm.globals "%error-handlers" p.cdr;
      Some h
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The winder-chain planner                                            *)
(* ------------------------------------------------------------------ *)

(* One step of the dynamic-wind trampoline, as pure chain arithmetic.
   The chains share structure (the winder list is a stack), so the
   common tail is found by physical equality after length alignment.
   Ordering matches the prelude's [%do-winds] protocol exactly: an
   unwind pops the machine chain *before* running the after thunk
   (innermost first); a rewind runs the before thunk first and commits
   the chain node only when it returns (outermost first) — [Rewind]
   therefore carries the node to commit, not a chain to install now.
   Both trampolines (stack wind frames, heap driver frames) and the
   oracle's CPS [do_winds] consume this plan. *)
type wind_step =
  | Wind_done
  | Unwind of winder * winder list (* run [w_after]; chain already popped *)
  | Rewind of winder * winder list (* run [w_before]; commit node after *)

let wind_plan cur target =
  if cur == target then Wind_done
  else begin
    let rec drop n l = if n <= 0 then l else drop (n - 1) (List.tl l) in
    let lc = List.length cur and lt = List.length target in
    let rec common a b = if a == b then a else common (List.tl a) (List.tl b) in
    let base =
      common
        (if lc > lt then drop (lc - lt) cur else cur)
        (if lt > lc then drop (lt - lc) target else target)
    in
    if cur != base then
      match cur with
      | w :: rest -> Unwind (w, rest)
      | [] -> assert false
    else
      (* Rewind: the next extent to enter is the node of [target] whose
         tail is the current chain. *)
      let rec find l =
        match l with
        | w :: rest when rest == cur -> (w, l)
        | _ :: rest -> find rest
        | [] -> assert false
      in
      let w, node = find target in
      Rewind (w, node)
  end
