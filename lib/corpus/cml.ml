(* A small CML-flavoured concurrency library over one-shot continuations —
   the application area the paper's introduction calls out (thread systems
   for GUIs; Reppy's CML is citation [21]).

   Everything is user-level Scheme on the preemptive scheduler of
   threads.ml: [spawn] adds a thread; synchronous [channel]s block senders
   and receivers by parking their one-shot continuations in the channel's
   queues; [mailbox]es are asynchronous; [cml-select] takes whichever of
   several channels is ready first.  Parking and resuming a thread costs
   one call/1cc capture and one invocation: a segment swap each way, no
   copying. *)

let source =
  {scheme|
;; ---------------------------------------------------------------------
;; Spawning onto the running scheduler
;; ---------------------------------------------------------------------

;; Add a thread to the ready queue of the scheduler in threads.ml.  Must
;; be called from inside (run-threads ...) -- typically from the initial
;; thread.
(define (spawn thunk)
  ;; One-argument wrapper: see the ready-queue protocol in threads.ml.
  (%tq-push! (lambda (ignored) (thunk) (%thread-done))))

;; Yield the processor voluntarily.
(define (yield)
  (%thread-capture
   (lambda (k)
     (%tq-push! k)
     (%thread-next))))

;; Park the current thread: capture it one-shot, hand the continuation to
;; [register!] (which stores it somewhere), and run the next thread.
(define (%park! register!)
  (%thread-capture
   (lambda (k)
     (register! k)
     (%thread-next))))

;; ---------------------------------------------------------------------
;; Synchronous channels
;; ---------------------------------------------------------------------

;; channel = #(channel senders receivers) where senders is a list of
;; (value . k) of blocked senders and receivers a list of blocked ks.

(define (make-channel) (vector 'channel '() '()))

(define (channel? c)
  (and (vector? c) (= (vector-length c) 3) (eq? (vector-ref c 0) 'channel)))

(define (%chan-senders c) (vector-ref c 1))
(define (%chan-receivers c) (vector-ref c 2))
(define (%chan-set-senders! c v) (vector-set! c 1 v))
(define (%chan-set-receivers! c v) (vector-set! c 2 v))

(define (%take-last! getf putf)
  ;; FIFO: waiters are consed on, so take from the far end.
  (let ((l (getf)))
    (let ((last (last-pair l)))
      (if (eq? l last)
          (begin (putf '()) (car last))
          (let trim ((l l))
            (if (eq? (cdr l) last)
                (begin (set-cdr! l '()) (car last))
                (trim (cdr l))))))))

;; Send v on c; blocks until a receiver takes it.  The queue check and
;; the dequeue must not be separated by a preemption (another thread
;; could drain the queue in between), so the whole operation is critical.
(define (channel-send c v)
  (%critical
   (lambda ()
     (if (null? (%chan-receivers c))
         ;; no receiver: park with the value
         (%park!
          (lambda (k)
            (%chan-set-senders! c (cons (cons v k) (%chan-senders c)))))
         ;; receiver waiting: wake it with the value, keep running
         (let ((rk (%take-last! (lambda () (%chan-receivers c))
                                (lambda (l) (%chan-set-receivers! c l)))))
           (%tq-push! (lambda (ignored) (rk v)))
           #t)))))

;; Receive from c; blocks until a sender provides a value.
(define (channel-recv c)
  (%critical
   (lambda ()
     (if (null? (%chan-senders c))
         (%park!
          (lambda (k)
            (%chan-set-receivers! c (cons k (%chan-receivers c)))))
         (let ((entry (%take-last! (lambda () (%chan-senders c))
                                   (lambda (l) (%chan-set-senders! c l)))))
           ;; wake the sender, deliver its value here
           (%tq-push! (cdr entry))
           (car entry))))))

;; Nondestructive readiness tests.
(define (channel-ready-to-recv? c) (not (null? (%chan-senders c))))
(define (channel-ready-to-send? c) (not (null? (%chan-receivers c))))

;; Take from whichever channel has a sender ready, yielding until one has
;; (a simplified CML select over receive events).
(define (cml-select channels)
  (let loop ()
    (let ((hit (%critical
                (lambda ()
                  (let scan ((cs channels))
                    (cond ((null? cs) #f)
                          ((channel-ready-to-recv? (car cs))
                           (cons (car cs) (channel-recv (car cs))))
                          (else (scan (cdr cs)))))))))
      (if hit hit (begin (yield) (loop))))))

;; ---------------------------------------------------------------------
;; Asynchronous mailboxes
;; ---------------------------------------------------------------------

;; mailbox = #(mailbox messages blocked-receivers)

(define (make-mailbox) (vector 'mailbox '() '()))

(define (mailbox? m)
  (and (vector? m) (= (vector-length m) 3) (eq? (vector-ref m 0) 'mailbox)))

(define (mailbox-post! m v)
  (%critical
   (lambda ()
     (if (null? (vector-ref m 2))
         (vector-set! m 1 (cons v (vector-ref m 1)))
         (let ((rk (%take-last! (lambda () (vector-ref m 2))
                                (lambda (l) (vector-set! m 2 l)))))
           (%tq-push! (lambda (ignored) (rk v))))))))

(define (mailbox-take m)
  (%critical
   (lambda ()
     (if (null? (vector-ref m 1))
         (%park! (lambda (k) (vector-set! m 2 (cons k (vector-ref m 2)))))
         (%take-last! (lambda () (vector-ref m 1))
                      (lambda (l) (vector-set! m 1 l)))))))

(define (mailbox-empty? m) (null? (vector-ref m 1)))
|scheme}
