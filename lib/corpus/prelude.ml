(* The Scheme-level runtime library, loaded into a machine before user
   code.  Everything here is plain Scheme over the machine primitives:

   - [call-with-values] over the [values]-carrier protocol;
   - [dynamic-wind] and the [call/cc]/[call/1cc] wrappers, in two
     interchangeable variants: the default binds them to the native
     winder protocol ([%dynamic-wind] and the wind-aware capture
     operators), while [source_scheme_winders] carries the historical
     Scheme-level winder list (Chez-style [%winders]/[%do-winds]) used
     as the differential-testing reference;
   - the usual list/vector library procedures;
   - engines in the Dybvig-Hieb construction over the VM timer and
     [%call/1cc]. *)

let head =
  {scheme|
;; ---------------------------------------------------------------------
;; Multiple values
;; ---------------------------------------------------------------------

(define (call-with-values producer consumer)
  (apply consumer (%values->list (producer))))
|scheme}

(* Native winders: the machine maintains the winder chain, the capture
   operators snapshot it, and continuation invocation runs the
   unwind/rewind trampoline itself — so the wrappers are the raw
   operators and capture allocates no wrapper closures. *)
let winders_native =
  {scheme|
;; ---------------------------------------------------------------------
;; dynamic-wind and continuation wrappers (native winder protocol)
;; ---------------------------------------------------------------------

(define dynamic-wind %dynamic-wind)
(define call/cc %call/cc)
(define call-with-current-continuation %call/cc)
(define call/1cc %call/1cc)
|scheme}

(* Scheme-level winders: the pre-native implementation, kept as the
   semantic reference for differential testing ([--scheme-winders]).
   With this variant the machines' native winder chains stay empty, so
   continuation invocation always takes its direct fast path. *)
let winders_scheme =
  {scheme|
;; ---------------------------------------------------------------------
;; dynamic-wind and continuation wrappers (Scheme-level winder list)
;; ---------------------------------------------------------------------

(define %winders '())

(define (%common-tail x y)
  (let ((lx (length x)) (ly (length y)))
    (let loop ((x (if (> lx ly) (list-tail x (- lx ly)) x))
               (y (if (> ly lx) (list-tail y (- ly lx)) y)))
      (if (eq? x y) x (loop (cdr x) (cdr y))))))

(define (%do-winds to)
  (let ((tail (%common-tail %winders to)))
    ;; unwind: run the after-thunks of winders being exited, inner first
    (let unwind ((l %winders))
      (if (eq? l tail)
          #f
          (begin
            (set! %winders (cdr l))
            ((cdar l))
            (unwind (cdr l)))))
    ;; rewind: run the before-thunks of winders being entered, outer first
    (let rewind ((l to))
      (if (eq? l tail)
          #f
          (begin
            (rewind (cdr l))
            ((caar l))
            (set! %winders l))))))

(define (dynamic-wind before thunk after)
  (before)
  (set! %winders (cons (cons before after) %winders))
  (call-with-values thunk
    (lambda results
      (set! %winders (cdr %winders))
      (after)
      (apply values results))))

(define (call/cc p)
  (let ((saved %winders))
    (%call/cc
     (lambda (k)
       (p (lambda vals
            (if (eq? %winders saved) #f (%do-winds saved))
            (apply k vals)))))))

(define call-with-current-continuation call/cc)

(define (call/1cc p)
  (let ((saved %winders))
    (%call/1cc
     (lambda (k)
       (p (lambda vals
            (if (eq? %winders saved) #f (%do-winds saved))
            (apply k vals)))))))
|scheme}

let tail =
  {scheme|
;; ---------------------------------------------------------------------
;; List library
;; ---------------------------------------------------------------------

(define (%map1 f l)
  (if (null? l) '() (cons (f (car l)) (%map1 f (cdr l)))))

(define (map f . ls)
  (if (null? (cdr ls))
      (%map1 f (car ls))
      (let loop ((ls ls))
        (if (null? (car ls))
            '()
            (cons (apply f (%map1 car ls))
                  (loop (%map1 cdr ls)))))))

(define (for-each f . ls)
  (if (null? (cdr ls))
      (let loop ((l (car ls)))
        (if (null? l)
            (void)
            (begin (f (car l)) (loop (cdr l)))))
      (let loop ((ls ls))
        (if (null? (car ls))
            (void)
            (begin
              (apply f (%map1 car ls))
              (loop (%map1 cdr ls)))))))

(define (filter pred l)
  (cond ((null? l) '())
        ((pred (car l)) (cons (car l) (filter pred (cdr l))))
        (else (filter pred (cdr l)))))

(define (fold-left f acc l)
  (if (null? l) acc (fold-left f (f acc (car l)) (cdr l))))

(define (fold-right f init l)
  (if (null? l) init (f (car l) (fold-right f init (cdr l)))))

(define (list-copy l) (%map1 (lambda (x) x) l))

(define (last-pair l)
  (if (pair? (cdr l)) (last-pair (cdr l)) l))

(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))

(define (list-index pred l)
  (let loop ((l l) (i 0))
    (cond ((null? l) #f)
          ((pred (car l)) i)
          (else (loop (cdr l) (+ i 1))))))

(define (remove pred l) (filter (lambda (x) (not (pred x))) l))

(define (cadar l) (car (cdr (car l))))
(define (cddar l) (cdr (cdr (car l))))
(define (cdddr l) (cdr (cdr (cdr l))))
(define (cadddr l) (car (cdddr l)))

;; ---------------------------------------------------------------------
;; Vector library
;; ---------------------------------------------------------------------

(define (vector-map f v)
  (let* ((n (vector-length v)) (out (make-vector n 0)))
    (let loop ((i 0))
      (if (= i n)
          out
          (begin (vector-set! out i (f (vector-ref v i)))
                 (loop (+ i 1)))))))

(define (vector-for-each f v)
  (let ((n (vector-length v)))
    (let loop ((i 0))
      (if (= i n)
          (void)
          (begin (f (vector-ref v i)) (loop (+ i 1)))))))

(define (string-copy s) (substring s 0 (string-length s)))

;; ---------------------------------------------------------------------
;; Error handling over one-shot continuations.
;;
;; The VM delivers a runtime error (or a call to [error]) to the head of
;; %error-handlers, popping it first so a failing handler defers outward.
;; call-with-error-handler installs a handler that escapes to the call
;; site through a one-shot continuation, running dynamic-wind exits on
;; the way; its value becomes the value of the whole expression.
;; ---------------------------------------------------------------------

(define %error-handlers '())

(define (call-with-error-handler handler thunk)
  (call/1cc
   (lambda (k)
     (let ((saved %error-handlers))
       (dynamic-wind
         (lambda ()
           (set! %error-handlers
                 (cons (lambda (msg irritants) (k (handler msg irritants)))
                       saved)))
         thunk
         (lambda () (set! %error-handlers saved)))))))

;; (try thunk on-error): run thunk; on any error, return (on-error msg).
(define (try thunk on-error)
  (call-with-error-handler (lambda (msg irritants) (on-error msg)) thunk))

;; ---------------------------------------------------------------------
;; Promises (R5RS delay/force; delay expands to (%make-promise (lambda () e)))
;; ---------------------------------------------------------------------

(define (%make-promise thunk)
  (let ((done #f) (value #f))
    (vector '%promise
            (lambda ()
              (if done
                  value
                  (let ((v (thunk)))
                    ;; re-entrant force: first result wins (R5RS)
                    (if done
                        value
                        (begin (set! value v) (set! done #t) value))))))))

(define (promise? p)
  (and (vector? p) (= (vector-length p) 2) (eq? (vector-ref p 0) '%promise)))

(define (force p)
  (if (promise? p) ((vector-ref p 1)) p))

;; ---------------------------------------------------------------------
;; String output capture
;; ---------------------------------------------------------------------

(define (with-output-to-string thunk)
  (let ((mark (%output-mark)))
    (thunk)
    (%output-take mark)))

;; ---------------------------------------------------------------------
;; Sorting (stable merge sort)
;; ---------------------------------------------------------------------

(define (%merge less? a b)
  (cond ((null? a) b)
        ((null? b) a)
        ((less? (car b) (car a)) (cons (car b) (%merge less? a (cdr b))))
        (else (cons (car a) (%merge less? (cdr a) b)))))

(define (sort less? l)
  (define (split l)
    (if (or (null? l) (null? (cdr l)))
        (cons l '())
        (let ((rest (split (cddr l))))
          (cons (cons (car l) (car rest))
                (cons (cadr l) (cdr rest))))))
  (if (or (null? l) (null? (cdr l)))
      l
      (let ((halves (split l)))
        (%merge less? (sort less? (car halves)) (sort less? (cdr halves))))))

(define (list-sort less? l) (sort less? l))

;; ---------------------------------------------------------------------
;; Engines (Dybvig & Hieb, "Engines from continuations", 1989), built on
;; the VM timer and one-shot continuations.  An engine is a procedure
;; (engine ticks complete expire):
;;   - if the computation finishes within [ticks] procedure calls,
;;     (complete remaining-ticks value) is tail-called;
;;   - otherwise (expire new-engine) is tail-called, where new-engine
;;     continues the computation.
;; Nested engines share the single VM timer (no tick virtualization).
;; ---------------------------------------------------------------------

(define %engine-escape #f)

;; Both escape paths reach %engine-escape with the timer already
;; disarmed, so the timer can never fire inside the engine machinery
;; itself (a fire there would capture a continuation that replays the
;; escape and double-uses it).  The argument is (payload . remaining).

(define (%engine-handler)
  ;; The timer just expired (and so is disarmed): capture the rest of the
  ;; computation as a one-shot continuation and escape to the scheduler.
  (%call/1cc (lambda (resume) (%engine-escape (cons resume 0)))))

(define (%make-engine start)
  (lambda (ticks complete expire)
    (if (<= ticks 0) (error 'engine "ticks must be positive" ticks))
    (let ((result
           (%call/1cc
            (lambda (escape)
              (let ((parent %engine-escape))
                (set! %engine-escape
                      (lambda (x)
                        (set! %engine-escape parent)
                        (escape x)))
                (%set-timer! ticks %engine-handler)
                ;; Resuming a suspended engine is a continuation
                ;; invocation (no timer tick), so even 1-tick slices
                ;; make progress.
                (if (%continuation? start) (start #f) (start))
                (error 'engine "engine computation returned unexpectedly"))))))
      (let ((x (car result)) (remaining (cdr result)))
        (if (and (pair? x) (eq? (car x) '%engine-done))
            (complete remaining (cdr x))
            (expire (%make-engine x)))))))

(define (make-engine thunk)
  (%make-engine
   (lambda ()
     ;; Bind the value first: %engine-escape must be read AFTER the thunk
     ;; runs (the engine may be suspended and resumed inside it, replacing
     ;; the escape procedure).  Freeze the clock before touching the
     ;; engine machinery.
     (let ((v (thunk)))
       (let ((remaining (%get-timer)))
         (%set-timer! 0 %engine-handler)
         (%engine-escape (cons (cons '%engine-done v) remaining)))))))

;; Run an engine to completion, restarting it with [ticks] until done.
(define (engine-run-to-completion ticks engine)
  (engine ticks
          (lambda (remaining value) value)
          (lambda (next) (engine-run-to-completion ticks next))))
|scheme}

let source = head ^ winders_native ^ tail
let source_scheme_winders = head ^ winders_scheme ^ tail
