(* The three thread systems of the paper's Figure 5, as user-level Scheme:

   - a preemptive round-robin scheduler whose context switch captures the
     running thread with a configurable operator (call/cc or call/1cc),
     driven by the VM timer (one tick per procedure call);
   - a continuation-passing-style system in which every control point is a
     heap-allocated closure, "simulating a heap-based representation of
     control" — switching is O(1) but every call allocates.

   The schedulers deliberately use the raw capture operators: there is no
   dynamic-wind state to adjust, which matches the thread systems the
   paper measures. *)

let scheduler =
  {scheme|
;; ---------------------------------------------------------------------
;; FIFO ready queue (two-list functional queue, mutated in place)
;; ---------------------------------------------------------------------

(define %tq-front '())
(define %tq-back '())

(define (%tq-reset!)
  (set! %tq-front '())
  (set! %tq-back '()))

(define (%tq-empty?)
  (and (null? %tq-front) (null? %tq-back)))

(define (%tq-push! x)
  (set! %tq-back (cons x %tq-back)))

(define (%tq-pop!)
  (if (null? %tq-front)
      (begin (set! %tq-front (reverse %tq-back))
             (set! %tq-back '())))
  (let ((x (car %tq-front)))
    (set! %tq-front (cdr %tq-front))
    x))

;; ---------------------------------------------------------------------
;; Preemptive scheduler over a capture operator
;; ---------------------------------------------------------------------

(define %thread-capture #f)   ; %call/cc or %call/1cc
(define %thread-freq 0)       ; procedure calls per time slice
(define %thread-exit #f)

;; The context-switch path below is the hot loop of experiment e2: at
;; freq=1 it runs once per workload procedure call.  It is written
;; closure-free — the capture receiver is a top-level procedure rather
;; than a per-switch (lambda (k) ...), and the ready-queue operations
;; are inlined — so a switch costs no allocation beyond the capture
;; itself and a minimal number of procedure calls.  The %tq-* procedures
;; above remain the queue interface for everything that is not the
;; switch path (thread startup, channels, user code).

(define (%thread-enqueue-and-next k)
  ;; Enqueue the preempted thread, then pop-and-resume inline (the body
  ;; of %thread-next, duplicated here to keep the switch at two
  ;; procedure calls: this receiver and nothing else).  The queue has at
  ;; least [k] in it, so no empty check is needed.
  (set! %tq-back (cons k %tq-back))
  (if (null? %tq-front)
      (begin (set! %tq-front (reverse %tq-back))
             (set! %tq-back '())))
  (let ((f %tq-front))
    (set! %tq-front (cdr f))
    (%set-timer! %thread-freq %thread-handler)
    ((car f) #f)))

(define (%thread-handler)
  ;; Preemption point: capture the running thread and switch.  The
  ;; captured continuation is enqueued as-is: resuming it is a
  ;; continuation invocation, not a procedure call, so it costs no timer
  ;; tick and a 1-call time slice still makes progress.
  (%thread-capture %thread-enqueue-and-next))

(define (%thread-next)
  ;; Inlined (%tq-empty?) / (%tq-pop!).  When both halves are empty the
  ;; exit continuation escapes, so the pop below only runs with a
  ;; non-empty front list.
  (if (null? %tq-front)
      (if (null? %tq-back)
          (%thread-exit 'all-done)
          (begin (set! %tq-front (reverse %tq-back))
                 (set! %tq-back '()))))
  (let ((t (car %tq-front)))
    (set! %tq-front (cdr %tq-front))
    (%set-timer! %thread-freq %thread-handler)
    (t #f)))

(define (%thread-done)
  (%set-timer! 0 %thread-handler)
  (%thread-next))

;; Run thunk with the timer masked: preemption cannot interleave other
;; threads with its execution.  Used for check-then-act critical sections
;; (channel/mailbox queue manipulation).  If the thunk parks the thread,
;; the scheduler re-arms the timer when something resumes it.
(define (%critical thunk)
  (let ((saved (%get-timer)))
    (%set-timer! 0 %thread-handler)
    (let ((v (thunk)))
      (if (> saved 0) (%set-timer! saved %thread-handler))
      v)))

;; (run-threads thunks freq capture): run every thunk to completion under
;; round-robin preemption every [freq] procedure calls, capturing switched
;; threads with [capture].
;;
;; Ready-queue protocol: every queued item — captured continuation or
;; start-up wrapper — accepts exactly one (ignored) argument, so the
;; switch path resumes with (t #f) and pays no per-switch type dispatch.
(define (run-threads thunks freq capture)
  (set! %thread-capture capture)
  (set! %thread-freq freq)
  (%tq-reset!)
  (for-each
   (lambda (th) (%tq-push! (lambda (ignored) (th) (%thread-done))))
   thunks)
  (%call/1cc
   (lambda (exit)
     (set! %thread-exit exit)
     (%thread-next))))

(define (%repeat n f)
  (if (= n 0) '() (cons (f) (%repeat (- n 1) f))))

;; The Figure 5 workload: [nthreads] threads each computing (fib n).
(define (run-fib-threads nthreads n freq capture)
  (run-threads (%repeat nthreads (lambda () (lambda () (fib n))))
               freq capture))

;; ---------------------------------------------------------------------
;; CPS thread system
;; ---------------------------------------------------------------------

(define %cps-fuel 0)
(define %cps-freq 0)
(define %cps-exit #f)

;; Same closure-free switch-path discipline as the preemptive
;; scheduler: the queue operations are inlined so the three systems of
;; Figure 5 pay comparable scheduler overhead per switch.

(define (%cps-step thunk)
  (if (<= %cps-fuel 0)
      (begin (set! %tq-back (cons thunk %tq-back)) (%cps-next))
      (begin (set! %cps-fuel (- %cps-fuel 1)) (thunk))))

(define (%cps-next)
  (if (null? %tq-front)
      (if (null? %tq-back)
          (%cps-exit 'all-done)
          (begin (set! %tq-front (reverse %tq-back))
                 (set! %tq-back '()))))
  (let ((t (car %tq-front)))
    (set! %tq-front (cdr %tq-front))
    (set! %cps-fuel %cps-freq)
    (t)))

(define (cps-fib n k)
  (%cps-step
   (lambda ()
     (if (< n 2)
         (k n)
         (cps-fib (- n 1)
                  (lambda (a)
                    (cps-fib (- n 2)
                             (lambda (b) (k (+ a b))))))))))

(define (run-cps-fib-threads nthreads n freq)
  (set! %cps-freq freq)
  (%tq-reset!)
  (let loop ((i 0))
    (if (< i nthreads)
        (begin
          (%tq-push! (lambda () (cps-fib n (lambda (r) (%cps-next)))))
          (loop (+ i 1)))))
  (%call/1cc
   (lambda (exit)
     (set! %cps-exit exit)
     (%cps-next))))
|scheme}
