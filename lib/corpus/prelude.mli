(** The Scheme-level runtime library loaded into every session:
    [call-with-values], [dynamic-wind] and the [call/cc]/[call/1cc]
    wrappers, the list/vector/string library, error handling
    ([call-with-error-handler], [try]), promises, sorting, output capture,
    and the Dybvig-Hieb engines over the VM timer. *)

val source : string
(** The default prelude: [dynamic-wind]/[call/cc]/[call/1cc] bound to
    the native winder protocol ([%dynamic-wind] and the wind-aware
    capture operators). *)

val source_scheme_winders : string
(** The same prelude with the historical Scheme-level winder list
    ([%winders]/[%do-winds]/wrapper closures) — the semantic reference
    the native protocol is differentially tested against. *)
