(* The Scheme half of the data-parallel layer (DESIGN.md §15).

   Two groups of definitions, both loaded into every session:

   - the user surface [par-map] / [par-reduce] / [par-for-each], which
     gates on [(%par-jobs)]: 0 means no pool is attached and selects
     the serial fallback, so plain sessions, the oracle, and the worker
     shards themselves (which must never recurse into the pool) all
     degenerate to map/fold-left/for-each;

   - the per-chunk driver [%par-run-chunk] that the pool's workers
     evaluate for each task.  A map/for-each chunk of n items runs as n
     preemptive fibers under the mini-scheduler below — the paper's E2
     round-robin scheduler (threads.ml) specialized to a fixed task
     set: switches are captured with the one-shot operator, the
     preemption point is the fuel timer, and the switch path is
     closure-free.  Each switch is noted in the session's par-switches
     counter through [%par-switch!].  A reduce chunk is a plain
     fold-left (the fold is serial by construction); the cross-chunk
     combine happens in [par-reduce] on the master, so [op] must be
     associative with [init] its identity. *)

let source =
  {scheme|
;; ---------------------------------------------------------------------
;; User surface: gate on (%par-jobs), fall back to the serial library.
;; ---------------------------------------------------------------------

(define (par-map f xs)
  (if (> (%par-jobs) 0)
      (%par-dispatch 'map f xs)
      (map f xs)))

(define (par-for-each f xs)
  (if (> (%par-jobs) 0)
      (begin (%par-dispatch 'for-each f xs) (if #f #f))
      (for-each f xs)))

;; (par-reduce op init xs): op must be associative with init as its
;; identity — each chunk folds (fold-left op init chunk) on its shard,
;; and the per-chunk partials are folded again here, so op sees init
;; once per chunk plus once for the final combine.
(define (par-reduce op init xs)
  (if (> (%par-jobs) 0)
      (fold-left op init (%par-dispatch 'reduce op init xs))
      (fold-left op init xs)))

;; ---------------------------------------------------------------------
;; In-chunk fiber scheduler (workers only).  Same FIFO-queue +
;; closure-free switch discipline as the E2 thread scheduler; the task
;; set is fixed (the chunk's items), each fiber stores its result slot
;; and exits through %par-task-done, and the whole chunk escapes
;; through the one-shot %par-done when the queue drains.
;; ---------------------------------------------------------------------

(define %par-freq 64)      ; procedure calls per fiber time slice
(define %par-qf '())       ; ready queue, front/back lists
(define %par-qb '())
(define %par-done #f)      ; one-shot exit of the running chunk

(define (%par-switch-k k)
  ;; Preempted fiber k goes to the back of the queue; resume the next
  ;; one inline (two procedure calls per switch, no allocation beyond
  ;; the one-shot capture itself).
  (%par-switch!)
  (set! %par-qb (cons k %par-qb))
  (%par-next))

(define (%par-handler)
  (%call/1cc %par-switch-k))

(define (%par-next)
  (if (null? %par-qf)
      (if (null? %par-qb)
          (%par-done #f)
          (begin (set! %par-qf (reverse %par-qb))
                 (set! %par-qb '()))))
  (let ((t (car %par-qf)))
    (set! %par-qf (cdr %par-qf))
    (%set-timer! %par-freq %par-handler)
    (t #f)))

(define (%par-task-done)
  (%set-timer! 0 %par-handler)
  (%par-next))

;; Run (f item) for every element of the items vector as preemptive
;; fibers; the results vector is filled in item order (the order fibers
;; *complete* in depends on preemption, the slots do not).
(define (%par-fibers f items)
  (let* ((n (vector-length items))
         (results (make-vector n #f)))
    (set! %par-qf '())
    (set! %par-qb '())
    (let build ((i (- n 1)))
      (if (>= i 0)
          (begin
            (set! %par-qf
                  (cons (lambda (ignored)
                          (vector-set! results i (f (vector-ref items i)))
                          (%par-task-done))
                        %par-qf))
            (build (- i 1)))))
    (%call/1cc
     (lambda (alldone)
       (set! %par-done alldone)
       (%par-next)))
    results))

;; ---------------------------------------------------------------------
;; Chunk driver.  The pool defines %par-args (vector of chunk items,
;; already rebuilt in this shard's heap) and, for reduce, %par-init,
;; then evaluates (%par-run-chunk 'mode f).  The whole chunk runs under
;; an error handler so a failing task (a) disarms the preemption timer
;; before anything escapes — no stale timer can fire into a dead
;; scheduler on the next chunk — and (b) reports the error in-band as
;; a flat value the pool ships back to the master.
;; ---------------------------------------------------------------------

(define %par-args (vector))
(define %par-init #f)

(define (%par-run-chunk mode f)
  (call-with-error-handler
   (lambda (msg irritants)
     (%set-timer! 0 %par-handler)
     (vector '%par-error msg))
   (lambda ()
     (vector '%par-ok
             (cond ((eq? mode 'map) (%par-fibers f %par-args))
                   ((eq? mode 'for-each)
                    (begin (%par-fibers f %par-args) #t))
                   ((eq? mode 'reduce)
                    (fold-left f %par-init (vector->list %par-args)))
                   (else (error 'par "unknown mode" mode)))))))
|scheme}
