(* Source-level lint over reader output (DESIGN.md §16).

   The pass runs on [Sexp.t] datums — before expansion — because the
   reader is the only layer that carries source positions; the walker
   therefore understands the surface binding forms structurally
   (lambda/let/let*/letrec/named let/do/case-lambda/define) instead of
   reusing [Ast.t], which is position-free.

   Four rule families:

   - [multi-shot-1cc]: a continuation bound by a literal
     [(call/1cc (lambda (k) ...))] (or [%call/1cc]) that is invoked on
     more than one path of the receiver body is a definite shot-record
     error (the paper's one-shot restriction) — reported as an error.
     A continuation that both escapes as a value and is invoked in the
     receiver body is a possible multi-shot — reported as a warning.
     Escape-only captures (the engine/error-handler idiom: the
     continuation is stored and invoked elsewhere, once) and invocations
     inside nested lambdas (whose call counts are unknowable statically)
     are not flagged.

   - [fused-prim-set]: [set!] of a global currently bound to a pure
     primitive deoptimizes every inline-cached call site the peephole
     layer compiled against that binding — legal, but almost always a
     performance bug.  Lexically-bound and program-redefined names are
     exempt.

   - [unused-binding]: a [let]/[let*]/[letrec]/named-let/[do] binding
     that is never referenced.  Lambda parameters are exempt (arity is
     interface, not implementation), as are names starting with [_] or
     [%].

   - [non-flat-par]: a literally quoted argument of [par-map] /
     [par-for-each] / [par-reduce] whose elements (or whose reduce seed)
     are not flat in the {!Flatvalue} sense — dotted pairs being the
     canonical offender — would raise [Not_flat] at the shard boundary
     at runtime; reported as an error at the offending sub-datum. *)

(* Lint reports in the pipeline-wide diagnostic currency (DESIGN.md
   §17): a lint finding is a [Diag.t] whose layer is [Lint] and whose
   [rule] slug names the rule family, rendered by the one shared
   printer. *)
type severity = Diag.severity = Error | Warning
type diagnostic = Diag.t

let to_string = Diag.to_string

(* Standard pure primitives assumed fusable when no global table is
   supplied (matching the prelude's bindings); with [?globals] the
   actual binding is consulted instead. *)
let default_fused =
  [
    "+"; "-"; "*"; "quotient"; "remainder"; "="; "<"; ">"; "<="; ">=";
    "abs"; "zero?"; "not"; "null?"; "eq?"; "eqv?"; "equal?"; "car"; "cdr";
    "cons"; "pair?"; "length"; "list"; "append"; "reverse"; "vector-ref";
    "vector-set!"; "vector-length"; "make-vector"; "vector?"; "vector";
    "string-length"; "string-ref"; "substring"; "string-append"; "symbol?";
    "string?"; "number?"; "procedure?"; "boolean?"; "char?"; "list-tail";
    "memq"; "member"; "assq"; "assoc";
  ]

type var = { v_name : string; v_pos : Sexp.pos; mutable v_used : bool }

type st = {
  mutable diags : diagnostic list;
  globals : Globals.t option;
  redefined : (string, unit) Hashtbl.t; (* toplevel (define name ...) *)
}

let report st pos severity rule message =
  st.diags <- Diag.make ~severity ~rule ~pos Diag.Lint message :: st.diags

let bound env name = List.mem_assoc name env

let use env name =
  match List.assoc_opt name env with Some v -> v.v_used <- true | None -> ()

let new_var name pos = { v_name = name; v_pos = pos; v_used = false }

let exempt name =
  String.length name = 0 || name.[0] = '_' || name.[0] = '%'

let report_unused st vars =
  List.iter
    (fun v ->
      if (not v.v_used) && not (exempt v.v_name) then
        report st v.v_pos Warning "unused-binding"
          (Printf.sprintf "binding %s is never referenced" v.v_name))
    vars

let fused_prim st name =
  match st.globals with
  | Some g -> (
      match Globals.lookup_opt g name with
      | Some (Rt.Prim { Rt.pfn = Rt.Pure _; _ }) -> true
      | _ -> false)
  | None -> List.mem name default_fused

(* ---------------- flatness of quoted literals ---------------- *)

(* First non-flat sub-datum, if any: dotted pairs are the only reader
   datum outside the {!Flatvalue} wire subset (symbols, numbers,
   strings, booleans, characters, and proper lists / vectors of flat
   data all travel). *)
let rec non_flat (d : Sexp.t) : Sexp.t option =
  match d with
  | Sexp.Sym _ | Sexp.Int _ | Sexp.Float _ | Sexp.Str _ | Sexp.Bool _
  | Sexp.Char _ ->
      None
  | Sexp.List (items, _) | Sexp.Vec (items, _) -> List.find_map non_flat items
  | Sexp.Dotted _ -> Some d

let check_par_items st op (arg : Sexp.t) =
  match arg with
  | Sexp.List ([ Sexp.Sym ("quote", _); d ], _) -> (
      match d with
      | Sexp.List (items, _) -> (
          match List.find_map non_flat items with
          | Some bad ->
              report st (Sexp.pos_of bad) Error "non-flat-par"
                (Printf.sprintf
                   "quoted argument of %s contains the non-flat datum %s, \
                    which cannot cross the par shard boundary"
                   op (Sexp.to_string bad))
          | None -> ())
      | _ ->
          report st (Sexp.pos_of d) Error "non-flat-par"
            (Printf.sprintf "quoted argument of %s is not a proper list" op))
  | _ -> ()

let check_par_seed st op (arg : Sexp.t) =
  match arg with
  | Sexp.List ([ Sexp.Sym ("quote", _); d ], _) -> (
      match non_flat d with
      | Some bad ->
          report st (Sexp.pos_of bad) Error "non-flat-par"
            (Printf.sprintf
               "quoted %s seed contains the non-flat datum %s, which cannot \
                cross the par shard boundary"
               op (Sexp.to_string bad))
      | None -> ())
  | _ -> ()

(* ---------------- one-shot continuation analysis ---------------- *)

(* Count definite invocations of [k] in the receiver body: sequences
   add, exclusive conditional arms take the maximum, loop bodies count
   like straight-line code (a direct invocation aborts the loop, so
   iteration cannot re-reach it), nested lambdas contribute nothing
   (their call counts are unknown).  Any appearance of [k] outside
   operator position marks it escaped.  Counts saturate at 2. *)
let analyze_k kname body =
  let escaped = ref false in
  let cap n = min n 2 in
  let rec counts depth ds = cap (List.fold_left (fun a d -> a + count depth d) 0 ds)
  and count depth (d : Sexp.t) =
    match d with
    | Sexp.Sym (n, _) when String.equal n kname ->
        escaped := true;
        0
    | Sexp.Sym _ | Sexp.Int _ | Sexp.Float _ | Sexp.Str _ | Sexp.Bool _
    | Sexp.Char _ | Sexp.Vec _ | Sexp.Dotted _ ->
        0
    | Sexp.List ([], _) -> 0
    | Sexp.List (Sexp.Sym (head, _) :: rest, _) -> special depth head rest d
    | Sexp.List (items, _) -> counts depth items
  (* Does this binder list rebind [kname]?  If so the subtree below it
     refers to a different variable. *)
  and rebinds names = List.exists (String.equal kname) names
  and formals_names = function
    | Sexp.Sym (n, _) -> [ n ]
    | Sexp.List (ps, _) ->
        List.filter_map (function Sexp.Sym (n, _) -> Some n | _ -> None) ps
    | Sexp.Dotted (ps, Sexp.Sym (r, _), _) ->
        r :: List.filter_map (function Sexp.Sym (n, _) -> Some n | _ -> None) ps
    | _ -> []
  and binding_names bindings =
    match bindings with
    | Sexp.List (bs, _) ->
        List.filter_map
          (function
            | Sexp.List (Sexp.Sym (n, _) :: _, _) -> Some n
            | _ -> None)
          bs
    | _ -> []
  and special depth head rest d =
    match (head, rest) with
    | "quote", _ -> 0
    | ("lambda" | "delay"), formals :: body ->
        if head = "lambda" && rebinds (formals_names formals) then 0
        else (
          ignore
            (counts (depth + 1)
               (if head = "lambda" then body else formals :: body));
          0)
    | "case-lambda", clauses ->
        List.iter
          (function
            | Sexp.List (formals :: body, _) ->
                if not (rebinds (formals_names formals)) then
                  ignore (counts (depth + 1) body)
            | _ -> ())
          clauses;
        0
    | "if", [ t; c ] -> cap (count depth t + count depth c)
    | "if", [ t; c; a ] ->
        cap (count depth t + max (count depth c) (count depth a))
    | ("cond" | "case"), clauses ->
        let clauses =
          if head = "case" then
            match clauses with
            | key :: cls ->
                ignore (count depth key);
                (* clause heads are datum lists, not expressions *)
                List.map
                  (function
                    | Sexp.List (_ :: body, p) -> Sexp.List (body, p)
                    | c -> c)
                  cls
            | [] -> []
          else clauses
        in
        cap
          (List.fold_left
             (fun m c ->
               match c with
               | Sexp.List (items, _) ->
                   let items =
                     List.filter
                       (function Sexp.Sym (("else" | "=>"), _) -> false | _ -> true)
                       items
                   in
                   max m (counts depth items)
               | _ -> m)
             0 clauses)
    | ("and" | "or"), es ->
        (* short-circuit: at most one arm's invocation is definite *)
        cap (List.fold_left (fun m e -> max m (count depth e)) 0 es)
    | "do", bindings :: restforms ->
        let names = binding_names bindings in
        let inits =
          match bindings with
          | Sexp.List (bs, _) ->
              List.concat_map
                (function
                  | Sexp.List (_ :: init :: _, _) -> [ init ]
                  | _ -> [])
                bs
          | _ -> []
        in
        let c_inits = counts depth inits in
        if rebinds names then c_inits
        else
          (* a direct invocation aborts the loop, so iteration cannot
             re-reach it: the body counts like a straight-line sequence *)
          cap (c_inits + counts depth restforms)
    | ("let" | "let*" | "letrec" | "letrec*"), Sexp.Sym (nm, _) :: bindings :: body
      ->
        (* named let *)
        let names = nm :: binding_names bindings in
        let inits =
          match bindings with
          | Sexp.List (bs, _) ->
              List.concat_map
                (function Sexp.List (_ :: init :: _, _) -> [ init ] | _ -> [])
                bs
          | _ -> []
        in
        let c_inits = counts depth inits in
        if rebinds names then c_inits
        else
          (* as with [do]: a direct invocation aborts the loop, so the
             named-let body counts like a straight-line sequence *)
          cap (c_inits + counts depth body)
    | ("let" | "let*" | "letrec" | "letrec*"), bindings :: body ->
        let names = binding_names bindings in
        let inits =
          match bindings with
          | Sexp.List (bs, _) ->
              List.concat_map
                (function Sexp.List (_ :: init :: _, _) -> [ init ] | _ -> [])
                bs
          | _ -> []
        in
        let c_inits = counts depth inits in
        cap (c_inits + if rebinds names then 0 else counts depth body)
    | "set!", [ Sexp.Sym (n, _); rhs ] ->
        if String.equal n kname then ignore (count depth rhs)
        else ();
        count depth rhs
    | "quasiquote", _ -> 0 (* unquoted invocations are too rare to chase *)
    | ("define" | "define-syntax" | "define-record-type"), _ -> 0
    | _, _ -> (
        (* application or simple special form; [k] or [apply k] in
           operator position is an invocation *)
        match d with
        | Sexp.List (Sexp.Sym (h, _) :: args, _)
          when String.equal h kname ->
            cap ((if depth = 0 then 1 else 0) + counts depth args)
        | Sexp.List
            (Sexp.Sym ("apply", _) :: Sexp.Sym (h, _) :: args, _)
          when String.equal h kname ->
            cap ((if depth = 0 then 1 else 0) + counts depth args)
        | Sexp.List (items, _) -> counts depth items
        | _ -> 0)
  in
  let c = counts 0 body in
  (c, !escaped)

let check_call1cc st op pos (receiver : Sexp.t) =
  match receiver with
  | Sexp.List (Sexp.Sym ("lambda", _) :: Sexp.List ([ Sexp.Sym (k, _) ], _) :: body, _)
    ->
      let invocations, escaped = analyze_k k body in
      if invocations >= 2 then
        report st pos Error "multi-shot-1cc"
          (Printf.sprintf
             "continuation %s captured by %s is invoked on more than one \
              path; one-shot continuations may be invoked at most once"
             k op)
      else if escaped && invocations = 1 then
        report st pos Warning "multi-shot-1cc"
          (Printf.sprintf
             "continuation %s captured by %s escapes and is also invoked \
              here; invoking the stored continuation again would raise a \
              shot-continuation error"
             k op)
  | _ -> ()

(* ---------------- main walker ---------------- *)

let rec walk st env (d : Sexp.t) =
  match d with
  | Sexp.Sym (name, _) -> use env name
  | Sexp.Int _ | Sexp.Float _ | Sexp.Str _ | Sexp.Bool _ | Sexp.Char _
  | Sexp.Vec _ | Sexp.Dotted _ ->
      ()
  | Sexp.List ([], _) -> ()
  | Sexp.List (Sexp.Sym (head, _) :: rest, pos) when not (bound env head) ->
      special st env head rest pos
  | Sexp.List (items, _) -> List.iter (walk st env) items

and walk_body st env forms = List.iter (walk st env) forms

and formals_env formals =
  match formals with
  | Sexp.Sym (n, p) -> [ (n, new_var n p) ]
  | Sexp.List (ps, _) ->
      List.filter_map
        (function Sexp.Sym (n, p) -> Some (n, new_var n p) | _ -> None)
        ps
  | Sexp.Dotted (ps, rest, _) ->
      (match rest with Sexp.Sym (n, p) -> [ (n, new_var n p) ] | _ -> [])
      @ List.filter_map
          (function Sexp.Sym (n, p) -> Some (n, new_var n p) | _ -> None)
          ps
  | _ -> []

and walk_quasi st env (d : Sexp.t) =
  match d with
  | Sexp.List ([ Sexp.Sym (("unquote" | "unquote-splicing"), _); e ], _) ->
      walk st env e
  | Sexp.List (items, _) | Sexp.Vec (items, _) ->
      List.iter (walk_quasi st env) items
  | _ -> ()

and let_bindings bindings =
  match bindings with
  | Sexp.List (bs, _) ->
      List.filter_map
        (function
          | Sexp.List ([ Sexp.Sym (n, p); init ], _) -> Some (n, p, init)
          | _ -> None)
        bs
  | _ -> []

and special st env head rest pos =
  match (head, rest) with
  | "quote", _ -> ()
  | "quasiquote", [ q ] -> walk_quasi st env q
  | ("define-syntax" | "syntax-rules" | "define-record-type"), _ -> ()
  | "lambda", formals :: body ->
      let params = formals_env formals in
      walk_body st (params @ env) body
  | "case-lambda", clauses ->
      List.iter
        (function
          | Sexp.List (formals :: body, _) ->
              walk_body st (formals_env formals @ env) body
          | _ -> ())
        clauses
  | "define", Sexp.List (Sexp.Sym (n, _) :: params, ppos) :: body ->
      if env = [] then Hashtbl.replace st.redefined n ();
      let formals =
        match params with
        | [] -> Sexp.List ([], ppos)
        | _ -> Sexp.List (params, ppos)
      in
      walk_body st (formals_env formals @ env) body
  | "define", Sexp.Dotted (Sexp.Sym (n, _) :: params, restp, ppos) :: body ->
      if env = [] then Hashtbl.replace st.redefined n ();
      walk_body st (formals_env (Sexp.Dotted (params, restp, ppos)) @ env) body
  | "define", [ Sexp.Sym (n, _); e ] ->
      if env = [] then Hashtbl.replace st.redefined n ();
      walk st env e
  | "set!", [ Sexp.Sym (n, npos); rhs ] ->
      if bound env n then use env n
      else if fused_prim st n && not (Hashtbl.mem st.redefined n) then
        report st npos Warning "fused-prim-set"
          (Printf.sprintf
             "set! of %s deoptimizes every inline-cached call site compiled \
              against its standard primitive binding"
             n);
      walk st env rhs
  | ("let" | "let*" | "letrec" | "letrec*"), Sexp.Sym (nm, nmp) :: bindings :: body
    ->
      (* named let *)
      let bs = let_bindings bindings in
      List.iter (fun (_, _, init) -> walk st env init) bs;
      let vars =
        (nm, new_var nm nmp) :: List.map (fun (n, p, _) -> (n, new_var n p)) bs
      in
      walk_body st (vars @ env) body;
      report_unused st (List.map snd vars)
  | "let", bindings :: body ->
      let bs = let_bindings bindings in
      List.iter (fun (_, _, init) -> walk st env init) bs;
      let vars = List.map (fun (n, p, _) -> (n, new_var n p)) bs in
      walk_body st (vars @ env) body;
      report_unused st (List.map snd vars)
  | "let*", bindings :: body ->
      let bs = let_bindings bindings in
      let env', vars =
        List.fold_left
          (fun (env, vars) (n, p, init) ->
            walk st env init;
            let v = new_var n p in
            ((n, v) :: env, v :: vars))
          (env, []) bs
      in
      walk_body st env' body;
      report_unused st vars
  | ("letrec" | "letrec*"), bindings :: body ->
      let bs = let_bindings bindings in
      let vars = List.map (fun (n, p, _) -> (n, new_var n p)) bs in
      let env' = vars @ env in
      List.iter (fun (_, _, init) -> walk st env' init) bs;
      walk_body st env' body;
      report_unused st (List.map snd vars)
  | "do", bindings :: rest ->
      let bs =
        match bindings with
        | Sexp.List (specs, _) ->
            List.filter_map
              (function
                | Sexp.List (Sexp.Sym (n, p) :: init :: steps, _) ->
                    Some (n, p, init, steps)
                | _ -> None)
              specs
        | _ -> []
      in
      List.iter (fun (_, _, init, _) -> walk st env init) bs;
      let vars = List.map (fun (n, p, _, _) -> (n, new_var n p)) bs in
      let env' = vars @ env in
      List.iter (fun (_, _, _, steps) -> walk_body st env' steps) bs;
      walk_body st env' rest;
      report_unused st (List.map snd vars)
  | "cond", clauses ->
      List.iter
        (function
          | Sexp.List (items, _) ->
              List.iter
                (function
                  | Sexp.Sym (("else" | "=>"), _) -> ()
                  | e -> walk st env e)
                items
          | _ -> ())
        clauses
  | "case", key :: clauses ->
      walk st env key;
      List.iter
        (function
          | Sexp.List (_datums :: body, _) -> walk_body st env body
          | _ -> ())
        clauses
  | ("call/1cc" | "%call/1cc"), [ receiver ] ->
      check_call1cc st head pos receiver;
      walk st env receiver
  | ("par-map" | "par-for-each"), ([ f; arg ] as forms) ->
      check_par_items st head arg;
      walk_body st env forms;
      ignore f
  | "par-reduce", ([ _op; seed; arg ] as forms) ->
      check_par_seed st head seed;
      check_par_items st head arg;
      walk_body st env forms
  | _, forms ->
      (* if / when / unless / begin / and / or / assert / applications of
         globals: every sub-form is an expression *)
      walk_body st env forms

let program ?globals (tops : Sexp.t list) : diagnostic list =
  let st = { diags = []; globals; redefined = Hashtbl.create 16 } in
  (* First pass: record toplevel redefinitions so a [set!] after a
     program-local [define] of the same name is not misread as a
     deoptimizing assignment to the standard primitive. *)
  List.iter
    (function
      | Sexp.List
          (Sexp.Sym ("define", _) :: Sexp.List (Sexp.Sym (n, _) :: _, _) :: _, _)
      | Sexp.List (Sexp.Sym ("define", _) :: Sexp.Sym (n, _) :: _, _) ->
          Hashtbl.replace st.redefined n ()
      | _ -> ())
    tops;
  List.iter (walk st []) tops;
  let pos_of (d : Diag.t) =
    match d.Diag.pos with
    | Some p -> p
    | None -> { Sexp.line = 0; col = 0 }
  in
  List.sort
    (fun a b ->
      match compare (pos_of a).Sexp.line (pos_of b).Sexp.line with
      | 0 -> compare (pos_of a).Sexp.col (pos_of b).Sexp.col
      | c -> c)
    st.diags

let lint_string ?globals src = program ?globals (Sexp.read_all src)
