open Rt

(* Static bytecode verifier: a forward abstract interpreter over
   [Rt.instr] arrays plus a structural contract checker for the
   optimizer's fused superinstructions.

   The abstract domain per pc is (accumulator defined?, must-initialized
   frame-slot bitmap).  Both components only shrink at join points
   (pointwise AND), so the worklist fixpoint terminates in at most
   [frame_words + 1] visits per pc.  On top of the dataflow, a single
   structural scan over every pc — reachable or not — checks the
   invariants the machines' [Array.unsafe_get] dispatch and the fused
   deopt paths rely on:

   - slot and free-variable indices in range ([frame_words] / the
     closure's capture count);
   - branch targets in range, and never the [Enter] prologue;
   - every fused form's retained landing pad is a faithful de-fusion of
     the fused site (same prim site by physical identity, staged pushes
     matching the folded operands slot for slot);
   - every non-tail call site carries an interned [Retaddr] naming this
     code object, the following pc, and the site's displacement;
   - the final instruction transfers control.

   Codes whose first instruction is not [Enter] are the runtime-internal
   trampolines entered through interned return addresses at several pcs
   with a live frame ([Engine.halt_code], the dynamic-wind resume
   codes): they are verified with every pc seeded as an entry, the
   accumulator defined, and every slot initialized. *)

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Operand payloads may hold any quoted constant, so compare with the
   runtime's [eqv] (value comparison on immediates, physical identity on
   heap values — never a structural walk that could hit a functional
   value inside a [Prim]). *)
let const_eq = Values.eqv

type state = { acc : bool; init : bool array }

let state_copy st = { st with init = Array.copy st.init }

(* Pointwise AND; returns [None] when [stored] already subsumes [inc]. *)
let join stored inc =
  let changed = ref false in
  let acc = stored.acc && inc.acc in
  if acc <> stored.acc then changed := true;
  let init =
    Array.mapi
      (fun i b ->
        let b' = b && inc.init.(i) in
        if b' <> b then changed := true;
        b')
      stored.init
  in
  if !changed then Some { acc; init } else None

let verify_one ~nfrees (code : code) : (code * int) list =
  let instrs = code.instrs in
  let n = Array.length instrs in
  let fw = code.frame_words in
  let at pc = Bytecode.instr_to_string instrs.(pc) in
  let err pc fmt =
    Printf.ksprintf
      (fun s -> errf "%s: pc %d (%s): %s" code.cname pc (at pc) s)
      fmt
  in
  if n = 0 then errf "%s: empty instruction stream" code.cname;
  if not (Bytecode.transfers_control instrs.(n - 1)) then
    errf "%s: last instruction (%s) does not transfer control" code.cname
      (at (n - 1));
  let entered_by_enter = instrs.(0) = Enter in
  let children = ref [] in

  (* ---------------- structural scan: every pc ---------------- *)
  let slot pc what i =
    if i < 0 || i >= fw then
      err pc "%s slot %d outside frame (frame-words %d)" what i fw
  in
  let free pc i =
    if i < 0 || i >= nfrees then
      err pc "free-variable index %d outside closure (%d free)" i nfrees
  in
  let target pc t =
    if t < 0 || t >= n then err pc "branch target %d out of range (%d instrs)" t n;
    if t = 0 && entered_by_enter then
      err pc "branch target re-enters the Enter prologue"
  in
  let check_operand pc = function
    | Op_acc | Op_const _ -> ()
    | Op_local s -> slot pc "operand" s
  in
  let check_ret pc what disp ret =
    match ret with
    | Retaddr r ->
        if r.rcode != code then
          err pc "%s return address interned against foreign code %s" what
            r.rcode.cname;
        if r.rpc <> pc + 1 then
          err pc "%s return address resumes at pc %d, expected %d" what r.rpc
            (pc + 1);
        if r.rdisp <> disp then
          err pc "%s return address displacement %d, site displacement %d" what
            r.rdisp disp
    | v ->
        err pc "%s return address not interned (found %s)" what
          (Values.write_string v)
  in
  let check_site pc ?fixed (s : prim_site) =
    (match fixed with
    | Some k when s.ps_nargs <> k ->
        err pc "prim site carries nargs %d, instruction expects %d" s.ps_nargs k
    | _ -> ());
    if s.ps_disp < 0 then err pc "prim site displacement %d negative" s.ps_disp;
    if s.ps_disp + 2 + s.ps_nargs > fw then
      err pc "prim call area [%d..%d] exceeds frame-words %d" s.ps_disp
        (s.ps_disp + 1 + s.ps_nargs)
        fw
  in
  (* The staged push retained at [pad_pc] must restage exactly the value
     the fused head carries as an operand, into the expected arg slot. *)
  let check_staged pc pad_pc ~dst op =
    let ok =
      pad_pc < n
      &&
      match (instrs.(pad_pc), op) with
      | Const_push (v, d), Op_const v' -> d = dst && const_eq v v'
      | Local_push (s, d), Op_local s' -> d = dst && s = s'
      | Local_set d, Op_acc -> d = dst
      | _ -> false
    in
    if not ok then
      err pc
        "landing pad at pc %d (%s) does not restage operand %s into slot %d"
        pad_pc
        (if pad_pc < n then at pad_pc else "past end")
        (Bytecode.operand_to_string op)
        dst
  in
  let check_pad pc pad_pc expect descr =
    let ok = pad_pc < n && expect instrs.(pad_pc) in
    if not ok then
      err pc "landing pad at pc %d (%s) is not the retained %s" pad_pc
        (if pad_pc < n then at pad_pc else "past end")
        descr
  in
  let same_site pc site = function
    | (Prim_call s | Prim_call1 s | Prim_call2 s | Prim_tail_call s
      | Prim_branch1 (s, _)
      | Prim_branch2 (s, _)) ->
        if s != site then
          err pc "landing pad consumer does not share the fused prim site";
        true
    | _ -> false
  in
  for pc = 0 to n - 1 do
    match instrs.(pc) with
    | Const _ | Global_ref _ | Global_set _ | Global_define _ | Return | Halt ->
        ()
    | Enter -> if pc <> 0 then err pc "Enter outside the procedure prologue"
    | Local_ref i | Local_set i | Box_init i | Box_ref i | Box_set i ->
        slot pc "frame" i
    | Free_ref i | Free_box_ref i | Free_box_set i -> free pc i
    | Make_closure (c, caps) ->
        Array.iter
          (function
            | Cap_local i -> slot pc "captured" i
            | Cap_free i -> free pc i)
          caps;
        if not (List.memq c (List.map fst !children)) then
          children := (c, Array.length caps) :: !children
    | Branch t -> target pc t
    | Branch_false t -> target pc t
    | Call { cs_disp; cs_nargs; cs_ret } ->
        if cs_disp < 0 then err pc "call displacement %d negative" cs_disp;
        if cs_disp + 2 + cs_nargs > fw then
          err pc "call area [%d..%d] exceeds frame-words %d" cs_disp
            (cs_disp + 1 + cs_nargs)
            fw;
        check_ret pc "call" cs_disp cs_ret
    | Tail_call { disp; nargs } ->
        if disp < 0 then err pc "tail-call displacement %d negative" disp;
        if disp + 2 + nargs > fw then
          err pc "tail-call area [%d..%d] exceeds frame-words %d" disp
            (disp + 1 + nargs) fw
    | Const_push (_, d) -> slot pc "push destination" d
    | Local_push (s, d) ->
        slot pc "push source" s;
        slot pc "push destination" d
    | Free_push (s, d) ->
        free pc s;
        slot pc "push destination" d
    | Global_push (_, d) -> slot pc "push destination" d
    | Prim_call s ->
        check_site pc s;
        check_ret pc "prim" s.ps_disp s.ps_ret
    | Prim_call1 s ->
        check_site pc ~fixed:1 s;
        check_ret pc "prim" s.ps_disp s.ps_ret
    | Prim_call2 s ->
        check_site pc ~fixed:2 s;
        check_ret pc "prim" s.ps_disp s.ps_ret
    | Prim_tail_call s -> check_site pc s
    | Local_branch_false (i, t) ->
        slot pc "frame" i;
        target pc t;
        check_pad pc (pc + 1)
          (function Branch_false t' -> t' = t | _ -> false)
          "Branch_false of the fused branch"
    | Prim_branch1 (s, t) ->
        check_site pc ~fixed:1 s;
        target pc t;
        check_ret pc "prim" s.ps_disp s.ps_ret;
        check_pad pc (pc + 1)
          (function Branch_false t' -> t' = t | _ -> false)
          "Branch_false of the fused branch"
    | Prim_branch2 (s, t) ->
        check_site pc ~fixed:2 s;
        target pc t;
        check_ret pc "prim" s.ps_disp s.ps_ret;
        check_pad pc (pc + 1)
          (function Branch_false t' -> t' = t | _ -> false)
          "Branch_false of the fused branch"
    | Prim_call1_op (s, a) ->
        check_site pc ~fixed:1 s;
        check_operand pc a;
        check_pad pc (pc + 1)
          (fun i -> (match i with Prim_call1 _ -> true | _ -> false)
                    && same_site pc s i)
          "Prim_call1 consumer"
    | Prim_call2_op (s, a, b) ->
        check_site pc ~fixed:2 s;
        check_operand pc a;
        check_operand pc b;
        check_staged pc (pc + 1) ~dst:(s.ps_disp + 3) b;
        check_pad pc (pc + 2)
          (fun i -> (match i with Prim_call2 _ -> true | _ -> false)
                    && same_site pc s i)
          "Prim_call2 consumer"
    | Prim_branch1_op (s, a, t) ->
        check_site pc ~fixed:1 s;
        check_operand pc a;
        target pc t;
        check_pad pc (pc + 1)
          (fun i ->
            (match i with Prim_branch1 (_, t') -> t' = t | _ -> false)
            && same_site pc s i)
          "Prim_branch1 consumer"
    | Prim_branch2_op (s, a, b, t) ->
        check_site pc ~fixed:2 s;
        check_operand pc a;
        check_operand pc b;
        target pc t;
        check_staged pc (pc + 1) ~dst:(s.ps_disp + 3) b;
        check_pad pc (pc + 2)
          (fun i ->
            (match i with Prim_branch2 (_, t') -> t' = t | _ -> false)
            && same_site pc s i)
          "Prim_branch2 consumer"
    | Prim_tail1_op (s, a) ->
        check_site pc ~fixed:1 s;
        check_operand pc a;
        check_pad pc (pc + 1)
          (fun i -> (match i with Prim_tail_call _ -> true | _ -> false)
                    && same_site pc s i)
          "Prim_tail_call consumer"
    | Prim_tail2_op (s, a, b) ->
        check_site pc ~fixed:2 s;
        check_operand pc a;
        check_operand pc b;
        check_staged pc (pc + 1) ~dst:(s.ps_disp + 3) b;
        check_pad pc (pc + 2)
          (fun i -> (match i with Prim_tail_call _ -> true | _ -> false)
                    && same_site pc s i)
          "Prim_tail_call consumer"
    | Return_op a ->
        check_operand pc a;
        check_pad pc (pc + 1)
          (function Return -> true | _ -> false)
          "Return of the fused epilogue"
  done;

  (* ---------------- dataflow: reachable pcs ---------------- *)
  let states : state option array = Array.make n None in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let enqueue pc st =
    match states.(pc) with
    | None ->
        states.(pc) <- Some (state_copy st);
        if not queued.(pc) then begin
          queued.(pc) <- true;
          Queue.add pc queue
        end
    | Some stored -> (
        match join stored st with
        | None -> ()
        | Some merged ->
            states.(pc) <- Some merged;
            if not queued.(pc) then begin
              queued.(pc) <- true;
              Queue.add pc queue
            end)
  in
  (if entered_by_enter then begin
     let nparams, extra =
       match code.arity with
       | Exactly k -> (k, 0)
       | At_least k -> (k, 1 (* rest list at slot 2 + k *))
     in
     let init = Array.make fw false in
     let upto = min fw (2 + nparams + extra) in
     for i = 0 to upto - 1 do
       init.(i) <- true
     done;
     if 2 + nparams + extra > fw then
       errf "%s: frame-words %d cannot hold %d parameter slots" code.cname fw
         (2 + nparams + extra);
     enqueue 0 { acc = false; init }
   end
   else
     (* Return-entered trampoline: every pc is an entry with a live
        frame and a returned value in the accumulator. *)
     for pc = 0 to n - 1 do
       enqueue pc { acc = true; init = Array.make fw true }
     done);
  let need_acc pc st =
    if not st.acc then err pc "accumulator is dead on some path reaching here"
  in
  let need_init pc st i =
    if not st.init.(i) then
      err pc "reads frame slot %d, uninitialized on some path reaching here" i
  in
  let need_args pc st disp nargs =
    for i = disp + 2 to disp + 1 + nargs do
      need_init pc st i
    done
  in
  let need_operand pc st = function
    | Op_acc -> need_acc pc st
    | Op_local s -> need_init pc st s
    | Op_const _ -> ()
  in
  let set_slot st i =
    if st.init.(i) then st
    else begin
      let st = state_copy st in
      st.init.(i) <- true;
      st
    end
  in
  (* After a non-tail call: the callee's frame clobbered every slot at or
     above the displacement, and the accumulator holds the result.  The
     inline fast path of a fused prim call clobbers nothing, but its
     deopt path does and both resume at the same pc, so the killed state
     is the sound join. *)
  let kill_from st d =
    { acc = true; init = Array.mapi (fun i b -> b && i < d) st.init }
  in
  while not (Queue.is_empty queue) do
    let pc = Queue.pop queue in
    queued.(pc) <- false;
    let st = match states.(pc) with Some s -> s | None -> assert false in
    let succs =
      match instrs.(pc) with
      | Const _ | Global_ref _ -> [ (pc + 1, { st with acc = true }) ]
      | Local_ref i ->
          need_init pc st i;
          [ (pc + 1, { st with acc = true }) ]
      | Box_ref i ->
          need_init pc st i;
          [ (pc + 1, { st with acc = true }) ]
      | Free_ref _ | Free_box_ref _ -> [ (pc + 1, { st with acc = true }) ]
      | Local_set i ->
          need_acc pc st;
          [ (pc + 1, set_slot st i) ]
      | Box_set i ->
          need_acc pc st;
          need_init pc st i;
          [ (pc + 1, st) ]
      | Box_init i ->
          need_init pc st i;
          [ (pc + 1, st) ]
      | Free_box_set _ | Global_set _ | Global_define _ ->
          need_acc pc st;
          [ (pc + 1, st) ]
      | Make_closure (_, caps) ->
          Array.iter
            (function Cap_local i -> need_init pc st i | Cap_free _ -> ())
            caps;
          [ (pc + 1, { st with acc = true }) ]
      | Branch t -> [ (t, st) ]
      | Branch_false t ->
          need_acc pc st;
          [ (t, st); (pc + 1, st) ]
      | Call { cs_disp; cs_nargs; _ } ->
          need_init pc st (cs_disp + 1);
          need_args pc st cs_disp cs_nargs;
          [ (pc + 1, kill_from st cs_disp) ]
      | Tail_call { disp; nargs } ->
          need_init pc st (disp + 1);
          need_args pc st disp nargs;
          []
      | Return | Halt ->
          need_acc pc st;
          []
      | Enter -> [ (pc + 1, st) ]
      | Const_push (_, d) -> [ (pc + 1, set_slot st d) ]
      | Local_push (s, d) ->
          need_init pc st s;
          [ (pc + 1, set_slot st d) ]
      | Free_push (_, d) | Global_push (_, d) -> [ (pc + 1, set_slot st d) ]
      | Prim_call s | Prim_call1 s | Prim_call2 s ->
          (* The fused callee load was dropped: slot [ps_disp + 1] is
             legitimately uninitialized here (the deopt handler restages
             the global itself), so only the argument slots are read. *)
          need_args pc st s.ps_disp s.ps_nargs;
          [ (pc + 1, kill_from st s.ps_disp) ]
      | Prim_tail_call s ->
          need_args pc st s.ps_disp s.ps_nargs;
          []
      | Local_branch_false (i, t) ->
          need_init pc st i;
          let st' = { st with acc = true } in
          [ (t, st'); (pc + 2, st') ]
      | Prim_branch1 (s, t) | Prim_branch2 (s, t) ->
          need_args pc st s.ps_disp s.ps_nargs;
          let st' = kill_from st s.ps_disp in
          (* t / pc+2: the fused fast path; pc+1: the retained
             Branch_false, reached when the deopted generic call returns
             through the interned [ps_ret]. *)
          [ (t, st'); (pc + 2, st'); (pc + 1, st') ]
      | Prim_call1_op (s, a) ->
          need_operand pc st a;
          [ (pc + 2, kill_from st s.ps_disp) ]
      | Prim_call2_op (s, a, b) ->
          need_operand pc st a;
          need_operand pc st b;
          [ (pc + 3, kill_from st s.ps_disp) ]
      | Prim_branch1_op (s, a, t) ->
          need_operand pc st a;
          let st' = kill_from st s.ps_disp in
          (* pc+2: deopt resume at the retained Branch_false (the shared
             site's [ps_ret] was interned at the retained Prim_branch1,
             pc+1). *)
          [ (t, st'); (pc + 3, st'); (pc + 2, st') ]
      | Prim_branch2_op (s, a, b, t) ->
          need_operand pc st a;
          need_operand pc st b;
          let st' = kill_from st s.ps_disp in
          [ (t, st'); (pc + 4, st'); (pc + 3, st') ]
      | Prim_tail1_op (_, a) ->
          need_operand pc st a;
          []
      | Prim_tail2_op (_, a, b) ->
          need_operand pc st a;
          need_operand pc st b;
          []
      | Return_op a ->
          need_operand pc st a;
          []
    in
    List.iter
      (fun (t, st') ->
        if t >= n then err pc "falls through past the end of the stream";
        enqueue t st')
      succs
  done;
  List.rev !children

let rec verify_into visited ~nfrees code =
  if not (List.memq code !visited) then begin
    visited := code :: !visited;
    let children = verify_one ~nfrees code in
    List.iter (fun (c, nf) -> verify_into visited ~nfrees:nf c) children
  end

let verify ?(nfrees = 0) code = verify_into (ref []) ~nfrees code

let verify_program codes =
  let visited = ref [] in
  List.iter (verify_into visited ~nfrees:0) codes

let check code = match verify code with () -> Ok () | exception Error m -> Error m
