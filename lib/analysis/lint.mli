(** Source-level lint diagnostics (DESIGN.md §16).

    Runs over reader output ([Sexp.t], the only layer carrying source
    positions) and reports:

    - [multi-shot-1cc] — a continuation captured by a literal
      [(call/1cc (lambda (k) ...))] invoked on more than one path
      (error: definite violation of the one-shot restriction), or one
      that escapes as a value and is also invoked in the receiver body
      (warning: a later invocation of the stored continuation would
      raise a shot-continuation error);
    - [fused-prim-set] — [set!] of a global bound to a pure primitive,
      which deoptimizes every inline-cached fused call site (warning);
    - [unused-binding] — a [let]/[let*]/[letrec]/named-let/[do] binding
      never referenced (warning; lambda parameters and [_]/[%]-prefixed
      names are exempt);
    - [non-flat-par] — a literally quoted [par-map] / [par-for-each] /
      [par-reduce] argument containing a non-flat datum that cannot
      cross the par shard boundary (error). *)

type severity = Diag.severity = Error | Warning

type diagnostic = Diag.t
(** A lint finding is an ordinary pipeline diagnostic (layer
    {!Diag.Lint}) whose [rule] field carries the stable rule slug,
    e.g. ["multi-shot-1cc"]. *)

val program : ?globals:Globals.t -> Sexp.t list -> diagnostic list
(** Lint a program (list of toplevel datums).  When [globals] is
    supplied, the [fused-prim-set] rule consults the live global table
    to decide whether a name is bound to a pure primitive; otherwise a
    built-in list of standard primitives is assumed.  Diagnostics are
    sorted by source position. *)

val lint_string : ?globals:Globals.t -> string -> diagnostic list
(** Read [src] with {!Sexp.read_all} and lint it.
    @raise Sexp.Read_error on malformed input. *)

val to_string : diagnostic -> string
(** Render as ["line:col: severity: [rule] message"] — the shared
    {!Diag.to_string}. *)
