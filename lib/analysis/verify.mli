(** Static bytecode verifier (DESIGN.md §16).

    A forward abstract interpreter over [Rt.instr] arrays, plus a
    structural scan checking the optimizer's fusion contracts.  The
    abstract state per pc is (accumulator defined?, must-initialized
    frame-slot bitmap bounded by [frame_words]); branch join points take
    the pointwise AND, so every check holds on all paths.

    Verified properties:
    - every frame-slot, free-variable, and operand index is in range;
    - no instruction reads the accumulator or a frame slot that some
      path leaves undefined;
    - branch targets are in range and never re-enter the [Enter]
      prologue; the final instruction transfers control;
    - every non-tail call site ([Call], [Prim_call]/[1]/[2],
      [Prim_branch1]/[2]) carries an interned [Retaddr] naming the
      enclosing code, the following pc, and the site displacement;
    - every fused superinstruction's retained landing pad is a faithful
      de-fusion: branch-fused forms keep their [Branch_false] at pc+1,
      operand-lowered forms keep the staged pushes and the consuming
      [Prim_call*]/[Prim_branch*]/[Prim_tail_call]/[Return] in place,
      sharing the same [prim_site] by physical identity, with retained
      staged pushes restaging exactly the folded operands;
    - call areas fit inside [frame_words], so operand spilling before
      any frame-policy re-entry (capture, winders, overflow, timer,
      deopt) stays in bounds.

    Verification recurses through [Make_closure] into every child code
    object (each checked against its closure's capture count).  Codes
    that do not begin with [Enter] — the runtime-internal return-entered
    trampolines ([Engine.halt_code], the dynamic-wind resume codes) —
    are verified with every pc treated as an entry with a live frame. *)

exception Error of string
(** Diagnostic: code name, pc, rendered instruction, and the violated
    invariant. *)

val verify : ?nfrees:int -> Rt.code -> unit
(** Verify one code object and, recursively, every code object it
    closes over.  [nfrees] (default 0) is the number of free variables
    the executing closure provides — 0 for top-level codes.
    @raise Error on the first violation. *)

val verify_program : Rt.code list -> unit
(** Verify every code object of a compiled program (shared children are
    visited once, by physical identity). *)

val check : Rt.code -> (unit, string) result
(** Exception-free wrapper around {!verify}. *)
