(* Core mutually recursive runtime types shared by the compiler, the control
   substrate, and both virtual machines.

   The control-stack layout follows Bruggeman/Waddell/Dybvig (PLDI'96)
   faithfully: segments are flat value arrays; each frame is
   [ret][arg1..argn][locals/temps...] with the frame pointer indexing [ret];
   there is no dynamic link -- return addresses carry the frame displacement
   that the paper stores as a size word in the code stream next to each
   return point (the information content and its uses -- stack walking,
   splitting, hysteresis copy-up -- are identical). *)

(* Compiled-template slot for the closure-compiled backend
   (lib/closurevm).  The variant is extensible so the runtime stays
   independent of the backend's step representation: closurevm extends it
   with its own constructor carrying the step-closure array, every other
   backend leaves the slot at [No_template] (added below, after the
   recursive type block).  The slot lives on [code] so a code object is
   template-compiled at most once per process, and templates survive
   across sessions exactly like the interned return addresses do. *)
type tmpl = ..

type value =
  | Nil                                  (* the empty list *)
  | Void                                 (* unspecified value *)
  | Eof
  | Undef                                (* letrec pre-initialization hole *)
  | Bool of bool
  | Int of int                           (* fixnums: native OCaml ints *)
  | Flo of float                         (* flonums *)
  | Char of char
  | Str of bytes                         (* mutable Scheme strings *)
  | Sym of string
  | Pair of pair
  | Vec of value array
  | Closure of closure
  | Prim of prim
  | Cont of cont                         (* Scheme-level continuation *)
  | Hcont of hcont                       (* heap-VM continuation *)
  | Ofun of ofun                         (* oracle-interpreter procedure:
                                            CPS over OCaml closures *)
  | Mvals of value list                  (* multiple values in transit *)
  | Box of value ref                     (* assignment-converted variable *)
  | Tbl of (value, value) Hashtbl.t      (* eqv-keyed hashtable *)
  (* Runtime-internal values stored in stack frames; never seen by Scheme. *)
  | Retaddr of retaddr
  | Underflow_mark                       (* bottom-of-segment return slot *)
  | WindersV of winder list              (* winder chain stashed in a wind
                                            trampoline frame slot *)

and pair = { mutable car : value; mutable cdr : value }
and closure = { code : code; frees : value array }

and retaddr = {
  rcode : code;
  rpc : int;                             (* resumption pc in [rcode] *)
  rdisp : int;                           (* displacement to the caller frame:
                                            callee fp - caller fp (the paper's
                                            in-stream frame-size word) *)
}

and code = {
  instrs : instr array;
  cname : string;                        (* for disassembly/back-traces *)
  arity : arity;
  frame_words : int;                     (* max frame extent: one overflow
                                            check at [Enter] covers every
                                            in-frame write the body performs *)
  mutable timer_ret : value;             (* interned [Retaddr] for the timer
                                            fire at procedure entry: the pc
                                            and displacement are fixed per
                                            code object, so the record is
                                            built once on first fire instead
                                            of once per preemption.  [Void]
                                            until then; guarded on rpc/rdisp
                                            before reuse. *)
  mutable templ : tmpl;                  (* closure-compiled template cache
                                            ([No_template] until the closure
                                            backend compiles this code) *)
  cline : int;                           (* source position of the defining
                                            form; 0:0 = synthetic code (the
                                            runtime cannot see Sexp.pos, so
                                            the pair is carried as ints) *)
  ccol : int;
}

and arity = Exactly of int | At_least of int

and instr =
  | Const of value
  | Local_ref of int                     (* acc := frame.(i) *)
  | Local_set of int                     (* frame.(i) := acc *)
  | Box_init of int                      (* frame.(i) := Box (ref frame.(i)) *)
  | Box_ref of int                       (* acc := !(unbox frame.(i)) *)
  | Box_set of int                       (* (unbox frame.(i)) := acc *)
  | Free_ref of int                      (* acc := clos.frees.(i) *)
  | Free_box_ref of int
  | Free_box_set of int
  | Global_ref of int                    (* acc := cells.(slot) (bound check) *)
  | Global_set of int
  | Global_define of int
  | Make_closure of code * capture array
  | Branch of int                        (* absolute pc *)
  | Branch_false of int
  | Call of call_site                    (* callee at frame.(disp+1), args at
                                            frame.(disp+2 ..); pushes the
                                            interned Retaddr at frame.(disp) *)
  | Tail_call of { disp : int; nargs : int } (* callee at frame.(disp+1), args
                                            at frame.(disp+2 ..) — the Call
                                            layout; shifts callee+args down to
                                            frame.(1 ..) before entering *)
  | Return                               (* return acc via frame.(0) *)
  | Enter                                (* procedure prologue: arity check,
                                            rest-arg collection, overflow
                                            check, timer tick *)
  | Halt                                 (* stop the machine; acc is the
                                            program result *)
  (* Fused superinstructions, emitted only by the peephole stage
     (Optimize.peephole).  The push forms collapse a value-producing
     instruction followed by [Local_set] into one dispatch; they write the
     frame slot directly and leave [acc] untouched (the peephole proves
     [acc] dead at the fusion site). *)
  | Const_push of value * int            (* frame.(i) := v *)
  | Local_push of int * int              (* frame.(j) := frame.(i) *)
  | Free_push of int * int               (* frame.(j) := frees.(i) *)
  | Global_push of int * int             (* frame.(i) := cells.(slot) (bound
                                            check) *)
  (* Inline-cached calls of known pure primitives: the callee global was
     bound to [ps_guard] when the site was compiled.  The guard re-checks
     [ps_global.gval == ps_guard] at every execution; on mismatch ([set!]
     of [+] etc.) the site deoptimizes to the generic call path.  The fast
     path pushes no return address, moves no frame pointer, and allocates
     no argument array. *)
  | Prim_call of prim_site               (* non-tail call, any arity *)
  | Prim_call1 of prim_site              (* fixed-arity fast variants *)
  | Prim_call2 of prim_site
  | Prim_tail_call of prim_site          (* tail call: acc := result; return *)
  (* Branch fusion: a conditional that consumes a just-produced value
     collapses into its producer.  The original [Branch_false] is left in
     place at the following pc and the fused form jumps over it, so branch
     targets need no remapping, and the deopt / error-handler resume paths
     of the fused primitives — whose interned [ps_ret] addresses [pc + 1] —
     re-execute that branch on the returned value, exactly as the unfused
     sequence would. *)
  | Local_branch_false of int * int      (* acc := frame.(i); branch if false *)
  | Prim_branch1 of prim_site * int      (* Prim_call1 + Branch_false *)
  | Prim_branch2 of prim_site * int      (* Prim_call2 + Branch_false *)
  (* Register-addressed (operand) forms, emitted only by the regalloc
     peephole stage (Optimize.peephole, --no-regalloc escape hatch).  The
     argument-staging pushes of a fused prim call are folded into the
     consumer as [operand]s read straight from the accumulator, a frame
     slot, or the instruction stream, so the staged values never touch
     stack memory on the fast path.  Like branch fusion, the lowering
     replaces only the *first* instruction of the staged sequence and
     retains every following original in place as the deopt landing pad:
     the retained [Prim_call*]/[Prim_branch*]/[Prim_tail_call]/[Return]
     keeps its pc, so [Bytecode.backpatch] interns [ps_ret] exactly as in
     the unfused stream and no pcs are renumbered.  On guard failure (or
     before any slow path that re-enters the frame policy) the handler
     first spills the operand values into the frame's argument slots —
     the frame a capture or deopt observes is byte-identical to the one
     the unfused sequence would have built.  The skip widths are fixed by
     shape: a fused form with [n] operands jumps [n + 1] instructions
     (staged pushes + retained prim), plus one more for the retained
     [Branch_false] of the branch forms. *)
  | Prim_call1_op of prim_site * operand
  | Prim_call2_op of prim_site * operand * operand
  | Prim_branch1_op of prim_site * operand * int
  | Prim_branch2_op of prim_site * operand * operand * int
  | Prim_tail1_op of prim_site * operand
  | Prim_tail2_op of prim_site * operand * operand
  | Return_op of operand                 (* producer + Return in one dispatch *)

(* Where a register-addressed instruction reads a value from: the
   accumulator (the value the head [Local_set] of the unfused sequence
   would have stored), a frame slot (a [Local_push] source), or an
   immediate (a [Const_push] payload). *)
and operand = Op_acc | Op_local of int | Op_const of value

(* A non-tail call site.  [cs_ret] is the site's return address, interned
   once by [Bytecode.backpatch] right after the enclosing code object is
   built (and re-interned after peephole fusion renumbers pcs): all three
   [retaddr] fields are per-site constants, so non-tail calls push a
   pre-allocated value instead of allocating one per call — the paper's
   "return address lives in the code stream next to the frame-size word"
   layout.  [Void] only transiently, between construction and backpatch. *)
and call_site = {
  cs_disp : int;                         (* frame displacement of the call
                                            area (the callee's fp) *)
  cs_nargs : int;
  mutable cs_ret : value;                (* interned [Retaddr] *)
}

and prim_site = {
  ps_disp : int;                         (* frame displacement of the call
                                            area, as in [Call] *)
  ps_nargs : int;
  ps_slot : int;                         (* global slot the callee was loaded
                                            from (resolved against the running
                                            session's table) *)
  ps_guard : value;                      (* the [Prim] value cached at
                                            compile time (physical witness) *)
  ps_prim : prim;                        (* same prim, for disassembly *)
  ps_fn : value array -> value;          (* its pure entry point *)
  mutable ps_ret : value;                (* interned [Retaddr] for the
                                            non-tail deopt path, backpatched
                                            like [call_site.cs_ret] *)
}

and capture = Cap_local of int | Cap_free of int

and global = {
  (* One session's cell for a global slot; the slot→name mapping lives
     in the process-wide interner ([Globals.slot_name]). *)
  mutable gval : value;
  mutable gdefined : bool;
}

and prim = {
  pname : string;
  parity : arity;
  pfn : pfn;
}

and pfn =
  | Pure of (value array -> value)       (* no control effects: applied
                                            in-line, no frame pushed *)
  | Special of special                   (* needs the machine: handled by the
                                            VM dispatch loop *)

and special =
  | Sp_callcc                            (* %call/cc  : raw multi-shot capture *)
  | Sp_call1cc                           (* %call/1cc : raw one-shot capture *)
  | Sp_apply
  | Sp_values
  | Sp_set_timer                         (* (%set-timer! ticks handler) *)
  | Sp_get_timer                         (* (%get-timer) : remaining ticks *)
  | Sp_stats                             (* (%stat 'name) : read a counter *)
  | Sp_backtrace                         (* (%backtrace) : walk the frames *)
  | Sp_eval                              (* (eval datum) : compile and run *)
  | Sp_dynamic_wind                      (* (%dynamic-wind before thunk after):
                                            native winders protocol *)
  | Sp_wind                              (* internal wind trampoline driver;
                                            never bound to a global *)

(* A dynamic-wind extent recorded on the machine's native winder chain:
   [w_before] / [w_after] are the guard thunks.  The chain is a stack —
   the head is the innermost extent — and shares structure exactly as the
   Scheme-level [%winders] list it replaces, so a captured continuation
   records the chain by keeping one pointer ([cont.k_winders]) and the
   rewind/unwind comparison is physical equality. *)
and winder = { w_before : value; w_after : value }

(* One-shot/multi-shot stack records, exactly the paper's Figure 1/2 layout.
   A record describes the slice [base, base+size) of [seg].  For the active
   record [current] is unused (the occupied size is [fp - base]).  For a
   captured record:
     multi-shot  <=>  current = size        (paper Section 3.2)
     one-shot    <=>  current < size
     shot        <=>  current = size = -1
   [promoted] is the shared boxed flag of Section 3.3: when set, every
   one-shot record sharing it reads as promoted (multi-shot) without the
   eager chain walk. *)
and stack_record = {
  mutable seg : value array;
  mutable base : int;
  mutable size : int;
  mutable current : int;
  mutable link : stack_record option;
  mutable ret : value;                   (* Retaddr of the topmost saved frame *)
  mutable promoted : bool ref;
}

and cont = {
  sr : stack_record;
  one_shot : bool;                       (* which operator captured it *)
  k_winders : winder list;               (* winder chain at capture time;
                                            invocation winds/unwinds to it *)
}

(* Heap-model frames (the Appel/MacQueen-style baseline VM): each frame is
   a separately allocated record linked to its parent.  Capture is O(1)
   pointer sharing; shared frames are copied on write to keep multi-shot
   reinstatement sound. *)
and hframe = {
  mutable hslots : value array;
  mutable hret : value;                  (* Retaddr (rdisp unused) *)
  mutable hparent : hframe option;
  mutable hshared : bool;
  mutable hguards : hcont list;          (* one-shot extents consumed when
                                            this frame returns *)
}

and hcont = {
  hcont_frame : hframe option;           (* caller chain *)
  hcont_ret : value;                     (* Retaddr *)
  hcont_one_shot : bool;
  mutable hcont_shot : bool;
  mutable hcont_promoted : bool;
  hcont_winders : winder list;           (* winder chain at capture time *)
}

and ofun = {
  oname : string;
  ofn : value array -> (value -> value) -> value;
}

type tmpl += No_template

exception Scheme_error of string * value list
(* Raised by (error who msg irritants...) and by runtime type errors. *)

exception Shot_continuation
(* Raised when a one-shot continuation is invoked a second time. *)

(* The symbol table is the one deliberately process-global structure in
   the runtime: [eq?] on symbols is physical equality, so every machine
   must intern through the same table.  Sessions may run on different
   domains (Scheme.Pool), so the table and the gensym counter are
   mutex-guarded; the lock is uncontended and symbols are interned at
   compile time, never on the execution hot path. *)
let sym_lock = Mutex.create ()
let sym_table : (string, string) Hashtbl.t = Hashtbl.create 512

(* Intern symbol names so that [Sym] payloads of equal name are physically
   equal and [eq?] can use physical comparison. *)
let intern name =
  Mutex.lock sym_lock;
  let s =
    match Hashtbl.find_opt sym_table name with
    | Some s -> s
    | None ->
        Hashtbl.add sym_table name name;
        name
  in
  Mutex.unlock sym_lock;
  s

let sym name = Sym (intern name)

let gensym_counter = ref 0

let gensym prefix =
  let n =
    Mutex.lock sym_lock;
    incr gensym_counter;
    let n = !gensym_counter in
    Mutex.unlock sym_lock;
    n
  in
  sym (Printf.sprintf "%s%%%d" prefix n)
