(** Global variable table, slot-indexed.

    Global names intern to process-wide slots (small dense ints); each
    session owns a cell array indexed by those shared slots.  Compiled
    code refers to globals by slot, so code objects are
    session-independent and a compiled prelude image can be shared
    read-only across pool shards. *)

val slot : string -> int
(** Intern a name to its process-wide slot (creating one if needed). *)

val slot_opt : string -> int option
(** Non-interning: the slot of a name already interned, if any. *)

val slot_name : int -> string
(** The name a slot was interned for. *)

type t = { mutable cells : Rt.global array }
(** One session's table.  [cells] is exposed so executors can open-code
    the in-bounds fast path; out-of-bounds slots must go through
    {!get}. *)

val create : unit -> t

val get : t -> int -> Rt.global
(** The cell for a slot, growing the array on a miss.  Growth preserves
    the identity of every existing cell record. *)

val cell : t -> string -> Rt.global
(** Find or create the (possibly still undefined) cell for a name. *)

val define : t -> string -> Rt.value -> unit

val find_opt : t -> string -> Rt.global option
(** The cell for a name iff it is currently defined (non-interning). *)

val lookup_opt : t -> string -> Rt.value option

val fold : (string -> Rt.global -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (string -> Rt.global -> unit) -> t -> unit
