open Rt

let err msg irritants = raise (Scheme_error (msg, irritants))

let type_name = function
  | Nil -> "null"
  | Void -> "void"
  | Eof -> "eof-object"
  | Undef -> "undefined"
  | Bool _ -> "boolean"
  | Int _ -> "fixnum"
  | Flo _ -> "flonum"
  | Char _ -> "character"
  | Str _ -> "string"
  | Sym _ -> "symbol"
  | Pair _ -> "pair"
  | Vec _ -> "vector"
  | Closure _ | Prim _ | Ofun _ -> "procedure"
  | Cont _ | Hcont _ -> "continuation"
  | Mvals _ -> "multiple-values"
  | Box _ -> "box"
  | Tbl _ -> "hashtable"
  | Retaddr _ -> "return-address"
  | Underflow_mark -> "underflow-mark"
  | WindersV _ -> "winders"

let type_error who expected got =
  err
    (Printf.sprintf "%s: expected %s, got %s" who expected (type_name got))
    [ got ]

let cons a d = Pair { car = a; cdr = d }
let list_to_value vs = List.fold_right cons vs Nil

let list_of_value_opt v =
  let rec go acc = function
    | Nil -> Some (List.rev acc)
    | Pair p -> go (p.car :: acc) p.cdr
    | _ -> None
  in
  go [] v

let list_of_value v =
  match list_of_value_opt v with
  | Some l -> l
  | None -> type_error "list" "proper list" v

let is_truthy = function Bool false -> false | _ -> true

let eq a b =
  match (a, b) with
  | Nil, Nil | Void, Void | Eof, Eof | Undef, Undef -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Flo x, Flo y -> x = y
  | Char x, Char y -> x = y
  | Sym x, Sym y -> x == y (* interned *)
  | Str x, Str y -> x == y
  | Pair x, Pair y -> x == y
  | Vec x, Vec y -> x == y
  | Closure x, Closure y -> x == y
  | Prim x, Prim y -> x == y
  | Cont x, Cont y -> x == y
  | Hcont x, Hcont y -> x == y
  | Ofun x, Ofun y -> x == y
  | Box x, Box y -> x == y
  | Tbl x, Tbl y -> x == y
  | _ -> false

let eqv = eq (* fixnums and chars already compare by value in [eq] *)

let rec equal a b =
  match (a, b) with
  | Pair x, Pair y -> equal x.car y.car && equal x.cdr y.cdr
  | Vec x, Vec y ->
      Array.length x = Array.length y
      && (let ok = ref true in
          Array.iteri (fun i xi -> if not (equal xi y.(i)) then ok := false) x;
          !ok)
  | Str x, Str y -> Bytes.equal x y
  | _ -> eqv a b

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let char_external c =
  match c with
  | '\n' -> "#\\newline"
  | ' ' -> "#\\space"
  | '\t' -> "#\\tab"
  | '\000' -> "#\\nul"
  | '\r' -> "#\\return"
  | c -> Printf.sprintf "#\\%c" c

let max_render_nodes = 100_000

exception Render_budget

let rec render ?(seen = []) ?(budget = ref max_render_nodes) ~write buf v =
  let render v = render ~seen ~budget ~write buf v in
  ignore render;
  render_v ~seen ~budget ~write buf v

and render_v ~seen ~budget ~write buf v =
  let str s = Buffer.add_string buf s in
  decr budget;
  if !budget <= 0 then begin
    str "...";
    raise Render_budget
  end;
  match v with
  | Nil -> str "()"
  | Void -> str "#<void>"
  | Eof -> str "#<eof>"
  | Undef -> str "#<undefined>"
  | Bool true -> str "#t"
  | Bool false -> str "#f"
  | Int n -> str (string_of_int n)
  | Flo f ->
      str
        (if f <> f then "+nan.0"
         else if f = Float.infinity then "+inf.0"
         else if f = Float.neg_infinity then "-inf.0"
         else if Float.is_integer f && Float.abs f < 1e16 then
           Printf.sprintf "%.1f" f
         else Printf.sprintf "%.12g" f)
  | Char c -> if write then str (char_external c) else Buffer.add_char buf c
  | Str s ->
      if write then str (escape_string (Bytes.to_string s))
      else str (Bytes.to_string s)
  | Sym s -> str s
  | Pair p ->
      if List.exists (fun o -> o == Obj.repr p) seen then str "#<cycle>"
      else render_pair ~seen:(Obj.repr p :: seen) ~budget ~write buf v
  | Vec a ->
      if List.exists (fun o -> o == Obj.repr a) seen then str "#<cycle>"
      else begin
        let seen = Obj.repr a :: seen in
        str "#(";
        Array.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ' ';
            render_v ~seen ~budget ~write buf x)
          a;
        str ")"
      end
  | Closure c -> str (Printf.sprintf "#<procedure %s>" c.code.cname)
  | Prim p -> str (Printf.sprintf "#<procedure %s>" p.pname)
  | Ofun f -> str (Printf.sprintf "#<procedure %s>" f.oname)
  | Cont c ->
      str (if c.one_shot then "#<one-shot-continuation>" else "#<continuation>")
  | Hcont c ->
      str
        (if c.hcont_one_shot then "#<one-shot-continuation>"
         else "#<continuation>")
  | Mvals vs ->
      str "#<values";
      List.iter
        (fun x ->
          Buffer.add_char buf ' ';
          render ~write buf x)
        vs;
      str ">"
  | Box r ->
      str "#&";
      render ~write buf !r
  | Tbl t -> str (Printf.sprintf "#<hashtable %d>" (Hashtbl.length t))
  | Retaddr r -> str (Printf.sprintf "#<retaddr %s+%d>" r.rcode.cname r.rpc)
  | Underflow_mark -> str "#<underflow>"
  | WindersV w -> str (Printf.sprintf "#<winders %d>" (List.length w))

and render_pair ~seen ~budget ~write buf v =
  Buffer.add_char buf '(';
  let rec go v first seen =
    match v with
    | Nil -> ()
    | Pair p ->
        if List.exists (fun o -> o == Obj.repr p) seen && not first then
          Buffer.add_string buf (if first then "#<cycle>" else " . #<cycle>")
        else begin
          if not first then Buffer.add_char buf ' ';
          render_v ~seen ~budget ~write buf p.car;
          go p.cdr false (Obj.repr p :: seen)
        end
    | other ->
        Buffer.add_string buf " . ";
        render_v ~seen ~budget ~write buf other
  in
  go v true seen;
  Buffer.add_char buf ')'

let render_to_string ~write v =
  let buf = Buffer.create 64 in
  (try render ~write buf v with Render_budget -> ());
  Buffer.contents buf

let write_string v = render_to_string ~write:true v
let display_string v = render_to_string ~write:false v

let pp fmt v = Format.pp_print_string fmt (write_string v)
