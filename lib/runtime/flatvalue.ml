(* Flat-value wire format for cross-domain shard traffic: see the .mli
   for the protocol contract.  The representation mirrors the flat
   subset of [Rt.value] with immutable payloads ([string] instead of
   [bytes], a fresh constructor per pair) so a serialized tree can be
   shared across domains without publishing any mutable field. *)

type t =
  | F_nil
  | F_void
  | F_eof
  | F_bool of bool
  | F_int of int
  | F_flo of float
  | F_char of char
  | F_str of string
  | F_sym of string
  | F_list of t list
  | F_vec of t array

exception Not_flat of Rt.value
exception Too_large

(* Node budget: flat data a par task would realistically ship is far
   below this; cyclic structures (which a recursive walk would chase
   forever) trip the bound instead of needing a visited set on the
   serialization path. *)
let max_nodes = 1_000_000

let serialize v =
  let budget = ref max_nodes in
  let spend () =
    decr budget;
    if !budget < 0 then raise Too_large
  in
  let rec go v =
    spend ();
    match (v : Rt.value) with
    | Nil -> F_nil
    | Void -> F_void
    | Eof -> F_eof
    | Bool b -> F_bool b
    | Int n -> F_int n
    | Flo f -> F_flo f
    | Char c -> F_char c
    | Str b -> F_str (Bytes.to_string b)
    | Sym s -> F_sym s
    | Pair _ ->
        (* Proper-list walk: an improper tail is non-flat (the dotted
           tail value is reported, matching where the walk stopped). *)
        let rec list acc v =
          match (v : Rt.value) with
          | Nil -> F_list (List.rev acc)
          | Pair p ->
              spend ();
              list (go p.car :: acc) p.cdr
          | tail -> raise (Not_flat tail)
        in
        list [] v
    | Vec a -> F_vec (Array.map go a)
    | Undef | Closure _ | Prim _ | Cont _ | Hcont _ | Ofun _
    | Mvals _ | Box _ | Tbl _ | Retaddr _ | Underflow_mark | WindersV _ ->
        raise (Not_flat v)
  in
  go v

let rec deserialize t =
  match t with
  | F_nil -> Rt.Nil
  | F_void -> Rt.Void
  | F_eof -> Rt.Eof
  | F_bool b -> Rt.Bool b
  | F_int n -> Rt.Int n
  | F_flo f -> Rt.Flo f
  | F_char c -> Rt.Char c
  | F_str s -> Rt.Str (Bytes.of_string s)
  | F_sym s -> Rt.sym s
  | F_list l ->
      List.fold_right
        (fun x tail -> Rt.Pair { car = deserialize x; cdr = tail })
        l Rt.Nil
  | F_vec a -> Rt.Vec (Array.map deserialize a)

let describe v = Values.write_string v
