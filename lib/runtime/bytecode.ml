open Rt

(* ------------------------------------------------------------------ *)
(* Validation: the dispatch loop fetches instructions with              *)
(* [Array.unsafe_get], so every code object must be closed under pc     *)
(* arithmetic: non-empty, all branch targets in range, and a final      *)
(* instruction that unconditionally transfers control (falling off the  *)
(* end is impossible).  Checked once at construction, never at runtime. *)
(* ------------------------------------------------------------------ *)

let transfers_control = function
  | Return | Halt | Branch _ | Tail_call _ | Prim_tail_call _ -> true
  (* The register-addressed tail/return forms transfer unconditionally
     too (their deopt paths tail-call through the frame policy), though
     the regalloc lowering always retains the original transfer after
     them as the landing pad, so they are never the last instruction of
     a generated stream. *)
  | Return_op _ | Prim_tail1_op _ | Prim_tail2_op _ -> true
  | _ -> false

let validate ~name ~frame_words instrs =
  let n = Array.length instrs in
  if n = 0 then invalid_arg (name ^ ": empty instruction stream");
  if not (transfers_control instrs.(n - 1)) then
    invalid_arg (name ^ ": code can fall off the end of the instruction stream");
  (* A two-operand fused form retains its staged second push at pc+1 and
     the original consumer at pc+2 as the deopt landing pad.  Entering
     that pad at pc+1 would restage only the second operand and run the
     consumer with the first argument slot holding garbage, so no branch
     may target the pad's interior (targeting the consumer itself is
     fine — that is the fully de-fused form). *)
  let pad_interior = Array.make n false in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Prim_call2_op _ | Prim_branch2_op _ | Prim_tail2_op _ ->
          if pc + 1 < n then pad_interior.(pc + 1) <- true
      | _ -> ())
    instrs;
  let check_operand = function
    | Op_local i when i < 0 || i >= frame_words ->
        invalid_arg
          (Printf.sprintf "%s: operand index %d out of frame (frame-words=%d)"
             name i frame_words)
    | Op_local _ | Op_acc | Op_const _ -> ()
  in
  Array.iter
    (fun instr ->
      (match instr with
      | Branch t | Branch_false t
      | Local_branch_false (_, t)
      | Prim_branch1 (_, t)
      | Prim_branch2 (_, t)
      | Prim_branch1_op (_, _, t)
      | Prim_branch2_op (_, _, _, t) ->
          if t < 0 || t >= n then
            invalid_arg (Printf.sprintf "%s: branch target %d out of range" name t);
          if pad_interior.(t) then
            invalid_arg
              (Printf.sprintf "%s: branch target %d lands inside a fused landing pad"
                 name t)
      | _ -> ());
      match instr with
      | Prim_call1_op (_, a)
      | Prim_branch1_op (_, a, _)
      | Prim_tail1_op (_, a)
      | Return_op a ->
          check_operand a
      | Prim_call2_op (_, a, b)
      | Prim_branch2_op (_, a, b, _)
      | Prim_tail2_op (_, a, b) ->
          check_operand a;
          check_operand b
      | _ -> ())
    instrs

(* Intern one [Retaddr] per return point into the instruction stream.
   [rcode]/[rpc]/[rdisp] are all per-site constants, so non-tail calls
   (and the deopt path of fused primitive calls) push this value instead
   of allocating a fresh record per call.  Must be re-run whenever an
   instruction array is renumbered (e.g. after peephole fusion). *)
let backpatch code =
  Array.iteri
    (fun pc instr ->
      match instr with
      | Call site ->
          site.cs_ret <-
            Retaddr { rcode = code; rpc = pc + 1; rdisp = site.cs_disp }
      | Prim_call site | Prim_call1 site | Prim_call2 site
      | Prim_branch1 (site, _)
      | Prim_branch2 (site, _) ->
          (* For the branch-fused forms, [pc + 1] is the retained
             [Branch_false]: a deopted call returns into it and the branch
             re-executes on the returned value.  The register-addressed
             forms need no case of their own: the regalloc lowering keeps
             the original [Prim_call*]/[Prim_branch*] in place at its pc
             as the landing pad and shares its [prim_site], so the
             interned [ps_ret] set here is exactly the resume point a
             deopted operand form needs. *)
          site.ps_ret <-
            Retaddr { rcode = code; rpc = pc + 1; rdisp = site.ps_disp }
      | _ -> ())
    code.instrs

let make_code ?(pos = (0, 0)) ~name ~arity ~frame_words instrs =
  validate ~name ~frame_words instrs;
  let cline, ccol = pos in
  let code =
    { instrs; cname = name; arity; frame_words; timer_ret = Void;
      templ = No_template; cline; ccol }
  in
  backpatch code;
  code

let arity_matches arity n =
  match arity with Exactly k -> n = k | At_least k -> n >= k

let arity_to_string = function
  | Exactly n -> string_of_int n
  | At_least n -> Printf.sprintf "%d+" n

let operand_to_string = function
  | Op_acc -> "acc"
  | Op_local i -> Printf.sprintf "l%d" i
  | Op_const v -> Values.write_string v

let instr_to_string = function
  | Const v -> "const " ^ Values.write_string v
  | Local_ref i -> Printf.sprintf "local-ref %d" i
  | Local_set i -> Printf.sprintf "local-set %d" i
  | Box_init i -> Printf.sprintf "box-init %d" i
  | Box_ref i -> Printf.sprintf "box-ref %d" i
  | Box_set i -> Printf.sprintf "box-set %d" i
  | Free_ref i -> Printf.sprintf "free-ref %d" i
  | Free_box_ref i -> Printf.sprintf "free-box-ref %d" i
  | Free_box_set i -> Printf.sprintf "free-box-set %d" i
  | Global_ref s -> "global-ref " ^ Globals.slot_name s
  | Global_set s -> "global-set " ^ Globals.slot_name s
  | Global_define s -> "global-define " ^ Globals.slot_name s
  | Make_closure (c, caps) ->
      let cap_to_string = function
        | Cap_local i -> Printf.sprintf "l%d" i
        | Cap_free i -> Printf.sprintf "f%d" i
      in
      Printf.sprintf "make-closure %s [%s]" c.cname
        (String.concat " " (Array.to_list (Array.map cap_to_string caps)))
  | Branch pc -> Printf.sprintf "branch %d" pc
  | Branch_false pc -> Printf.sprintf "branch-false %d" pc
  | Call { cs_disp; cs_nargs; _ } ->
      Printf.sprintf "call disp=%d nargs=%d" cs_disp cs_nargs
  | Tail_call { disp; nargs } ->
      Printf.sprintf "tail-call disp=%d nargs=%d" disp nargs
  | Return -> "return"
  | Enter -> "enter"
  | Halt -> "halt"
  | Const_push (v, i) ->
      Printf.sprintf "const-push %s %d" (Values.write_string v) i
  | Local_push (i, j) -> Printf.sprintf "local-push %d %d" i j
  | Free_push (i, j) -> Printf.sprintf "free-push %d %d" i j
  | Global_push (s, i) ->
      Printf.sprintf "global-push %s %d" (Globals.slot_name s) i
  | Prim_call s ->
      Printf.sprintf "prim-call %s disp=%d nargs=%d" s.ps_prim.pname s.ps_disp
        s.ps_nargs
  | Prim_call1 s ->
      Printf.sprintf "prim-call1 %s disp=%d" s.ps_prim.pname s.ps_disp
  | Prim_call2 s ->
      Printf.sprintf "prim-call2 %s disp=%d" s.ps_prim.pname s.ps_disp
  | Prim_tail_call s ->
      Printf.sprintf "prim-tail-call %s disp=%d nargs=%d" s.ps_prim.pname
        s.ps_disp s.ps_nargs
  | Local_branch_false (i, t) ->
      Printf.sprintf "local-branch-false %d %d" i t
  | Prim_branch1 (s, t) ->
      Printf.sprintf "prim-branch1 %s disp=%d %d" s.ps_prim.pname s.ps_disp t
  | Prim_branch2 (s, t) ->
      Printf.sprintf "prim-branch2 %s disp=%d %d" s.ps_prim.pname s.ps_disp t
  | Prim_call1_op (s, a) ->
      Printf.sprintf "prim-call1-op %s %s disp=%d" s.ps_prim.pname
        (operand_to_string a) s.ps_disp
  | Prim_call2_op (s, a, b) ->
      Printf.sprintf "prim-call2-op %s %s %s disp=%d" s.ps_prim.pname
        (operand_to_string a) (operand_to_string b) s.ps_disp
  | Prim_branch1_op (s, a, t) ->
      Printf.sprintf "prim-branch1-op %s %s disp=%d %d" s.ps_prim.pname
        (operand_to_string a) s.ps_disp t
  | Prim_branch2_op (s, a, b, t) ->
      Printf.sprintf "prim-branch2-op %s %s %s disp=%d %d" s.ps_prim.pname
        (operand_to_string a) (operand_to_string b) s.ps_disp t
  | Prim_tail1_op (s, a) ->
      Printf.sprintf "prim-tail1-op %s %s disp=%d" s.ps_prim.pname
        (operand_to_string a) s.ps_disp
  | Prim_tail2_op (s, a, b) ->
      Printf.sprintf "prim-tail2-op %s %s %s disp=%d" s.ps_prim.pname
        (operand_to_string a) (operand_to_string b) s.ps_disp
  | Return_op a -> Printf.sprintf "return-op %s" (operand_to_string a)

let disassemble code =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: arity=%s frame-words=%d\n" code.cname
       (arity_to_string code.arity)
       code.frame_words);
  Array.iteri
    (fun pc instr ->
      Buffer.add_string buf (Printf.sprintf "  %4d  %s\n" pc (instr_to_string instr)))
    code.instrs;
  Buffer.contents buf

let rec collect_codes acc code =
  if List.memq code acc then acc
  else
    Array.fold_left
      (fun acc instr ->
        match instr with Make_closure (c, _) -> collect_codes acc c | _ -> acc)
      (code :: acc) code.instrs

let disassemble_deep code =
  let codes = List.rev (collect_codes [] code) in
  String.concat "\n" (List.map disassemble codes)
