open Rt

let make_code ~name ~arity ~frame_words instrs =
  { instrs; cname = name; arity; frame_words }

let arity_matches arity n =
  match arity with Exactly k -> n = k | At_least k -> n >= k

let arity_to_string = function
  | Exactly n -> string_of_int n
  | At_least n -> Printf.sprintf "%d+" n

let instr_to_string = function
  | Const v -> "const " ^ Values.write_string v
  | Local_ref i -> Printf.sprintf "local-ref %d" i
  | Local_set i -> Printf.sprintf "local-set %d" i
  | Box_init i -> Printf.sprintf "box-init %d" i
  | Box_ref i -> Printf.sprintf "box-ref %d" i
  | Box_set i -> Printf.sprintf "box-set %d" i
  | Free_ref i -> Printf.sprintf "free-ref %d" i
  | Free_box_ref i -> Printf.sprintf "free-box-ref %d" i
  | Free_box_set i -> Printf.sprintf "free-box-set %d" i
  | Global_ref g -> "global-ref " ^ g.gname
  | Global_set g -> "global-set " ^ g.gname
  | Global_define g -> "global-define " ^ g.gname
  | Make_closure (c, caps) ->
      let cap_to_string = function
        | Cap_local i -> Printf.sprintf "l%d" i
        | Cap_free i -> Printf.sprintf "f%d" i
      in
      Printf.sprintf "make-closure %s [%s]" c.cname
        (String.concat " " (Array.to_list (Array.map cap_to_string caps)))
  | Branch pc -> Printf.sprintf "branch %d" pc
  | Branch_false pc -> Printf.sprintf "branch-false %d" pc
  | Call { disp; nargs } -> Printf.sprintf "call disp=%d nargs=%d" disp nargs
  | Tail_call { disp; nargs } ->
      Printf.sprintf "tail-call disp=%d nargs=%d" disp nargs
  | Return -> "return"
  | Enter -> "enter"
  | Halt -> "halt"
  | Const_push (v, i) ->
      Printf.sprintf "const-push %s %d" (Values.write_string v) i
  | Local_push (i, j) -> Printf.sprintf "local-push %d %d" i j
  | Free_push (i, j) -> Printf.sprintf "free-push %d %d" i j
  | Global_push (g, i) -> Printf.sprintf "global-push %s %d" g.gname i
  | Prim_call s ->
      Printf.sprintf "prim-call %s disp=%d nargs=%d" s.ps_prim.pname s.ps_disp
        s.ps_nargs
  | Prim_call1 s ->
      Printf.sprintf "prim-call1 %s disp=%d" s.ps_prim.pname s.ps_disp
  | Prim_call2 s ->
      Printf.sprintf "prim-call2 %s disp=%d" s.ps_prim.pname s.ps_disp
  | Prim_tail_call s ->
      Printf.sprintf "prim-tail-call %s disp=%d nargs=%d" s.ps_prim.pname
        s.ps_disp s.ps_nargs

let disassemble code =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: arity=%s frame-words=%d\n" code.cname
       (arity_to_string code.arity)
       code.frame_words);
  Array.iteri
    (fun pc instr ->
      Buffer.add_string buf (Printf.sprintf "  %4d  %s\n" pc (instr_to_string instr)))
    code.instrs;
  Buffer.contents buf

let rec collect_codes acc code =
  if List.memq code acc then acc
  else
    Array.fold_left
      (fun acc instr ->
        match instr with Make_closure (c, _) -> collect_codes acc c | _ -> acc)
      (code :: acc) code.instrs

let disassemble_deep code =
  let codes = List.rev (collect_codes [] code) in
  String.concat "\n" (List.map disassemble codes)
