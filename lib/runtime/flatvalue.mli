(** Cross-shard flat-value protocol.

    Shards of a {!Scheme.Pool} are fully independent sessions running on
    separate OCaml domains; the only process-global structure is the
    interned symbol table.  Values that travel between a master session
    and a worker shard must therefore be detached from the sending heap
    and rebuilt in the receiving one.  [Flatvalue] is that wire format,
    deliberately restricted to {e flat} data:

    - immediates: the empty list, void, eof, booleans, fixnums, flonums,
      characters
    - strings (copied; mutation does not travel)
    - symbols (re-interned on arrival, preserving [eq?])
    - proper lists and vectors of flat data

    Everything carrying code or control — closures, primitives,
    continuations, boxes, hashtables, multiple-values packets — is
    non-flat and raises {!Not_flat}.  The restriction is deliberate: a
    one-shot continuation's stack record owns segment arrays of the
    capturing session, so migrating it means migrating live frames — the
    stepping stone this module leaves for later (DESIGN.md §15). *)

type t
(** An immutable, heap-detached representation of a flat value.  A [t]
    shares no mutable structure with any session heap, so it may be
    handed between domains freely. *)

exception Not_flat of Rt.value
(** Raised by {!serialize} on the first non-flat constructor reached.
    The payload is the offending (sub)value, still owned by the sending
    heap — describe it with {!describe} before it crosses any domain
    boundary. *)

exception Too_large
(** Raised by {!serialize} when the value exceeds the node budget
    (cyclic structures are caught by this bound rather than by a
    visited-set walk). *)

val serialize : Rt.value -> t
(** Detach a flat value from its session heap.  Raises {!Not_flat} or
    {!Too_large}. *)

val deserialize : t -> Rt.value
(** Rebuild a value in the calling session's heap: strings become fresh
    [bytes], symbols are re-interned through {!Rt.intern}, pairs and
    vectors are freshly allocated. *)

val describe : Rt.value -> string
(** One-line description of a non-flat value for error messages, e.g.
    ["#<procedure fib>"]. *)
