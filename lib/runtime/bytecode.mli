(** Helpers over compiled code objects: construction and disassembly. *)

val transfers_control : Rt.instr -> bool
(** Does the instruction unconditionally leave the current pc (so that
    falling through to pc+1 is impossible)? *)

val validate : name:string -> frame_words:int -> Rt.instr array -> unit
(** The structural checks {!make_code} runs: non-empty stream, final
    instruction transfers control, branch targets in range and never
    into the interior of a two-operand fused form's landing pad (the
    retained staged push at pc+1), operand indices within
    [frame_words].  Re-run by the peephole fuser after it rewrites an
    instruction array in place.
    @raise Invalid_argument naming the code and the violation. *)

val make_code :
  ?pos:int * int ->
  name:string ->
  arity:Rt.arity ->
  frame_words:int ->
  Rt.instr array ->
  Rt.code
(** Validates the instruction stream (non-empty, branch targets in range,
    final instruction transfers control — the invariants that make the
    VM's [Array.unsafe_get] instruction fetch sound) and interns the
    static return address of every call site via {!backpatch}.  [pos] is
    the source line:col of the defining form, recorded on the code
    object for diagnostics; it defaults to [0, 0] (synthetic code).
    @raise Invalid_argument on malformed code. *)

val backpatch : Rt.code -> unit
(** Intern one [Rt.Retaddr] per non-tail call site ([Call] and the deopt
    path of [Prim_call]/[Prim_call1]/[Prim_call2]) into the instruction
    stream, making the return-address push at call time allocation-free.
    Re-run this after any pass that renumbers an instruction array (the
    peephole fuser does). *)

val arity_matches : Rt.arity -> int -> bool
(** Does a call with [n] arguments satisfy the arity? *)

val arity_to_string : Rt.arity -> string

val operand_to_string : Rt.operand -> string
(** [acc], [l<i>], or the written constant. *)

val instr_to_string : Rt.instr -> string
(** One-line rendering of a single instruction, as used by the
    disassembler listings (operand forms render their operands as [acc],
    [l<i>], or the written constant). *)

val disassemble : Rt.code -> string
(** Multi-line listing of one code object (not recursing into nested
    closures). *)

val disassemble_deep : Rt.code -> string
(** Listing of a code object and every code object it closes over. *)

val collect_codes : Rt.code list -> Rt.code -> Rt.code list
(** Accumulate every code object reachable from [code] through
    [Make_closure] instructions (each at most once, by physical
    identity) onto the accumulator.  Used by the disassembler and by the
    closure backend's eager template compilation. *)
