(* Global variable table, slot-indexed.

   Global names intern to process-wide *slots* (small dense ints) so
   compiled code can refer to a global by slot number instead of by an
   embedded cell record.  That makes code objects session-independent:
   the same compiled prelude image executes against any session's table
   (each session owns its own cell array, indexed by the shared slots),
   which is what lets Scheme.Pool shards share one read-only compiled
   prelude.  The interner is append-only and mutex-guarded — slot
   numbers are stable for the life of the process and identical across
   domains, so the numbering (and with it every slot embedded in pinned
   bytecode) is deterministic for a fixed program. *)

let interner_lock = Mutex.create ()
let interner : (string, int) Hashtbl.t = Hashtbl.create 512
let names : string array ref = ref (Array.make 512 "")
let next_slot = ref 0

let slot name =
  Mutex.lock interner_lock;
  let i =
    match Hashtbl.find_opt interner name with
    | Some i -> i
    | None ->
        let i = !next_slot in
        let cap = Array.length !names in
        if i >= cap then begin
          let bigger = Array.make (2 * cap) "" in
          Array.blit !names 0 bigger 0 cap;
          names := bigger
        end;
        !names.(i) <- name;
        Hashtbl.add interner name i;
        incr next_slot;
        i
  in
  Mutex.unlock interner_lock;
  i

(* Non-interning lookup, for callers that must not grow the table. *)
let slot_opt name =
  Mutex.lock interner_lock;
  let r = Hashtbl.find_opt interner name in
  Mutex.unlock interner_lock;
  r

let slot_name i =
  Mutex.lock interner_lock;
  let n = if i >= 0 && i < !next_slot then !names.(i) else "<bad-slot>" in
  Mutex.unlock interner_lock;
  n

(* One session's table: a growable array of cells indexed by slot.
   [cells] is exposed so the executors can open-code the in-bounds fast
   path (cross-module [@inline] is not reliable without flambda). *)
type t = { mutable cells : Rt.global array }

let fresh_cell _ = { Rt.gval = Rt.Undef; gdefined = false }

let create () : t =
  { cells = Array.init 64 fresh_cell }

(* Grow-on-miss.  Growing copies the old cell *pointers*, so any cell
   record already embedded anywhere keeps its identity. *)
let get (t : t) i : Rt.global =
  let n = Array.length t.cells in
  if i < n then t.cells.(i)
  else begin
    let n' = max (2 * n) (i + 1) in
    let bigger = Array.init n' (fun j -> if j < n then t.cells.(j) else fresh_cell j) in
    t.cells <- bigger;
    t.cells.(i)
  end

let cell (t : t) name : Rt.global = get t (slot name)

let define (t : t) name v =
  let g = cell t name in
  g.gval <- v;
  g.gdefined <- true

let find_opt (t : t) name : Rt.global option =
  match slot_opt name with
  | Some i when i < Array.length t.cells ->
      let g = t.cells.(i) in
      if g.Rt.gdefined then Some g else None
  | _ -> None

let lookup_opt (t : t) name : Rt.value option =
  match find_opt t name with Some g -> Some g.Rt.gval | None -> None

(* Cells past the interner's high-water mark (the table rounds its
   growth up) have no name yet; they are necessarily undefined, so
   skipping them loses nothing. *)
let fold f (t : t) init =
  let acc = ref init in
  Array.iteri
    (fun i (g : Rt.global) ->
      if i < !next_slot then acc := f (slot_name i) g !acc)
    t.cells;
  !acc

let iter f (t : t) =
  Array.iteri
    (fun i (g : Rt.global) -> if i < !next_slot then f (slot_name i) g)
    t.cells
