(* schemer: run Scheme files or a REPL on any of the three backends, with
   every control-representation knob exposed as a flag.

     dune exec bin/schemer.exe -- [FILE...]            run files
     dune exec bin/schemer.exe                         REPL
     dune exec bin/schemer.exe -- --backend heap ...   heap-frame VM
     dune exec bin/schemer.exe -- --backend closure .. template-compiled VM
     dune exec bin/schemer.exe -- --seg-words 256 --overflow callcc ...
     dune exec bin/schemer.exe -- --stats -e '(fib 20)'
     dune exec bin/schemer.exe -- --disassemble -e '(lambda (x) x)' *)

open Cmdliner

let read_file file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

(* Every user-facing failure goes through the one diagnostic surface
   (DESIGN.md §17): convert the layer exceptions {!Diag.of_exn} cannot
   see (the compiler and verifier sit above [frontend] in the library
   graph), then render with the shared printer.  [pos] is the span of
   the top-level form being processed, used when the exception carries
   none of its own. *)
let diag_of_exn ?pos = function
  | Compiler.Compile_error (msg, p) ->
      let pos = match p with Some _ -> p | None -> pos in
      Some (Diag.error ?pos Diag.Compiler msg)
  | Verify.Error msg -> Some (Diag.error ?pos Diag.Verify msg)
  | e -> Diag.of_exn ?pos e

(* Print the diagnostic for [e] on stderr; false if [e] is not a
   pipeline failure (the caller re-raises). *)
let report_exn ?pos e =
  match diag_of_exn ?pos e with
  | Some d ->
      Printf.eprintf "%s\n%!" (Diag.to_string d);
      true
  | None -> false

(* --lint: read and lint, never execute.  Diagnostics print to stdout as
   file:line:col: severity: [rule] message; any diagnostic (or read
   error) makes the exit status 1. *)
let run_lint ~exprs ~files =
  let count = ref 0 in
  let lint_src label src =
    match Lint.lint_string src with
    | ds ->
        List.iter
          (fun d ->
            incr count;
            Printf.printf "%s:%s\n" label (Lint.to_string d))
          ds
    | exception (Sexp.Read_error _ as e) -> (
        incr count;
        match Diag.of_exn e with
        | Some d -> Printf.printf "%s:%s\n" label (Diag.to_string d)
        | None -> assert false)
  in
  List.iter (fun f -> lint_src f (read_file f)) files;
  List.iteri
    (fun i e -> lint_src (Printf.sprintf "<expr %d>" (i + 1)) e)
    exprs;
  if !count = 0 then 0 else 1

(* --jobs N: evaluate the program on N fully independent sessions
   (Scheme.Pool), one OCaml domain per shard unless --sequential.  Shard
   results print in index order, so the output is deterministic either
   way. *)
let run_pool ~backend ~corpus ~stats_flag ~optimize ~peephole ~regalloc ~verify
    ~hygiene ~jobs ~sequential ~exprs ~files =
  let src = String.concat "\n" (List.map read_file files @ exprs) in
  match
    Scheme.Pool.run ~backend ~corpus ~optimize ~peephole ~regalloc ~verify
      ~hygiene ~domains:(not sequential) ~jobs src
  with
  | shards ->
      List.iter
        (fun (sh : Scheme.Pool.shard) ->
          if sh.Scheme.Pool.output <> "" then print_string sh.Scheme.Pool.output;
          if sh.Scheme.Pool.value <> Rt.Void then
            Printf.printf "shard %d: %s\n" sh.Scheme.Pool.shard
              (Values.write_string sh.Scheme.Pool.value);
          if stats_flag then begin
            Printf.eprintf "\n-- machine counters (shard %d) --\n"
              sh.Scheme.Pool.shard;
            List.iter
              (fun (name, v) ->
                if v <> 0 then Printf.eprintf "%-18s %d\n" name v)
              (Stats.to_rows sh.Scheme.Pool.stats)
          end)
        shards;
      0
  | exception e when report_exn e -> 1

let run_session ~backend ~scheme_winders ~corpus ~stats_flag ~disassemble
    ~expand_only ~optimize ~peephole ~regalloc ~verify ~hygiene ~par ~exprs
    ~files ~interactive =
  let stats = Stats.create () in
  let s =
    Scheme.create ~backend ~stats ~scheme_winders ~optimize ~peephole ~regalloc
      ~verify ~hygiene ()
  in
  (* --expand keeps its own macro environment so a [define-syntax] in an
     earlier file/-e chunk is visible to later ones, as in evaluation. *)
  let expand_menv = Macro.create_menv () in
  if corpus then Scheme.load_corpus s;
  (* --par-chunk attaches a data-parallel worker pool to this single
     session: par-map/par-reduce/par-for-each now fan chunks out to
     --jobs worker shards instead of falling back to the serial
     library. *)
  (match par with
  | Some (chunk, steal, domains, jobs) ->
      Scheme.par_attach ~chunk ~steal ~domains ~corpus ~jobs s
  | None -> ());
  let dump_output () =
    let out = Scheme.output s in
    if out <> "" then print_string out
  in
  (* The chunk is read here and evaluated one top-level datum at a time
     ({!Scheme.eval_datum}), so every failure — runtime errors included —
     is reported against the source position of the form that raised it.
     Earlier forms of a chunk therefore execute before a later form's
     compile error surfaces.  A reported diagnostic in file/-e input
     makes the exit status 1 (REPL errors don't — the session goes on). *)
  let failed = ref false in
  let eval_chunk ~echo src =
    match Sexp.read_all src with
    | exception e -> if report_exn e then failed := true
    | datums -> (
        try
          if disassemble then
            List.iter
              (fun code -> print_string (Bytecode.disassemble_deep code))
              (Compiler.compile_string ~optimize ~peephole ~regalloc ~verify
                 ~hygiene (Scheme.globals s) src)
          else if expand_only then
            List.iter
              (fun d ->
                List.iter
                  (fun top -> print_endline (Ast.top_to_string top))
                  (Expander.expand_tops ~hygiene ~menv:expand_menv d))
              datums
          else
            let rec go = function
              | [] -> ()
              | d :: rest -> (
                  match Scheme.eval_datum s d with
                  | v ->
                      dump_output ();
                      if echo && rest = [] && v <> Rt.Void then
                        print_endline (Values.write_string v);
                      go rest
                  | exception e ->
                      dump_output ();
                      if report_exn ~pos:(Sexp.pos_of d) e then failed := true
                      else raise e)
            in
            go datums
        with e -> if report_exn e then failed := true else raise e)
  in
  List.iter (fun file -> eval_chunk ~echo:false (read_file file)) files;
  List.iter (fun e -> eval_chunk ~echo:true e) exprs;
  let batch_failed = !failed in
  if interactive then begin
    print_endline
      "schemer repl -- segmented-stack Scheme with one-shot continuations";
    print_endline "(exit with ctrl-d; continuation lines prompt with ..)";
    (* crude balance check: parens/brackets outside strings and comments *)
    let balance s =
      let depth = ref 0 and in_str = ref false and esc = ref false in
      String.iter
        (fun c ->
          if !in_str then
            if !esc then esc := false
            else if c = '\\' then esc := true
            else if c = '"' then in_str := false
            else ()
          else
            match c with
            | '"' -> in_str := true
            | '(' | '[' -> incr depth
            | ')' | ']' -> decr depth
            | _ -> ())
        s;
      !depth
    in
    let rec loop () =
      print_string "> ";
      match read_line () with
      | exception End_of_file -> print_newline ()
      | line when String.trim line = "" -> loop ()
      | line ->
          let rec complete acc =
            if balance acc > 0 then begin
              print_string ".. ";
              match read_line () with
              | exception End_of_file -> acc
              | more -> complete (acc ^ "\n" ^ more)
            end
            else acc
          in
          eval_chunk ~echo:true (complete line);
          loop ()
    in
    loop ()
  end;
  if stats_flag then begin
    Printf.eprintf "\n-- machine counters --\n";
    List.iter
      (fun (name, v) ->
        if v <> 0 then Printf.eprintf "%-18s %d\n" name v)
      (Stats.to_rows stats);
    Array.iteri
      (fun i st ->
        match st with
        | None -> ()
        | Some st ->
            Printf.eprintf "\n-- machine counters (par shard %d) --\n" i;
            List.iter
              (fun (name, v) ->
                if v <> 0 then Printf.eprintf "%-18s %d\n" name v)
              (Stats.to_rows st))
      (Scheme.par_shard_stats s)
  end;
  if par <> None then Scheme.par_shutdown s;
  if batch_failed then 1 else 0

let backend_conv =
  Arg.enum
    [
      ("stack", `Stack);
      ("closure", `Closure);
      ("heap", `Heap);
      ("oracle", `Oracle);
    ]

let overflow_conv =
  Arg.enum [ ("call1cc", Control.As_call1cc); ("callcc", Control.As_callcc) ]

let promotion_conv =
  Arg.enum [ ("eager", Control.Eager); ("shared-flag", Control.Shared_flag) ]

let capture_conv =
  Arg.enum [ ("seal", Control.Seal); ("copy", Control.Copy_on_capture) ]

let main backend_kind seg_words copy_bound overflow hysteresis seal_disp
    no_cache promotion capture scheme_winders corpus stats_flag disassemble
    expand_only no_hygiene optimize no_peephole no_regalloc verify lint jobs
    sequential par_chunk no_steal exprs files =
  let config =
    {
      Control.default_config with
      Control.seg_words;
      copy_bound;
      overflow_policy = overflow;
      hysteresis_words = hysteresis;
      oneshot_seal =
        (match seal_disp with
        | None -> Control.Whole_segment
        | Some n -> Control.Seal_displacement n);
      cache_enabled = not no_cache;
      promotion;
      capture;
    }
  in
  let backend =
    match backend_kind with
    | `Stack -> Scheme.Stack config
    | `Closure -> Scheme.Closure config
    | `Heap -> Scheme.Heap
    | `Oracle -> Scheme.Oracle
  in
  let interactive = exprs = [] && files = [] in
  let hygiene = not no_hygiene in
  if lint then run_lint ~exprs ~files
  else
  match par_chunk with
  | Some n when n < 1 ->
      Printf.eprintf
        "schemer: unknown value for --par-chunk: %d (expected a chunk size \
         of at least 1)\n\
         %!"
        n;
      2
  | Some chunk ->
      (* --par-chunk selects the data-parallel pool on ONE master
         session (par-map fan-out), as opposed to --jobs alone, which
         replicates the whole program across independent sessions. *)
      run_session ~backend ~scheme_winders ~corpus ~stats_flag ~disassemble
        ~expand_only ~optimize ~peephole:(not no_peephole)
        ~regalloc:(not no_regalloc) ~verify ~hygiene
        ~par:(Some (chunk, not no_steal, not sequential, jobs))
        ~exprs ~files ~interactive
  | None ->
      if jobs > 1 then
        run_pool ~backend ~corpus ~stats_flag ~optimize
          ~peephole:(not no_peephole) ~regalloc:(not no_regalloc) ~verify
          ~hygiene ~jobs ~sequential ~exprs ~files
      else
        run_session ~backend ~scheme_winders ~corpus ~stats_flag ~disassemble
          ~expand_only ~optimize ~peephole:(not no_peephole)
          ~regalloc:(not no_regalloc) ~verify ~hygiene ~par:None ~exprs ~files
          ~interactive

let cmd =
  let backend =
    Arg.(
      value
      & opt backend_conv `Stack
      & info [ "backend" ]
          ~doc:
            "Execution backend: stack (the paper's segmented-stack VM), \
             closure (the same machine driven by template-compiled OCaml \
             closures -- identical semantics and counters, faster \
             dispatch), heap (heap-frame baseline), or oracle (CPS \
             reference interpreter).  All --seg-words/--overflow/... knobs \
             apply to stack and closure.")
  in
  let seg_words =
    Arg.(
      value
      & opt int Control.default_config.Control.seg_words
      & info [ "seg-words" ] ~doc:"Stack segment size in words.")
  in
  let copy_bound =
    Arg.(
      value
      & opt int Control.default_config.Control.copy_bound
      & info [ "copy-bound" ]
          ~doc:"Copy bound for multi-shot invocation (words).")
  in
  let overflow =
    Arg.(
      value
      & opt overflow_conv Control.As_call1cc
      & info [ "overflow" ]
          ~doc:"Overflow policy: call1cc (implicit call/1cc) or callcc.")
  in
  let hysteresis =
    Arg.(
      value
      & opt int Control.default_config.Control.hysteresis_words
      & info [ "hysteresis" ]
          ~doc:"Words copied up on one-shot overflow (anti-bounce).")
  in
  let seal_disp =
    Arg.(
      value
      & opt (some int) None
      & info [ "seal-displacement" ]
          ~doc:
            "Seal one-shot captures at this many words of headroom instead \
             of encapsulating the whole segment.")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the segment cache.")
  in
  let promotion =
    Arg.(
      value
      & opt promotion_conv Control.default_config.Control.promotion
      & info [ "promotion" ] ~doc:"Promotion strategy: eager or shared-flag.")
  in
  let capture =
    Arg.(
      value
      & opt capture_conv Control.Seal
      & info [ "capture" ]
          ~doc:
            "call/cc capture strategy: seal (the paper's zero-copy              segmented stack) or copy (eager copy-on-capture baseline).")
  in
  let scheme_winders =
    Arg.(
      value & flag
      & info [ "scheme-winders" ]
          ~doc:
            "Load the historical Scheme-level dynamic-wind implementation \
             (%winders list + wrapper closures) instead of the native \
             winder protocol; for differential testing.")
  in
  let corpus =
    Arg.(
      value & flag
      & info [ "corpus" ]
          ~doc:"Preload the benchmark corpus (tak, fib, threads, ...).")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print machine counters on exit (stderr).")
  in
  let disassemble =
    Arg.(
      value & flag
      & info [ "disassemble" ]
          ~doc:"Print bytecode instead of evaluating.")
  in
  let expand_only =
    Arg.(
      value & flag
      & info [ "expand" ]
          ~doc:
            "Print the expanded core forms (one per line) instead of \
             evaluating; hygiene-marked identifiers render as name#n.")
  in
  let no_hygiene =
    Arg.(
      value & flag
      & info [ "no-hygiene" ]
          ~doc:
            "Turn off hygienic syntax-rules expansion (template-introduced \
             identifiers get no fresh marks), reproducing the historical \
             textual expansion; for differential testing.")
  in
  let optimize =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:
            "Enable the AST optimizer (constant folding; assumes standard              bindings).")
  in
  let no_peephole =
    Arg.(
      value & flag
      & info [ "no-peephole" ]
          ~doc:
            "Disable the bytecode peephole pass (superinstruction fusion and \
             inline-cached primitive calls).")
  in
  let no_regalloc =
    Arg.(
      value & flag
      & info [ "no-regalloc" ]
          ~doc:
            "Disable the register-lowering stage of the peephole pass \
             (operand-addressed primitive calls and fused returns), keeping \
             the push-based encoding; for differential testing.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Run the static bytecode verifier over every compiled code \
             object (abstract-interpretation initialization checks plus the \
             optimizer's structural fusion contracts); abort with a \
             diagnostic on any violation.")
  in
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Lint the program source instead of executing it: multi-shot \
             call/1cc diagnostics, set! of fused primitives, unused \
             bindings, and non-flat quoted par-map/par-reduce arguments.  \
             Exit status 1 if any diagnostic fires.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Evaluate the program on $(docv) fully independent sessions \
             (Scheme.Pool), one OCaml domain per shard.")
  in
  let sequential =
    Arg.(
      value & flag
      & info [ "sequential" ]
          ~doc:
            "With --jobs, run the shards one after another on the calling \
             domain instead of spawning domains (results are identical; \
             only the wall-clock changes).")
  in
  let par_chunk =
    Arg.(
      value
      & opt (some int) None
      & info [ "par-chunk" ] ~docv:"N"
          ~doc:
            "Attach a data-parallel worker pool to the session and split \
             par-map/par-reduce/par-for-each work into chunks of $(docv) \
             items.  The pool has --jobs worker shards (one OCaml domain \
             each unless --sequential), scheduled by one-shot-continuation \
             fibers with work stealing between shards.")
  in
  let no_steal =
    Arg.(
      value & flag
      & info [ "no-steal" ]
          ~doc:
            "With --par-chunk, disable work stealing: chunk $(i,i) is \
             pinned to shard $(i,i) mod --jobs, making per-shard \
             deterministic counters reproducible; for counter pinning and \
             differential testing.")
  in
  let exprs =
    Arg.(
      value & opt_all string []
      & info [ "e"; "eval" ] ~docv:"EXPR" ~doc:"Evaluate $(docv).")
  in
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Files to run.")
  in
  let term =
    Term.(
      const main $ backend $ seg_words $ copy_bound $ overflow $ hysteresis
      $ seal_disp $ no_cache $ promotion $ capture $ scheme_winders $ corpus
      $ stats_flag $ disassemble $ expand_only $ no_hygiene $ optimize
      $ no_peephole $ no_regalloc $ verify $ lint $ jobs $ sequential
      $ par_chunk $ no_steal $ exprs $ files)
  in
  Cmd.v
    (Cmd.info "schemer" ~version:"1.0"
       ~doc:
         "Scheme with one-shot continuations on a segmented control stack \
          (Bruggeman/Waddell/Dybvig, PLDI'96)")
    term

let () = exit (Cmd.eval' cmd)
