(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4 and the Section 5 comparison), plus ablations of
   the design choices called out in DESIGN.md.

     e1    ctak with call/cc vs call/1cc          (Section 4, first result)
     e2    thread systems, Figure 5               (CPS / call/cc / call/1cc)
     e3    deep recursion under overflow policies (Section 4, third result)
     e4    per-frame overhead, stack vs heap      (Section 5, Appel-Shao)
     e5    dynamic-wind: deep wind/unwind with escaping one-shot conts
     e6    session pool: --jobs N independent sessions, one domain each
           (not in [all]; CI compares domains vs --sequential at 0%)
     e9    data-parallel par-map/par-reduce: chunked tasks over --jobs
           worker shards, one-shot-continuation fiber scheduling with
           work stealing (not in [all]; CI compares --no-steal domains
           vs --sequential at 0%)
     a1    segment cache on/off
     a2    overflow hysteresis on/off
     a3    copy bound sweep (splitting)
     a4    one-shot fragmentation: whole-segment vs seal-displacement
     a5    promotion: eager walk vs shared flag
     micro Bechamel micro-benchmarks of the control primitives

   Quick mode (default) runs scaled-down parameters; [--full] uses the
   paper's exact workloads (fib 20, 1000 threads, 10^6-call recursions). *)

let fuel = max_int

let iters = ref 1
(** [--iters N]: repeat every timed measurement [N] times.  Each timing
    reports the minimum (the headline number: least interference) and the
    median (robustness check).  The [reset] hook runs before each
    iteration so deterministic counters always reflect exactly one run. *)

let time_ms ?(reset = ignore) f =
  let n = max 1 !iters in
  let samples = Array.make n 0.0 in
  let result = ref None in
  for i = 0 to n - 1 do
    reset ();
    let t0 = Unix.gettimeofday () in
    result := Some (f ());
    samples.(i) <- (Unix.gettimeofday () -. t0) *. 1000.
  done;
  Array.sort compare samples;
  let r = match !result with Some r -> r | None -> assert false in
  (r, samples.(0), samples.(n / 2))

let session ?(config = Control.default_config) () =
  let stats = Stats.create () in
  let s = Scheme.create ~backend:(Scheme.Stack config) ~stats () in
  Scheme.load_corpus s;
  (s, stats)

let heap_session () =
  let stats = Stats.create () in
  let s = Scheme.create ~backend:Scheme.Heap ~stats () in
  Scheme.load_corpus s;
  (s, stats)

let closure_session ?(config = Control.default_config) () =
  let stats = Stats.create () in
  let s = Scheme.create ~backend:(Scheme.Closure config) ~stats () in
  Scheme.load_corpus s;
  (s, stats)

let run s src = ignore (Scheme.eval ~fuel s src)
let header title = Printf.printf "\n== %s\n" title
let note fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* --json FILE: machine-readable metrics (BENCH_*.json)                *)
(* ------------------------------------------------------------------ *)

(* Every experiment records its headline measurements here; [--json FILE]
   dumps them so each PR can commit a perf baseline and later PRs can
   diff against it.  Counter semantics are those of [Stats]. *)

type jval = J_int of int | J_float of float

let json_records : (string * (string * jval) list) list ref = ref []
let record name metrics = json_records := (name, metrics) :: !json_records

let stat_metrics (st : Stats.t) =
  [
    ("instrs", J_int st.Stats.instrs);
    ("words_copied", J_int st.Stats.words_copied);
    ("seg_alloc_words", J_int st.Stats.seg_alloc_words);
    ("cache_hits", J_int st.Stats.cache_hits);
  ]

let record_run ?(extra = []) ?median name ms (st : Stats.t) =
  let timing =
    ("ms", J_float ms)
    ::
    (match median with
    | Some m when !iters > 1 -> [ ("ms_median", J_float m) ]
    | _ -> [])
  in
  record name ((timing @ stat_metrics st) @ extra)

let write_json ~full path =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"oneshot-bench/v1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": %S,\n" (if full then "full" else "quick"));
  Buffer.add_string buf (Printf.sprintf "  \"iters\": %d,\n" !iters);
  Buffer.add_string buf "  \"experiments\": {\n";
  let entries = List.rev !json_records in
  let n = List.length entries in
  List.iteri
    (fun i (name, metrics) ->
      Buffer.add_string buf (Printf.sprintf "    %S: {" name);
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "%S: %s" k
               (match v with
               | J_int x -> string_of_int x
               | J_float x -> Printf.sprintf "%.3f" x)))
        metrics;
      Buffer.add_string buf (if i < n - 1 then "},\n" else "}\n"))
    entries;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* ------------------------------------------------------------------ *)
(* E1: ctak                                                            *)
(* ------------------------------------------------------------------ *)

let e1 ~full () =
  header "E1 (Section 4): ctak -- capture+invoke a continuation at every call";
  let x, y, z = if full then (20, 14, 7) else (18, 12, 6) in
  let measure mk op =
    let s, stats = mk () in
    run s (Printf.sprintf "(set! ctak-capture %s)" op);
    run s (Printf.sprintf "(ctak %d %d %d)" (x - 2) (y - 2) (z - 1));
    let _, ms, med =
      time_ms
        ~reset:(fun () -> Stats.reset stats)
        (fun () -> run s (Printf.sprintf "(ctak %d %d %d)" x y z))
    in
    (ms, med, Stats.copy stats)
  in
  let ms_cc, med_cc, st_cc = measure (fun () -> session ()) "%call/cc" in
  let ms_1cc, med_1cc, st_1cc = measure (fun () -> session ()) "%call/1cc" in
  let ms_tcc, med_tcc, st_tcc =
    measure (fun () -> closure_session ()) "%call/cc"
  in
  let ms_t1cc, med_t1cc, st_t1cc =
    measure (fun () -> closure_session ()) "%call/1cc"
  in
  Printf.printf "  workload: (ctak %d %d %d)\n" x y z;
  Printf.printf "  %-10s %10s %12s %12s %12s\n" "operator" "time(ms)"
    "captures" "copied(w)" "alloc(w)";
  let row name ms (st : Stats.t) =
    Printf.printf "  %-10s %10.1f %12d %12d %12d\n" name ms
      (st.captures_multi + st.captures_oneshot)
      st.words_copied st.seg_alloc_words
  in
  row "call/cc" ms_cc st_cc;
  row "call/1cc" ms_1cc st_1cc;
  row "T call/cc" ms_tcc st_tcc;
  row "T call/1cc" ms_t1cc st_t1cc;
  Printf.printf
    "  (T = closure backend; semantic counters must match the stack rows)\n";
  let captures (st : Stats.t) =
    ("captures", J_int (st.captures_multi + st.captures_oneshot))
  in
  record_run "e1.callcc" ms_cc st_cc ~median:med_cc ~extra:[ captures st_cc ];
  record_run "e1.call1cc" ms_1cc st_1cc ~median:med_1cc
    ~extra:[ captures st_1cc ];
  record_run "e1.closure-callcc" ms_tcc st_tcc ~median:med_tcc
    ~extra:[ captures st_tcc ];
  record_run "e1.closure-call1cc" ms_t1cc st_t1cc ~median:med_t1cc
    ~extra:[ captures st_t1cc ];
  Printf.printf
    "  call/1cc: %.0f%% faster, %.0f%% less stack allocation (paper: 13%% \
     faster, 23%% less memory)\n"
    ((ms_cc -. ms_1cc) /. ms_cc *. 100.)
    (float_of_int (st_cc.Stats.seg_alloc_words - st_1cc.Stats.seg_alloc_words)
    /. float_of_int (max 1 st_cc.Stats.seg_alloc_words)
    *. 100.)

(* ------------------------------------------------------------------ *)
(* E2: Figure 5 -- thread systems                                      *)
(* ------------------------------------------------------------------ *)

let e2 ~full () =
  header "E2 (Figure 5): thread systems, context-switch frequency sweep";
  let fib_n = if full then 20 else 15 in
  let thread_counts = if full then [ 10; 100; 1000 ] else [ 10; 100 ] in
  let freqs = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ] in
  let total_cps = ref 0. and total_cc = ref 0. and total_1cc = ref 0. in
  let med_cps = ref 0. and med_cc = ref 0. and med_1cc = ref 0. in
  (* Per-operator deterministic counters, accumulated across the whole
     freq x threads sweep.  [time_ms]'s reset hook zeroes the session
     counters before every iteration, so each measurement contributes
     exactly one run's worth regardless of --iters, and the totals are
     reproducible numbers compare.exe can gate at zero tolerance. *)
  let st_cps = Stats.create ()
  and st_cc = Stats.create ()
  and st_1cc = Stats.create () in
  let acc_into (dst : Stats.t) (src : Stats.t) =
    dst.Stats.instrs <- dst.Stats.instrs + src.Stats.instrs;
    dst.Stats.words_copied <- dst.Stats.words_copied + src.Stats.words_copied;
    dst.Stats.seg_alloc_words <-
      dst.Stats.seg_alloc_words + src.Stats.seg_alloc_words;
    dst.Stats.cache_hits <- dst.Stats.cache_hits + src.Stats.cache_hits;
    dst.Stats.captures_multi <-
      dst.Stats.captures_multi + src.Stats.captures_multi;
    dst.Stats.captures_oneshot <-
      dst.Stats.captures_oneshot + src.Stats.captures_oneshot
  in
  Printf.printf
    "  each thread computes (fib %d); times in ms (paper: DEC Alpha ms)\n"
    fib_n;
  List.iter
    (fun nthreads ->
      Printf.printf "\n  -- %d threads --\n" nthreads;
      Printf.printf "  %8s %12s %12s %12s\n" "freq" "cps" "call/cc" "call/1cc";
      List.iter
        (fun freq ->
          let run_one dst src =
            let s, stats = session () in
            let _, ms, med =
              time_ms ~reset:(fun () -> Stats.reset stats) (fun () -> run s src)
            in
            acc_into dst stats;
            (ms, med)
          in
          let cps, cps_m =
            run_one st_cps
              (Printf.sprintf "(run-cps-fib-threads %d %d %d)" nthreads fib_n
                 freq)
          in
          let cc, cc_m =
            run_one st_cc
              (Printf.sprintf "(run-fib-threads %d %d %d %%call/cc)" nthreads
                 fib_n freq)
          in
          let c1, c1_m =
            run_one st_1cc
              (Printf.sprintf "(run-fib-threads %d %d %d %%call/1cc)" nthreads
                 fib_n freq)
          in
          total_cps := !total_cps +. cps;
          total_cc := !total_cc +. cc;
          total_1cc := !total_1cc +. c1;
          med_cps := !med_cps +. cps_m;
          med_cc := !med_cc +. cc_m;
          med_1cc := !med_1cc +. c1_m;
          Printf.printf "  %8d %12.1f %12.1f %12.1f\n" freq cps cc c1)
        freqs)
    thread_counts;
  let e2_record name total med (st : Stats.t) =
    record name
      (("ms", J_float total)
      :: ((if !iters > 1 then [ ("ms_median", J_float med) ] else [])
         @ stat_metrics st
         @ [
             ( "captures",
               J_int (st.Stats.captures_multi + st.Stats.captures_oneshot) );
           ]))
  in
  e2_record "e2.cps" !total_cps !med_cps st_cps;
  e2_record "e2.callcc" !total_cc !med_cc st_cc;
  e2_record "e2.call1cc" !total_1cc !med_1cc st_1cc;
  note
    "  expected shape: CPS wins only for switches more frequent than about\n\
    \  once every 4-8 calls; call/1cc <= call/cc everywhere; the advantage\n\
    \  shrinks as switches become rare (paper: 'only a few percent' beyond\n\
    \  one switch per 128 calls).\n"

(* ------------------------------------------------------------------ *)
(* E3: deep recursion / overflow handling                              *)
(* ------------------------------------------------------------------ *)

let e3 ~full () =
  header
    "E3 (Section 4): repeated deep recursion; stack overflow as implicit \
     call/1cc vs call/cc";
  let iters, depth = if full then (100, 10_000) else (20, 10_000) in
  Printf.printf
    "  workload: %d iterations of %d-deep non-tail recursion (%d calls \
     total), 16K-word segments\n"
    iters depth (iters * depth);
  Printf.printf "  %-22s %10s %10s %12s %12s %10s\n" "overflow policy"
    "time(ms)" "overflows" "copied(w)" "alloc(w)" "cache-hit";
  let measure policy name =
    let config =
      { Control.default_config with Control.overflow_policy = policy }
    in
    let s, stats = session ~config () in
    run s (Printf.sprintf "(deep-loop 2 %d)" depth);
    let _, ms, med =
      time_ms
        ~reset:(fun () -> Stats.reset stats)
        (fun () -> run s (Printf.sprintf "(deep-loop %d %d)" iters depth))
    in
    Printf.printf "  %-22s %10.1f %10d %12d %12d %10d\n" name ms
      stats.Stats.overflows stats.Stats.words_copied
      stats.Stats.seg_alloc_words stats.Stats.cache_hits;
    (ms, med, Stats.copy stats)
  in
  let ms1, med1, st1 = measure Control.As_call1cc "implicit call/1cc" in
  let ms2, med2, st2 = measure Control.As_callcc "implicit call/cc" in
  record_run "e3.overflow-call1cc" ms1 st1 ~median:med1
    ~extra:[ ("overflows", J_int st1.Stats.overflows) ];
  record_run "e3.overflow-callcc" ms2 st2 ~median:med2
    ~extra:[ ("overflows", J_int st2.Stats.overflows) ];
  Printf.printf
    "  one-shot overflow: %.0fx less copying, %.0fx less allocation, %.0f%% \
     faster wall clock\n"
    (float_of_int st2.Stats.words_copied
    /. float_of_int (max 1 st1.Stats.words_copied))
    (float_of_int st2.Stats.seg_alloc_words
    /. float_of_int (max 1 st1.Stats.seg_alloc_words))
    ((ms2 -. ms1) /. ms2 *. 100.);
  note
    "  (paper: 300%% faster on native code where overflow cost dominates;\n\
    \   our interpreter dispatch mutes the wall-clock ratio -- the copy and\n\
    \   allocation counters carry the effect)\n"

(* ------------------------------------------------------------------ *)
(* E4: per-frame overhead, stack vs heap model                         *)
(* ------------------------------------------------------------------ *)

let e4 ~full () =
  header
    "E4 (Section 5): per-frame overhead, segmented stack vs heap frames \
     (Appel-Shao comparison)";
  ignore full;
  let workloads =
    [
      ("tak", "(tak 16 11 5)");
      ("fib", "(fib 18)");
      ("ack", "(ack 2 6)");
      ("queens", "(queens-count 7)");
      ("boyer", "(boyer-run 12)");
      ("cpstak", "(cpstak 14 10 5)");
      ("takl", "(takl 14 10 5)");
      ("div", "(div-bench 200 40)");
      ("destruct", "(destruct-bench 20 40 40)");
      ("mandel", "(mandel-count 24 30)");
      ("deep", "(deep-loop 2 20000)");
    ]
  in
  Printf.printf "  stack-allocation overhead per procedure call (words):\n";
  Printf.printf "  %-8s | %9s %9s %9s | %9s %9s %9s\n" "" "stack-VM" "copied"
    "closures" "heap-VM" "cow" "closures";
  let totals = ref (0., 0.) in
  let stack_ms = ref 0. and heap_ms = ref 0. and closure_ms = ref 0. in
  let stack_med = ref 0. and heap_med = ref 0. and closure_med = ref 0. in
  let stack_instrs = ref 0 and heap_instrs = ref 0 in
  let stack_copied_total = ref 0 and stack_alloc_total = ref 0 in
  let stack_hits_total = ref 0 in
  let closure_stats = Stats.create () in
  let heap_frame_words_total = ref 0 and heap_cow_total = ref 0 in
  List.iter
    (fun (name, src) ->
      let s, st = session () in
      let _, ms_s, med_s =
        time_ms ~reset:(fun () -> Stats.reset st) (fun () -> run s src)
      in
      let calls = float_of_int (max 1 st.Stats.calls) in
      let stack_w = float_of_int st.Stats.seg_alloc_words /. calls in
      let stack_copied = float_of_int st.Stats.words_copied /. calls in
      let stack_clos = float_of_int st.Stats.closures_made /. calls in
      let h, hst = heap_session () in
      let _, ms_h, med_h =
        time_ms ~reset:(fun () -> Stats.reset hst) (fun () -> run h src)
      in
      let hcalls = float_of_int (max 1 hst.Stats.calls) in
      let heap_w = float_of_int hst.Stats.heap_frame_words /. hcalls in
      let heap_cow = float_of_int hst.Stats.cow_copies /. hcalls in
      let heap_clos = float_of_int hst.Stats.closures_made /. hcalls in
      let c, cst = closure_session () in
      let _, ms_c, med_c =
        time_ms ~reset:(fun () -> Stats.reset cst) (fun () -> run c src)
      in
      totals := (fst !totals +. stack_w, snd !totals +. heap_w);
      stack_ms := !stack_ms +. ms_s;
      heap_ms := !heap_ms +. ms_h;
      closure_ms := !closure_ms +. ms_c;
      stack_med := !stack_med +. med_s;
      heap_med := !heap_med +. med_h;
      closure_med := !closure_med +. med_c;
      stack_instrs := !stack_instrs + st.Stats.instrs;
      heap_instrs := !heap_instrs + hst.Stats.instrs;
      stack_copied_total := !stack_copied_total + st.Stats.words_copied;
      stack_alloc_total := !stack_alloc_total + st.Stats.seg_alloc_words;
      stack_hits_total := !stack_hits_total + st.Stats.cache_hits;
      closure_stats.Stats.instrs <-
        closure_stats.Stats.instrs + cst.Stats.instrs;
      closure_stats.Stats.words_copied <-
        closure_stats.Stats.words_copied + cst.Stats.words_copied;
      closure_stats.Stats.seg_alloc_words <-
        closure_stats.Stats.seg_alloc_words + cst.Stats.seg_alloc_words;
      closure_stats.Stats.cache_hits <-
        closure_stats.Stats.cache_hits + cst.Stats.cache_hits;
      heap_frame_words_total :=
        !heap_frame_words_total + hst.Stats.heap_frame_words;
      heap_cow_total := !heap_cow_total + hst.Stats.cow_copies;
      Printf.printf "  %-8s | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f\n" name
        stack_w stack_copied stack_clos heap_w heap_cow heap_clos)
    workloads;
  let med m = if !iters > 1 then [ ("ms_median", J_float m) ] else [] in
  record "e4.stack"
    ([ ("ms", J_float !stack_ms) ]
    @ med !stack_med
    @ [
        ("instrs", J_int !stack_instrs);
        ("words_copied", J_int !stack_copied_total);
        ("seg_alloc_words", J_int !stack_alloc_total);
        ("cache_hits", J_int !stack_hits_total);
      ]);
  record "e4.heap"
    ([ ("ms", J_float !heap_ms) ]
    @ med !heap_med
    @ [
        ("instrs", J_int !heap_instrs);
        ("heap_frame_words", J_int !heap_frame_words_total);
        ("cow_copies", J_int !heap_cow_total);
      ]);
  record_run "e4.closure" !closure_ms closure_stats ~median:!closure_med;
  let n = float_of_int (List.length workloads) in
  Printf.printf
    "  mean words/call: stack VM %.3f vs heap VM %.3f (paper: 0.1 vs 7.4 \
     instructions of per-frame overhead)\n"
    (fst !totals /. n) (snd !totals /. n);
  Printf.printf
    "  wall clock over the corpus: stack %.1f ms, closure %.1f ms (%.2fx), \
     heap %.1f ms\n"
    !stack_ms !closure_ms
    (!stack_ms /. Float.max 1e-9 !closure_ms)
    !heap_ms;
  if
    closure_stats.Stats.instrs <> !stack_instrs
    || closure_stats.Stats.words_copied <> !stack_copied_total
    || closure_stats.Stats.seg_alloc_words <> !stack_alloc_total
    || closure_stats.Stats.cache_hits <> !stack_hits_total
  then (
    Printf.eprintf
      "e4: closure-backend semantic counters diverged from the stack VM\n";
    exit 1)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let a1 ~full () =
  header
    "A1: segment cache on/off (paper: without it, call/1cc programs were \
     'unacceptably slow')";
  let nthreads, fib_n = if full then (100, 16) else (20, 13) in
  let freq = 4 in
  Printf.printf
    "  workload: %d call/1cc threads of (fib %d), switch every %d calls\n"
    nthreads fib_n freq;
  Printf.printf "  %-12s %10s %12s %12s %12s\n" "cache" "time(ms)"
    "alloc-segs" "alloc(w)" "cache-hits";
  List.iter
    (fun enabled ->
      let config =
        { Control.default_config with Control.cache_enabled = enabled }
      in
      let s, stats = session ~config () in
      let _, ms, med =
        time_ms
          ~reset:(fun () -> Stats.reset stats)
          (fun () ->
            run s
              (Printf.sprintf "(run-fib-threads %d %d %d %%call/1cc)" nthreads
                 fib_n freq))
      in
      Printf.printf "  %-12s %10.1f %12d %12d %12d\n"
        (if enabled then "enabled" else "disabled")
        ms stats.Stats.seg_allocs stats.Stats.seg_alloc_words
        stats.Stats.cache_hits;
      record_run
        (if enabled then "a1.cache-on" else "a1.cache-off")
        ms stats ~median:med
        ~extra:[ ("seg_allocs", J_int stats.Stats.seg_allocs) ])
    [ true; false ]

let a2 ~full () =
  header "A2: overflow hysteresis (copy-up) prevents bouncing";
  let depth = if full then 8_000 else 2_000 in
  Printf.printf
    "  workload: crawl to depth %d on 1K-word segments, oscillating 12 \
     frames at every depth -- oscillations that straddle a segment \
     boundary bounce unless the copied-up frames absorb them\n"
    depth;
  Printf.printf "  %-18s %10s %10s %12s\n" "hysteresis(words)" "time(ms)"
    "overflows" "copied(w)";
  List.iter
    (fun h ->
      let config =
        {
          Control.default_config with
          Control.seg_words = 1024;
          hysteresis_words = h;
        }
      in
      let s, stats = session ~config () in
      run s
        {|(define (wiggle n) (if (= n 0) 0 (+ 1 (wiggle (- n 1)))))
          (define (crawl n)
            (if (= n 0) 0 (begin (wiggle 12) (+ 1 (crawl (- n 1))))))|};
      let _, ms, med =
        time_ms
          ~reset:(fun () -> Stats.reset stats)
          (fun () -> run s (Printf.sprintf "(crawl %d)" depth))
      in
      Printf.printf "  %-18d %10.1f %10d %12d\n" h ms stats.Stats.overflows
        stats.Stats.words_copied;
      record_run
        (Printf.sprintf "a2.hysteresis-%d" h)
        ms stats ~median:med
        ~extra:[ ("overflows", J_int stats.Stats.overflows) ])
    [ 0; 16; 64; 256 ]

let a3 ~full () =
  header
    "A3: copy bound caps the latency of one multi-shot invocation (splitting)";
  let depth = if full then 4_000 else 1_000 in
  Printf.printf
    "  workload: capture at depth %d, then one invocation of the \
     continuation\n"
    depth;
  Printf.printf "  %-14s %10s %10s %16s\n" "copy-bound(w)" "splits" "invokes"
    "copied/invoke(w)";
  List.iter
    (fun bound ->
      let config =
        { Control.default_config with Control.copy_bound = bound }
      in
      let s, stats = session ~config () in
      (* Capture at depth, then escape without unwinding so the saved
         segment is still one unsplit block when we invoke it. *)
      run s
        (Printf.sprintf
           {|(define kk #f)
             (define (probe n)
               (if (= n 0)
                   (%%call/cc (lambda (c) (set! kk c) (%%escape 'captured)))
                   (+ 1 (probe (- n 1)))))
             (define %%escape #f)
             (%%call/cc (lambda (out) (set! %%escape out) (probe %d)))|}
           depth);
      Stats.reset stats;
      run s "(let ((k2 kk)) (set! kk #f) (if k2 (k2 0) 'done))";
      let invokes = max 1 stats.Stats.invokes_multi in
      Printf.printf "  %-14d %10d %10d %16.1f\n" bound stats.Stats.splits
        stats.Stats.invokes_multi
        (float_of_int stats.Stats.words_copied /. float_of_int invokes);
      record
        (Printf.sprintf "a3.bound-%d" bound)
        [
          ("splits", J_int stats.Stats.splits);
          ("words_copied", J_int stats.Stats.words_copied);
        ])
    [ 32; 128; 512; 4096 ]

let a4 ~full () =
  header
    "A4 (Section 3.4): one-shot fragmentation -- whole-segment vs \
     seal-displacement";
  let held = if full then 100 else 32 in
  Printf.printf
    "  workload: %d nested live one-shot captures (idle threads); resident \
     stack words\n"
    held;
  Printf.printf "  %-24s %14s %14s\n" "seal policy" "live words" "per capture";
  List.iter
    (fun (name, seal) ->
      let config =
        { Control.default_config with Control.oneshot_seal = seal }
      in
      let s, _ = session ~config () in
      (* Hold [held] live one-shot captures (parked threads), escaping
         from the bottom so none of them is consumed. *)
      run s
        (Printf.sprintf
           {|(define ks '())
             (define %%out #f)
             (define (hold n)
               (if (= n 0)
                   (%%out 'parked)
                   ;; non-tail: each capture encapsulates a live segment
                   (+ 1 (%%call/1cc (lambda (k)
                     (set! ks (cons k ks))
                     (hold (- n 1)))))))
             (%%call/cc (lambda (o) (set! %%out o) (hold %d)))|}
           held);
      let live =
        match Globals.lookup_opt (Scheme.globals s) "ks" with
        | Some v ->
            List.fold_left
              (fun acc k ->
                match k with
                | Rt.Cont c -> acc + max c.Rt.sr.Rt.size 0
                | _ -> acc)
              0
              (Values.list_of_value v)
        | None -> 0
      in
      Printf.printf "  %-24s %14d %14.1f\n" name live
        (float_of_int live /. float_of_int held);
      record
        (match seal with
        | Control.Whole_segment -> "a4.whole-segment"
        | Control.Seal_displacement _ -> "a4.seal-displacement")
        [ ("live_words", J_int live) ])
    [
      ("whole segment", Control.Whole_segment);
      ("seal displacement 256", Control.Seal_displacement 256);
    ];
  note
    "  (paper: 100 threads on 16KB default segments occupy 1.6MB unless the\n\
    \   segment is sealed at a fixed displacement above the occupied part)\n"

let a5 ~full () =
  header "A5 (Section 3.3): promotion cost -- eager chain walk vs shared flag";
  let chain = if full then 10_000 else 2_000 in
  Printf.printf
    "  workload: call/cc capturing above %d live one-shot records\n" chain;
  Printf.printf "  %-14s %12s %12s\n" "strategy" "time(us)" "promotions";
  List.iter
    (fun (name, strategy) ->
      let config =
        { Control.default_config with Control.promotion = strategy }
      in
      let s, stats = session ~config () in
      run s
        (Printf.sprintf
           {|(define (nest n thunk)
               (if (= n 0)
                   (thunk)
                   ;; non-tail capture: every level creates a live record
                   (+ 1 (%%call/1cc (lambda (k) (nest (- n 1) thunk))))))
             (define (measure)
               (nest %d (lambda () (%%call/cc (lambda (m) 0)))))|}
           chain);
      let _, ms, _ =
        time_ms
          ~reset:(fun () -> Stats.reset stats)
          (fun () -> run s "(measure)")
      in
      Printf.printf "  %-14s %12.1f %12d\n" name (ms *. 1000.)
        stats.Stats.promotions;
      record
        ("a5." ^ name)
        [
          ("ms", J_float ms);
          ("promotions", J_int stats.Stats.promotions);
        ])
    [ ("eager", Control.Eager); ("shared-flag", Control.Shared_flag) ]

let a6 ~full () =
  header
    "A6 (extension): capture strategy -- paper's zero-copy sealing vs the      classic eager copy-on-capture";
  let x, y, z = if full then (18, 12, 6) else (16, 11, 5) in
  Printf.printf
    "  workload: (ctak %d %d %d) with %%call/cc -- a capture at every call\n"
    x y z;
  Printf.printf "  %-18s %10s %14s %14s\n" "capture strategy" "time(ms)"
    "copied@capture" "copied@invoke";
  List.iter
    (fun (name, strategy) ->
      let config =
        { Control.default_config with Control.capture = strategy }
      in
      let s, stats = session ~config () in
      run s "(set! ctak-capture %call/cc)";
      run s (Printf.sprintf "(ctak %d %d %d)" (x - 2) (y - 2) (z - 1));
      let _, ms, med =
        time_ms
          ~reset:(fun () -> Stats.reset stats)
          (fun () -> run s (Printf.sprintf "(ctak %d %d %d)" x y z))
      in
      (* under Seal, all copying happens at invocation; under
         Copy_on_capture, words_copied counts both directions -- report
         capture-side copying as total minus the invoke-side share, which
         for ctak is symmetric *)
      Printf.printf "  %-18s %10.1f %14s %14d\n" name ms
        (match strategy with
        | Control.Seal -> "0"
        | Control.Copy_on_capture -> string_of_int (stats.Stats.words_copied / 2))
        (match strategy with
        | Control.Seal -> stats.Stats.words_copied
        | Control.Copy_on_capture -> stats.Stats.words_copied / 2);
      record_run
        (match strategy with
        | Control.Seal -> "a6.seal"
        | Control.Copy_on_capture -> "a6.copy-on-capture")
        ms stats ~median:med)
    [ ("seal (paper)", Control.Seal); ("copy-on-capture", Control.Copy_on_capture) ]

(* ------------------------------------------------------------------ *)
(* E5: dynamic-wind -- deep wind/unwind with escaping one-shot         *)
(* continuations (tracks the native winder protocol of PR 3)           *)
(* ------------------------------------------------------------------ *)

let e5_defs =
  {scheme|
(define (wind-escape depth)
  (call/1cc
   (lambda (k)
     (let loop ((d depth))
       (if (= d 0)
           (k 'out)
           (dynamic-wind
            (lambda () #t)
            (lambda () (loop (- d 1)))
            (lambda () #t)))))))

(define (wind-escape-loop times depth)
  (if (= times 0)
      'done
      (begin (wind-escape depth) (wind-escape-loop (- times 1) depth))))
|scheme}

let e5 ~full () =
  header
    "E5: dynamic-wind -- deep wind/unwind, one-shot escape through the \
     winder chain";
  let times, depth = if full then (2_000, 100) else (200, 50) in
  Printf.printf
    "  workload: %d escapes, each entering %d nested dynamic-winds and \
     escaping\n  through all of them with a call/1cc continuation (%d \
     guard thunks/escape)\n"
    times depth (2 * depth);
  let measure name scheme_winders =
    let stats = Stats.create () in
    let s =
      Scheme.create
        ~backend:(Scheme.Stack Control.default_config)
        ~stats ~scheme_winders ()
    in
    Scheme.load_corpus s;
    run s e5_defs;
    run s (Printf.sprintf "(wind-escape-loop %d %d)" (times / 10) depth);
    let _, ms, med =
      time_ms
        ~reset:(fun () -> Stats.reset stats)
        (fun () -> run s (Printf.sprintf "(wind-escape-loop %d %d)" times depth))
    in
    Printf.printf "  %-16s %10.1f ms %12d instrs %10d captures %10d closures\n"
      name ms stats.Stats.instrs
      (stats.Stats.captures_multi + stats.Stats.captures_oneshot)
      stats.Stats.closures_made;
    (ms, med, Stats.copy stats)
  in
  let ms_n, med_n, st_n = measure "native" false in
  let ms_s, med_s, st_s = measure "scheme-winders" true in
  let extra (st : Stats.t) =
    [
      ("captures", J_int (st.Stats.captures_multi + st.Stats.captures_oneshot));
      ("closures_made", J_int st.Stats.closures_made);
    ]
  in
  record_run "e5.dynamic-wind" ms_n st_n ~median:med_n ~extra:(extra st_n);
  record_run "e5.dynamic-wind-scheme" ms_s st_s ~median:med_s
    ~extra:(extra st_s);
  Printf.printf
    "  native winders: %.0f%% faster than the Scheme-level protocol\n"
    ((ms_s -. ms_n) /. ms_s *. 100.)

(* ------------------------------------------------------------------ *)
(* E6: session pool sharded across OCaml domains                       *)
(* ------------------------------------------------------------------ *)

let e6_jobs = ref 4
let e6_sequential = ref false

(* Not part of [all]: e6's JSON keys depend on --jobs, and [all --json]
   must keep producing exactly the experiment set of the committed
   baseline now that compare.exe treats a missing experiment as a
   failure.  CI runs e6 as its own step, comparing a --jobs N domains
   run against a --jobs N --sequential run at zero tolerance: the
   per-shard deterministic counters must be bit-identical, which is the
   whole point — shards share no mutable state. *)
let e6 ~full () =
  let jobs = max 1 !e6_jobs in
  header
    (Printf.sprintf
       "E6: session pool -- %d independent sessions%s (one domain each)" jobs
       (if !e6_sequential then ", run sequentially" else ""));
  let src =
    if full then
      "(begin (set! ctak-capture %call/1cc) (fib 20) (ctak 18 12 6))"
    else "(begin (set! ctak-capture %call/1cc) (fib 16) (ctak 14 9 5))"
  in
  (* Baseline: the same workload on a single one-shard pool.  Pool runs
     include session creation and corpus load, so both sides of the
     speedup ratio price the whole shard, not just the eval. *)
  let _, ms_one, _ =
    time_ms (fun () -> Scheme.Pool.run ~corpus:true ~domains:false ~jobs:1 src)
  in
  let shards, ms_pool, med_pool =
    time_ms (fun () ->
        Scheme.Pool.run ~corpus:true ~domains:(not !e6_sequential) ~jobs src)
  in
  (* Reference run for the determinism pin: same shards, sequentially on
     the calling domain.  Every per-shard counter must match exactly. *)
  let seq_shards = Scheme.Pool.run ~corpus:true ~domains:false ~jobs src in
  let speedup = float_of_int jobs *. ms_one /. ms_pool in
  Printf.printf "  workload/shard: %s\n" src;
  Printf.printf "  %-8s %12s %12s %12s %8s\n" "shard" "instrs" "copied(w)"
    "alloc(w)" "value";
  let deterministic = ref true in
  List.iter2
    (fun (sh : Scheme.Pool.shard) (sq : Scheme.Pool.shard) ->
      let st = sh.Scheme.Pool.stats and sq_st = sq.Scheme.Pool.stats in
      Printf.printf "  %-8d %12d %12d %12d %8s\n" sh.Scheme.Pool.shard
        st.Stats.instrs st.Stats.words_copied st.Stats.seg_alloc_words
        (Values.write_string sh.Scheme.Pool.value);
      if
        st.Stats.instrs <> sq_st.Stats.instrs
        || st.Stats.words_copied <> sq_st.Stats.words_copied
        || st.Stats.seg_alloc_words <> sq_st.Stats.seg_alloc_words
        || sh.Scheme.Pool.value <> sq.Scheme.Pool.value
      then deterministic := false;
      record
        (Printf.sprintf "e6.shard%d" sh.Scheme.Pool.shard)
        (stat_metrics st))
    shards seq_shards;
  Printf.printf "  1 shard: %.1f ms;  %d shards: %.1f ms;  speedup %.2fx\n"
    ms_one jobs ms_pool speedup;
  Printf.printf "  per-shard counters vs sequential run: %s\n"
    (if !deterministic then "identical" else "MISMATCH");
  let agg field = List.fold_left (fun a sh -> a + field sh) 0 shards in
  record_run "e6.parallel" ms_pool ~median:med_pool
    (let sum = Stats.create () in
     sum.Stats.instrs <-
       agg (fun sh -> sh.Scheme.Pool.stats.Stats.instrs);
     sum.Stats.words_copied <-
       agg (fun sh -> sh.Scheme.Pool.stats.Stats.words_copied);
     sum.Stats.seg_alloc_words <-
       agg (fun sh -> sh.Scheme.Pool.stats.Stats.seg_alloc_words);
     sum.Stats.cache_hits <-
       agg (fun sh -> sh.Scheme.Pool.stats.Stats.cache_hits);
     sum)
    ~extra:
      [
        ("jobs", J_int jobs);
        ("speedup", J_float speedup);
        ("deterministic", J_int (if !deterministic then 1 else 0));
      ];
  if not !deterministic then (
    Printf.eprintf "e6: per-shard counters diverged from the sequential run\n";
    exit 1)

(* ------------------------------------------------------------------ *)
(* E9: data-parallel par-map/par-reduce over a worker-shard pool       *)
(* ------------------------------------------------------------------ *)

let e9_jobs = ref 4
let e9_sequential = ref false
let e9_no_steal = ref false
let e9_chunk = ref 2

(* Not part of [all], like e6: the shard-record keys depend on --jobs,
   and [all --json] must keep producing exactly the committed baseline's
   experiment set.  CI runs e9 as its own step twice -- once with worker
   domains, once --sequential (inline shards) -- and compares the two
   JSONs at zero tolerance: with --no-steal the chunk distribution is
   pinned (task i on shard i mod jobs), so every deterministic counter
   must be bit-identical across the two modes.  The speedup legs always
   run at 1/2/4 shards so their keys are stable regardless of --jobs. *)
let e9 ~full () =
  let jobs = max 1 !e9_jobs in
  let chunk = max 1 !e9_chunk in
  let steal = not !e9_no_steal in
  let domains = not !e9_sequential in
  header
    (Printf.sprintf "E9: data-parallel par-map/par-reduce -- chunk %d, %s%s"
       chunk
       (if domains then "worker domains" else "inline shards")
       (if steal then ", work stealing" else ", no-steal round-robin"));
  let workloads =
    if full then
      [
        ("fib", "(par-reduce + 0 (par-map fib (iota 20)))");
        ("queens", "(par-map queens-count '(7 7 7 7 7 7 7 7))");
        ("boyer", "(par-map boyer-run '(12 12 12 12 12 12 12 12))");
      ]
    else
      [
        ("fib", "(par-reduce + 0 (par-map fib (iota 16)))");
        ("queens", "(par-map queens-count '(5 5 5 5 6 6 6 6))");
        ("boyer", "(par-map boyer-run '(8 8 8 8 10 10 10 10))");
      ]
  in
  let eval_all s =
    List.map (fun (_, src) -> Scheme.eval_string ~fuel s src) workloads
  in
  List.iter (fun (name, src) -> Printf.printf "  %-8s %s\n" name src) workloads;
  (* Serial reference: the same expressions on a plain corpus session --
     without a pool, par-map/par-reduce ARE the serial library. *)
  let s0, st0 = session () in
  let serial = ref [] in
  let _, ms_seq, med_seq =
    time_ms ~reset:(fun () -> Stats.reset st0) (fun () -> serial := eval_all s0)
  in
  record_run "e9.sequential" ms_seq st0 ~median:med_seq;
  let shard_sum shards name =
    Array.fold_left
      (fun acc st ->
        match st with Some st -> acc + Stats.get st name | None -> acc)
      0 shards
  in
  (* One pool run: attach, evaluate the workloads, detach.  The reset
     hook zeroes master and shard counters so each --iters iteration
     contributes exactly one run's worth. *)
  let leg ~jobs ~steal ~domains =
    let stats = Stats.create () in
    let s = Scheme.create ~stats () in
    Scheme.load_corpus s;
    Scheme.par_attach ~chunk ~steal ~domains ~fuel ~corpus:true ~jobs s;
    let vals = ref [] in
    let reset () =
      Stats.reset stats;
      Array.iter
        (function Some st -> Stats.reset st | None -> ())
        (Scheme.par_shard_stats s)
    in
    let _, ms, med = time_ms ~reset (fun () -> vals := eval_all s) in
    let shards =
      Array.map
        (function Some st -> Some (Stats.copy st) | None -> None)
        (Scheme.par_shard_stats s)
    in
    Scheme.par_shutdown s;
    (!vals, ms, med, Stats.copy stats, shards)
  in
  Printf.printf "  serial reference: %.1f ms\n" ms_seq;
  Printf.printf "  %6s %10s %8s %12s %8s %8s %10s\n" "shards" "time(ms)"
    "speedup" "instrs(sum)" "tasks" "steals" "switches";
  List.iter
    (fun n ->
      let vals, ms, med, master, shards = leg ~jobs:n ~steal ~domains in
      if vals <> !serial then (
        Printf.eprintf "e9: %d-shard values diverged from the serial run\n" n;
        exit 1);
      let sum = shard_sum shards in
      Printf.printf "  %6d %10.1f %7.2fx %12d %8d %8d %10d\n" n ms
        (ms_seq /. Float.max 1e-9 ms)
        (sum "instrs") (sum "par-tasks") (sum "par-steals")
        (sum "par-switches");
      record
        (Printf.sprintf "e9.jobs%d" n)
        ([ ("ms", J_float ms) ]
        @ (if !iters > 1 then [ ("ms_median", J_float med) ] else [])
        @ [
            (* master + shard-summed deterministic counters: invariant
               across chunk distributions by the per-chunk discipline
               (chunk size never depends on jobs; segment cache cleared
               per chunk) *)
            ("instrs", J_int (master.Stats.instrs + sum "instrs"));
            ( "words_copied",
              J_int (master.Stats.words_copied + sum "words-copied") );
            ( "seg_alloc_words",
              J_int (master.Stats.seg_alloc_words + sum "seg-alloc-words") );
            ("jobs", J_int n);
            ("speedup", J_float (ms_seq /. Float.max 1e-9 ms));
            ("par_tasks", J_int (sum "par-tasks"));
            ("par_steals", J_int (sum "par-steals"));
            ("par_switches", J_int (sum "par-switches"));
          ]))
    [ 1; 2; 4 ];
  (* No-steal identity pin: the pinned round-robin distribution run with
     worker domains, the same shards inline, and everything on one
     shard.  Per-shard deterministic counters must match domains-vs-
     inline exactly, and the shard sums must equal the 1-shard run's. *)
  let _, _, _, _, shards_prim = leg ~jobs ~steal:false ~domains in
  let _, _, _, _, shards_seq = leg ~jobs ~steal:false ~domains:false in
  let _, _, _, _, shards_one = leg ~jobs:1 ~steal:false ~domains:false in
  let det =
    [
      ("instrs", "instrs");
      ("words-copied", "words_copied");
      ("seg-alloc-words", "seg_alloc_words");
      ("par-tasks", "par_tasks");
    ]
  in
  let get shards i name =
    match shards.(i) with Some st -> Stats.get st name | None -> 0
  in
  let deterministic = ref true in
  Printf.printf "  no-steal shards (%d):\n" jobs;
  Printf.printf "  %-8s %12s %12s %12s %8s\n" "shard" "instrs" "copied(w)"
    "alloc(w)" "tasks";
  for i = 0 to jobs - 1 do
    Printf.printf "  %-8d %12d %12d %12d %8d\n" i
      (get shards_prim i "instrs")
      (get shards_prim i "words-copied")
      (get shards_prim i "seg-alloc-words")
      (get shards_prim i "par-tasks");
    List.iter
      (fun (nm, _) ->
        if get shards_prim i nm <> get shards_seq i nm then
          deterministic := false)
      det;
    record
      (Printf.sprintf "e9.shard%d" i)
      (List.map (fun (nm, key) -> (key, J_int (get shards_prim i nm))) det)
  done;
  List.iter
    (fun (nm, _) ->
      if shard_sum shards_prim nm <> shard_sum shards_one nm then
        deterministic := false)
    det;
  Printf.printf
    "  no-steal identity (domains vs inline; %d-shard sums vs 1 shard): %s\n"
    jobs
    (if !deterministic then "identical" else "MISMATCH");
  if not !deterministic then (
    Printf.eprintf "e9: no-steal counters diverged across distributions\n";
    exit 1)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "micro: Bechamel benchmarks of the control primitives";
  let open Bechamel in
  (* Compile once; each run re-executes the compiled form, so the numbers
     measure the control operations, not the reader/compiler. *)
  let make_test name src =
    let vm = Vm.create () in
    ignore (Vm.eval vm Prelude.source);
    ignore (Vm.eval vm Programs.all_defs);
    ignore (Vm.eval vm Threads.scheduler);
    let codes = Compiler.compile_string (Vm.globals vm) src in
    Test.make ~name
      (Staged.stage (fun () -> ignore (Vm.run_program vm codes)))
  in
  let tests =
    [
      make_test "capture+invoke %call/cc" "(%call/cc (lambda (k) (k 1)))";
      make_test "capture+invoke %call/1cc" "(%call/1cc (lambda (k) (k 1)))";
      make_test "capture-only %call/cc" "(%call/cc (lambda (k) 1))";
      make_test "capture-only %call/1cc" "(%call/1cc (lambda (k) 1))";
      make_test "plain call baseline" "((lambda (x) x) 1)";
      make_test "thread switch pair (1cc)"
        "(run-threads (list (lambda () 1) (lambda () 2)) 1000 %call/1cc)";
      make_test "engine slice" "(engine-run-to-completion 64 (make-engine (lambda () (fib 8))))";
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ e ] -> Printf.printf "  %-32s %12.1f ns/run\n" name e
          | _ -> Printf.printf "  %-32s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let all ~full () =
  e1 ~full ();
  e2 ~full ();
  e3 ~full ();
  e4 ~full ();
  e5 ~full ();
  a1 ~full ();
  a2 ~full ();
  a3 ~full ();
  a4 ~full ();
  a5 ~full ();
  a6 ~full ()

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" argv in
  let rec json_path = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> json_path rest
    | [] -> None
  in
  let json = json_path argv in
  let rec iters_arg = function
    | "--iters" :: n :: _ -> (
        match int_of_string_opt n with
        | Some k when k >= 1 -> k
        | _ ->
            Printf.eprintf "--iters expects a positive integer, got %s\n" n;
            exit 1)
    | _ :: rest -> iters_arg rest
    | [] -> 1
  in
  iters := iters_arg argv;
  let rec jobs_arg = function
    | "--jobs" :: n :: _ -> (
        match int_of_string_opt n with
        | Some k when k >= 1 -> k
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
            exit 1)
    | _ :: rest -> jobs_arg rest
    | [] -> 4
  in
  e6_jobs := jobs_arg argv;
  e6_sequential := List.mem "--sequential" argv;
  e9_jobs := jobs_arg argv;
  e9_sequential := !e6_sequential;
  e9_no_steal := List.mem "--no-steal" argv;
  let rec chunk_arg = function
    | "--par-chunk" :: n :: _ -> (
        match int_of_string_opt n with
        | Some k when k >= 1 -> k
        | _ ->
            Printf.eprintf "--par-chunk expects a positive integer, got %s\n" n;
            exit 1)
    | _ :: rest -> chunk_arg rest
    | [] -> 2
  in
  e9_chunk := chunk_arg argv;
  let rec positional = function
    | [] -> []
    | "--full" :: rest -> positional rest
    | "--sequential" :: rest -> positional rest
    | "--no-steal" :: rest -> positional rest
    | "--json" :: _ :: rest -> positional rest
    | "--iters" :: _ :: rest -> positional rest
    | "--jobs" :: _ :: rest -> positional rest
    | "--par-chunk" :: _ :: rest -> positional rest
    | x :: rest -> x :: positional rest
  in
  let which = match positional argv with [] -> "all" | x :: _ -> x in
  Printf.printf "oneshot-continuations benchmark harness (%s mode%s)\n"
    (if full then "full/paper-scale" else "quick")
    (if !iters > 1 then
       Printf.sprintf ", %d iterations/measurement, reporting min + median"
         !iters
     else "");
  (match which with
  | "e1" -> e1 ~full ()
  | "e2" -> e2 ~full ()
  | "e3" -> e3 ~full ()
  | "e4" -> e4 ~full ()
  | "e5" -> e5 ~full ()
  | "e6" -> e6 ~full ()
  | "e9" -> e9 ~full ()
  | "a1" -> a1 ~full ()
  | "a2" -> a2 ~full ()
  | "a3" -> a3 ~full ()
  | "a4" -> a4 ~full ()
  | "a5" -> a5 ~full ()
  | "a6" -> a6 ~full ()
  | "micro" -> micro ()
  | "all" ->
      all ~full ();
      micro ()
  | other ->
      Printf.eprintf
        "unknown experiment %s (expected e1..e6, e9, a1..a6, micro, all)\n"
        other;
      exit 1);
  match json with
  | Some path ->
      write_json ~full path;
      Printf.printf "\nwrote %s\n" path
  | None -> ()
