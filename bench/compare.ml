(* Compare two oneshot-bench/v1 JSON baselines (see bench/main.ml's
   [--json]):

     dune exec bench/compare.exe -- BASELINE.json CURRENT.json [--tolerance PCT]

   Deterministic counters (instruction counts, words copied, segment
   allocation words) are execution-shape facts, not measurements: any
   increase beyond the tolerance (default 2%, to absorb deliberate small
   workload tweaks) is reported as a REGRESSION and the exit status is 1.
   Wall-clock fields ("ms", "ms_median") are noisy on shared CI machines,
   so their deltas are printed for information only and never affect the
   exit status.

   Every experiment of the baseline must appear in the current run: a
   silently dropped experiment would otherwise read as "no regressions"
   while measuring nothing, so that direction is a failure (exit 1).
   The other direction is a note, not a failure — an experiment only in
   the current run is how a new backend or workload first shows up
   against an older baseline; it still belongs in the next refreshed
   baseline, where it becomes load-bearing.  Likewise a deterministic
   counter recorded in the baseline but absent from the current run is a
   failure; counters the baseline never recorded are skipped (older
   baselines predate newer counters).  An experiment that records "ms"
   without "ms_median" draws a warning — it was measured with --iters 1,
   so there is no robustness check on its headline number.  A schema or
   mode mismatch is a hard error (exit 2) because the numbers would not
   be comparable.

   Experiments named "<e>.closure"/"<e>.closure-<op>" (the
   template-compiled backend, {!Closurevm}) and "<e>.heap"/"<e>.heap-<op>"
   (the heap-frame baseline) run the same workload as "<e>.stack" /
   "<e>.<op>"; when the baseline has the stack-backend counterpart, its
   wall clock against the current run is printed as an explicit speedup
   line per backend.  A final summary block lists the per-experiment
   instruction-count delta in percent for every experiment recording
   "instrs" in both runs — the at-a-glance view of how a bytecode change
   moved the corpus, independent of the tolerance gate. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader (objects, strings, numbers) -- the harness       *)
(* writer emits only this subset, and the repo deliberately has no      *)
(* JSON dependency.                                                     *)
(* ------------------------------------------------------------------ *)

type json =
  | Obj of (string * json) list
  | Str of string
  | Num of float

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | _ -> fail "unsupported escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '"' -> Str (parse_string ())
    | Some ('0' .. '9' | '-') -> parse_number ()
    | _ -> fail "expected value"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (
      advance ();
      Obj [])
    else
      let rec members acc =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ((key, v) :: acc)
        | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "error: cannot open %s: %s\n" path msg;
      exit 2
  in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let load path =
  match parse_json (read_file path) with
  | Obj fields -> fields
  | _ ->
      Printf.eprintf "error: %s: top level is not an object\n" path;
      exit 2
  | exception Parse_error msg ->
      Printf.eprintf "error: %s: %s\n" path msg;
      exit 2

let str_field fields name =
  match List.assoc_opt name fields with Some (Str s) -> Some s | _ -> None

let obj_field fields name =
  match List.assoc_opt name fields with Some (Obj o) -> Some o | _ -> None

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

(* Counters whose values are fully determined by the workload: a diff is
   a genuine change in execution shape.  [cache_hits]/[seg_allocs] etc.
   are also deterministic but measure policy, not cost; the three below
   are the cost metrics the perf harness is accountable to. *)
let deterministic = [ "instrs"; "words_copied"; "seg_alloc_words" ]
let informational = [ "ms"; "ms_median" ]

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  let rec tol_arg = function
    | "--tolerance" :: t :: _ -> (
        match float_of_string_opt t with
        | Some f when f >= 0. -> f
        | _ ->
            Printf.eprintf "--tolerance expects a percentage, got %s\n" t;
            exit 2)
    | _ :: rest -> tol_arg rest
    | [] -> 2.0
  in
  let tolerance = tol_arg argv in
  let rec positional = function
    | [] -> []
    | "--tolerance" :: _ :: rest -> positional rest
    | x :: rest -> x :: positional rest
  in
  let base_path, cur_path =
    match positional argv with
    | [ a; b ] -> (a, b)
    | _ ->
        Printf.eprintf
          "usage: compare BASELINE.json CURRENT.json [--tolerance PCT]\n";
        exit 2
  in
  let base = load base_path and cur = load cur_path in
  (* Comparability gate. *)
  List.iter
    (fun key ->
      let b = str_field base key and c = str_field cur key in
      if b <> c then (
        Printf.eprintf
          "error: %s mismatch (%s: %s, %s: %s) -- runs are not comparable\n"
          key base_path
          (Option.value b ~default:"?")
          cur_path
          (Option.value c ~default:"?");
        exit 2))
    [ "schema"; "mode" ];
  let base_exps =
    match obj_field base "experiments" with Some o -> o | None -> []
  in
  let cur_exps =
    match obj_field cur "experiments" with Some o -> o | None -> []
  in
  let regressions = ref 0
  and improvements = ref 0
  and checked = ref 0
  and missing = ref 0
  and warnings = ref 0
  and notes = ref 0 in
  Printf.printf "comparing %s (baseline) -> %s, tolerance %.1f%%\n" base_path
    cur_path tolerance;
  Printf.printf "  %-28s %-16s %14s %14s %9s\n" "experiment" "counter"
    "baseline" "current" "delta";
  let delta_pct b c =
    if b = 0. then if c = 0. then 0. else infinity
    else (c -. b) /. Float.abs b *. 100.
  in
  let num fields name =
    match List.assoc_opt name fields with Some (Num f) -> Some f | _ -> None
  in
  List.iter
    (fun (name, bj) ->
      match (bj, List.assoc_opt name cur_exps) with
      | Obj bm, Some (Obj cm) ->
          List.iter
            (fun counter ->
              match (num bm counter, num cm counter) with
              | Some b, Some c ->
                  incr checked;
                  let d = delta_pct b c in
                  if Float.abs d > tolerance then (
                    let tag =
                      if d > 0. then (
                        incr regressions;
                        "REGRESSION")
                      else (
                        incr improvements;
                        "improved")
                    in
                    Printf.printf "  %-28s %-16s %14.0f %14.0f %+8.1f%% %s\n"
                      name counter b c d tag)
              | Some _, None ->
                  incr missing;
                  Printf.printf
                    "  %-28s %-16s: MISSING in current (baseline records it)\n"
                    name counter
              | None, _ -> ())
            deterministic;
          List.iter
            (fun field ->
              match (num bm field, num cm field) with
              | Some b, Some c ->
                  let d = delta_pct b c in
                  if Float.abs d > tolerance then
                    Printf.printf
                      "  %-28s %-16s %14.1f %14.1f %+8.1f%% (wall clock, \
                       informational)\n"
                      name field b c d
              | _ -> ())
            informational
      | _, None ->
          incr missing;
          Printf.printf "  %-28s: MISSING in current (only in baseline)\n" name
      | _ -> ())
    base_exps;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name base_exps) then (
        incr notes;
        Printf.printf
          "  %-28s: note: only in current (refresh the baseline to pin it)\n"
          name))
    cur_exps;
  (* Median robustness check: "ms" without "ms_median" means the run was
     measured once (--iters 1), so the headline number has no noise
     control. *)
  List.iter
    (fun (name, j) ->
      match j with
      | Obj m when num m "ms" <> None && num m "ms_median" = None ->
          incr warnings;
          Printf.printf
            "  %-28s: warning: records \"ms\" without \"ms_median\" (measured \
             with --iters 1?)\n"
            name
      | _ -> ())
    cur_exps;
  (* Backend speedup lines: pair each current "*.closure*" / "*.heap*"
     experiment with the stack-backend key it shadows and report the
     wall-clock ratio against the baseline, one line per backend. *)
  let backend_counterpart name =
    match String.index_opt name '.' with
    | None -> None
    | Some dot ->
        let prefix = String.sub name 0 (dot + 1) in
        let rest = String.sub name (dot + 1) (String.length name - dot - 1) in
        let strip backend =
          let dashed = backend ^ "-" in
          if rest = backend then Some (prefix ^ "stack")
          else if
            String.length rest > String.length dashed
            && String.sub rest 0 (String.length dashed) = dashed
          then
            Some
              (prefix
              ^ String.sub rest (String.length dashed)
                  (String.length rest - String.length dashed))
          else None
        in
        List.find_map
          (fun backend ->
            Option.map (fun base -> (backend, base)) (strip backend))
          [ "closure"; "heap" ]
  in
  List.iter
    (fun (name, j) ->
      match (j, backend_counterpart name) with
      | Obj cm, Some (backend, base_name) -> (
          match
            ( num cm "ms",
              match List.assoc_opt base_name base_exps with
              | Some (Obj bm) -> num bm "ms"
              | _ -> None )
          with
          | Some cur_ms, Some base_ms when cur_ms > 0. ->
              Printf.printf
                "  %s backend: %s %.1f ms vs baseline %s %.1f ms = %.2fx \
                 speedup\n"
                backend name cur_ms base_name base_ms (base_ms /. cur_ms)
          | _ -> ())
      | _ -> ())
    cur_exps;
  (* Per-experiment instruction-count deltas, tolerance-independent. *)
  let instr_rows =
    List.filter_map
      (fun (name, j) ->
        match (j, List.assoc_opt name base_exps) with
        | Obj cm, Some (Obj bm) -> (
            match (num bm "instrs", num cm "instrs") with
            | Some b, Some c -> Some (name, b, c)
            | _ -> None)
        | _ -> None)
      cur_exps
  in
  if instr_rows <> [] then begin
    Printf.printf "instruction counts (baseline -> current):\n";
    List.iter
      (fun (name, b, c) ->
        Printf.printf "  %-28s %14.0f %14.0f %+8.1f%%\n" name b c
          (delta_pct b c))
      instr_rows
  end;
  (* Scaling summary: experiments recording "jobs" + "speedup" (e6's
     session pool, e9's data-parallel legs) report their speedup at N
     shards against the run's own sequential reference; the baseline's
     speedup prints alongside when it recorded the same experiment.
     Like wall clock, these are informational -- the deterministic
     gates above already cover the counters. *)
  let scaling_rows =
    List.filter_map
      (fun (name, j) ->
        match j with
        | Obj m -> (
            match (num m "jobs", num m "speedup") with
            | Some jb, Some sp -> Some (name, jb, sp, num m "ms")
            | _ -> None)
        | _ -> None)
      cur_exps
  in
  if scaling_rows <> [] then begin
    Printf.printf "scaling summary (speedup at N shards vs sequential):\n";
    List.iter
      (fun (name, jb, sp, ms) ->
        let base_sp =
          match List.assoc_opt name base_exps with
          | Some (Obj bm) -> num bm "speedup"
          | _ -> None
        in
        Printf.printf "  %-28s %2.0f shard(s) %8.2fx%s%s\n" name jb sp
          (match ms with
          | Some m -> Printf.sprintf "  %10.1f ms" m
          | None -> "")
          (match base_sp with
          | Some b -> Printf.sprintf "   (baseline %.2fx)" b
          | None -> ""))
      scaling_rows
  end;
  Printf.printf
    "%d deterministic counters checked: %d regression(s), %d improvement(s), \
     %d missing, %d warning(s), %d note(s)\n"
    !checked !regressions !improvements !missing !warnings !notes;
  if !regressions > 0 || !missing > 0 then (
    if !regressions > 0 then
      Printf.printf
        "FAIL: deterministic counters regressed beyond %.1f%% tolerance\n"
        tolerance;
    if !missing > 0 then
      Printf.printf
        "FAIL: experiments/counters missing from the current run\n";
    exit 1)
  else Printf.printf "OK: no deterministic-counter regressions\n"
